// Experiment E-PR7 — incremental streaming evaluation vs full recompute.
//
// On the Fig. 2 retail workload (20k baskets, ~190k rows after dedup),
// measures what a RUN costs after a delta batch of N rows lands:
//   * FullRecompute   — the ordinary flock evaluator over the whole
//                       relation (what every RUN paid before PR 7);
//   * DeltaUpdate     — IncrementalEvaluator's delta path: evaluate only
//                       the delta bindings against the cached state,
//                       absorb, serve (each timed iteration appends a
//                       fresh batch outside the timer, then runs);
//   * CachedServe     — the no-change fast path (re-filter + sort of the
//                       cached group table), the RUN-after-RUN cost.
// Args are the delta row count: 1, 10, 100, and 2000 (~1% of the base
// relation — the acceptance point: DeltaUpdate must beat FullRecompute
// by >= 5x there; see BENCH_PR7.json). DeltaUpdate grows the relation by
// N rows per iteration, so its numbers are (slightly) conservative —
// late iterations probe a larger base than FullRecompute ever sees.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <map>
#include <string>

#include "bench/bench_util.h"
#include "common/check.h"
#include "flocks/eval.h"
#include "flocks/incremental_eval.h"
#include "relational/database.h"
#include "relational/relation.h"
#include "workload/basket_gen.h"

namespace qf {
namespace {

constexpr const char* kPairQuery =
    "answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2";
constexpr std::int64_t kSupport = 50;   // mid-range Fig. 2 threshold
constexpr int kDeltaBasketSize = 10;    // delta rows arrive as ~avg baskets
constexpr int kDeltaBidBase = 1000000;  // past every generated basket id

BasketConfig RetailConfig() {
  BasketConfig config;  // identical to bench_fig2_market_basket.cc
  config.n_baskets = 20000;
  config.n_items = 3000;
  config.avg_basket_size = 10;
  config.zipf_theta = 0.75;
  config.topic_locality = 0.35;
  config.n_topics = 150;
  config.seed = 7;
  return config;
}

// Copying a Database copies shared_ptr handles, so every benchmark gets
// a cheap private copy it can append to without perturbing the others.
Database RetailDb() {
  static const Database* db = [] {
    auto* out = new Database;
    out->PutRelation(GenerateBaskets(RetailConfig()));
    return out;
  }();
  return *db;
}

// A batch of `rows` fresh (BID, Item) rows shaped like arriving baskets:
// kDeltaBasketSize items per new basket id, items cycling the catalog.
// `*counter` persists across batches so every batch is disjoint from the
// base and from earlier batches (the append dedups nothing away).
Relation FreshDelta(int rows, std::int64_t* counter) {
  Relation delta("delta", Schema({"BID", "Item"}));
  for (int i = 0; i < rows; ++i) {
    std::int64_t n = (*counter)++;
    delta.AddRow({Value(kDeltaBidBase + n / kDeltaBasketSize),
                  Value(n % RetailConfig().n_items)});
  }
  return delta;
}

// Mirrors the shell's LOAD ... APPEND: merge, republish, record lineage
// (when `inc` is non-null) so the evaluator can take the delta path.
void ApplyDelta(Database& db, IncrementalEvaluator* inc,
                const Relation& delta) {
  std::shared_ptr<const Relation> old = db.GetShared("baskets");
  Result<Relation> merged = AppendRelation(*old, delta);
  QF_CHECK(merged.ok());
  db.PutRelation(std::move(*merged));
  if (inc != nullptr) {
    inc->RecordAppend("baskets", std::move(old), db.GetShared("baskets"));
  }
}

void BM_Incr_FullRecompute(benchmark::State& state) {
  Database db = RetailDb();
  std::int64_t counter = 0;
  // One delta lands first so both sides evaluate a same-shaped relation.
  ApplyDelta(db, nullptr, FreshDelta(static_cast<int>(state.range(0)),
                                     &counter));
  QueryFlock flock =
      bench::MustFlock(kPairQuery, FilterCondition::MinSupport(kSupport));
  std::size_t assignments = 0;
  for (auto _ : state) {
    Relation result = bench::MustOk(EvaluateFlock(flock, db));
    assignments = result.size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["assignments"] = static_cast<double>(assignments);
}

void BM_Incr_DeltaUpdate(benchmark::State& state) {
  Database db = RetailDb();
  QueryFlock flock =
      bench::MustFlock(kPairQuery, FilterCondition::MinSupport(kSupport));
  std::map<std::string, Relation> no_views;
  IncrementalEvaluator inc;
  IncrementalEvalOptions opts;
  Relation served;
  IncrementalRunInfo info;
  QF_CHECK(inc.Run("pairs", flock, db, no_views, opts, &served, &info).ok());
  QF_CHECK(info.served && info.decision == "build");
  std::int64_t counter = 0;
  std::size_t assignments = 0;
  for (auto _ : state) {
    state.PauseTiming();
    ApplyDelta(db, &inc,
               FreshDelta(static_cast<int>(state.range(0)), &counter));
    state.ResumeTiming();
    QF_CHECK(
        inc.Run("pairs", flock, db, no_views, opts, &served, &info).ok());
    QF_CHECK(info.served && info.decision.rfind("delta", 0) == 0);
    assignments = served.size();
    bench::ConsumeScalar(assignments);
  }
  state.counters["assignments"] = static_cast<double>(assignments);
  state.counters["state_bytes"] = static_cast<double>(info.state_bytes);
}

void BM_Incr_CachedServe(benchmark::State& state) {
  Database db = RetailDb();
  QueryFlock flock =
      bench::MustFlock(kPairQuery, FilterCondition::MinSupport(kSupport));
  std::map<std::string, Relation> no_views;
  IncrementalEvaluator inc;
  IncrementalEvalOptions opts;
  Relation served;
  IncrementalRunInfo info;
  QF_CHECK(inc.Run("pairs", flock, db, no_views, opts, &served, &info).ok());
  QF_CHECK(info.served && info.decision == "build");
  std::size_t assignments = 0;
  for (auto _ : state) {
    QF_CHECK(
        inc.Run("pairs", flock, db, no_views, opts, &served, &info).ok());
    QF_CHECK(info.served && info.decision == "cached");
    assignments = served.size();
    bench::ConsumeScalar(assignments);
  }
  state.counters["assignments"] = static_cast<double>(assignments);
}

#define QF_INCR_ARGS \
  ->Arg(1)->Arg(10)->Arg(100)->Arg(2000)->Unit(benchmark::kMillisecond)

BENCHMARK(BM_Incr_FullRecompute) QF_INCR_ARGS;
BENCHMARK(BM_Incr_DeltaUpdate) QF_INCR_ARGS;
BENCHMARK(BM_Incr_CachedServe)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace qf

BENCHMARK_MAIN();
