// Ablation — how good are the optimizer's estimates? (DESIGN.md lists the
// System-R cost model and the §4.4 statistics refinement as design
// choices; this bench quantifies them.)
//
// For the market-basket prefilter subquery at several thresholds, compares
//   * the coarse survivor model (distinct counts + exponential tail),
//   * the profiled estimate (per-column frequency profiles — exact),
// against the measured survivor count; counters report est vs actual.
// Also times statistics collection itself (shallow vs detailed), the cost
// the profiled accuracy is bought with.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "datalog/parser.h"
#include "flocks/eval.h"
#include "optimizer/cost_model.h"
#include "workload/basket_gen.h"

namespace qf {
namespace {

const Database& BasketsDb() {
  static const Database* db = [] {
    BasketConfig config;
    config.n_baskets = 10000;
    config.n_items = 5000;
    config.avg_basket_size = 8;
    config.zipf_theta = 0.9;
    config.topic_locality = 0.3;
    config.seed = 77;
    auto* out = new Database;
    out->PutRelation(GenerateBaskets(config));
    return out;
  }();
  return *db;
}

std::size_t ActualSurvivors(double threshold) {
  QueryFlock flock = bench::MustFlock("answer(B) :- baskets(B,$1)",
                                      FilterCondition::MinSupport(threshold));
  return bench::MustOk(EvaluateFlock(flock, BasketsDb())).size();
}

void BM_CostModel_CoarseSurvivors(benchmark::State& state) {
  double threshold = static_cast<double>(state.range(0));
  CostModel model(DatabaseStats::Compute(BasketsDb()));
  ConjunctiveQuery sub =
      bench::MustOk(ParseRule("answer(B) :- baskets(B,$1)"));
  double est = 0;
  for (auto _ : state) {
    est = model.EstimateFilter(sub, threshold).survivors;
    bench::ConsumeScalar(est);
  }
  state.counters["estimated"] = est;
  state.counters["actual"] = static_cast<double>(ActualSurvivors(threshold));
}

void BM_CostModel_ProfiledSurvivors(benchmark::State& state) {
  double threshold = static_cast<double>(state.range(0));
  CostModel model(DatabaseStats::Compute(BasketsDb(), /*detailed=*/true));
  ConjunctiveQuery sub =
      bench::MustOk(ParseRule("answer(B) :- baskets(B,$1)"));
  double est = 0;
  for (auto _ : state) {
    est = model.EstimateFilter(sub, threshold).survivors;
    bench::ConsumeScalar(est);
  }
  state.counters["estimated"] = est;
  state.counters["actual"] = static_cast<double>(ActualSurvivors(threshold));
}

void BM_CostModel_JoinEstimate(benchmark::State& state) {
  CostModel model(DatabaseStats::Compute(BasketsDb()));
  ConjunctiveQuery pair = bench::MustOk(
      ParseRule("answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2"));
  double est = 0;
  for (auto _ : state) {
    est = model.EstimateCq(pair).result_rows;
    bench::ConsumeScalar(est);
  }
  // Actual bindings of the pair query (computed once).
  static const std::size_t kActual = [] {
    QueryFlock flock = bench::MustFlock(
        "answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2",
        FilterCondition::MinSupport(1));
    FlockEvalInfo info;
    bench::MustOk(EvaluateFlock(flock, BasketsDb(), {}, nullptr, &info));
    return info.answer_rows;
  }();
  state.counters["estimated"] = est;
  state.counters["actual"] = static_cast<double>(kActual);
}

void BM_CostModel_StatsShallow(benchmark::State& state) {
  for (auto _ : state) {
    DatabaseStats stats = DatabaseStats::Compute(BasketsDb());
    benchmark::DoNotOptimize(stats);
  }
}

void BM_CostModel_StatsDetailed(benchmark::State& state) {
  for (auto _ : state) {
    DatabaseStats stats = DatabaseStats::Compute(BasketsDb(), true);
    benchmark::DoNotOptimize(stats);
  }
}

#define QF_CM_ARGS ->Arg(10)->Arg(20)->Arg(40)->Arg(80)

BENCHMARK(BM_CostModel_CoarseSurvivors) QF_CM_ARGS;
BENCHMARK(BM_CostModel_ProfiledSurvivors) QF_CM_ARGS;
BENCHMARK(BM_CostModel_JoinEstimate);
BENCHMARK(BM_CostModel_StatsShallow)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CostModel_StatsDetailed)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace qf

BENCHMARK_MAIN();
