// Experiment E3 — Fig. 3 / Example 3.2: which of the medical flock's safe
// subqueries pay off, as the data statistics vary.
//
// The paper (Ex. 3.2) argues the choice among subqueries
//   (1) okS: exhibits(P,$s)                — filter rare symptoms,
//   (2) okM: treatments(P,$m)              — filter rare medicines,
//   (4) okPair: exhibits AND treatments    — filter ($s,$m) pairs,
// "depends on the statistics of the situation": prefilters pay when rare
// symptoms/medicines carry much of the data. The sweep varies the Zipf
// exponent of symptom popularity — flatter (arg 0) means more mass in the
// rare tail and bigger prefilter wins; more skewed (arg 2) means frequent
// symptoms dominate and prefilters approach break-even.
#include <benchmark/benchmark.h>

#include <map>

#include "bench/bench_util.h"
#include "flocks/eval.h"
#include "optimizer/executor_support.h"
#include "optimizer/join_order.h"
#include "optimizer/plan_search.h"
#include "workload/medical_gen.h"

namespace qf {
namespace {

constexpr const char* kQuery =
    "answer(P) :- exhibits(P,$s) AND treatments(P,$m) AND "
    "diagnoses(P,D) AND NOT causes(D,$s)";
constexpr double kSupport = 10;
constexpr double kThetas[] = {0.45, 0.8, 1.15};

const Database& MedicalDb(int theta_index) {
  static std::map<int, const Database*>* cache =
      new std::map<int, const Database*>;
  auto it = cache->find(theta_index);
  if (it == cache->end()) {
    MedicalConfig config;
    config.n_patients = 15000;
    config.n_diseases = 60;
    config.n_symptoms = 8000;
    config.n_medicines = 4000;
    config.symptoms_per_patient = 5;
    config.medicines_per_patient = 3;
    config.symptom_theta = kThetas[theta_index];
    config.medicine_theta = kThetas[theta_index];
    config.seed = 17;
    it = cache->emplace(theta_index, new Database(GenerateMedical(config)))
             .first;
  }
  return *it->second;
}

QueryFlock MedicalFlock() {
  return bench::MustFlock(kQuery, FilterCondition::MinSupport(kSupport));
}

// kept-subgoal sets, per Ex. 3.2 numbering: 0=exhibits 1=treatments
// 2=diagnoses 3=NOT causes.
QueryPlan MakePlan(const QueryFlock& flock,
                   const std::vector<std::pair<std::string,
                                               std::vector<std::size_t>>>&
                       prefilter_specs) {
  std::vector<FilterStep> steps;
  for (const auto& [name, kept] : prefilter_specs) {
    std::set<std::string> params;
    for (std::size_t i : kept) {
      for (const Term& t : flock.query.disjuncts[0].subgoals[i].terms()) {
        if (t.is_parameter()) params.insert(t.name());
      }
    }
    steps.push_back(bench::MustOk(MakeFilterStep(
        flock, name, std::vector<std::string>(params.begin(), params.end()),
        kept)));
  }
  return bench::MustOk(PlanWithPrefilters(flock, std::move(steps)));
}

void RunPlan(benchmark::State& state, const QueryPlan& plan) {
  const Database& db = MedicalDb(static_cast<int>(state.range(0)));
  QueryFlock flock = MedicalFlock();
  std::size_t pairs = 0, peak = 0;
  for (auto _ : state) {
    PlanExecInfo info;
    Relation result =
        bench::MustOk(ExecutePlanOptimized(plan, flock, db, &info));
    pairs = result.size();
    peak = info.total_peak_rows;
    benchmark::DoNotOptimize(result);
  }
  state.counters["pairs"] = static_cast<double>(pairs);
  state.counters["peak_rows"] = static_cast<double>(peak);
}

void BM_Fig3_Direct(benchmark::State& state) {
  const Database& db = MedicalDb(static_cast<int>(state.range(0)));
  QueryFlock flock = MedicalFlock();
  CostModel model(db);
  FlockEvalOptions options = ChooseJoinOrders(flock, model);
  std::size_t pairs = 0;
  for (auto _ : state) {
    Relation result = bench::MustOk(EvaluateFlock(flock, db, options));
    pairs = result.size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["pairs"] = static_cast<double>(pairs);
}

void BM_Fig3_OkS(benchmark::State& state) {
  RunPlan(state, MakePlan(MedicalFlock(), {{"okS", {0}}}));
}

void BM_Fig3_OkM(benchmark::State& state) {
  RunPlan(state, MakePlan(MedicalFlock(), {{"okM", {1}}}));
}

void BM_Fig3_OkSAndOkM(benchmark::State& state) {
  RunPlan(state, MakePlan(MedicalFlock(), {{"okS", {0}}, {"okM", {1}}}));
}

void BM_Fig3_OkPair(benchmark::State& state) {
  RunPlan(state, MakePlan(MedicalFlock(), {{"okPair", {0, 1}}}));
}

void BM_Fig3_Subquery3(benchmark::State& state) {
  // Subquery (3): diagnoses AND exhibits AND NOT causes — "almost the
  // entire query except for the introduction of medicines".
  RunPlan(state, MakePlan(MedicalFlock(), {{"okS3", {0, 2, 3}}}));
}

void BM_Fig3_CostChosen(benchmark::State& state) {
  const Database& db = MedicalDb(static_cast<int>(state.range(0)));
  QueryFlock flock = MedicalFlock();
  CostModel model(db);
  QueryPlan plan = bench::MustOk(SearchPlanParameterSets(flock, model));
  state.counters["steps"] = static_cast<double>(plan.steps.size());
  RunPlan(state, plan);
}

// As above but with frequency profiles (exact prefilter-survivor
// estimates, the §4.4 statistics refinement): the planner should stop
// mispicking the okPair step at head-heavy skew.
void BM_Fig3_CostChosenProfiled(benchmark::State& state) {
  const Database& db = MedicalDb(static_cast<int>(state.range(0)));
  QueryFlock flock = MedicalFlock();
  CostModel model(DatabaseStats::Compute(db, /*detailed=*/true));
  QueryPlan plan = bench::MustOk(SearchPlanParameterSets(flock, model));
  state.counters["steps"] = static_cast<double>(plan.steps.size());
  RunPlan(state, plan);
}

#define QF_FIG3_ARGS \
  ->Arg(0)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond)

BENCHMARK(BM_Fig3_Direct) QF_FIG3_ARGS;
BENCHMARK(BM_Fig3_OkS) QF_FIG3_ARGS;
BENCHMARK(BM_Fig3_OkM) QF_FIG3_ARGS;
BENCHMARK(BM_Fig3_OkSAndOkM) QF_FIG3_ARGS;
BENCHMARK(BM_Fig3_OkPair) QF_FIG3_ARGS;
BENCHMARK(BM_Fig3_Subquery3) QF_FIG3_ARGS;
BENCHMARK(BM_Fig3_CostChosen) QF_FIG3_ARGS;
BENCHMARK(BM_Fig3_CostChosenProfiled) QF_FIG3_ARGS;

}  // namespace
}  // namespace qf

BENCHMARK_MAIN();
