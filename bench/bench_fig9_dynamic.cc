// Experiment E7 — Figs. 8-9 / §4.4: dynamic selection of filter steps.
//
// Strategies over the market-basket flock, sweeping the item-popularity
// skew (arg: 0 -> theta 0.5 flat/tail-heavy, 1 -> 0.9, 2 -> 1.3 head-heavy):
//   * StaticNone    — trivial plan (never filter): the "worst static";
//   * StaticAlways  — both prefilters unconditionally;
//   * CostChosen    — heuristic 1 with the cost model (static, estimated);
//   * Dynamic       — §4.4: decide per intermediate, from observed sizes.
// Expected shape: no single static choice wins everywhere; the dynamic
// strategy tracks the better static option in each regime without a cost
// model, because it reacts to the sizes it actually sees.
#include <benchmark/benchmark.h>

#include <map>

#include "bench/bench_util.h"
#include "common/check.h"
#include "flocks/eval.h"
#include "optimizer/dynamic.h"
#include "optimizer/executor_support.h"
#include "optimizer/plan_search.h"
#include "workload/basket_gen.h"

namespace qf {
namespace {

constexpr const char* kPairQuery =
    "answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2";
constexpr double kThetas[] = {0.5, 0.9, 1.3};
constexpr double kSupport = 15;

const Database& BasketsDb(int theta_index) {
  static std::map<int, const Database*>* cache =
      new std::map<int, const Database*>;
  auto it = cache->find(theta_index);
  if (it == cache->end()) {
    BasketConfig config;
    config.n_baskets = 15000;
    config.n_items = 8000;
    config.avg_basket_size = 8;
    config.zipf_theta = kThetas[theta_index];
    config.topic_locality = 0.3;
    config.n_topics = 120;
    config.seed = 47;
    auto* db = new Database;
    db->PutRelation(GenerateBaskets(config));
    it = cache->emplace(theta_index, db).first;
  }
  return *it->second;
}

QueryFlock PairFlock() {
  return bench::MustFlock(kPairQuery, FilterCondition::MinSupport(kSupport));
}

void BM_Fig9_StaticNone(benchmark::State& state) {
  const Database& db = BasketsDb(static_cast<int>(state.range(0)));
  QueryFlock flock = PairFlock();
  std::size_t pairs = 0;
  for (auto _ : state) {
    Relation result = bench::MustOk(EvaluateFlock(flock, db));
    pairs = result.size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["pairs"] = static_cast<double>(pairs);
}

void BM_Fig9_StaticAlways(benchmark::State& state) {
  const Database& db = BasketsDb(static_cast<int>(state.range(0)));
  QueryFlock flock = PairFlock();
  auto ok1 = bench::MustOk(
      MakeFilterStep(flock, "ok1", {"1"}, std::vector<std::size_t>{0}));
  auto ok2 = bench::MustOk(
      MakeFilterStep(flock, "ok2", {"2"}, std::vector<std::size_t>{1}));
  QueryPlan plan = bench::MustOk(PlanWithPrefilters(flock, {ok1, ok2}));
  std::size_t pairs = 0;
  for (auto _ : state) {
    Relation result = bench::MustOk(ExecutePlanOptimized(plan, flock, db));
    pairs = result.size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["pairs"] = static_cast<double>(pairs);
}

void BM_Fig9_CostChosen(benchmark::State& state) {
  const Database& db = BasketsDb(static_cast<int>(state.range(0)));
  QueryFlock flock = PairFlock();
  CostModel model(db);
  QueryPlan plan = bench::MustOk(SearchPlanParameterSets(flock, model));
  std::size_t pairs = 0;
  for (auto _ : state) {
    Relation result = bench::MustOk(ExecutePlanOptimized(plan, flock, db));
    pairs = result.size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["pairs"] = static_cast<double>(pairs);
  state.counters["steps"] = static_cast<double>(plan.steps.size());
}

void BM_Fig9_Dynamic(benchmark::State& state) {
  const Database& db = BasketsDb(static_cast<int>(state.range(0)));
  QueryFlock flock = PairFlock();
  std::size_t pairs = 0, filters = 0, peak = 0;
  for (auto _ : state) {
    DynamicLog log;
    Relation result = bench::MustOk(DynamicEvaluate(flock, db, {}, &log));
    pairs = result.size();
    filters = log.filters_applied;
    peak = log.peak_rows;
    benchmark::DoNotOptimize(result);
  }
  state.counters["pairs"] = static_cast<double>(pairs);
  state.counters["filters"] = static_cast<double>(filters);
  state.counters["peak_rows"] = static_cast<double>(peak);
}

// Parallel plan execution (args: theta index, threads): both prefilter
// steps are independent, so the wave scheduler runs them concurrently and
// every step's joins and group-bys go morsel-parallel. Verified outside
// the timed region to return exactly the serial rows.
void BM_Fig9_StaticAlwaysThreads(benchmark::State& state) {
  const Database& db = BasketsDb(static_cast<int>(state.range(0)));
  QueryFlock flock = PairFlock();
  auto ok1 = bench::MustOk(
      MakeFilterStep(flock, "ok1", {"1"}, std::vector<std::size_t>{0}));
  auto ok2 = bench::MustOk(
      MakeFilterStep(flock, "ok2", {"2"}, std::vector<std::size_t>{1}));
  QueryPlan plan = bench::MustOk(PlanWithPrefilters(flock, {ok1, ok2}));
  unsigned threads = static_cast<unsigned>(state.range(1));
  {
    Relation serial = bench::MustOk(ExecutePlanOptimized(plan, flock, db));
    Relation parallel = bench::MustOk(
        ExecutePlanOptimized(plan, flock, db, nullptr, threads));
    QF_CHECK(serial.rows() == parallel.rows());
  }
  std::size_t pairs = 0;
  for (auto _ : state) {
    Relation result = bench::MustOk(
        ExecutePlanOptimized(plan, flock, db, nullptr, threads));
    pairs = result.size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["pairs"] = static_cast<double>(pairs);
}

#define QF_FIG9_ARGS ->Arg(0)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond)

BENCHMARK(BM_Fig9_StaticNone) QF_FIG9_ARGS;
BENCHMARK(BM_Fig9_StaticAlways) QF_FIG9_ARGS;
BENCHMARK(BM_Fig9_CostChosen) QF_FIG9_ARGS;
BENCHMARK(BM_Fig9_Dynamic) QF_FIG9_ARGS;
BENCHMARK(BM_Fig9_StaticAlwaysThreads)
    ->Args({1, 1})
    ->Args({1, 2})
    ->Args({1, 4})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace qf

BENCHMARK_MAIN();
