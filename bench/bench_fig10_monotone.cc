// Experiment E8 — Fig. 10 (Future Work): weighted market baskets with a
// monotone SUM filter.
//
//   answer(B,W) :- baskets(B,$1) AND baskets(B,$2) AND importance(B,W)
//   SUM(answer.W) >= t
//
// The a-priori argument carries over to any monotone filter: an item can
// only appear in a heavy pair if its own weighted support is heavy, so the
// singleton prefilter stays legal (plan/legality.h accepts it) and sound.
// Expected shape: the prefilter wins, growing with the threshold.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "flocks/eval.h"
#include "optimizer/executor_support.h"
#include "plan/plan.h"
#include "workload/basket_gen.h"

namespace qf {
namespace {

constexpr const char* kWeightedQuery =
    "answer(B,W) :- baskets(B,$1) AND baskets(B,$2) AND importance(B,W) "
    "AND $1 < $2";

const Database& WeightedDb() {
  static const Database* db = [] {
    BasketConfig config;
    config.n_baskets = 12000;
    config.n_items = 6000;
    config.avg_basket_size = 8;
    config.zipf_theta = 0.5;
    config.topic_locality = 0.35;
    config.n_topics = 120;
    config.seed = 53;
    auto* out = new Database;
    out->PutRelation(GenerateBaskets(config));
    out->PutRelation(GenerateImportance(config, /*mean_weight=*/1.0));
    return out;
  }();
  return *db;
}

QueryFlock WeightedFlock(double threshold) {
  return bench::MustFlock(
      kWeightedQuery,
      FilterCondition{FilterAgg::kSum, CompareOp::kGe, threshold,
                      /*agg_head_index=*/1});
}

void BM_Fig10_Direct(benchmark::State& state) {
  QueryFlock flock = WeightedFlock(static_cast<double>(state.range(0)));
  std::size_t pairs = 0;
  for (auto _ : state) {
    Relation result = bench::MustOk(EvaluateFlock(flock, WeightedDb()));
    pairs = result.size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["pairs"] = static_cast<double>(pairs);
}

void BM_Fig10_MonotonePrefilter(benchmark::State& state) {
  QueryFlock flock = WeightedFlock(static_cast<double>(state.range(0)));
  // Each prefilter keeps one baskets subgoal plus importance, so the SUM
  // bound applies per item.
  auto ok1 = bench::MustOk(
      MakeFilterStep(flock, "ok1", {"1"}, std::vector<std::size_t>{0, 2}));
  auto ok2 = bench::MustOk(
      MakeFilterStep(flock, "ok2", {"2"}, std::vector<std::size_t>{1, 2}));
  QueryPlan plan = bench::MustOk(PlanWithPrefilters(flock, {ok1, ok2}));
  std::size_t pairs = 0, peak = 0;
  for (auto _ : state) {
    PlanExecInfo info;
    Relation result =
        bench::MustOk(ExecutePlanOptimized(plan, flock, WeightedDb(), &info));
    pairs = result.size();
    peak = info.total_peak_rows;
    benchmark::DoNotOptimize(result);
  }
  state.counters["pairs"] = static_cast<double>(pairs);
  state.counters["peak_rows"] = static_cast<double>(peak);
}

#define QF_FIG10_ARGS \
  ->Arg(20)->Arg(40)->Arg(80)->Unit(benchmark::kMillisecond)

BENCHMARK(BM_Fig10_Direct) QF_FIG10_ARGS;
BENCHMARK(BM_Fig10_MonotonePrefilter) QF_FIG10_ARGS;

}  // namespace
}  // namespace qf

BENCHMARK_MAIN();
