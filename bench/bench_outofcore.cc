// Experiment E8 — out-of-core execution: the Fig. 2 market-basket flock
// at 10x the retail workload, evaluated under memory budgets far below
// its in-memory peak.
//
//   * InMemory   — unbudgeted baseline (the PR 3 fast path, untouched);
//   * Spill/N    — budget = peak/N with a spill environment: grace-hash
//                  partitioning keeps the query running and the answer
//                  bit-identical (checked every iteration);
//   * PagedScan/P — streaming scan of a paged relation file through a
//                  buffer pool sized at P% of the file, measuring the
//                  re-read cost the clock replacer pays under pressure.
//
// Startup also proves the before picture: the same halved budget WITHOUT
// a spill environment must return RESOURCE_EXHAUSTED — that is the abort
// this subsystem exists to turn into a slower-but-correct answer.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/check.h"
#include "common/resource.h"
#include "common/status.h"
#include "common/vfs.h"
#include "flocks/eval.h"
#include "relational/spill.h"
#include "storage/buffer_pool.h"
#include "storage/page.h"
#include "workload/basket_gen.h"

namespace qf {
namespace {

constexpr const char* kPairQuery =
    "answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2";
// Support scales linearly with the basket count: 500 at 10x data sits on
// the same point of the support curve as Fig. 2's 50 at 1x.
constexpr std::int64_t kSupport = 500;

BasketConfig TenXRetailConfig() {
  BasketConfig config;
  config.n_baskets = 200000;  // 10x bench_fig2_market_basket's RetailConfig
  config.n_items = 3000;
  config.avg_basket_size = 10;
  config.zipf_theta = 0.75;
  config.topic_locality = 0.35;
  config.n_topics = 150;
  config.seed = 7;
  return config;
}

const Database& TenXDb() {
  static const Database* db = [] {
    auto* out = new Database;
    out->PutRelation(GenerateBaskets(TenXRetailConfig()));
    return out;
  }();
  return *db;
}

struct Baseline {
  Relation result;
  std::uint64_t peak_bytes;
};

const Baseline& UnbudgetedBaseline() {
  static const Baseline* base = [] {
    QueryFlock flock =
        bench::MustFlock(kPairQuery, FilterCondition::MinSupport(kSupport));
    QueryContext ctx;
    FlockEvalOptions opts;
    opts.threads = 1;
    opts.ctx = &ctx;
    Relation r = bench::MustOk(EvaluateFlock(flock, TenXDb(), opts));
    auto* out = new Baseline{std::move(r), ctx.peak_bytes()};
    QF_CHECK(out->peak_bytes > 0);
    // The before picture: half the peak with no spill environment is a
    // typed hard abort, not a wrong answer and not a crash.
    QueryContext starved;
    starved.set_memory_budget(out->peak_bytes / 2);
    FlockEvalOptions sopts;
    sopts.threads = 1;
    sopts.ctx = &starved;
    Result<Relation> denied = EvaluateFlock(flock, TenXDb(), sopts);
    QF_CHECK(!denied.ok());
    QF_CHECK(denied.status().code() == StatusCode::kResourceExhausted);
    return out;
  }();
  return *base;
}

void BM_OutOfCore_InMemory(benchmark::State& state) {
  const Baseline& base = UnbudgetedBaseline();
  QueryFlock flock =
      bench::MustFlock(kPairQuery, FilterCondition::MinSupport(kSupport));
  for (auto _ : state) {
    Relation r = bench::MustOk(EvaluateFlock(flock, TenXDb()));
    QF_CHECK(r.rows() == base.result.rows());
    benchmark::DoNotOptimize(r);
  }
  state.counters["answers"] = static_cast<double>(base.result.size());
  state.counters["peak_mb"] =
      static_cast<double>(base.peak_bytes) / (1024.0 * 1024.0);
}

// Arg: divisor of the in-memory peak — Spill/4 runs under a quarter of
// the memory the unbudgeted evaluation used.
void BM_OutOfCore_Spill(benchmark::State& state) {
  const Baseline& base = UnbudgetedBaseline();
  std::uint64_t budget =
      base.peak_bytes / static_cast<std::uint64_t>(state.range(0));
  QueryFlock flock =
      bench::MustFlock(kPairQuery, FilterCondition::MinSupport(kSupport));
  PosixVfs vfs;
  const std::string dir = "bench_outofcore_spill";
  std::uint64_t spilled_rows = 0;
  std::uint64_t spill_bytes = 0;
  for (auto _ : state) {
    SpillEnv env;
    env.vfs = &vfs;
    env.dir = dir;
    QueryContext ctx;
    ctx.set_memory_budget(budget);
    ctx.set_spill_env(&env);
    FlockEvalOptions opts;
    opts.threads = 1;
    opts.ctx = &ctx;
    Relation r = bench::MustOk(EvaluateFlock(flock, TenXDb(), opts));
    // The whole point: bit-identical under pressure.
    QF_CHECK(r.rows() == base.result.rows());
    QF_CHECK(env.stats.activations.load() > 0);
    spilled_rows = env.stats.spilled_rows.load();
    spill_bytes =
        env.stats.bytes_written.load() + env.stats.bytes_read.load();
    benchmark::DoNotOptimize(r);
  }
  // Spill files never outlive their statement; this sweep is bookkeeping
  // for the directory itself.
  QF_CHECK(bench::MustOk(RemoveSpillFiles(vfs, dir)) == 0);
  state.counters["budget_mb"] =
      static_cast<double>(budget) / (1024.0 * 1024.0);
  state.counters["spilled_rows"] = static_cast<double>(spilled_rows);
  state.counters["spill_mb"] =
      static_cast<double>(spill_bytes) / (1024.0 * 1024.0);
}

struct PagedFile {
  std::string path;
  std::uint64_t decoded_bytes;  // sum of in-memory page charges
  std::uint64_t rows;
};

const PagedFile& BenchPagedFile() {
  static const PagedFile* file = [] {
    static PosixVfs vfs;
    Relation rel = GenerateBaskets([] {
      BasketConfig c;
      c.n_baskets = 20000;
      c.n_items = 3000;
      c.avg_basket_size = 10;
      c.seed = 7;
      return c;
    }());
    auto* out = new PagedFile{"bench_outofcore_pages.qfp", 0, rel.size()};
    bench::MustOk(WritePagedRelation(vfs, out->path, rel));
    // The pool caches decoded pages, so capacity percentages are against
    // the decoded (accounted) size, not the serialized file size.
    std::unique_ptr<DiskRelation> disk =
        bench::MustOk(DiskRelation::Open(vfs, out->path));
    for (std::size_t p = 0; p < disk->page_count(); ++p) {
      out->decoded_bytes += bench::MustOk(disk->ReadPage(p))->bytes;
    }
    return out;
  }();
  return *file;
}

// Arg: buffer-pool capacity as a percent of the paged file. 100 scans
// entirely from cache after warmup; 10 forces the clock replacer to
// evict and re-read pages continuously — the steady-state cost of
// reading a relation that does not fit.
void BM_OutOfCore_PagedScan(benchmark::State& state) {
  const PagedFile& file = BenchPagedFile();
  PosixVfs vfs;
  BufferPool pool(file.decoded_bytes *
                  static_cast<std::uint64_t>(state.range(0)) / 100);
  std::unique_ptr<DiskRelation> disk =
      bench::MustOk(DiskRelation::Open(vfs, file.path, &pool));
  std::uint64_t rows = 0;
  auto count = [&rows](const Tuple&) {
    ++rows;
    return Status::Ok();
  };
  // Warm scan so the 100% case measures hits, not cold misses.
  rows = 0;
  QF_CHECK(disk->Scan(count).ok());
  QF_CHECK(rows == file.rows);
  for (auto _ : state) {
    rows = 0;
    QF_CHECK(disk->Scan(count).ok());
    QF_CHECK(rows == file.rows);
    bench::ConsumeScalar(rows);
  }
  BufferPoolStats st = pool.stats();
  double total = static_cast<double>(st.hits + st.misses);
  state.counters["hit_rate"] =
      total > 0 ? static_cast<double>(st.hits) / total : 0.0;
  state.counters["evictions"] = static_cast<double>(st.evictions);
}

BENCHMARK(BM_OutOfCore_InMemory)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_OutOfCore_Spill)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_OutOfCore_PagedScan)
    ->Arg(10)
    ->Arg(100)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace qf

BENCHMARK_MAIN();
