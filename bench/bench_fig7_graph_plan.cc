// Experiment E6 — Figs. 6-7 / Example 4.3: the path-query flock
//
//   answer(X) :- arc($1,X) AND arc(X,Y1) AND ... AND arc(Y[n-1],Yn)
//   COUNT(answer.X) >= s
//
// and the (n+1)-step cascade plan, which re-filters $1 with one more arc
// of lookahead per step. The plan space has no exponential bound (each
// step may reuse the previous), and this cascade is the paper's witness
// that long chains "might make a useful simplification" — expected shape:
// the cascade's advantage grows with n while the direct join blows up
// multiplicatively.
#include <benchmark/benchmark.h>

#include <string>

#include "bench/bench_util.h"
#include "flocks/eval.h"
#include "optimizer/executor_support.h"
#include "optimizer/plan_search.h"
#include "workload/graph_gen.h"

namespace qf {
namespace {

const Database& GraphDb() {
  static const Database* db = [] {
    GraphConfig config;
    config.n_nodes = 2500;
    config.avg_out_degree = 5;
    config.target_theta = 0.9;
    config.sink_fraction = 0.35;  // dangling arcs for the reducer to kill
    config.seed = 5;
    auto* out = new Database;
    out->PutRelation(GenerateGraph(config));
    return out;
  }();
  return *db;
}

std::string PathQuery(int n) {
  std::string q = "answer(X) :- arc($1,X)";
  std::string prev = "X";
  for (int i = 1; i <= n; ++i) {
    std::string next = "Y" + std::to_string(i);
    q += " AND arc(" + prev + "," + next + ")";
    prev = next;
  }
  return q;
}

QueryFlock PathFlock(int n) {
  return bench::MustFlock(PathQuery(n), FilterCondition::MinSupport(7));
}

void BM_Fig7_Direct(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  QueryFlock flock = PathFlock(n);
  std::size_t answers = 0, peak = 0;
  for (auto _ : state) {
    FlockEvalInfo info;
    Relation result =
        bench::MustOk(EvaluateFlock(flock, GraphDb(), {}, nullptr, &info));
    answers = result.size();
    peak = info.peak_rows;
    benchmark::DoNotOptimize(result);
  }
  state.counters["answers"] = static_cast<double>(answers);
  state.counters["peak_rows"] = static_cast<double>(peak);
}

void BM_Fig7_Cascade(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  QueryFlock flock = PathFlock(n);
  std::vector<std::vector<std::size_t>> prefixes;
  for (int k = 1; k <= n; ++k) {
    std::vector<std::size_t> prefix;
    for (int i = 0; i < k; ++i) prefix.push_back(i);
    prefixes.push_back(prefix);
  }
  QueryPlan plan = bench::MustOk(CascadePlan(flock, prefixes));
  std::size_t answers = 0, peak = 0;
  for (auto _ : state) {
    PlanExecInfo info;
    Relation result =
        bench::MustOk(ExecutePlanOptimized(plan, flock, GraphDb(), &info));
    answers = result.size();
    peak = info.total_peak_rows;
    benchmark::DoNotOptimize(result);
  }
  state.counters["answers"] = static_cast<double>(answers);
  state.counters["peak_rows"] = static_cast<double>(peak);
}

// The Yannakakis full reducer prunes by *joinability* where the cascade
// prunes by *support*; on path queries both attack the same dangling-
// tuple blowup, so it makes a natural third column.
void BM_Fig7_FullReducer(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  QueryFlock flock = PathFlock(n);
  FlockEvalOptions options;
  CqEvalOptions cq_options;
  cq_options.full_reducer = true;
  options.per_disjunct.push_back(cq_options);
  std::size_t answers = 0, peak = 0;
  for (auto _ : state) {
    FlockEvalInfo info;
    Relation result = bench::MustOk(
        EvaluateFlock(flock, GraphDb(), options, nullptr, &info));
    answers = result.size();
    peak = info.peak_rows;
    benchmark::DoNotOptimize(result);
  }
  state.counters["answers"] = static_cast<double>(answers);
  state.counters["peak_rows"] = static_cast<double>(peak);
}

BENCHMARK(BM_Fig7_Direct)->DenseRange(1, 3)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Fig7_Cascade)->DenseRange(1, 3)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Fig7_FullReducer)->DenseRange(1, 3)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace qf

BENCHMARK_MAIN();
