// Experiment E1 — the §1.3 claim and Fig. 1.
//
// Paper: expressing "pairs of items in >= 20 baskets" in SQL (Fig. 1) and
// running it on a popular DBMS, versus first filtering items to those with
// >= 20 occurrences and then running the restricted query, gave a 20-fold
// speedup on newspaper word-occurrence data.
//
// Here: the same pair flock over Zipf word-occurrence data.
//   * NaiveSql        — the direct evaluator (no a-priori rewrite; what a
//                       conventional optimizer executes for Fig. 1);
//   * AprioriRewrite  — the two-prefilter plan (ok1/ok2), cost-ordered.
// Expected shape: the rewrite wins by roughly an order of magnitude; the
// deeper the support threshold cuts into the Zipf tail, the bigger the
// factor.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "flocks/eval.h"
#include "optimizer/executor_support.h"
#include "plan/plan.h"
#include "workload/basket_gen.h"

namespace qf {
namespace {

constexpr const char* kPairQuery =
    "answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2";

const Database& WordDb() {
  static const Database* db = [] {
    BasketConfig config;
    config.n_baskets = 8000;   // documents
    config.n_items = 30000;    // vocabulary
    config.avg_basket_size = 25;
    config.zipf_theta = 0.35;  // long tail: most words are rare
    config.topic_locality = 0.35;
    config.n_topics = 120;
    config.seed = 42;
    auto* out = new Database;
    out->PutRelation(GenerateBaskets(config));
    return out;
  }();
  return *db;
}

void BM_Fig1_NaiveSql(benchmark::State& state) {
  const Database& db = WordDb();
  QueryFlock flock = bench::MustFlock(
      kPairQuery, FilterCondition::MinSupport(state.range(0)));
  std::size_t pairs = 0, peak = 0;
  for (auto _ : state) {
    FlockEvalInfo info;
    Relation result =
        bench::MustOk(EvaluateFlock(flock, db, {}, nullptr, &info));
    pairs = result.size();
    peak = info.peak_rows;
    benchmark::DoNotOptimize(result);
  }
  state.counters["pairs"] = static_cast<double>(pairs);
  state.counters["peak_rows"] = static_cast<double>(peak);
}

void BM_Fig1_AprioriRewrite(benchmark::State& state) {
  const Database& db = WordDb();
  QueryFlock flock = bench::MustFlock(
      kPairQuery, FilterCondition::MinSupport(state.range(0)));
  QueryPlan plan = [&] {
    auto ok1 = bench::MustOk(
        MakeFilterStep(flock, "ok1", {"1"}, std::vector<std::size_t>{0}));
    auto ok2 = bench::MustOk(
        MakeFilterStep(flock, "ok2", {"2"}, std::vector<std::size_t>{1}));
    return bench::MustOk(PlanWithPrefilters(flock, {ok1, ok2}));
  }();
  std::size_t pairs = 0, peak = 0;
  for (auto _ : state) {
    PlanExecInfo info;
    Relation result =
        bench::MustOk(ExecutePlanOptimized(plan, flock, db, &info));
    pairs = result.size();
    peak = info.total_peak_rows;
    benchmark::DoNotOptimize(result);
  }
  state.counters["pairs"] = static_cast<double>(pairs);
  state.counters["peak_rows"] = static_cast<double>(peak);
}

// Support thresholds: the paper's 20, plus a shallower and deeper cut.
BENCHMARK(BM_Fig1_NaiveSql)->Arg(10)->Arg(20)->Arg(40)
    ->Unit(benchmark::kMillisecond)->MeasureProcessCPUTime();
BENCHMARK(BM_Fig1_AprioriRewrite)->Arg(10)->Arg(20)->Arg(40)
    ->Unit(benchmark::kMillisecond)->MeasureProcessCPUTime();

}  // namespace
}  // namespace qf

BENCHMARK_MAIN();
