// Shared helpers for the benchmark binaries: must-succeed unwrapping and
// lazily built, cached workloads (google-benchmark re-enters each
// benchmark function many times; the data must be built once).
#ifndef QF_BENCH_BENCH_UTIL_H_
#define QF_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <type_traits>
#include <utility>

#include "common/check.h"
#include "common/status.h"
#include "flocks/flock.h"

namespace qf::bench {

// Unwraps a Result, aborting with the status message on failure. Benches
// have no error channel; a failed setup is a bug.
template <typename T>
T MustOk(Result<T> result) {
  QF_CHECK_MSG(result.ok(), result.status().ToString().c_str());
  return std::move(result).value();
}

inline QueryFlock MustFlock(std::string_view query, FilterCondition filter) {
  return MustOk(MakeFlock(query, std::move(filter)));
}

// Defeats dead-code elimination for scalar results. Do NOT use
// benchmark::DoNotOptimize for scalars here: its multi-alternative
// inline-asm constraint miscompiles doubles/bools on this toolchain
// (google/benchmark#1340), silently corrupting the value. A volatile
// store has no such problem; class types are fine with DoNotOptimize
// (memory operand).
template <typename T>
void ConsumeScalar(T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  volatile T sink = value;
  (void)sink;
}

}  // namespace qf::bench

#endif  // QF_BENCH_BENCH_UTIL_H_
