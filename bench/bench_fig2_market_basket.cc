// Experiment E2 — Fig. 2: market-basket analysis as a query flock.
//
// Compares, across support thresholds:
//   * FlockDirect  — the flock evaluator, no rewrite;
//   * FlockPlan    — the generalized a-priori plan (ok1/ok2 prefilters);
//   * Apriori      — the hand-coded two-pass a-priori pair miner [AS94];
//   * NaivePairs   — hand-coded pair counting without the pre-filter.
// Expected shape: the specialized a-priori miner is fastest in absolute
// terms (the paper concedes ad-hoc algorithms beat DBMS evaluation); the
// flock plan tracks the same support-dependence curve — higher support,
// more pruning, faster — while the unfiltered strategies stay flat.
#include <benchmark/benchmark.h>

#include "apriori/apriori.h"
#include "bench/bench_util.h"
#include "common/check.h"
#include "flocks/eval.h"
#include "optimizer/executor_support.h"
#include "plan/plan.h"
#include "workload/basket_gen.h"

namespace qf {
namespace {

constexpr const char* kPairQuery =
    "answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2";

BasketConfig RetailConfig() {
  BasketConfig config;
  config.n_baskets = 20000;
  config.n_items = 3000;
  config.avg_basket_size = 10;
  config.zipf_theta = 0.75;
  config.topic_locality = 0.35;
  config.n_topics = 150;
  config.seed = 7;
  return config;
}

const Database& RetailDb() {
  static const Database* db = [] {
    auto* out = new Database;
    out->PutRelation(GenerateBaskets(RetailConfig()));
    return out;
  }();
  return *db;
}

const BasketData& RetailBaskets() {
  static const BasketData* data = [] {
    return new BasketData(bench::MustOk(
        BasketsFromRelation(RetailDb().Get("baskets"), "BID", "Item")));
  }();
  return *data;
}

void BM_Fig2_FlockDirect(benchmark::State& state) {
  QueryFlock flock = bench::MustFlock(
      kPairQuery, FilterCondition::MinSupport(state.range(0)));
  std::size_t pairs = 0;
  for (auto _ : state) {
    Relation result = bench::MustOk(EvaluateFlock(flock, RetailDb()));
    pairs = result.size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["pairs"] = static_cast<double>(pairs);
}

void BM_Fig2_FlockPlan(benchmark::State& state) {
  QueryFlock flock = bench::MustFlock(
      kPairQuery, FilterCondition::MinSupport(state.range(0)));
  auto ok1 = bench::MustOk(
      MakeFilterStep(flock, "ok1", {"1"}, std::vector<std::size_t>{0}));
  auto ok2 = bench::MustOk(
      MakeFilterStep(flock, "ok2", {"2"}, std::vector<std::size_t>{1}));
  QueryPlan plan = bench::MustOk(PlanWithPrefilters(flock, {ok1, ok2}));
  std::size_t pairs = 0;
  for (auto _ : state) {
    Relation result =
        bench::MustOk(ExecutePlanOptimized(plan, flock, RetailDb()));
    pairs = result.size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["pairs"] = static_cast<double>(pairs);
}

void BM_Fig2_Apriori(benchmark::State& state) {
  const BasketData& data = RetailBaskets();
  std::size_t pairs = 0;
  for (auto _ : state) {
    std::vector<Itemset> result = AprioriFrequentPairs(data, state.range(0));
    pairs = result.size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["pairs"] = static_cast<double>(pairs);
}

void BM_Fig2_NaivePairs(benchmark::State& state) {
  const BasketData& data = RetailBaskets();
  std::size_t pairs = 0;
  for (auto _ : state) {
    std::vector<Itemset> result = NaiveFrequentPairs(data, state.range(0));
    pairs = result.size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["pairs"] = static_cast<double>(pairs);
}

// Threads-parameterized variants (args: support, threads). Before timing,
// each verifies the parallel result is byte-identical to the serial one —
// the determinism contract the morsel engine promises (DESIGN.md,
// "Threading model"). Wall-clock gains require real cores; on a 1-core
// host these measure the coordination overhead instead.
void BM_Fig2_FlockDirectThreads(benchmark::State& state) {
  QueryFlock flock = bench::MustFlock(
      kPairQuery, FilterCondition::MinSupport(state.range(0)));
  FlockEvalOptions options;
  options.threads = static_cast<unsigned>(state.range(1));
  {
    Relation serial = bench::MustOk(EvaluateFlock(flock, RetailDb()));
    Relation parallel =
        bench::MustOk(EvaluateFlock(flock, RetailDb(), options));
    QF_CHECK(serial.schema() == parallel.schema());
    QF_CHECK(serial.rows() == parallel.rows());
  }
  std::size_t pairs = 0;
  for (auto _ : state) {
    Relation result =
        bench::MustOk(EvaluateFlock(flock, RetailDb(), options));
    pairs = result.size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["pairs"] = static_cast<double>(pairs);
}

void BM_Fig2_FlockPlanThreads(benchmark::State& state) {
  QueryFlock flock = bench::MustFlock(
      kPairQuery, FilterCondition::MinSupport(state.range(0)));
  auto ok1 = bench::MustOk(
      MakeFilterStep(flock, "ok1", {"1"}, std::vector<std::size_t>{0}));
  auto ok2 = bench::MustOk(
      MakeFilterStep(flock, "ok2", {"2"}, std::vector<std::size_t>{1}));
  QueryPlan plan = bench::MustOk(PlanWithPrefilters(flock, {ok1, ok2}));
  unsigned threads = static_cast<unsigned>(state.range(1));
  {
    Relation serial =
        bench::MustOk(ExecutePlanOptimized(plan, flock, RetailDb()));
    Relation parallel = bench::MustOk(
        ExecutePlanOptimized(plan, flock, RetailDb(), nullptr, threads));
    QF_CHECK(serial.schema() == parallel.schema());
    QF_CHECK(serial.rows() == parallel.rows());
  }
  std::size_t pairs = 0;
  for (auto _ : state) {
    Relation result = bench::MustOk(
        ExecutePlanOptimized(plan, flock, RetailDb(), nullptr, threads));
    pairs = result.size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["pairs"] = static_cast<double>(pairs);
}

void BM_Fig2_AprioriThreads(benchmark::State& state) {
  const BasketData& data = RetailBaskets();
  unsigned threads = static_cast<unsigned>(state.range(1));
  std::size_t pairs = 0;
  for (auto _ : state) {
    std::vector<Itemset> result =
        AprioriFrequentPairs(data, state.range(0), threads);
    pairs = result.size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["pairs"] = static_cast<double>(pairs);
}

#define QF_FIG2_ARGS \
  ->Arg(20)->Arg(50)->Arg(100)->Arg(200)->Unit(benchmark::kMillisecond)
#define QF_FIG2_THREAD_ARGS                            \
  ->Args({50, 1})->Args({50, 2})->Args({50, 4})        \
  ->Unit(benchmark::kMillisecond)

BENCHMARK(BM_Fig2_FlockDirect) QF_FIG2_ARGS;
BENCHMARK(BM_Fig2_FlockPlan) QF_FIG2_ARGS;
BENCHMARK(BM_Fig2_Apriori) QF_FIG2_ARGS;
BENCHMARK(BM_Fig2_NaivePairs) QF_FIG2_ARGS;
BENCHMARK(BM_Fig2_FlockDirectThreads) QF_FIG2_THREAD_ARGS;
BENCHMARK(BM_Fig2_FlockPlanThreads) QF_FIG2_THREAD_ARGS;
BENCHMARK(BM_Fig2_AprioriThreads) QF_FIG2_THREAD_ARGS;

}  // namespace
}  // namespace qf

BENCHMARK_MAIN();
