// Experiment E9 — §4.3: the search for query plans.
//
// The paper notes the plan space is not even exponentially bounded, and
// proposes restricting it. This bench measures the cost of the machinery
// on synthetic chain flocks with a growing number of subgoals:
//   * SafeSubqueries — enumerating all safe subgoal subsets (2^n scan);
//   * Heuristic1     — greedy parameter-set search with the cost model;
//   * Exhaustive     — cost-ranking all subsets of candidate prefilters.
// Expected shape: enumeration and exhaustive search grow exponentially in
// the subgoal count (but stay trivial at realistic query sizes, which is
// the paper's point that "queries tend to be small"); the greedy
// heuristic grows much more slowly.
#include <benchmark/benchmark.h>

#include <string>

#include "bench/bench_util.h"
#include "datalog/subquery.h"
#include "optimizer/plan_search.h"

namespace qf {
namespace {

// Chain flock with `k` parameters:
//   answer(X0) :- p0(X0,$a0) AND p1(X0,X1) AND p2(X1,$a1) AND ...
// alternating parameter-bearing and linking subgoals (2k-1 subgoals).
QueryFlock ChainFlock(int k) {
  std::string q = "answer(X0) :- p0(X0,$a0)";
  for (int i = 1; i < k; ++i) {
    q += " AND q" + std::to_string(i) + "(X" + std::to_string(i - 1) + ",X" +
         std::to_string(i) + ")";
    q += " AND p" + std::to_string(i) + "(X" + std::to_string(i) + ",$a" +
         std::to_string(i) + ")";
  }
  return bench::MustFlock(q, FilterCondition::MinSupport(20));
}

// Synthetic statistics: every predicate 100k rows, 10k distinct per column.
CostModel SyntheticModel(int k) {
  DatabaseStats stats;
  RelationStats rel;
  rel.rows = 100000;
  rel.column_distinct = {10000, 10000};
  stats.Put("p0", rel);
  for (int i = 1; i < k; ++i) {
    stats.Put("p" + std::to_string(i), rel);
    stats.Put("q" + std::to_string(i), rel);
  }
  return CostModel(std::move(stats));
}

void BM_PlanSearch_SafeSubqueries(benchmark::State& state) {
  QueryFlock flock = ChainFlock(static_cast<int>(state.range(0)));
  const ConjunctiveQuery& cq = flock.query.disjuncts.front();
  std::size_t count = 0;
  for (auto _ : state) {
    std::vector<SubqueryCandidate> subs = EnumerateSafeSubqueries(cq);
    count = subs.size();
    benchmark::DoNotOptimize(subs);
  }
  state.counters["subgoals"] = static_cast<double>(cq.subgoals.size());
  state.counters["safe_subqueries"] = static_cast<double>(count);
}

void BM_PlanSearch_Heuristic1(benchmark::State& state) {
  int k = static_cast<int>(state.range(0));
  QueryFlock flock = ChainFlock(k);
  CostModel model = SyntheticModel(k);
  std::size_t steps = 0;
  for (auto _ : state) {
    QueryPlan plan = bench::MustOk(SearchPlanParameterSets(flock, model));
    steps = plan.steps.size();
    benchmark::DoNotOptimize(plan);
  }
  state.counters["steps"] = static_cast<double>(steps);
}

void BM_PlanSearch_Exhaustive(benchmark::State& state) {
  int k = static_cast<int>(state.range(0));
  QueryFlock flock = ChainFlock(k);
  CostModel model = SyntheticModel(k);
  std::size_t considered = 0;
  for (auto _ : state) {
    SearchResult result =
        bench::MustOk(ExhaustivePrefilterSearch(flock, model, 8));
    considered = result.plans_considered;
    benchmark::DoNotOptimize(result);
  }
  state.counters["plans_considered"] = static_cast<double>(considered);
}

BENCHMARK(BM_PlanSearch_SafeSubqueries)
    ->DenseRange(2, 6)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_PlanSearch_Heuristic1)
    ->DenseRange(2, 6)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PlanSearch_Exhaustive)
    ->DenseRange(2, 4)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace qf

BENCHMARK_MAIN();
