// Experiment E5 — Fig. 5 / Example 4.1: the three-step okS/okM plan for
// the medical flock versus the one-step direct plan, plus the single-
// prefilter variants discussed in the example ("Either (1) or (3) could be
// used ... (1) and (2) may both be useful").
//
// Expected shape: the third step of Fig. 5 is *easier, not harder* than
// the original query — the okS/okM subgoals join early and shrink every
// later intermediate (the peak_rows counter makes that visible directly).
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "flocks/eval.h"
#include "optimizer/executor_support.h"
#include "optimizer/join_order.h"
#include "plan/plan.h"
#include "workload/medical_gen.h"

namespace qf {
namespace {

constexpr const char* kQuery =
    "answer(P) :- exhibits(P,$s) AND treatments(P,$m) AND "
    "diagnoses(P,D) AND NOT causes(D,$s)";

const Database& MedicalDb() {
  static const Database* db = [] {
    MedicalConfig config;
    config.n_patients = 25000;
    config.n_diseases = 80;
    config.n_symptoms = 10000;
    config.n_medicines = 6000;
    config.symptoms_per_patient = 5;
    config.medicines_per_patient = 3;
    config.symptom_theta = 0.5;
    config.medicine_theta = 0.5;
    config.seed = 31;
    return new Database(GenerateMedical(config));
  }();
  return *db;
}

QueryFlock MedicalFlock() {
  return bench::MustFlock(kQuery, FilterCondition::MinSupport(20));
}

void Run(benchmark::State& state, const QueryPlan& plan) {
  QueryFlock flock = MedicalFlock();
  std::size_t pairs = 0, peak = 0;
  for (auto _ : state) {
    PlanExecInfo info;
    Relation result =
        bench::MustOk(ExecutePlanOptimized(plan, flock, MedicalDb(), &info));
    pairs = result.size();
    peak = info.total_peak_rows;
    benchmark::DoNotOptimize(result);
  }
  state.counters["pairs"] = static_cast<double>(pairs);
  state.counters["peak_rows"] = static_cast<double>(peak);
}

void BM_Fig5_OneStepDirect(benchmark::State& state) {
  const Database& db = MedicalDb();
  QueryFlock flock = MedicalFlock();
  CostModel model(db);
  FlockEvalOptions options = ChooseJoinOrders(flock, model);
  std::size_t pairs = 0, peak = 0;
  for (auto _ : state) {
    FlockEvalInfo info;
    Relation result =
        bench::MustOk(EvaluateFlock(flock, db, options, nullptr, &info));
    pairs = result.size();
    peak = info.peak_rows;
    benchmark::DoNotOptimize(result);
  }
  state.counters["pairs"] = static_cast<double>(pairs);
  state.counters["peak_rows"] = static_cast<double>(peak);
}

void BM_Fig5_OkSOnly(benchmark::State& state) {
  QueryFlock flock = MedicalFlock();
  auto okS = bench::MustOk(
      MakeFilterStep(flock, "okS", {"s"}, std::vector<std::size_t>{0}));
  Run(state, bench::MustOk(PlanWithPrefilters(flock, {okS})));
}

void BM_Fig5_OkMOnly(benchmark::State& state) {
  QueryFlock flock = MedicalFlock();
  auto okM = bench::MustOk(
      MakeFilterStep(flock, "okM", {"m"}, std::vector<std::size_t>{1}));
  Run(state, bench::MustOk(PlanWithPrefilters(flock, {okM})));
}

void BM_Fig5_Full(benchmark::State& state) {
  QueryFlock flock = MedicalFlock();
  auto okS = bench::MustOk(
      MakeFilterStep(flock, "okS", {"s"}, std::vector<std::size_t>{0}));
  auto okM = bench::MustOk(
      MakeFilterStep(flock, "okM", {"m"}, std::vector<std::size_t>{1}));
  Run(state, bench::MustOk(PlanWithPrefilters(flock, {okS, okM})));
}

BENCHMARK(BM_Fig5_OneStepDirect)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Fig5_OkSOnly)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Fig5_OkMOnly)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Fig5_Full)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace qf

BENCHMARK_MAIN();
