// Experiment E-PR9 — learned plan selection (DESIGN.md §15).
//
// On the Fig. 9 market-basket flock at two skew regimes (arg 0 ->
// zipf theta 0.5 tail-heavy, arg 1 -> 1.3 head-heavy), compares:
//   * StaticPlan     — always the §4.3 plan search ("plan:search");
//   * StaticDirect   — always the cost-ordered direct evaluator
//                      ("direct:cost");
//   * StaticDynamic  — always §4.4 dynamic filtering at the default
//                      session knobs ("dyn:session");
//   * Learned        — the contextual bandit picks an arm per run from
//                      a warmed-up history (every arm pre-played twice),
//                      records the outcome, repeats — the steady-state
//                      cost of `SET OPTIMIZER LEARNED`.
// The acceptance property (asserted by the CI gate over BENCH_PR9.json):
// after warm-up, Learned tracks the best static arm in *both* regimes —
// within 1.3x of min(StaticPlan, StaticDirect, StaticDynamic) — even
// though no single static arm is best in both. ChooseOverhead prices the
// decision itself (a map lookup + a scan of ~6 arms), which must stay
// microseconds-scale noise against millisecond-scale runs.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstddef>
#include <map>
#include <vector>

#include "bench/bench_util.h"
#include "common/check.h"
#include "flocks/cq_eval.h"
#include "flocks/eval.h"
#include "optimizer/bandit.h"
#include "optimizer/cost_model.h"
#include "optimizer/dynamic.h"
#include "optimizer/executor_support.h"
#include "optimizer/history.h"
#include "optimizer/plan_search.h"
#include "workload/basket_gen.h"

namespace qf {
namespace {

constexpr const char* kPairQuery =
    "answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2";
constexpr double kThetas[] = {0.5, 1.3};
constexpr double kSupport = 15;

const Database& BasketsDb(int theta_index) {
  static std::map<int, const Database*>* cache =
      new std::map<int, const Database*>;
  auto it = cache->find(theta_index);
  if (it == cache->end()) {
    BasketConfig config;  // Fig. 9 shape, trimmed for the bandit loop
    config.n_baskets = 12000;
    config.n_items = 6000;
    config.avg_basket_size = 8;
    config.zipf_theta = kThetas[theta_index];
    config.topic_locality = 0.3;
    config.n_topics = 120;
    config.seed = 47;
    auto* db = new Database;
    db->PutRelation(GenerateBaskets(config));
    it = cache->emplace(theta_index, db).first;
  }
  return *it->second;
}

QueryFlock PairFlock() {
  return bench::MustFlock(kPairQuery, FilterCondition::MinSupport(kSupport));
}

// Mirrors Shell::EvaluateLearned's dispatch (tests/learned_optimizer_test.cc
// pins every arm bit-equal to the static evaluator, so this bench is pure
// speed comparison).
Relation RunArm(const BanditArm& arm, const QueryFlock& flock,
                const Database& db, const CostModel& model) {
  switch (arm.kind) {
    case BanditArm::Kind::kPlan: {
      QueryPlan plan = bench::MustOk(SearchPlanParameterSets(flock, model));
      PlanExecOptions options;
      options.order_chooser = CostBasedOrderChooser();
      return bench::MustOk(ExecutePlan(plan, flock, db, options));
    }
    case BanditArm::Kind::kDirect: {
      FlockEvalOptions options;
      for (const std::vector<std::size_t>& order : arm.orders) {
        CqEvalOptions cq_options;
        cq_options.join_order = order;
        options.per_disjunct.push_back(std::move(cq_options));
      }
      return bench::MustOk(EvaluateFlock(flock, db, options));
    }
    case BanditArm::Kind::kDynamic: {
      DynamicOptions options;
      if (!arm.orders.empty()) options.join_order = arm.orders.front();
      options.aggressiveness = arm.knobs.aggressiveness;
      options.improvement_factor = arm.knobs.improvement_factor;
      options.min_removed_fraction = arm.knobs.min_removed_fraction;
      return bench::MustOk(DynamicEvaluate(flock, db, options));
    }
  }
  QF_CHECK_MSG(false, "unreachable arm kind");
  return Relation();
}

// The arm with the given id from a fresh enumeration (arms are
// re-enumerated per run, exactly as the shell does).
BanditArm ArmById(const QueryFlock& flock, const CostModel& model,
                  const char* id) {
  std::vector<BanditArm> arms =
      EnumerateArms(flock, model, /*dynamic_eligible=*/true, DynamicKnobs{});
  for (BanditArm& arm : arms) {
    if (arm.id == id) return std::move(arm);
  }
  QF_CHECK_MSG(false, "arm id not enumerated");
  return BanditArm();
}

void RunStaticArm(benchmark::State& state, const char* id) {
  const Database& db = BasketsDb(static_cast<int>(state.range(0)));
  QueryFlock flock = PairFlock();
  CostModel model(db);
  std::size_t pairs = 0;
  for (auto _ : state) {
    BanditArm arm = ArmById(flock, model, id);
    Relation result = RunArm(arm, flock, db, model);
    pairs = result.size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["pairs"] = static_cast<double>(pairs);
}

void BM_Bandit_StaticPlan(benchmark::State& state) {
  RunStaticArm(state, "plan:search");
}

void BM_Bandit_StaticDirect(benchmark::State& state) {
  RunStaticArm(state, "direct:cost");
}

void BM_Bandit_StaticDynamic(benchmark::State& state) {
  RunStaticArm(state, "dyn:session");
}

void BM_Bandit_Learned(benchmark::State& state) {
  const Database& db = BasketsDb(static_cast<int>(state.range(0)));
  QueryFlock flock = PairFlock();
  CostModel model(db);
  PlanContext ctx = MakePlanContext(flock, model);
  OutcomeHistory history;
  PlanBandit bandit(history);
  // Warm-up: play every arm twice with real timings, outside the timer —
  // the steady state a session reaches after its first few learned RUNs.
  std::vector<BanditArm> arms =
      EnumerateArms(flock, model, /*dynamic_eligible=*/true, DynamicKnobs{});
  for (int round = 0; round < 2; ++round) {
    for (const BanditArm& arm : arms) {
      auto start = std::chrono::steady_clock::now();
      Relation result = RunArm(arm, flock, db, model);
      std::chrono::duration<double, std::milli> wall =
          std::chrono::steady_clock::now() - start;
      BanditOutcome outcome;
      outcome.context = ctx.key;
      outcome.arm = arm.id;
      outcome.wall_ms = wall.count();
      outcome.rows = static_cast<double>(result.size());
      history.Record(outcome);
    }
  }
  std::size_t pairs = 0;
  std::uint64_t explored = 0;
  for (auto _ : state) {
    std::vector<BanditArm> fresh =
        EnumerateArms(flock, model, /*dynamic_eligible=*/true, DynamicKnobs{});
    BanditChoice choice = bandit.Choose(ctx.key, fresh);
    auto start = std::chrono::steady_clock::now();
    Relation result = RunArm(fresh[choice.index], flock, db, model);
    std::chrono::duration<double, std::milli> wall =
        std::chrono::steady_clock::now() - start;
    BanditOutcome outcome;
    outcome.context = ctx.key;
    outcome.arm = choice.arm_id;
    outcome.wall_ms = wall.count();
    outcome.rows = static_cast<double>(result.size());
    history.Record(outcome);
    if (choice.exploring) ++explored;
    pairs = result.size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["pairs"] = static_cast<double>(pairs);
  state.counters["explored"] = static_cast<double>(explored);
}

// The decision itself: one Choose() over a warmed six-arm context.
void BM_Bandit_ChooseOverhead(benchmark::State& state) {
  const Database& db = BasketsDb(0);
  QueryFlock flock = PairFlock();
  CostModel model(db);
  PlanContext ctx = MakePlanContext(flock, model);
  std::vector<BanditArm> arms =
      EnumerateArms(flock, model, /*dynamic_eligible=*/true, DynamicKnobs{});
  OutcomeHistory history;
  for (std::size_t i = 0; i < arms.size(); ++i) {
    BanditOutcome outcome;
    outcome.context = ctx.key;
    outcome.arm = arms[i].id;
    outcome.wall_ms = 10.0 + static_cast<double>(i);
    outcome.rows = 100.0;
    history.Record(outcome);
  }
  PlanBandit bandit(history);
  for (auto _ : state) {
    BanditChoice choice = bandit.Choose(ctx.key, arms);
    bench::ConsumeScalar(choice.index);
  }
}

BENCHMARK(BM_Bandit_StaticPlan)->DenseRange(0, 1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Bandit_StaticDirect)
    ->DenseRange(0, 1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Bandit_StaticDynamic)
    ->DenseRange(0, 1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Bandit_Learned)->DenseRange(0, 1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Bandit_ChooseOverhead);

}  // namespace
}  // namespace qf

BENCHMARK_MAIN();
