// Experiment E10 — microbenchmarks of the machinery under everything:
// relational operators (hash join, dedup projection, grouping), the
// containment-mapping test of §3.1, safety checking, and the parser.
// These are the constants the macro results (E1-E8) are built from.
#include <benchmark/benchmark.h>

#include <string>

#include "bench/bench_util.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "datalog/containment.h"
#include "datalog/parser.h"
#include "datalog/safety.h"
#include "relational/ops.h"

namespace qf {
namespace {

Relation RandomRelation(std::size_t rows, std::size_t key_domain,
                        std::uint64_t seed) {
  Rng rng(seed);
  Relation rel(Schema({"K", "V"}));
  for (std::size_t i = 0; i < rows; ++i) {
    rel.AddRow({Value(static_cast<std::int64_t>(
                    rng.NextBelow(static_cast<std::uint32_t>(key_domain)))),
                Value(static_cast<std::int64_t>(i))});
  }
  rel.Dedup();
  return rel;
}

// Duplicate-heavy relation: both columns draw from `domain`, duplicates
// kept — the input shape Dedup/Distinct exist for.
Relation RandomDupRelation(std::size_t rows, std::size_t domain,
                           std::uint64_t seed) {
  Rng rng(seed);
  Relation rel(Schema({"K", "V"}));
  rel.mutable_rows().reserve(rows);
  for (std::size_t i = 0; i < rows; ++i) {
    rel.AddRow({Value(static_cast<std::int64_t>(
                    rng.NextBelow(static_cast<std::uint32_t>(domain)))),
                Value(static_cast<std::int64_t>(
                    rng.NextBelow(static_cast<std::uint32_t>(domain))))});
  }
  return rel;
}

void BM_Micro_NaturalJoin(benchmark::State& state) {
  std::size_t n = static_cast<std::size_t>(state.range(0));
  Relation a = RandomRelation(n, n / 10, 1);
  Relation b = Rename(RandomRelation(n, n / 10, 2), {"K", "W"});
  std::size_t out_rows = 0;
  for (auto _ : state) {
    Relation j = NaturalJoin(a, b);
    out_rows = j.size();
    benchmark::DoNotOptimize(j);
  }
  state.counters["out_rows"] = static_cast<double>(out_rows);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(out_rows));
}

void BM_Micro_SortMergeJoin(benchmark::State& state) {
  std::size_t n = static_cast<std::size_t>(state.range(0));
  Relation a = RandomRelation(n, n / 10, 1);
  Relation b = Rename(RandomRelation(n, n / 10, 2), {"K", "W"});
  std::size_t out_rows = 0;
  for (auto _ : state) {
    Relation j = SortMergeJoin(a, b);
    out_rows = j.size();
    benchmark::DoNotOptimize(j);
  }
  state.counters["out_rows"] = static_cast<double>(out_rows);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(out_rows));
}

void BM_Micro_ParallelJoin(benchmark::State& state) {
  std::size_t n = static_cast<std::size_t>(state.range(0));
  unsigned threads = static_cast<unsigned>(state.range(1));
  Relation a = RandomRelation(n, n / 10, 1);
  Relation b = Rename(RandomRelation(n / 4, n / 10, 2), {"K", "W"});
  // The parallel join promises the serial join's exact row order.
  QF_CHECK(ParallelNaturalJoin(a, b, threads).rows() ==
           NaturalJoin(a, b).rows());
  for (auto _ : state) {
    Relation j = ParallelNaturalJoin(a, b, threads);
    benchmark::DoNotOptimize(j);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}

void BM_Micro_ParallelGroupCount(benchmark::State& state) {
  std::size_t n = static_cast<std::size_t>(state.range(0));
  unsigned threads = static_cast<unsigned>(state.range(1));
  Relation a = RandomRelation(n, n / 20, 4);
  // Parallel group-by is bit-identical for every thread count.
  QF_CHECK(GroupAggregate(a, {"K"}, AggKind::kCount, "", "n", threads)
               .rows() ==
           GroupAggregate(a, {"K"}, AggKind::kCount, "", "n", 1).rows());
  for (auto _ : state) {
    Relation g = GroupAggregate(a, {"K"}, AggKind::kCount, "", "n", threads);
    benchmark::DoNotOptimize(g);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}

// Join dominated by hash-index build + probe rather than by output
// construction: near-unique keys on both sides (domain == n), probe side
// 4x the build side, output ~n/4 rows. This is the kernel the flat-hash
// acceptance bar measures at 1M rows.
void BM_Micro_JoinBuildProbe(benchmark::State& state) {
  std::size_t n = static_cast<std::size_t>(state.range(0));
  Relation a = RandomRelation(n, n, 11);
  Relation b = Rename(RandomRelation(n / 4, n, 12), {"K", "W"});
  std::size_t out_rows = 0;
  for (auto _ : state) {
    Relation j = NaturalJoin(a, b);
    out_rows = j.size();
    benchmark::DoNotOptimize(j);
  }
  state.counters["out_rows"] = static_cast<double>(out_rows);
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}

// Whole-row set-semantics dedup (Relation::Dedup via Distinct) on a
// duplicate-heavy input — the other kernel of the flat-hash acceptance
// bar at 1M rows.
void BM_Micro_Dedup(benchmark::State& state) {
  std::size_t n = static_cast<std::size_t>(state.range(0));
  Relation a = RandomDupRelation(n, 1200, 13);
  std::size_t out_rows = 0;
  for (auto _ : state) {
    Relation d = Distinct(a);
    out_rows = d.size();
    benchmark::DoNotOptimize(d);
  }
  state.counters["out_rows"] = static_cast<double>(out_rows);
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}

void BM_Micro_SemiJoin(benchmark::State& state) {
  std::size_t n = static_cast<std::size_t>(state.range(0));
  Relation a = RandomRelation(n, n / 10, 14);
  Relation b = Rename(RandomRelation(n / 4, n / 10, 15), {"K", "W"});
  for (auto _ : state) {
    Relation j = SemiJoin(a, b);
    benchmark::DoNotOptimize(j);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}

void BM_Micro_ProjectDedup(benchmark::State& state) {
  std::size_t n = static_cast<std::size_t>(state.range(0));
  Relation a = RandomRelation(n, n / 20, 3);
  for (auto _ : state) {
    Relation p = Project(a, {"K"});
    benchmark::DoNotOptimize(p);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}

void BM_Micro_GroupCount(benchmark::State& state) {
  std::size_t n = static_cast<std::size_t>(state.range(0));
  Relation a = RandomRelation(n, n / 20, 4);
  for (auto _ : state) {
    Relation g = GroupAggregate(a, {"K"}, AggKind::kCount, "", "n");
    benchmark::DoNotOptimize(g);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}

void BM_Micro_AntiJoin(benchmark::State& state) {
  std::size_t n = static_cast<std::size_t>(state.range(0));
  Relation a = RandomRelation(n, n / 10, 5);
  Relation b = Rename(RandomRelation(n / 4, n / 10, 6), {"K", "V"});
  for (auto _ : state) {
    Relation j = AntiJoin(a, b);
    benchmark::DoNotOptimize(j);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}

// Observability overhead (DESIGN.md "Observability"): the same
// join+group pipeline with metrics disabled (null pointer — the
// production default), with a metrics tree attached, and with trace
// spans emitted on top. The acceptance bar is that Off stays within
// noise (<5%) of the plain operator benchmarks above: the disabled path
// is one branch per operator, no clock reads, no allocations.
void BM_Micro_PipelineMetricsOff(benchmark::State& state) {
  std::size_t n = static_cast<std::size_t>(state.range(0));
  Relation a = RandomRelation(n, n / 10, 7);
  Relation b = Rename(RandomRelation(n / 4, n / 10, 8), {"K", "W"});
  for (auto _ : state) {
    Relation j = NaturalJoin(a, b);
    Relation g = GroupAggregate(j, {"K"}, AggKind::kCount, "", "n");
    benchmark::DoNotOptimize(g);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}

void BM_Micro_PipelineMetricsOn(benchmark::State& state) {
  std::size_t n = static_cast<std::size_t>(state.range(0));
  Relation a = RandomRelation(n, n / 10, 7);
  Relation b = Rename(RandomRelation(n / 4, n / 10, 8), {"K", "W"});
  OpMetrics root("pipeline");
  OpMetrics* join_m = root.AddChild("join");
  OpMetrics* group_m = root.AddChild("group_by");
  for (auto _ : state) {
    Relation j;
    {
      ScopedOp span(join_m);
      j = NaturalJoin(a, b, join_m);
    }
    ScopedOp span(group_m);
    Relation g = GroupAggregate(j, {"K"}, AggKind::kCount, "", "n", group_m);
    benchmark::DoNotOptimize(g);
  }
  // Surface the observed counters in the benchmark's own (JSON-ready)
  // output: `--benchmark_out=BENCH_micro.json --benchmark_out_format=json`
  // carries them into the CI artifact.
  state.counters["join_rows_out"] =
      static_cast<double>(join_m->rows_out / state.iterations());
  state.counters["group_rows_out"] =
      static_cast<double>(group_m->rows_out / state.iterations());
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}

void BM_Micro_PipelineMetricsTraced(benchmark::State& state) {
  std::size_t n = static_cast<std::size_t>(state.range(0));
  Relation a = RandomRelation(n, n / 10, 7);
  Relation b = Rename(RandomRelation(n / 4, n / 10, 8), {"K", "W"});
  OpMetrics root("pipeline");
  OpMetrics* join_m = root.AddChild("join");
  OpMetrics* group_m = root.AddChild("group_by");
  MemoryTraceSink sink;
  for (auto _ : state) {
    Relation j;
    {
      ScopedOp span(join_m, &sink);
      j = NaturalJoin(a, b, join_m);
    }
    ScopedOp span(group_m, &sink);
    Relation g = GroupAggregate(j, {"K"}, AggKind::kCount, "", "n", group_m);
    benchmark::DoNotOptimize(g);
    // Keep the buffer bounded; Clear holds the same lock the spans take,
    // so the per-event cost stays in the measurement.
    if (sink.event_count() > 4096) sink.Clear();
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}

// Containment mapping on path queries of growing length: backtracking
// search over subgoal images.
std::string PathQuery(int n) {
  std::string q = "answer(X0) :- arc(X0,X1)";
  for (int i = 1; i < n; ++i) {
    q += " AND arc(X" + std::to_string(i) + ",X" + std::to_string(i + 1) +
         ")";
  }
  return q;
}

void BM_Micro_Containment(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  ConjunctiveQuery shorter = bench::MustOk(ParseRule(PathQuery(n)));
  ConjunctiveQuery longer = bench::MustOk(ParseRule(PathQuery(n + 2)));
  bool contains = false;
  for (auto _ : state) {
    contains = Contains(shorter, longer);
    bench::ConsumeScalar(contains);
  }
  QF_CHECK(contains);
}

void BM_Micro_Safety(benchmark::State& state) {
  ConjunctiveQuery cq = bench::MustOk(ParseRule(
      "answer(P) :- exhibits(P,$s) AND treatments(P,$m) AND "
      "diagnoses(P,D) AND NOT causes(D,$s) AND $s < $m"));
  bool safe = false;
  for (auto _ : state) {
    safe = IsSafe(cq);
    bench::ConsumeScalar(safe);
  }
  QF_CHECK(safe);
}

void BM_Micro_Parser(benchmark::State& state) {
  const char* text = R"(
      answer(D) :- inTitle(D,$1) AND inTitle(D,$2) AND $1 < $2
      answer(A) :- link(A,D1,D2) AND inAnchor(A,$1) AND inTitle(D2,$2)
                   AND $1 < $2
      answer(A) :- link(A,D1,D2) AND inAnchor(A,$2) AND inTitle(D2,$1)
                   AND $1 < $2
  )";
  for (auto _ : state) {
    auto q = ParseQuery(text);
    benchmark::DoNotOptimize(q);
  }
}

BENCHMARK(BM_Micro_NaturalJoin)->Arg(1000)->Arg(10000)->Arg(100000);
BENCHMARK(BM_Micro_SortMergeJoin)->Arg(1000)->Arg(10000)->Arg(100000);
BENCHMARK(BM_Micro_ParallelJoin)
    ->Args({100000, 1})
    ->Args({100000, 2})
    ->Args({100000, 4})
    ->Args({400000, 4});
BENCHMARK(BM_Micro_JoinBuildProbe)->Arg(100000)->Arg(1000000);
BENCHMARK(BM_Micro_Dedup)->Arg(100000)->Arg(1000000);
BENCHMARK(BM_Micro_SemiJoin)->Arg(100000)->Arg(1000000);
BENCHMARK(BM_Micro_ProjectDedup)->Arg(1000)->Arg(10000)->Arg(100000)
    ->Arg(1000000);
BENCHMARK(BM_Micro_GroupCount)->Arg(1000)->Arg(10000)->Arg(100000)
    ->Arg(1000000);
BENCHMARK(BM_Micro_ParallelGroupCount)
    ->Args({100000, 1})
    ->Args({100000, 2})
    ->Args({100000, 4});
BENCHMARK(BM_Micro_AntiJoin)->Arg(1000)->Arg(10000)->Arg(100000);
BENCHMARK(BM_Micro_PipelineMetricsOff)->Arg(10000)->Arg(100000);
BENCHMARK(BM_Micro_PipelineMetricsOn)->Arg(10000)->Arg(100000);
BENCHMARK(BM_Micro_PipelineMetricsTraced)->Arg(10000)->Arg(100000);
BENCHMARK(BM_Micro_Containment)->DenseRange(2, 6);
BENCHMARK(BM_Micro_Safety);
BENCHMARK(BM_Micro_Parser);

}  // namespace
}  // namespace qf

BENCHMARK_MAIN();
