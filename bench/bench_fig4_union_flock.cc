// Experiment E4 — Fig. 4 / Example 3.3: the strongly-connected-words
// *union* flock, and union prefilters.
//
// Per §3.4, a union flock can only be pruned by a union of per-disjunct
// safe subqueries: a word survives only if its summed appearances (in
// titles, in anchors, in linked-to titles) reach the threshold. The bench
// compares direct evaluation of the three-disjunct union against the plan
// with union prefilters on $1 and $2, across support thresholds.
// Expected shape: the prefilter plan wins, more at higher support.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "flocks/eval.h"
#include "optimizer/executor_support.h"
#include "plan/plan.h"
#include "workload/web_gen.h"

namespace qf {
namespace {

constexpr const char* kUnionQuery = R"(
    answer(D) :- inTitle(D,$1) AND inTitle(D,$2) AND $1 < $2
    answer(A) :- link(A,D1,D2) AND inAnchor(A,$1) AND inTitle(D2,$2)
                 AND $1 < $2
    answer(A) :- link(A,D1,D2) AND inAnchor(A,$2) AND inTitle(D2,$1)
                 AND $1 < $2
)";

const Database& WebDb() {
  static const Database* db = [] {
    WebConfig config;
    config.n_docs = 8000;
    config.n_words = 30000;
    config.n_anchors = 14000;
    config.words_per_title = 6;
    config.words_per_anchor = 2;
    config.word_theta = 0.4;
    config.topic_locality = 0.5;
    config.n_topics = 150;
    config.seed = 23;
    return new Database(GenerateWeb(config));
  }();
  return *db;
}

QueryPlan UnionPrefilterPlan(const QueryFlock& flock) {
  // Per-disjunct subqueries for $1 and $2 (see Ex. 3.3). Disjunct subgoal
  // layout: d0 = {inTitle($1), inTitle($2), cmp};
  // d1 = {link, inAnchor($1), inTitle($2), cmp};
  // d2 = {link, inAnchor($2), inTitle($1), cmp}.
  auto ok1 = bench::MustOk(MakeFilterStep(
      flock, "ok1", {"1"},
      {std::vector<std::size_t>{0}, std::vector<std::size_t>{1},
       std::vector<std::size_t>{0, 2}}));
  auto ok2 = bench::MustOk(MakeFilterStep(
      flock, "ok2", {"2"},
      {std::vector<std::size_t>{1}, std::vector<std::size_t>{0, 2},
       std::vector<std::size_t>{1}}));
  return bench::MustOk(PlanWithPrefilters(flock, {ok1, ok2}));
}

void BM_Fig4_DirectUnion(benchmark::State& state) {
  QueryFlock flock = bench::MustFlock(
      kUnionQuery, FilterCondition::MinSupport(state.range(0)));
  std::size_t pairs = 0;
  for (auto _ : state) {
    Relation result = bench::MustOk(EvaluateFlock(flock, WebDb()));
    pairs = result.size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["pairs"] = static_cast<double>(pairs);
}

void BM_Fig4_UnionPrefilter(benchmark::State& state) {
  QueryFlock flock = bench::MustFlock(
      kUnionQuery, FilterCondition::MinSupport(state.range(0)));
  QueryPlan plan = UnionPrefilterPlan(flock);
  std::size_t pairs = 0, peak = 0;
  for (auto _ : state) {
    PlanExecInfo info;
    Relation result =
        bench::MustOk(ExecutePlanOptimized(plan, flock, WebDb(), &info));
    pairs = result.size();
    peak = info.total_peak_rows;
    benchmark::DoNotOptimize(result);
  }
  state.counters["pairs"] = static_cast<double>(pairs);
  state.counters["peak_rows"] = static_cast<double>(peak);
}

#define QF_FIG4_ARGS ->Arg(20)->Arg(40)->Arg(80)->Unit(benchmark::kMillisecond)

BENCHMARK(BM_Fig4_DirectUnion) QF_FIG4_ARGS;
BENCHMARK(BM_Fig4_UnionPrefilter) QF_FIG4_ARGS;

}  // namespace
}  // namespace qf

BENCHMARK_MAIN();
