// Classic association-rule mining (§1.1) end to end, and the k-itemset
// flock plan of §4.3: mine frequent pairs *and triples* with the
// generalized a-priori plan (one FILTER step per parameter subset — the
// levelwise trick as a query plan), cross-check against the hand-coded
// a-priori miner, then derive rules with confidence and interest.
//
// Run:  ./association_rules
#include <algorithm>
#include <chrono>
#include <cstdio>

#include "apriori/apriori.h"
#include "apriori/rules.h"
#include "flocks/eval.h"
#include "optimizer/executor_support.h"
#include "optimizer/itemset_plans.h"
#include "workload/basket_gen.h"

namespace {

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main() {
  qf::BasketConfig config;
  config.n_baskets = 8000;
  config.n_items = 1500;
  config.avg_basket_size = 8;
  config.zipf_theta = 0.8;
  config.topic_locality = 0.45;
  config.n_topics = 60;
  config.seed = 11;
  qf::Database db;
  db.PutRelation(qf::GenerateBaskets(config));
  const qf::Relation& baskets = db.Get("baskets");
  std::printf("baskets: %zu rows\n\n", baskets.size());

  constexpr double kSupport = 25;

  // --- Triples via the k=3 itemset flock, with the levelwise plan. ---
  auto flock3 = qf::MakeItemsetFlock("baskets", 3, kSupport);
  if (!flock3.ok()) {
    std::fprintf(stderr, "%s\n", flock3.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", flock3->ToString().c_str());

  auto plan = qf::ItemsetAprioriPlan(*flock3, 3, /*subset_size=*/2);
  if (!plan.ok()) {
    std::fprintf(stderr, "%s\n", plan.status().ToString().c_str());
    return 1;
  }
  std::printf("levelwise plan (pair prefilters ok_1_2, ok_1_3, ok_2_3):\n%s\n",
              plan->ToString(flock3->filter).c_str());

  auto t0 = std::chrono::steady_clock::now();
  auto direct = qf::EvaluateFlock(*flock3, db);
  double direct_ms = MillisSince(t0);
  t0 = std::chrono::steady_clock::now();
  auto planned = qf::ExecutePlanOptimized(*plan, *flock3, db);
  double plan_ms = MillisSince(t0);
  if (!direct.ok() || !planned.ok()) {
    std::fprintf(stderr, "evaluation failed\n");
    return 1;
  }
  std::printf("frequent triples: direct %zu in %.1f ms; plan %zu in %.1f ms "
              "(%.1fx)\n",
              direct->size(), direct_ms, planned->size(), plan_ms,
              direct_ms / plan_ms);

  // --- Cross-check with the hand-coded a-priori miner. ---
  auto data = qf::BasketsFromRelation(baskets, "BID", "Item");
  qf::AprioriStats stats;
  std::vector<qf::Itemset> frequent = qf::AprioriFrequentItemsets(
      *data, {.min_support = static_cast<std::size_t>(kSupport),
              .max_size = 3},
      &stats);
  std::size_t triples = 0;
  for (const qf::Itemset& s : frequent) triples += s.items.size() == 3;
  std::printf("a-priori miner: %zu frequent triples", triples);
  std::printf(" (candidates per level:");
  for (std::size_t c : stats.candidates_per_level) std::printf(" %zu", c);
  std::printf(")\n");
  bool agree = triples == direct->size() && triples == planned->size();
  std::printf("flock result %s the a-priori miner\n\n",
              agree ? "matches" : "DIFFERS FROM");

  // --- Rules with confidence and interest (§1.1's three measures). ---
  std::vector<qf::AssociationRule> rules = qf::DeriveRules(
      *data, frequent, {.min_confidence = 0.6, .min_interest_deviation = 1.0});
  std::sort(rules.begin(), rules.end(),
            [](const qf::AssociationRule& a, const qf::AssociationRule& b) {
              return a.interest > b.interest;
            });
  std::printf("top rules by interest (confidence >= 0.6, interest far from "
              "1):\n");
  for (std::size_t i = 0; i < rules.size() && i < 8; ++i) {
    std::printf("  %s\n", qf::RuleToString(rules[i], *data).c_str());
  }
  std::printf("(%zu rules total)\n", rules.size());
  return agree ? 0 : 1;
}
