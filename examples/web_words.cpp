// Strongly connected words in a web corpus (paper Ex. 2.3 / Fig. 4): a
// *union* flock counting, for each word pair, title co-occurrences plus
// anchor-to-target-title occurrences. Demonstrates unions of conjunctive
// queries and the union prefilter of §3.4 / Ex. 3.3.
//
// Run:  ./web_words
#include <chrono>
#include <cstdio>

#include "flocks/eval.h"
#include "plan/executor.h"
#include "optimizer/executor_support.h"
#include "workload/web_gen.h"

namespace {

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

constexpr const char* kQuery = R"(
    answer(D) :- inTitle(D,$1) AND inTitle(D,$2) AND $1 < $2
    answer(A) :- link(A,D1,D2) AND inAnchor(A,$1) AND inTitle(D2,$2)
                 AND $1 < $2
    answer(A) :- link(A,D1,D2) AND inAnchor(A,$2) AND inTitle(D2,$1)
                 AND $1 < $2
)";

}  // namespace

int main() {
  qf::WebConfig config;
  config.n_docs = 12000;
  config.n_words = 15000;
  config.n_anchors = 20000;
  config.words_per_title = 6;
  config.words_per_anchor = 2;
  config.word_theta = 0.4;
  config.seed = 3;
  qf::Database db = qf::GenerateWeb(config);
  std::printf("web corpus: %zu inTitle, %zu inAnchor, %zu link rows\n\n",
              db.Get("inTitle").size(), db.Get("inAnchor").size(),
              db.Get("link").size());

  auto flock = qf::MakeFlock(kQuery, qf::FilterCondition::MinSupport(20));
  if (!flock.ok()) {
    std::fprintf(stderr, "%s\n", flock.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", flock->ToString().c_str());

  auto t0 = std::chrono::steady_clock::now();
  auto direct = qf::EvaluateFlock(*flock, db);
  double direct_ms = MillisSince(t0);
  if (!direct.ok()) {
    std::fprintf(stderr, "%s\n", direct.status().ToString().c_str());
    return 1;
  }
  std::printf("direct evaluation: %zu strongly connected word pairs in "
              "%.1f ms\n",
              direct->size(), direct_ms);

  // Example 3.3's union prefilter on $1: a word qualifies only if its
  // title appearances + anchor appearances + linked-title appearances
  // reach the threshold. (And symmetrically for $2.)
  auto ok1 = qf::MakeFilterStep(
      *flock, "ok1", {"1"},
      {std::vector<std::size_t>{0},      // inTitle(D,$1)
       std::vector<std::size_t>{1},      // inAnchor(A,$1)
       std::vector<std::size_t>{0, 2}},  // link(...) AND inTitle(D2,$1)
      {});
  auto ok2 = qf::MakeFilterStep(
      *flock, "ok2", {"2"},
      {std::vector<std::size_t>{1},      // inTitle(D,$2)
       std::vector<std::size_t>{0, 2},   // link(...) AND inTitle(D2,$2)
       std::vector<std::size_t>{1}},     // inAnchor(A,$2)
      {});
  if (!ok1.ok() || !ok2.ok()) {
    std::fprintf(stderr, "step error: %s %s\n",
                 ok1.status().ToString().c_str(),
                 ok2.status().ToString().c_str());
    return 1;
  }
  auto plan = qf::PlanWithPrefilters(*flock, {*ok1, *ok2});
  std::printf("\nunion-prefilter plan:\n%s\n",
              plan->ToString(flock->filter).c_str());

  t0 = std::chrono::steady_clock::now();
  qf::PlanExecInfo info;
  auto planned = qf::ExecutePlanOptimized(*plan, *flock, db, &info);
  double plan_ms = MillisSince(t0);
  if (!planned.ok()) {
    std::fprintf(stderr, "%s\n", planned.status().ToString().c_str());
    return 1;
  }
  std::printf("plan execution: %zu pairs in %.1f ms (%.1fx vs direct)\n",
              planned->size(), plan_ms, direct_ms / plan_ms);
  for (const qf::StepExecInfo& step : info.steps) {
    std::printf("  %-6s %6zu survivors, peak %8zu rows\n",
                step.step_name.c_str(), step.result_rows, step.peak_rows);
  }

  bool agree = planned->size() == direct->size();
  std::printf("\nplan result %s direct result\n",
              agree ? "matches" : "DIFFERS FROM");

  qf::Relation preview = *direct;
  preview.SortRows();
  std::printf("\nsample word pairs:\n%s", preview.ToString(5).c_str());
  return agree ? 0 : 1;
}
