// Mining for unexplained side-effects (paper Ex. 2.2 / Fig. 3), with the
// Fig. 5 query plan: find symptom/medicine pairs ($s,$m) such that many
// patients take $m and exhibit $s, yet $s is not caused by their disease.
//
// Demonstrates negation in the flock language, the okS/okM prefilter plan,
// and the cost-based plan chosen by heuristic 1 of §4.3.
//
// Run:  ./side_effects
#include <chrono>
#include <cstdio>

#include "flocks/eval.h"
#include "optimizer/cost_model.h"
#include "optimizer/dynamic.h"
#include "optimizer/join_order.h"
#include "optimizer/plan_search.h"
#include "plan/executor.h"
#include "optimizer/executor_support.h"
#include "workload/medical_gen.h"

namespace {

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main() {
  qf::MedicalConfig config;
  config.n_patients = 30000;
  config.n_diseases = 60;
  config.n_symptoms = 20000;
  config.n_medicines = 8000;
  config.symptom_theta = 0.45;
  config.medicine_theta = 0.45;
  config.seed = 7;
  qf::Database db = qf::GenerateMedical(config);
  std::printf("medical database: %zu diagnoses, %zu exhibits, %zu "
              "treatments, %zu causes\n\n",
              db.Get("diagnoses").size(), db.Get("exhibits").size(),
              db.Get("treatments").size(), db.Get("causes").size());

  auto flock = qf::MakeFlock(
      "answer(P) :- exhibits(P,$s) AND treatments(P,$m) AND "
      "diagnoses(P,D) AND NOT causes(D,$s)",
      qf::FilterCondition::MinSupport(12));
  if (!flock.ok()) {
    std::fprintf(stderr, "%s\n", flock.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", flock->ToString().c_str());

  qf::CostModel model(db);

  // Direct evaluation with a cost-chosen join order.
  auto t0 = std::chrono::steady_clock::now();
  auto direct =
      qf::EvaluateFlock(*flock, db, qf::ChooseJoinOrders(*flock, model));
  double direct_ms = MillisSince(t0);
  if (!direct.ok()) {
    std::fprintf(stderr, "%s\n", direct.status().ToString().c_str());
    return 1;
  }
  std::printf("direct evaluation: %zu suspicious ($m,$s) pairs in %.1f ms\n",
              direct->size(), direct_ms);

  // The Fig. 5 plan, written out by hand.
  auto okS = qf::MakeFilterStep(*flock, "okS", {"s"},
                                std::vector<std::size_t>{0});
  auto okM = qf::MakeFilterStep(*flock, "okM", {"m"},
                                std::vector<std::size_t>{1});
  auto fig5 = qf::PlanWithPrefilters(*flock, {*okS, *okM});
  std::printf("\nFig. 5 plan:\n%s\n", fig5->ToString(flock->filter).c_str());

  t0 = std::chrono::steady_clock::now();
  qf::PlanExecInfo info;
  auto fig5_result = qf::ExecutePlanOptimized(*fig5, *flock, db, &info);
  double fig5_ms = MillisSince(t0);
  std::printf("Fig. 5 plan: %zu pairs in %.1f ms (%.1fx vs direct)\n",
              fig5_result->size(), fig5_ms, direct_ms / fig5_ms);
  for (const qf::StepExecInfo& step : info.steps) {
    std::printf("  %-8s %6zu survivors, peak %8zu rows\n",
                step.step_name.c_str(), step.result_rows, step.peak_rows);
  }

  // What the optimizer picks on its own (heuristic 1 of §4.3).
  auto chosen = qf::SearchPlanParameterSets(*flock, model);
  std::printf("\noptimizer-chosen plan (%zu steps):\n%s\n",
              chosen->steps.size(),
              chosen->ToString(flock->filter).c_str());
  t0 = std::chrono::steady_clock::now();
  auto chosen_result = qf::ExecutePlanOptimized(*chosen, *flock, db);
  double chosen_ms = MillisSince(t0);
  std::printf("chosen plan: %zu pairs in %.1f ms (%.1fx vs direct)\n",
              chosen_result->size(), chosen_ms, direct_ms / chosen_ms);

  // Dynamic filter selection (§4.4), with its decision trace.
  qf::DynamicLog dyn_log;
  t0 = std::chrono::steady_clock::now();
  auto dynamic_result = qf::DynamicEvaluate(*flock, db, {}, &dyn_log);
  double dynamic_ms = MillisSince(t0);
  std::printf("\ndynamic evaluation: %zu pairs in %.1f ms (%.1fx vs "
              "direct)\n%s",
              dynamic_result->size(), dynamic_ms, direct_ms / dynamic_ms,
              qf::RenderDynamicTrace(dyn_log).c_str());

  bool agree = direct->size() == fig5_result->size() &&
               direct->size() == chosen_result->size() &&
               direct->size() == dynamic_result->size();
  std::printf("\nall strategies agree: %s\n", agree ? "yes" : "NO");

  // Show a few of the flagged pairs.
  qf::Relation preview = *direct;
  preview.SortRows();
  std::printf("\nsample findings (medicine, symptom):\n%s",
              preview.ToString(5).c_str());
  return agree ? 0 : 1;
}
