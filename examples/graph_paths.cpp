// The "pathological" path-query flock (paper Ex. 4.3 / Figs. 6-7): which
// nodes $1 have at least 20 successors X from which a path of length n
// extends? The space of plans grows without bound; the (n+1)-step cascade
// plan of Fig. 7 keeps each step cheap by re-filtering $1 with one more
// arc of lookahead at a time.
//
// Run:  ./graph_paths
#include <chrono>
#include <cstdio>
#include <string>

#include "flocks/eval.h"
#include "optimizer/plan_search.h"
#include "plan/executor.h"
#include "optimizer/executor_support.h"
#include "workload/graph_gen.h"

namespace {

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// Builds the Fig. 6 query for path length n:
//   answer(X) :- arc($1,X) AND arc(X,Y1) AND ... AND arc(Y[n-1],Yn)
std::string PathQuery(int n) {
  std::string q = "answer(X) :- arc($1,X)";
  std::string prev = "X";
  for (int i = 1; i <= n; ++i) {
    std::string next = "Y" + std::to_string(i);
    q += " AND arc(" + prev + "," + next + ")";
    prev = next;
  }
  return q;
}

}  // namespace

int main() {
  // Join growth is ~avg_out_degree per extra arc, so keep the degree
  // modest: the point is the cascade's pruning, not raw scale.
  qf::GraphConfig config;
  config.n_nodes = 1200;
  config.avg_out_degree = 6;
  config.target_theta = 0.9;
  config.seed = 4;
  qf::Database db;
  db.PutRelation(qf::GenerateGraph(config));
  std::printf("graph: %u nodes, %zu arcs\n\n", config.n_nodes,
              db.Get("arc").size());

  std::printf("%-4s %-14s %-14s %-9s %s\n", "n", "direct(ms)",
              "cascade(ms)", "speedup", "answers");
  for (int n = 1; n <= 3; ++n) {
    auto flock = qf::MakeFlock(PathQuery(n),
                               qf::FilterCondition::MinSupport(8));
    if (!flock.ok()) {
      std::fprintf(stderr, "%s\n", flock.status().ToString().c_str());
      return 1;
    }

    auto t0 = std::chrono::steady_clock::now();
    auto direct = qf::EvaluateFlock(*flock, db);
    double direct_ms = MillisSince(t0);
    if (!direct.ok()) {
      std::fprintf(stderr, "%s\n", direct.status().ToString().c_str());
      return 1;
    }

    // The Fig. 7 cascade: step k keeps the first k+1 subgoals and
    // references step k-1.
    std::vector<std::vector<std::size_t>> prefixes;
    for (int k = 1; k <= n; ++k) {
      std::vector<std::size_t> prefix;
      for (int i = 0; i < k; ++i) prefix.push_back(i);
      prefixes.push_back(prefix);
    }
    auto cascade = qf::CascadePlan(*flock, prefixes);
    if (!cascade.ok()) {
      std::fprintf(stderr, "%s\n", cascade.status().ToString().c_str());
      return 1;
    }
    t0 = std::chrono::steady_clock::now();
    auto planned = qf::ExecutePlanOptimized(*cascade, *flock, db);
    double cascade_ms = MillisSince(t0);
    if (!planned.ok()) {
      std::fprintf(stderr, "%s\n", planned.status().ToString().c_str());
      return 1;
    }

    bool agree = planned->size() == direct->size();
    std::printf("%-4d %-14.1f %-14.1f %-9.1f %zu%s\n", n, direct_ms,
                cascade_ms, direct_ms / cascade_ms, direct->size(),
                agree ? "" : "  MISMATCH");
    if (!agree) return 1;
  }

  std::printf("\nThe cascade plan of Fig. 7 for n = 3:\n");
  auto flock = qf::MakeFlock(PathQuery(3),
                             qf::FilterCondition::MinSupport(8));
  auto cascade = qf::CascadePlan(*flock, {{0}, {0, 1}, {0, 1, 2}});
  std::printf("%s", cascade->ToString(flock->filter).c_str());
  return 0;
}
