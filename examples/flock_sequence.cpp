// Maximal frequent itemsets via a *sequence of query flocks* — the
// paper's §2.2 footnote 2: "the set of maximal sets of items ... would be
// expressed as a sequence of query flocks for increasing cardinalities,
// with each flock depending on the result of the previous flock."
//
// Level k's plan reuses level k-1's materialized answer for every
// (k-1)-subset prefilter step, so each flock literally depends on the
// previous one; a frequent k-set then disqualifies its (k-1)-subsets from
// being maximal. Cross-checked against the hand-coded a-priori miner.
//
// Run:  ./flock_sequence
#include <chrono>
#include <cstdio>

#include "apriori/apriori.h"
#include "mining/maximal.h"
#include "workload/basket_gen.h"

namespace {

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main() {
  qf::BasketConfig config;
  config.n_baskets = 4000;
  config.n_items = 400;
  config.avg_basket_size = 7;
  config.zipf_theta = 0.8;
  config.topic_locality = 0.55;
  config.n_topics = 20;
  config.seed = 31;
  qf::Database db;
  db.PutRelation(qf::GenerateBaskets(config));
  std::printf("baskets: %zu rows\n\n", db.Get("baskets").size());

  constexpr double kSupport = 20;
  auto t0 = std::chrono::steady_clock::now();
  auto result = qf::MaximalFrequentItemsets(
      db, "baskets", {.min_support = kSupport, .max_size = 6});
  double ms = MillisSince(t0);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }

  std::printf("flock sequence at support %.0f ran %zu levels in %.1f ms\n",
              kSupport, result->levels, ms);
  std::printf("frequent itemsets per level:");
  for (std::size_t n : result->frequent_per_level) std::printf(" %zu", n);
  std::printf("\n\nmaximal frequent itemsets (%zu):\n",
              result->maximal.size());
  std::size_t shown = 0;
  for (const qf::Tuple& t : result->maximal) {
    if (shown++ >= 12) {
      std::printf("  ... (%zu more)\n", result->maximal.size() - 12);
      break;
    }
    std::printf("  %s\n", qf::TupleToString(t).c_str());
  }

  // Cross-check against the specialized miner.
  auto data = qf::BasketsFromRelation(db.Get("baskets"), "BID", "Item");
  std::vector<qf::Itemset> frequent = qf::AprioriFrequentItemsets(
      *data, {.min_support = static_cast<std::size_t>(kSupport)});
  std::size_t frequent_total = frequent.size();
  std::size_t flock_total = 0;
  for (std::size_t n : result->frequent_per_level) flock_total += n;
  std::printf("\nfrequent itemsets: flock sequence %zu vs a-priori miner "
              "%zu — %s\n",
              flock_total, frequent_total,
              flock_total == frequent_total ? "match" : "MISMATCH");
  return flock_total == frequent_total ? 0 : 1;
}
