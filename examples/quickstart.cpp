// Quickstart: the market-basket flock of the paper's Fig. 2, end to end.
//
//   1. build a small basket database,
//   2. declare the flock (Datalog query + support filter),
//   3. evaluate it directly,
//   4. show the SQL a conventional DBMS would need (Fig. 1),
//   5. run the a-priori-style two-step plan and check it agrees.
//
// Run:  ./quickstart
#include <chrono>
#include <cstdio>
#include <string>

#include "flocks/eval.h"
#include "flocks/flock.h"
#include "flocks/sql_emit.h"
#include "plan/executor.h"
#include "optimizer/executor_support.h"
#include "plan/plan.h"
#include "workload/basket_gen.h"

namespace {

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main() {
  // 1. Data: 5,000 Zipf-skewed baskets over 800 items.
  qf::BasketConfig config;
  config.n_baskets = 5000;
  config.n_items = 4000;
  config.avg_basket_size = 8;
  config.zipf_theta = 0.8;
  config.seed = 2026;
  qf::Database db;
  db.PutRelation(qf::GenerateBaskets(config));
  std::printf("baskets(BID, Item): %zu rows\n\n",
              db.Get("baskets").size());

  // 2. The flock: pairs of items appearing together in >= 20 baskets,
  //    reported in lexicographic order.
  auto flock = qf::MakeFlock(
      "answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2",
      qf::FilterCondition::MinSupport(20));
  if (!flock.ok()) {
    std::fprintf(stderr, "flock error: %s\n",
                 flock.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", flock->ToString().c_str());

  // 3. Direct evaluation (no a-priori optimization).
  auto t0 = std::chrono::steady_clock::now();
  auto direct = qf::EvaluateFlock(*flock, db);
  double direct_ms = MillisSince(t0);
  if (!direct.ok()) {
    std::fprintf(stderr, "eval error: %s\n",
                 direct.status().ToString().c_str());
    return 1;
  }
  std::printf("direct evaluation: %zu frequent pairs in %.1f ms\n",
              direct->size(), direct_ms);
  qf::Relation preview = *direct;
  preview.SortRows();
  std::printf("%s\n", preview.ToString(5).c_str());

  // 4. The SQL a conventional system would run (the paper's Fig. 1 shape).
  auto sql = qf::EmitSql(*flock, db);
  std::printf("equivalent SQL:\n%s\n\n", sql->c_str());

  // 5. The generalized a-priori plan: prefilter both parameters by the
  //    frequent-item subqueries, then run the restricted join.
  auto ok1 = qf::MakeFilterStep(*flock, "ok1", {"1"},
                                std::vector<std::size_t>{0});
  auto ok2 = qf::MakeFilterStep(*flock, "ok2", {"2"},
                                std::vector<std::size_t>{1});
  auto plan = qf::PlanWithPrefilters(*flock, {*ok1, *ok2});
  std::printf("a-priori query plan:\n%s\n",
              plan->ToString(flock->filter).c_str());

  t0 = std::chrono::steady_clock::now();
  qf::PlanExecInfo info;
  auto planned = qf::ExecutePlanOptimized(*plan, *flock, db, &info);
  double plan_ms = MillisSince(t0);
  if (!planned.ok()) {
    std::fprintf(stderr, "plan error: %s\n",
                 planned.status().ToString().c_str());
    return 1;
  }
  std::printf("plan execution: %zu pairs in %.1f ms (%.1fx vs direct)\n",
              planned->size(), plan_ms, direct_ms / plan_ms);
  for (const qf::StepExecInfo& step : info.steps) {
    std::printf("  step %-8s -> %6zu assignments (peak intermediate %zu "
                "rows)\n",
                step.step_name.c_str(), step.result_rows, step.peak_rows);
  }

  bool agree = direct->size() == planned->size();
  std::printf("\nplan result %s direct result (%zu vs %zu pairs)\n",
              agree ? "matches" : "DIFFERS FROM", planned->size(),
              direct->size());
  return agree ? 0 : 1;
}
