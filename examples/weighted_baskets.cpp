// Weighted market baskets (the paper's Future Work, Fig. 10): a monotone
// SUM filter. Each basket has an importance weight; a pair of items
// qualifies when the total weight of the baskets containing both reaches
// the threshold. Demonstrates that the a-priori machinery extends beyond
// COUNT to any monotone filter: the singleton prefilter plan remains legal
// and sound.
//
// Run:  ./weighted_baskets
#include <chrono>
#include <cstdio>

#include "flocks/eval.h"
#include "plan/executor.h"
#include "optimizer/executor_support.h"
#include "plan/legality.h"
#include "workload/basket_gen.h"

namespace {

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main() {
  qf::BasketConfig config;
  config.n_baskets = 6000;
  config.n_items = 900;
  config.avg_basket_size = 7;
  config.zipf_theta = 1.1;
  config.seed = 8;
  qf::Database db;
  db.PutRelation(qf::GenerateBaskets(config));
  db.PutRelation(qf::GenerateImportance(config, /*mean_weight=*/1.0));
  std::printf("baskets: %zu rows; importance: %zu rows\n\n",
              db.Get("baskets").size(), db.Get("importance").size());

  // Fig. 10's flock, with the lexicographic-order refinement.
  auto flock = qf::MakeFlock(
      "answer(B,W) :- baskets(B,$1) AND baskets(B,$2) AND importance(B,W) "
      "AND $1 < $2",
      qf::FilterCondition{qf::FilterAgg::kSum, qf::CompareOp::kGe,
                          /*threshold=*/40, /*agg_head_index=*/1});
  if (!flock.ok()) {
    std::fprintf(stderr, "%s\n", flock.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", flock->ToString().c_str());

  auto t0 = std::chrono::steady_clock::now();
  auto direct = qf::EvaluateFlock(*flock, db);
  double direct_ms = MillisSince(t0);
  if (!direct.ok()) {
    std::fprintf(stderr, "%s\n", direct.status().ToString().c_str());
    return 1;
  }
  std::printf("direct evaluation: %zu heavy pairs in %.1f ms\n",
              direct->size(), direct_ms);

  // Monotone prefilter: an item can only participate in a heavy pair if
  // its own weighted support reaches the threshold (SUM is monotone over
  // non-negative weights, so deleting the second baskets subgoal gives a
  // sound upper bound — exactly the a-priori argument with SUM for COUNT).
  auto ok1 = qf::MakeFilterStep(*flock, "ok1", {"1"},
                                std::vector<std::size_t>{0, 2});
  auto ok2 = qf::MakeFilterStep(*flock, "ok2", {"2"},
                                std::vector<std::size_t>{1, 2});
  if (!ok1.ok() || !ok2.ok()) {
    std::fprintf(stderr, "step error: %s %s\n",
                 ok1.status().ToString().c_str(),
                 ok2.status().ToString().c_str());
    return 1;
  }
  auto plan = qf::PlanWithPrefilters(*flock, {*ok1, *ok2});
  qf::Status legal = qf::CheckLegal(*plan, *flock);
  std::printf("\nmonotone-SUM prefilter plan (legal: %s):\n%s\n",
              legal.ok() ? "yes" : legal.ToString().c_str(),
              plan->ToString(flock->filter).c_str());

  t0 = std::chrono::steady_clock::now();
  qf::PlanExecInfo info;
  auto planned = qf::ExecutePlanOptimized(*plan, *flock, db, &info);
  double plan_ms = MillisSince(t0);
  if (!planned.ok()) {
    std::fprintf(stderr, "%s\n", planned.status().ToString().c_str());
    return 1;
  }
  std::printf("plan execution: %zu pairs in %.1f ms (%.1fx vs direct)\n",
              planned->size(), plan_ms, direct_ms / plan_ms);
  for (const qf::StepExecInfo& step : info.steps) {
    std::printf("  %-6s %6zu survivors, peak %8zu rows\n",
                step.step_name.c_str(), step.result_rows, step.peak_rows);
  }

  bool agree = planned->size() == direct->size();
  std::printf("\nplan result %s direct result\n",
              agree ? "matches" : "DIFFERS FROM");
  qf::Relation preview = *direct;
  preview.SortRows();
  std::printf("\nsample heavy pairs:\n%s", preview.ToString(5).c_str());
  return agree ? 0 : 1;
}
