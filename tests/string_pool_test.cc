// Concurrent-intern stress for the sharded StringPool: many threads
// interning overlapping string sets must agree on one canonical pointer
// per distinct string, and the pool must grow by exactly the distinct
// count. Uses the engine's own ThreadPool so the contention pattern
// matches real parallel loads (generators + parallel operators).
#include "relational/string_pool.h"

#include <atomic>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "relational/value.h"

namespace qf {
namespace {

TEST(StringPool, InternReturnsCanonicalPointer) {
  StringPool& pool = StringPool::Instance();
  const std::string* a = pool.Intern("string_pool_test.alpha");
  const std::string* b = pool.Intern("string_pool_test.alpha");
  const std::string* c = pool.Intern("string_pool_test.beta");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(*a, "string_pool_test.alpha");
}

TEST(StringPool, ViewIntoTemporaryBufferIsCopied) {
  StringPool& pool = StringPool::Instance();
  const std::string* first;
  {
    std::string scratch = "string_pool_test.temp_buffer";
    first = pool.Intern(std::string_view(scratch));
    scratch.assign(scratch.size(), 'x');  // clobber the source buffer
  }
  EXPECT_EQ(*first, "string_pool_test.temp_buffer");
  EXPECT_EQ(pool.Intern("string_pool_test.temp_buffer"), first);
}

TEST(StringPool, ConcurrentInternStress) {
  // Many morsels hammer a small overlapping key space so that distinct
  // threads race to intern the SAME string at the same moment — the case
  // shard locking must serialize. The pool is a process-wide singleton,
  // so distinct strings are namespaced and growth is measured as a delta.
  StringPool& pool = StringPool::Instance();
  constexpr std::size_t kDistinct = 512;
  constexpr std::size_t kTasks = 20000;
  const std::size_t size_before = pool.size();

  std::vector<std::atomic<const std::string*>> canon(kDistinct);
  for (auto& p : canon) p.store(nullptr, std::memory_order_relaxed);
  std::atomic<std::size_t> mismatches{0};

  ParallelFor(8, kTasks, /*morsel=*/64,
              [&](std::size_t begin, std::size_t end) {
                for (std::size_t i = begin; i < end; ++i) {
                  std::size_t k = (i * 2654435761u) % kDistinct;
                  std::string key =
                      "string_pool_test.stress." + std::to_string(k);
                  const std::string* got = pool.Intern(key);
                  if (*got != key) {
                    mismatches.fetch_add(1, std::memory_order_relaxed);
                    continue;
                  }
                  const std::string* expected = nullptr;
                  if (!canon[k].compare_exchange_strong(
                          expected, got, std::memory_order_acq_rel) &&
                      expected != got) {
                    // Another thread registered a different canonical
                    // pointer for the same string: interning broke.
                    mismatches.fetch_add(1, std::memory_order_relaxed);
                  }
                }
              });

  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_EQ(pool.size() - size_before, kDistinct);
  // Re-interning serially still lands on the same canonical pointers.
  for (std::size_t k = 0; k < kDistinct; ++k) {
    std::string key = "string_pool_test.stress." + std::to_string(k);
    EXPECT_EQ(pool.Intern(key), canon[k].load());
  }
}

TEST(StringPool, ValuesInternedConcurrentlyCompareEqual) {
  // Value's string representation relies on pointer identity from the
  // pool; concurrent construction must yield equal Values.
  std::vector<Value> values(64, Value(std::int64_t{0}));
  ParallelFor(8, values.size(), /*morsel=*/4,
              [&](std::size_t begin, std::size_t end) {
                for (std::size_t i = begin; i < end; ++i) {
                  values[i] = Value("string_pool_test.value_identity");
                }
              });
  for (const Value& v : values) {
    ASSERT_EQ(v, values[0]);
  }
}

}  // namespace
}  // namespace qf
