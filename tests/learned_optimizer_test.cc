// Tests for the learned optimizer (ROADMAP item 4): the outcome-history
// store and its codecs, the contextual bandit's feature hashing, arm
// enumeration and UCB policy, and the shell integration — including the
// differential suite pinning learned RUN output bit-identical to static
// mode at every thread count, under governor budgets, and across catalog
// CHECKPOINT / OPEN (history replay).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/vfs.h"
#include "flocks/eval.h"
#include "flocks/filter.h"
#include "flocks/flock.h"
#include "optimizer/bandit.h"
#include "optimizer/cost_model.h"
#include "optimizer/dynamic.h"
#include "optimizer/executor_support.h"
#include "optimizer/history.h"
#include "optimizer/join_order.h"
#include "optimizer/plan_search.h"
#include "optimizer/stats.h"
#include "relational/serialize.h"
#include "shell/shell.h"
#include "workload/basket_gen.h"

namespace qf {
namespace {

QueryFlock Flock(const char* text, FilterCondition filter) {
  auto f = MakeFlock(text, filter);
  EXPECT_TRUE(f.ok()) << f.status().ToString();
  return *f;
}

// ------------------------------------------------------ outcome history

BanditOutcome Outcome(std::uint64_t context, const char* arm, double wall,
                      double rows = 10, double skew = 1.0) {
  BanditOutcome o;
  o.context = context;
  o.arm = arm;
  o.wall_ms = wall;
  o.rows = rows;
  o.skew = skew;
  return o;
}

TEST(OutcomeHistoryTest, RecordFoldsIntoRunningAggregates) {
  OutcomeHistory h;
  EXPECT_TRUE(h.empty());
  h.Record(Outcome(7, "direct:cost", 2.0, 10, 1.0));
  h.Record(Outcome(7, "direct:cost", 4.0, 20, 3.0));
  h.Record(Outcome(7, "plan:search", 8.0));
  h.Record(Outcome(9, "plan:search", 1.0));
  EXPECT_EQ(h.context_count(), 2u);
  EXPECT_EQ(h.total_plays(), 4u);
  const ArmStats* cell = h.Find(7, "direct:cost");
  ASSERT_NE(cell, nullptr);
  EXPECT_EQ(cell->plays, 2u);
  EXPECT_DOUBLE_EQ(cell->MeanWallMs(), 3.0);
  EXPECT_DOUBLE_EQ(cell->MeanRows(), 15.0);
  EXPECT_DOUBLE_EQ(cell->MeanSkew(), 2.0);
  EXPECT_DOUBLE_EQ(cell->last_wall_ms, 4.0);
  EXPECT_EQ(h.Find(7, "dyn:session"), nullptr);
  EXPECT_EQ(h.Find(8, "plan:search"), nullptr);
  ASSERT_NE(h.FindContext(9), nullptr);
  EXPECT_EQ(h.FindContext(9)->size(), 1u);
}

TEST(OutcomeHistoryTest, EncodeDecodeRoundTripsBitForBit) {
  OutcomeHistory h;
  h.Record(Outcome(0xdeadbeef12345678ull, "dyn:eager", 1.25, 42, 2.5));
  h.Record(Outcome(0xdeadbeef12345678ull, "plan:search", 7.5));
  h.Record(Outcome(3, "direct:text", 0.5));
  std::string bytes;
  h.EncodeTo(bytes);
  OutcomeHistory decoded;
  ByteReader in(bytes);
  ASSERT_TRUE(decoded.DecodeFrom(in).ok());
  EXPECT_EQ(decoded, h);
  // Determinism: the same store encodes to the same bytes.
  std::string again;
  decoded.EncodeTo(again);
  EXPECT_EQ(again, bytes);
}

TEST(OutcomeHistoryTest, EmptyHistoryRoundTrips) {
  OutcomeHistory h;
  std::string bytes;
  h.EncodeTo(bytes);
  OutcomeHistory decoded;
  decoded.Record(Outcome(1, "x", 1.0));  // Decode must replace this.
  ByteReader in(bytes);
  ASSERT_TRUE(decoded.DecodeFrom(in).ok());
  EXPECT_TRUE(decoded.empty());
}

TEST(OutcomeHistoryTest, DecodeRejectsTruncatedBytes) {
  OutcomeHistory h;
  h.Record(Outcome(7, "direct:cost", 2.0));
  std::string bytes;
  h.EncodeTo(bytes);
  for (std::size_t cut : {bytes.size() - 1, bytes.size() / 2,
                          std::size_t{1}}) {
    OutcomeHistory decoded;
    std::string truncated = bytes.substr(0, cut);
    ByteReader in(truncated);
    EXPECT_FALSE(decoded.DecodeFrom(in).ok()) << "cut at " << cut;
  }
}

TEST(OutcomeHistoryTest, OutcomeRecordRoundTrips) {
  BanditOutcome o = Outcome(0x0123456789abcdefull, "dyn:cautious", 3.5,
                            100, 1.75);
  std::string bytes;
  EncodeBanditOutcome(o, bytes);
  BanditOutcome decoded;
  ByteReader in(bytes);
  ASSERT_TRUE(DecodeBanditOutcome(in, &decoded).ok());
  EXPECT_EQ(decoded.context, o.context);
  EXPECT_EQ(decoded.arm, o.arm);
  EXPECT_DOUBLE_EQ(decoded.wall_ms, o.wall_ms);
  EXPECT_DOUBLE_EQ(decoded.rows, o.rows);
  EXPECT_DOUBLE_EQ(decoded.skew, o.skew);
}

TEST(OutcomeHistoryTest, DescribeIsDeterministicAndReadable) {
  OutcomeHistory h;
  h.Record(Outcome(7, "plan:search", 2.0));
  h.Record(Outcome(7, "direct:cost", 1.0));
  std::string text = h.Describe();
  EXPECT_NE(text.find("1 context"), std::string::npos) << text;
  EXPECT_NE(text.find("direct:cost"), std::string::npos);
  EXPECT_NE(text.find("plan:search"), std::string::npos);
  EXPECT_EQ(text, h.Describe());
}

// ------------------------------------------------------ feature hashing

Database SmallBaskets() {
  Database db;
  db.PutRelation(GenerateBaskets({.n_baskets = 100, .n_items = 20,
                                  .avg_basket_size = 4, .zipf_theta = 1.0,
                                  .seed = 31}));
  return db;
}

TEST(PlanContextTest, ShapeHashIgnoresVariableNamesNotParameters) {
  QueryFlock a = Flock("answer(B) :- baskets(B,$1) AND baskets(B,$2)",
                       FilterCondition::MinSupport(4));
  QueryFlock renamed = Flock("answer(C) :- baskets(C,$1) AND baskets(C,$2)",
                             FilterCondition::MinSupport(4));
  // Same shape up to alpha-renaming of variables: same hash.
  EXPECT_EQ(FlockShapeHash(a), FlockShapeHash(renamed));
  // Sharing one parameter across positions is a *different* shape.
  QueryFlock shared = Flock("answer(B) :- baskets(B,$1) AND baskets(B,$1)",
                            FilterCondition::MinSupport(4));
  EXPECT_NE(FlockShapeHash(a), FlockShapeHash(shared));
  // So is a different predicate.
  QueryFlock other = Flock("answer(B) :- other(B,$1) AND baskets(B,$2)",
                           FilterCondition::MinSupport(4));
  EXPECT_NE(FlockShapeHash(a), FlockShapeHash(other));
}

TEST(PlanContextTest, ContextBucketsThresholdAndDataMagnitude) {
  Database db = SmallBaskets();
  CostModel model(db);
  QueryFlock f4 = Flock("answer(B) :- baskets(B,$1)",
                        FilterCondition::MinSupport(4));
  QueryFlock f5 = Flock("answer(B) :- baskets(B,$1)",
                        FilterCondition::MinSupport(5));
  QueryFlock f16 = Flock("answer(B) :- baskets(B,$1)",
                         FilterCondition::MinSupport(16));
  // 4 and 5 share a log2 bucket; 16 is a different decade.
  EXPECT_EQ(MakePlanContext(f4, model).key, MakePlanContext(f5, model).key);
  EXPECT_NE(MakePlanContext(f4, model).key, MakePlanContext(f16, model).key);

  // 10x the data is a different cell for the same flock.
  Database big;
  big.PutRelation(GenerateBaskets({.n_baskets = 2000, .n_items = 20,
                                   .avg_basket_size = 4, .zipf_theta = 1.0,
                                   .seed = 31}));
  CostModel big_model(big);
  EXPECT_NE(MakePlanContext(f4, model).key,
            MakePlanContext(f4, big_model).key);

  EXPECT_FALSE(MakePlanContext(f4, model).description.empty());
}

// ------------------------------------------------------ arm enumeration

TEST(EnumerateArmsTest, StaticArmsAlwaysPresentDynamicGated) {
  Database db = SmallBaskets();
  CostModel model(db);
  QueryFlock flock =
      Flock("answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2",
            FilterCondition::MinSupport(4));
  std::vector<BanditArm> static_only =
      EnumerateArms(flock, model, /*dynamic_eligible=*/false, DynamicKnobs{});
  ASSERT_GE(static_only.size(), 2u);
  EXPECT_EQ(static_only[0].id, "plan:search");
  EXPECT_EQ(static_only[0].kind, BanditArm::Kind::kPlan);
  EXPECT_EQ(static_only[1].id, "direct:cost");
  for (const BanditArm& arm : static_only) {
    EXPECT_NE(arm.kind, BanditArm::Kind::kDynamic) << arm.id;
  }

  std::vector<BanditArm> with_dyn =
      EnumerateArms(flock, model, /*dynamic_eligible=*/true, DynamicKnobs{});
  ASSERT_GT(with_dyn.size(), static_only.size());
  bool has_session = false, has_eager = false, has_cautious = false;
  for (const BanditArm& arm : with_dyn) {
    if (arm.id == "dyn:session") has_session = true;
    if (arm.id == "dyn:eager") has_eager = true;
    if (arm.id == "dyn:cautious") has_cautious = true;
  }
  EXPECT_TRUE(has_session && has_eager && has_cautious);

  // Session knobs equal to a preset: the duplicate preset arm is dropped
  // (two ids for one strategy would split its learned history).
  DynamicKnobs eager{2.0, 0.9, 0.05};
  std::vector<BanditArm> deduped =
      EnumerateArms(flock, model, /*dynamic_eligible=*/true, eager);
  for (const BanditArm& arm : deduped) EXPECT_NE(arm.id, "dyn:eager");
}

TEST(EnumerateArmsTest, TextOrderArmOnlyWhenItDiffersFromCost) {
  // One relation, one subgoal: the cost order IS the text order, so a
  // separate "direct:text" arm would be a duplicate strategy.
  Database db = SmallBaskets();
  CostModel model(db);
  QueryFlock single = Flock("answer(B) :- baskets(B,$1)",
                            FilterCondition::MinSupport(4));
  for (const BanditArm& arm :
       EnumerateArms(single, model, false, DynamicKnobs{})) {
    EXPECT_NE(arm.id, "direct:text");
  }
}

// ------------------------------------------------------ bandit policy

std::vector<BanditArm> ThreeArms() {
  std::vector<BanditArm> arms(3);
  arms[0].id = "a";
  arms[1].id = "b";
  arms[2].id = "c";
  return arms;
}

TEST(PlanBanditTest, WarmUpExploresUnplayedArmsInOrder) {
  OutcomeHistory h;
  std::vector<BanditArm> arms = ThreeArms();
  PlanBandit bandit(h);
  BanditChoice first = bandit.Choose(1, arms);
  EXPECT_EQ(first.index, 0u);
  EXPECT_TRUE(first.exploring);
  h.Record(Outcome(1, "a", 5.0));
  BanditChoice second = bandit.Choose(1, arms);
  EXPECT_EQ(second.index, 1u);
  EXPECT_TRUE(second.exploring);
  h.Record(Outcome(1, "b", 1.0));
  BanditChoice third = bandit.Choose(1, arms);
  EXPECT_EQ(third.index, 2u);
  EXPECT_TRUE(third.exploring);
}

TEST(PlanBanditTest, ExploitsCheapestArmOnceWarm) {
  OutcomeHistory h;
  h.Record(Outcome(1, "a", 5.0));
  h.Record(Outcome(1, "b", 1.0));
  h.Record(Outcome(1, "c", 3.0));
  std::vector<BanditArm> arms = ThreeArms();
  // exploration = 0: pure greedy, the cheapest mean must win.
  PlanBandit bandit(h, /*exploration=*/0.0);
  BanditChoice choice = bandit.Choose(1, arms);
  EXPECT_EQ(choice.arm_id, "b");
  EXPECT_FALSE(choice.exploring);
  EXPECT_EQ(choice.plays, 1u);
  EXPECT_DOUBLE_EQ(choice.mean_wall_ms, 1.0);
  EXPECT_NE(choice.posterior.find("score="), std::string::npos);
}

TEST(PlanBanditTest, TiesBreakTowardLowerIndex) {
  OutcomeHistory h;
  h.Record(Outcome(1, "a", 2.0));
  h.Record(Outcome(1, "b", 2.0));
  h.Record(Outcome(1, "c", 2.0));
  PlanBandit bandit(h, 0.0);
  EXPECT_EQ(bandit.Choose(1, ThreeArms()).arm_id, "a");
}

TEST(PlanBanditTest, ExplorationBonusRevisitsUnderPlayedArms) {
  OutcomeHistory h;
  // "a" is slightly cheaper but heavily played; "b" barely played. With a
  // strong exploration weight the bound must favor the uncertain arm.
  for (int i = 0; i < 50; ++i) h.Record(Outcome(1, "a", 2.0));
  h.Record(Outcome(1, "b", 2.2));
  std::vector<BanditArm> arms(2);
  arms[0].id = "a";
  arms[1].id = "b";
  EXPECT_EQ(PlanBandit(h, 5.0).Choose(1, arms).arm_id, "b");
  EXPECT_EQ(PlanBandit(h, 0.0).Choose(1, arms).arm_id, "a");
}

TEST(PlanBanditTest, ContextsAreIndependent) {
  OutcomeHistory h;
  h.Record(Outcome(1, "a", 1.0));
  h.Record(Outcome(1, "b", 5.0));
  h.Record(Outcome(1, "c", 5.0));
  // Context 2 is fresh: warm-up restarts regardless of context 1's data.
  BanditChoice choice = PlanBandit(h).Choose(2, ThreeArms());
  EXPECT_TRUE(choice.exploring);
  EXPECT_EQ(choice.index, 0u);
}

// ---------------------------------------- stale statistics (satellite 2)

TEST(StatsGenerationTest, ComputeStampsDatabaseGeneration) {
  Database db = SmallBaskets();
  DatabaseStats stats = DatabaseStats::Compute(db);
  EXPECT_EQ(stats.generation(), db.generation());
  Relation extra("extra", Schema({"X"}));
  extra.AddRow({Value(1)});
  db.PutRelation(std::move(extra));
  EXPECT_NE(stats.generation(), db.generation());
  EXPECT_EQ(DatabaseStats::Compute(db).generation(), db.generation());
}

TEST(StatsGenerationTest, SkewedAppendChangesChosenJoinOrder) {
  // Before the append `small` is the cheaper leading relation; stale
  // statistics would keep joining it first even after it grows 100x.
  Database db;
  Relation small("small", Schema({"X", "P"}));
  for (int i = 0; i < 10; ++i) {
    small.AddRow({Value(i), Value("p" + std::to_string(i % 3))});
  }
  Relation big("big", Schema({"X", "Q"}));
  for (int i = 0; i < 2000; ++i) {
    big.AddRow({Value(i), Value("q" + std::to_string(i % 7))});
  }
  db.PutRelation(small);
  db.PutRelation(std::move(big));
  ConjunctiveQuery cq =
      Flock("answer(X) :- small(X,$1) AND big(X,$2)",
            FilterCondition::MinSupport(2))
          .query.disjuncts.front();

  CostModel before(DatabaseStats::Compute(db));
  std::vector<std::size_t> order_before = ChooseJoinOrder(cq, before);

  Relation grown = db.Get("small");
  for (int i = 10; i < 100000; ++i) {
    grown.AddRow({Value(i), Value("p" + std::to_string(i % 5000))});
  }
  grown.set_name("small");
  db.PutRelation(std::move(grown));  // bumps Database::generation

  // The stale model still prefers the old order; a fresh Compute must
  // flip the leading relation.
  EXPECT_EQ(ChooseJoinOrder(cq, before), order_before);
  CostModel after(DatabaseStats::Compute(db));
  std::vector<std::size_t> order_after = ChooseJoinOrder(cq, after);
  EXPECT_NE(order_after, order_before)
      << "join order did not react to a 100x skewed append";
}

// --------------------------------------------------- shell integration

std::string MustRun(Shell& shell, std::string_view statement) {
  Result<std::string> out = shell.Execute(statement);
  EXPECT_TRUE(out.ok()) << out.status().ToString() << " for: " << statement;
  return out.ok() ? *out : std::string();
}

// Everything after the status line — the relation preview, which must be
// bit-identical across modes, arms, and thread counts.
std::string Preview(const std::string& run_output) {
  std::size_t nl = run_output.find('\n');
  return nl == std::string::npos ? run_output : run_output.substr(nl + 1);
}

void SeedWorkload(Shell& shell) {
  MustRun(shell,
          "GEN BASKETS b n_baskets=300 n_items=40 avg_size=5 theta=1.1 "
          "seed=17");
  MustRun(shell,
          "FLOCK f QUERY answer(B) :- b(B,$1) AND b(B,$2) AND $1 < $2 "
          "FILTER COUNT >= 6");
}

TEST(LearnedShellTest, LearnedRunMatchesStaticAtEveryThreadCount) {
  Shell shell;
  SeedWorkload(shell);
  std::string expected = Preview(MustRun(shell, "RUN f DIRECT LIMIT 1000"));
  ASSERT_FALSE(expected.empty());
  MustRun(shell, "SET OPTIMIZER LEARNED");
  for (unsigned threads : {1u, 2u, 4u}) {
    // Enough runs to cycle through every arm's warm-up and into
    // exploitation; each one must reproduce the static answer exactly.
    for (int i = 0; i < 8; ++i) {
      std::string out = MustRun(shell, "RUN f LIMIT 1000 THREADS " +
                                           std::to_string(threads));
      EXPECT_NE(out.find("LEARNED:"), std::string::npos) << out;
      EXPECT_EQ(Preview(out), expected)
          << "learned run diverged at threads=" << threads << " run " << i;
    }
  }
  // The history saw every one of those runs.
  std::string state = MustRun(shell, "SHOW OPTIMIZER STATE");
  EXPECT_NE(state.find("optimizer: learned"), std::string::npos) << state;
  EXPECT_NE(state.find("24 outcomes"), std::string::npos) << state;
}

TEST(LearnedShellTest, LearnedRunMatchesStaticUnderGovernorBudgets) {
  Shell shell;
  SeedWorkload(shell);
  std::string expected = Preview(MustRun(shell, "RUN f DIRECT LIMIT 1000"));
  MustRun(shell, "SET OPTIMIZER LEARNED");
  MustRun(shell, "SET MEMORY 64");
  MustRun(shell, "SET TIMEOUT 60000");
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(Preview(MustRun(shell, "RUN f LIMIT 1000")), expected)
        << "governed learned run " << i;
  }
}

TEST(LearnedShellTest, ExplicitModeWordOverridesLearnedMode) {
  Shell shell;
  SeedWorkload(shell);
  MustRun(shell, "SET OPTIMIZER LEARNED");
  EXPECT_NE(MustRun(shell, "RUN f PLAN").find("(PLAN)"), std::string::npos);
  EXPECT_NE(MustRun(shell, "RUN f DYNAMIC").find("(DYNAMIC)"),
            std::string::npos);
  MustRun(shell, "SET OPTIMIZER STATIC");
  EXPECT_NE(MustRun(shell, "RUN f").find("(PLAN)"), std::string::npos);
}

TEST(LearnedShellTest, ExplainAnalyzeRendersChosenArmAndPosterior) {
  Shell shell;
  SeedWorkload(shell);
  MustRun(shell, "SET OPTIMIZER LEARNED");
  std::string out = MustRun(shell, "EXPLAIN ANALYZE f");
  EXPECT_NE(out.find("optimizer: context"), std::string::npos) << out;
  EXPECT_NE(out.find("chose plan:search (exploring)"), std::string::npos)
      << out;
  // Warm the bandit past warm-up; the posterior then shows scored arms.
  for (int i = 0; i < 6; ++i) MustRun(shell, "RUN f");
  out = MustRun(shell, "EXPLAIN ANALYZE f");
  EXPECT_NE(out.find("exploiting"), std::string::npos) << out;
  EXPECT_NE(out.find("score="), std::string::npos) << out;
}

TEST(LearnedShellTest, ShowOptimizerStateReportsModeKnobsAndHistory) {
  Shell shell;
  std::string out = MustRun(shell, "SHOW OPTIMIZER STATE");
  EXPECT_NE(out.find("optimizer: static"), std::string::npos) << out;
  EXPECT_NE(out.find("aggressiveness=1.000"), std::string::npos) << out;
  MustRun(shell, "SET DYNAMIC AGGRESSIVENESS 2.5");
  MustRun(shell, "SET DYNAMIC IMPROVEMENT 0.75");
  MustRun(shell, "SET DYNAMIC MINREMOVED 0.1");
  out = MustRun(shell, "SHOW OPTIMIZER STATE");
  EXPECT_NE(out.find("aggressiveness=2.500"), std::string::npos) << out;
  EXPECT_NE(out.find("improvement=0.750"), std::string::npos) << out;
  EXPECT_NE(out.find("min_removed=0.100"), std::string::npos) << out;
  // Bad knob values are rejected.
  EXPECT_FALSE(shell.Execute("SET DYNAMIC IMPROVEMENT 1.5").ok());
  EXPECT_FALSE(shell.Execute("SET DYNAMIC AGGRESSIVENESS -1").ok());
  EXPECT_FALSE(shell.Execute("SET DYNAMIC BOGUS 1").ok());
}

TEST(LearnedShellTest, HistorySurvivesCheckpointAndReopen) {
  MemVfs vfs;
  std::string state_before;
  {
    Shell shell;
    shell.set_vfs(&vfs);
    MustRun(shell, "OPEN cat");
    SeedWorkload(shell);
    MustRun(shell, "SET OPTIMIZER LEARNED");
    MustRun(shell, "SET DYNAMIC AGGRESSIVENESS 1.5");
    for (int i = 0; i < 4; ++i) MustRun(shell, "RUN f");
    MustRun(shell, "CHECKPOINT");  // history must survive the snapshot
    for (int i = 0; i < 3; ++i) MustRun(shell, "RUN f");  // ... and the WAL
    state_before = MustRun(shell, "SHOW OPTIMIZER STATE");
    EXPECT_NE(state_before.find("7 outcomes"), std::string::npos)
        << state_before;
  }
  Shell reopened;
  reopened.set_vfs(&vfs);
  MustRun(reopened, "OPEN cat");
  // Mode, knobs, and the full outcome history all replay. Wall times are
  // data, not re-measured, so the state text matches byte-for-byte.
  EXPECT_EQ(MustRun(reopened, "SHOW OPTIMIZER STATE"), state_before);
  EXPECT_TRUE(reopened.learned_optimizer());
  // Learning continues against the recovered history: the next RUN is a
  // learned run and lands in the same context cell.
  MustRun(reopened, "RUN f");
  EXPECT_NE(MustRun(reopened, "SHOW OPTIMIZER STATE").find("8 outcomes"),
            std::string::npos);
}

// ------------------------------- arm-by-arm differential (unit level)

// Executes `arm` the way Shell::EvaluateLearned does, at `threads`.
Result<Relation> ExecuteArm(const BanditArm& arm, const QueryFlock& flock,
                            const Database& db, const CostModel& model,
                            unsigned threads) {
  switch (arm.kind) {
    case BanditArm::Kind::kPlan: {
      Result<QueryPlan> plan = SearchPlanParameterSets(flock, model);
      if (!plan.ok()) return plan.status();
      PlanExecOptions options;
      options.order_chooser = CostBasedOrderChooser();
      options.threads = threads;
      return ExecutePlan(*plan, flock, db, options);
    }
    case BanditArm::Kind::kDirect: {
      FlockEvalOptions options;
      options.threads = threads;
      for (const std::vector<std::size_t>& order : arm.orders) {
        CqEvalOptions cq_options;
        cq_options.join_order = order;
        options.per_disjunct.push_back(std::move(cq_options));
      }
      return EvaluateFlock(flock, db, options);
    }
    case BanditArm::Kind::kDynamic: {
      DynamicOptions options;
      if (!arm.orders.empty()) options.join_order = arm.orders.front();
      options.aggressiveness = arm.knobs.aggressiveness;
      options.improvement_factor = arm.knobs.improvement_factor;
      options.min_removed_fraction = arm.knobs.min_removed_fraction;
      options.threads = threads;
      return DynamicEvaluate(flock, db, options);
    }
  }
  return Status::Ok();
}

TEST(LearnedDifferentialTest, EveryArmMatchesBaselineAtThreads014) {
  Database db;
  db.PutRelation(GenerateBaskets({.n_baskets = 250, .n_items = 35,
                                  .avg_basket_size = 5, .zipf_theta = 1.1,
                                  .seed = 41}));
  QueryFlock flock =
      Flock("answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2",
            FilterCondition::MinSupport(5));
  Result<Relation> baseline = EvaluateFlock(flock, db);
  ASSERT_TRUE(baseline.ok());
  CostModel model(db);
  std::vector<BanditArm> arms =
      EnumerateArms(flock, model, /*dynamic_eligible=*/true, DynamicKnobs{});
  ASSERT_GE(arms.size(), 4u);
  for (const BanditArm& arm : arms) {
    for (unsigned threads : {0u, 1u, 4u}) {
      Result<Relation> got = ExecuteArm(arm, flock, db, model, threads);
      ASSERT_TRUE(got.ok())
          << arm.id << " threads=" << threads << ": "
          << got.status().ToString();
      got->SortRows();
      EXPECT_EQ(got->rows(), baseline->rows())
          << "arm " << arm.id << " diverged at threads=" << threads;
    }
  }
}

}  // namespace
}  // namespace qf
