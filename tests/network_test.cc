// Tests for the qfserverd wire protocol and the server/client pair
// (network/protocol.h, network/server.h, network/client.h): frame
// codec round-trips and poisoned-stream detection, the versioned
// handshake, statement round-trips with typed error frames, per-session
// catalog isolation over the shared copy-on-write base database, and the
// PING/STATS/BYE side channels.
#include <gtest/gtest.h>

#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <utility>

#include "common/status.h"
#include "common/vfs.h"
#include "network/client.h"
#include "network/fault_socket.h"
#include "network/protocol.h"
#include "network/server.h"
#include "incremental_diff_harness.h"
#include "network/socket.h"
#include "relational/tsv.h"
#include "shell/shell.h"

namespace qf {
namespace {

std::unique_ptr<Server> StartServer(ServerOptions options = {}) {
  options.port = 0;
  Result<std::unique_ptr<Server>> server = Server::Start(std::move(options));
  EXPECT_TRUE(server.ok()) << server.status().ToString();
  return server.ok() ? std::move(*server) : nullptr;
}

Client MustConnect(const Server& server) {
  Result<Client> client = Client::Connect("127.0.0.1", server.port());
  EXPECT_TRUE(client.ok()) << client.status().ToString();
  return client.ok() ? std::move(*client) : Client();
}

// ------------------------------------------------------------- codec

TEST(ProtocolTest, FrameRoundTrip) {
  Frame frame;
  frame.type = FrameType::kStmt;
  frame.request_id = 0x0123456789abcdefULL;
  frame.body = "RUN pairs;";
  std::string wire = EncodeFrame(frame);
  DecodeOutcome out = DecodeFrame(wire);
  ASSERT_TRUE(out.status.ok()) << out.status.ToString();
  EXPECT_FALSE(out.need_more);
  EXPECT_EQ(out.consumed, wire.size());
  EXPECT_EQ(out.frame.type, FrameType::kStmt);
  EXPECT_EQ(out.frame.request_id, frame.request_id);
  EXPECT_EQ(out.frame.body, frame.body);
}

TEST(ProtocolTest, DecodeLeavesTrailingBytes) {
  Frame a{FrameType::kPing, 1, ""};
  Frame b{FrameType::kPong, 2, ""};
  std::string wire = EncodeFrame(a) + EncodeFrame(b);
  DecodeOutcome first = DecodeFrame(wire);
  ASSERT_TRUE(first.status.ok());
  EXPECT_EQ(first.frame.request_id, 1u);
  DecodeOutcome second = DecodeFrame(
      std::string_view(wire).substr(first.consumed));
  ASSERT_TRUE(second.status.ok());
  EXPECT_EQ(second.frame.request_id, 2u);
  EXPECT_EQ(first.consumed + second.consumed, wire.size());
}

TEST(ProtocolTest, TruncatedFramesNeedMore) {
  std::string wire = EncodeFrame({FrameType::kStmt, 7, "HELP"});
  for (std::size_t n = 0; n < wire.size(); ++n) {
    DecodeOutcome out = DecodeFrame(std::string_view(wire).substr(0, n));
    EXPECT_TRUE(out.need_more) << "prefix length " << n;
    EXPECT_TRUE(out.status.ok()) << "prefix length " << n;
  }
}

TEST(ProtocolTest, OversizedLengthIsRejectedBeforeBuffering) {
  std::string wire;
  AppendU32(wire, kMaxPayloadBytes + 1);
  AppendU32(wire, 0);
  // No body bytes needed: the length prefix alone poisons the stream.
  DecodeOutcome out = DecodeFrame(wire);
  EXPECT_FALSE(out.need_more);
  EXPECT_FALSE(out.status.ok());
  EXPECT_EQ(out.status.code(), StatusCode::kInvalidArgument);
}

TEST(ProtocolTest, UndersizedLengthIsRejected) {
  std::string wire;
  AppendU32(wire, static_cast<std::uint32_t>(kMinPayloadBytes) - 1);
  AppendU32(wire, 0);
  wire.append(kMinPayloadBytes - 1, 'x');
  DecodeOutcome out = DecodeFrame(wire);
  EXPECT_FALSE(out.status.ok());
}

TEST(ProtocolTest, CorruptPayloadFailsChecksum) {
  std::string wire = EncodeFrame({FrameType::kStmt, 7, "SHOW RELATIONS"});
  for (std::size_t i = kFrameHeaderBytes; i < wire.size(); ++i) {
    std::string bent = wire;
    bent[i] = static_cast<char>(bent[i] ^ 0x20);
    DecodeOutcome out = DecodeFrame(bent);
    EXPECT_FALSE(out.status.ok()) << "flipped byte " << i;
  }
}

TEST(ProtocolTest, UnknownFrameTypeIsRejected) {
  std::string wire = EncodeFrame({static_cast<FrameType>(0x7f), 1, ""});
  DecodeOutcome out = DecodeFrame(wire);
  EXPECT_FALSE(out.status.ok());
  EXPECT_FALSE(IsKnownFrameType(0x7f));
  EXPECT_TRUE(IsKnownFrameType(static_cast<std::uint8_t>(FrameType::kStmt)));
}

TEST(ProtocolTest, ErrorBodyRoundTripsTypedStatus) {
  Status in = OverloadedError("admission queue full (64 statements)");
  Status out = DecodeErrorBody(EncodeErrorBody(in));
  EXPECT_EQ(out.code(), StatusCode::kOverloaded);
  EXPECT_EQ(out.message(), in.message());
  // Unknown code bytes and empty bodies map to INTERNAL, not UB.
  EXPECT_EQ(DecodeErrorBody(std::string("\xee message")).code(),
            StatusCode::kInternal);
  EXPECT_EQ(DecodeErrorBody("").code(), StatusCode::kInternal);
}

TEST(ProtocolTest, HelloAndWelcomeBodies) {
  Result<std::uint32_t> negotiated = CheckHelloBody(EncodeHelloBody());
  ASSERT_TRUE(negotiated.ok());
  EXPECT_EQ(*negotiated, kProtocolVersion);
  // Every version in the supported window negotiates to itself.
  for (std::uint32_t v = kMinProtocolVersion; v <= kProtocolVersion; ++v) {
    Result<std::uint32_t> n = CheckHelloBody(EncodeHelloBody(v));
    ASSERT_TRUE(n.ok()) << "version " << v;
    EXPECT_EQ(*n, v);
  }
  EXPECT_EQ(CheckHelloBody("").status().code(), StatusCode::kInvalidArgument);

  std::string wrong_magic;
  AppendU32(wrong_magic, 0xdeadbeefu);
  AppendU32(wrong_magic, kProtocolVersion);
  EXPECT_EQ(CheckHelloBody(wrong_magic).status().code(),
            StatusCode::kInvalidArgument);

  for (std::uint32_t bad : {kMinProtocolVersion - 1, kProtocolVersion + 1}) {
    std::string wrong_version;
    AppendU32(wrong_version, kProtocolMagic);
    AppendU32(wrong_version, bad);
    EXPECT_EQ(CheckHelloBody(wrong_version).status().code(),
              StatusCode::kFailedPrecondition)
        << "version " << bad;
  }

  // v1 WELCOME: 12 bytes, no token; v2: 20 bytes with the token.
  Welcome v1{1, 42, 0};
  std::string v1_body = EncodeWelcomeBody(v1);
  EXPECT_EQ(v1_body.size(), 12u);
  Result<Welcome> v1_back = DecodeWelcomeBody(v1_body);
  ASSERT_TRUE(v1_back.ok());
  EXPECT_EQ(v1_back->session_id, 42u);
  EXPECT_EQ(v1_back->resume_token, 0u);

  Welcome v2{2, 42, 0xfeedfacecafef00dULL};
  std::string v2_body = EncodeWelcomeBody(v2);
  EXPECT_EQ(v2_body.size(), 20u);
  Result<Welcome> v2_back = DecodeWelcomeBody(v2_body);
  ASSERT_TRUE(v2_back.ok());
  EXPECT_EQ(v2_back->session_id, 42u);
  EXPECT_EQ(v2_back->resume_token, v2.resume_token);
  // A v2 WELCOME truncated to v1 size is rejected, not misread.
  EXPECT_FALSE(DecodeWelcomeBody(v2_body.substr(0, 12)).ok());
}

TEST(ProtocolTest, ResumeBodyRoundTrip) {
  ResumeRequest in{77, 0x123456789abcdef0ULL};
  Result<ResumeRequest> out = DecodeResumeBody(EncodeResumeBody(in));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->session_id, in.session_id);
  EXPECT_EQ(out->resume_token, in.resume_token);
  EXPECT_EQ(DecodeResumeBody("short").status().code(),
            StatusCode::kInvalidArgument);
}

// ------------------------------------------------------- live server

TEST(ServerTest, StatementRoundTrip) {
  std::unique_ptr<Server> server = StartServer();
  ASSERT_NE(server, nullptr);
  Client client = MustConnect(*server);
  Result<std::string> out =
      client.Execute("GEN BASKETS b n_baskets=30 n_items=8 seed=3");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_NE(out->find("generated b"), std::string::npos);
  out = client.Execute("SHOW RELATIONS");
  ASSERT_TRUE(out.ok());
  EXPECT_NE(out->find("b("), std::string::npos);
}

TEST(ServerTest, ErrorsComeBackTyped) {
  std::unique_ptr<Server> server = StartServer();
  ASSERT_NE(server, nullptr);
  Client client = MustConnect(*server);
  Result<std::string> out = client.Execute("RUN missing");
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kNotFound);
  // The session survives its own errors.
  EXPECT_TRUE(client.Execute("HELP").ok());
}

TEST(ServerTest, DeadlineExceededPropagates) {
  std::unique_ptr<Server> server = StartServer();
  ASSERT_NE(server, nullptr);
  Client client = MustConnect(*server);
  ASSERT_TRUE(
      client
          .Execute(
              "GEN BASKETS mb n_baskets=2000 n_items=100 avg_size=8 seed=9")
          .ok());
  ASSERT_TRUE(client.Execute("SET TIMEOUT 1").ok());
  Result<std::string> out = client.Execute("MAXIMAL mb SUPPORT 5");
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(ServerTest, SessionsAreIsolated) {
  std::unique_ptr<Server> server = StartServer();
  ASSERT_NE(server, nullptr);
  Client a = MustConnect(*server);
  Client b = MustConnect(*server);
  ASSERT_TRUE(a.Execute("GEN BASKETS mine n_baskets=10 n_items=5 seed=1").ok());
  // a's relation is invisible to b; b's SHOW doesn't list it.
  Result<std::string> shown = b.Execute("SHOW RELATIONS");
  ASSERT_TRUE(shown.ok());
  EXPECT_EQ(shown->find("mine"), std::string::npos);
  EXPECT_EQ(b.Execute("SHOW mine").status().code(), StatusCode::kNotFound);
  // a's knobs are a's alone.
  ASSERT_TRUE(a.Execute("SET TIMEOUT 123").ok());
  EXPECT_TRUE(b.Execute("MAXIMAL mine SUPPORT 2").status().code() ==
              StatusCode::kNotFound);
}

TEST(ServerTest, SessionsSeeSharedBaseDatabase) {
  Shell seed;
  ASSERT_TRUE(
      seed.Execute("GEN BASKETS base n_baskets=40 n_items=8 seed=6").ok());
  ServerOptions options;
  options.base_db = seed.database();
  std::unique_ptr<Server> server = StartServer(std::move(options));
  ASSERT_NE(server, nullptr);
  Client a = MustConnect(*server);
  Client b = MustConnect(*server);
  for (Client* c : {&a, &b}) {
    Result<std::string> out = c->Execute(
        "FLOCK p QUERY answer(B) :- base(B,$1) FILTER COUNT >= 2");
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    out = c->Execute("RUN p DIRECT LIMIT 2");
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    EXPECT_NE(out->find("rows"), std::string::npos);
  }
}

TEST(ServerTest, AppendInOneSessionLeavesSharedBaseUntouched) {
  // Regression: LOAD ... APPEND goes through AppendRelation (a fresh
  // relation built from the COW-shared payload), never a mutation of the
  // shared rows — so a neighbour session's counts and the seed database
  // itself must be unaffected by another session's appends.
  Shell seed;
  ASSERT_TRUE(
      seed.Execute("GEN BASKETS base n_baskets=30 n_items=6 seed=9").ok());
  std::size_t seed_rows = seed.database().Get("base").size();

  MemVfs vfs;
  Relation delta("delta", Schema({"BID", "Item"}));
  delta.AddRow({Value(500), Value(0)});
  delta.AddRow({Value(500), Value(1)});
  ASSERT_TRUE(StoreTsv(delta, "delta.tsv", &vfs).ok());

  ServerOptions options;
  options.base_db = seed.database();
  options.session_vfs = &vfs;
  std::unique_ptr<Server> server = StartServer(std::move(options));
  ASSERT_NE(server, nullptr);
  Client a = MustConnect(*server);
  Client b = MustConnect(*server);
  const std::string flock_stmt =
      "FLOCK p QUERY answer(B) :- base(B,$1) FILTER COUNT >= 2";
  ASSERT_TRUE(a.Execute(flock_stmt).ok());
  ASSERT_TRUE(b.Execute(flock_stmt).ok());
  Result<std::string> b_before = b.Execute("RUN p LIMIT 100000");
  ASSERT_TRUE(b_before.ok()) << b_before.status().ToString();

  Result<std::string> appended = a.Execute("LOAD base APPEND FROM delta.tsv");
  ASSERT_TRUE(appended.ok()) << appended.status().ToString();
  EXPECT_NE(appended->find("+2 rows"), std::string::npos);

  // Session a sees the appended rows...
  Result<std::string> a_shown = a.Execute("SHOW base");
  ASSERT_TRUE(a_shown.ok());
  EXPECT_NE(a_shown->find(std::to_string(seed_rows + 2) + " rows"),
            std::string::npos);
  // ...while b's copy, b's counts, and the seed database are unchanged.
  Result<std::string> b_shown = b.Execute("SHOW base");
  ASSERT_TRUE(b_shown.ok());
  EXPECT_NE(b_shown->find(std::to_string(seed_rows) + " rows"),
            std::string::npos);
  Result<std::string> b_after = b.Execute("RUN p LIMIT 100000");
  ASSERT_TRUE(b_after.ok());
  EXPECT_EQ(NormalizeRunOutput(*b_before), NormalizeRunOutput(*b_after));
  EXPECT_EQ(seed.database().Get("base").size(), seed_rows);
  // A session connecting after the append still starts from the
  // pristine base.
  Client c = MustConnect(*server);
  ASSERT_TRUE(c.Execute(flock_stmt).ok());
  Result<std::string> c_shown = c.Execute("SHOW base");
  ASSERT_TRUE(c_shown.ok());
  EXPECT_NE(c_shown->find(std::to_string(seed_rows) + " rows"),
            std::string::npos);
}

TEST(ServerTest, SessionCatalogMutationsAreDurable) {
  MemVfs vfs;
  ServerOptions options;
  options.session_vfs = &vfs;
  std::unique_ptr<Server> server = StartServer(std::move(options));
  ASSERT_NE(server, nullptr);
  {
    Client client = MustConnect(*server);
    ASSERT_TRUE(client.Execute("OPEN cat").ok());
    // WAL-before-ack: once this reply arrives the mutation is fsynced.
    ASSERT_TRUE(
        client.Execute("GEN BASKETS b n_baskets=20 n_items=6 seed=2").ok());
  }
  Shell shell;
  shell.set_vfs(&vfs);
  Result<std::string> out = shell.Execute("OPEN cat");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_NE(out->find("opened cat: 1 relations"), std::string::npos);
}

TEST(ServerTest, PingStatsAndBye) {
  std::unique_ptr<Server> server = StartServer();
  ASSERT_NE(server, nullptr);
  Client client = MustConnect(*server);
  EXPECT_TRUE(client.Ping().ok());
  ASSERT_TRUE(client.Execute("HELP").ok());
  Result<std::string> stats = client.Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_NE(stats->find("server"), std::string::npos);
  EXPECT_NE(stats->find("admission"), std::string::npos);
  EXPECT_NE(stats->find("session"), std::string::npos);
  client.Close();
  EXPECT_FALSE(client.connected());
  ServerStats counted = server->stats();
  EXPECT_EQ(counted.statements_executed, 1u);
  EXPECT_EQ(counted.protocol_errors, 0u);
}

TEST(ServerTest, StatsShowsOptimizerNodeForLearnedSessions) {
  std::unique_ptr<Server> server = StartServer();
  ASSERT_NE(server, nullptr);
  Client client = MustConnect(*server);
  // Before any learned activity the session keeps the old STATS shape.
  Result<std::string> stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->find("optimizer"), std::string::npos) << *stats;
  ASSERT_TRUE(
      client.Execute("GEN BASKETS b n_baskets=60 n_items=10 seed=3").ok());
  ASSERT_TRUE(
      client
          .Execute("FLOCK f QUERY answer(B) :- b(B,$1) FILTER COUNT >= 2")
          .ok());
  ASSERT_TRUE(client.Execute("SET OPTIMIZER LEARNED").ok());
  ASSERT_TRUE(client.Execute("RUN f").ok());
  ASSERT_TRUE(client.Execute("RUN f").ok());
  stats = client.Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_NE(stats->find("optimizer"), std::string::npos) << *stats;
  EXPECT_NE(stats->find("mode=learned"), std::string::npos) << *stats;
  EXPECT_NE(stats->find("contexts=1"), std::string::npos) << *stats;
  client.Close();
}

TEST(ServerTest, VersionMismatchDrawsTypedErrorAndDisconnect) {
  std::unique_ptr<Server> server = StartServer();
  ASSERT_NE(server, nullptr);
  Result<int> fd = TcpConnect("127.0.0.1", server->port());
  ASSERT_TRUE(fd.ok());
  Frame hello;
  hello.type = FrameType::kHello;
  AppendU32(hello.body, kProtocolMagic);
  AppendU32(hello.body, kProtocolVersion + 7);
  ASSERT_TRUE(WriteFrame(*fd, hello).ok());
  ReadEvent event = ReadFrame(*fd);
  ASSERT_EQ(event.kind, ReadEvent::Kind::kFrame);
  ASSERT_EQ(event.frame.type, FrameType::kError);
  EXPECT_EQ(DecodeErrorBody(event.frame.body).code(),
            StatusCode::kFailedPrecondition);
  // Then the server hangs up.
  EXPECT_EQ(ReadFrame(*fd).kind, ReadEvent::Kind::kEof);
  CloseFd(*fd);
}

TEST(ServerTest, SessionLimitShedsWithOverloaded) {
  ServerOptions options;
  options.max_sessions = 1;
  std::unique_ptr<Server> server = StartServer(std::move(options));
  ASSERT_NE(server, nullptr);
  Client first = MustConnect(*server);
  Result<Client> second = Client::Connect("127.0.0.1", server->port());
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kOverloaded);
  // The admitted session is unaffected.
  EXPECT_TRUE(first.Execute("HELP").ok());
  EXPECT_GE(server->stats().sessions_shed, 1u);
}

TEST(ServerTest, PipelinedRepliesMatchRequestIds) {
  std::unique_ptr<Server> server = StartServer();
  ASSERT_NE(server, nullptr);
  Client client = MustConnect(*server);
  Result<std::uint64_t> id1 =
      client.Send("GEN BASKETS b n_baskets=10 n_items=5 seed=1");
  Result<std::uint64_t> id2 = client.Send("SHOW RELATIONS");
  Result<std::uint64_t> id3 = client.Send("RUN missing");
  ASSERT_TRUE(id1.ok() && id2.ok() && id3.ok());
  Result<Client::Reply> r1 = client.Recv();
  Result<Client::Reply> r2 = client.Recv();
  Result<Client::Reply> r3 = client.Recv();
  ASSERT_TRUE(r1.ok() && r2.ok() && r3.ok());
  // One session's statements run in order; replies echo the ids.
  EXPECT_EQ(r1->request_id, *id1);
  EXPECT_EQ(r2->request_id, *id2);
  EXPECT_EQ(r3->request_id, *id3);
  EXPECT_TRUE(r1->status.ok());
  EXPECT_NE(r2->output.find("b("), std::string::npos);
  EXPECT_EQ(r3->status.code(), StatusCode::kNotFound);
}

TEST(ServerTest, ShutdownIsIdempotentAndAnswersBeforeStopping) {
  std::unique_ptr<Server> server = StartServer();
  ASSERT_NE(server, nullptr);
  Client client = MustConnect(*server);
  ASSERT_TRUE(client.Execute("HELP").ok());
  server->Shutdown();
  server->Shutdown();  // idempotent
  EXPECT_EQ(server->stats().sessions_active, 0u);
  // New connections are refused once drained.
  EXPECT_FALSE(Client::Connect("127.0.0.1", server->port()).ok());
}

// ------------------------------------------------- resumption (v2)

// A raw v2 conversation: handshake on a fresh fd, returning the fd (or
// -1) plus the WELCOME contents.
int RawHandshake(const Server& server, Welcome* welcome,
                 std::uint32_t version = kProtocolVersion) {
  Result<int> fd = TcpConnect("127.0.0.1", server.port());
  if (!fd.ok()) return -1;
  Frame hello{FrameType::kHello, 0, EncodeHelloBody(version)};
  if (!WriteFrame(*fd, hello).ok()) {
    CloseFd(*fd);
    return -1;
  }
  ReadEvent event = ReadFrame(*fd);
  if (event.kind != ReadEvent::Kind::kFrame ||
      event.frame.type != FrameType::kWelcome) {
    CloseFd(*fd);
    return -1;
  }
  Result<Welcome> decoded = DecodeWelcomeBody(event.frame.body);
  if (!decoded.ok()) {
    CloseFd(*fd);
    return -1;
  }
  *welcome = *decoded;
  return *fd;
}

// Reads frames until a non-heartbeat arrives.
ReadEvent RawRead(int fd) {
  while (true) {
    ReadEvent event = ReadFrame(fd);
    if (event.kind == ReadEvent::Kind::kFrame &&
        event.frame.type == FrameType::kHeartbeat) {
      continue;
    }
    return event;
  }
}

TEST(ResumeTest, WelcomeCarriesSessionTokenForV2Only) {
  std::unique_ptr<Server> server = StartServer();
  ASSERT_NE(server, nullptr);
  Welcome v2;
  int fd2 = RawHandshake(*server, &v2, 2);
  ASSERT_GE(fd2, 0);
  EXPECT_EQ(v2.version, 2u);
  EXPECT_NE(v2.resume_token, 0u);
  Welcome v1;
  int fd1 = RawHandshake(*server, &v1, 1);
  ASSERT_GE(fd1, 0);
  EXPECT_EQ(v1.version, 1u);
  EXPECT_EQ(v1.resume_token, 0u);
  CloseFd(fd2);
  CloseFd(fd1);
}

TEST(ResumeTest, ReplayAfterConnectionLossIsExactlyOnce) {
  MemVfs vfs;
  ServerOptions options;
  options.session_vfs = &vfs;
  std::unique_ptr<Server> server = StartServer(std::move(options));
  ASSERT_NE(server, nullptr);

  Welcome welcome;
  int fd = RawHandshake(*server, &welcome);
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(WriteFrame(fd, Frame{FrameType::kStmt, 1, "OPEN cat"}).ok());
  ASSERT_TRUE(
      WriteFrame(
          fd, Frame{FrameType::kStmt, 2,
                    "GEN BASKETS b n_baskets=20 n_items=6 seed=2"})
          .ok());
  ReadEvent first = RawRead(fd);
  ASSERT_EQ(first.kind, ReadEvent::Kind::kFrame);
  ASSERT_EQ(first.frame.type, FrameType::kResult);
  ReadEvent second = RawRead(fd);
  ASSERT_EQ(second.kind, ReadEvent::Kind::kFrame);
  ASSERT_EQ(second.frame.type, FrameType::kResult);
  const std::string gen_output = second.frame.body;
  // Kill the connection without a BYE: the session must survive.
  CloseFd(fd);

  Welcome fresh;
  int fd2 = RawHandshake(*server, &fresh);
  ASSERT_GE(fd2, 0);
  EXPECT_NE(fresh.session_id, welcome.session_id);
  ASSERT_TRUE(
      WriteFrame(fd2, Frame{FrameType::kResume, 9,
                            EncodeResumeBody(ResumeRequest{
                                welcome.session_id, welcome.resume_token})})
          .ok());
  ReadEvent resumed = RawRead(fd2);
  ASSERT_EQ(resumed.kind, ReadEvent::Kind::kFrame);
  ASSERT_EQ(resumed.frame.type, FrameType::kResumed) << static_cast<int>(
      resumed.frame.type);
  std::uint64_t resumed_sid = 0;
  ASSERT_TRUE(ReadU64(resumed.frame.body, 0, &resumed_sid));
  EXPECT_EQ(resumed_sid, welcome.session_id);

  // Replaying an already-executed request id answers from the replay
  // cache, bit-identical, without running the statement again.
  ASSERT_TRUE(
      WriteFrame(
          fd2, Frame{FrameType::kStmt, 2,
                     "GEN BASKETS b n_baskets=20 n_items=6 seed=2"})
          .ok());
  ReadEvent replayed = RawRead(fd2);
  ASSERT_EQ(replayed.kind, ReadEvent::Kind::kFrame);
  ASSERT_EQ(replayed.frame.type, FrameType::kResult);
  EXPECT_EQ(replayed.frame.body, gen_output);

  // The session's state carried across the reconnect: b exists, and new
  // requests execute normally.
  ASSERT_TRUE(
      WriteFrame(fd2, Frame{FrameType::kStmt, 3, "SHOW RELATIONS"}).ok());
  ReadEvent shown = RawRead(fd2);
  ASSERT_EQ(shown.kind, ReadEvent::Kind::kFrame);
  ASSERT_EQ(shown.frame.type, FrameType::kResult);
  EXPECT_NE(shown.frame.body.find("b("), std::string::npos);

  ServerStats stats = server->stats();
  EXPECT_EQ(stats.sessions_resumed, 1u);
  EXPECT_EQ(stats.replayed_replies, 1u);
  // OPEN + GEN + SHOW — the replayed GEN did not execute twice.
  EXPECT_EQ(stats.statements_executed, 3u);
  CloseFd(fd2);
}

TEST(ResumeTest, WrongTokenDrawsNotFoundAndConversationContinues) {
  std::unique_ptr<Server> server = StartServer();
  ASSERT_NE(server, nullptr);
  Welcome victim;
  int fd = RawHandshake(*server, &victim);
  ASSERT_GE(fd, 0);

  Welcome fresh;
  int fd2 = RawHandshake(*server, &fresh);
  ASSERT_GE(fd2, 0);
  ASSERT_TRUE(
      WriteFrame(fd2, Frame{FrameType::kResume, 1,
                            EncodeResumeBody(ResumeRequest{
                                victim.session_id,
                                victim.resume_token ^ 1})})
          .ok());
  ReadEvent denied = RawRead(fd2);
  ASSERT_EQ(denied.kind, ReadEvent::Kind::kFrame);
  ASSERT_EQ(denied.frame.type, FrameType::kError);
  EXPECT_EQ(DecodeErrorBody(denied.frame.body).code(), StatusCode::kNotFound);
  // The fresh session still works.
  ASSERT_TRUE(WriteFrame(fd2, Frame{FrameType::kStmt, 2, "HELP"}).ok());
  ReadEvent reply = RawRead(fd2);
  ASSERT_EQ(reply.kind, ReadEvent::Kind::kFrame);
  EXPECT_EQ(reply.frame.type, FrameType::kResult);
  EXPECT_EQ(server->stats().sessions_resumed, 0u);
  CloseFd(fd);
  CloseFd(fd2);
}

TEST(ResumeTest, V1DisconnectStillTearsTheSessionDown) {
  std::unique_ptr<Server> server = StartServer();
  ASSERT_NE(server, nullptr);
  Welcome welcome;
  int fd = RawHandshake(*server, &welcome, 1);
  ASSERT_GE(fd, 0);
  CloseFd(fd);
  // The reader notices asynchronously; the session must go away, not
  // detach.
  for (int i = 0; i < 200 && server->stats().sessions_active > 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ServerStats stats = server->stats();
  EXPECT_EQ(stats.sessions_active, 0u);
  EXPECT_EQ(stats.sessions_detached, 0u);
}

TEST(ResumeTest, DetachedSessionIsReapedAfterResumeWindow) {
  ServerOptions options;
  options.resume_timeout_ms = 40;
  std::unique_ptr<Server> server = StartServer(std::move(options));
  ASSERT_NE(server, nullptr);
  Welcome welcome;
  int fd = RawHandshake(*server, &welcome);
  ASSERT_GE(fd, 0);
  CloseFd(fd);
  for (int i = 0; i < 400 && server->stats().sessions_reaped == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ServerStats stats = server->stats();
  EXPECT_EQ(stats.sessions_detached, 1u);
  EXPECT_EQ(stats.sessions_reaped, 1u);
  EXPECT_EQ(stats.sessions_active, 0u);
  // RESUME after the reap draws NOT_FOUND.
  Welcome fresh;
  int fd2 = RawHandshake(*server, &fresh);
  ASSERT_GE(fd2, 0);
  ASSERT_TRUE(
      WriteFrame(fd2, Frame{FrameType::kResume, 1,
                            EncodeResumeBody(ResumeRequest{
                                welcome.session_id, welcome.resume_token})})
          .ok());
  ReadEvent denied = RawRead(fd2);
  ASSERT_EQ(denied.kind, ReadEvent::Kind::kFrame);
  ASSERT_EQ(denied.frame.type, FrameType::kError);
  EXPECT_EQ(DecodeErrorBody(denied.frame.body).code(), StatusCode::kNotFound);
  CloseFd(fd2);
}

TEST(ResumeTest, ClientReconnectsAndReplaysThroughFaultSeam) {
  std::unique_ptr<Server> server = StartServer();
  ASSERT_NE(server, nullptr);
  // Kill the client's connection (from the client side of the seam)
  // every 10 socket ops, forever — several times across the
  // conversation, including during resume handshakes. The reconnecting
  // client must still complete the whole conversation exactly-once.
  FaultSocketConfig config;
  config.fault_at_op = 10;
  config.repeat_every = 10;
  config.fault = SocketFault::kDisconnect;
  FaultSocketOps faulty(config);
  ClientOptions client_options;
  client_options.socket_ops = &faulty;
  client_options.reconnect_backoff.base_delay_us = 100;
  client_options.reconnect_backoff.max_delay_us = 1'000;
  Result<Client> client =
      Client::Connect("127.0.0.1", server->port(), client_options);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  ASSERT_TRUE(
      client->Execute("GEN BASKETS b n_baskets=30 n_items=8 seed=3").ok());
  for (int i = 0; i < 10; ++i) {
    Result<std::string> out = client->Execute("SHOW RELATIONS");
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    EXPECT_NE(out->find("b("), std::string::npos);
  }
  EXPECT_GE(client->reconnects(), 1u);
  EXPECT_GE(faulty.faults_fired(), 1u);
  ServerStats stats = server->stats();
  EXPECT_GE(stats.sessions_resumed, 1u);
}

TEST(ResumeTest, IdleConnectionsGetHeartbeatsAndSurviveThem) {
  ServerOptions options;
  options.idle_timeout_ms = 15;
  std::unique_ptr<Server> server = StartServer(std::move(options));
  ASSERT_NE(server, nullptr);
  Welcome welcome;
  int fd = RawHandshake(*server, &welcome);
  ASSERT_GE(fd, 0);
  // Stay silent: the server must probe, not kill.
  ReadEvent probe = ReadFrame(fd);
  ASSERT_EQ(probe.kind, ReadEvent::Kind::kFrame);
  EXPECT_EQ(probe.frame.type, FrameType::kHeartbeat);
  // The connection still serves statements afterwards; client-sent
  // heartbeats are ignored.
  ASSERT_TRUE(WriteFrame(fd, Frame{FrameType::kHeartbeat, 0, ""}).ok());
  ASSERT_TRUE(WriteFrame(fd, Frame{FrameType::kStmt, 1, "HELP"}).ok());
  ReadEvent reply = RawRead(fd);
  ASSERT_EQ(reply.kind, ReadEvent::Kind::kFrame);
  EXPECT_EQ(reply.frame.type, FrameType::kResult);
  EXPECT_GE(server->stats().heartbeats_sent, 1u);
  CloseFd(fd);
}

// The Client consumes heartbeats transparently.
TEST(ResumeTest, ClientSkipsHeartbeatsDuringSlowStatements) {
  ServerOptions options;
  options.idle_timeout_ms = 10;
  std::atomic<int> slow{1};
  options.statement_hook_for_test = [&slow] {
    if (slow.exchange(0) == 1) {
      std::this_thread::sleep_for(std::chrono::milliseconds(60));
    }
  };
  std::unique_ptr<Server> server = StartServer(std::move(options));
  ASSERT_NE(server, nullptr);
  Client client = MustConnect(*server);
  // The reply takes ~60 ms; several heartbeats arrive first.
  Result<std::string> out = client.Execute("HELP");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_GE(server->stats().heartbeats_sent, 1u);
}

// ------------------------------------ socket timeouts and SIGPIPE

TEST(SocketTest, SendToHalfClosedSocketFailsTypedWithoutSigpipe) {
  // Regression for the SIGPIPE audit: every send path uses MSG_NOSIGNAL,
  // so writing into a peer-closed socket returns EPIPE instead of
  // killing the process (gtest would report a crash, not a failure).
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  CloseFd(fds[1]);
  Status s = Status::Ok();
  // The first write may land in the (dead) buffer; keep going until the
  // EPIPE surfaces.
  for (int i = 0; i < 16 && s.ok(); ++i) {
    s = WriteFrame(fds[0], Frame{FrameType::kPing, 1, "x"});
  }
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  CloseFd(fds[0]);
}

TEST(SocketTest, ReceiveTimeoutSurfacesDeadlineExceeded) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ASSERT_TRUE(SetSocketTimeouts(fds[0], 30).ok());
  ReadEvent event = ReadFrame(fds[0]);
  ASSERT_EQ(event.kind, ReadEvent::Kind::kError);
  EXPECT_EQ(event.status.code(), StatusCode::kDeadlineExceeded);
  // A timeout that strikes mid-frame poisons the stream instead.
  std::string wire = EncodeFrame({FrameType::kPing, 1, ""});
  ASSERT_GT(::send(fds[1], wire.data(), 3, MSG_NOSIGNAL), 0);
  event = ReadFrame(fds[0]);
  ASSERT_EQ(event.kind, ReadEvent::Kind::kError);
  EXPECT_EQ(event.status.code(), StatusCode::kIoError);
  CloseFd(fds[0]);
  CloseFd(fds[1]);
}

TEST(SocketTest, ClientStatementTimeoutIsTypedAndSessionRecovers) {
  ServerOptions server_options;
  std::atomic<int> slow{1};
  server_options.statement_hook_for_test = [&slow] {
    if (slow.exchange(0) == 1) {
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
    }
  };
  std::unique_ptr<Server> server = StartServer(std::move(server_options));
  ASSERT_NE(server, nullptr);
  ClientOptions client_options;
  client_options.timeout_ms = 40;
  Result<Client> client =
      Client::Connect("127.0.0.1", server->port(), client_options);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  Result<std::string> out = client->Execute("HELP");
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kDeadlineExceeded);
  // Once the slow statement finishes server-side, its late reply is
  // dropped, not misattributed: the next statement gets its own answer.
  std::this_thread::sleep_for(std::chrono::milliseconds(250));
  out = client->Execute("SHOW RELATIONS");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_NE(out->find("relations"), std::string::npos);
}

}  // namespace
}  // namespace qf
