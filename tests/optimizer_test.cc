// Tests for statistics, the cost model, join ordering, and static plan
// search (heuristics 1 and 2 of §4.3 plus the exhaustive search).
#include <gtest/gtest.h>

#include "datalog/parser.h"
#include "flocks/eval.h"
#include "optimizer/cost_model.h"
#include "optimizer/join_order.h"
#include "optimizer/plan_search.h"
#include "optimizer/stats.h"
#include "plan/executor.h"
#include "plan/legality.h"
#include "workload/basket_gen.h"
#include "workload/graph_gen.h"
#include "workload/medical_gen.h"

namespace qf {
namespace {

ConjunctiveQuery Parse(const char* text) {
  auto cq = ParseRule(text);
  EXPECT_TRUE(cq.ok()) << cq.status().ToString();
  return *cq;
}

QueryFlock Flock(const char* text, FilterCondition filter) {
  auto f = MakeFlock(text, filter);
  EXPECT_TRUE(f.ok()) << f.status().ToString();
  return *f;
}

TEST(StatsTest, ComputeStatsCountsDistinct) {
  Relation r("r", Schema({"A", "B"}));
  r.AddRow({Value(1), Value("x")});
  r.AddRow({Value(1), Value("y")});
  r.AddRow({Value(2), Value("x")});
  RelationStats stats = ComputeStats(r);
  EXPECT_EQ(stats.rows, 3u);
  EXPECT_EQ(stats.column_distinct, (std::vector<std::size_t>{2, 2}));
}

TEST(StatsTest, DatabaseStatsCoversAllRelations) {
  Database db;
  db.PutRelation(Relation("a", Schema({"X"})));
  Relation b("b", Schema({"Y"}));
  b.AddRow({Value(1)});
  db.PutRelation(b);
  DatabaseStats stats = DatabaseStats::Compute(db);
  ASSERT_NE(stats.Find("a"), nullptr);
  ASSERT_NE(stats.Find("b"), nullptr);
  EXPECT_EQ(stats.Find("b")->rows, 1u);
  EXPECT_EQ(stats.Find("missing"), nullptr);
}

class CostModelTest : public ::testing::Test {
 protected:
  CostModelTest() {
    db_.PutRelation(GenerateBaskets({.n_baskets = 500, .n_items = 100,
                                     .avg_basket_size = 6, .zipf_theta = 1.0,
                                     .seed = 2}));
  }
  Database db_;
};

TEST_F(CostModelTest, SubgoalEstimateMatchesBaseSize) {
  CostModel model(db_);
  Subgoal sg = Subgoal::Positive(
      "baskets", {Term::Variable("B"), Term::Parameter("1")});
  EXPECT_DOUBLE_EQ(model.EstimateSubgoalRows(sg),
                   static_cast<double>(db_.Get("baskets").size()));
}

TEST_F(CostModelTest, ConstantReducesEstimate) {
  CostModel model(db_);
  Subgoal with_const = Subgoal::Positive(
      "baskets", {Term::Variable("B"), Term::Constant(Value("item00000"))});
  Subgoal without = Subgoal::Positive(
      "baskets", {Term::Variable("B"), Term::Variable("I")});
  EXPECT_LT(model.EstimateSubgoalRows(with_const),
            model.EstimateSubgoalRows(without));
}

TEST_F(CostModelTest, UnknownRelationUsesDefaults) {
  CostModel model(db_);
  Subgoal sg = Subgoal::Positive("mystery", {Term::Variable("X")});
  EXPECT_DOUBLE_EQ(model.EstimateSubgoalRows(sg),
                   model.config().default_rows);
}

TEST_F(CostModelTest, JoinEstimateGrowsWithSubgoals) {
  CostModel model(db_);
  ConjunctiveQuery one = Parse("answer(B) :- baskets(B,$1)");
  ConjunctiveQuery two = Parse("answer(B) :- baskets(B,$1) AND baskets(B,$2)");
  EXPECT_LT(model.EstimateCq(one).cost, model.EstimateCq(two).cost);
}

TEST_F(CostModelTest, InequalityHalvesEstimate) {
  CostModel model(db_);
  ConjunctiveQuery plain =
      Parse("answer(B) :- baskets(B,$1) AND baskets(B,$2)");
  ConjunctiveQuery ordered =
      Parse("answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2");
  EXPECT_NEAR(model.EstimateCq(ordered).result_rows,
              model.EstimateCq(plain).result_rows *
                  model.config().inequality_selectivity,
              1e-6);
}

TEST_F(CostModelTest, FilterEstimateMonotoneInThreshold) {
  CostModel model(db_);
  ConjunctiveQuery cq = Parse("answer(B) :- baskets(B,$1)");
  auto f5 = model.EstimateFilter(cq, 5);
  auto f50 = model.EstimateFilter(cq, 50);
  EXPECT_GE(f5.survival_fraction, f50.survival_fraction);
  EXPECT_GE(f5.survivors, f50.survivors);
  EXPECT_LE(f5.survival_fraction, 1.0);
}

TEST_F(CostModelTest, ThresholdOneKeepsEverything) {
  CostModel model(db_);
  ConjunctiveQuery cq = Parse("answer(B) :- baskets(B,$1)");
  EXPECT_DOUBLE_EQ(model.EstimateFilter(cq, 1).survival_fraction, 1.0);
}

TEST(JoinOrderTest, ReturnsValidPermutation) {
  MedicalConfig config;
  config.n_patients = 200;
  config.seed = 3;
  Database db = GenerateMedical(config);
  CostModel model(db);
  ConjunctiveQuery cq = Parse(
      "answer(P) :- exhibits(P,$s) AND treatments(P,$m) AND "
      "diagnoses(P,D) AND NOT causes(D,$s)");
  std::vector<std::size_t> order = ChooseJoinOrder(cq, model);
  ASSERT_EQ(order.size(), 3u);  // three positive subgoals
  std::vector<std::size_t> sorted = order;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(JoinOrderTest, ChosenOrderNoWorseThanTextOrder) {
  MedicalConfig config;
  config.n_patients = 200;
  config.seed = 4;
  Database db = GenerateMedical(config);
  CostModel model(db);
  ConjunctiveQuery cq = Parse(
      "answer(P) :- diagnoses(P,D) AND exhibits(P,$s) AND "
      "treatments(P,$m)");
  std::vector<std::size_t> order = ChooseJoinOrder(cq, model);
  EXPECT_LE(model.EstimateCq(cq, order).cost, model.EstimateCq(cq).cost);
}

TEST(JoinOrderTest, OrderedEvaluationStillCorrect) {
  Database db;
  db.PutRelation(GenerateBaskets({.n_baskets = 100, .n_items = 20,
                                  .avg_basket_size = 4, .zipf_theta = 0.9,
                                  .seed = 5}));
  CostModel model(db);
  QueryFlock flock =
      Flock("answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2",
            FilterCondition::MinSupport(3));
  auto plain = EvaluateFlock(flock, db);
  auto ordered = EvaluateFlock(flock, db, ChooseJoinOrders(flock, model));
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(ordered.ok()) << ordered.status().ToString();
  plain->SortRows();
  ordered->SortRows();
  EXPECT_EQ(plain->rows(), ordered->rows());
}

TEST(PlanSearchTest, Heuristic1ProducesLegalCorrectPlan) {
  MedicalConfig config;
  config.n_patients = 300;
  config.n_symptoms = 80;
  config.n_medicines = 60;
  config.symptom_theta = 1.2;
  config.seed = 6;
  Database db = GenerateMedical(config);
  CostModel model(db);
  QueryFlock flock = Flock(
      "answer(P) :- exhibits(P,$s) AND treatments(P,$m) AND "
      "diagnoses(P,D) AND NOT causes(D,$s)",
      FilterCondition::MinSupport(6));

  auto plan = SearchPlanParameterSets(flock, model);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_TRUE(CheckLegal(*plan, flock).ok());

  auto direct = EvaluateFlock(flock, db);
  auto planned = ExecutePlan(*plan, flock, db);
  ASSERT_TRUE(direct.ok());
  ASSERT_TRUE(planned.ok()) << planned.status().ToString();
  direct->SortRows();
  planned->SortRows();
  EXPECT_EQ(direct->rows(), planned->rows());
}

TEST(PlanSearchTest, SelectivePrefiltersChosenOnSkewedData) {
  // With a high threshold relative to data size, singleton survival is low
  // and the search should include prefilters.
  MedicalConfig config;
  config.n_patients = 400;
  config.n_symptoms = 200;
  config.symptom_theta = 1.3;
  config.seed = 7;
  Database db = GenerateMedical(config);
  CostModel model(db);
  QueryFlock flock = Flock(
      "answer(P) :- exhibits(P,$s) AND treatments(P,$m) AND "
      "diagnoses(P,D) AND NOT causes(D,$s)",
      FilterCondition::MinSupport(15));
  auto plan = SearchPlanParameterSets(flock, model);
  ASSERT_TRUE(plan.ok());
  EXPECT_GT(plan->steps.size(), 1u);
}

TEST(PlanSearchTest, NonCountFilterFallsBackToTrivial) {
  Database db;
  db.PutRelation(GenerateBaskets({.n_baskets = 50, .n_items = 10,
                                  .avg_basket_size = 3, .zipf_theta = 0.5,
                                  .seed = 8}));
  db.PutRelation(GenerateImportance({.n_baskets = 50, .seed = 8}, 5.0));
  CostModel model(db);
  QueryFlock flock =
      Flock("answer(B,W) :- baskets(B,$1) AND importance(B,W)",
            {FilterAgg::kSum, CompareOp::kGe, 10, 1});
  auto plan = SearchPlanParameterSets(flock, model);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->steps.size(), 1u);
}

TEST(PlanSearchTest, CascadePlanLegalAndCorrect) {
  GraphConfig config{.n_nodes = 150, .avg_out_degree = 4,
                     .target_theta = 0.8, .seed = 9};
  Database db;
  db.PutRelation(GenerateGraph(config));
  QueryFlock flock =
      Flock("answer(X) :- arc($1,X) AND arc(X,Y1) AND arc(Y1,Y2)",
            FilterCondition::MinSupport(3));

  // Cascade: ok0 from arc($1,X); ok1 from arc($1,X),arc(X,Y1)+ok0; final.
  auto plan = CascadePlan(flock, {{0}, {0, 1}});
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_EQ(plan->steps.size(), 3u);
  EXPECT_TRUE(CheckLegal(*plan, flock).ok());

  auto direct = EvaluateFlock(flock, db);
  auto planned = ExecutePlan(*plan, flock, db);
  ASSERT_TRUE(direct.ok());
  ASSERT_TRUE(planned.ok()) << planned.status().ToString();
  direct->SortRows();
  planned->SortRows();
  EXPECT_EQ(direct->rows(), planned->rows());
}

TEST(PlanSearchTest, CascadeRejectsUnions) {
  QueryFlock flock = Flock(
      "answer(B) :- p(B,$1)\nanswer(B) :- q(B,$1)",
      FilterCondition::MinSupport(2));
  EXPECT_EQ(CascadePlan(flock, {{0}}).status().code(),
            StatusCode::kUnimplemented);
}

TEST(PlanSearchTest, ExhaustiveSearchFindsLegalPlan) {
  MedicalConfig config;
  config.n_patients = 250;
  config.seed = 10;
  Database db = GenerateMedical(config);
  CostModel model(db);
  QueryFlock flock = Flock(
      "answer(P) :- exhibits(P,$s) AND treatments(P,$m) AND "
      "diagnoses(P,D) AND NOT causes(D,$s)",
      FilterCondition::MinSupport(8));
  auto result = ExhaustivePrefilterSearch(flock, model);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->plans_considered, 1u);
  EXPECT_TRUE(CheckLegal(result->plan, flock).ok());
  // The chosen plan's estimate is no worse than the trivial plan's.
  double trivial_cost =
      EstimatePlanCost(TrivialPlan(flock), flock, model);
  EXPECT_LE(result->estimated_cost, trivial_cost + 1e-9);
}

TEST(PlanSearchTest, EstimatePlanCostAccountsForPrefilterShrinkage) {
  MedicalConfig config;
  config.n_patients = 300;
  config.n_symptoms = 150;
  config.symptom_theta = 1.3;
  config.seed = 11;
  Database db = GenerateMedical(config);
  CostModel model(db);
  QueryFlock flock = Flock(
      "answer(P) :- exhibits(P,$s) AND treatments(P,$m) AND "
      "diagnoses(P,D) AND NOT causes(D,$s)",
      FilterCondition::MinSupport(20));
  auto okS = MakeFilterStep(flock, "okS", {"s"}, std::vector<std::size_t>{0});
  ASSERT_TRUE(okS.ok());
  auto with = PlanWithPrefilters(flock, {*okS});
  ASSERT_TRUE(with.ok());
  double with_cost = EstimatePlanCost(*with, flock, model);
  EXPECT_GT(with_cost, 0);
}

}  // namespace
}  // namespace qf
