// Differential delta-replay harness for incremental flock evaluation.
//
// Two shells execute the *same* randomized statement schedule — appends,
// runs, support changes, checkpoints, memory-budget changes — except that
// the subject has SET INCREMENTAL ON and the oracle evaluates every RUN
// from scratch. The incremental contract (DESIGN.md §13) is that served
// results are bit-identical to full recomputation at every step, so the
// harness compares the complete RUN output (assignment count + full
// sorted result preview) after normalizing away timing and the
// INCREMENTAL/PLAN mode tag, plus the relation payloads themselves.
//
// The schedule generator is deliberately adversarial: deltas repeat
// existing rows (empty batches), touch new group keys, interleave with
// threshold tightening *and* loosening (rebuild), and optionally run
// against a durable catalog so WAL replay and CHECKPOINT interact with
// the cached state. Everything is driven through MemVfs, so suites can
// layer fault injection (tests/crash_recovery_harness.h) on top.
#ifndef QF_TESTS_INCREMENTAL_DIFF_HARNESS_H_
#define QF_TESTS_INCREMENTAL_DIFF_HARNESS_H_

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/vfs.h"
#include "relational/relation.h"
#include "relational/tsv.h"
#include "shell/shell.h"

namespace qf {

// Strips per-run noise from a RUN/EXPLAIN ANALYZE first line:
// "pairs: 3 assignments in 0.4 ms (INCREMENTAL:delta(+2 rows))" and
// "pairs: 3 assignments in 1.2 ms (PLAN)" both normalize to
// "pairs: 3 assignments". Later lines (the sorted result preview) are
// kept verbatim — they are deterministic and must match exactly.
inline std::string NormalizeRunOutput(const std::string& out) {
  std::size_t nl = out.find('\n');
  std::string first =
      nl == std::string::npos ? out : out.substr(0, nl);
  std::size_t at = first.find(" in ");
  if (at != std::string::npos) first.resize(at);
  std::string rest =
      nl == std::string::npos ? std::string() : out.substr(nl);
  return first + rest;
}

struct DiffScheduleOptions {
  std::uint64_t seed = 1;
  int steps = 40;
  // THREADS knob for both shells (>= 1; thread-0 / API-level coverage
  // lives in the direct EvaluateFlock comparisons of the test suites).
  unsigned threads = 1;
  // Both shells OPEN a durable catalog (separate directories in the
  // shared MemVfs) so appends/declarations ride the WAL and CHECKPOINT
  // steps are generated.
  bool use_catalog = false;
  // SET MEMORY <mb> issued to both shells (0 = unlimited). Small budgets
  // force the subject into evicted(budget) fallbacks — results must not
  // change.
  std::uint64_t memory_mb = 0;
  // Base data shape. Small domains make group collisions (and therefore
  // interesting support counts) likely.
  int n_baskets = 40;
  int n_items = 10;
  int base_rows = 120;
  int max_delta_rows = 8;
};

class DeltaReplayHarness {
 public:
  explicit DeltaReplayHarness(const DiffScheduleOptions& opts)
      : opts_(opts), rng_(opts.seed, 0x9e3779b97f4a7c15ULL) {
    subject_.set_vfs(&vfs_);
    oracle_.set_vfs(&vfs_);
    if (opts_.use_catalog) {
      Must(subject_, "OPEN subj");
      Must(oracle_, "OPEN orac");
    }
    Must(subject_, "SET INCREMENTAL ON");
    if (opts_.threads > 1) {
      Both("THREADS " + std::to_string(opts_.threads));
    }
    if (opts_.memory_mb > 0) {
      Both("SET MEMORY " + std::to_string(opts_.memory_mb));
    }
    LoadBase();
    DeclareThreshold(threshold_);
  }

  Shell& subject() { return subject_; }
  Shell& oracle() { return oracle_; }
  MemVfs& vfs() { return vfs_; }
  int runs_compared() const { return runs_compared_; }

  // Executes `stmt` on both shells, expecting success and identical
  // output (statement outputs other than RUN are deterministic).
  void Both(const std::string& stmt) {
    std::string s = Must(subject_, stmt);
    std::string o = Must(oracle_, stmt);
    EXPECT_EQ(s, o) << "divergent output for: " << stmt;
  }

  // Appends a randomized delta batch (possibly overlapping existing
  // rows) to both shells via LOAD ... APPEND.
  void AppendDelta() {
    int rows = 1 + static_cast<int>(
                       rng_.NextBelow(
                           static_cast<std::uint32_t>(opts_.max_delta_rows)));
    Relation delta("delta", Schema({"BID", "Item"}));
    for (int i = 0; i < rows; ++i) {
      // Mostly existing baskets; occasionally brand-new ones so group
      // keys keep appearing after the initial build.
      int bid = rng_.NextBernoulli(0.8)
                    ? 1 + static_cast<int>(rng_.NextBelow(
                              static_cast<std::uint32_t>(opts_.n_baskets)))
                    : opts_.n_baskets + next_bid_++;
      int item = static_cast<int>(
          rng_.NextBelow(static_cast<std::uint32_t>(opts_.n_items)));
      delta.AddRow({Value(bid), Value(item)});
    }
    std::string path = "delta_" + std::to_string(delta_seq_++) + ".tsv";
    Status stored = StoreTsv(delta, path, &vfs_);
    ASSERT_TRUE(stored.ok()) << stored.ToString();
    Both("LOAD baskets APPEND FROM " + path);
  }

  // Runs the flock on both shells and compares normalized output and
  // the underlying relation payloads.
  void RunFlockAndCompare() {
    std::string stmt = "RUN pairs LIMIT 1000000";
    std::string s = Must(subject_, stmt);
    std::string o = Must(oracle_, stmt);
    EXPECT_EQ(NormalizeRunOutput(s), NormalizeRunOutput(o))
        << "step " << runs_compared_ << " seed " << opts_.seed
        << "\nsubject:\n" << s << "\noracle:\n" << o;
    const Relation& sb = subject_.database().Get("baskets");
    const Relation& ob = oracle_.database().Get("baskets");
    EXPECT_EQ(sb.rows(), ob.rows()) << "base relation diverged";
    ++runs_compared_;
  }

  // Re-declares the flock at threshold `t` on both shells (support
  // change: tighten reuses the subject's state, loosen rebuilds).
  void DeclareThreshold(std::int64_t t) {
    threshold_ = t;
    Both(
        "FLOCK pairs QUERY answer(B) :- baskets(B,$1) AND baskets(B,$2) "
        "AND $1 < $2 FILTER COUNT >= " +
        std::to_string(t));
  }

  // One random schedule step. RUN comparisons happen both on their own
  // steps and after every mutation (append/threshold/checkpoint), so
  // every state transition is observed.
  void Step() {
    std::uint32_t roll = rng_.NextBelow(100);
    if (roll < 40) {
      AppendDelta();
      RunFlockAndCompare();
    } else if (roll < 60) {
      RunFlockAndCompare();  // back-to-back runs: cached path
    } else if (roll < 75) {
      // Tighten or loosen around the current threshold, staying >= 2.
      std::int64_t t = 2 + static_cast<std::int64_t>(rng_.NextBelow(5));
      DeclareThreshold(t);
      RunFlockAndCompare();
    } else if (roll < 85 && opts_.use_catalog) {
      // Snapshot byte counts legitimately differ (the subject's catalog
      // also carries the INCREMENTAL knob), so no output comparison.
      Must(subject_, "CHECKPOINT");
      Must(oracle_, "CHECKPOINT");
      RunFlockAndCompare();
    } else if (roll < 90) {
      // Subject-only introspection must never perturb results.
      Must(subject_, "SHOW FLOCK STATE");
      RunFlockAndCompare();
    } else {
      AppendDelta();
      AppendDelta();  // two batches between runs: multi-epoch chain walk
      RunFlockAndCompare();
    }
  }

  void RunSchedule() {
    for (int i = 0; i < opts_.steps; ++i) {
      Step();
      if (::testing::Test::HasFatalFailure()) return;
    }
    RunFlockAndCompare();
  }

 private:
  std::string Must(Shell& shell, const std::string& stmt) {
    Result<std::string> out = shell.Execute(stmt);
    EXPECT_TRUE(out.ok()) << out.status().ToString() << " for: " << stmt;
    return out.ok() ? *out : std::string();
  }

  void LoadBase() {
    Relation base("baskets", Schema({"BID", "Item"}));
    for (int i = 0; i < opts_.base_rows; ++i) {
      int bid = 1 + static_cast<int>(rng_.NextBelow(
                        static_cast<std::uint32_t>(opts_.n_baskets)));
      int item = static_cast<int>(
          rng_.NextBelow(static_cast<std::uint32_t>(opts_.n_items)));
      base.AddRow({Value(bid), Value(item)});
    }
    base.Dedup();
    Status stored = StoreTsv(base, "base.tsv", &vfs_);
    ASSERT_TRUE(stored.ok()) << stored.ToString();
    Both("LOAD baskets FROM base.tsv");
  }

  DiffScheduleOptions opts_;
  Rng rng_;
  MemVfs vfs_;
  Shell subject_;
  Shell oracle_;
  std::int64_t threshold_ = 2;
  int delta_seq_ = 0;
  int next_bid_ = 1;
  int runs_compared_ = 0;
};

}  // namespace qf

#endif  // QF_TESTS_INCREMENTAL_DIFF_HARNESS_H_
