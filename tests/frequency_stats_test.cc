// Tests for frequency profiles and the exact prefilter-survivor estimate
// they enable (the §4.4 "gathering of statistics" refinement).
#include <gtest/gtest.h>

#include "datalog/parser.h"
#include "common/rng.h"
#include "flocks/cq_eval.h"
#include "flocks/eval.h"
#include "optimizer/cost_model.h"
#include "optimizer/stats.h"
#include "workload/basket_gen.h"

namespace qf {
namespace {

TEST(FrequencyProfileTest, CountsAndMass) {
  FrequencyProfile profile;
  profile.counts = {10, 5, 5, 2, 1};  // descending
  EXPECT_EQ(profile.ValuesWithCountAtLeast(1), 5u);
  EXPECT_EQ(profile.ValuesWithCountAtLeast(2), 4u);
  EXPECT_EQ(profile.ValuesWithCountAtLeast(5), 3u);
  EXPECT_EQ(profile.ValuesWithCountAtLeast(6), 1u);
  EXPECT_EQ(profile.ValuesWithCountAtLeast(11), 0u);
  EXPECT_DOUBLE_EQ(profile.MassWithCountAtLeast(5), 20.0 / 23.0);
  EXPECT_DOUBLE_EQ(profile.MassWithCountAtLeast(1), 1.0);
  EXPECT_DOUBLE_EQ(profile.MassWithCountAtLeast(11), 0.0);
}

TEST(FrequencyProfileTest, EmptyProfile) {
  FrequencyProfile profile;
  EXPECT_EQ(profile.ValuesWithCountAtLeast(1), 0u);
  EXPECT_DOUBLE_EQ(profile.MassWithCountAtLeast(1), 0.0);
}

TEST(DetailedStatsTest, ProfilesMatchManualCounts) {
  Relation r("r", Schema({"K", "V"}));
  r.AddRow({Value("a"), Value(1)});
  r.AddRow({Value("a"), Value(2)});
  r.AddRow({Value("a"), Value(3)});
  r.AddRow({Value("b"), Value(1)});
  RelationStats stats = ComputeStats(r, /*detailed=*/true);
  ASSERT_TRUE(stats.has_profiles());
  EXPECT_EQ(stats.column_profiles[0].counts,
            (std::vector<std::size_t>{3, 1}));
  EXPECT_EQ(stats.column_profiles[1].counts,
            (std::vector<std::size_t>{2, 1, 1}));
  // Shallow stats agree on distinct counts.
  RelationStats shallow = ComputeStats(r);
  EXPECT_FALSE(shallow.has_profiles());
  EXPECT_EQ(shallow.column_distinct, stats.column_distinct);
}

TEST(DetailedStatsTest, ProfiledFilterEstimateIsExact) {
  BasketConfig config;
  config.n_baskets = 500;
  config.n_items = 120;
  config.avg_basket_size = 6;
  config.zipf_theta = 1.0;
  config.seed = 71;
  Database db;
  db.PutRelation(GenerateBaskets(config));

  CostModel profiled(DatabaseStats::Compute(db, /*detailed=*/true));
  ConjunctiveQuery sub = *ParseRule("answer(B) :- baskets(B,$1)");

  for (double threshold : {5.0, 15.0, 40.0}) {
    // Actual survivors: the frequent-items flock.
    auto flock = MakeFlock("answer(B) :- baskets(B,$1)",
                           FilterCondition::MinSupport(threshold));
    ASSERT_TRUE(flock.ok());
    auto actual = EvaluateFlock(*flock, db);
    ASSERT_TRUE(actual.ok());
    CostModel::FilterEstimate est = profiled.EstimateFilter(sub, threshold);
    EXPECT_DOUBLE_EQ(est.survivors, static_cast<double>(actual->size()))
        << "threshold " << threshold;
  }
}

TEST(DetailedStatsTest, CoarseEstimateRemainsApproximate) {
  BasketConfig config;
  config.n_baskets = 500;
  config.n_items = 120;
  config.seed = 71;
  Database db;
  db.PutRelation(GenerateBaskets(config));
  CostModel coarse(DatabaseStats::Compute(db));  // no profiles
  ConjunctiveQuery sub = *ParseRule("answer(B) :- baskets(B,$1)");
  CostModel::FilterEstimate est = coarse.EstimateFilter(sub, 15);
  // Sane, bounded — but not asserted exact.
  EXPECT_GT(est.assignments, 0);
  EXPECT_GE(est.survival_fraction, 0);
  EXPECT_LE(est.survival_fraction, 1);
}

// The coarse join estimator's accuracy contract on uniform independent
// data: within a small constant factor of the truth (the assumptions it
// was derived under). Not asserted on skewed data, where only the
// profiled path is reliable.
class EstimateAccuracyProperty : public ::testing::TestWithParam<int> {};

TEST_P(EstimateAccuracyProperty, JoinEstimateWithinFactorOnUniformData) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  Database db;
  Relation r("r", Schema({"A", "B"}));
  Relation s("s", Schema({"B", "C"}));
  for (int i = 0; i < 2000; ++i) {
    r.AddRow({Value(static_cast<std::int64_t>(rng.NextBelow(200))),
              Value(static_cast<std::int64_t>(rng.NextBelow(100)))});
    s.AddRow({Value(static_cast<std::int64_t>(rng.NextBelow(100))),
              Value(static_cast<std::int64_t>(rng.NextBelow(200)))});
  }
  r.Dedup();
  s.Dedup();
  db.PutRelation(r);
  db.PutRelation(s);

  CostModel model(db);
  ConjunctiveQuery cq = *ParseRule("answer(A) :- r(A,B) AND s(B,C)");
  double estimated = model.EstimateCq(cq).result_rows;

  PredicateResolver resolver(db);
  auto actual = EvaluateConjunctiveBindings(cq, resolver, {"A", "B", "C"});
  ASSERT_TRUE(actual.ok());
  double truth = static_cast<double>(actual->size());
  EXPECT_GT(estimated, truth / 3) << "estimate " << estimated;
  EXPECT_LT(estimated, truth * 3) << "estimate " << estimated;
}

INSTANTIATE_TEST_SUITE_P(Seeds, EstimateAccuracyProperty,
                         ::testing::Range(1, 7));

TEST(DetailedStatsTest, ProfiledPathIgnoredForComplexSubqueries) {
  // Two-subgoal subqueries fall back to the coarse model even with
  // profiles present (no crash, sane outputs).
  Database db;
  Relation r("p", Schema({"A", "B"}));
  r.AddRow({Value(1), Value(2)});
  db.PutRelation(r);
  CostModel model(DatabaseStats::Compute(db, true));
  ConjunctiveQuery cq = *ParseRule("answer(A) :- p(A,$x) AND p(A,$y)");
  CostModel::FilterEstimate est = model.EstimateFilter(cq, 2);
  EXPECT_GE(est.survivors, 0);
}

}  // namespace
}  // namespace qf
