// Unit tests for the relational operators (project, select, joins, union,
// difference, group-aggregate) including set-semantics guarantees.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "relational/ops.h"

namespace qf {
namespace {

Relation MakeR(std::initializer_list<std::string> columns,
               std::initializer_list<Tuple> rows) {
  Relation r{Schema(std::vector<std::string>(columns))};
  for (const Tuple& t : rows) r.Add(t);
  return r;
}

TEST(OpsTest, ProjectDeduplicates) {
  Relation r = MakeR({"A", "B"}, {{Value(1), Value(10)},
                                  {Value(1), Value(20)},
                                  {Value(2), Value(30)}});
  Relation p = Project(r, {"A"});
  EXPECT_EQ(p.size(), 2u);
  EXPECT_TRUE(p.Contains({Value(1)}));
  EXPECT_TRUE(p.Contains({Value(2)}));
}

TEST(OpsTest, ProjectReorders) {
  Relation r = MakeR({"A", "B"}, {{Value(1), Value(2)}});
  Relation p = Project(r, {"B", "A"});
  EXPECT_EQ(p.schema(), Schema({"B", "A"}));
  EXPECT_TRUE(p.Contains({Value(2), Value(1)}));
}

TEST(OpsTest, SelectFilters) {
  Relation r = MakeR({"A"}, {{Value(1)}, {Value(2)}, {Value(3)}});
  Relation s = Select(r, [](const Tuple& t) { return t[0].AsInt() >= 2; });
  EXPECT_EQ(s.size(), 2u);
  EXPECT_FALSE(s.Contains({Value(1)}));
}

TEST(OpsTest, RenameKeepsRows) {
  Relation r = MakeR({"A"}, {{Value(1)}});
  Relation renamed = Rename(r, {"X"});
  EXPECT_EQ(renamed.schema(), Schema({"X"}));
  EXPECT_TRUE(renamed.Contains({Value(1)}));
}

TEST(OpsTest, NaturalJoinOnSharedColumn) {
  Relation a = MakeR({"BID", "Item"}, {{Value(1), Value("beer")},
                                       {Value(1), Value("chips")},
                                       {Value(2), Value("beer")}});
  Relation b = MakeR({"BID", "Store"}, {{Value(1), Value("north")},
                                        {Value(3), Value("south")}});
  Relation j = NaturalJoin(a, b);
  EXPECT_EQ(j.schema(), Schema({"BID", "Item", "Store"}));
  EXPECT_EQ(j.size(), 2u);
  EXPECT_TRUE(j.Contains({Value(1), Value("beer"), Value("north")}));
  EXPECT_TRUE(j.Contains({Value(1), Value("chips"), Value("north")}));
}

TEST(OpsTest, NaturalJoinMultiKey) {
  Relation a = MakeR({"X", "Y"}, {{Value(1), Value(2)}, {Value(1), Value(3)}});
  Relation b = MakeR({"X", "Y"}, {{Value(1), Value(2)}});
  Relation j = NaturalJoin(a, b);
  EXPECT_EQ(j.size(), 1u);
  EXPECT_EQ(j.arity(), 2u);
}

TEST(OpsTest, NaturalJoinNoSharedIsCrossProduct) {
  Relation a = MakeR({"A"}, {{Value(1)}, {Value(2)}});
  Relation b = MakeR({"B"}, {{Value(10)}, {Value(20)}});
  Relation j = NaturalJoin(a, b);
  EXPECT_EQ(j.size(), 4u);
}

TEST(OpsTest, NaturalJoinEmptyInput) {
  Relation a = MakeR({"A"}, {});
  Relation b = MakeR({"A"}, {{Value(1)}});
  EXPECT_TRUE(NaturalJoin(a, b).empty());
  EXPECT_TRUE(NaturalJoin(b, a).empty());
}

TEST(OpsTest, SemiJoinKeepsMatching) {
  Relation a = MakeR({"A", "B"}, {{Value(1), Value(2)}, {Value(3), Value(4)}});
  Relation b = MakeR({"A"}, {{Value(1)}});
  Relation s = SemiJoin(a, b);
  EXPECT_EQ(s.size(), 1u);
  EXPECT_TRUE(s.Contains({Value(1), Value(2)}));
  EXPECT_EQ(s.schema(), a.schema());
}

TEST(OpsTest, SemiJoinNoSharedColumnsActsAsGuard) {
  Relation a = MakeR({"A"}, {{Value(1)}});
  Relation empty = MakeR({"B"}, {});
  Relation nonempty = MakeR({"B"}, {{Value(9)}});
  EXPECT_TRUE(SemiJoin(a, empty).empty());
  EXPECT_EQ(SemiJoin(a, nonempty).size(), 1u);
}

TEST(OpsTest, AntiJoinRemovesMatching) {
  // AntiJoin implements NOT subgoals: keep rows with no match.
  Relation a = MakeR({"D", "S"}, {{Value("flu"), Value("fever")},
                                  {Value("flu"), Value("rash")}});
  Relation causes = MakeR({"D", "S"}, {{Value("flu"), Value("fever")}});
  Relation kept = AntiJoin(a, causes);
  EXPECT_EQ(kept.size(), 1u);
  EXPECT_TRUE(kept.Contains({Value("flu"), Value("rash")}));
}

TEST(OpsTest, AntiJoinNoSharedColumnsActsAsGuard) {
  Relation a = MakeR({"A"}, {{Value(1)}});
  Relation empty = MakeR({"B"}, {});
  Relation nonempty = MakeR({"B"}, {{Value(9)}});
  EXPECT_EQ(AntiJoin(a, empty).size(), 1u);
  EXPECT_TRUE(AntiJoin(a, nonempty).empty());
}

TEST(OpsTest, AntiJoinPartialColumnOverlap) {
  Relation a = MakeR({"A", "B"}, {{Value(1), Value(2)}, {Value(3), Value(4)}});
  Relation b = MakeR({"B", "C"}, {{Value(2), Value(99)}});
  Relation kept = AntiJoin(a, b);
  EXPECT_EQ(kept.size(), 1u);
  EXPECT_TRUE(kept.Contains({Value(3), Value(4)}));
}

TEST(OpsTest, UnionDeduplicates) {
  Relation a = MakeR({"A"}, {{Value(1)}, {Value(2)}});
  Relation b = MakeR({"A"}, {{Value(2)}, {Value(3)}});
  Relation u = Union(a, b);
  EXPECT_EQ(u.size(), 3u);
}

TEST(OpsTest, DifferenceBasic) {
  Relation a = MakeR({"A"}, {{Value(1)}, {Value(2)}});
  Relation b = MakeR({"A"}, {{Value(2)}});
  Relation d = Difference(a, b);
  EXPECT_EQ(d.size(), 1u);
  EXPECT_TRUE(d.Contains({Value(1)}));
}

TEST(OpsTest, DistinctCopies) {
  Relation a = MakeR({"A"}, {{Value(1)}, {Value(1)}});
  Relation d = Distinct(a);
  EXPECT_EQ(d.size(), 1u);
  EXPECT_EQ(a.size(), 2u);  // input untouched
}

TEST(OpsTest, GroupCount) {
  Relation r = MakeR({"Item", "BID"}, {{Value("beer"), Value(1)},
                                       {Value("beer"), Value(2)},
                                       {Value("wine"), Value(1)}});
  Relation g = GroupAggregate(r, {"Item"}, AggKind::kCount, "", "n");
  EXPECT_EQ(g.size(), 2u);
  EXPECT_TRUE(g.Contains({Value("beer"), Value(std::int64_t{2})}));
  EXPECT_TRUE(g.Contains({Value("wine"), Value(std::int64_t{1})}));
}

TEST(OpsTest, GroupSum) {
  Relation r = MakeR({"K", "W"}, {{Value("a"), Value(1.5)},
                                  {Value("a"), Value(2.5)},
                                  {Value("b"), Value(4.0)}});
  Relation g = GroupAggregate(r, {"K"}, AggKind::kSum, "W", "total");
  EXPECT_TRUE(g.Contains({Value("a"), Value(4.0)}));
  EXPECT_TRUE(g.Contains({Value("b"), Value(4.0)}));
}

TEST(OpsTest, GroupMinMax) {
  Relation r = MakeR({"K", "V"}, {{Value("a"), Value(3)},
                                  {Value("a"), Value(1)},
                                  {Value("a"), Value(2)}});
  Relation lo = GroupAggregate(r, {"K"}, AggKind::kMin, "V", "m");
  Relation hi = GroupAggregate(r, {"K"}, AggKind::kMax, "V", "m");
  EXPECT_TRUE(lo.Contains({Value("a"), Value(1)}));
  EXPECT_TRUE(hi.Contains({Value("a"), Value(3)}));
}

TEST(OpsTest, GroupByMultipleColumns) {
  Relation r = MakeR({"A", "B", "C"}, {{Value(1), Value(1), Value(10)},
                                       {Value(1), Value(1), Value(20)},
                                       {Value(1), Value(2), Value(30)}});
  Relation g = GroupAggregate(r, {"A", "B"}, AggKind::kCount, "", "n");
  EXPECT_EQ(g.size(), 2u);
  EXPECT_TRUE(g.Contains({Value(1), Value(1), Value(std::int64_t{2})}));
}

TEST(OpsTest, GroupByEmptyGroupColumnsAggregatesAll) {
  Relation r = MakeR({"V"}, {{Value(1)}, {Value(2)}});
  Relation g = GroupAggregate(r, {}, AggKind::kCount, "", "n");
  ASSERT_EQ(g.size(), 1u);
  EXPECT_EQ(g.rows()[0][0], Value(std::int64_t{2}));
}

TEST(OpsTest, ParallelNaturalJoinPreservesSerialRowOrder) {
  // Regression: the parallel join must emit rows in *exactly* the serial
  // join's order (per-morsel buffers concatenated in morsel order), not
  // merely the same set. Build a probe side big enough to cross the
  // parallel threshold and span several morsels.
  Relation a{Schema({"X", "Y"})};
  for (int i = 0; i < 9000; ++i) {
    a.Add({Value(i), Value(i % 37)});
  }
  Relation b{Schema({"Y", "Z"})};
  for (int y = 0; y < 37; ++y) {
    b.Add({Value(y), Value(y * 10)});
    b.Add({Value(y), Value(y * 10 + 1)});
  }
  Relation serial = NaturalJoin(a, b);
  ASSERT_GT(serial.size(), 0u);
  for (unsigned threads : {2u, 4u, 8u}) {
    Relation parallel = ParallelNaturalJoin(a, b, threads);
    EXPECT_EQ(serial.schema(), parallel.schema());
    // Exact vector equality: same rows, same order.
    EXPECT_EQ(serial.rows(), parallel.rows()) << "threads=" << threads;
  }
}

TEST(OpsTest, SerialGroupAggregateOutputIsSorted) {
  // Regression: the serial GroupAggregate used to emit rows in hash-table
  // order; it now sorts like the parallel overload, so the two agree
  // row-for-row and downstream consumers see a deterministic order.
  Relation r = MakeR({"K", "V"}, {{Value("zebra"), Value(1)},
                                  {Value("ant"), Value(2)},
                                  {Value("mule"), Value(3)},
                                  {Value("ant"), Value(9)}});
  Relation serial = GroupAggregate(r, {"K"}, AggKind::kCount, "", "n");
  ASSERT_EQ(serial.size(), 3u);
  std::vector<Tuple> rows = serial.rows();
  std::vector<Tuple> sorted = rows;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(rows, sorted);
  // And serial == parallel exactly, for every thread count.
  for (unsigned threads : {0u, 1u, 2u, 8u}) {
    Relation parallel =
        GroupAggregate(r, {"K"}, AggKind::kCount, "", "n", threads);
    EXPECT_EQ(serial.rows(), parallel.rows()) << "threads=" << threads;
  }
}

TEST(OpsTest, GroupAggregateEmptyInputEveryThreadCount) {
  // Regression: empty input must yield an empty relation with the output
  // schema intact (group columns + aggregate column), never a crash or a
  // phantom row, on the serial path and every parallel thread count.
  Relation empty{Schema({"K", "V"})};
  for (AggKind kind : {AggKind::kCount, AggKind::kSum, AggKind::kMin,
                       AggKind::kMax}) {
    std::string agg_col = kind == AggKind::kCount ? "" : "V";
    Relation serial = GroupAggregate(empty, {"K"}, kind, agg_col, "out");
    EXPECT_TRUE(serial.empty());
    EXPECT_EQ(serial.schema(), Schema({"K", "out"}));
    for (unsigned threads : {0u, 1u, 2u, 8u}) {
      OpMetrics m;
      Relation parallel =
          GroupAggregate(empty, {"K"}, kind, agg_col, "out", threads, &m);
      EXPECT_TRUE(parallel.empty()) << "threads=" << threads;
      EXPECT_EQ(parallel.schema(), Schema({"K", "out"}));
      EXPECT_EQ(m.rows_in, 0u);
      EXPECT_EQ(m.rows_out, 0u);
    }
  }
}

TEST(OpsTest, ParallelNaturalJoinEmptyInputsEveryThreadCount) {
  // Regression: empty probe or build sides must short-circuit to an empty
  // result with the joined schema — identically for threads 0, 1, and
  // many, and without recording phantom probes in the metrics.
  Relation a = MakeR({"X", "Y"}, {{Value(1), Value(2)}});
  Relation empty_b{Schema({"Y", "Z"})};
  Relation empty_a{Schema({"X", "Y"})};
  for (unsigned threads : {0u, 1u, 2u, 8u}) {
    OpMetrics m1;
    Relation r1 = ParallelNaturalJoin(a, empty_b, threads, &m1);
    EXPECT_TRUE(r1.empty()) << "threads=" << threads;
    EXPECT_EQ(r1.schema(), Schema({"X", "Y", "Z"}));
    EXPECT_EQ(m1.tuples_probed, 0u);  // probe phase short-circuited
    EXPECT_EQ(m1.morsels, 0u);        // fallback path, no decomposition

    OpMetrics m2;
    Relation r2 = ParallelNaturalJoin(empty_a, empty_b, threads, &m2);
    EXPECT_TRUE(r2.empty()) << "threads=" << threads;
    EXPECT_EQ(m2.rows_in, 0u);
    EXPECT_EQ(m2.rows_out, 0u);
  }
}

TEST(OpsTest, ParallelNaturalJoinZeroAndOneThreadMatchSerialExactly) {
  // threads == 0 and threads == 1 are documented fallbacks to the serial
  // join: same rows, same order, same counters, morsels stays 0.
  Relation a{Schema({"X", "Y"})};
  for (int i = 0; i < 500; ++i) a.Add({Value(i), Value(i % 7)});
  Relation b{Schema({"Y", "Z"})};
  for (int y = 0; y < 7; ++y) b.Add({Value(y), Value(y * 100)});
  OpMetrics serial_m;
  Relation serial = NaturalJoin(a, b, &serial_m);
  for (unsigned threads : {0u, 1u}) {
    OpMetrics m;
    Relation parallel = ParallelNaturalJoin(a, b, threads, &m);
    EXPECT_EQ(serial.rows(), parallel.rows()) << "threads=" << threads;
    EXPECT_EQ(m.rows_in, serial_m.rows_in);
    EXPECT_EQ(m.rows_in_right, serial_m.rows_in_right);
    EXPECT_EQ(m.rows_out, serial_m.rows_out);
    EXPECT_EQ(m.tuples_probed, serial_m.tuples_probed);
    EXPECT_EQ(m.morsels, 0u) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace qf
