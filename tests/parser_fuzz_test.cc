// Robustness tests for the Datalog parser and shell command parser: on
// random garbage and mutated-valid inputs, parsing must terminate and
// either succeed or return an error — never crash or hang.
#include <gtest/gtest.h>

#include <string>

#include "common/rng.h"
#include "datalog/parser.h"
#include "datalog/program.h"
#include "shell/shell.h"

namespace qf {
namespace {

std::string RandomBytes(Rng& rng, std::size_t length) {
  // Printable-ish ASCII plus the tokens the grammar cares about.
  static constexpr char kAlphabet[] =
      "abcXYZ019_$(),;:<>=!'\"#. \n\t-ANDNOT:-";
  std::string out;
  out.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    out += kAlphabet[rng.NextBelow(sizeof(kAlphabet) - 1)];
  }
  return out;
}

// Mutates a valid query by splicing random bytes into it.
std::string Mutate(Rng& rng, std::string text) {
  std::size_t pos = rng.NextBelow(static_cast<std::uint32_t>(text.size()));
  std::string noise = RandomBytes(rng, 1 + rng.NextBelow(5));
  if (rng.NextBernoulli(0.5)) {
    text.insert(pos, noise);
  } else {
    text.erase(pos, std::min<std::size_t>(noise.size(),
                                          text.size() - pos));
  }
  return text;
}

class ParserFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ParserFuzz, RandomGarbageNeverCrashes) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  for (int i = 0; i < 300; ++i) {
    std::string text = RandomBytes(rng, 1 + rng.NextBelow(120));
    auto query = ParseQuery(text);           // ok or error, no crash
    auto rules = ParseRules(text);
    auto program = ParseProgram(text);
    (void)query;
    (void)rules;
    (void)program;
  }
}

TEST_P(ParserFuzz, MutatedValidQueriesNeverCrash) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 500);
  const std::string base =
      "answer(P) :- exhibits(P,$s) AND treatments(P,$m) AND "
      "diagnoses(P,D) AND NOT causes(D,$s) AND $s < $m";
  for (int i = 0; i < 300; ++i) {
    std::string text = base;
    int mutations = 1 + static_cast<int>(rng.NextBelow(4));
    for (int m = 0; m < mutations; ++m) text = Mutate(rng, std::move(text));
    auto query = ParseQuery(text);
    if (query.ok()) {
      // Whatever parsed must print and re-parse to the same AST.
      auto again = ParseQuery(query->ToString());
      ASSERT_TRUE(again.ok()) << query->ToString();
      EXPECT_EQ(*query, *again);
    }
  }
}

TEST_P(ParserFuzz, ShellStatementsNeverCrash) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 900);
  Shell shell;
  // "TRACE ON "/"TRACE OFF " rather than bare "TRACE ": appended garbage
  // makes every statement a parse error, so the fuzzer cannot stumble into
  // "TRACE TO <garbage>" and litter the working directory with files.
  const char* prefixes[] = {"LOAD ",    "GEN BASKETS ",     "FLOCK ",
                            "RUN ",     "SHOW ",            "DEFINE ",
                            "MAXIMAL ", "",                 "EXPLAIN ANALYZE ",
                            "EXPLAIN ", "TRACE ON ",        "TRACE OFF ",
                            "THREADS ", "SHOW TRACE "};
  constexpr std::uint32_t kPrefixCount =
      sizeof(prefixes) / sizeof(prefixes[0]);
  for (int i = 0; i < 120; ++i) {
    std::string statement =
        std::string(prefixes[rng.NextBelow(kPrefixCount)]) +
        RandomBytes(rng, 1 + rng.NextBelow(60));
    auto result = shell.Execute(statement);  // ok or error, no crash
    (void)result;
  }
}

TEST(ParserFuzzCorpus, MalformedObservabilityStatementsErrorCleanly) {
  // Deterministic corpus of malformed EXPLAIN ANALYZE / TRACE statements:
  // each must return a non-OK status (never crash, never succeed) and
  // leave the shell usable.
  Shell shell;
  const char* corpus[] = {
      "EXPLAIN ANALYZE",
      "EXPLAIN ANALYZE ",
      "EXPLAIN ANALYZE no_such_flock",
      "EXPLAIN ANALYZE no_such_flock DIRECT",
      "EXPLAIN ANALYZE pairs SIDEWAYS",
      "EXPLAIN ANALYZE pairs LIMIT",
      "EXPLAIN ANALYZE pairs LIMIT banana",
      "EXPLAIN ANALYZE pairs THREADS",
      "EXPLAIN ANALYZE pairs THREADS -1",
      "EXPLAIN ANALYZE pairs DIRECT DIRECT DIRECT LIMIT LIMIT",
      "TRACE",
      "TRACE TO",
      "TRACE TO ",
      "TRACE TO\t",
      "TRACE ONWARD",
      "TRACE ON extra tokens",
      "TRACE OFF but why",
      "TRACE OFFBEAT",
      "TRACE trace trace",
      "TRACE TO /nonexistent-dir-qf/sub/trace.jsonl",
  };
  for (const char* statement : corpus) {
    auto result = shell.Execute(statement);
    EXPECT_FALSE(result.ok()) << "unexpectedly ok: " << statement;
  }
  // The shell survives the whole corpus: a normal statement still works
  // and no trace sink was left half-installed.
  EXPECT_FALSE(shell.tracing());
  auto help = shell.Execute("HELP");
  EXPECT_TRUE(help.ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz, ::testing::Range(1, 7));

}  // namespace
}  // namespace qf
