// Tests for QueryFlock, the direct evaluator, and the naive generate-and-
// test oracle — including the paper's running examples (Figs. 2, 3, 4, 10)
// and randomized equivalence properties between the two evaluators.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "flocks/eval.h"
#include "flocks/flock.h"
#include "flocks/naive_eval.h"

namespace qf {
namespace {

QueryFlock Flock(const char* text, FilterCondition filter) {
  auto f = MakeFlock(text, filter);
  EXPECT_TRUE(f.ok()) << f.status().ToString();
  return *f;
}

Database SmallBaskets() {
  // beer+diapers in baskets 1..3; beer+wine in basket 4; solo items after.
  Database db;
  Relation r("baskets", Schema({"BID", "Item"}));
  for (int b = 1; b <= 3; ++b) {
    r.AddRow({Value(b), Value("beer")});
    r.AddRow({Value(b), Value("diapers")});
  }
  r.AddRow({Value(4), Value("beer")});
  r.AddRow({Value(4), Value("wine")});
  r.AddRow({Value(5), Value("wine")});
  db.PutRelation(std::move(r));
  return db;
}

TEST(FlockTest, ValidateAcceptsPaperExamples) {
  QueryFlock f =
      Flock("answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2",
            FilterCondition::MinSupport(20));
  EXPECT_TRUE(f.Validate().ok());
  EXPECT_EQ(f.ParameterNames(), (std::vector<std::string>{"1", "2"}));
}

TEST(FlockTest, ValidateRejectsParameterFreeQuery) {
  auto f = MakeFlock("answer(B) :- baskets(B,X)",
                     FilterCondition::MinSupport(20));
  EXPECT_FALSE(f.ok());
}

TEST(FlockTest, ValidateRejectsUnsafeQuery) {
  auto f = MakeFlock("answer(B) :- baskets(B,$1) AND $2 < $1",
                     FilterCondition::MinSupport(20));
  EXPECT_FALSE(f.ok());
}

TEST(FlockTest, ValidateRejectsMismatchedDisjunctParameters) {
  auto f = MakeFlock("answer(B) :- p(B,$1)\nanswer(B) :- q(B,$2)",
                     FilterCondition::MinSupport(20));
  EXPECT_FALSE(f.ok());
}

TEST(FlockTest, ValidateAgainstDatabaseChecksPredicates) {
  Database db = SmallBaskets();
  QueryFlock ok = Flock("answer(B) :- baskets(B,$1)",
                        FilterCondition::MinSupport(2));
  EXPECT_TRUE(ok.Validate(&db).ok());

  QueryFlock missing = Flock("answer(B) :- shelves(B,$1)",
                             FilterCondition::MinSupport(2));
  EXPECT_EQ(missing.Validate(&db).code(), StatusCode::kNotFound);

  QueryFlock bad_arity = Flock("answer(B) :- baskets(B,$1,X)",
                               FilterCondition::MinSupport(2));
  EXPECT_EQ(bad_arity.Validate(&db).code(), StatusCode::kInvalidArgument);
}

TEST(FlockTest, ToStringShowsQueryAndFilter) {
  QueryFlock f = Flock("answer(B) :- baskets(B,$1) AND baskets(B,$2)",
                       FilterCondition::MinSupport(20));
  std::string s = f.ToString();
  EXPECT_NE(s.find("QUERY:"), std::string::npos);
  EXPECT_NE(s.find("COUNT(answer.B) >= 20"), std::string::npos);
}

TEST(FilterTest, Monotonicity) {
  EXPECT_TRUE(FilterCondition::MinSupport(20).IsMonotone());
  EXPECT_TRUE(
      (FilterCondition{FilterAgg::kSum, CompareOp::kGe, 5, 0}).IsMonotone());
  EXPECT_TRUE(
      (FilterCondition{FilterAgg::kMax, CompareOp::kGt, 5, 0}).IsMonotone());
  EXPECT_TRUE(
      (FilterCondition{FilterAgg::kMin, CompareOp::kLe, 5, 0}).IsMonotone());
  EXPECT_FALSE(
      (FilterCondition{FilterAgg::kCount, CompareOp::kLe, 5, 0}).IsMonotone());
  EXPECT_FALSE(
      (FilterCondition{FilterAgg::kMin, CompareOp::kGe, 5, 0}).IsMonotone());
}

TEST(DirectEvalTest, MarketBasketPairs) {
  Database db = SmallBaskets();
  QueryFlock f =
      Flock("answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2",
            FilterCondition::MinSupport(3));
  auto result = EvaluateFlock(f, db);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->size(), 1u);
  EXPECT_TRUE(result->Contains({Value("beer"), Value("diapers")}));
}

TEST(DirectEvalTest, ThresholdBoundary) {
  Database db = SmallBaskets();
  // Support 1: all co-occurring ordered pairs (beer,diapers),(beer,wine).
  QueryFlock f1 =
      Flock("answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2",
            FilterCondition::MinSupport(1));
  auto r1 = EvaluateFlock(f1, db);
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1->size(), 2u);

  // Support 4: nothing qualifies.
  QueryFlock f4 =
      Flock("answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2",
            FilterCondition::MinSupport(4));
  auto r4 = EvaluateFlock(f4, db);
  ASSERT_TRUE(r4.ok());
  EXPECT_TRUE(r4->empty());
}

TEST(DirectEvalTest, WithoutOrderingPairsAppearBothWays) {
  Database db = SmallBaskets();
  QueryFlock f = Flock("answer(B) :- baskets(B,$1) AND baskets(B,$2)",
                       FilterCondition::MinSupport(3));
  auto result = EvaluateFlock(f, db);
  ASSERT_TRUE(result.ok());
  // (beer,beer), (diapers,diapers), (beer,diapers), (diapers,beer),
  // plus (beer,beer) already counted — and wine pairs are below support.
  EXPECT_EQ(result->size(), 4u);
  EXPECT_TRUE(result->Contains({Value("beer"), Value("diapers")}));
  EXPECT_TRUE(result->Contains({Value("diapers"), Value("beer")}));
  EXPECT_TRUE(result->Contains({Value("beer"), Value("beer")}));
}

TEST(DirectEvalTest, RejectsNonMonotoneFilter) {
  Database db = SmallBaskets();
  QueryFlock f = Flock("answer(B) :- baskets(B,$1)",
                       {FilterAgg::kCount, CompareOp::kLe, 2, 0});
  EXPECT_FALSE(EvaluateFlock(f, db).ok());
}

TEST(DirectEvalTest, InfoReportsSizes) {
  Database db = SmallBaskets();
  QueryFlock f = Flock("answer(B) :- baskets(B,$1) AND baskets(B,$2)",
                       FilterCondition::MinSupport(1));
  FlockEvalInfo info;
  auto result = EvaluateFlock(f, db, {}, nullptr, &info);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(info.peak_rows, 0u);
  EXPECT_GT(info.answer_rows, 0u);
}

TEST(NaiveEvalTest, AgreesOnMarketBasket) {
  Database db = SmallBaskets();
  QueryFlock f =
      Flock("answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2",
            FilterCondition::MinSupport(2));
  auto direct = EvaluateFlock(f, db);
  auto naive = NaiveEvaluateFlock(f, db);
  ASSERT_TRUE(direct.ok());
  ASSERT_TRUE(naive.ok()) << naive.status().ToString();
  direct->SortRows();
  naive->SortRows();
  EXPECT_EQ(direct->rows(), naive->rows());
}

TEST(NaiveEvalTest, EnforcesAssignmentBudget) {
  Database db = SmallBaskets();
  QueryFlock f =
      Flock("answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2",
            FilterCondition::MinSupport(2));
  NaiveEvalOptions options;
  options.max_assignments = 2;  // 3 items x 3 items > 2
  EXPECT_FALSE(NaiveEvaluateFlock(f, db, options).ok());
}

Database MedicalFixture() {
  Database db;
  Relation diagnoses("diagnoses", Schema({"Patient", "Disease"}));
  Relation exhibits("exhibits", Schema({"Patient", "Symptom"}));
  Relation treatments("treatments", Schema({"Patient", "Medicine"}));
  Relation causes("causes", Schema({"Disease", "Symptom"}));
  // Three patients on drugX with unexplained rash; one whose fever is
  // explained by flu.
  for (int i = 0; i < 3; ++i) {
    std::string p = "p" + std::to_string(i);
    diagnoses.AddRow({Value(p), Value("flu")});
    exhibits.AddRow({Value(p), Value("rash")});
    treatments.AddRow({Value(p), Value("drugX")});
  }
  diagnoses.AddRow({Value("q"), Value("flu")});
  exhibits.AddRow({Value("q"), Value("fever")});
  treatments.AddRow({Value("q"), Value("drugX")});
  causes.AddRow({Value("flu"), Value("fever")});
  db.PutRelation(diagnoses);
  db.PutRelation(exhibits);
  db.PutRelation(treatments);
  db.PutRelation(causes);
  return db;
}

TEST(DirectEvalTest, MedicalSideEffects) {
  Database db = MedicalFixture();
  QueryFlock f = Flock(
      "answer(P) :- exhibits(P,$s) AND treatments(P,$m) AND "
      "diagnoses(P,D) AND NOT causes(D,$s)",
      FilterCondition::MinSupport(3));
  auto result = EvaluateFlock(f, db);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->size(), 1u);
  // Result columns are sorted parameters: $m, $s.
  EXPECT_TRUE(result->Contains({Value("drugX"), Value("rash")}));
}

TEST(NaiveEvalTest, AgreesOnMedical) {
  Database db = MedicalFixture();
  QueryFlock f = Flock(
      "answer(P) :- exhibits(P,$s) AND treatments(P,$m) AND "
      "diagnoses(P,D) AND NOT causes(D,$s)",
      FilterCondition::MinSupport(2));
  auto direct = EvaluateFlock(f, db);
  auto naive = NaiveEvaluateFlock(f, db);
  ASSERT_TRUE(direct.ok());
  ASSERT_TRUE(naive.ok());
  direct->SortRows();
  naive->SortRows();
  EXPECT_EQ(direct->rows(), naive->rows());
}

Database WebFixture() {
  Database db;
  Relation in_title("inTitle", Schema({"Doc", "Word"}));
  Relation in_anchor("inAnchor", Schema({"Anchor", "Word"}));
  Relation link("link", Schema({"Anchor", "From", "To"}));
  // "alpha beta" co-occur in two titles and via one anchor->title link.
  in_title.AddRow({Value("d1"), Value("alpha")});
  in_title.AddRow({Value("d1"), Value("beta")});
  in_title.AddRow({Value("d2"), Value("alpha")});
  in_title.AddRow({Value("d2"), Value("beta")});
  in_title.AddRow({Value("d3"), Value("beta")});
  in_anchor.AddRow({Value("a1"), Value("alpha")});
  link.AddRow({Value("a1"), Value("d9"), Value("d3")});
  db.PutRelation(in_title);
  db.PutRelation(in_anchor);
  db.PutRelation(link);
  return db;
}

const char* kWebQuery = R"(
    answer(D) :- inTitle(D,$1) AND inTitle(D,$2) AND $1 < $2
    answer(A) :- link(A,D1,D2) AND inAnchor(A,$1) AND inTitle(D2,$2)
                 AND $1 < $2
    answer(A) :- link(A,D1,D2) AND inAnchor(A,$2) AND inTitle(D2,$1)
                 AND $1 < $2
)";

TEST(DirectEvalTest, UnionFlockCountsAcrossDisjuncts) {
  Database db = WebFixture();
  // alpha/beta: two title co-occurrences (d1,d2) + one anchor hit (a1) = 3.
  QueryFlock f = Flock(kWebQuery, FilterCondition::MinSupport(3));
  auto result = EvaluateFlock(f, db);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->size(), 1u);
  EXPECT_TRUE(result->Contains({Value("alpha"), Value("beta")}));

  // At support 4 nothing survives.
  QueryFlock f4 = Flock(kWebQuery, FilterCondition::MinSupport(4));
  auto r4 = EvaluateFlock(f4, db);
  ASSERT_TRUE(r4.ok());
  EXPECT_TRUE(r4->empty());
}

TEST(NaiveEvalTest, AgreesOnUnionFlock) {
  Database db = WebFixture();
  QueryFlock f = Flock(kWebQuery, FilterCondition::MinSupport(2));
  auto direct = EvaluateFlock(f, db);
  auto naive = NaiveEvaluateFlock(f, db);
  ASSERT_TRUE(direct.ok());
  ASSERT_TRUE(naive.ok());
  direct->SortRows();
  naive->SortRows();
  EXPECT_EQ(direct->rows(), naive->rows());
}

TEST(MonotoneFilterTest, WeightedBasketsSumFilter) {
  // Fig. 10: weighted market baskets with SUM(answer.W) >= threshold.
  Database db = SmallBaskets();
  Relation importance("importance", Schema({"BID", "W"}));
  importance.AddRow({Value(1), Value(10.0)});
  importance.AddRow({Value(2), Value(1.0)});
  importance.AddRow({Value(3), Value(1.0)});
  importance.AddRow({Value(4), Value(100.0)});
  importance.AddRow({Value(5), Value(1.0)});
  db.PutRelation(importance);

  const char* query =
      "answer(B,W) :- baskets(B,$1) AND baskets(B,$2) AND importance(B,W) "
      "AND $1 < $2";
  // SUM over W (head column 1) >= 50: only (beer,wine) via basket 4.
  QueryFlock f = Flock(query, {FilterAgg::kSum, CompareOp::kGe, 50, 1});
  auto result = EvaluateFlock(f, db);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->size(), 1u);
  EXPECT_TRUE(result->Contains({Value("beer"), Value("wine")}));

  // SUM >= 12: (beer,diapers) totals 12, qualifies too.
  QueryFlock f12 = Flock(query, {FilterAgg::kSum, CompareOp::kGe, 12, 1});
  auto r12 = EvaluateFlock(f12, db);
  ASSERT_TRUE(r12.ok());
  EXPECT_EQ(r12->size(), 2u);

  // Naive agrees.
  auto naive = NaiveEvaluateFlock(f12, db);
  ASSERT_TRUE(naive.ok());
  r12->SortRows();
  naive->SortRows();
  EXPECT_EQ(r12->rows(), naive->rows());
}

TEST(MonotoneFilterTest, NegativeWeightRejectedBySumGuard) {
  Database db = SmallBaskets();
  Relation importance("importance", Schema({"BID", "W"}));
  for (int b = 1; b <= 5; ++b) importance.AddRow({Value(b), Value(-1.0)});
  db.PutRelation(importance);
  QueryFlock f =
      Flock("answer(B,W) :- baskets(B,$1) AND importance(B,W)",
            {FilterAgg::kSum, CompareOp::kGe, 1, 1});
  auto result = EvaluateFlock(f, db);
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);

  FlockEvalOptions options;
  options.require_nonnegative_sum = false;
  EXPECT_TRUE(EvaluateFlock(f, db, options).ok());
}

TEST(MonotoneFilterTest, MaxAndMinFilters) {
  Database db = SmallBaskets();
  Relation importance("importance", Schema({"BID", "W"}));
  importance.AddRow({Value(1), Value(5.0)});
  importance.AddRow({Value(2), Value(7.0)});
  importance.AddRow({Value(3), Value(9.0)});
  importance.AddRow({Value(4), Value(2.0)});
  importance.AddRow({Value(5), Value(2.0)});
  db.PutRelation(importance);

  const char* query =
      "answer(B,W) :- baskets(B,$1) AND importance(B,W)";
  // MAX(W) >= 9 -> items in basket 3: beer, diapers.
  QueryFlock fmax = Flock(query, {FilterAgg::kMax, CompareOp::kGe, 9, 1});
  auto rmax = EvaluateFlock(fmax, db);
  ASSERT_TRUE(rmax.ok());
  EXPECT_EQ(rmax->size(), 2u);

  // MIN(W) <= 2 -> items in baskets 4 or 5: beer, wine.
  QueryFlock fmin = Flock(query, {FilterAgg::kMin, CompareOp::kLe, 2, 1});
  auto rmin = EvaluateFlock(fmin, db);
  ASSERT_TRUE(rmin.ok());
  EXPECT_EQ(rmin->size(), 2u);
  EXPECT_TRUE(rmin->Contains({Value("beer")}));
  EXPECT_TRUE(rmin->Contains({Value("wine")}));

  // Both agree with the oracle.
  for (const QueryFlock& f : {fmax, fmin}) {
    auto direct = EvaluateFlock(f, db);
    auto naive = NaiveEvaluateFlock(f, db);
    ASSERT_TRUE(direct.ok());
    ASSERT_TRUE(naive.ok());
    direct->SortRows();
    naive->SortRows();
    EXPECT_EQ(direct->rows(), naive->rows());
  }
}

// Property: on random basket databases the direct evaluator and the naive
// oracle agree for every support threshold.
class EvalEquivalenceProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(EvalEquivalenceProperty, DirectMatchesNaive) {
  auto [seed, threshold] = GetParam();
  Rng rng(seed);
  Database db;
  Relation r("baskets", Schema({"BID", "Item"}));
  const char* items[] = {"a", "b", "c", "d"};
  for (int b = 0; b < 12; ++b) {
    for (const char* item : items) {
      if (rng.NextBernoulli(0.45)) r.AddRow({Value(b), Value(item)});
    }
  }
  r.Dedup();
  db.PutRelation(std::move(r));

  QueryFlock f =
      Flock("answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2",
            FilterCondition::MinSupport(threshold));
  auto direct = EvaluateFlock(f, db);
  auto naive = NaiveEvaluateFlock(f, db);
  ASSERT_TRUE(direct.ok());
  ASSERT_TRUE(naive.ok());
  direct->SortRows();
  naive->SortRows();
  EXPECT_EQ(direct->rows(), naive->rows());
}

INSTANTIATE_TEST_SUITE_P(RandomDatabases, EvalEquivalenceProperty,
                         ::testing::Combine(::testing::Range(1, 11),
                                            ::testing::Values(1, 2, 3, 5)));

}  // namespace
}  // namespace qf
