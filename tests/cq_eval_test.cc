// Unit tests for conjunctive-query evaluation: binding relations, joins,
// comparisons, negation, join orders, and error paths.
#include <gtest/gtest.h>

#include "flocks/cq_eval.h"
#include "datalog/parser.h"
#include "relational/ops.h"

namespace qf {
namespace {

ConjunctiveQuery Parse(const char* text) {
  auto cq = ParseRule(text);
  EXPECT_TRUE(cq.ok()) << cq.status().ToString();
  return *cq;
}

Database SmallBaskets() {
  Database db;
  Relation r("baskets", Schema({"BID", "Item"}));
  r.AddRow({Value(1), Value("beer")});
  r.AddRow({Value(1), Value("diapers")});
  r.AddRow({Value(2), Value("beer")});
  r.AddRow({Value(2), Value("diapers")});
  r.AddRow({Value(3), Value("beer")});
  r.AddRow({Value(3), Value("wine")});
  db.PutRelation(std::move(r));
  return db;
}

TEST(SubgoalBindingsTest, VariablesAndParameters) {
  Database db = SmallBaskets();
  Subgoal sg = Subgoal::Positive(
      "baskets", {Term::Variable("B"), Term::Parameter("1")});
  Relation b = SubgoalBindings(sg, db.Get("baskets"));
  EXPECT_EQ(b.schema(), Schema({"B", "$1"}));
  EXPECT_EQ(b.size(), 6u);
}

TEST(SubgoalBindingsTest, ConstantFilters) {
  Database db = SmallBaskets();
  Subgoal sg = Subgoal::Positive(
      "baskets", {Term::Variable("B"), Term::Constant(Value("beer"))});
  Relation b = SubgoalBindings(sg, db.Get("baskets"));
  EXPECT_EQ(b.schema(), Schema({"B"}));
  EXPECT_EQ(b.size(), 3u);
}

TEST(SubgoalBindingsTest, RepeatedVariableRequiresEquality) {
  Relation r("p", Schema({"X", "Y"}));
  r.AddRow({Value(1), Value(1)});
  r.AddRow({Value(1), Value(2)});
  Subgoal sg =
      Subgoal::Positive("p", {Term::Variable("X"), Term::Variable("X")});
  Relation b = SubgoalBindings(sg, r);
  EXPECT_EQ(b.schema(), Schema({"X"}));
  EXPECT_EQ(b.size(), 1u);
  EXPECT_TRUE(b.Contains({Value(1)}));
}

TEST(SubgoalBindingsTest, AllConstantsCollapseToGuard) {
  Relation r("p", Schema({"X"}));
  r.AddRow({Value(1)});
  Subgoal hit = Subgoal::Positive("p", {Term::Constant(Value(1))});
  Subgoal miss = Subgoal::Positive("p", {Term::Constant(Value(2))});
  EXPECT_EQ(SubgoalBindings(hit, r).size(), 1u);
  EXPECT_EQ(SubgoalBindings(hit, r).arity(), 0u);
  EXPECT_TRUE(SubgoalBindings(miss, r).empty());
}

TEST(CqEvalTest, SelfJoinPairs) {
  Database db = SmallBaskets();
  ConjunctiveQuery cq =
      Parse("answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2");
  PredicateResolver resolver(db);
  auto result =
      EvaluateConjunctiveBindings(cq, resolver, {"$1", "$2", "B"});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Pairs with $1 < $2: (beer,diapers)x2 baskets, (beer,wine)x1.
  EXPECT_EQ(result->size(), 3u);
  EXPECT_TRUE(
      result->Contains({Value("beer"), Value("diapers"), Value(1)}));
  EXPECT_TRUE(
      result->Contains({Value("beer"), Value("diapers"), Value(2)}));
  EXPECT_TRUE(result->Contains({Value("beer"), Value("wine"), Value(3)}));
}

TEST(CqEvalTest, ProjectionDeduplicates) {
  Database db = SmallBaskets();
  ConjunctiveQuery cq =
      Parse("answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2");
  PredicateResolver resolver(db);
  auto result = EvaluateConjunctiveBindings(cq, resolver, {"$1", "$2"});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 2u);  // (beer,diapers), (beer,wine)
}

TEST(CqEvalTest, NegationAntiJoins) {
  Database db;
  Relation diagnoses("diagnoses", Schema({"Patient", "Disease"}));
  diagnoses.AddRow({Value("p1"), Value("flu")});
  diagnoses.AddRow({Value("p2"), Value("flu")});
  db.PutRelation(diagnoses);
  Relation exhibits("exhibits", Schema({"Patient", "Symptom"}));
  exhibits.AddRow({Value("p1"), Value("fever")});
  exhibits.AddRow({Value("p2"), Value("rash")});
  db.PutRelation(exhibits);
  Relation causes("causes", Schema({"Disease", "Symptom"}));
  causes.AddRow({Value("flu"), Value("fever")});
  db.PutRelation(causes);

  ConjunctiveQuery cq = Parse(
      "answer(P) :- exhibits(P,$s) AND diagnoses(P,D) AND NOT causes(D,$s)");
  PredicateResolver resolver(db);
  auto result = EvaluateConjunctiveBindings(cq, resolver, {"$s", "P"});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // p1's fever is explained by flu; p2's rash is not.
  EXPECT_EQ(result->size(), 1u);
  EXPECT_TRUE(result->Contains({Value("rash"), Value("p2")}));
}

TEST(CqEvalTest, ComparisonAgainstConstant) {
  Database db;
  Relation nums("nums", Schema({"N"}));
  for (int i = 0; i < 10; ++i) nums.AddRow({Value(i)});
  db.PutRelation(nums);
  ConjunctiveQuery cq = Parse("answer(N) :- nums(N) AND N >= 7");
  PredicateResolver resolver(db);
  auto result = EvaluateConjunctiveBindings(cq, resolver, {"N"});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 3u);
}

TEST(CqEvalTest, ConstantOnlyComparisonShortCircuits) {
  Database db = SmallBaskets();
  ConjunctiveQuery cq = Parse("answer(B) :- baskets(B,$1) AND 2 < 1");
  PredicateResolver resolver(db);
  auto result = EvaluateConjunctiveBindings(cq, resolver, {"B"});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
}

TEST(CqEvalTest, CartesianWhenNoSharedVariables) {
  Database db;
  Relation p("p", Schema({"X"}));
  p.AddRow({Value(1)});
  p.AddRow({Value(2)});
  db.PutRelation(p);
  Relation q("q", Schema({"Y"}));
  q.AddRow({Value(10)});
  db.PutRelation(q);
  ConjunctiveQuery cq = Parse("answer(X,Y) :- p(X) AND q(Y)");
  PredicateResolver resolver(db);
  auto result = EvaluateConjunctiveBindings(cq, resolver, {"X", "Y"});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 2u);
}

TEST(CqEvalTest, ExplicitJoinOrderSameResult) {
  Database db = SmallBaskets();
  ConjunctiveQuery cq =
      Parse("answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2");
  PredicateResolver resolver(db);
  auto a = EvaluateConjunctiveBindings(cq, resolver, {"$1", "$2"},
                                       {.join_order = {0, 1}});
  auto b = EvaluateConjunctiveBindings(cq, resolver, {"$1", "$2"},
                                       {.join_order = {1, 0}});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  a->SortRows();
  b->SortRows();
  EXPECT_EQ(a->rows(), b->rows());
}

TEST(CqEvalTest, PeakRowsReported) {
  Database db = SmallBaskets();
  ConjunctiveQuery cq =
      Parse("answer(B) :- baskets(B,$1) AND baskets(B,$2)");
  PredicateResolver resolver(db);
  std::size_t peak = 0;
  auto result =
      EvaluateConjunctiveBindings(cq, resolver, {"B"}, {}, &peak);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(peak, 6u);  // at least the base relation size
}

TEST(CqEvalTest, ExtraRelationsResolveFirst) {
  Database db = SmallBaskets();
  Relation ok("okItems", Schema({"$1"}));
  ok.AddRow({Value("beer")});
  std::map<std::string, const Relation*> extra = {{"okItems", &ok}};
  PredicateResolver resolver(db, extra);
  ConjunctiveQuery cq =
      Parse("answer(B) :- baskets(B,$1) AND okItems($1)");
  auto result = EvaluateConjunctiveBindings(cq, resolver, {"$1", "B"});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->size(), 3u);  // beer appears in baskets 1,2,3
}

// ------------------------------------------------------------ Errors ----

TEST(CqEvalErrorTest, UnknownPredicate) {
  Database db;
  PredicateResolver resolver(db);
  ConjunctiveQuery cq = Parse("answer(X) :- nope(X)");
  auto result = EvaluateConjunctiveBindings(cq, resolver, {"X"});
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(CqEvalErrorTest, ArityMismatch) {
  Database db = SmallBaskets();
  PredicateResolver resolver(db);
  ConjunctiveQuery cq = Parse("answer(X) :- baskets(X)");
  auto result = EvaluateConjunctiveBindings(cq, resolver, {"X"});
  EXPECT_FALSE(result.ok());
}

TEST(CqEvalErrorTest, NoPositiveSubgoals) {
  Database db = SmallBaskets();
  PredicateResolver resolver(db);
  ConjunctiveQuery cq = Parse("answer(X) :- NOT baskets(X,Y)");
  auto result = EvaluateConjunctiveBindings(cq, resolver, {"X"});
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(CqEvalErrorTest, UnboundComparison) {
  Database db = SmallBaskets();
  PredicateResolver resolver(db);
  ConjunctiveQuery cq = Parse("answer(B) :- baskets(B,$1) AND $2 < $1");
  auto result = EvaluateConjunctiveBindings(cq, resolver, {"B"});
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(CqEvalErrorTest, UnboundOutputColumn) {
  Database db = SmallBaskets();
  PredicateResolver resolver(db);
  ConjunctiveQuery cq = Parse("answer(B) :- baskets(B,$1)");
  auto result = EvaluateConjunctiveBindings(cq, resolver, {"Z"});
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(CqEvalErrorTest, BadJoinOrderRejected) {
  Database db = SmallBaskets();
  PredicateResolver resolver(db);
  ConjunctiveQuery cq =
      Parse("answer(B) :- baskets(B,$1) AND baskets(B,$2)");
  auto r1 = EvaluateConjunctiveBindings(cq, resolver, {"B"},
                                        {.join_order = {0}});
  EXPECT_FALSE(r1.ok());
  auto r2 = EvaluateConjunctiveBindings(cq, resolver, {"B"},
                                        {.join_order = {0, 0}});
  EXPECT_FALSE(r2.ok());
  auto r3 = EvaluateConjunctiveBindings(cq, resolver, {"B"},
                                        {.join_order = {0, 2}});
  EXPECT_FALSE(r3.ok());
}

}  // namespace
}  // namespace qf
