// Tests for maximal frequent itemsets via the flock sequence (§2.2
// footnote), validated against a brute-force derivation from the a-priori
// miner's complete levelwise output.
#include <gtest/gtest.h>

#include <set>

#include "apriori/apriori.h"
#include "mining/maximal.h"
#include "workload/basket_gen.h"

namespace qf {
namespace {

Database HandDb() {
  // abc x3, ab x1, d x2: maximal at support 2 are {a,b,c} and {d}.
  Database db;
  Relation r("baskets", Schema({"BID", "Item"}));
  int bid = 0;
  for (int i = 0; i < 3; ++i) {
    r.AddRow({Value(bid), Value("a")});
    r.AddRow({Value(bid), Value("b")});
    r.AddRow({Value(bid), Value("c")});
    ++bid;
  }
  r.AddRow({Value(bid), Value("a")});
  r.AddRow({Value(bid), Value("b")});
  ++bid;
  for (int i = 0; i < 2; ++i) {
    r.AddRow({Value(bid++), Value("d")});
  }
  db.PutRelation(std::move(r));
  return db;
}

TEST(MaximalTest, HandWorkedExample) {
  Database db = HandDb();
  auto result =
      MaximalFrequentItemsets(db, "baskets", {.min_support = 2});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Frequent: a(4) b(4) c(3) d(2); ab(4) ac(3) bc(3); abc(3).
  EXPECT_EQ(result->frequent_per_level[0], 4u);
  EXPECT_EQ(result->frequent_per_level[1], 3u);
  EXPECT_EQ(result->frequent_per_level[2], 1u);
  // Maximal: {d} and {a,b,c}.
  ASSERT_EQ(result->maximal.size(), 2u);
  EXPECT_EQ(result->maximal[0], (Tuple{Value("d")}));
  EXPECT_EQ(result->maximal[1],
            (Tuple{Value("a"), Value("b"), Value("c")}));
}

TEST(MaximalTest, MaxSizeCapStopsSequence) {
  Database db = HandDb();
  auto result = MaximalFrequentItemsets(db, "baskets",
                                        {.min_support = 2, .max_size = 2});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->levels, 2u);
  // With triples never mined, the pairs all stay "maximal".
  std::size_t pairs = 0;
  for (const Tuple& t : result->maximal) pairs += t.size() == 2;
  EXPECT_EQ(pairs, 3u);
}

TEST(MaximalTest, ErrorsOnMissingOrBadRelation) {
  Database db;
  EXPECT_EQ(
      MaximalFrequentItemsets(db, "nope", {.min_support = 1}).status().code(),
      StatusCode::kNotFound);
  db.PutRelation(Relation("tri", Schema({"A", "B", "C"})));
  EXPECT_FALSE(MaximalFrequentItemsets(db, "tri", {.min_support = 1}).ok());
}

// Property: the flock-sequence result equals the brute-force maximal sets
// derived from the complete a-priori output.
class MaximalProperty : public ::testing::TestWithParam<int> {};

TEST_P(MaximalProperty, MatchesBruteForce) {
  BasketConfig config;
  config.n_baskets = 150;
  config.n_items = 25;
  config.avg_basket_size = 5;
  config.zipf_theta = 0.7;
  config.topic_locality = 0.5;
  config.n_topics = 5;
  config.seed = static_cast<std::uint64_t>(GetParam());
  Database db;
  db.PutRelation(GenerateBaskets(config));

  const std::size_t support = 5;
  auto result = MaximalFrequentItemsets(db, "baskets",
                                        {.min_support = double(support)});
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // Brute force from the miner.
  auto data = BasketsFromRelation(db.Get("baskets"), "BID", "Item");
  ASSERT_TRUE(data.ok());
  std::vector<Itemset> frequent =
      AprioriFrequentItemsets(*data, {.min_support = support});
  std::set<std::vector<ItemId>> frequent_sets;
  for (const Itemset& s : frequent) frequent_sets.insert(s.items);
  std::set<Tuple> expected;
  for (const Itemset& s : frequent) {
    // Maximal iff no frequent superset exists; check one-item extensions.
    bool maximal = true;
    for (ItemId extra = 0;
         extra < data->item_count() && maximal; ++extra) {
      std::vector<ItemId> super = s.items;
      if (std::find(super.begin(), super.end(), extra) != super.end()) {
        continue;
      }
      super.push_back(extra);
      std::sort(super.begin(), super.end());
      if (frequent_sets.contains(super)) maximal = false;
    }
    if (maximal) {
      Tuple t;
      for (ItemId item : s.items) t.push_back(Value(data->item_names[item]));
      expected.insert(std::move(t));
    }
  }

  std::set<Tuple> actual(result->maximal.begin(), result->maximal.end());
  EXPECT_EQ(actual, expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MaximalProperty, ::testing::Range(1, 9));

}  // namespace
}  // namespace qf
