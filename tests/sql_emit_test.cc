// Tests for the flock -> SQL translation (§1.3/Fig. 1 correspondence).
#include <gtest/gtest.h>

#include "flocks/sql_emit.h"

namespace qf {
namespace {

Database BasketsDb() {
  Database db;
  db.PutRelation(Relation("baskets", Schema({"BID", "Item"})));
  return db;
}

QueryFlock Flock(const char* text, FilterCondition filter) {
  auto f = MakeFlock(text, filter);
  EXPECT_TRUE(f.ok()) << f.status().ToString();
  return *f;
}

TEST(SqlEmitTest, Figure1Shape) {
  Database db = BasketsDb();
  QueryFlock f =
      Flock("answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2",
            FilterCondition::MinSupport(20));
  auto sql = EmitSql(f, db);
  ASSERT_TRUE(sql.ok()) << sql.status().ToString();
  EXPECT_NE(sql->find("SELECT DISTINCT"), std::string::npos);
  EXPECT_NE(sql->find("FROM baskets t0, baskets t1"), std::string::npos);
  EXPECT_NE(sql->find("t0.BID = t1.BID"), std::string::npos);
  EXPECT_NE(sql->find("t0.Item < t1.Item"), std::string::npos);
  EXPECT_NE(sql->find("GROUP BY p_1, p_2"), std::string::npos);
  EXPECT_NE(sql->find("HAVING COUNT(*) >= 20"), std::string::npos);
}

TEST(SqlEmitTest, ConstantsBecomeLiterals) {
  Database db = BasketsDb();
  QueryFlock f = Flock("answer(B) :- baskets(B,$1) AND baskets(B,'beer')",
                       FilterCondition::MinSupport(5));
  auto sql = EmitSql(f, db);
  ASSERT_TRUE(sql.ok());
  EXPECT_NE(sql->find("t1.Item = 'beer'"), std::string::npos);
}

TEST(SqlEmitTest, QuotesAreEscaped) {
  Database db = BasketsDb();
  // Build the constant directly; the Datalog lexer has no quote escaping.
  ConjunctiveQuery cq;
  cq.head_vars = {"B"};
  cq.subgoals = {
      Subgoal::Positive("baskets",
                        {Term::Variable("B"), Term::Parameter("1")}),
      Subgoal::Positive("baskets",
                        {Term::Variable("B"), Term::Constant(Value("o'b"))}),
  };
  QueryFlock direct(cq, FilterCondition::MinSupport(5));
  auto sql = EmitSql(direct, db);
  ASSERT_TRUE(sql.ok());
  EXPECT_NE(sql->find("'o''b'"), std::string::npos);
}

TEST(SqlEmitTest, NegationBecomesNotExists) {
  Database db;
  db.PutRelation(Relation("exhibits", Schema({"Patient", "Symptom"})));
  db.PutRelation(Relation("treatments", Schema({"Patient", "Medicine"})));
  db.PutRelation(Relation("diagnoses", Schema({"Patient", "Disease"})));
  db.PutRelation(Relation("causes", Schema({"Disease", "Symptom"})));
  QueryFlock f = Flock(
      "answer(P) :- exhibits(P,$s) AND treatments(P,$m) AND "
      "diagnoses(P,D) AND NOT causes(D,$s)",
      FilterCondition::MinSupport(20));
  auto sql = EmitSql(f, db);
  ASSERT_TRUE(sql.ok()) << sql.status().ToString();
  EXPECT_NE(sql->find("NOT EXISTS (SELECT 1 FROM causes"), std::string::npos);
}

TEST(SqlEmitTest, UnionQueryEmitsUnion) {
  Database db;
  db.PutRelation(Relation("inTitle", Schema({"Doc", "Word"})));
  db.PutRelation(Relation("inAnchor", Schema({"Anchor", "Word"})));
  db.PutRelation(Relation("link", Schema({"Anchor", "From", "To"})));
  QueryFlock f = Flock(R"(
      answer(D) :- inTitle(D,$1) AND inTitle(D,$2) AND $1 < $2
      answer(A) :- link(A,D1,D2) AND inAnchor(A,$1) AND inTitle(D2,$2)
                   AND $1 < $2
  )",
                       FilterCondition::MinSupport(20));
  auto sql = EmitSql(f, db);
  ASSERT_TRUE(sql.ok()) << sql.status().ToString();
  EXPECT_NE(sql->find("UNION"), std::string::npos);
}

TEST(SqlEmitTest, SumFilterEmitsSumHaving) {
  Database db = BasketsDb();
  db.PutRelation(Relation("importance", Schema({"BID", "W"})));
  QueryFlock f =
      Flock("answer(B,W) :- baskets(B,$1) AND importance(B,W)",
            {FilterAgg::kSum, CompareOp::kGe, 20, 1});
  auto sql = EmitSql(f, db);
  ASSERT_TRUE(sql.ok());
  EXPECT_NE(sql->find("HAVING SUM(h_1) >= 20"), std::string::npos);
}

TEST(SqlEmitTest, UnknownPredicateFails) {
  Database db;
  QueryFlock f = Flock("answer(B) :- nowhere(B,$1)",
                       FilterCondition::MinSupport(5));
  EXPECT_EQ(EmitSql(f, db).status().code(), StatusCode::kNotFound);
}

TEST(SqlEmitTest, NotEqualsUsesSqlSpelling) {
  Database db = BasketsDb();
  QueryFlock f =
      Flock("answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 != $2",
            FilterCondition::MinSupport(5));
  auto sql = EmitSql(f, db);
  ASSERT_TRUE(sql.ok());
  EXPECT_NE(sql->find("t0.Item <> t1.Item"), std::string::npos);
  EXPECT_EQ(sql->find("!="), std::string::npos);
}

}  // namespace
}  // namespace qf
