// Tests for dynamic filter selection (§4.4): correctness against the
// static evaluator on fixtures and random data, plus decision-log
// behavior under different aggressiveness settings.
#include <gtest/gtest.h>

#include "flocks/eval.h"
#include "optimizer/dynamic.h"
#include "optimizer/join_order.h"
#include "workload/basket_gen.h"
#include "workload/graph_gen.h"
#include "workload/medical_gen.h"

namespace qf {
namespace {

QueryFlock Flock(const char* text, FilterCondition filter) {
  auto f = MakeFlock(text, filter);
  EXPECT_TRUE(f.ok()) << f.status().ToString();
  return *f;
}

void ExpectSame(Result<Relation> a, Result<Relation> b) {
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  a->SortRows();
  b->SortRows();
  EXPECT_EQ(a->rows(), b->rows());
}

TEST(DynamicTest, MatchesDirectOnBaskets) {
  Database db;
  db.PutRelation(GenerateBaskets({.n_baskets = 300, .n_items = 50,
                                  .avg_basket_size = 5, .zipf_theta = 1.0,
                                  .seed = 21}));
  QueryFlock flock =
      Flock("answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2",
            FilterCondition::MinSupport(6));
  DynamicLog log;
  ExpectSame(EvaluateFlock(flock, db),
             DynamicEvaluate(flock, db, {}, &log));
  EXPECT_FALSE(log.decisions.empty());
}

TEST(DynamicTest, MatchesDirectOnMedical) {
  MedicalConfig config;
  config.n_patients = 300;
  config.n_symptoms = 80;
  config.symptom_theta = 1.2;
  config.seed = 22;
  Database db = GenerateMedical(config);
  QueryFlock flock = Flock(
      "answer(P) :- exhibits(P,$s) AND treatments(P,$m) AND "
      "diagnoses(P,D) AND NOT causes(D,$s)",
      FilterCondition::MinSupport(5));
  ExpectSame(EvaluateFlock(flock, db), DynamicEvaluate(flock, db));
}

TEST(DynamicTest, MatchesDirectWithChosenJoinOrder) {
  MedicalConfig config;
  config.n_patients = 250;
  config.seed = 23;
  Database db = GenerateMedical(config);
  CostModel model(db);
  QueryFlock flock = Flock(
      "answer(P) :- exhibits(P,$s) AND treatments(P,$m) AND "
      "diagnoses(P,D) AND NOT causes(D,$s)",
      FilterCondition::MinSupport(4));
  DynamicOptions options;
  options.join_order =
      ChooseJoinOrder(flock.query.disjuncts.front(), model);
  ExpectSame(EvaluateFlock(flock, db),
             DynamicEvaluate(flock, db, options));
}

TEST(DynamicTest, ZeroAggressivenessNeverFilters) {
  Database db;
  db.PutRelation(GenerateBaskets({.n_baskets = 100, .n_items = 20,
                                  .avg_basket_size = 4, .zipf_theta = 0.8,
                                  .seed = 24}));
  QueryFlock flock =
      Flock("answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2",
            FilterCondition::MinSupport(4));
  DynamicOptions options;
  options.aggressiveness = 0;
  options.improvement_factor = 0;
  DynamicLog log;
  ExpectSame(EvaluateFlock(flock, db),
             DynamicEvaluate(flock, db, options, &log));
  EXPECT_EQ(log.filters_applied, 0u);
  for (const DynamicDecision& d : log.decisions) EXPECT_FALSE(d.filtered);
}

TEST(DynamicTest, HighAggressivenessFiltersAndStaysCorrect) {
  Database db;
  db.PutRelation(GenerateBaskets({.n_baskets = 400, .n_items = 120,
                                  .avg_basket_size = 5, .zipf_theta = 1.2,
                                  .seed = 25}));
  QueryFlock flock =
      Flock("answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2",
            FilterCondition::MinSupport(10));
  DynamicOptions options;
  options.aggressiveness = 100;  // filter at every opportunity
  options.improvement_factor = 1.0;
  DynamicLog log;
  ExpectSame(EvaluateFlock(flock, db),
             DynamicEvaluate(flock, db, options, &log));
  EXPECT_GT(log.filters_applied, 0u);
}

TEST(DynamicTest, FilteringShrinksIntermediates) {
  // On skewed data with a selective threshold, the dynamic evaluator's
  // peak intermediate should not exceed the unfiltered evaluator's.
  Database db;
  db.PutRelation(GenerateBaskets({.n_baskets = 500, .n_items = 200,
                                  .avg_basket_size = 6, .zipf_theta = 1.2,
                                  .seed = 26}));
  QueryFlock flock =
      Flock("answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2",
            FilterCondition::MinSupport(15));
  FlockEvalInfo direct_info;
  auto direct = EvaluateFlock(flock, db, {}, nullptr, &direct_info);
  ASSERT_TRUE(direct.ok());
  DynamicLog log;
  auto dynamic = DynamicEvaluate(flock, db, {}, &log);
  ASSERT_TRUE(dynamic.ok());
  EXPECT_GT(log.filters_applied, 0u);
  EXPECT_LT(log.peak_rows, direct_info.peak_rows);
}

TEST(DynamicTest, DecisionLogRecordsRatios) {
  Database db;
  db.PutRelation(GenerateBaskets({.n_baskets = 100, .n_items = 30,
                                  .avg_basket_size = 4, .zipf_theta = 1.0,
                                  .seed = 27}));
  QueryFlock flock =
      Flock("answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2",
            FilterCondition::MinSupport(5));
  DynamicLog log;
  auto result = DynamicEvaluate(flock, db, {}, &log);
  ASSERT_TRUE(result.ok());
  for (const DynamicDecision& d : log.decisions) {
    EXPECT_GT(d.ratio, 0);
    EXPECT_FALSE(d.parameters.empty());
    EXPECT_FALSE(d.at.empty());
    if (d.filtered) {
      EXPECT_LE(d.rows_after, d.rows_before);
    }
  }
}

TEST(DynamicTest, GraphPathQueryCorrect) {
  Database db;
  db.PutRelation(GenerateGraph({.n_nodes = 120, .avg_out_degree = 3,
                                .target_theta = 0.9, .seed = 28}));
  QueryFlock flock =
      Flock("answer(X) :- arc($1,X) AND arc(X,Y1) AND arc(Y1,Y2)",
            FilterCondition::MinSupport(2));
  ExpectSame(EvaluateFlock(flock, db), DynamicEvaluate(flock, db));
}

TEST(DynamicTest, RejectsUnionFlocks) {
  Database db;
  db.PutRelation(Relation("p", Schema({"B", "I"})));
  db.PutRelation(Relation("q", Schema({"B", "I"})));
  QueryFlock flock = Flock("answer(B) :- p(B,$1)\nanswer(B) :- q(B,$1)",
                           FilterCondition::MinSupport(2));
  EXPECT_EQ(DynamicEvaluate(flock, db).status().code(),
            StatusCode::kUnimplemented);
}

TEST(DynamicTest, RejectsNonSupportFilter) {
  Database db;
  db.PutRelation(Relation("p", Schema({"B", "I", "W"})));
  QueryFlock flock = Flock("answer(B,W) :- p(B,$1,W)",
                           {FilterAgg::kSum, CompareOp::kGe, 5, 1});
  EXPECT_EQ(DynamicEvaluate(flock, db).status().code(),
            StatusCode::kFailedPrecondition);
}

// --- §4.4 decision-lattice tests: the two-stage rule (ratio gate, then
// removed-mass check) and the "seen" baseline it leaves behind. The
// fixture is hand-built so every ratio is exact:
//
//   p(B,I): item a in baskets b1..b8 (8 rows), items c,d,e in baskets
//           b9,b10 (6 rows) — 14 tuples over 4 items, leaf ratio 3.5;
//   q(B):   chosen per test to reshape the post-join distribution.
//
// With threshold 4, aggressiveness 1: the leaf passes the ratio gate
// (3.5 < 4) but filtering removes only 6/14 = 0.43 of the mass, so
// min_removed_fraction = 0.5 declines it — a *considered* opportunity
// that must record a clamped baseline (max(3.5, 4) = 4), not the raw
// 3.5, or the re-consideration bar after the join would be
// 0.5 * 3.5 = 1.75 instead of 0.5 * 4 = 2.
Database LatticeDb(std::vector<std::string> q_baskets) {
  Relation p("p", Schema({"B", "I"}));
  for (int i = 1; i <= 8; ++i) {
    p.AddRow({Value("b" + std::to_string(i)), Value("a")});
  }
  for (const char* b : {"b9", "b10"}) {
    for (const char* item : {"c", "d", "e"}) {
      p.AddRow({Value(b), Value(item)});
    }
  }
  Relation q("q", Schema({"B"}));
  for (const std::string& b : q_baskets) q.AddRow({Value(b)});
  Database db;
  db.PutRelation(std::move(p));
  db.PutRelation(std::move(q));
  return db;
}

DynamicOptions LatticeOptions() {
  DynamicOptions options;
  options.aggressiveness = 1.0;
  options.improvement_factor = 0.5;
  options.min_removed_fraction = 0.5;
  return options;
}

const DynamicDecision* FindDecision(const DynamicLog& log,
                                    const std::string& at_prefix) {
  for (const DynamicDecision& d : log.decisions) {
    if (d.at.rfind(at_prefix, 0) == 0) return &d;
  }
  return nullptr;
}

TEST(DynamicLatticeTest, MassDeclinedOpportunityIsConsideredNotFiltered) {
  Database db = LatticeDb({"b1", "b2", "b3", "b4", "b5", "b6", "b7", "b8",
                           "b9", "b10"});
  QueryFlock flock = Flock("answer(B) :- p(B,$1) AND q(B)",
                           FilterCondition::MinSupport(4));
  DynamicLog log;
  ExpectSame(EvaluateFlock(flock, db),
             DynamicEvaluate(flock, db, LatticeOptions(), &log));
  const DynamicDecision* leaf = FindDecision(log, "leaf p");
  ASSERT_NE(leaf, nullptr);
  EXPECT_NEAR(leaf->ratio, 3.5, 1e-9);
  EXPECT_TRUE(leaf->considered);   // ratio gate passed (3.5 < 1.0 * 4)
  EXPECT_FALSE(leaf->filtered);    // but only 6/14 of the mass would go
  EXPECT_NEAR(leaf->removed_fraction, 6.0 / 14.0, 1e-9);
  EXPECT_EQ(leaf->rows_before, leaf->rows_after);
}

TEST(DynamicLatticeTest, DeclinedBaselineIsClampedSoLaterJoinCanFilter) {
  // q keeps one basket of item a and both c/d/e baskets: after the join
  // the ratio is 7/4 = 1.75, below 0.5 * clamp(3.5, 4) = 2 — so the set
  // is re-considered, and this time every group sits below support, so
  // the whole mass goes and the filter applies. With the raw 3.5
  // baseline the bar would be 1.75 < 1.75 = false and the §4.4 step
  // would be locked out by its own earlier decline.
  Database db = LatticeDb({"b1", "b9", "b10"});
  QueryFlock flock = Flock("answer(B) :- p(B,$1) AND q(B)",
                           FilterCondition::MinSupport(4));
  DynamicLog log;
  ExpectSame(EvaluateFlock(flock, db),
             DynamicEvaluate(flock, db, LatticeOptions(), &log));
  const DynamicDecision* leaf = FindDecision(log, "leaf p");
  ASSERT_NE(leaf, nullptr);
  EXPECT_TRUE(leaf->considered);
  EXPECT_FALSE(leaf->filtered);
  const DynamicDecision* joined = FindDecision(log, "after join");
  ASSERT_NE(joined, nullptr);
  EXPECT_NEAR(joined->ratio, 7.0 / 4.0, 1e-9);
  EXPECT_TRUE(joined->considered);
  EXPECT_TRUE(joined->filtered);
  EXPECT_NEAR(joined->removed_fraction, 1.0, 1e-9);
  EXPECT_EQ(joined->rows_after, 0u);
  EXPECT_EQ(log.filters_applied, 1u);
}

TEST(DynamicLatticeTest, UnimprovedRatioIsNotReconsidered) {
  // q keeps everything: the post-join ratio is still 3.5, nowhere near
  // 0.5 * 4 = 2, so the seen set is left alone — considered exactly once.
  Database db = LatticeDb({"b1", "b2", "b3", "b4", "b5", "b6", "b7", "b8",
                           "b9", "b10"});
  QueryFlock flock = Flock("answer(B) :- p(B,$1) AND q(B)",
                           FilterCondition::MinSupport(4));
  DynamicLog log;
  ASSERT_TRUE(DynamicEvaluate(flock, db, LatticeOptions(), &log).ok());
  const DynamicDecision* joined = FindDecision(log, "after join");
  ASSERT_NE(joined, nullptr);
  EXPECT_NEAR(joined->ratio, 3.5, 1e-9);
  EXPECT_FALSE(joined->considered);
  EXPECT_FALSE(joined->filtered);
  EXPECT_EQ(joined->removed_fraction, 0.0);
  EXPECT_EQ(log.filters_applied, 0u);
}

TEST(DynamicLatticeTest, GateFailedOpportunityRecordsNothingExtra) {
  // aggressiveness 0.5 puts the gate at 2: the leaf's 3.5 fails it, so
  // the opportunity is not considered and removed_fraction stays 0 (the
  // group-mass pass never ran).
  Database db = LatticeDb({"b1", "b9", "b10"});
  QueryFlock flock = Flock("answer(B) :- p(B,$1) AND q(B)",
                           FilterCondition::MinSupport(4));
  DynamicOptions options = LatticeOptions();
  options.aggressiveness = 0.5;
  DynamicLog log;
  ASSERT_TRUE(DynamicEvaluate(flock, db, options, &log).ok());
  const DynamicDecision* leaf = FindDecision(log, "leaf p");
  ASSERT_NE(leaf, nullptr);
  EXPECT_FALSE(leaf->considered);
  EXPECT_FALSE(leaf->filtered);
  EXPECT_EQ(leaf->removed_fraction, 0.0);
}

TEST(DynamicTest, ThreadedScanMatchesSerial) {
  Database db;
  db.PutRelation(GenerateBaskets({.n_baskets = 300, .n_items = 50,
                                  .avg_basket_size = 5, .zipf_theta = 1.0,
                                  .seed = 29}));
  QueryFlock flock =
      Flock("answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2",
            FilterCondition::MinSupport(6));
  DynamicOptions threaded;
  threaded.threads = 4;
  ExpectSame(DynamicEvaluate(flock, db),
             DynamicEvaluate(flock, db, threaded));
}

// Property: dynamic evaluation agrees with the direct evaluator across
// random seeds, thresholds, and aggressiveness settings.
class DynamicEquivalenceProperty
    : public ::testing::TestWithParam<std::tuple<int, int, double>> {};

TEST_P(DynamicEquivalenceProperty, AgreesWithDirect) {
  auto [seed, threshold, aggressiveness] = GetParam();
  Database db;
  db.PutRelation(GenerateBaskets(
      {.n_baskets = 200, .n_items = 40, .avg_basket_size = 5,
       .zipf_theta = 1.0, .seed = static_cast<std::uint64_t>(seed)}));
  QueryFlock flock =
      Flock("answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2",
            FilterCondition::MinSupport(threshold));
  DynamicOptions options;
  options.aggressiveness = aggressiveness;
  ExpectSame(EvaluateFlock(flock, db),
             DynamicEvaluate(flock, db, options));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DynamicEquivalenceProperty,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5),
                       ::testing::Values(2, 5, 10),
                       ::testing::Values(0.5, 1.0, 4.0)));

}  // namespace
}  // namespace qf
