// Tests for dynamic filter selection (§4.4): correctness against the
// static evaluator on fixtures and random data, plus decision-log
// behavior under different aggressiveness settings.
#include <gtest/gtest.h>

#include "flocks/eval.h"
#include "optimizer/dynamic.h"
#include "optimizer/join_order.h"
#include "workload/basket_gen.h"
#include "workload/graph_gen.h"
#include "workload/medical_gen.h"

namespace qf {
namespace {

QueryFlock Flock(const char* text, FilterCondition filter) {
  auto f = MakeFlock(text, filter);
  EXPECT_TRUE(f.ok()) << f.status().ToString();
  return *f;
}

void ExpectSame(Result<Relation> a, Result<Relation> b) {
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  a->SortRows();
  b->SortRows();
  EXPECT_EQ(a->rows(), b->rows());
}

TEST(DynamicTest, MatchesDirectOnBaskets) {
  Database db;
  db.PutRelation(GenerateBaskets({.n_baskets = 300, .n_items = 50,
                                  .avg_basket_size = 5, .zipf_theta = 1.0,
                                  .seed = 21}));
  QueryFlock flock =
      Flock("answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2",
            FilterCondition::MinSupport(6));
  DynamicLog log;
  ExpectSame(EvaluateFlock(flock, db),
             DynamicEvaluate(flock, db, {}, &log));
  EXPECT_FALSE(log.decisions.empty());
}

TEST(DynamicTest, MatchesDirectOnMedical) {
  MedicalConfig config;
  config.n_patients = 300;
  config.n_symptoms = 80;
  config.symptom_theta = 1.2;
  config.seed = 22;
  Database db = GenerateMedical(config);
  QueryFlock flock = Flock(
      "answer(P) :- exhibits(P,$s) AND treatments(P,$m) AND "
      "diagnoses(P,D) AND NOT causes(D,$s)",
      FilterCondition::MinSupport(5));
  ExpectSame(EvaluateFlock(flock, db), DynamicEvaluate(flock, db));
}

TEST(DynamicTest, MatchesDirectWithChosenJoinOrder) {
  MedicalConfig config;
  config.n_patients = 250;
  config.seed = 23;
  Database db = GenerateMedical(config);
  CostModel model(db);
  QueryFlock flock = Flock(
      "answer(P) :- exhibits(P,$s) AND treatments(P,$m) AND "
      "diagnoses(P,D) AND NOT causes(D,$s)",
      FilterCondition::MinSupport(4));
  DynamicOptions options;
  options.join_order =
      ChooseJoinOrder(flock.query.disjuncts.front(), model);
  ExpectSame(EvaluateFlock(flock, db),
             DynamicEvaluate(flock, db, options));
}

TEST(DynamicTest, ZeroAggressivenessNeverFilters) {
  Database db;
  db.PutRelation(GenerateBaskets({.n_baskets = 100, .n_items = 20,
                                  .avg_basket_size = 4, .zipf_theta = 0.8,
                                  .seed = 24}));
  QueryFlock flock =
      Flock("answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2",
            FilterCondition::MinSupport(4));
  DynamicOptions options;
  options.aggressiveness = 0;
  options.improvement_factor = 0;
  DynamicLog log;
  ExpectSame(EvaluateFlock(flock, db),
             DynamicEvaluate(flock, db, options, &log));
  EXPECT_EQ(log.filters_applied, 0u);
  for (const DynamicDecision& d : log.decisions) EXPECT_FALSE(d.filtered);
}

TEST(DynamicTest, HighAggressivenessFiltersAndStaysCorrect) {
  Database db;
  db.PutRelation(GenerateBaskets({.n_baskets = 400, .n_items = 120,
                                  .avg_basket_size = 5, .zipf_theta = 1.2,
                                  .seed = 25}));
  QueryFlock flock =
      Flock("answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2",
            FilterCondition::MinSupport(10));
  DynamicOptions options;
  options.aggressiveness = 100;  // filter at every opportunity
  options.improvement_factor = 1.0;
  DynamicLog log;
  ExpectSame(EvaluateFlock(flock, db),
             DynamicEvaluate(flock, db, options, &log));
  EXPECT_GT(log.filters_applied, 0u);
}

TEST(DynamicTest, FilteringShrinksIntermediates) {
  // On skewed data with a selective threshold, the dynamic evaluator's
  // peak intermediate should not exceed the unfiltered evaluator's.
  Database db;
  db.PutRelation(GenerateBaskets({.n_baskets = 500, .n_items = 200,
                                  .avg_basket_size = 6, .zipf_theta = 1.2,
                                  .seed = 26}));
  QueryFlock flock =
      Flock("answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2",
            FilterCondition::MinSupport(15));
  FlockEvalInfo direct_info;
  auto direct = EvaluateFlock(flock, db, {}, nullptr, &direct_info);
  ASSERT_TRUE(direct.ok());
  DynamicLog log;
  auto dynamic = DynamicEvaluate(flock, db, {}, &log);
  ASSERT_TRUE(dynamic.ok());
  EXPECT_GT(log.filters_applied, 0u);
  EXPECT_LT(log.peak_rows, direct_info.peak_rows);
}

TEST(DynamicTest, DecisionLogRecordsRatios) {
  Database db;
  db.PutRelation(GenerateBaskets({.n_baskets = 100, .n_items = 30,
                                  .avg_basket_size = 4, .zipf_theta = 1.0,
                                  .seed = 27}));
  QueryFlock flock =
      Flock("answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2",
            FilterCondition::MinSupport(5));
  DynamicLog log;
  auto result = DynamicEvaluate(flock, db, {}, &log);
  ASSERT_TRUE(result.ok());
  for (const DynamicDecision& d : log.decisions) {
    EXPECT_GT(d.ratio, 0);
    EXPECT_FALSE(d.parameters.empty());
    EXPECT_FALSE(d.at.empty());
    if (d.filtered) {
      EXPECT_LE(d.rows_after, d.rows_before);
    }
  }
}

TEST(DynamicTest, GraphPathQueryCorrect) {
  Database db;
  db.PutRelation(GenerateGraph({.n_nodes = 120, .avg_out_degree = 3,
                                .target_theta = 0.9, .seed = 28}));
  QueryFlock flock =
      Flock("answer(X) :- arc($1,X) AND arc(X,Y1) AND arc(Y1,Y2)",
            FilterCondition::MinSupport(2));
  ExpectSame(EvaluateFlock(flock, db), DynamicEvaluate(flock, db));
}

TEST(DynamicTest, RejectsUnionFlocks) {
  Database db;
  db.PutRelation(Relation("p", Schema({"B", "I"})));
  db.PutRelation(Relation("q", Schema({"B", "I"})));
  QueryFlock flock = Flock("answer(B) :- p(B,$1)\nanswer(B) :- q(B,$1)",
                           FilterCondition::MinSupport(2));
  EXPECT_EQ(DynamicEvaluate(flock, db).status().code(),
            StatusCode::kUnimplemented);
}

TEST(DynamicTest, RejectsNonSupportFilter) {
  Database db;
  db.PutRelation(Relation("p", Schema({"B", "I", "W"})));
  QueryFlock flock = Flock("answer(B,W) :- p(B,$1,W)",
                           {FilterAgg::kSum, CompareOp::kGe, 5, 1});
  EXPECT_EQ(DynamicEvaluate(flock, db).status().code(),
            StatusCode::kFailedPrecondition);
}

// Property: dynamic evaluation agrees with the direct evaluator across
// random seeds, thresholds, and aggressiveness settings.
class DynamicEquivalenceProperty
    : public ::testing::TestWithParam<std::tuple<int, int, double>> {};

TEST_P(DynamicEquivalenceProperty, AgreesWithDirect) {
  auto [seed, threshold, aggressiveness] = GetParam();
  Database db;
  db.PutRelation(GenerateBaskets(
      {.n_baskets = 200, .n_items = 40, .avg_basket_size = 5,
       .zipf_theta = 1.0, .seed = static_cast<std::uint64_t>(seed)}));
  QueryFlock flock =
      Flock("answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2",
            FilterCondition::MinSupport(threshold));
  DynamicOptions options;
  options.aggressiveness = aggressiveness;
  ExpectSame(EvaluateFlock(flock, db),
             DynamicEvaluate(flock, db, options));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DynamicEquivalenceProperty,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5),
                       ::testing::Values(2, 5, 10),
                       ::testing::Values(0.5, 1.0, 4.0)));

}  // namespace
}  // namespace qf
