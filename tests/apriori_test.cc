// Tests for the classic a-priori baseline: hand-worked examples, the
// naive/apriori agreement, the a-priori==flock equivalence on generated
// data, and level statistics.
#include <gtest/gtest.h>

#include "apriori/apriori.h"
#include "flocks/eval.h"
#include "flocks/flock.h"
#include "workload/basket_gen.h"

namespace qf {
namespace {

BasketData MakeData(std::vector<std::vector<std::string>> baskets) {
  Relation rel("baskets", Schema({"BID", "Item"}));
  for (std::size_t b = 0; b < baskets.size(); ++b) {
    for (const std::string& item : baskets[b]) {
      rel.AddRow({Value(static_cast<std::int64_t>(b)), Value(item)});
    }
  }
  rel.Dedup();
  auto data = BasketsFromRelation(rel, "BID", "Item");
  EXPECT_TRUE(data.ok());
  return *data;
}

TEST(BasketDataTest, ItemIdsFollowNameOrder) {
  BasketData data = MakeData({{"wine", "beer"}, {"apple"}});
  ASSERT_EQ(data.item_names.size(), 3u);
  EXPECT_EQ(data.item_names[0], "apple");
  EXPECT_EQ(data.item_names[1], "beer");
  EXPECT_EQ(data.item_names[2], "wine");
}

TEST(BasketDataTest, BasketsSortedAndDeduped) {
  BasketData data = MakeData({{"b", "a", "b"}});
  ASSERT_EQ(data.baskets.size(), 1u);
  EXPECT_EQ(data.baskets[0], (std::vector<ItemId>{0, 1}));
}

TEST(BasketDataTest, MissingColumnFails) {
  Relation rel("r", Schema({"X", "Y"}));
  EXPECT_FALSE(BasketsFromRelation(rel, "BID", "Item").ok());
}

TEST(AprioriTest, HandWorkedPairs) {
  // beer+diapers together 3x, beer+wine 1x, solo wine 1x.
  BasketData data = MakeData({{"beer", "diapers"},
                              {"beer", "diapers"},
                              {"beer", "diapers"},
                              {"beer", "wine"},
                              {"wine"}});
  std::vector<Itemset> pairs = AprioriFrequentPairs(data, 3);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(data.item_names[pairs[0].items[0]], "beer");
  EXPECT_EQ(data.item_names[pairs[0].items[1]], "diapers");
  EXPECT_EQ(pairs[0].support, 3u);
}

TEST(AprioriTest, NaiveAndAprioriPairsAgree) {
  BasketConfig config{.n_baskets = 400, .n_items = 60, .avg_basket_size = 6,
                      .zipf_theta = 1.0, .seed = 31};
  auto data = BasketsFromRelation(GenerateBaskets(config), "BID", "Item");
  ASSERT_TRUE(data.ok());
  for (std::size_t support : {2u, 5u, 10u, 25u}) {
    std::vector<Itemset> naive = NaiveFrequentPairs(*data, support);
    std::vector<Itemset> smart = AprioriFrequentPairs(*data, support);
    ASSERT_EQ(naive.size(), smart.size()) << "support " << support;
    for (std::size_t i = 0; i < naive.size(); ++i) {
      EXPECT_EQ(naive[i].items, smart[i].items);
      EXPECT_EQ(naive[i].support, smart[i].support);
    }
  }
}

TEST(AprioriTest, LevelwiseFindsTriples) {
  // {a,b,c} together 3x; {a,b} additionally once more.
  BasketData data = MakeData({{"a", "b", "c"},
                              {"a", "b", "c"},
                              {"a", "b", "c"},
                              {"a", "b"},
                              {"d"}});
  std::vector<Itemset> all =
      AprioriFrequentItemsets(data, {.min_support = 3, .max_size = 0});
  // Frequent: a(4) b(4) c(3) ab(4) ac(3) bc(3) abc(3).
  EXPECT_EQ(all.size(), 7u);
  bool found_triple = false;
  for (const Itemset& s : all) {
    if (s.items.size() == 3) {
      found_triple = true;
      EXPECT_EQ(s.support, 3u);
    }
  }
  EXPECT_TRUE(found_triple);
}

TEST(AprioriTest, MaxSizeStopsEarly) {
  BasketData data = MakeData({{"a", "b", "c"}, {"a", "b", "c"}});
  std::vector<Itemset> capped =
      AprioriFrequentItemsets(data, {.min_support = 2, .max_size = 2});
  for (const Itemset& s : capped) EXPECT_LE(s.items.size(), 2u);
}

TEST(AprioriTest, SupportMonotoneAcrossLevels) {
  BasketConfig config{.n_baskets = 200, .n_items = 30, .avg_basket_size = 6,
                      .zipf_theta = 1.0, .seed = 32};
  auto data = BasketsFromRelation(GenerateBaskets(config), "BID", "Item");
  ASSERT_TRUE(data.ok());
  std::vector<Itemset> all =
      AprioriFrequentItemsets(*data, {.min_support = 5});
  // Every itemset's support must be <= the support of each of its items.
  std::map<ItemId, std::size_t> singleton_support;
  for (const Itemset& s : all) {
    if (s.items.size() == 1) singleton_support[s.items[0]] = s.support;
  }
  for (const Itemset& s : all) {
    for (ItemId item : s.items) {
      EXPECT_LE(s.support, singleton_support[item]);
    }
  }
}

TEST(AprioriTest, StatsShowPruning) {
  BasketConfig config{.n_baskets = 300, .n_items = 100, .avg_basket_size = 6,
                      .zipf_theta = 1.2, .seed = 33};
  auto data = BasketsFromRelation(GenerateBaskets(config), "BID", "Item");
  ASSERT_TRUE(data.ok());
  AprioriStats stats;
  AprioriFrequentItemsets(*data, {.min_support = 20}, &stats);
  ASSERT_GE(stats.candidates_per_level.size(), 2u);
  std::size_t frequent_items = stats.frequent_per_level[0];
  // Level-2 candidates come only from frequent items: at most C(f,2),
  // far fewer than C(n_items, 2).
  EXPECT_LE(stats.candidates_per_level[1],
            frequent_items * (frequent_items - 1) / 2);
}

TEST(AprioriTest, MatchesFlockEvaluation) {
  // The market-basket flock (Fig. 2 + lexicographic order) and a-priori
  // must produce the same frequent pairs.
  BasketConfig config{.n_baskets = 250, .n_items = 40, .avg_basket_size = 5,
                      .zipf_theta = 1.0, .seed = 34};
  Relation baskets = GenerateBaskets(config);
  Database db;
  db.PutRelation(baskets);
  auto flock =
      MakeFlock("answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2",
                FilterCondition::MinSupport(6));
  ASSERT_TRUE(flock.ok());
  auto flock_result = EvaluateFlock(*flock, db);
  ASSERT_TRUE(flock_result.ok());

  auto data = BasketsFromRelation(baskets, "BID", "Item");
  ASSERT_TRUE(data.ok());
  std::vector<Itemset> pairs = AprioriFrequentPairs(*data, 6);

  ASSERT_EQ(flock_result->size(), pairs.size());
  for (const Itemset& p : pairs) {
    EXPECT_TRUE(flock_result->Contains(
        {Value(data->item_names[p.items[0]]),
         Value(data->item_names[p.items[1]])}))
        << data->item_names[p.items[0]] << ","
        << data->item_names[p.items[1]];
  }
}

TEST(AprioriTest, ItemsetsToRelationShapesOutput) {
  BasketData data = MakeData({{"a", "b"}, {"a", "b"}});
  std::vector<Itemset> pairs = AprioriFrequentPairs(data, 2);
  Relation rel = ItemsetsToRelation(pairs, data, 2, "pairs");
  EXPECT_EQ(rel.schema(), Schema({"I1", "I2", "Support"}));
  ASSERT_EQ(rel.size(), 1u);
  EXPECT_TRUE(rel.Contains(
      {Value("a"), Value("b"), Value(std::int64_t{2})}));
}

TEST(AprioriTest, EmptyDataYieldsNothing) {
  BasketData data;
  EXPECT_TRUE(AprioriFrequentItemsets(data, {.min_support = 1}).empty());
  EXPECT_TRUE(NaiveFrequentPairs(data, 1).empty());
}

}  // namespace
}  // namespace qf
