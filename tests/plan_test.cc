// Tests for FILTER-step plans: construction, printing, and the §4.2
// legality rule (accept and reject cases).
#include <gtest/gtest.h>

#include "plan/legality.h"
#include "plan/plan.h"

namespace qf {
namespace {

QueryFlock MedicalFlock() {
  auto f = MakeFlock(
      "answer(P) :- exhibits(P,$s) AND treatments(P,$m) AND "
      "diagnoses(P,D) AND NOT causes(D,$s)",
      FilterCondition::MinSupport(20));
  EXPECT_TRUE(f.ok()) << f.status().ToString();
  return *f;
}

// Subgoal indices in the medical flock.
constexpr std::size_t kExhibits = 0;
constexpr std::size_t kTreatments = 1;
constexpr std::size_t kDiagnoses = 2;
constexpr std::size_t kNotCauses = 3;

// The Fig. 5 plan: okS from exhibits, okM from treatments, final step with
// everything plus both ok relations.
QueryPlan Figure5Plan(const QueryFlock& flock) {
  auto okS = MakeFilterStep(flock, "okS", {"s"},
                            std::vector<std::size_t>{kExhibits});
  EXPECT_TRUE(okS.ok()) << okS.status().ToString();
  auto okM = MakeFilterStep(flock, "okM", {"m"},
                            std::vector<std::size_t>{kTreatments});
  EXPECT_TRUE(okM.ok()) << okM.status().ToString();
  auto plan = PlanWithPrefilters(flock, {*okS, *okM});
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  return *plan;
}

TEST(PlanTest, TrivialPlanIsLegal) {
  QueryFlock flock = MedicalFlock();
  QueryPlan plan = TrivialPlan(flock);
  ASSERT_EQ(plan.steps.size(), 1u);
  EXPECT_TRUE(CheckLegal(plan, flock).ok());
}

TEST(PlanTest, Figure5PlanIsLegal) {
  QueryFlock flock = MedicalFlock();
  QueryPlan plan = Figure5Plan(flock);
  ASSERT_EQ(plan.steps.size(), 3u);
  Status s = CheckLegal(plan, flock);
  EXPECT_TRUE(s.ok()) << s.ToString();
}

TEST(PlanTest, Figure5FinalStepReferencesPriorSteps) {
  QueryFlock flock = MedicalFlock();
  QueryPlan plan = Figure5Plan(flock);
  const ConjunctiveQuery& final_cq =
      plan.steps.back().query.disjuncts.front();
  // okS($s) and okM($m) first, then the four original subgoals.
  ASSERT_EQ(final_cq.subgoals.size(), 6u);
  EXPECT_EQ(final_cq.subgoals[0].ToString(), "okS($s)");
  EXPECT_EQ(final_cq.subgoals[1].ToString(), "okM($m)");
}

TEST(PlanTest, ToStringShowsFilterNotation) {
  QueryFlock flock = MedicalFlock();
  QueryPlan plan = Figure5Plan(flock);
  std::string text = plan.ToString(flock.filter);
  EXPECT_NE(text.find("okS($s) := FILTER(($s),"), std::string::npos);
  EXPECT_NE(text.find("COUNT(answer.P) >= 20"), std::string::npos);
}

TEST(PlanTest, MakeFilterStepRejectsUnsafeSubquery) {
  QueryFlock flock = MedicalFlock();
  // NOT causes alone is unsafe.
  auto step = MakeFilterStep(flock, "bad", {"s"},
                             std::vector<std::size_t>{kNotCauses});
  EXPECT_FALSE(step.ok());
}

TEST(PlanTest, MakeFilterStepRejectsWrongParameters) {
  QueryFlock flock = MedicalFlock();
  // exhibits(P,$s) mentions $s, not $m.
  auto step = MakeFilterStep(flock, "bad", {"m"},
                             std::vector<std::size_t>{kExhibits});
  EXPECT_FALSE(step.ok());
}

TEST(PlanTest, MakeFilterStepRejectsBadIndex) {
  QueryFlock flock = MedicalFlock();
  auto step =
      MakeFilterStep(flock, "bad", {"s"}, std::vector<std::size_t>{99});
  EXPECT_FALSE(step.ok());
}

TEST(LegalityTest, RejectsEmptyPlan) {
  QueryFlock flock = MedicalFlock();
  EXPECT_FALSE(CheckLegal(QueryPlan{}, flock).ok());
}

TEST(LegalityTest, RejectsDuplicateStepNames) {
  QueryFlock flock = MedicalFlock();
  QueryPlan plan = Figure5Plan(flock);
  plan.steps[1].result_name = "okS";
  EXPECT_FALSE(CheckLegal(plan, flock).ok());
}

TEST(LegalityTest, RejectsStepNameShadowingBasePredicate) {
  QueryFlock flock = MedicalFlock();
  QueryPlan plan = Figure5Plan(flock);
  plan.steps[0].result_name = "exhibits";
  // The final step references okS by name; rename breaks that too, but the
  // shadowing check fires first.
  EXPECT_FALSE(CheckLegal(plan, flock).ok());
}

TEST(LegalityTest, RejectsFinalStepThatDeletesSubgoals) {
  QueryFlock flock = MedicalFlock();
  QueryPlan plan = TrivialPlan(flock);
  // Drop the negated subgoal from the final (only) step.
  plan.steps[0].query.disjuncts[0].subgoals.pop_back();
  EXPECT_FALSE(CheckLegal(plan, flock).ok());
}

TEST(LegalityTest, RejectsForeignSubgoal) {
  QueryFlock flock = MedicalFlock();
  QueryPlan plan = Figure5Plan(flock);
  plan.steps[0].query.disjuncts[0].subgoals.push_back(Subgoal::Positive(
      "unrelated", {Term::Variable("P"), Term::Parameter("s")}));
  EXPECT_FALSE(CheckLegal(plan, flock).ok());
}

TEST(LegalityTest, RejectsReferenceToLaterStep) {
  QueryFlock flock = MedicalFlock();
  QueryPlan plan = Figure5Plan(flock);
  // okS's query referencing okM (defined later) is a foreign subgoal at
  // that point.
  plan.steps[0].query.disjuncts[0].subgoals.push_back(
      StepReferenceSubgoal(plan.steps[1]));
  EXPECT_FALSE(CheckLegal(plan, flock).ok());
}

TEST(LegalityTest, RejectsChangedHead) {
  QueryFlock flock = MedicalFlock();
  QueryPlan plan = Figure5Plan(flock);
  plan.steps[0].query.disjuncts[0].head_vars = {"Q"};
  EXPECT_FALSE(CheckLegal(plan, flock).ok());
}

TEST(LegalityTest, RejectsParameterMismatch) {
  QueryFlock flock = MedicalFlock();
  QueryPlan plan = Figure5Plan(flock);
  plan.steps[0].parameters = {"s", "m"};
  EXPECT_FALSE(CheckLegal(plan, flock).ok());
}

TEST(LegalityTest, RejectsNonMonotoneFilter) {
  auto f = MakeFlock("answer(B) :- baskets(B,$1)",
                     FilterCondition{FilterAgg::kCount, CompareOp::kLe, 5, 0});
  ASSERT_TRUE(f.ok());
  QueryPlan plan = TrivialPlan(*f);
  EXPECT_EQ(CheckLegal(plan, *f).code(), StatusCode::kFailedPrecondition);
}

TEST(LegalityTest, RejectsFinalStepOverWrongParameters) {
  QueryFlock flock = MedicalFlock();
  // A "plan" whose only step is the okS prefilter: it is step-wise fine
  // but does not produce the flock's ($s,$m) answer.
  auto okS = MakeFilterStep(flock, "okS", {"s"},
                            std::vector<std::size_t>{kExhibits});
  ASSERT_TRUE(okS.ok());
  QueryPlan plan;
  plan.steps.push_back(*okS);
  EXPECT_FALSE(CheckLegal(plan, flock).ok());
}

TEST(LegalityTest, UnionPlanNeedsOneSubqueryPerDisjunct) {
  auto flock = MakeFlock(
      "answer(D) :- inTitle(D,$1) AND inTitle(D,$2) AND $1 < $2\n"
      "answer(A) :- link(A,D1,D2) AND inAnchor(A,$1) AND inTitle(D2,$2) AND "
      "$1 < $2",
      FilterCondition::MinSupport(20));
  ASSERT_TRUE(flock.ok()) << flock.status().ToString();
  QueryPlan plan = TrivialPlan(*flock);
  EXPECT_TRUE(CheckLegal(plan, *flock).ok());
  // Dropping one disjunct from the final step is illegal.
  plan.steps[0].query.disjuncts.pop_back();
  EXPECT_FALSE(CheckLegal(plan, *flock).ok());
}

TEST(PlanTest, CascadeReferenceSubgoalShape) {
  QueryFlock flock = MedicalFlock();
  auto okS = MakeFilterStep(flock, "okS", {"s"},
                            std::vector<std::size_t>{kExhibits});
  ASSERT_TRUE(okS.ok());
  Subgoal ref = StepReferenceSubgoal(*okS);
  EXPECT_EQ(ref.ToString(), "okS($s)");
  // A second step can reference the first.
  auto step2 = MakeFilterStep(
      flock, "okS2", {"s"},
      std::vector<std::size_t>{kExhibits, kDiagnoses, kNotCauses},
      {&*okS});
  ASSERT_TRUE(step2.ok()) << step2.status().ToString();
  EXPECT_EQ(step2->query.disjuncts[0].subgoals[0].ToString(), "okS($s)");
}

}  // namespace
}  // namespace qf
