// Tests for GYO acyclicity, join trees, and the Yannakakis full-reducer
// evaluation mode: correctness against the plain evaluator and the
// dangling-tuple-elimination property.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "datalog/acyclic.h"
#include "datalog/parser.h"
#include "flocks/cq_eval.h"
#include "flocks/eval.h"
#include "workload/graph_gen.h"
#include "workload/medical_gen.h"

namespace qf {
namespace {

CqEvalOptions ReducedOptions() {
  CqEvalOptions options;
  options.full_reducer = true;
  return options;
}
ConjunctiveQuery Parse(const char* text) {
  auto cq = ParseRule(text);
  EXPECT_TRUE(cq.ok()) << cq.status().ToString();
  return *cq;
}

TEST(AcyclicTest, PathsAndStarsAreAcyclic) {
  EXPECT_TRUE(IsAcyclic(Parse("answer(X) :- arc(X,Y)")));
  EXPECT_TRUE(IsAcyclic(Parse("answer(X) :- arc(X,Y) AND arc(Y,Z)")));
  EXPECT_TRUE(IsAcyclic(
      Parse("answer(X) :- arc(X,Y) AND arc(X,Z) AND arc(X,W)")));
  EXPECT_TRUE(IsAcyclic(Parse(
      "answer(P) :- exhibits(P,$s) AND treatments(P,$m) AND "
      "diagnoses(P,D)")));
}

TEST(AcyclicTest, TriangleIsCyclic) {
  EXPECT_FALSE(IsAcyclic(
      Parse("answer(X) :- arc(X,Y) AND arc(Y,Z) AND arc(Z,X)")));
}

TEST(AcyclicTest, AlphaAcyclicityIsNotGraphAcyclicity) {
  // A "cycle" covered by a big subgoal is alpha-acyclic.
  EXPECT_TRUE(IsAcyclic(Parse(
      "answer(X) :- arc(X,Y) AND arc(Y,Z) AND arc(Z,X) AND tri(X,Y,Z)")));
}

TEST(AcyclicTest, JoinTreeShape) {
  auto tree = BuildJoinTree(
      Parse("answer(X) :- arc(X,Y) AND arc(Y,Z) AND arc(Z,W)"));
  ASSERT_TRUE(tree.has_value());
  EXPECT_EQ(tree->ears.size(), 2u);
  EXPECT_EQ(tree->parents.size(), 2u);
  // The root plus the ears partition the three subgoals.
  std::set<std::size_t> all(tree->ears.begin(), tree->ears.end());
  all.insert(tree->root);
  EXPECT_EQ(all.size(), 3u);
}

TEST(AcyclicTest, NoPositiveSubgoalsHasNoTree) {
  ConjunctiveQuery cq;
  cq.head_vars = {"X"};
  cq.subgoals = {Subgoal::Negated("p", {Term::Variable("X")})};
  EXPECT_FALSE(BuildJoinTree(cq).has_value());
}

TEST(FullReducerTest, EliminatesDanglingTuplesFromIntermediates) {
  // A long chain where most arcs dangle: the reducer's peak stays near
  // the answer size while the plain fold drags dangling tuples along.
  Database db;
  Relation arc("arc", Schema({"S", "T"}));
  // A 3-step chain 0->1->2->3 plus 200 dangling arcs into node 99x.
  arc.AddRow({Value(0), Value(1)});
  arc.AddRow({Value(1), Value(2)});
  arc.AddRow({Value(2), Value(3)});
  for (int i = 0; i < 200; ++i) {
    arc.AddRow({Value(1000 + i), Value(2000 + i)});
  }
  db.PutRelation(std::move(arc));

  ConjunctiveQuery cq =
      Parse("answer(X) :- arc(X,Y) AND arc(Y,Z) AND arc(Z,W)");
  PredicateResolver resolver(db);
  std::size_t plain_peak = 0, reduced_peak = 0;
  auto plain = EvaluateConjunctiveBindings(cq, resolver, {"X"},
                                           {}, &plain_peak);
  auto reduced = EvaluateConjunctiveBindings(
      cq, resolver, {"X"}, ReducedOptions(), &reduced_peak);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(reduced.ok());
  plain->SortRows();
  reduced->SortRows();
  EXPECT_EQ(plain->rows(), reduced->rows());
  EXPECT_EQ(reduced->size(), 1u);  // only X=0 starts a 3-chain
  // The plain fold's peak carries all 203 arcs; the reduced one carries 1.
  EXPECT_GT(plain_peak, 100u);
  EXPECT_LE(reduced_peak, 5u);
}

TEST(FullReducerTest, CyclicQueriesFallBack) {
  Database db;
  Relation arc("arc", Schema({"S", "T"}));
  arc.AddRow({Value(0), Value(1)});
  arc.AddRow({Value(1), Value(2)});
  arc.AddRow({Value(2), Value(0)});
  db.PutRelation(std::move(arc));
  ConjunctiveQuery triangle =
      Parse("answer(X) :- arc(X,Y) AND arc(Y,Z) AND arc(Z,X)");
  PredicateResolver resolver(db);
  auto result = EvaluateConjunctiveBindings(triangle, resolver, {"X"},
                                            ReducedOptions());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 3u);  // every node lies on the triangle
}

// Property: full-reducer evaluation agrees with the plain evaluator on
// random graphs and the medical flock, including negation/comparisons.
class FullReducerProperty : public ::testing::TestWithParam<int> {};

TEST_P(FullReducerProperty, AgreesWithPlainEvaluation) {
  Database db;
  db.PutRelation(GenerateGraph({.n_nodes = 60, .avg_out_degree = 3,
                                .target_theta = 0.7,
                                .seed = static_cast<std::uint64_t>(
                                    GetParam())}));
  PredicateResolver resolver(db);
  const char* queries[] = {
      "answer(X) :- arc(X,Y) AND arc(Y,Z)",
      "answer(X) :- arc(X,Y) AND arc(Y,Z) AND arc(Z,W)",
      "answer(X) :- arc(X,Y) AND arc(X,Z) AND Y < Z",
      "answer(X) :- arc(X,Y) AND arc(Y,Z) AND NOT arc(Z,X)",
  };
  for (const char* text : queries) {
    ConjunctiveQuery cq = *ParseRule(text);
    auto plain = EvaluateConjunctiveBindings(cq, resolver, {"X"});
    auto reduced = EvaluateConjunctiveBindings(cq, resolver, {"X"},
                                               ReducedOptions());
    ASSERT_TRUE(plain.ok());
    ASSERT_TRUE(reduced.ok()) << reduced.status().ToString();
    plain->SortRows();
    reduced->SortRows();
    EXPECT_EQ(plain->rows(), reduced->rows()) << text;
  }
}

TEST_P(FullReducerProperty, MedicalFlockAgrees) {
  MedicalConfig config;
  config.n_patients = 200;
  config.seed = static_cast<std::uint64_t>(GetParam()) + 40;
  Database db = GenerateMedical(config);
  auto flock = MakeFlock(
      "answer(P) :- exhibits(P,$s) AND treatments(P,$m) AND "
      "diagnoses(P,D) AND NOT causes(D,$s)",
      FilterCondition::MinSupport(4));
  ASSERT_TRUE(flock.ok());
  FlockEvalOptions reduced_options;
  reduced_options.per_disjunct.push_back(ReducedOptions());
  auto plain = EvaluateFlock(*flock, db);
  auto reduced = EvaluateFlock(*flock, db, reduced_options);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(reduced.ok());
  plain->SortRows();
  reduced->SortRows();
  EXPECT_EQ(plain->rows(), reduced->rows());
}

INSTANTIATE_TEST_SUITE_P(Seeds, FullReducerProperty, ::testing::Range(1, 9));

}  // namespace
}  // namespace qf
