// Tests for the shared statement entry point (shell/statement.h): script
// splitting, ExecuteStatement vs Shell::Execute equivalence, and REPL
// behavior regressions after the dispatch refactor — the same statements
// the qfshell REPL has always accepted must behave identically through
// the library path the network server uses.
#include "shell/statement.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/vfs.h"
#include "shell/shell.h"

namespace qf {
namespace {

std::string MustRun(Shell& shell, const std::string& stmt) {
  Result<std::string> out = shell.Execute(stmt);
  EXPECT_TRUE(out.ok()) << stmt << ": " << out.status().ToString();
  return out.ok() ? *out : std::string();
}

// ------------------------------------------------------ SplitStatements

TEST(SplitStatementsTest, SplitsOnSemicolons) {
  std::vector<std::string> stmts = SplitStatements("HELP; SHOW RELATIONS;");
  ASSERT_EQ(stmts.size(), 2u);
  EXPECT_EQ(stmts[0], "HELP");
  EXPECT_EQ(stmts[1], "SHOW RELATIONS");
}

TEST(SplitStatementsTest, TrailingStatementNeedsNoSemicolon) {
  std::vector<std::string> stmts = SplitStatements("HELP; SHOW FLOCKS");
  ASSERT_EQ(stmts.size(), 2u);
  EXPECT_EQ(stmts[1], "SHOW FLOCKS");
}

TEST(SplitStatementsTest, DropsBlankStatementsAndComments) {
  std::vector<std::string> stmts = SplitStatements(
      "# leading comment\n"
      ";;\n"
      "HELP;  # trailing comment\n"
      "   \n"
      "; SHOW RELATIONS ;");
  ASSERT_EQ(stmts.size(), 2u);
  EXPECT_EQ(stmts[0], "HELP");
  EXPECT_EQ(stmts[1], "SHOW RELATIONS");
}

TEST(SplitStatementsTest, SemicolonsAndHashesInsideQuotesAreLiteral) {
  std::vector<std::string> stmts =
      SplitStatements("LOAD r FROM \"dir;x/#f.tsv\"; HELP");
  ASSERT_EQ(stmts.size(), 2u);
  EXPECT_EQ(stmts[0], "LOAD r FROM \"dir;x/#f.tsv\"");
  EXPECT_EQ(stmts[1], "HELP");
}

TEST(SplitStatementsTest, KeepsInternalNewlines) {
  std::vector<std::string> stmts =
      SplitStatements("FLOCK f QUERY\n  answer(B) :- b(B,$1)\nFILTER "
                      "COUNT >= 2;");
  ASSERT_EQ(stmts.size(), 1u);
  EXPECT_NE(stmts[0].find('\n'), std::string::npos);
}

TEST(SplitStatementsTest, EmptyScriptYieldsNothing) {
  EXPECT_TRUE(SplitStatements("").empty());
  EXPECT_TRUE(SplitStatements("   \n# only a comment\n;;;").empty());
}

// ---------------------------------------------------- ExecuteStatement

TEST(ExecuteStatementTest, MatchesShellExecuteOnSuccess) {
  Shell a;
  Shell b;
  const std::string gen = "GEN BASKETS x n_baskets=30 n_items=8 seed=4";
  Result<std::string> direct = a.Execute(gen);
  StatementOutcome outcome = ExecuteStatement(b, gen);
  ASSERT_TRUE(direct.ok());
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(*direct, outcome.output);
}

TEST(ExecuteStatementTest, MatchesShellExecuteOnError) {
  Shell a;
  Shell b;
  Result<std::string> direct = a.Execute("RUN missing");
  StatementOutcome outcome = ExecuteStatement(b, "RUN missing");
  ASSERT_FALSE(direct.ok());
  EXPECT_FALSE(outcome.ok());
  EXPECT_EQ(direct.status().code(), outcome.status.code());
  EXPECT_EQ(direct.status().message(), outcome.status.message());
  EXPECT_TRUE(outcome.output.empty());
}

TEST(ExecuteStatementTest, ShellStaysUsableAfterError) {
  Shell shell;
  EXPECT_FALSE(ExecuteStatement(shell, "NOT A STATEMENT").ok());
  EXPECT_TRUE(ExecuteStatement(shell, "HELP").ok());
}

// ------------------------------------------- REPL behavior regressions

TEST(ReplRegressionTest, ScriptMatchesStatementByStatementExecution) {
  const std::string script =
      "GEN BASKETS b n_baskets=50 n_items=10 seed=3;\n"
      "FLOCK p QUERY answer(B) :- b(B,$1) AND b(B,$2) AND $1 < $2 "
      "FILTER COUNT >= 3;\n"
      "SHOW RELATIONS;";
  Shell whole;
  Result<std::string> script_out = whole.ExecuteScript(script);
  ASSERT_TRUE(script_out.ok());

  Shell split;
  std::string stitched;
  for (const std::string& stmt : SplitStatements(script)) {
    StatementOutcome outcome = ExecuteStatement(split, stmt);
    ASSERT_TRUE(outcome.ok()) << stmt;
    stitched += outcome.output;
  }
  EXPECT_EQ(*script_out, stitched);
}

TEST(ReplRegressionTest, ExecuteScriptStopsAtFirstError) {
  Shell shell;
  Result<std::string> out = shell.ExecuteScript(
      "GEN BASKETS b n_baskets=10 n_items=5 seed=1; RUN missing; HELP;");
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kNotFound);
  // The statements before the failure were applied.
  EXPECT_TRUE(shell.database().Has("b"));
}

TEST(ReplRegressionTest, OpenCheckpointFlowUnchanged) {
  MemVfs vfs;
  {
    Shell shell;
    shell.set_vfs(&vfs);
    EXPECT_NE(ExecuteStatement(shell, "OPEN cat").output.find("opened cat"),
              std::string::npos);
    ASSERT_TRUE(
        ExecuteStatement(shell,
                         "GEN BASKETS b n_baskets=30 n_items=8 seed=5")
            .ok());
    StatementOutcome cp = ExecuteStatement(shell, "CHECKPOINT");
    ASSERT_TRUE(cp.ok());
    EXPECT_NE(cp.output.find("bytes snapshotted"), std::string::npos);
  }
  Shell shell;
  shell.set_vfs(&vfs);
  StatementOutcome reopened = ExecuteStatement(shell, "OPEN cat");
  ASSERT_TRUE(reopened.ok());
  EXPECT_NE(reopened.output.find("opened cat: 1 relations"),
            std::string::npos);
}

TEST(ReplRegressionTest, SetTimeoutStillTyped) {
  Shell shell;
  MustRun(shell,
          "GEN BASKETS mb n_baskets=2000 n_items=100 avg_size=8 seed=9");
  ASSERT_TRUE(ExecuteStatement(shell, "SET TIMEOUT 1").ok());
  StatementOutcome out = ExecuteStatement(shell, "MAXIMAL mb SUPPORT 5");
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status.code(), StatusCode::kDeadlineExceeded);
  ASSERT_TRUE(ExecuteStatement(shell, "SET TIMEOUT 0").ok());
  EXPECT_EQ(shell.timeout_ms(), 0);
}

// --------------------------------------------------- SeedDatabase (COW)

TEST(SeedDatabaseTest, SessionsShareBaseRelationsCopyOnWrite) {
  Shell base;
  MustRun(base, "GEN BASKETS shared n_baskets=40 n_items=8 seed=2");
  const Database& base_db = base.database();
  std::shared_ptr<const Relation> payload = base_db.GetShared("shared");
  ASSERT_NE(payload, nullptr);

  Shell a;
  Shell b;
  a.SeedDatabase(base_db);
  b.SeedDatabase(base_db);
  // Seeding shares the payload, not a copy.
  EXPECT_EQ(a.database().GetShared("shared").get(), payload.get());
  EXPECT_EQ(b.database().GetShared("shared").get(), payload.get());

  // A mutation in one session replaces only that session's pointer.
  MustRun(a, "GEN BASKETS shared n_baskets=10 n_items=4 seed=7");
  EXPECT_NE(a.database().GetShared("shared").get(), payload.get());
  EXPECT_EQ(b.database().GetShared("shared").get(), payload.get());
  EXPECT_EQ(base.database().GetShared("shared").get(), payload.get());
}

}  // namespace
}  // namespace qf
