// Slow stress suites for incremental flock evaluation: the randomized
// delta-replay differential sweep (many seeds x threads x catalog x
// budget), a crash-point sweep where the append/run/checkpoint schedule
// dies at every I/O operation and the recovered catalog must still serve
// incremental results bit-identical to full recomputation, and a
// networked-session differential. Labeled `slow` (tests/CMakeLists.txt):
// the quick subset lives in incremental_eval_test.cc.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/vfs.h"
#include "crash_recovery_harness.h"
#include "incremental_diff_harness.h"
#include "network/client.h"
#include "network/server.h"
#include "relational/tsv.h"
#include "shell/shell.h"

namespace qf {
namespace {

TEST(IncrementalStressTest, ScheduleSweep) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    for (unsigned threads : {1u, 4u}) {
      for (bool catalog : {false, true}) {
        DiffScheduleOptions opts;
        opts.seed = seed * 131 + threads;
        opts.steps = 30;
        opts.threads = threads;
        opts.use_catalog = catalog;
        DeltaReplayHarness h(opts);
        h.RunSchedule();
        ASSERT_FALSE(::testing::Test::HasFailure())
            << "seed " << seed << " threads " << threads << " catalog "
            << catalog;
      }
    }
  }
}

TEST(IncrementalStressTest, ScheduleSweepUnderTightBudgets) {
  // 1 MB easily holds these states, 0 is unlimited; the interesting case
  // is that the *same* schedule passes under every budget, evictions and
  // fallbacks included (the governor also charges the evaluations, so
  // budgets below 1 MB would fail the oracle's full recomputes too).
  for (std::uint64_t budget_mb : {1ull, 4ull}) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      DiffScheduleOptions opts;
      opts.seed = 977 * seed + budget_mb;
      opts.steps = 20;
      opts.memory_mb = budget_mb;
      DeltaReplayHarness h(opts);
      h.RunSchedule();
      ASSERT_FALSE(::testing::Test::HasFailure())
          << "budget " << budget_mb << " seed " << seed;
    }
  }
}

// --- crash sweep: the incremental schedule dies at every I/O op ---

// The statement schedule the crash sweep replays through a faulting vfs.
// Every mutation rides the catalog WAL; RUNs exercise build, delta, and
// rebuild(threshold) transitions between crash points.
std::vector<std::string> CrashSchedule() {
  return {
      "OPEN cat",
      "LOAD baskets FROM base.tsv",
      "SET INCREMENTAL ON",
      "FLOCK pairs QUERY answer(B) :- baskets(B,$1) AND baskets(B,$2) AND "
      "$1 < $2 FILTER COUNT >= 2",
      "RUN pairs LIMIT 100000",
      "LOAD baskets APPEND FROM d0.tsv",
      "RUN pairs LIMIT 100000",
      "CHECKPOINT",
      "LOAD baskets APPEND FROM d1.tsv",
      "FLOCK pairs QUERY answer(B) :- baskets(B,$1) AND baskets(B,$2) AND "
      "$1 < $2 FILTER COUNT >= 3",
      "RUN pairs LIMIT 100000",
  };
}

// Seeds base.tsv / d0.tsv / d1.tsv into `vfs` (the real mined workload's
// baskets plus two small overlapping deltas).
void SeedCrashTsvs(Vfs& vfs) {
  Relation baskets = CrashTestBaskets();
  ASSERT_TRUE(StoreTsv(baskets, "base.tsv", &vfs).ok());
  Relation d0("d", Schema(baskets.schema()));
  d0.Add(baskets.rows()[0]);  // duplicate: dedups away
  d0.AddRow({Value(100), Value(1)});
  d0.AddRow({Value(100), Value(2)});
  ASSERT_TRUE(StoreTsv(d0, "d0.tsv", &vfs).ok());
  Relation d1("d", Schema(baskets.schema()));
  d1.AddRow({Value(100), Value(3)});
  d1.AddRow({Value(101), Value(1)});
  d1.AddRow({Value(101), Value(2)});
  ASSERT_TRUE(StoreTsv(d1, "d1.tsv", &vfs).ok());
}

// Runs the schedule until the first error (the injected crash).
void RunCrashSchedule(Vfs& vfs) {
  Shell shell;
  shell.set_vfs(&vfs);
  for (const std::string& stmt : CrashSchedule()) {
    if (!shell.Execute(stmt).ok()) break;
  }
}

TEST(IncrementalStressTest, CrashSweepRecoveredCatalogServesIncrementally) {
  for (bool power_loss : {false, true}) {
    // Learn the sweep bound from a fault-free run.
    std::uint64_t total_ops = 0;
    {
      MemVfs base;
      SeedCrashTsvs(base);
      FaultVfs vfs(base);
      Shell shell;
      shell.set_vfs(&vfs);
      for (const std::string& stmt : CrashSchedule()) {
        Result<std::string> out = shell.Execute(stmt);
        ASSERT_TRUE(out.ok()) << out.status().ToString() << " for " << stmt;
      }
      total_ops = vfs.op_count();
    }
    ASSERT_GT(total_ops, 0u);

    for (std::uint64_t c = 1; c <= total_ops; ++c) {
      MemVfs base;
      SeedCrashTsvs(base);
      {
        FaultVfs vfs(base);
        FaultPlan plan;
        plan.crash_at_op = c;
        vfs.set_plan(plan);
        RunCrashSchedule(vfs);
      }
      if (power_loss) base.Crash();

      // Recovery: reopen the catalog in a fresh shell. Whatever prefix
      // of the schedule committed, the recovered state must (a) open,
      // (b) serve RUNs whose incremental results are bit-identical to a
      // full recompute over the same recovered data, and (c) accept new
      // commits.
      Shell shell;
      shell.set_vfs(&base);
      Result<std::string> opened = shell.Execute("OPEN cat");
      ASSERT_TRUE(opened.ok())
          << "crash at op " << c << " power_loss " << power_loss << ": "
          << opened.status().ToString();
      if (shell.HasFlock("pairs") && shell.database().Has("baskets")) {
        Result<std::string> on = shell.Execute("SET INCREMENTAL ON");
        ASSERT_TRUE(on.ok()) << on.status().ToString();
        Result<std::string> inc = shell.Execute("RUN pairs LIMIT 100000");
        ASSERT_TRUE(inc.ok())
            << "crash at op " << c << ": " << inc.status().ToString();
        // Delta after recovery: the replayed append chain is gone (fresh
        // session), so this run rebuilds — and a post-recovery append
        // must flow through the delta path again.
        Result<std::string> appended =
            shell.Execute("LOAD baskets APPEND FROM d1.tsv");
        ASSERT_TRUE(appended.ok()) << appended.status().ToString();
        Result<std::string> inc2 = shell.Execute("RUN pairs LIMIT 100000");
        ASSERT_TRUE(inc2.ok()) << inc2.status().ToString();
        Result<std::string> off = shell.Execute("SET INCREMENTAL OFF");
        ASSERT_TRUE(off.ok()) << off.status().ToString();
        Result<std::string> full = shell.Execute("RUN pairs LIMIT 100000");
        ASSERT_TRUE(full.ok()) << full.status().ToString();
        EXPECT_EQ(NormalizeRunOutput(*inc2), NormalizeRunOutput(*full))
            << "crash at op " << c << " power_loss " << power_loss;
      }
      Result<std::string> commit = shell.Execute("THREADS 2");
      EXPECT_TRUE(commit.ok())
          << "crash at op " << c << ": " << commit.status().ToString();
    }
  }
}

// --- server sessions: per-session incremental state over a shared base ---

TEST(IncrementalStressTest, ServerSessionsIncrementalDifferential) {
  Shell seed;
  {
    Result<std::string> out = seed.Execute(
        "GEN BASKETS baskets n_baskets=50 n_items=10 avg_size=5 "
        "theta=0.8 locality=0.5 topics=4 seed=3");
    ASSERT_TRUE(out.ok()) << out.status().ToString();
  }
  MemVfs session_vfs;
  Relation delta("delta", Schema({"BID", "Item"}));
  delta.AddRow({Value(1000), Value(0)});
  delta.AddRow({Value(1000), Value(1)});
  ASSERT_TRUE(StoreTsv(delta, "delta.tsv", &session_vfs).ok());

  ServerOptions options;
  options.port = 0;
  options.base_db = seed.database();
  options.session_vfs = &session_vfs;
  Result<std::unique_ptr<Server>> server = Server::Start(std::move(options));
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  Server& srv = **server;

  auto exec = [](Client& c, const std::string& stmt) {
    Result<std::string> out = c.Execute(stmt);
    EXPECT_TRUE(out.ok()) << out.status().ToString() << " for " << stmt;
    return out.ok() ? *out : std::string();
  };

  const std::string flock_stmt =
      "FLOCK pairs QUERY answer(B) :- baskets(B,$1) AND baskets(B,$2) AND "
      "$1 < $2 FILTER COUNT >= 3";

  // Several sequential sessions, each interleaving incremental runs with
  // appends; every session is differentially checked against its own
  // full recompute, and the shared base must never change.
  for (int round = 0; round < 4; ++round) {
    Result<Client> a = Client::Connect("127.0.0.1", srv.port());
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    Result<Client> b = Client::Connect("127.0.0.1", srv.port());
    ASSERT_TRUE(b.ok()) << b.status().ToString();

    exec(*a, flock_stmt);
    exec(*b, flock_stmt);
    std::string b_before = NormalizeRunOutput(exec(*b, "RUN pairs LIMIT 100000"));

    exec(*a, "SET INCREMENTAL ON");
    std::string inc1 = exec(*a, "RUN pairs LIMIT 100000");
    exec(*a, "LOAD baskets APPEND FROM delta.tsv");
    std::string inc2 = exec(*a, "RUN pairs LIMIT 100000");
    exec(*a, "SET INCREMENTAL OFF");
    std::string full2 = exec(*a, "RUN pairs LIMIT 100000");
    EXPECT_EQ(NormalizeRunOutput(inc2), NormalizeRunOutput(full2))
        << "round " << round;

    // COW isolation: session B (and every later session) still sees the
    // untouched shared base despite A's append.
    std::string b_after = NormalizeRunOutput(exec(*b, "RUN pairs LIMIT 100000"));
    EXPECT_EQ(b_before, b_after) << "round " << round;
  }
}

}  // namespace
}  // namespace qf
