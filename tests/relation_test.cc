// Unit tests for Schema, Tuple helpers, Relation, Database, and TSV IO.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/rng.h"

#include "relational/database.h"
#include "relational/relation.h"
#include "relational/tsv.h"

namespace qf {
namespace {

TEST(SchemaTest, BasicLookup) {
  Schema s({"A", "B", "C"});
  EXPECT_EQ(s.arity(), 3u);
  EXPECT_EQ(s.IndexOfOrDie("B"), 1u);
  EXPECT_FALSE(s.IndexOf("Z").has_value());
  EXPECT_TRUE(s.Contains("C"));
  EXPECT_EQ(s.ToString(), "(A, B, C)");
}

TEST(SchemaTest, Equality) {
  EXPECT_EQ(Schema({"A", "B"}), Schema({"A", "B"}));
  EXPECT_FALSE(Schema({"A", "B"}) == Schema({"B", "A"}));
}

TEST(TupleTest, ProjectTuple) {
  Tuple t = {Value(1), Value(2), Value(3)};
  Tuple p = ProjectTuple(t, {2, 0});
  ASSERT_EQ(p.size(), 2u);
  EXPECT_EQ(p[0], Value(3));
  EXPECT_EQ(p[1], Value(1));
}

TEST(TupleTest, HashConsistent) {
  Tuple a = {Value(1), Value("x")};
  Tuple b = {Value(1), Value("x")};
  EXPECT_EQ(TupleHash{}(a), TupleHash{}(b));
}

TEST(TupleTest, ToString) {
  Tuple t = {Value(1), Value("x")};
  EXPECT_EQ(TupleToString(t), "(1, x)");
}

TEST(RelationTest, AddAndSize) {
  Relation r("test", Schema({"A", "B"}));
  r.AddRow({Value(1), Value(2)});
  r.AddRow({Value(1), Value(2)});
  EXPECT_EQ(r.size(), 2u);
  r.Dedup();
  EXPECT_EQ(r.size(), 1u);
}

TEST(RelationTest, DedupPreservesDistinctRows) {
  Relation r(Schema({"A"}));
  for (int i = 0; i < 10; ++i) {
    r.AddRow({Value(i % 3)});
  }
  r.Dedup();
  EXPECT_EQ(r.size(), 3u);
  EXPECT_TRUE(r.Contains({Value(0)}));
  EXPECT_TRUE(r.Contains({Value(1)}));
  EXPECT_TRUE(r.Contains({Value(2)}));
}

TEST(RelationTest, SortRowsIsDeterministic) {
  Relation r(Schema({"A"}));
  r.AddRow({Value(3)});
  r.AddRow({Value(1)});
  r.AddRow({Value(2)});
  r.SortRows();
  EXPECT_EQ(r.rows()[0][0], Value(1));
  EXPECT_EQ(r.rows()[2][0], Value(3));
}

TEST(RelationTest, ToStringTruncates) {
  Relation r("r", Schema({"A"}));
  for (int i = 0; i < 30; ++i) r.AddRow({Value(i)});
  std::string s = r.ToString(5);
  EXPECT_NE(s.find("[30 rows]"), std::string::npos);
  EXPECT_NE(s.find("25 more"), std::string::npos);
}

TEST(DatabaseTest, AddAndGet) {
  Database db;
  Relation r("baskets", Schema({"BID", "Item"}));
  r.AddRow({Value(1), Value("beer")});
  ASSERT_TRUE(db.AddRelation(r).ok());
  EXPECT_TRUE(db.Has("baskets"));
  EXPECT_EQ(db.Get("baskets").size(), 1u);
}

TEST(DatabaseTest, RejectsUnnamed) {
  Database db;
  EXPECT_FALSE(db.AddRelation(Relation(Schema({"A"}))).ok());
}

TEST(DatabaseTest, RejectsDuplicate) {
  Database db;
  ASSERT_TRUE(db.AddRelation(Relation("r", Schema({"A"}))).ok());
  Status s = db.AddRelation(Relation("r", Schema({"A"})));
  EXPECT_EQ(s.code(), StatusCode::kAlreadyExists);
}

TEST(DatabaseTest, PutReplaces) {
  Database db;
  Relation r1("r", Schema({"A"}));
  r1.AddRow({Value(1)});
  db.PutRelation(r1);
  Relation r2("r", Schema({"A"}));
  db.PutRelation(r2);
  EXPECT_EQ(db.Get("r").size(), 0u);
}

TEST(DatabaseTest, NamesSorted) {
  Database db;
  db.PutRelation(Relation("zeta", Schema({"A"})));
  db.PutRelation(Relation("alpha", Schema({"A"})));
  std::vector<std::string> names = db.Names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "alpha");
  EXPECT_EQ(names[1], "zeta");
}

class TsvTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& name) {
    return (std::filesystem::temp_directory_path() / name).string();
  }
};

TEST_F(TsvTest, RoundTrip) {
  Relation r("mixed", Schema({"Id", "Weight", "Label"}));
  r.AddRow({Value(1), Value(2.5), Value("alpha")});
  r.AddRow({Value(2), Value(-1.0), Value("beta gamma")});
  std::string path = TempPath("qf_tsv_roundtrip.tsv");
  ASSERT_TRUE(StoreTsv(r, path).ok());

  Result<Relation> loaded = LoadTsv(path, "mixed");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->schema(), r.schema());
  EXPECT_EQ(loaded->size(), 2u);
  EXPECT_TRUE(loaded->Contains({Value(1), Value(2.5), Value("alpha")}));
  EXPECT_TRUE(loaded->Contains({Value(2), Value(-1.0), Value("beta gamma")}));
  std::remove(path.c_str());
}

TEST_F(TsvTest, DedupsOnLoad) {
  std::string path = TempPath("qf_tsv_dedup.tsv");
  {
    std::ofstream out(path);
    out << "A\tB\n1\tx\n1\tx\n2\ty\n";
  }
  Result<Relation> loaded = LoadTsv(path, "r");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 2u);
  std::remove(path.c_str());
}

TEST_F(TsvTest, RejectsRaggedRows) {
  std::string path = TempPath("qf_tsv_ragged.tsv");
  {
    std::ofstream out(path);
    out << "A\tB\n1\n";
  }
  EXPECT_FALSE(LoadTsv(path, "r").ok());
  std::remove(path.c_str());
}

TEST_F(TsvTest, DatabaseRoundTrip) {
  Database db;
  Relation a("alpha", Schema({"X", "Y"}));
  a.AddRow({Value(1), Value("one")});
  a.AddRow({Value(2), Value("two")});
  db.PutRelation(a);
  Relation b("beta", Schema({"K"}));
  b.AddRow({Value(3.5)});
  db.PutRelation(b);

  std::string dir = TempPath("qf_db_roundtrip");
  ASSERT_TRUE(StoreDatabase(db, dir).ok());
  Result<Database> loaded = LoadDatabase(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->Names(), db.Names());
  EXPECT_EQ(loaded->Get("alpha").size(), 2u);
  EXPECT_TRUE(loaded->Get("alpha").Contains({Value(1), Value("one")}));
  EXPECT_TRUE(loaded->Get("beta").Contains({Value(3.5)}));
  std::filesystem::remove_all(dir);
}

TEST_F(TsvTest, LoadDatabaseWithoutManifestFails) {
  EXPECT_EQ(LoadDatabase("/nonexistent/qf_db").status().code(),
            StatusCode::kNotFound);
}

TEST_F(TsvTest, MissingFileIsNotFound) {
  Result<Relation> r = LoadTsv("/nonexistent/definitely/missing.tsv", "r");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

// --- LoadTsv column typing and degenerate-header regressions ---

class TsvTypingTest : public ::testing::Test {
 protected:
  std::string WriteFile(const std::string& name, const std::string& content) {
    std::string path =
        (std::filesystem::temp_directory_path() / name).string();
    std::ofstream out(path, std::ios::binary);
    out << content;
    out.close();
    return path;
  }
  void TearDown() override {
    for (const std::string& p : to_remove_) std::remove(p.c_str());
  }
  std::string Path(const std::string& name, const std::string& content) {
    std::string p = WriteFile(name, content);
    to_remove_.push_back(p);
    return p;
  }
  std::vector<std::string> to_remove_;
};

// Regression: per-field sniffing turned "1, 2, foo" into two ints and one
// string in the same column, silently breaking join/group-by equality.
// The column's type is the least upper bound of its fields.
TEST_F(TsvTypingTest, MixedNumericAndTextColumnLoadsAsString) {
  std::string path = Path("qf_mixed_col.tsv", "A\tB\n1\tx\n2\ty\nfoo\tz\n");
  Result<Relation> r = LoadTsv(path, "r");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->size(), 3u);
  for (const Tuple& t : r->rows()) {
    EXPECT_TRUE(t[0].is_string()) << t[0].ToString();
  }
  EXPECT_TRUE(r->Contains({Value("1"), Value("x")}));
  EXPECT_TRUE(r->Contains({Value("foo"), Value("z")}));
}

// Regression: "1" vs "1.0" in one column mixed int and double Values,
// which compare unequal under the typed Value model.
TEST_F(TsvTypingTest, IntAndDoubleColumnPromotesToDouble) {
  std::string path = Path("qf_promote_col.tsv", "A\n1\n1.5\n2\n");
  Result<Relation> r = LoadTsv(path, "r");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 3u);
  for (const Tuple& t : r->rows()) {
    EXPECT_TRUE(t[0].is_double()) << t[0].ToString();
  }
  EXPECT_TRUE(r->Contains({Value(1.0)}));
  EXPECT_TRUE(r->Contains({Value(1.5)}));
}

TEST_F(TsvTypingTest, PureIntColumnStaysInt) {
  std::string path = Path("qf_int_col.tsv", "A\n1\n-7\n9223372036854775807\n");
  Result<Relation> r = LoadTsv(path, "r");
  ASSERT_TRUE(r.ok());
  for (const Tuple& t : r->rows()) EXPECT_TRUE(t[0].is_int());
  EXPECT_TRUE(r->Contains({Value(std::int64_t{9223372036854775807LL})}));
}

// An integer too large for int64 falls back like any other unparsable
// numeric: the column becomes double (if it parses as one) or string.
TEST_F(TsvTypingTest, Int64OverflowPromotesColumn) {
  std::string path = Path("qf_overflow_col.tsv", "A\n1\n99999999999999999999\n");
  Result<Relation> r = LoadTsv(path, "r");
  ASSERT_TRUE(r.ok());
  for (const Tuple& t : r->rows()) EXPECT_TRUE(t[0].is_double());
}

TEST_F(TsvTypingTest, NonFiniteSpellingsLoadAsStrings) {
  std::string path = Path("qf_inf_col.tsv", "A\ninf\nnan\n1e999\n");
  Result<Relation> r = LoadTsv(path, "r");
  ASSERT_TRUE(r.ok());
  for (const Tuple& t : r->rows()) EXPECT_TRUE(t[0].is_string());
}

TEST_F(TsvTypingTest, BlankHeaderLineIsError) {
  for (const char* content : {"\n1\t2\n", "   \n1\t2\n", "\r\n", "\r\n\r\n"}) {
    std::string path = Path("qf_blank_header.tsv", content);
    Result<Relation> r = LoadTsv(path, "r");
    ASSERT_FALSE(r.ok()) << "content: " << content;
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(r.status().message().find("header"), std::string::npos);
  }
}

TEST_F(TsvTypingTest, EmptyColumnNameIsError) {
  std::string path = Path("qf_empty_col_name.tsv", "A\t\tB\n1\t2\t3\n");
  Result<Relation> r = LoadTsv(path, "r");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("column name"), std::string::npos);
}

// A header with no trailing newline is a legal, empty relation — the
// last-line parse used to depend on the trailing '\n'.
TEST_F(TsvTypingTest, HeaderOnlyWithoutTrailingNewlineLoads) {
  std::string path = Path("qf_header_only.tsv", "A\tB");
  Result<Relation> r = LoadTsv(path, "r");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->arity(), 2u);
  EXPECT_EQ(r->size(), 0u);
}

TEST_F(TsvTypingTest, LastRowWithoutTrailingNewlineLoads) {
  std::string path = Path("qf_no_trailing_nl.tsv", "A\tB\n1\tx\n2\ty");
  Result<Relation> r = LoadTsv(path, "r");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 2u);
  EXPECT_TRUE(r->Contains({Value(2), Value("y")}));
}

// Store -> Load property: randomized relations with kind-consistent
// columns (the TSV format is untyped text, so a column whose every field
// parses numeric cannot round-trip as strings) must reload with the exact
// same schema, rows, and Value kinds. Covers negative numbers, tab-
// adjacent empty strings, and int64 extremes.
TEST_F(TsvTypingTest, StoreLoadRoundTripProperty) {
  Rng rng(20260806);
  for (int iter = 0; iter < 25; ++iter) {
    std::size_t n_cols = 1 + rng.NextBelow(4);
    std::vector<int> kinds;  // 0 = int, 1 = double, 2 = string
    std::vector<std::string> names;
    for (std::size_t c = 0; c < n_cols; ++c) {
      kinds.push_back(static_cast<int>(rng.NextBelow(3)));
      names.push_back("C" + std::to_string(c));
    }
    Relation r("prop", Schema(names));
    std::size_t n_rows = 1 + rng.NextBelow(40);
    for (std::size_t i = 0; i < n_rows; ++i) {
      Tuple t;
      for (std::size_t c = 0; c < n_cols; ++c) {
        switch (kinds[c]) {
          case 0: {
            // Mix extremes with small signed values.
            std::uint64_t pick = rng.NextBelow(10);
            if (pick == 0) {
              t.push_back(Value(std::int64_t{9223372036854775807LL}));
            } else if (pick == 1) {
              t.push_back(Value(std::int64_t{-9223372036854775807LL - 1}));
            } else {
              t.push_back(Value(static_cast<std::int64_t>(rng.NextBelow(200)) -
                                100));
            }
            break;
          }
          case 1:
            // Multiples of 0.25 print exactly under the %g-style
            // formatter and reparse to the same double.
            t.push_back(
                Value((static_cast<double>(rng.NextBelow(800)) - 400) / 4.0));
            break;
          default: {
            // Guaranteed non-numeric via the letter prefix; sometimes the
            // empty string, which lands tab-adjacent in the file.
            std::uint64_t pick = rng.NextBelow(8);
            if (pick == 0) {
              t.push_back(Value(""));
            } else {
              t.push_back(Value("s" + std::to_string(rng.NextBelow(50))));
            }
            break;
          }
        }
      }
      // A row whose every field is the empty string would serialize as a
      // whitespace-only line, which the loader rightly skips; keep at
      // least one visible field.
      bool all_empty = true;
      for (const Value& v : t) {
        if (!v.is_string() || !v.AsString().empty()) {
          all_empty = false;
          break;
        }
      }
      if (all_empty) t[0] = Value("nonempty");
      r.Add(std::move(t));
    }
    // A fully-empty or all-numeric-looking string column cannot assert its
    // kind back; pin one definitely-alphabetic witness per string column.
    for (std::size_t c = 0; c < n_cols; ++c) {
      if (kinds[c] == 2) {
        Tuple witness;
        for (std::size_t k = 0; k < n_cols; ++k) {
          switch (kinds[k]) {
            case 0:
              witness.push_back(Value(std::int64_t{0}));
              break;
            case 1:
              witness.push_back(Value(0.25));
              break;
            default:
              witness.push_back(Value("witness"));
              break;
          }
        }
        r.Add(std::move(witness));
        break;
      }
    }
    r.Dedup();

    std::string path = Path("qf_roundtrip_prop_" + std::to_string(iter) +
                            ".tsv", "");
    ASSERT_TRUE(StoreTsv(r, path).ok());
    Result<Relation> loaded = LoadTsv(path, "prop");
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

    Relation expected = r;
    expected.SortRows();
    loaded->SortRows();
    ASSERT_EQ(expected.schema(), loaded->schema()) << "iter=" << iter;
    ASSERT_EQ(expected.rows(), loaded->rows()) << "iter=" << iter;
    for (const Tuple& t : loaded->rows()) {
      for (std::size_t c = 0; c < n_cols; ++c) {
        EXPECT_EQ(static_cast<int>(t[c].kind()), kinds[c])
            << "iter=" << iter << " col=" << c << " value=" << t[c].ToString();
      }
    }
  }
}

}  // namespace
}  // namespace qf

