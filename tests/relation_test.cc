// Unit tests for Schema, Tuple helpers, Relation, Database, and TSV IO.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "relational/database.h"
#include "relational/relation.h"
#include "relational/tsv.h"

namespace qf {
namespace {

TEST(SchemaTest, BasicLookup) {
  Schema s({"A", "B", "C"});
  EXPECT_EQ(s.arity(), 3u);
  EXPECT_EQ(s.IndexOfOrDie("B"), 1u);
  EXPECT_FALSE(s.IndexOf("Z").has_value());
  EXPECT_TRUE(s.Contains("C"));
  EXPECT_EQ(s.ToString(), "(A, B, C)");
}

TEST(SchemaTest, Equality) {
  EXPECT_EQ(Schema({"A", "B"}), Schema({"A", "B"}));
  EXPECT_FALSE(Schema({"A", "B"}) == Schema({"B", "A"}));
}

TEST(TupleTest, ProjectTuple) {
  Tuple t = {Value(1), Value(2), Value(3)};
  Tuple p = ProjectTuple(t, {2, 0});
  ASSERT_EQ(p.size(), 2u);
  EXPECT_EQ(p[0], Value(3));
  EXPECT_EQ(p[1], Value(1));
}

TEST(TupleTest, HashConsistent) {
  Tuple a = {Value(1), Value("x")};
  Tuple b = {Value(1), Value("x")};
  EXPECT_EQ(TupleHash{}(a), TupleHash{}(b));
}

TEST(TupleTest, ToString) {
  Tuple t = {Value(1), Value("x")};
  EXPECT_EQ(TupleToString(t), "(1, x)");
}

TEST(RelationTest, AddAndSize) {
  Relation r("test", Schema({"A", "B"}));
  r.AddRow({Value(1), Value(2)});
  r.AddRow({Value(1), Value(2)});
  EXPECT_EQ(r.size(), 2u);
  r.Dedup();
  EXPECT_EQ(r.size(), 1u);
}

TEST(RelationTest, DedupPreservesDistinctRows) {
  Relation r(Schema({"A"}));
  for (int i = 0; i < 10; ++i) {
    r.AddRow({Value(i % 3)});
  }
  r.Dedup();
  EXPECT_EQ(r.size(), 3u);
  EXPECT_TRUE(r.Contains({Value(0)}));
  EXPECT_TRUE(r.Contains({Value(1)}));
  EXPECT_TRUE(r.Contains({Value(2)}));
}

TEST(RelationTest, SortRowsIsDeterministic) {
  Relation r(Schema({"A"}));
  r.AddRow({Value(3)});
  r.AddRow({Value(1)});
  r.AddRow({Value(2)});
  r.SortRows();
  EXPECT_EQ(r.rows()[0][0], Value(1));
  EXPECT_EQ(r.rows()[2][0], Value(3));
}

TEST(RelationTest, ToStringTruncates) {
  Relation r("r", Schema({"A"}));
  for (int i = 0; i < 30; ++i) r.AddRow({Value(i)});
  std::string s = r.ToString(5);
  EXPECT_NE(s.find("[30 rows]"), std::string::npos);
  EXPECT_NE(s.find("25 more"), std::string::npos);
}

TEST(DatabaseTest, AddAndGet) {
  Database db;
  Relation r("baskets", Schema({"BID", "Item"}));
  r.AddRow({Value(1), Value("beer")});
  ASSERT_TRUE(db.AddRelation(r).ok());
  EXPECT_TRUE(db.Has("baskets"));
  EXPECT_EQ(db.Get("baskets").size(), 1u);
}

TEST(DatabaseTest, RejectsUnnamed) {
  Database db;
  EXPECT_FALSE(db.AddRelation(Relation(Schema({"A"}))).ok());
}

TEST(DatabaseTest, RejectsDuplicate) {
  Database db;
  ASSERT_TRUE(db.AddRelation(Relation("r", Schema({"A"}))).ok());
  Status s = db.AddRelation(Relation("r", Schema({"A"})));
  EXPECT_EQ(s.code(), StatusCode::kAlreadyExists);
}

TEST(DatabaseTest, PutReplaces) {
  Database db;
  Relation r1("r", Schema({"A"}));
  r1.AddRow({Value(1)});
  db.PutRelation(r1);
  Relation r2("r", Schema({"A"}));
  db.PutRelation(r2);
  EXPECT_EQ(db.Get("r").size(), 0u);
}

TEST(DatabaseTest, NamesSorted) {
  Database db;
  db.PutRelation(Relation("zeta", Schema({"A"})));
  db.PutRelation(Relation("alpha", Schema({"A"})));
  std::vector<std::string> names = db.Names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "alpha");
  EXPECT_EQ(names[1], "zeta");
}

class TsvTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& name) {
    return (std::filesystem::temp_directory_path() / name).string();
  }
};

TEST_F(TsvTest, RoundTrip) {
  Relation r("mixed", Schema({"Id", "Weight", "Label"}));
  r.AddRow({Value(1), Value(2.5), Value("alpha")});
  r.AddRow({Value(2), Value(-1.0), Value("beta gamma")});
  std::string path = TempPath("qf_tsv_roundtrip.tsv");
  ASSERT_TRUE(StoreTsv(r, path).ok());

  Result<Relation> loaded = LoadTsv(path, "mixed");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->schema(), r.schema());
  EXPECT_EQ(loaded->size(), 2u);
  EXPECT_TRUE(loaded->Contains({Value(1), Value(2.5), Value("alpha")}));
  EXPECT_TRUE(loaded->Contains({Value(2), Value(-1.0), Value("beta gamma")}));
  std::remove(path.c_str());
}

TEST_F(TsvTest, DedupsOnLoad) {
  std::string path = TempPath("qf_tsv_dedup.tsv");
  {
    std::ofstream out(path);
    out << "A\tB\n1\tx\n1\tx\n2\ty\n";
  }
  Result<Relation> loaded = LoadTsv(path, "r");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 2u);
  std::remove(path.c_str());
}

TEST_F(TsvTest, RejectsRaggedRows) {
  std::string path = TempPath("qf_tsv_ragged.tsv");
  {
    std::ofstream out(path);
    out << "A\tB\n1\n";
  }
  EXPECT_FALSE(LoadTsv(path, "r").ok());
  std::remove(path.c_str());
}

TEST_F(TsvTest, DatabaseRoundTrip) {
  Database db;
  Relation a("alpha", Schema({"X", "Y"}));
  a.AddRow({Value(1), Value("one")});
  a.AddRow({Value(2), Value("two")});
  db.PutRelation(a);
  Relation b("beta", Schema({"K"}));
  b.AddRow({Value(3.5)});
  db.PutRelation(b);

  std::string dir = TempPath("qf_db_roundtrip");
  ASSERT_TRUE(StoreDatabase(db, dir).ok());
  Result<Database> loaded = LoadDatabase(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->Names(), db.Names());
  EXPECT_EQ(loaded->Get("alpha").size(), 2u);
  EXPECT_TRUE(loaded->Get("alpha").Contains({Value(1), Value("one")}));
  EXPECT_TRUE(loaded->Get("beta").Contains({Value(3.5)}));
  std::filesystem::remove_all(dir);
}

TEST_F(TsvTest, LoadDatabaseWithoutManifestFails) {
  EXPECT_EQ(LoadDatabase("/nonexistent/qf_db").status().code(),
            StatusCode::kNotFound);
}

TEST_F(TsvTest, MissingFileIsNotFound) {
  Result<Relation> r = LoadTsv("/nonexistent/definitely/missing.tsv", "r");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace qf
