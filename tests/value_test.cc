// Unit tests for Value: kinds, ordering, hashing, printing.
#include <gtest/gtest.h>

#include "relational/value.h"

namespace qf {
namespace {

TEST(ValueTest, DefaultIsIntZero) {
  Value v;
  EXPECT_TRUE(v.is_int());
  EXPECT_EQ(v.AsInt(), 0);
}

TEST(ValueTest, Kinds) {
  EXPECT_TRUE(Value(std::int64_t{5}).is_int());
  EXPECT_TRUE(Value(2.5).is_double());
  EXPECT_TRUE(Value("beer").is_string());
}

TEST(ValueTest, EqualitySameKind) {
  EXPECT_EQ(Value(3), Value(3));
  EXPECT_NE(Value(3), Value(4));
  EXPECT_EQ(Value("a"), Value("a"));
  EXPECT_NE(Value("a"), Value("b"));
}

TEST(ValueTest, KindsNeverEqual) {
  EXPECT_NE(Value(3), Value(3.0));
  EXPECT_NE(Value(3), Value("3"));
}

TEST(ValueTest, OrderingWithinKind) {
  EXPECT_LT(Value(1), Value(2));
  EXPECT_LT(Value(1.5), Value(2.5));
  EXPECT_LT(Value("apple"), Value("banana"));
}

TEST(ValueTest, LexicographicStrings) {
  // The paper's "$1 < $2" uses lexicographic order for items/words.
  EXPECT_LT(Value("beer"), Value("diapers"));
  EXPECT_LT(Value("Beer"), Value("beer"));  // ASCII order
}

TEST(ValueTest, KindMajorOrdering) {
  EXPECT_LT(Value(100), Value(0.5));      // int < double
  EXPECT_LT(Value(3.14), Value("aaaa"));  // double < string
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value(7).Hash(), Value(7).Hash());
  EXPECT_EQ(Value("xyz").Hash(), Value("xyz").Hash());
  EXPECT_EQ(Value(0.0).Hash(), Value(-0.0).Hash());
}

TEST(ValueTest, HashSpreads) {
  // Different small ints should not all collide.
  std::set<std::size_t> hashes;
  for (int i = 0; i < 100; ++i) hashes.insert(Value(i).Hash());
  EXPECT_GT(hashes.size(), 95u);
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value(42).ToString(), "42");
  EXPECT_EQ(Value(-1).ToString(), "-1");
  EXPECT_EQ(Value("hi").ToString(), "hi");
  EXPECT_EQ(Value(2.5).ToString(), "2.5");
}

TEST(ValueTest, AsNumberWidensInt) {
  EXPECT_DOUBLE_EQ(Value(3).AsNumber(), 3.0);
  EXPECT_DOUBLE_EQ(Value(3.5).AsNumber(), 3.5);
  EXPECT_FALSE(Value("x").IsNumeric());
}

}  // namespace
}  // namespace qf
