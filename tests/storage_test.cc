// Unit tests for the durability stack: CRC32C, binary serialization
// (roundtrip + corrupt-input safety), MemVfs crash semantics, atomic
// writes under injected faults, WAL torn-tail truncation, and the
// Catalog's commit/checkpoint/recovery/latch behavior.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/crc32c.h"
#include "common/resource.h"
#include "common/status.h"
#include "common/vfs.h"
#include "relational/relation.h"
#include "relational/serialize.h"
#include "relational/tsv.h"
#include "storage/catalog.h"
#include "storage/wal.h"

namespace qf {
namespace {

// ---------------------------------------------------------------- CRC32C

TEST(Crc32cTest, KnownVectors) {
  // RFC 3720 / LevelDB test vectors for CRC32C (Castagnoli).
  EXPECT_EQ(Crc32c(""), 0x00000000u);
  EXPECT_EQ(Crc32c("a"), 0xC1D04330u);
  EXPECT_EQ(Crc32c("123456789"), 0xE3069283u);
  std::string zeros(32, '\0');
  EXPECT_EQ(Crc32c(zeros), 0x8A9136AAu);
}

TEST(Crc32cTest, ExtendMatchesOneShot) {
  std::string data = "hello world, flocks";
  std::uint32_t whole = Crc32c(data);
  std::uint32_t split = Crc32cExtend(Crc32cExtend(0, data.substr(0, 7)),
                                     data.substr(7));
  EXPECT_EQ(whole, split);
}

TEST(Crc32cTest, MaskRoundTripsAndDiffers) {
  std::uint32_t crc = Crc32c("payload");
  EXPECT_NE(Crc32cMask(crc), crc);
  EXPECT_EQ(Crc32cUnmask(Crc32cMask(crc)), crc);
}

// ----------------------------------------------------------- serialize

Relation SampleRelation() {
  Relation r("sample", Schema({"A", "B", "C"}));
  r.AddRow({Value(1), Value("x"), Value(1.5)});
  r.AddRow({Value(2), Value("y"), Value(-2.25)});
  r.AddRow({Value(-7), Value(""), Value(0.0)});
  return r;
}

TEST(SerializeTest, RelationRoundTrip) {
  Relation original = SampleRelation();
  std::string bytes;
  ASSERT_TRUE(EncodeRelation(original, bytes).ok());
  ByteReader in(bytes);
  Result<Relation> decoded = DecodeRelation(in);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(in.AtEnd());
  // Deterministic: re-encoding yields identical bytes.
  std::string again;
  ASSERT_TRUE(EncodeRelation(*decoded, again).ok());
  EXPECT_EQ(bytes, again);
  EXPECT_EQ(decoded->name(), "sample");
  EXPECT_EQ(decoded->size(), 3u);
  EXPECT_TRUE(decoded->Contains({Value(2), Value("y"), Value(-2.25)}));
}

TEST(SerializeTest, EveryTruncationFailsCleanly) {
  std::string bytes;
  ASSERT_TRUE(EncodeRelation(SampleRelation(), bytes).ok());
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    ByteReader in(std::string_view(bytes).substr(0, len));
    Result<Relation> decoded = DecodeRelation(in);
    EXPECT_FALSE(decoded.ok()) << "prefix length " << len;
  }
}

TEST(SerializeTest, EverySingleBitFlipIsSafe) {
  // Decoding must never crash or hang, whatever a bit flip produces.
  // (Some flips still decode — e.g. a flipped value payload bit — so
  // only absence of UB/aborts is asserted, not failure.)
  std::string bytes;
  ASSERT_TRUE(EncodeRelation(SampleRelation(), bytes).ok());
  for (std::size_t bit = 0; bit < bytes.size() * 8; ++bit) {
    std::string mutated = bytes;
    mutated[bit / 8] = static_cast<char>(mutated[bit / 8] ^ (1u << (bit % 8)));
    ByteReader in(mutated);
    Result<Relation> decoded = DecodeRelation(in);
    if (!decoded.ok()) {
      EXPECT_EQ(decoded.status().code(), StatusCode::kCorruptWal)
          << "bit " << bit;
    }
  }
}

TEST(SerializeTest, HugeRowCountIsRejectedNotLooped) {
  std::string bytes;
  PutString(bytes, "evil");
  PutU32(bytes, 1);  // arity
  PutString(bytes, "A");
  PutU64(bytes, 0x0FFFFFFFFFFFFFFFull);  // absurd row count, no payload
  ByteReader in(bytes);
  Result<Relation> decoded = DecodeRelation(in);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kCorruptWal);
}

TEST(SerializeTest, CatalogStateRoundTripIsBitIdentical) {
  CatalogState state;
  state.db.PutRelation(SampleRelation());
  Relation other("zeta", Schema({"K"}));
  other.AddRow({Value(9)});
  state.db.PutRelation(std::move(other));
  state.rules = {"P(X) :- E(X, Y)"};
  state.flocks["f"] = "QUERY ... FILTER COUNT >= 2";
  state.knobs["THREADS"] = 4;
  Result<std::string> bytes = EncodeCatalogState(state);
  ASSERT_TRUE(bytes.ok());
  Result<CatalogState> decoded = DecodeCatalogState(*bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  Result<std::string> again = EncodeCatalogState(*decoded);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*bytes, *again);
  EXPECT_EQ(decoded->rules, state.rules);
  EXPECT_EQ(decoded->flocks, state.flocks);
  EXPECT_EQ(decoded->knobs, state.knobs);
}

// ---------------------------------------------------------------- MemVfs

Status WriteWhole(Vfs& vfs, const std::string& path, std::string_view data,
                  bool sync) {
  Result<std::unique_ptr<WritableFile>> f = vfs.OpenTrunc(path);
  if (!f.ok()) return f.status();
  if (Status s = (*f)->Append(data); !s.ok()) return s;
  if (sync) {
    if (Status s = (*f)->Sync(); !s.ok()) return s;
  }
  return (*f)->Close();
}

TEST(MemVfsTest, UnsyncedContentIsLostOnCrash) {
  MemVfs vfs;
  ASSERT_TRUE(WriteWhole(vfs, "f", "durable", true).ok());
  ASSERT_TRUE(vfs.SyncDir(".").ok());
  Result<std::unique_ptr<WritableFile>> f = vfs.OpenAppend("f");
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE((*f)->Append(" lost").ok());  // no Sync
  vfs.Crash();
  Result<std::string> data = vfs.ReadFile("f");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, "durable");
}

TEST(MemVfsTest, UnsyncedDirectoryEntryVanishesOnCrash) {
  MemVfs vfs;
  ASSERT_TRUE(WriteWhole(vfs, "new_file", "abc", true).ok());
  // File content synced but the directory entry never was.
  vfs.Crash();
  EXPECT_FALSE(vfs.Exists("new_file"));
}

TEST(MemVfsTest, SyncedRenameSurvivesCrashUnsyncedDoesNot) {
  MemVfs vfs;
  ASSERT_TRUE(WriteWhole(vfs, "a", "A", true).ok());
  ASSERT_TRUE(vfs.SyncDir(".").ok());
  ASSERT_TRUE(vfs.Rename("a", "b").ok());
  vfs.Crash();  // rename not SyncDir'ed: rolls back
  EXPECT_TRUE(vfs.Exists("a"));
  EXPECT_FALSE(vfs.Exists("b"));

  ASSERT_TRUE(vfs.Rename("a", "b").ok());
  ASSERT_TRUE(vfs.SyncDir(".").ok());
  vfs.Crash();
  EXPECT_FALSE(vfs.Exists("a"));
  ASSERT_TRUE(vfs.Exists("b"));
  EXPECT_EQ(*vfs.ReadFile("b"), "A");
}

TEST(MemVfsTest, StaleHandlesFailAfterCrash) {
  MemVfs vfs;
  Result<std::unique_ptr<WritableFile>> f = vfs.OpenTrunc("f");
  ASSERT_TRUE(f.ok());
  vfs.Crash();
  EXPECT_EQ((*f)->Append("x").code(), StatusCode::kIoError);
}

TEST(MemVfsTest, InPlaceTruncationOfDurableFileIsDurableAtCrash) {
  MemVfs vfs;
  ASSERT_TRUE(WriteWhole(vfs, "f", "old-durable", true).ok());
  ASSERT_TRUE(vfs.SyncDir(".").ok());
  // POSIX may persist the O_TRUNC before the rewrite syncs; the model is
  // adversarial, so a crash in that window yields an EMPTY file — the
  // old bytes are gone and the new ones never landed.
  Result<std::unique_ptr<WritableFile>> f = vfs.OpenTrunc("f");
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE((*f)->Append("new-unsynced").ok());
  vfs.Crash();
  Result<std::string> data = vfs.ReadFile("f");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, "");
}

TEST(MemVfsTest, MissingFileIsNotFound) {
  MemVfs vfs;
  EXPECT_EQ(vfs.ReadFile("nope").status().code(), StatusCode::kNotFound);
}

// --------------------------------------------------- atomic whole-file IO

TEST(AtomicWriteTest, EnospcNeverLeavesTruncatedDestination) {
  MemVfs base;
  ASSERT_TRUE(AtomicWriteFile(base, "data.tsv", "old content").ok());
  // Sweep the injected failure over every mutating op of the rewrite.
  for (std::uint64_t fail_at = 1;; ++fail_at) {
    FaultVfs vfs(base);
    FaultPlan plan;
    plan.fail_at_op = fail_at;
    vfs.set_plan(plan);
    Status s = AtomicWriteFile(vfs, "data.tsv", "new content, longer");
    Result<std::string> after = base.ReadFile("data.tsv");
    ASSERT_TRUE(after.ok());
    if (s.ok()) {
      // The plan's op index lies beyond the workload: sweep complete.
      EXPECT_EQ(*after, "new content, longer");
      EXPECT_LT(vfs.op_count(), fail_at);
      break;
    }
    EXPECT_EQ(s.code(), StatusCode::kIoError);
    // Never torn: the destination is the old content or the complete new
    // content (a dir fsync failing *after* the rename reports an error
    // even though the rename itself landed).
    EXPECT_TRUE(*after == "old content" || *after == "new content, longer")
        << "fail_at " << fail_at << ": got \"" << *after << "\"";
    // Restore for the next iteration (the temp may or may not linger;
    // AtomicWriteFile must cope either way).
    ASSERT_TRUE(AtomicWriteFile(base, "data.tsv", "old content").ok());
  }
}

TEST(AtomicStoreTsvTest, FaultsNeverTruncateAndErrorsAreTyped) {
  Relation rel = SampleRelation();
  MemVfs base;
  ASSERT_TRUE(StoreTsv(rel, "rel.tsv", &base).ok());
  Result<std::string> good = base.ReadFile("rel.tsv");
  ASSERT_TRUE(good.ok());
  for (std::uint64_t fail_at = 1; fail_at <= 8; ++fail_at) {
    FaultVfs vfs(base);
    FaultPlan plan;
    plan.fail_at_op = fail_at;
    plan.fail_enospc = true;
    vfs.set_plan(plan);
    Status s = StoreTsv(rel, "rel.tsv", &vfs);
    Result<std::string> after = base.ReadFile("rel.tsv");
    ASSERT_TRUE(after.ok());
    EXPECT_EQ(*after, *good) << "fail_at " << fail_at;
    if (!s.ok()) EXPECT_EQ(s.code(), StatusCode::kIoError);
  }
}

TEST(LoadTsvTest, MalformedRowReportsLineAndByteOffset) {
  MemVfs vfs;
  // Row 3 (byte offset 8) has the wrong column count.
  ASSERT_TRUE(AtomicWriteFile(vfs, "bad.tsv", "A\tB\n1\t2\n3\n4\t5\n").ok());
  Result<Relation> rel = LoadTsv("bad.tsv", "bad", &vfs);
  ASSERT_FALSE(rel.ok());
  EXPECT_NE(rel.status().message().find("bad.tsv:3:"), std::string::npos)
      << rel.status().ToString();
  EXPECT_NE(rel.status().message().find("byte offset 8"), std::string::npos)
      << rel.status().ToString();
}

// ------------------------------------------------------------------- WAL

TEST(WalTest, TornTailIsTruncatedWholeFramesSurvive) {
  std::string log;
  AppendWalFrame(log, "first");
  AppendWalFrame(log, "second");
  std::string frame3;
  AppendWalFrame(frame3, "third-never-finished");
  // Append only part of the third frame: a torn write.
  log += frame3.substr(0, frame3.size() - 5);
  WalReadResult parsed = ParseWal(log);
  ASSERT_EQ(parsed.payloads.size(), 2u);
  EXPECT_EQ(parsed.payloads[0], "first");
  EXPECT_EQ(parsed.payloads[1], "second");
  EXPECT_EQ(parsed.dropped_bytes, frame3.size() - 5);
}

TEST(WalTest, CorruptMiddleRecordDropsItAndEverythingAfter) {
  std::string log;
  AppendWalFrame(log, "aaaa");
  std::size_t second_start = log.size();
  AppendWalFrame(log, "bbbb");
  AppendWalFrame(log, "cccc");
  log[second_start + 9] ^= 0x40;  // flip a payload bit of record 2
  WalReadResult parsed = ParseWal(log);
  ASSERT_EQ(parsed.payloads.size(), 1u);
  EXPECT_EQ(parsed.payloads[0], "aaaa");
  EXPECT_EQ(parsed.valid_bytes, second_start);
}

TEST(WalTest, GarbageLogIsEmptyNotFatal) {
  WalReadResult parsed = ParseWal("not a wal at all, just text bytes");
  EXPECT_TRUE(parsed.payloads.empty());
  EXPECT_GT(parsed.dropped_bytes, 0u);
}

// --------------------------------------------------------------- Catalog

std::string StateBytes(const Catalog& catalog) {
  Result<std::string> bytes = EncodeCatalogState(catalog.state());
  EXPECT_TRUE(bytes.ok());
  return bytes.ok() ? *bytes : std::string();
}

TEST(CatalogTest, CommitsSurviveReopen) {
  MemVfs vfs;
  Result<std::unique_ptr<Catalog>> cat = Catalog::Open(vfs, "cat");
  ASSERT_TRUE(cat.ok()) << cat.status().ToString();
  ASSERT_TRUE((*cat)->PutRelation(SampleRelation()).ok());
  ASSERT_TRUE((*cat)->DefineRule("P(X) :- E(X, Y)").ok());
  ASSERT_TRUE((*cat)->PutFlock("f", "QUERY ... FILTER COUNT >= 2").ok());
  ASSERT_TRUE((*cat)->SetKnob("THREADS", 4).ok());
  std::string acked = StateBytes(**cat);

  vfs.Crash();  // commits fsync, so everything acknowledged survives
  Result<std::unique_ptr<Catalog>> reopened = Catalog::Open(vfs, "cat");
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(StateBytes(**reopened), acked);
  EXPECT_EQ((*reopened)->open_info().replayed_records, 4u);
  EXPECT_FALSE((*reopened)->open_info().snapshot_loaded);
}

TEST(CatalogTest, CheckpointShrinksWalAndPreservesState) {
  MemVfs vfs;
  Result<std::unique_ptr<Catalog>> cat = Catalog::Open(vfs, "cat");
  ASSERT_TRUE(cat.ok());
  ASSERT_TRUE((*cat)->PutRelation(SampleRelation()).ok());
  ASSERT_TRUE((*cat)->SetKnob("THREADS", 2).ok());
  std::string acked = StateBytes(**cat);
  ASSERT_TRUE((*cat)->Checkpoint().ok());
  EXPECT_EQ((*cat)->stats().snapshots, 1u);
  Result<std::string> wal = vfs.ReadFile("cat/catalog.wal");
  ASSERT_TRUE(wal.ok());
  EXPECT_TRUE(wal->empty());

  vfs.Crash();
  Result<std::unique_ptr<Catalog>> reopened = Catalog::Open(vfs, "cat");
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(StateBytes(**reopened), acked);
  EXPECT_TRUE((*reopened)->open_info().snapshot_loaded);
  EXPECT_EQ((*reopened)->open_info().replayed_records, 0u);
}

TEST(CatalogTest, CommitsAfterCheckpointReplayOnTop) {
  MemVfs vfs;
  Result<std::unique_ptr<Catalog>> cat = Catalog::Open(vfs, "cat");
  ASSERT_TRUE(cat.ok());
  ASSERT_TRUE((*cat)->SetKnob("A", 1).ok());
  ASSERT_TRUE((*cat)->Checkpoint().ok());
  ASSERT_TRUE((*cat)->SetKnob("B", 2).ok());
  std::string acked = StateBytes(**cat);
  vfs.Crash();
  Result<std::unique_ptr<Catalog>> reopened = Catalog::Open(vfs, "cat");
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(StateBytes(**reopened), acked);
  EXPECT_TRUE((*reopened)->open_info().snapshot_loaded);
  EXPECT_EQ((*reopened)->open_info().replayed_records, 1u);
}

TEST(CatalogTest, TornWalTailIsDroppedOnReopen) {
  MemVfs vfs;
  {
    Result<std::unique_ptr<Catalog>> cat = Catalog::Open(vfs, "cat");
    ASSERT_TRUE(cat.ok());
    ASSERT_TRUE((*cat)->SetKnob("A", 1).ok());
  }
  // Simulate a torn final record by appending garbage (synced, so it
  // survives the crash and recovery must actively drop it).
  {
    Result<std::unique_ptr<WritableFile>> f = vfs.OpenAppend("cat/catalog.wal");
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE((*f)->Append("\x40\x00\x00\x00garbage").ok());
    ASSERT_TRUE((*f)->Sync().ok());
  }
  Result<std::unique_ptr<Catalog>> reopened = Catalog::Open(vfs, "cat");
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->open_info().replayed_records, 1u);
  EXPECT_GT((*reopened)->open_info().truncated_bytes, 0u);
  // The file was rewritten to the valid prefix; appends work again.
  ASSERT_TRUE((*reopened)->SetKnob("B", 2).ok());
  std::string acked = StateBytes(**reopened);
  Result<std::unique_ptr<Catalog>> again = Catalog::Open(vfs, "cat");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(StateBytes(**again), acked);
}

TEST(CatalogTest, CorruptSnapshotIsATypedError) {
  MemVfs vfs;
  {
    Result<std::unique_ptr<Catalog>> cat = Catalog::Open(vfs, "cat");
    ASSERT_TRUE(cat.ok());
    ASSERT_TRUE((*cat)->SetKnob("A", 1).ok());
    ASSERT_TRUE((*cat)->Checkpoint().ok());
  }
  Result<std::string> snap = vfs.ReadFile("cat/catalog.snap");
  ASSERT_TRUE(snap.ok());
  std::string mutated = *snap;
  mutated[mutated.size() / 2] ^= 0x01;
  ASSERT_TRUE(AtomicWriteFile(vfs, "cat/catalog.snap", mutated).ok());
  Result<std::unique_ptr<Catalog>> reopened = Catalog::Open(vfs, "cat");
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kCorruptWal);
}

TEST(CatalogTest, IoErrorLatchesTheCatalogReadOnly) {
  MemVfs base;
  FaultVfs vfs(base);
  Result<std::unique_ptr<Catalog>> cat = Catalog::Open(vfs, "cat");
  ASSERT_TRUE(cat.ok());
  ASSERT_TRUE((*cat)->SetKnob("A", 1).ok());
  FaultPlan plan;
  plan.fail_at_op = vfs.op_count() + 1;  // next mutating op fails
  vfs.set_plan(plan);
  Status failed = (*cat)->SetKnob("B", 2);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.code(), StatusCode::kIoError);
  // Latched: even though the fault was one-shot, mutations stay refused.
  Status after = (*cat)->SetKnob("C", 3);
  EXPECT_EQ(after.code(), StatusCode::kIoError);
  EXPECT_FALSE((*cat)->Healthy().ok());
  // Reopening recovers the acknowledged prefix.
  Result<std::unique_ptr<Catalog>> reopened = Catalog::Open(base, "cat");
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->state().knobs.count("A"), 1u);
  EXPECT_EQ((*reopened)->state().knobs.count("C"), 0u);
}

TEST(CatalogTest, SnapshotWriteFailureDoesNotLatchTheCatalog) {
  MemVfs base;
  FaultVfs vfs(base);
  Result<std::unique_ptr<Catalog>> cat = Catalog::Open(vfs, "cat");
  ASSERT_TRUE(cat.ok());
  ASSERT_TRUE((*cat)->SetKnob("A", 1).ok());
  FaultPlan plan;
  plan.fail_at_op = vfs.op_count() + 1;  // first op of the rotation
  vfs.set_plan(plan);
  Status failed = (*cat)->Checkpoint();
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.code(), StatusCode::kIoError);
  // A failed rotation leaves the old snapshot and the whole WAL intact:
  // the catalog stays writable and the checkpoint is retryable.
  EXPECT_TRUE((*cat)->Healthy().ok());
  ASSERT_TRUE((*cat)->SetKnob("B", 2).ok());
  ASSERT_TRUE((*cat)->Checkpoint().ok());
  base.Crash();
  Result<std::unique_ptr<Catalog>> reopened = Catalog::Open(base, "cat");
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->state().knobs.count("A"), 1u);
  EXPECT_EQ((*reopened)->state().knobs.count("B"), 1u);
}

// Builds a catalog with two acknowledged commits and a synced garbage
// tail on the WAL, so the next Open must rewrite the log to its valid
// prefix — the recovery path the crash sweep below aims at.
void BuildTornWalCatalog(MemVfs& vfs) {
  {
    Result<std::unique_ptr<Catalog>> cat = Catalog::Open(vfs, "cat");
    ASSERT_TRUE(cat.ok()) << cat.status().ToString();
    ASSERT_TRUE((*cat)->SetKnob("A", 1).ok());
    ASSERT_TRUE((*cat)->SetKnob("B", 2).ok());
  }
  Result<std::unique_ptr<WritableFile>> f = vfs.OpenAppend("cat/catalog.wal");
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE((*f)->Append("\x40\x00\x00\x00torn").ok());
  ASSERT_TRUE((*f)->Sync().ok());
}

TEST(CatalogTest, CrashDuringTornTailRewriteKeepsAcknowledgedCommits) {
  // The regression this guards: rewriting the WAL via an in-place
  // truncation opens a window where a crash has durably emptied the log
  // but the valid prefix is not yet rewritten — acknowledged commits
  // gone. The rewrite must be atomic: crash it at every I/O operation
  // and both commits must always survive.
  std::uint64_t total_ops = 0;
  {
    MemVfs base;
    BuildTornWalCatalog(base);
    FaultVfs vfs(base);
    Result<std::unique_ptr<Catalog>> cat = Catalog::Open(vfs, "cat");
    ASSERT_TRUE(cat.ok()) << cat.status().ToString();
    EXPECT_GT((*cat)->open_info().truncated_bytes, 0u);
    total_ops = vfs.op_count();
  }
  ASSERT_GT(total_ops, 0u);
  for (std::uint64_t c = 1; c <= total_ops; ++c) {
    for (bool power_loss : {true, false}) {
      MemVfs base;
      BuildTornWalCatalog(base);
      {
        FaultVfs vfs(base);
        FaultPlan plan;
        plan.crash_at_op = c;
        plan.torn_write_bytes = 2;
        vfs.set_plan(plan);
        Result<std::unique_ptr<Catalog>> cat = Catalog::Open(vfs, "cat");
        EXPECT_FALSE(cat.ok()) << "crash point " << c << " never fired";
      }
      if (power_loss) base.Crash();
      Result<std::unique_ptr<Catalog>> reopened = Catalog::Open(base, "cat");
      ASSERT_TRUE(reopened.ok())
          << "crash at op " << c << ": " << reopened.status().ToString();
      EXPECT_EQ((*reopened)->state().knobs.count("A"), 1u)
          << "crash at op " << c << ", power_loss " << power_loss;
      EXPECT_EQ((*reopened)->state().knobs.count("B"), 1u)
          << "crash at op " << c << ", power_loss " << power_loss;
    }
  }
}

TEST(CatalogTest, BatchCommitIsAllOrNothing) {
  MemVfs vfs;
  Result<std::unique_ptr<Catalog>> cat = Catalog::Open(vfs, "cat");
  ASSERT_TRUE(cat.ok());
  Relation r1("r1", Schema({"A"}));
  r1.AddRow({Value(1)});
  Relation r2("r2", Schema({"B"}));
  r2.AddRow({Value(2)});
  std::uint64_t fsyncs_before = (*cat)->stats().fsyncs;
  ASSERT_TRUE((*cat)->PutRelations({&r1, &r2}).ok());
  EXPECT_EQ((*cat)->stats().fsyncs, fsyncs_before + 1);  // one commit
  vfs.Crash();
  Result<std::unique_ptr<Catalog>> reopened = Catalog::Open(vfs, "cat");
  ASSERT_TRUE(reopened.ok());
  EXPECT_TRUE((*reopened)->state().db.Has("r1"));
  EXPECT_TRUE((*reopened)->state().db.Has("r2"));
}

TEST(CatalogTest, GovernorAbortsSlowRecovery) {
  MemVfs vfs;
  {
    Result<std::unique_ptr<Catalog>> cat = Catalog::Open(vfs, "cat");
    ASSERT_TRUE(cat.ok());
    ASSERT_TRUE((*cat)->SetKnob("A", 1).ok());
  }
  QueryContext ctx;
  ctx.RequestCancel();
  Result<std::unique_ptr<Catalog>> reopened = Catalog::Open(vfs, "cat", &ctx);
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kCancelled);
}

}  // namespace
}  // namespace qf
