// Coverage for less-traveled paths: precomputed plan steps, the greedy
// join-order fallback for wide queries, non-monotone filters through the
// naive oracle, and negation applied mid-fold under explicit join orders.
#include <gtest/gtest.h>

#include "flocks/eval.h"
#include "flocks/naive_eval.h"
#include "optimizer/executor_support.h"
#include "optimizer/join_order.h"
#include "plan/executor.h"
#include "workload/basket_gen.h"

namespace qf {
namespace {

QueryFlock Flock(const char* text, FilterCondition filter) {
  auto f = MakeFlock(text, filter);
  EXPECT_TRUE(f.ok()) << f.status().ToString();
  return *f;
}

TEST(PrecomputedStepsTest, ExecutorUsesGivenRelation) {
  Database db;
  db.PutRelation(GenerateBaskets({.n_baskets = 120, .n_items = 15,
                                  .avg_basket_size = 4, .zipf_theta = 0.7,
                                  .seed = 81}));
  QueryFlock flock =
      Flock("answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2",
            FilterCondition::MinSupport(4));
  auto ok1 =
      MakeFilterStep(flock, "ok1", {"1"}, std::vector<std::size_t>{0});
  ASSERT_TRUE(ok1.ok());
  auto plan = PlanWithPrefilters(flock, {*ok1});
  ASSERT_TRUE(plan.ok());

  // Precompute ok1's answer by evaluating the frequent-items flock.
  QueryFlock items = Flock("answer(B) :- baskets(B,$1)",
                           FilterCondition::MinSupport(4));
  auto survivors = EvaluateFlock(items, db);
  ASSERT_TRUE(survivors.ok());

  std::map<std::string, const Relation*> precomputed = {
      {"ok1", &*survivors}};
  PlanExecOptions options;
  options.order_chooser = CostBasedOrderChooser();
  options.precomputed_steps = &precomputed;
  PlanExecInfo info;
  auto with = ExecutePlan(*plan, flock, db, options, &info);
  ASSERT_TRUE(with.ok()) << with.status().ToString();
  // The step was skipped (no evaluation work recorded) but its survivors
  // were used.
  ASSERT_GE(info.steps.size(), 1u);
  EXPECT_EQ(info.steps[0].step_name, "ok1");
  EXPECT_EQ(info.steps[0].result_rows, survivors->size());
  EXPECT_EQ(info.steps[0].peak_rows, 0u);

  auto without = ExecutePlanOptimized(*plan, flock, db);
  ASSERT_TRUE(without.ok());
  with->SortRows();
  without->SortRows();
  EXPECT_EQ(with->rows(), without->rows());
}

TEST(JoinOrderTest, GreedyFallbackForWideQueries) {
  // 18 positive subgoals exceeds the DP limit; the greedy path must still
  // produce a valid permutation.
  Database db;
  Relation arc("arc", Schema({"S", "T"}));
  arc.AddRow({Value(0), Value(1)});
  db.PutRelation(arc);
  ConjunctiveQuery cq;
  cq.head_vars = {"X0"};
  for (int i = 0; i < 18; ++i) {
    cq.subgoals.push_back(Subgoal::Positive(
        "arc", {Term::Variable("X" + std::to_string(i)),
                Term::Variable("X" + std::to_string(i + 1))}));
  }
  CostModel model(db);
  std::vector<std::size_t> order = ChooseJoinOrder(cq, model);
  ASSERT_EQ(order.size(), 18u);
  std::vector<std::size_t> sorted = order;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < sorted.size(); ++i) EXPECT_EQ(sorted[i], i);
}

TEST(NaiveOracleTest, NonMonotoneCountUpperBound) {
  // "Items in at most 2 baskets" — not monotone, rejected by the direct
  // evaluator, answered by the oracle.
  Database db;
  Relation r("baskets", Schema({"BID", "Item"}));
  for (int b = 0; b < 4; ++b) r.AddRow({Value(b), Value("common")});
  r.AddRow({Value(0), Value("rare")});
  r.AddRow({Value(1), Value("rare")});
  db.PutRelation(std::move(r));

  QueryFlock f = Flock("answer(B) :- baskets(B,$1)",
                       {FilterAgg::kCount, CompareOp::kLe, 2, 0});
  EXPECT_FALSE(EvaluateFlock(f, db).ok());
  auto naive = NaiveEvaluateFlock(f, db);
  ASSERT_TRUE(naive.ok()) << naive.status().ToString();
  ASSERT_EQ(naive->size(), 1u);
  EXPECT_TRUE(naive->Contains({Value("rare")}));
}

TEST(NaiveOracleTest, ExactCountFilter) {
  Database db;
  Relation r("baskets", Schema({"BID", "Item"}));
  for (int b = 0; b < 3; ++b) r.AddRow({Value(b), Value("three")});
  for (int b = 0; b < 2; ++b) r.AddRow({Value(b), Value("two")});
  db.PutRelation(std::move(r));
  QueryFlock f = Flock("answer(B) :- baskets(B,$1)",
                       {FilterAgg::kCount, CompareOp::kEq, 2, 0});
  auto naive = NaiveEvaluateFlock(f, db);
  ASSERT_TRUE(naive.ok());
  ASSERT_EQ(naive->size(), 1u);
  EXPECT_TRUE(naive->Contains({Value("two")}));
}

TEST(JoinOrderInteractionTest, NegationAppliedMidFoldIsCorrect) {
  // With order {q, r}, the negation NOT s(X,Y) becomes applicable after
  // the first join; with order {r, q} after the first leaf. Results must
  // agree either way.
  Database db;
  Relation q("q", Schema({"X", "Y"}));
  Relation r("r", Schema({"Y", "Z"}));
  Relation s("s", Schema({"X", "Y"}));
  for (int i = 0; i < 6; ++i) {
    q.AddRow({Value(i), Value(i % 3)});
    r.AddRow({Value(i % 3), Value(i)});
    if (i % 2 == 0) s.AddRow({Value(i), Value(i % 3)});
  }
  db.PutRelation(q);
  db.PutRelation(r);
  db.PutRelation(s);
  QueryFlock f = Flock(
      "answer(Z) :- q(X,$p) AND r($p,Z) AND NOT s(X,$p)",
      FilterCondition::MinSupport(1));
  FlockEvalOptions forward, backward;
  forward.per_disjunct.push_back({.join_order = {0, 1}});
  backward.per_disjunct.push_back({.join_order = {1, 0}});
  auto a = EvaluateFlock(f, db, forward);
  auto b = EvaluateFlock(f, db, backward);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok());
  a->SortRows();
  b->SortRows();
  EXPECT_EQ(a->rows(), b->rows());
  // And both agree with the oracle.
  auto naive = NaiveEvaluateFlock(f, db);
  ASSERT_TRUE(naive.ok());
  naive->SortRows();
  EXPECT_EQ(a->rows(), naive->rows());
}

}  // namespace
}  // namespace qf
