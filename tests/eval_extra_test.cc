// Additional evaluator coverage: constants in flock queries (§2.1's
// "mention beer explicitly"), multi-variable heads, zero-arity guards,
// COUNT-distinct semantics, trace rendering, and interactions between
// join orders, negation, and extra predicates.
#include <gtest/gtest.h>

#include "flocks/eval.h"
#include "flocks/naive_eval.h"
#include "optimizer/dynamic.h"
#include "relational/ops.h"

namespace qf {
namespace {

QueryFlock Flock(const char* text, FilterCondition filter) {
  auto f = MakeFlock(text, filter);
  EXPECT_TRUE(f.ok()) << f.status().ToString();
  return *f;
}

Database BeerDb() {
  Database db;
  Relation r("baskets", Schema({"BID", "Item"}));
  for (int b = 1; b <= 4; ++b) {
    r.AddRow({Value(b), Value("beer")});
    r.AddRow({Value(b), Value("diapers")});
  }
  r.AddRow({Value(5), Value("beer")});
  r.AddRow({Value(5), Value("wine")});
  r.AddRow({Value(6), Value("wine")});
  r.AddRow({Value(6), Value("diapers")});
  db.PutRelation(std::move(r));
  return db;
}

TEST(EvalExtraTest, ConstantInQueryPinsOneSide) {
  // §2.1: "we would simply ... mention beer explicitly in the query flock,
  // should we require one of the items to be beer."
  Database db = BeerDb();
  QueryFlock f =
      Flock("answer(B) :- baskets(B,'beer') AND baskets(B,$1) AND $1 != "
            "'beer'",
            FilterCondition::MinSupport(2));
  auto result = EvaluateFlock(f, db);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Items co-occurring with beer in >= 2 baskets: diapers (4).
  ASSERT_EQ(result->size(), 1u);
  EXPECT_TRUE(result->Contains({Value("diapers")}));

  auto naive = NaiveEvaluateFlock(f, db);
  ASSERT_TRUE(naive.ok());
  EXPECT_EQ(naive->size(), result->size());
}

TEST(EvalExtraTest, MultiVariableHeadCountsDistinctTuples) {
  // Head (B, Item2): the support counts distinct (basket, item) pairs.
  Database db = BeerDb();
  Relation pairs("pairs_seen", Schema({"BID", "I"}));
  db.PutRelation(pairs);
  QueryFlock f = Flock(
      "answer(B,I) :- baskets(B,$1) AND baskets(B,I) AND $1 != 'nothing'",
      FilterCondition::MinSupport(9));
  auto direct = EvaluateFlock(f, db);
  auto naive = NaiveEvaluateFlock(f, db);
  ASSERT_TRUE(direct.ok());
  ASSERT_TRUE(naive.ok());
  direct->SortRows();
  naive->SortRows();
  EXPECT_EQ(direct->rows(), naive->rows());
  // beer appears in 5 baskets, each with 2 items -> 10 distinct (B,I).
  EXPECT_TRUE(direct->Contains({Value("beer")}));
}

TEST(EvalExtraTest, ZeroArityGuardPredicate) {
  Database db = BeerDb();
  Relation flag_on("flag", Schema(std::vector<std::string>{}));
  flag_on.Add(Tuple{});
  db.PutRelation(flag_on);
  QueryFlock with_guard = Flock("answer(B) :- baskets(B,$1) AND flag()",
                                FilterCondition::MinSupport(4));
  auto result = EvaluateFlock(with_guard, db);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->size(), 2u);  // beer (5), diapers (5)

  // Empty guard kills everything.
  Relation flag_off("flag", Schema(std::vector<std::string>{}));
  db.PutRelation(flag_off);
  auto none = EvaluateFlock(with_guard, db);
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());
}

TEST(EvalExtraTest, SetSemanticsPreventDoubleCounting) {
  // §2.3: "some of our claims would not hold for bag semantics". A basket
  // listing beer twice must count once.
  Database db;
  Relation r("baskets", Schema({"BID", "Item"}));
  r.AddRow({Value(1), Value("beer")});
  r.AddRow({Value(1), Value("beer")});  // duplicate row
  r.AddRow({Value(2), Value("beer")});
  r.Dedup();  // set semantics contract on base data
  db.PutRelation(std::move(r));
  QueryFlock f =
      Flock("answer(B) :- baskets(B,$1)", FilterCondition::MinSupport(2));
  auto result = EvaluateFlock(f, db);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);  // beer in exactly 2 distinct baskets
}

TEST(EvalExtraTest, DynamicTraceRenders) {
  Database db = BeerDb();
  QueryFlock f =
      Flock("answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2",
            FilterCondition::MinSupport(2));
  DynamicLog log;
  auto result = DynamicEvaluate(f, db, {}, &log);
  ASSERT_TRUE(result.ok());
  std::string trace = RenderDynamicTrace(log);
  EXPECT_NE(trace.find("filter"), std::string::npos);
  EXPECT_NE(trace.find("peak intermediate"), std::string::npos);
  EXPECT_NE(trace.find("ratio"), std::string::npos);
}

TEST(EvalExtraTest, ExtraPredicatesComposeWithNegation) {
  Database db = BeerDb();
  Relation banned("banned", Schema({"$1"}));
  banned.AddRow({Value("wine")});
  std::map<std::string, const Relation*> extra = {{"banned", &banned}};
  QueryFlock f = Flock("answer(B) :- baskets(B,$1) AND NOT banned($1)",
                       FilterCondition::MinSupport(1));
  auto result = EvaluateFlock(f, db, {}, &extra);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->Contains({Value("wine")}));
  EXPECT_TRUE(result->Contains({Value("beer")}));
  EXPECT_TRUE(result->Contains({Value("diapers")}));
}

TEST(EvalExtraTest, GtFilterSupportStyle) {
  // COUNT > t (strict) is also support-style and must behave as t+1.
  Database db = BeerDb();
  QueryFlock gt = Flock("answer(B) :- baskets(B,$1)",
                        {FilterAgg::kCount, CompareOp::kGt, 4, 0});
  auto result = EvaluateFlock(gt, db);
  ASSERT_TRUE(result.ok());
  // beer: 5 baskets (>4 passes); diapers: 5; wine: 2.
  EXPECT_EQ(result->size(), 2u);
}

}  // namespace
}  // namespace qf
