// Semantic soundness of containment (§3.1) and of a-priori pruning, tested
// on live data: whenever the machinery *certifies* Q2 ⊆ Q1, the evaluated
// results must actually be contained, for random queries and databases.
// This is the property the whole optimization rests on.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "datalog/containment.h"
#include "datalog/parser.h"
#include "datalog/subquery.h"
#include "flocks/cq_eval.h"
#include "flocks/eval.h"
#include "relational/ops.h"

namespace qf {
namespace {

Database RandomGraphDb(std::uint64_t seed, int nodes, int arcs) {
  Rng rng(seed);
  Relation arc("arc", Schema({"S", "T"}));
  for (int i = 0; i < arcs; ++i) {
    arc.AddRow({Value(static_cast<std::int64_t>(rng.NextBelow(nodes))),
                Value(static_cast<std::int64_t>(rng.NextBelow(nodes)))});
  }
  arc.Dedup();
  Relation label("label", Schema({"N", "L"}));
  for (int n = 0; n < nodes; ++n) {
    label.AddRow({Value(n), Value(static_cast<std::int64_t>(
                                rng.NextBelow(3)))});
  }
  label.Dedup();
  Database db;
  db.PutRelation(std::move(arc));
  db.PutRelation(std::move(label));
  return db;
}

// A pool of structurally varied pure CQs over arc/label.
std::vector<ConjunctiveQuery> QueryPool() {
  const char* texts[] = {
      "answer(X) :- arc(X,Y)",
      "answer(X) :- arc(X,Y) AND arc(Y,Z)",
      "answer(X) :- arc(X,Y) AND arc(Y,X)",
      "answer(X) :- arc(X,X)",
      "answer(X) :- arc(X,Y) AND label(Y,L)",
      "answer(X) :- arc(X,Y) AND label(X,L) AND label(Y,L)",
      "answer(X) :- arc(X,Y) AND arc(Y,Z) AND arc(Z,W)",
      "answer(X) :- arc(X,Y) AND arc(X,Z)",
      "answer(X) :- label(X,L)",
      "answer(X) :- arc(Y,X)",
  };
  std::vector<ConjunctiveQuery> pool;
  for (const char* t : texts) {
    auto cq = ParseRule(t);
    EXPECT_TRUE(cq.ok());
    pool.push_back(*cq);
  }
  return pool;
}

Relation Evaluate(const ConjunctiveQuery& cq, const Database& db) {
  PredicateResolver resolver(db);
  auto result = EvaluateConjunctiveBindings(cq, resolver, cq.head_vars);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return *result;
}

class ContainmentSoundness : public ::testing::TestWithParam<int> {};

TEST_P(ContainmentSoundness, CertifiedContainmentHoldsSemantically) {
  Database db = RandomGraphDb(GetParam(), 8, 20);
  std::vector<ConjunctiveQuery> pool = QueryPool();
  int certified = 0;
  for (const ConjunctiveQuery& q1 : pool) {
    for (const ConjunctiveQuery& q2 : pool) {
      if (!Contains(q1, q2)) continue;  // q2 ⊆ q1 certified
      ++certified;
      Relation r1 = Evaluate(q1, db);
      Relation r2 = Evaluate(q2, db);
      for (const Tuple& t : r2.rows()) {
        ASSERT_TRUE(r1.Contains(t))
            << q2.ToString() << " ⊆ " << q1.ToString() << " violated at "
            << TupleToString(t);
      }
    }
  }
  // The pool is built so containments exist (every query contains itself).
  EXPECT_GE(certified, static_cast<int>(pool.size()));
}

TEST_P(ContainmentSoundness, SafeSubqueriesContainTheirQuery) {
  Database db = RandomGraphDb(GetParam() + 100, 8, 22);
  for (const ConjunctiveQuery& cq : QueryPool()) {
    Relation full = Evaluate(cq, db);
    for (const SubqueryCandidate& sub : EnumerateSafeSubqueries(
             cq, {.require_parameters = false, .proper_only = true})) {
      Relation restricted = Evaluate(sub.query, db);
      for (const Tuple& t : full.rows()) {
        ASSERT_TRUE(restricted.Contains(t))
            << sub.query.ToString() << " lost a tuple of " << cq.ToString();
      }
    }
  }
}

// The a-priori pruning guarantee end to end: a parameter value failing the
// support threshold in a safe subquery never appears in the flock answer.
TEST_P(ContainmentSoundness, SubqueryPruningNeverLosesAnswers) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7 + 1);
  Database db;
  Relation r("baskets", Schema({"BID", "Item"}));
  for (int b = 0; b < 60; ++b) {
    for (int i = 0; i < 6; ++i) {
      if (rng.NextBernoulli(0.4)) {
        r.AddRow({Value(b), Value(static_cast<std::int64_t>(i))});
      }
    }
  }
  r.Dedup();
  db.PutRelation(std::move(r));

  auto flock = MakeFlock(
      "answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2",
      FilterCondition::MinSupport(6));
  ASSERT_TRUE(flock.ok());
  auto answer = EvaluateFlock(*flock, db);
  ASSERT_TRUE(answer.ok());

  for (const SubqueryCandidate& sub :
       EnumerateSafeSubqueries(flock->query.disjuncts[0])) {
    // Survivors of the subquery at the same threshold.
    QueryFlock sub_flock(sub.query, flock->filter);
    auto survivors = EvaluateFlock(sub_flock, db);
    ASSERT_TRUE(survivors.ok()) << survivors.status().ToString();
    // Every answer's projection onto the subquery's parameters survives.
    std::vector<std::string> columns;
    for (const std::string& p : sub.parameters) columns.push_back("$" + p);
    Relation projected = Project(*answer, columns);
    for (const Tuple& t : projected.rows()) {
      ASSERT_TRUE(survivors->Contains(t))
          << "pruning via " << sub.query.ToString() << " would lose "
          << TupleToString(t);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ContainmentSoundness, ::testing::Range(1, 9));

}  // namespace
}  // namespace qf
