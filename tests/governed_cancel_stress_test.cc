// Long-running cancellation stress: hammer a governed evaluation with
// cancellation requests landing at randomized points, at several thread
// counts, and check that every run either completes bit-identical to the
// baseline or fails CANCELLED — with the accountant intact either way.
// Labelled `slow`: tens of full evaluations; the short differential suite
// (governed_eval_test) covers the same paths for the sanitizer jobs.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "common/resource.h"
#include "common/rng.h"
#include "flocks/eval.h"
#include "flocks/flock.h"
#include "workload/basket_gen.h"

namespace qf {
namespace {

TEST(GovernedCancelStressTest, RandomizedCancelPointsUnwindCleanly) {
  BasketConfig config;
  config.n_baskets = 1500;
  config.n_items = 80;
  config.avg_basket_size = 8;
  config.zipf_theta = 0.9;
  config.seed = 99;
  Database db;
  db.PutRelation(GenerateBaskets(config));
  Result<QueryFlock> flock =
      MakeFlock("answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2",
                FilterCondition::MinSupport(8));
  ASSERT_TRUE(flock.ok());
  Result<Relation> baseline = EvaluateFlock(*flock, db);
  ASSERT_TRUE(baseline.ok());

  Rng rng(4242);
  int cancelled_runs = 0;
  for (int iter = 0; iter < 30; ++iter) {
    unsigned threads = static_cast<unsigned>(rng.NextBelow(5));  // 0..4
    // Delay spans "immediately" through "after the query finished".
    auto delay = std::chrono::microseconds(rng.NextBelow(20'000));
    QueryContext ctx;
    std::atomic<bool> flag{false};
    ctx.set_cancel_flag(&flag);
    std::thread canceller([&] {
      std::this_thread::sleep_for(delay);
      flag.store(true);
    });
    FlockEvalOptions options;
    options.threads = threads;
    options.ctx = &ctx;
    Result<Relation> governed = EvaluateFlock(*flock, db, options);
    canceller.join();
    if (governed.ok()) {
      ASSERT_EQ(baseline->schema(), governed->schema()) << "iter=" << iter;
      ASSERT_EQ(baseline->rows(), governed->rows()) << "iter=" << iter;
    } else {
      ++cancelled_runs;
      EXPECT_EQ(governed.status().code(), StatusCode::kCancelled)
          << "iter=" << iter << " threads=" << threads;
    }
    EXPECT_LT(ctx.used_bytes(), 1ull << 62) << "accountant underflow";
  }
  // With delays up to 20 ms over a multi-ms query, some runs must have
  // been cut short; if none were, the stress exercised nothing.
  EXPECT_GT(cancelled_runs, 0);
}

TEST(GovernedCancelStressTest, ContextIsReusableForReruns) {
  // One context per statement is the intended pattern; this checks the
  // opposite misuse is at least fail-fast: a latched context refuses all
  // further work instead of corrupting it.
  BasketConfig config;
  config.n_baskets = 600;
  config.seed = 7;
  Database db;
  db.PutRelation(GenerateBaskets(config));
  Result<QueryFlock> flock = MakeFlock("answer(B) :- baskets(B,$1)",
                                       FilterCondition::MinSupport(3));
  ASSERT_TRUE(flock.ok());

  QueryContext ctx;
  ctx.RequestCancel();
  FlockEvalOptions options;
  options.ctx = &ctx;
  for (int i = 0; i < 3; ++i) {
    Result<Relation> r = EvaluateFlock(*flock, db, options);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
  }
}

}  // namespace
}  // namespace qf
