// Crash-point torture harness for the durable catalog: a scripted
// workload (relations produced by real flock evaluations, rules, flocks,
// knobs, checkpoints) runs on a FaultVfs over a MemVfs, the process
// "dies" at a chosen I/O operation, and recovery must yield a catalog
// bit-identical to an acknowledged prefix of the workload — under both
// crash outcomes (unsynced writes lost, or every write including the torn
// tail surviving). The quick sweeps here run in the default test matrix;
// crash_recovery_stress_test.cc sweeps the full {threads} x {torn bytes}
// x {durability mode} grid under the `slow` label.
#include "crash_recovery_harness.h"

#include <gtest/gtest.h>

#include <string>

#include "common/vfs.h"
#include "storage/catalog.h"
#include "storage/wal.h"

namespace qf {
namespace {

// The engine's determinism contract: evaluation results are bit-identical
// at every thread count, so the acknowledged catalog states — and hence
// every recovered state — are too.
TEST(CrashRecoveryTest, OraclesAreBitIdenticalAcrossThreadCounts) {
  std::vector<std::string> serial = WorkloadOracle(1);
  for (unsigned threads : {0u, 4u}) {
    EXPECT_EQ(WorkloadOracle(threads), serial) << "threads " << threads;
  }
}

TEST(CrashRecoveryTest, SweepPowerLossDropsUnsyncedWrites) {
  RunCrashSweep(/*threads=*/1, /*torn_write_bytes=*/3, /*power_loss=*/true);
}

TEST(CrashRecoveryTest, SweepTornTailSurvivesOnDisk) {
  RunCrashSweep(/*threads=*/1, /*torn_write_bytes=*/3, /*power_loss=*/false);
}

TEST(CrashRecoveryTest, WalBitFlipsNeverCrashRecovery) {
  MemVfs vfs;
  std::size_t acked = RunWorkload(vfs, 1);
  ASSERT_GT(acked, 0u);
  Result<std::string> wal = vfs.ReadFile("cat/catalog.wal");
  ASSERT_TRUE(wal.ok());
  ASSERT_FALSE(wal->empty());
  std::vector<std::string> oracle = WorkloadOracle(1);
  // Flip every 7th bit (the full per-bit sweep lives in the stress test).
  for (std::size_t bit = 0; bit < wal->size() * 8; bit += 7) {
    std::string mutated = *wal;
    mutated[bit / 8] =
        static_cast<char>(mutated[bit / 8] ^ (1u << (bit % 8)));
    MemVfs scratch;
    ASSERT_TRUE(scratch.CreateDirs("cat").ok());
    ASSERT_TRUE(AtomicWriteFile(scratch, "cat/catalog.wal", mutated).ok());
    Result<std::unique_ptr<Catalog>> reopened =
        Catalog::Open(scratch, "cat");
    if (!reopened.ok()) {
      // A flip that survives the CRC but breaks decoding is allowed to
      // fail — but only with the typed corruption status.
      EXPECT_EQ(reopened.status().code(), StatusCode::kCorruptWal)
          << "bit " << bit;
      continue;
    }
    // Truncation at the flipped record: the result is a prefix state.
    std::string recovered = StateBytes(**reopened);
    EXPECT_TRUE(IsOracleState(oracle, recovered)) << "bit " << bit;
  }
}

}  // namespace
}  // namespace qf
