// Unit tests for the resource governor (common/resource.h): latching,
// deadlines, cancellation, memory budgets, fault injection, and the
// OpGovernor batching helper.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "common/resource.h"
#include "common/status.h"

namespace qf {
namespace {

TEST(QueryContextTest, FreshContextIsOk) {
  QueryContext ctx;
  EXPECT_TRUE(ctx.ok());
  EXPECT_TRUE(ctx.Poll());
  EXPECT_TRUE(ctx.Charge(1024));
  EXPECT_TRUE(ctx.Check().ok());
  EXPECT_EQ(ctx.used_bytes(), 1024u);
  EXPECT_EQ(ctx.peak_bytes(), 1024u);
}

TEST(QueryContextTest, PastDeadlineTripsOnPoll) {
  QueryContext ctx;
  ctx.set_deadline(std::chrono::steady_clock::now() -
                   std::chrono::milliseconds(1));
  EXPECT_FALSE(ctx.Poll());
  EXPECT_FALSE(ctx.ok());
  Status s = ctx.Check();
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(s.message().find("deadline"), std::string::npos);
}

TEST(QueryContextTest, FutureDeadlinePassesThenExpires) {
  QueryContext ctx;
  ctx.set_timeout_ms(20);
  EXPECT_TRUE(ctx.Poll());
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(ctx.Poll());
  EXPECT_EQ(ctx.Check().code(), StatusCode::kDeadlineExceeded);
}

TEST(QueryContextTest, ExternalCancelFlagTrips) {
  std::atomic<bool> flag{false};
  QueryContext ctx;
  ctx.set_cancel_flag(&flag);
  EXPECT_TRUE(ctx.Poll());
  flag.store(true);
  EXPECT_FALSE(ctx.Poll());
  Status s = ctx.Check();
  EXPECT_EQ(s.code(), StatusCode::kCancelled);
  EXPECT_NE(s.message().find("cancelled"), std::string::npos);
}

TEST(QueryContextTest, RequestCancelLatchesFromAnotherThread) {
  QueryContext ctx;
  std::thread t([&] { ctx.RequestCancel(); });
  t.join();
  EXPECT_FALSE(ctx.ok());
  EXPECT_EQ(ctx.Check().code(), StatusCode::kCancelled);
}

TEST(QueryContextTest, FirstErrorWinsAndLatches) {
  QueryContext ctx;
  ctx.RequestCancel();
  // A later deadline violation must not overwrite the latched CANCELLED.
  ctx.set_deadline(std::chrono::steady_clock::now() -
                   std::chrono::milliseconds(1));
  EXPECT_FALSE(ctx.Poll());
  EXPECT_EQ(ctx.Check().code(), StatusCode::kCancelled);
}

TEST(QueryContextTest, BudgetTripsAndChargeIsNotUndone) {
  QueryContext ctx;
  ctx.set_memory_budget(1000);
  EXPECT_TRUE(ctx.Charge(600));
  EXPECT_FALSE(ctx.Charge(600));  // 1200 > 1000
  Status s = ctx.Check();
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(s.message().find("memory budget"), std::string::npos);
  // The failed charge still counts: the caller is unwinding and will
  // Release() what it drops.
  EXPECT_EQ(ctx.used_bytes(), 1200u);
  EXPECT_EQ(ctx.peak_bytes(), 1200u);
}

TEST(QueryContextTest, ZeroBudgetMeansUnlimited) {
  QueryContext ctx;
  EXPECT_TRUE(ctx.Charge(1ull << 40));
  EXPECT_TRUE(ctx.Check().ok());
}

TEST(QueryContextTest, ReleaseNetsToZeroButPeakStays) {
  QueryContext ctx;
  ctx.set_memory_budget(1 << 20);
  EXPECT_TRUE(ctx.Charge(800));
  ctx.Release(800);
  EXPECT_EQ(ctx.used_bytes(), 0u);
  EXPECT_EQ(ctx.peak_bytes(), 800u);
  EXPECT_TRUE(ctx.Charge(50));
  EXPECT_EQ(ctx.used_bytes(), 50u);
  EXPECT_EQ(ctx.peak_bytes(), 800u);  // high-water mark, not current
}

TEST(QueryContextTest, FaultInjectionTripsOnNthCharge) {
  QueryContext ctx;
  ctx.set_fail_after_charges(3);
  EXPECT_TRUE(ctx.Charge(1));
  EXPECT_TRUE(ctx.Charge(1));
  EXPECT_FALSE(ctx.Charge(1));
  EXPECT_EQ(ctx.Check().code(), StatusCode::kResourceExhausted);
}

TEST(QueryContextTest, ConcurrentChargesSumExactly) {
  QueryContext ctx;
  constexpr int kThreads = 8;
  constexpr int kCharges = 10000;
  std::vector<std::thread> workers;
  for (int i = 0; i < kThreads; ++i) {
    workers.emplace_back([&] {
      for (int k = 0; k < kCharges; ++k) ctx.Charge(3);
    });
  }
  for (std::thread& t : workers) t.join();
  EXPECT_EQ(ctx.used_bytes(), 3u * kThreads * kCharges);
  EXPECT_EQ(ctx.peak_bytes(), 3u * kThreads * kCharges);
}

TEST(ApproxTupleBytesTest, GrowsWithArity) {
  EXPECT_GT(ApproxTupleBytes(1), 0u);
  EXPECT_LT(ApproxTupleBytes(1), ApproxTupleBytes(4));
}

TEST(OpGovernorTest, NullContextAdmitsEverything) {
  OpGovernor gov(nullptr, 64);
  for (int i = 0; i < 5000; ++i) EXPECT_TRUE(gov.Admit());
  EXPECT_TRUE(gov.Flush());
  EXPECT_EQ(gov.total_bytes(), 0u);
}

TEST(OpGovernorTest, ChargesBytesPerAdmittedRow) {
  QueryContext ctx;
  std::size_t rows = 3 * QueryContext::kPollStride + 17;
  {
    OpGovernor gov(&ctx, 10);
    for (std::size_t i = 0; i < rows; ++i) EXPECT_TRUE(gov.Admit());
    EXPECT_TRUE(gov.Flush());
    EXPECT_EQ(gov.total_bytes(), 10u * rows);
  }
  EXPECT_EQ(ctx.used_bytes(), 10u * rows);
}

TEST(OpGovernorTest, DestructorFlushesRemainder) {
  QueryContext ctx;
  {
    OpGovernor gov(&ctx, 8);
    for (int i = 0; i < 5; ++i) gov.Admit();  // below one stride
  }
  EXPECT_EQ(ctx.used_bytes(), 40u);
}

TEST(OpGovernorTest, AdmitStopsOnceBudgetTrips) {
  QueryContext ctx;
  ctx.set_memory_budget(QueryContext::kPollStride * 4);  // one stride of 4B rows
  OpGovernor gov(&ctx, 4);
  std::size_t admitted = 0;
  for (std::size_t i = 0; i < 10 * QueryContext::kPollStride; ++i) {
    if (!gov.Admit()) break;
    ++admitted;
  }
  EXPECT_LT(admitted, 10 * QueryContext::kPollStride);
  EXPECT_EQ(ctx.Check().code(), StatusCode::kResourceExhausted);
}

TEST(OpGovernorTest, TickInputHonoursDeadlineWithoutCharging) {
  QueryContext ctx;
  ctx.set_deadline(std::chrono::steady_clock::now() -
                   std::chrono::milliseconds(1));
  OpGovernor gov(&ctx, 0);
  std::size_t ticks = 0;
  while (gov.TickInput() && ticks < 10 * QueryContext::kPollStride) ++ticks;
  // The stride-boundary poll must notice the expired deadline within one
  // stride of input rows, and input ticks never charge memory.
  EXPECT_LT(ticks, QueryContext::kPollStride + 1);
  EXPECT_EQ(ctx.used_bytes(), 0u);
  EXPECT_EQ(ctx.Check().code(), StatusCode::kDeadlineExceeded);
}

}  // namespace
}  // namespace qf
