// Tests for incremental flock evaluation (flocks/incremental_eval.h) and
// its shell integration: decision strings, invalidation (replace /
// negation / threshold / budget), exactness against the direct evaluator
// at several thread counts, SHOW FLOCK STATE / EXPLAIN ANALYZE
// observability, catalog reopen, and quick differential delta-replay
// schedules (the slow sweep lives in incremental_stress_test.cc).
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>

#include "common/vfs.h"
#include "flocks/eval.h"
#include "flocks/incremental_eval.h"
#include "incremental_diff_harness.h"
#include "mining/incremental.h"
#include "relational/database.h"
#include "relational/tsv.h"
#include "shell/shell.h"

namespace qf {
namespace {

std::string MustRun(Shell& shell, const std::string& stmt) {
  Result<std::string> out = shell.Execute(stmt);
  EXPECT_TRUE(out.ok()) << out.status().ToString() << " for: " << stmt;
  return out.ok() ? *out : std::string();
}

// The "(MODE)" tag of a RUN/EXPLAIN ANALYZE first line.
std::string RunMode(const std::string& out) {
  std::size_t nl = out.find('\n');
  std::string first = nl == std::string::npos ? out : out.substr(0, nl);
  // The mode tag is the trailing " (MODE)" group; the mode itself may
  // contain parentheses ("INCREMENTAL:delta(+3 rows)").
  std::size_t open = first.rfind(" (");
  if (open == std::string::npos || first.back() != ')') return "";
  return first.substr(open + 2, first.size() - open - 3);
}

void SeedBaskets(Shell& shell) {
  MustRun(shell,
          "GEN BASKETS baskets n_baskets=60 n_items=12 avg_size=5 "
          "theta=0.8 locality=0.5 topics=4 seed=11");
}

void DeclarePairs(Shell& shell, int support) {
  MustRun(shell,
          "FLOCK pairs QUERY answer(B) :- baskets(B,$1) AND baskets(B,$2) "
          "AND $1 < $2 FILTER COUNT >= " +
              std::to_string(support));
}

// Writes a small baskets TSV plus a delta into `vfs`.
void StoreBasketsTsv(MemVfs& vfs) {
  Relation base("baskets", Schema({"BID", "Item"}));
  for (int b = 1; b <= 3; ++b) {
    base.AddRow({Value(b), Value("beer")});
    base.AddRow({Value(b), Value("diapers")});
  }
  base.AddRow({Value(4), Value("beer")});
  ASSERT_TRUE(StoreTsv(base, "base.tsv", &vfs).ok());
  Relation delta("delta", Schema({"BID", "Item"}));
  delta.AddRow({Value(4), Value("diapers")});
  delta.AddRow({Value(5), Value("beer")});
  delta.AddRow({Value(5), Value("diapers")});
  ASSERT_TRUE(StoreTsv(delta, "delta.tsv", &vfs).ok());
}

// --- shell decision lifecycle ---

TEST(IncrementalShellTest, BuildCachedDeltaLifecycle) {
  MemVfs vfs;
  StoreBasketsTsv(vfs);
  Shell subject, oracle;
  subject.set_vfs(&vfs);
  oracle.set_vfs(&vfs);
  for (Shell* s : {&subject, &oracle}) {
    MustRun(*s, "LOAD baskets FROM base.tsv");
    MustRun(*s,
            "FLOCK pairs QUERY answer(B) :- baskets(B,$1) AND "
            "baskets(B,$2) AND $1 < $2 FILTER COUNT >= 2");
  }
  MustRun(subject, "SET INCREMENTAL ON");

  std::string s1 = MustRun(subject, "RUN pairs LIMIT 100");
  EXPECT_EQ(RunMode(s1), "INCREMENTAL:build");
  std::string s2 = MustRun(subject, "RUN pairs LIMIT 100");
  EXPECT_EQ(RunMode(s2), "INCREMENTAL:cached");
  EXPECT_EQ(NormalizeRunOutput(s1), NormalizeRunOutput(s2));

  std::string appended = MustRun(subject, "LOAD baskets APPEND FROM delta.tsv");
  EXPECT_NE(appended.find("appended baskets: +3 rows"), std::string::npos);
  EXPECT_NE(appended.find("epoch 1"), std::string::npos);
  std::string s3 = MustRun(subject, "RUN pairs LIMIT 100");
  EXPECT_EQ(RunMode(s3), "INCREMENTAL:delta(+3 rows)");

  // Oracle recomputes from scratch over the same appended data.
  MustRun(oracle, "LOAD baskets APPEND FROM delta.tsv");
  std::string o3 = MustRun(oracle, "RUN pairs LIMIT 100");
  EXPECT_EQ(NormalizeRunOutput(s3), NormalizeRunOutput(o3));

  const IncrementalFlockState* st = subject.incremental().state("pairs");
  ASSERT_NE(st, nullptr);
  EXPECT_EQ(st->full_builds, 1u);
  EXPECT_EQ(st->delta_batches, 1u);
  EXPECT_EQ(st->served_cached, 1u);
  EXPECT_EQ(st->batches(), 2u);
}

TEST(IncrementalShellTest, EmptyDeltaBatchServesDelta) {
  MemVfs vfs;
  StoreBasketsTsv(vfs);
  Shell shell;
  shell.set_vfs(&vfs);
  MustRun(shell, "LOAD baskets FROM base.tsv");
  MustRun(shell, "SET INCREMENTAL ON");
  DeclarePairs(shell, 2);
  MustRun(shell, "RUN pairs");
  // Re-appending rows already present dedups to an empty batch; the
  // state still absorbs it (epoch advances, counts unchanged).
  std::string appended = MustRun(shell, "LOAD baskets APPEND FROM base.tsv");
  EXPECT_NE(appended.find("+0 rows"), std::string::npos);
  std::string out = MustRun(shell, "RUN pairs");
  EXPECT_EQ(RunMode(out), "INCREMENTAL:delta(+0 rows)");
}

TEST(IncrementalShellTest, ThresholdMetamorphic) {
  // Satellite: threshold *increase* reuses the cached state; *decrease*
  // below the built threshold forces rebuild(threshold). Both match a
  // from-scratch oracle shell.
  Shell subject, oracle;
  SeedBaskets(subject);
  SeedBaskets(oracle);
  MustRun(subject, "SET INCREMENTAL ON");

  DeclarePairs(subject, 4);
  DeclarePairs(oracle, 4);
  std::string s = MustRun(subject, "RUN pairs LIMIT 100000");
  EXPECT_EQ(RunMode(s), "INCREMENTAL:build");
  EXPECT_EQ(NormalizeRunOutput(s),
            NormalizeRunOutput(MustRun(oracle, "RUN pairs LIMIT 100000")));
  const IncrementalFlockState* st = subject.incremental().state("pairs");
  ASSERT_NE(st, nullptr);
  EXPECT_EQ(st->full_builds, 1u);

  // Tighten: 4 -> 7. Same state serves (no rebuild).
  DeclarePairs(subject, 7);
  DeclarePairs(oracle, 7);
  s = MustRun(subject, "RUN pairs LIMIT 100000");
  EXPECT_EQ(RunMode(s), "INCREMENTAL:cached");
  EXPECT_EQ(NormalizeRunOutput(s),
            NormalizeRunOutput(MustRun(oracle, "RUN pairs LIMIT 100000")));
  st = subject.incremental().state("pairs");
  ASSERT_NE(st, nullptr);
  EXPECT_EQ(st->full_builds, 1u);

  // Back to the built threshold: still compatible (the state was built
  // at 4, so 4 is not a loosening of what the rings track).
  DeclarePairs(subject, 4);
  DeclarePairs(oracle, 4);
  s = MustRun(subject, "RUN pairs LIMIT 100000");
  EXPECT_EQ(RunMode(s), "INCREMENTAL:cached");
  EXPECT_EQ(NormalizeRunOutput(s),
            NormalizeRunOutput(MustRun(oracle, "RUN pairs LIMIT 100000")));

  // Loosen below the built threshold: rings were never tracked for the
  // newly admitted groups — rebuild.
  DeclarePairs(subject, 2);
  DeclarePairs(oracle, 2);
  s = MustRun(subject, "RUN pairs LIMIT 100000");
  EXPECT_EQ(RunMode(s), "INCREMENTAL:rebuild(threshold)");
  EXPECT_EQ(NormalizeRunOutput(s),
            NormalizeRunOutput(MustRun(oracle, "RUN pairs LIMIT 100000")));
  // The rebuild replaced the state object: counters restart and the new
  // state is built (and its rings tracked) at the loosened threshold.
  st = subject.incremental().state("pairs");
  ASSERT_NE(st, nullptr);
  EXPECT_EQ(st->full_builds, 1u);
  EXPECT_EQ(st->built_filter().threshold, 2);
}

TEST(IncrementalShellTest, QueryChangeRebuildsAsDefinition) {
  Shell shell;
  SeedBaskets(shell);
  MustRun(shell, "SET INCREMENTAL ON");
  DeclarePairs(shell, 4);
  MustRun(shell, "RUN pairs");
  MustRun(shell,
          "FLOCK pairs QUERY answer(B) :- baskets(B,$1) "
          "FILTER COUNT >= 4");
  std::string out = MustRun(shell, "RUN pairs");
  EXPECT_EQ(RunMode(out), "INCREMENTAL:rebuild(definition)");
}

TEST(IncrementalShellTest, FullReloadRebuildsViaLineage) {
  MemVfs vfs;
  StoreBasketsTsv(vfs);
  Shell shell;
  shell.set_vfs(&vfs);
  MustRun(shell, "LOAD baskets FROM base.tsv");
  MustRun(shell, "SET INCREMENTAL ON");
  DeclarePairs(shell, 2);
  MustRun(shell, "RUN pairs");
  // A whole-relation LOAD severs the append chain: the old handle is no
  // longer an ancestor of the new one, so the state must rebuild.
  MustRun(shell, "LOAD baskets FROM base.tsv");
  std::string out = MustRun(shell, "RUN pairs");
  EXPECT_EQ(RunMode(out), "INCREMENTAL:rebuild(lineage)");
}

TEST(IncrementalShellTest, NegatedRelationChangeRebuilds) {
  MemVfs vfs;
  Relation people("people", Schema({"P", "Item"}));
  people.AddRow({Value(1), Value("beer")});
  people.AddRow({Value(2), Value("beer")});
  people.AddRow({Value(2), Value("wine")});
  ASSERT_TRUE(StoreTsv(people, "people.tsv", &vfs).ok());
  Relation blocked("blocked", Schema({"P"}));
  blocked.AddRow({Value(3)});
  ASSERT_TRUE(StoreTsv(blocked, "blocked.tsv", &vfs).ok());
  Relation more("more", Schema({"P"}));
  more.AddRow({Value(2)});
  ASSERT_TRUE(StoreTsv(more, "more.tsv", &vfs).ok());

  Shell subject, oracle;
  subject.set_vfs(&vfs);
  oracle.set_vfs(&vfs);
  for (Shell* s : {&subject, &oracle}) {
    MustRun(*s, "LOAD people FROM people.tsv");
    MustRun(*s, "LOAD blocked FROM blocked.tsv");
    MustRun(*s,
            "FLOCK open QUERY answer(P) :- people(P,$1) AND NOT blocked(P) "
            "FILTER COUNT >= 1");
  }
  MustRun(subject, "SET INCREMENTAL ON");
  std::string s1 = MustRun(subject, "RUN open LIMIT 100");
  EXPECT_EQ(RunMode(s1), "INCREMENTAL:build");
  EXPECT_EQ(NormalizeRunOutput(s1),
            NormalizeRunOutput(MustRun(oracle, "RUN open LIMIT 100")));

  // Appending to the negated relation *removes* answers: non-monotone,
  // so the delta path must refuse and rebuild.
  MustRun(subject, "LOAD blocked APPEND FROM more.tsv");
  MustRun(oracle, "LOAD blocked APPEND FROM more.tsv");
  std::string s2 = MustRun(subject, "RUN open LIMIT 100");
  EXPECT_EQ(RunMode(s2), "INCREMENTAL:rebuild(negated)");
  EXPECT_EQ(NormalizeRunOutput(s2),
            NormalizeRunOutput(MustRun(oracle, "RUN open LIMIT 100")));
}

TEST(IncrementalShellTest, ViewFlockFallsBackUncached) {
  Shell shell;
  SeedBaskets(shell);
  MustRun(shell, "SET INCREMENTAL ON");
  MustRun(shell, "DEFINE bought(B,I) :- baskets(B,I)");
  MustRun(shell,
          "FLOCK vb QUERY answer(B) :- bought(B,$1) FILTER COUNT >= 4");
  std::string out = MustRun(shell, "RUN vb");
  // Not served incrementally: the ordinary mode tag shows instead.
  EXPECT_EQ(out.find("INCREMENTAL"), std::string::npos);
  EXPECT_EQ(shell.incremental().state("vb"), nullptr);
  std::string ea = MustRun(shell, "EXPLAIN ANALYZE vb");
  EXPECT_NE(ea.find("unsupported(view:bought)"), std::string::npos);
}

TEST(IncrementalShellTest, NonIntegralSumFallsBack) {
  MemVfs vfs;
  Relation sales("sales", Schema({"BID", "Item", "W"}));
  sales.AddRow({Value(1), Value("beer"), Value(1.5)});
  sales.AddRow({Value(2), Value("beer"), Value(2.25)});
  ASSERT_TRUE(StoreTsv(sales, "sales.tsv", &vfs).ok());
  Shell subject, oracle;
  subject.set_vfs(&vfs);
  oracle.set_vfs(&vfs);
  for (Shell* s : {&subject, &oracle}) {
    MustRun(*s, "LOAD sales FROM sales.tsv");
    MustRun(*s,
            "FLOCK rev QUERY answer(B,W) :- sales(B,$1,W) "
            "FILTER SUM(W) >= 1");
  }
  MustRun(subject, "SET INCREMENTAL ON");
  std::string s1 = MustRun(subject, "RUN rev LIMIT 100");
  // Non-integral summands: nothing cached, full evaluation owns the run.
  EXPECT_EQ(s1.find("INCREMENTAL"), std::string::npos);
  EXPECT_EQ(subject.incremental().state("rev"), nullptr);
  EXPECT_EQ(NormalizeRunOutput(s1),
            NormalizeRunOutput(MustRun(oracle, "RUN rev LIMIT 100")));
}

TEST(IncrementalShellTest, IntegralSumServesIncrementally) {
  MemVfs vfs;
  Relation sales("sales", Schema({"BID", "Item", "W"}));
  sales.AddRow({Value(1), Value("beer"), Value(3)});
  sales.AddRow({Value(2), Value("beer"), Value(4)});
  sales.AddRow({Value(2), Value("wine"), Value(1)});
  ASSERT_TRUE(StoreTsv(sales, "sales.tsv", &vfs).ok());
  Relation delta("delta", Schema({"BID", "Item", "W"}));
  delta.AddRow({Value(3), Value("wine"), Value(9)});
  ASSERT_TRUE(StoreTsv(delta, "delta.tsv", &vfs).ok());

  Shell subject, oracle;
  subject.set_vfs(&vfs);
  oracle.set_vfs(&vfs);
  for (Shell* s : {&subject, &oracle}) {
    MustRun(*s, "LOAD sales FROM sales.tsv");
    MustRun(*s,
            "FLOCK rev QUERY answer(B,W) :- sales(B,$1,W) "
            "FILTER SUM(W) >= 5");
  }
  MustRun(subject, "SET INCREMENTAL ON");
  std::string s1 = MustRun(subject, "RUN rev LIMIT 100");
  EXPECT_EQ(RunMode(s1), "INCREMENTAL:build");
  MustRun(subject, "LOAD sales APPEND FROM delta.tsv");
  MustRun(oracle, "LOAD sales APPEND FROM delta.tsv");
  std::string s2 = MustRun(subject, "RUN rev LIMIT 100");
  EXPECT_EQ(RunMode(s2), "INCREMENTAL:delta(+1 rows)");
  EXPECT_EQ(NormalizeRunOutput(s2),
            NormalizeRunOutput(MustRun(oracle, "RUN rev LIMIT 100")));
}

TEST(IncrementalShellTest, ShowFlockState) {
  Shell shell;
  SeedBaskets(shell);
  MustRun(shell, "SET INCREMENTAL ON");
  EXPECT_EQ(MustRun(shell, "SHOW FLOCK STATE"), "no incremental state\n");
  DeclarePairs(shell, 4);
  MustRun(shell, "RUN pairs");
  std::string all = MustRun(shell, "SHOW FLOCK STATE");
  EXPECT_NE(all.find("flock pairs:"), std::string::npos);
  EXPECT_NE(all.find("decisions: builds=1 deltas=0 cached=0"),
            std::string::npos);
  std::string one = MustRun(shell, "SHOW FLOCK STATE pairs");
  EXPECT_NE(one.find("built filter: COUNT"), std::string::npos);
  EXPECT_NE(one.find("base baskets:"), std::string::npos);
  Result<std::string> missing = shell.Execute("SHOW FLOCK STATE nope");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

TEST(IncrementalShellTest, ExplainAnalyzeShowsDecisionAndDeltas) {
  MemVfs vfs;
  StoreBasketsTsv(vfs);
  Shell shell;
  shell.set_vfs(&vfs);
  MustRun(shell, "LOAD baskets FROM base.tsv");
  MustRun(shell, "SET INCREMENTAL ON");
  DeclarePairs(shell, 2);
  std::string ea1 = MustRun(shell, "EXPLAIN ANALYZE pairs");
  EXPECT_NE(ea1.find("INCREMENTAL:build"), std::string::npos);
  EXPECT_NE(ea1.find("incremental"), std::string::npos);
  MustRun(shell, "LOAD baskets APPEND FROM delta.tsv");
  std::string ea2 = MustRun(shell, "EXPLAIN ANALYZE pairs");
  EXPECT_NE(ea2.find("INCREMENTAL:delta(+3 rows)"), std::string::npos);
  // The metrics tree carries one "delta" child naming the changed
  // relation with its delta row count.
  EXPECT_NE(ea2.find("delta"), std::string::npos);
  EXPECT_NE(ea2.find("baskets"), std::string::npos);
}

TEST(IncrementalShellTest, SetIncrementalOffDropsState) {
  Shell shell;
  SeedBaskets(shell);
  MustRun(shell, "SET INCREMENTAL ON");
  DeclarePairs(shell, 4);
  MustRun(shell, "RUN pairs");
  EXPECT_EQ(shell.incremental().state_count(), 1u);
  MustRun(shell, "SET INCREMENTAL OFF");
  EXPECT_EQ(shell.incremental().state_count(), 0u);
  std::string out = MustRun(shell, "RUN pairs");
  EXPECT_EQ(out.find("INCREMENTAL"), std::string::npos);
}

TEST(IncrementalShellTest, CatalogReopenRestoresKnobAndRebuilds) {
  MemVfs vfs;
  StoreBasketsTsv(vfs);
  std::string before;
  {
    Shell shell;
    shell.set_vfs(&vfs);
    MustRun(shell, "OPEN cat");
    MustRun(shell, "LOAD baskets FROM base.tsv");
    MustRun(shell, "SET INCREMENTAL ON");
    DeclarePairs(shell, 2);
    MustRun(shell, "LOAD baskets APPEND FROM delta.tsv");
    before = NormalizeRunOutput(MustRun(shell, "RUN pairs LIMIT 100"));
  }
  Shell reopened;
  reopened.set_vfs(&vfs);
  MustRun(reopened, "OPEN cat");
  // The WAL replays the knob; the cached state is in-memory only, so the
  // first RUN after reopen is a fresh build with identical results.
  EXPECT_TRUE(reopened.incremental_on());
  EXPECT_EQ(reopened.incremental().state_count(), 0u);
  std::string after = MustRun(reopened, "RUN pairs LIMIT 100");
  EXPECT_EQ(RunMode(after), "INCREMENTAL:build");
  EXPECT_EQ(NormalizeRunOutput(after), before);
}

TEST(IncrementalShellTest, AppendRequiresExistingRelation) {
  MemVfs vfs;
  StoreBasketsTsv(vfs);
  Shell shell;
  shell.set_vfs(&vfs);
  Result<std::string> out =
      shell.Execute("LOAD baskets APPEND FROM delta.tsv");
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(out.status().message().find("needs an existing relation"),
            std::string::npos);
}

// --- API-level decision and differential coverage ---

Database ApiBaskets() {
  Database db;
  Relation r("baskets", Schema({"BID", "Item"}));
  for (int b = 1; b <= 6; ++b) {
    r.AddRow({Value(b), Value(b % 3)});
    r.AddRow({Value(b), Value(3 + b % 2)});
    r.AddRow({Value(b), Value(5)});
  }
  db.PutRelation(std::move(r));
  return db;
}

QueryFlock ApiPairs(int support) {
  auto f = MakeFlock(
      "answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2",
      FilterCondition::MinSupport(support));
  EXPECT_TRUE(f.ok()) << f.status().ToString();
  return *f;
}

// Applies `delta` rows to db's `name` relation through AppendRelation and
// records the lineage link, mirroring the shell's LOAD ... APPEND.
void ApiAppend(IncrementalEvaluator& inc, Database& db,
               const std::string& name, const Relation& delta) {
  std::shared_ptr<const Relation> old = db.GetShared(name);
  Result<Relation> merged = AppendRelation(*old, delta);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  db.PutRelation(std::move(*merged));
  inc.RecordAppend(name, std::move(old), db.GetShared(name));
}

TEST(IncrementalEvalApiTest, DifferentialAcrossThreadCounts) {
  std::map<std::string, Relation> no_views;
  for (unsigned threads : {0u, 1u, 4u}) {
    Database db = ApiBaskets();
    IncrementalEvaluator inc;
    QueryFlock flock = ApiPairs(3);
    IncrementalEvalOptions opts;
    opts.threads = threads;
    for (int step = 0; step < 6; ++step) {
      Relation delta("d", Schema({"BID", "Item"}));
      delta.AddRow({Value(10 + step), Value(step % 4)});
      delta.AddRow({Value(10 + step), Value(5)});
      delta.AddRow({Value(1 + step % 6), Value(5)});  // duplicate row
      ApiAppend(inc, db, "baskets", delta);

      Relation served;
      IncrementalRunInfo info;
      Status s = inc.Run("pairs", flock, db, no_views, opts, &served, &info);
      ASSERT_TRUE(s.ok()) << s.ToString();
      ASSERT_TRUE(info.served) << info.decision;
      FlockEvalOptions direct_opts;
      direct_opts.threads = threads;
      Result<Relation> direct = EvaluateFlock(flock, db, direct_opts);
      ASSERT_TRUE(direct.ok()) << direct.status().ToString();
      EXPECT_EQ(served.schema().columns(), direct->schema().columns());
      EXPECT_EQ(served.rows(), direct->rows())
          << "threads=" << threads << " step=" << step
          << " decision=" << info.decision;
      if (step > 0) {
        EXPECT_EQ(info.decision.rfind("delta(", 0), 0u) << info.decision;
      }
    }
  }
}

TEST(IncrementalEvalApiTest, BudgetEvictsBeforeBuildAndOnDeltas) {
  std::map<std::string, Relation> no_views;
  Database db = ApiBaskets();
  IncrementalEvaluator inc;
  QueryFlock flock = ApiPairs(2);
  Relation served;
  IncrementalRunInfo info;

  // A 1-byte budget cannot hold any state: nothing is cached.
  IncrementalEvalOptions tiny;
  tiny.state_budget = 1;
  ASSERT_TRUE(
      inc.Run("pairs", flock, db, no_views, tiny, &served, &info).ok());
  EXPECT_FALSE(info.served);
  EXPECT_EQ(info.decision, "evicted(budget)");
  EXPECT_EQ(inc.state("pairs"), nullptr);

  // A generous budget builds; a later shrink evicts on the delta path.
  IncrementalEvalOptions big;
  big.state_budget = 1 << 20;
  ASSERT_TRUE(
      inc.Run("pairs", flock, db, no_views, big, &served, &info).ok());
  EXPECT_TRUE(info.served);
  EXPECT_EQ(info.decision, "build");
  ASSERT_NE(inc.state("pairs"), nullptr);

  Relation delta("d", Schema({"BID", "Item"}));
  delta.AddRow({Value(50), Value(5)});
  ApiAppend(inc, db, "baskets", delta);
  ASSERT_TRUE(
      inc.Run("pairs", flock, db, no_views, tiny, &served, &info).ok());
  EXPECT_FALSE(info.served);
  EXPECT_EQ(info.decision, "evicted(budget)");
  EXPECT_EQ(inc.state("pairs"), nullptr);
}

TEST(IncrementalEvalApiTest, UnsupportedShapes) {
  std::map<std::string, Relation> views;
  Database db = ApiBaskets();
  IncrementalEvaluator inc;
  Relation served;
  IncrementalRunInfo info;
  IncrementalEvalOptions opts;

  // Non-monotone filter (COUNT <= n): never served.
  auto nm = MakeFlock("answer(B) :- baskets(B,$1)",
                      {FilterAgg::kCount, CompareOp::kLe, 5, 0});
  ASSERT_TRUE(nm.ok());
  ASSERT_TRUE(inc.Run("nm", *nm, db, views, opts, &served, &info).ok());
  EXPECT_FALSE(info.served);
  EXPECT_EQ(info.decision, "unsupported(non-monotone)");

  // Missing predicate: the full evaluator owns the (error) statement.
  QueryFlock missing = *MakeFlock("answer(B) :- shelves(B,$1)",
                                  FilterCondition::MinSupport(2));
  ASSERT_TRUE(
      inc.Run("m", missing, db, views, opts, &served, &info).ok());
  EXPECT_FALSE(info.served);
  EXPECT_EQ(info.decision, "unsupported(missing:shelves)");

  // View predicate: uncached, and an existing state is dropped.
  views.emplace("baskets", Relation("baskets", Schema({"BID", "Item"})));
  QueryFlock pairs = ApiPairs(2);
  ASSERT_TRUE(
      inc.Run("pairs", pairs, db, views, opts, &served, &info).ok());
  EXPECT_FALSE(info.served);
  EXPECT_EQ(info.decision, "unsupported(view:baskets)");
}

TEST(IncrementalEvalApiTest, MultiRelationAndMultiOccurrenceDeltas) {
  // Two changed relations in one run, plus a predicate occurring twice in
  // the CQ (each positive occurrence gets its own delta rewrite).
  std::map<std::string, Relation> no_views;
  Database db;
  Relation b("baskets", Schema({"BID", "Item"}));
  b.AddRow({Value(1), Value(1)});
  b.AddRow({Value(1), Value(2)});
  b.AddRow({Value(2), Value(1)});
  db.PutRelation(std::move(b));
  Relation p("promo", Schema({"Item"}));
  p.AddRow({Value(1)});
  db.PutRelation(std::move(p));

  auto flock = MakeFlock(
      "answer(B) :- baskets(B,$1) AND baskets(B,$2) AND promo($1) AND "
      "$1 < $2",
      FilterCondition::MinSupport(1));
  ASSERT_TRUE(flock.ok()) << flock.status().ToString();

  IncrementalEvaluator inc;
  IncrementalEvalOptions opts;
  Relation served;
  IncrementalRunInfo info;
  ASSERT_TRUE(
      inc.Run("f", *flock, db, no_views, opts, &served, &info).ok());
  ASSERT_TRUE(info.served);

  Relation db_delta("d", Schema({"BID", "Item"}));
  db_delta.AddRow({Value(2), Value(3)});
  db_delta.AddRow({Value(3), Value(2)});
  db_delta.AddRow({Value(3), Value(3)});
  ApiAppend(inc, db, "baskets", db_delta);
  Relation promo_delta("d", Schema({"Item"}));
  promo_delta.AddRow({Value(2)});
  ApiAppend(inc, db, "promo", promo_delta);

  ASSERT_TRUE(
      inc.Run("f", *flock, db, no_views, opts, &served, &info).ok());
  ASSERT_TRUE(info.served) << info.decision;
  EXPECT_EQ(info.decision, "delta(+4 rows)");
  ASSERT_EQ(info.delta_rows.size(), 2u);
  Result<Relation> direct = EvaluateFlock(*flock, db);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(served.rows(), direct->rows());
}

TEST(IncrementalEvalApiTest, UnrelatedRelationChangeStaysCached) {
  std::map<std::string, Relation> no_views;
  Database db = ApiBaskets();
  IncrementalEvaluator inc;
  QueryFlock flock = ApiPairs(2);
  IncrementalEvalOptions opts;
  Relation served;
  IncrementalRunInfo info;
  ASSERT_TRUE(
      inc.Run("pairs", flock, db, no_views, opts, &served, &info).ok());
  // Mutating a relation the flock never reads must not invalidate: the
  // generation probe misses but the per-mark handles all match.
  Relation other("other", Schema({"X"}));
  other.AddRow({Value(1)});
  db.PutRelation(std::move(other));
  ASSERT_TRUE(
      inc.Run("pairs", flock, db, no_views, opts, &served, &info).ok());
  EXPECT_TRUE(info.served);
  EXPECT_EQ(info.decision, "cached");
  // And the refreshed generation makes the next probe cheap again.
  ASSERT_NE(inc.state("pairs"), nullptr);
  EXPECT_EQ(inc.state("pairs")->last_generation(), db.generation());
}

// --- quick differential schedules (the full sweep is the slow suite) ---

TEST(IncrementalDiffTest, QuickScheduleInMemory) {
  DiffScheduleOptions opts;
  opts.seed = 42;
  opts.steps = 18;
  DeltaReplayHarness h(opts);
  h.RunSchedule();
  EXPECT_GT(h.runs_compared(), 0);
}

TEST(IncrementalDiffTest, QuickScheduleThreaded) {
  DiffScheduleOptions opts;
  opts.seed = 7;
  opts.steps = 15;
  opts.threads = 4;
  DeltaReplayHarness h(opts);
  h.RunSchedule();
}

TEST(IncrementalDiffTest, QuickScheduleWithCatalog) {
  DiffScheduleOptions opts;
  opts.seed = 19;
  opts.steps = 15;
  opts.use_catalog = true;
  DeltaReplayHarness h(opts);
  h.RunSchedule();
}

TEST(IncrementalDiffTest, QuickScheduleUnderMemoryBudget) {
  DiffScheduleOptions opts;
  opts.seed = 23;
  opts.steps = 12;
  opts.memory_mb = 64;  // generous enough to pass, exercises the checks
  DeltaReplayHarness h(opts);
  h.RunSchedule();
}

// --- pooled state budget: retention priority under pressure ---

// Three same-shape flocks whose states are the same size. The budget
// holds two. The hot flock is re-served between the cold builds, so when
// the third state needs room the evaluator must evict the cold one —
// least-recently-served — never the hot one.
TEST(IncrementalEvictionTest, HotFlockSurvivesColdPressure) {
  Database db;
  for (const char* rel : {"hot_r", "cold1_r", "cold2_r"}) {
    Relation r(rel, Schema({"BID", "Item"}));
    for (int b = 0; b < 40; ++b) {
      r.AddRow({Value(b), Value("x" + std::to_string(b % 7))});
    }
    db.PutRelation(std::move(r));
  }
  auto flock_for = [](const std::string& rel) {
    Result<QueryFlock> f = MakeFlock("answer(B) :- " + rel + "(B,$1)",
                                     FilterCondition::MinSupport(1));
    EXPECT_TRUE(f.ok()) << f.status().ToString();
    return *f;
  };
  QueryFlock hot = flock_for("hot_r");
  QueryFlock cold1 = flock_for("cold1_r");
  QueryFlock cold2 = flock_for("cold2_r");

  IncrementalEvaluator inc;
  std::map<std::string, Relation> views;
  Relation result;
  IncrementalRunInfo info;
  IncrementalEvalOptions opts;  // unlimited for the sizing run

  ASSERT_TRUE(inc.Run("hot", hot, db, views, opts, &result, &info).ok());
  ASSERT_TRUE(info.served);
  ASSERT_NE(inc.state("hot"), nullptr);
  std::uint64_t one = inc.state("hot")->ApproxBytes();
  ASSERT_GT(one, 0u);

  // Room for two states, not three.
  opts.state_budget = 2 * one + one / 2;

  ASSERT_TRUE(inc.Run("hot", hot, db, views, opts, &result, &info).ok());
  EXPECT_EQ(info.decision, "cached");
  ASSERT_TRUE(inc.Run("cold1", cold1, db, views, opts, &result, &info).ok());
  ASSERT_TRUE(info.served);
  EXPECT_EQ(inc.budget_evictions(), 0u);  // both fit

  // Touch hot again, then bring in the third state: cold1 must go.
  ASSERT_TRUE(inc.Run("hot", hot, db, views, opts, &result, &info).ok());
  EXPECT_EQ(info.decision, "cached");
  ASSERT_TRUE(inc.Run("cold2", cold2, db, views, opts, &result, &info).ok());
  ASSERT_TRUE(info.served);

  EXPECT_EQ(inc.budget_evictions(), 1u);
  EXPECT_NE(inc.state("hot"), nullptr);
  EXPECT_EQ(inc.state("cold1"), nullptr);
  EXPECT_NE(inc.state("cold2"), nullptr);

  // The hot state still serves straight from cache.
  ASSERT_TRUE(inc.Run("hot", hot, db, views, opts, &result, &info).ok());
  EXPECT_EQ(info.decision, "cached");
}

// Only a state that cannot fit in the WHOLE budget by itself is dropped.
TEST(IncrementalEvictionTest, OversizedStateAloneIsEvicted) {
  Database db;
  Relation r("big_r", Schema({"BID", "Item"}));
  for (int b = 0; b < 200; ++b) {
    r.AddRow({Value(b), Value("x" + std::to_string(b))});
  }
  db.PutRelation(std::move(r));
  Result<QueryFlock> flock = MakeFlock("answer(B) :- big_r(B,$1)",
                                       FilterCondition::MinSupport(1));
  ASSERT_TRUE(flock.ok());

  IncrementalEvaluator inc;
  std::map<std::string, Relation> views;
  Relation result;
  IncrementalRunInfo info;
  IncrementalEvalOptions opts;
  opts.state_budget = 1;  // nothing fits
  ASSERT_TRUE(inc.Run("big", *flock, db, views, opts, &result, &info).ok());
  EXPECT_FALSE(info.served);
  EXPECT_EQ(info.decision, "evicted(budget)");
  EXPECT_EQ(inc.state_count(), 0u);
}

}  // namespace
}  // namespace qf
