// Paged columnar relation files (storage/page.h) and their catalog
// integration: write/open round trips at several page sizes, per-page
// corruption detection, the QFSNAP02 paged-snapshot layout, orphan
// sweeps, crash-point recovery of a paged checkpoint, buffer-pool-backed
// opens, and the shell's SET BUFFER knob.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/resource.h"
#include "common/status.h"
#include "common/vfs.h"
#include "relational/relation.h"
#include "shell/shell.h"
#include "storage/buffer_pool.h"
#include "storage/catalog.h"
#include "storage/page.h"

namespace qf {
namespace {

Relation BuildRelation(const std::string& name, int rows) {
  Relation r(name, Schema({"A", "B", "C"}));
  for (int i = 0; i < rows; ++i) {
    r.AddRow({Value(i), Value("item-" + std::to_string(i % 37)),
              Value(i * 0.5 - 10.0)});
  }
  return r;
}

void RewriteFile(Vfs& vfs, const std::string& path, const std::string& bytes) {
  Result<std::unique_ptr<WritableFile>> f = vfs.OpenTrunc(path);
  ASSERT_TRUE(f.ok()) << f.status().ToString();
  ASSERT_TRUE((*f)->Append(bytes).ok());
  ASSERT_TRUE((*f)->Close().ok());
}

std::string MustRun(Shell& shell, const std::string& stmt) {
  Result<std::string> out = shell.Execute(stmt);
  EXPECT_TRUE(out.ok()) << out.status().ToString() << " for: " << stmt;
  return out.ok() ? *out : std::string();
}

// RUN output minus its first line (which embeds wall-clock time).
std::string ResultBody(const std::string& out) {
  std::size_t nl = out.find('\n');
  return nl == std::string::npos ? out : out.substr(nl + 1);
}

// ------------------------------------------------------ page round trips

TEST(PagedRelationTest, RoundTripSinglePage) {
  MemVfs vfs;
  Relation original = BuildRelation("small", 10);
  Result<PagedWriteInfo> info = WritePagedRelation(vfs, "r.qfp", original);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->pages, 1u);

  Result<std::unique_ptr<DiskRelation>> disk = DiskRelation::Open(vfs, "r.qfp");
  ASSERT_TRUE(disk.ok()) << disk.status().ToString();
  EXPECT_EQ((*disk)->name(), "small");
  EXPECT_EQ((*disk)->row_count(), 10u);
  EXPECT_EQ((*disk)->schema().columns(),
            (std::vector<std::string>{"A", "B", "C"}));
  Result<Relation> back = (*disk)->ReadAll();
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->rows(), original.rows());
}

TEST(PagedRelationTest, RoundTripManyPagesPreservesRowOrder) {
  MemVfs vfs;
  Relation original = BuildRelation("big", 1000);
  // Tiny page target so the relation spans many pages.
  Result<PagedWriteInfo> info =
      WritePagedRelation(vfs, "r.qfp", original, nullptr, /*page_bytes=*/512);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_GT(info->pages, 10u);

  Result<std::unique_ptr<DiskRelation>> disk = DiskRelation::Open(vfs, "r.qfp");
  ASSERT_TRUE(disk.ok()) << disk.status().ToString();
  EXPECT_EQ((*disk)->page_count(), info->pages);
  EXPECT_EQ((*disk)->row_count(), 1000u);
  Result<Relation> back = (*disk)->ReadAll();
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->rows(), original.rows());

  // Scan streams the same rows in the same order.
  std::vector<Tuple> scanned;
  Status s = (*disk)->Scan([&](const Tuple& t) {
    scanned.push_back(t);
    return Status::Ok();
  });
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(scanned, original.rows());
}

TEST(PagedRelationTest, RoundTripEmptyRelation) {
  MemVfs vfs;
  Relation original("empty", Schema({"X", "Y"}));
  Result<PagedWriteInfo> info = WritePagedRelation(vfs, "r.qfp", original);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  Result<std::unique_ptr<DiskRelation>> disk = DiskRelation::Open(vfs, "r.qfp");
  ASSERT_TRUE(disk.ok()) << disk.status().ToString();
  EXPECT_EQ((*disk)->row_count(), 0u);
  Result<Relation> back = (*disk)->ReadAll();
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->size(), 0u);
  EXPECT_EQ(back->schema().columns(), (std::vector<std::string>{"X", "Y"}));
}

TEST(PagedRelationTest, CorruptPageByteIsTypedIoError) {
  MemVfs vfs;
  ASSERT_TRUE(
      WritePagedRelation(vfs, "r.qfp", BuildRelation("big", 400), nullptr, 512)
          .ok());
  Result<std::string> bytes = vfs.ReadFile("r.qfp");
  ASSERT_TRUE(bytes.ok());
  // Flip one byte inside the first page's payload. The footer and
  // directory stay intact, so Open succeeds and the damage surfaces as a
  // typed IO_ERROR on the read of that page, never as wrong rows.
  std::string corrupt = *bytes;
  corrupt[kPageMagicLen + 12] ^= 0x40;
  RewriteFile(vfs, "r.qfp", corrupt);

  Result<std::unique_ptr<DiskRelation>> disk = DiskRelation::Open(vfs, "r.qfp");
  ASSERT_TRUE(disk.ok()) << disk.status().ToString();
  Result<std::shared_ptr<const RelationPage>> page = (*disk)->ReadPage(0);
  EXPECT_FALSE(page.ok());
  EXPECT_EQ(page.status().code(), StatusCode::kIoError)
      << page.status().ToString();
  Result<Relation> all = (*disk)->ReadAll();
  EXPECT_FALSE(all.ok());
}

TEST(PagedRelationTest, TruncationsFailCleanlyAtOpen) {
  MemVfs vfs;
  ASSERT_TRUE(
      WritePagedRelation(vfs, "r.qfp", BuildRelation("big", 200), nullptr, 512)
          .ok());
  Result<std::string> bytes = vfs.ReadFile("r.qfp");
  ASSERT_TRUE(bytes.ok());
  for (std::size_t len : {std::size_t{0}, std::size_t{4}, kPageMagicLen,
                          bytes->size() / 2, bytes->size() - 1}) {
    RewriteFile(vfs, "t.qfp", bytes->substr(0, len));
    Result<std::unique_ptr<DiskRelation>> disk =
        DiskRelation::Open(vfs, "t.qfp");
    EXPECT_FALSE(disk.ok()) << "length " << len;
  }
}

TEST(PagedRelationTest, BufferPoolBackedReadsHitOnRepeat) {
  MemVfs vfs;
  ASSERT_TRUE(
      WritePagedRelation(vfs, "r.qfp", BuildRelation("big", 500), nullptr, 512)
          .ok());
  BufferPool pool(1 << 20);
  Result<std::unique_ptr<DiskRelation>> disk =
      DiskRelation::Open(vfs, "r.qfp", &pool);
  ASSERT_TRUE(disk.ok());
  Result<Relation> first = (*disk)->ReadAll();
  ASSERT_TRUE(first.ok());
  BufferPoolStats after_first = pool.stats();
  EXPECT_EQ(after_first.misses, (*disk)->page_count());
  Result<Relation> second = (*disk)->ReadAll();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->rows(), second->rows());
  BufferPoolStats after_second = pool.stats();
  EXPECT_EQ(after_second.misses, after_first.misses);  // all hits
  EXPECT_EQ(after_second.hits, after_first.hits + (*disk)->page_count());
}

// ------------------------------------------------------ catalog paging

CatalogOptions PageEverything(BufferPool* pool = nullptr) {
  CatalogOptions o;
  o.paged_threshold_bytes = 1;  // every named relation pages out
  o.pool = pool;
  return o;
}

TEST(PagedCatalogTest, CheckpointWritesSnap02AndReopenRestoresState) {
  MemVfs vfs;
  std::string oracle;
  {
    Result<std::unique_ptr<Catalog>> cat =
        Catalog::Open(vfs, "db", nullptr, PageEverything());
    ASSERT_TRUE(cat.ok()) << cat.status().ToString();
    ASSERT_TRUE((*cat)->PutRelation(BuildRelation("big", 600)).ok());
    ASSERT_TRUE((*cat)->PutRelation(BuildRelation("other", 50)).ok());
    ASSERT_TRUE((*cat)->Checkpoint().ok());
    Result<std::string> enc = EncodeCatalogState((*cat)->state());
    ASSERT_TRUE(enc.ok());
    oracle = *enc;
  }
  Result<std::string> snap = vfs.ReadFile("db/catalog.snap");
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(snap->substr(0, 8), "QFSNAP02");
  Result<std::vector<std::string>> pages = vfs.ListDir("db/pages");
  ASSERT_TRUE(pages.ok());
  EXPECT_EQ(pages->size(), 2u);

  Result<std::unique_ptr<Catalog>> back =
      Catalog::Open(vfs, "db", nullptr, PageEverything());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ((*back)->open_info().paged_relations, 2u);
  Result<std::string> enc = EncodeCatalogState((*back)->state());
  ASSERT_TRUE(enc.ok());
  EXPECT_EQ(*enc, oracle);
}

TEST(PagedCatalogTest, SmallRelationsKeepInlineSnap01) {
  MemVfs vfs;
  Result<std::unique_ptr<Catalog>> cat = Catalog::Open(vfs, "db");
  ASSERT_TRUE(cat.ok());
  ASSERT_TRUE((*cat)->PutRelation(BuildRelation("small", 20)).ok());
  ASSERT_TRUE((*cat)->Checkpoint().ok());
  Result<std::string> snap = vfs.ReadFile("db/catalog.snap");
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(snap->substr(0, 8), "QFSNAP01");
}

TEST(PagedCatalogTest, OpenSweepsOrphanPageAndSpillFiles) {
  MemVfs vfs;
  {
    Result<std::unique_ptr<Catalog>> cat =
        Catalog::Open(vfs, "db", nullptr, PageEverything());
    ASSERT_TRUE(cat.ok());
    ASSERT_TRUE((*cat)->PutRelation(BuildRelation("big", 300)).ok());
    ASSERT_TRUE((*cat)->Checkpoint().ok());
  }
  Result<std::vector<std::string>> live = vfs.ListDir("db/pages");
  ASSERT_TRUE(live.ok());
  ASSERT_EQ(live->size(), 1u);
  std::string live_name = (*live)[0];
  // Plant a stale page file and an orphaned spill file (crash leftovers).
  RewriteFile(vfs, "db/pages/stale.0.qfp", "junk");
  ASSERT_TRUE(vfs.CreateDirs("db/spill").ok());
  RewriteFile(vfs, "db/spill/qfspill-7", "junk");

  Result<std::unique_ptr<Catalog>> back =
      Catalog::Open(vfs, "db", nullptr, PageEverything());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_GE((*back)->open_info().orphans_removed, 2u);
  EXPECT_FALSE(vfs.Exists("db/pages/stale.0.qfp"));
  EXPECT_FALSE(vfs.Exists("db/spill/qfspill-7"));
  EXPECT_TRUE(vfs.Exists("db/pages/" + live_name));
}

TEST(PagedCatalogTest, CrashAtEveryCheckpointOpRecoversExactState) {
  // Fault-free dry run to learn how many mutating ops a paged checkpoint
  // performs, then crash at each one in turn. After every crash the
  // durable view must recover to exactly the acknowledged state.
  std::uint64_t checkpoint_ops = 0;
  {
    MemVfs base;
    FaultVfs fault(base);
    Result<std::unique_ptr<Catalog>> cat =
        Catalog::Open(fault, "db", nullptr, PageEverything());
    ASSERT_TRUE(cat.ok());
    ASSERT_TRUE((*cat)->PutRelation(BuildRelation("big", 300)).ok());
    std::uint64_t before = fault.op_count();
    ASSERT_TRUE((*cat)->Checkpoint().ok());
    checkpoint_ops = fault.op_count() - before;
  }
  ASSERT_GT(checkpoint_ops, 0u);

  for (std::uint64_t k = 1; k <= checkpoint_ops; ++k) {
    MemVfs base;
    FaultVfs fault(base);
    std::string oracle;
    {
      Result<std::unique_ptr<Catalog>> cat =
          Catalog::Open(fault, "db", nullptr, PageEverything());
      ASSERT_TRUE(cat.ok());
      ASSERT_TRUE((*cat)->PutRelation(BuildRelation("big", 300)).ok());
      Result<std::string> enc = EncodeCatalogState((*cat)->state());
      ASSERT_TRUE(enc.ok());
      oracle = *enc;
      FaultPlan plan;
      plan.crash_at_op = fault.op_count() + k;
      fault.set_plan(plan);
      (void)(*cat)->Checkpoint();  // dies somewhere inside
    }
    base.Crash();
    Result<std::unique_ptr<Catalog>> back =
        Catalog::Open(base, "db", nullptr, PageEverything());
    ASSERT_TRUE(back.ok()) << "crash op " << k << ": "
                           << back.status().ToString();
    Result<std::string> enc = EncodeCatalogState((*back)->state());
    ASSERT_TRUE(enc.ok());
    EXPECT_EQ(*enc, oracle) << "crash op " << k;
  }
}

TEST(PagedCatalogTest, ReopenThroughBufferPoolPopulatesCache) {
  MemVfs vfs;
  {
    Result<std::unique_ptr<Catalog>> cat =
        Catalog::Open(vfs, "db", nullptr, PageEverything());
    ASSERT_TRUE(cat.ok());
    ASSERT_TRUE((*cat)->PutRelation(BuildRelation("big", 600)).ok());
    ASSERT_TRUE((*cat)->Checkpoint().ok());
  }
  BufferPool pool(1 << 20);
  Result<std::unique_ptr<Catalog>> back =
      Catalog::Open(vfs, "db", nullptr, PageEverything(&pool));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_GT(pool.stats().misses, 0u);
  EXPECT_EQ((*back)->state().db.Get("big").rows(),
            BuildRelation("big", 600).rows());
}

// ------------------------------------------------------ shell knob

TEST(PagedShellTest, SetBufferKnobPersistsAcrossReopen) {
  MemVfs vfs;
  {
    Shell shell;
    shell.set_vfs(&vfs);
    MustRun(shell, "OPEN db");
    EXPECT_NE(MustRun(shell, "SET BUFFER 16").find("16 MB"),
              std::string::npos);
    EXPECT_EQ(shell.buffer_capacity_bytes(), 16ull * 1024 * 1024);
  }
  Shell again;
  again.set_vfs(&vfs);
  MustRun(again, "OPEN db");
  EXPECT_EQ(again.buffer_capacity_bytes(), 16ull * 1024 * 1024);
  ASSERT_NE(again.buffer_pool(), nullptr);
  EXPECT_EQ(again.buffer_pool()->stats().capacity_bytes,
            16ull * 1024 * 1024);
  // Bad usage is rejected.
  EXPECT_FALSE(again.Execute("SET BUFFER lots").ok());
}

TEST(PagedShellTest, LargeRelationSurvivesShellCheckpointReopen) {
  MemVfs vfs;
  std::string before;
  {
    Shell shell;
    shell.set_vfs(&vfs);
    MustRun(shell, "OPEN db");
    // Big enough that rows * ApproxTupleBytes clears the default paged
    // threshold (256 KiB), so the checkpoint writes a page sidecar.
    MustRun(shell,
            "GEN BASKETS baskets n_baskets=3000 n_items=40 avg_size=5 "
            "theta=0.8 locality=0.5 topics=4 seed=7");
    MustRun(shell,
            "FLOCK pairs QUERY answer(B) :- baskets(B,$1) AND baskets(B,$2) "
            "AND $1 < $2 FILTER COUNT >= 40");
    before = ResultBody(MustRun(shell, "RUN pairs LIMIT 10000"));
    MustRun(shell, "CHECKPOINT");
  }
  Shell again;
  again.set_vfs(&vfs);
  std::string opened = MustRun(again, "OPEN db");
  EXPECT_NE(opened.find("paged: 1 relations"), std::string::npos) << opened;
  ASSERT_NE(again.buffer_pool(), nullptr);
  EXPECT_GT(again.buffer_pool()->stats().misses, 0u);
  EXPECT_EQ(ResultBody(MustRun(again, "RUN pairs LIMIT 10000")), before);
}

}  // namespace
}  // namespace qf
