// Grace-hash spilling (relational/spill.h): checksummed spill-file I/O
// (round trip, corruption, fault injection, orphan cleanup), differential
// suites proving every spill kernel bit-identical to its in-memory
// counterpart, the SpillGroupSink against GroupAggregate∘Distinct, and an
// end-to-end flock evaluation where a budget that used to mean
// RESOURCE_EXHAUSTED now spills to the same answer at several thread
// counts.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "common/resource.h"
#include "common/status.h"
#include "common/vfs.h"
#include "flocks/eval.h"
#include "flocks/flock.h"
#include "relational/ops.h"
#include "relational/relation.h"
#include "relational/spill.h"

namespace qf {
namespace {

// A small-fanout, small-block env so tiny test inputs still exercise the
// partition/merge machinery.
struct TestEnv {
  MemVfs vfs;
  SpillEnv env;
  TestEnv() {
    env.vfs = &vfs;
    env.dir = "spill";
    env.fanout = 4;
    env.block_bytes = 512;
  }
};

// ------------------------------------------------------------- file I/O

TEST(SpillFileTest, WriterReaderRoundTripInOrder) {
  TestEnv t;
  SpillWriter writer(t.env);
  std::vector<std::string> records;
  std::mt19937 rng(42);
  for (int i = 0; i < 500; ++i) {
    // Varying sizes, some empty, some spanning several blocks.
    std::size_t len = static_cast<std::size_t>(rng() % 900);
    std::string rec(len, static_cast<char>('a' + (i % 26)));
    rec += std::to_string(i);
    records.push_back(rec);
    ASSERT_TRUE(writer.Add(rec).ok());
  }
  ASSERT_TRUE(writer.Finish().ok());
  EXPECT_EQ(writer.records(), 500u);

  SpillReader reader(t.vfs, writer.path(), &t.env);
  std::string_view rec;
  std::size_t i = 0;
  while (reader.Next(&rec)) {
    ASSERT_LT(i, records.size());
    EXPECT_EQ(rec, records[i]);
    ++i;
  }
  ASSERT_TRUE(reader.status().ok()) << reader.status().ToString();
  EXPECT_EQ(i, records.size());
  EXPECT_GT(t.env.stats.bytes_written.load(), 0u);
  EXPECT_GT(t.env.stats.bytes_read.load(), 0u);
}

TEST(SpillFileTest, WriterDestructorRemovesFile) {
  TestEnv t;
  std::string path;
  {
    SpillWriter writer(t.env);
    ASSERT_TRUE(writer.Add("payload").ok());
    ASSERT_TRUE(writer.Finish().ok());
    path = writer.path();
    EXPECT_TRUE(t.vfs.Exists(path));
  }
  EXPECT_FALSE(t.vfs.Exists(path));
}

TEST(SpillFileTest, CorruptBlockIsTypedIoErrorNeverWrongData) {
  TestEnv t;
  SpillWriter writer(t.env);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(writer.Add("record-" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(writer.Finish().ok());
  Result<std::string> bytes = t.vfs.ReadFile(writer.path());
  ASSERT_TRUE(bytes.ok());
  std::string corrupt = *bytes;
  corrupt[corrupt.size() / 2] ^= 0x01;
  Result<std::unique_ptr<WritableFile>> f = t.vfs.OpenTrunc(writer.path());
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE((*f)->Append(corrupt).ok());
  ASSERT_TRUE((*f)->Close().ok());

  SpillReader reader(t.vfs, writer.path(), &t.env);
  std::string_view rec;
  std::size_t good = 0;
  while (reader.Next(&rec)) {
    // Records before the damaged block must still be exact.
    EXPECT_EQ(rec, "record-" + std::to_string(good));
    ++good;
  }
  EXPECT_FALSE(reader.status().ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kIoError)
      << reader.status().ToString();
  EXPECT_LT(good, 100u);
}

TEST(SpillFileTest, InjectedWriteFaultLatches) {
  MemVfs base;
  FaultVfs fault(base);
  SpillEnv env;
  env.vfs = &fault;
  env.dir = "spill";
  FaultPlan plan;
  plan.fail_at_op = 2;  // survives CreateDirs, dies soon after
  plan.fail_enospc = true;
  fault.set_plan(plan);
  SpillWriter writer(env);
  Status first;
  for (int i = 0; i < 10000 && first.ok(); ++i) {
    first = writer.Add(std::string(100, 'x'));
  }
  ASSERT_FALSE(first.ok());
  EXPECT_EQ(first.code(), StatusCode::kIoError) << first.ToString();
  // Latched: later calls return the same failure, Finish included.
  EXPECT_FALSE(writer.Add("more").ok());
  EXPECT_FALSE(writer.Finish().ok());
}

TEST(SpillFileTest, RemoveSpillFilesSweepsOnlySpillFiles) {
  MemVfs vfs;
  ASSERT_TRUE(vfs.CreateDirs("dir").ok());
  for (const char* name : {"qfspill-1", "qfspill-2", "keep.dat"}) {
    Result<std::unique_ptr<WritableFile>> f =
        vfs.OpenTrunc(std::string("dir/") + name);
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE((*f)->Append("x").ok());
    ASSERT_TRUE((*f)->Close().ok());
  }
  Result<std::size_t> removed = RemoveSpillFiles(vfs, "dir");
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(*removed, 2u);
  EXPECT_FALSE(vfs.Exists("dir/qfspill-1"));
  EXPECT_TRUE(vfs.Exists("dir/keep.dat"));
  // Missing directory reads as zero orphans.
  Result<std::size_t> none = RemoveSpillFiles(vfs, "no-such-dir");
  ASSERT_TRUE(none.ok());
  EXPECT_EQ(*none, 0u);
}

// ------------------------------------------------- kernel differentials

Relation MakeLeft(int rows, int keys, unsigned seed) {
  Relation r("left", Schema({"A", "B"}));
  std::mt19937 rng(seed);
  for (int i = 0; i < rows; ++i) {
    r.AddRow({Value(static_cast<int>(rng() % 50)),
              Value("k" + std::to_string(rng() % static_cast<unsigned>(keys)))});
  }
  return Distinct(r);
}

Relation MakeRight(int rows, int keys, unsigned seed) {
  Relation r("right", Schema({"B", "C"}));
  std::mt19937 rng(seed);
  for (int i = 0; i < rows; ++i) {
    r.AddRow({Value("k" + std::to_string(rng() % static_cast<unsigned>(keys))),
              Value(static_cast<double>(rng() % 100) / 4.0)});
  }
  return Distinct(r);
}

TEST(SpillKernelTest, NaturalJoinMatchesInMemoryExactly) {
  for (int keys : {1, 3, 17}) {  // 1 = worst-case skew, all rows one key
    TestEnv t;
    Relation a = MakeLeft(400, keys, 1);
    Relation b = MakeRight(300, keys, 2);
    Relation oracle = NaturalJoin(a, b);
    Result<Relation> spilled = SpillNaturalJoin(a, b, t.env);
    ASSERT_TRUE(spilled.ok()) << spilled.status().ToString();
    EXPECT_EQ(spilled->schema().columns(), oracle.schema().columns());
    EXPECT_EQ(spilled->rows(), oracle.rows()) << "keys=" << keys;
    EXPECT_GT(t.env.stats.activations.load(), 0u);
  }
}

TEST(SpillKernelTest, CrossProductFallsBackToInMemoryJoin) {
  TestEnv t;
  Relation a("a", Schema({"A"}));
  Relation b("b", Schema({"B"}));
  for (int i = 0; i < 20; ++i) a.AddRow({Value(i)});
  for (int i = 0; i < 10; ++i) b.AddRow({Value(i * 100)});
  Relation oracle = NaturalJoin(a, b);
  Result<Relation> spilled = SpillNaturalJoin(a, b, t.env);
  ASSERT_TRUE(spilled.ok());
  EXPECT_EQ(spilled->rows(), oracle.rows());
}

TEST(SpillKernelTest, ProjectMatchesFirstOccurrenceOrder) {
  TestEnv t;
  Relation r = MakeLeft(600, 9, 3);
  Relation oracle = Project(r, {"B"});
  Result<Relation> spilled = SpillProject(r, {"B"}, t.env);
  ASSERT_TRUE(spilled.ok()) << spilled.status().ToString();
  EXPECT_EQ(spilled->rows(), oracle.rows());
}

TEST(SpillKernelTest, GroupAggregateMatchesSerialForEveryAggKind) {
  for (AggKind kind :
       {AggKind::kCount, AggKind::kSum, AggKind::kMin, AggKind::kMax}) {
    TestEnv t;
    Relation r = MakeLeft(500, 11, 4);  // duplicate-free (Distinct above)
    Relation oracle = GroupAggregate(r, {"B"}, kind, "A", "_agg");
    Result<Relation> spilled =
        SpillGroupAggregate(r, {"B"}, kind, "A", "_agg", t.env);
    ASSERT_TRUE(spilled.ok()) << spilled.status().ToString();
    EXPECT_EQ(spilled->schema().columns(), oracle.schema().columns());
    EXPECT_EQ(spilled->rows(), oracle.rows())
        << "kind " << static_cast<int>(kind);
  }
}

TEST(SpillKernelTest, FaultSweepNeverYieldsWrongRows) {
  // A one-shot injected I/O failure at every mutating operation in turn:
  // the kernel either fails with the typed error or — when the fault
  // landed on an op the kernel never reached — produces the exact oracle.
  Relation a = MakeLeft(200, 5, 5);
  Relation b = MakeRight(150, 5, 6);
  Relation oracle = NaturalJoin(a, b);
  std::uint64_t total_ops = 0;
  {
    TestEnv t;
    ASSERT_TRUE(SpillNaturalJoin(a, b, t.env).ok());
    // MemVfs does not count ops; rerun against FaultVfs to learn the count.
    MemVfs base;
    FaultVfs fault(base);
    SpillEnv env;
    env.vfs = &fault;
    env.dir = "spill";
    env.fanout = 4;
    env.block_bytes = 512;
    ASSERT_TRUE(SpillNaturalJoin(a, b, env).ok());
    total_ops = fault.op_count();
  }
  ASSERT_GT(total_ops, 0u);
  for (std::uint64_t k = 1; k <= total_ops; ++k) {
    MemVfs base;
    FaultVfs fault(base);
    SpillEnv env;
    env.vfs = &fault;
    env.dir = "spill";
    env.fanout = 4;
    env.block_bytes = 512;
    FaultPlan plan;
    plan.fail_at_op = k;
    fault.set_plan(plan);
    Result<Relation> r = SpillNaturalJoin(a, b, env);
    if (r.ok()) {
      EXPECT_EQ(r->rows(), oracle.rows()) << "fault op " << k;
    } else {
      EXPECT_EQ(r.status().code(), StatusCode::kIoError)
          << "fault op " << k << ": " << r.status().ToString();
    }
  }
}

TEST(SpillKernelTest, CrashMidSpillIsTypedErrorAndLeavesOnlyOrphans) {
  Relation a = MakeLeft(200, 5, 7);
  Relation b = MakeRight(150, 5, 8);
  for (std::uint64_t crash_at : {3u, 9u, 20u}) {
    MemVfs base;
    FaultVfs fault(base);
    SpillEnv env;
    env.vfs = &fault;
    env.dir = "spill";
    env.fanout = 4;
    env.block_bytes = 512;
    FaultPlan plan;
    plan.crash_at_op = crash_at;
    plan.torn_write_bytes = 7;
    fault.set_plan(plan);
    Result<Relation> r = SpillNaturalJoin(a, b, env);
    EXPECT_FALSE(r.ok()) << "crash op " << crash_at;
    // Whatever the crash stranded is exactly what the orphan sweep
    // matches — the next OPEN would clean it.
    base.Crash();
    Result<std::vector<std::string>> left = base.ListDir("spill");
    ASSERT_TRUE(left.ok());
    for (const std::string& name : *left) {
      EXPECT_EQ(name.rfind(kSpillFilePrefix, 0), 0u) << name;
    }
    ASSERT_TRUE(RemoveSpillFiles(base, "spill").ok());
    Result<std::vector<std::string>> after = base.ListDir("spill");
    ASSERT_TRUE(after.ok());
    EXPECT_TRUE(after->empty());
  }
}

// ------------------------------------------------------- group sink

TEST(SpillGroupSinkTest, MatchesGroupAggregateOverDistinctRows) {
  for (AggKind kind :
       {AggKind::kCount, AggKind::kSum, AggKind::kMin, AggKind::kMax}) {
    TestEnv t;
    Schema schema({"K", "H", "V"});
    SpillGroupSink sink(schema, /*key_columns=*/1, kind, "V", "_agg",
                        nullptr, t.env, nullptr, nullptr);
    Relation pushed("pushed", schema);
    std::mt19937 rng(9);
    for (int i = 0; i < 800; ++i) {
      Tuple row{Value("g" + std::to_string(rng() % 13)),
                Value(static_cast<int>(rng() % 40)),
                Value(static_cast<int>(rng() % 25))};
      pushed.Add(row);
      ASSERT_TRUE(sink.Push(row).ok());
    }
    Result<Relation> grouped = sink.Finish();
    ASSERT_TRUE(grouped.ok()) << grouped.status().ToString();
    Relation distinct = Distinct(pushed);
    Relation oracle = GroupAggregate(distinct, {"K"}, kind, "V", "_agg");
    EXPECT_EQ(grouped->schema().columns(), oracle.schema().columns());
    EXPECT_EQ(grouped->rows(), oracle.rows())
        << "kind " << static_cast<int>(kind);
    EXPECT_EQ(sink.answer_rows(), distinct.size());
  }
}

TEST(SpillGroupSinkTest, RowCheckErrorAbortsFinish) {
  TestEnv t;
  Schema schema({"K", "V"});
  auto check = [](const Tuple& row) {
    if (row[1] == Value(-1)) {
      return InvalidArgumentError("negative weight");
    }
    return Status::Ok();
  };
  SpillGroupSink sink(schema, 1, AggKind::kSum, "V", "_agg", check, t.env,
                      nullptr, nullptr);
  ASSERT_TRUE(sink.Push({Value("a"), Value(3)}).ok());
  ASSERT_TRUE(sink.Push({Value("b"), Value(-1)}).ok());
  Result<Relation> grouped = sink.Finish();
  ASSERT_FALSE(grouped.ok());
  EXPECT_NE(grouped.status().ToString().find("negative weight"),
            std::string::npos);
}

// ------------------------------------- end-to-end flock differential

Relation MakeBaskets(int n_baskets, int n_items, unsigned seed) {
  Relation r("baskets", Schema({"BID", "Item"}));
  std::mt19937 rng(seed);
  for (int b = 0; b < n_baskets; ++b) {
    int size = 3 + static_cast<int>(rng() % 5);
    for (int i = 0; i < size; ++i) {
      r.AddRow({Value(b),
                Value("i" + std::to_string(rng() %
                                           static_cast<unsigned>(n_items)))});
    }
  }
  return Distinct(r);
}

// The tentpole's acceptance shape in miniature: a budget under the
// statement's in-memory peak that used to be a hard RESOURCE_EXHAUSTED
// either spills to the bit-identical answer or still fails typed — and at
// least one budget level must actually take the spill path and succeed,
// at every thread count.
TEST(SpillFlockTest, BudgetedEvaluationSpillsToIdenticalAnswer) {
  Database db;
  db.PutRelation(MakeBaskets(500, 25, 11));
  Result<QueryFlock> flock = MakeFlock(
      "answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2",
      FilterCondition::MinSupport(10));
  ASSERT_TRUE(flock.ok()) << flock.status().ToString();

  // Unbudgeted baseline + its accounted peak.
  QueryContext base_ctx;
  FlockEvalOptions base_opts;
  base_opts.threads = 1;
  base_opts.ctx = &base_ctx;
  Result<Relation> baseline = EvaluateFlock(*flock, db, base_opts);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  std::uint64_t peak = base_ctx.peak_bytes();
  ASSERT_GT(peak, 0u);

  bool spilled_and_served = false;
  for (unsigned threads : {0u, 1u, 4u}) {
    for (std::uint64_t budget :
         {peak, peak - peak / 8, peak / 2, peak / 8}) {
      MemVfs vfs;
      SpillEnv env;
      env.vfs = &vfs;
      env.dir = "spill";
      env.fanout = 8;
      env.block_bytes = 4096;
      QueryContext ctx;
      ctx.set_memory_budget(budget);
      ctx.set_spill_env(&env);
      FlockEvalOptions opts;
      opts.threads = threads;
      opts.ctx = &ctx;
      Result<Relation> r = EvaluateFlock(*flock, db, opts);
      if (r.ok()) {
        EXPECT_EQ(r->rows(), baseline->rows())
            << "threads " << threads << " budget " << budget;
        if (env.stats.activations.load() > 0) spilled_and_served = true;
      } else {
        EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted)
            << r.status().ToString();
      }
      // Spill files never outlive the statement.
      Result<std::vector<std::string>> left = vfs.ListDir("spill");
      ASSERT_TRUE(left.ok());
      EXPECT_TRUE(left->empty());
    }
  }
  EXPECT_TRUE(spilled_and_served);
}

}  // namespace
}  // namespace qf
