// Deterministic overload-shedding tests for the server's admission layer
// (network/server.h): queue-limit and per-session-quota rejections are
// typed OVERLOADED error frames (never hangs), shed replies echo the
// right request ids, and Shutdown() drains — every admitted statement is
// executed, answered, and (with a catalog open) WAL-durable before the
// server stops, while new statements shed.
//
// Determinism comes from ServerOptions::statement_hook_for_test: a gate
// parks executors at the start of statement execution, so tests fill the
// queue to exact depths before releasing the workers.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>

#include "common/status.h"
#include "common/vfs.h"
#include "network/client.h"
#include "network/server.h"
#include "shell/shell.h"

namespace qf {
namespace {

// A gate the statement hook blocks on while closed. Tests close it, park
// an executor, pile statements behind it, then open it to let the
// backlog drain.
class Gate {
 public:
  void MaybeBlock() {
    std::unique_lock<std::mutex> lock(mu_);
    if (!closed_) return;
    ++parked_;
    parked_cv_.notify_all();
    open_cv_.wait(lock, [this] { return !closed_; });
    --parked_;
  }

  void Close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }

  void Open() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = false;
    }
    open_cv_.notify_all();
  }

  // Blocks until `n` executors are parked on the gate — i.e. their
  // statements are popped from the queue and mid-"execution".
  void AwaitParked(int n) {
    std::unique_lock<std::mutex> lock(mu_);
    parked_cv_.wait(lock, [this, n] { return parked_ >= n; });
  }

 private:
  std::mutex mu_;
  std::condition_variable open_cv_;
  std::condition_variable parked_cv_;
  int parked_ = 0;
  bool closed_ = false;
};

std::unique_ptr<Server> StartServer(ServerOptions options) {
  options.port = 0;
  Result<std::unique_ptr<Server>> server = Server::Start(std::move(options));
  EXPECT_TRUE(server.ok()) << server.status().ToString();
  return server.ok() ? std::move(*server) : nullptr;
}

Client MustConnect(const Server& server) {
  Result<Client> client = Client::Connect("127.0.0.1", server.port());
  EXPECT_TRUE(client.ok()) << client.status().ToString();
  return client.ok() ? std::move(*client) : Client();
}

// Collects `n` replies and indexes them by request id.
std::map<std::uint64_t, Client::Reply> RecvAll(Client& client, int n) {
  std::map<std::uint64_t, Client::Reply> replies;
  for (int i = 0; i < n; ++i) {
    Result<Client::Reply> reply = client.Recv();
    EXPECT_TRUE(reply.ok()) << reply.status().ToString();
    if (!reply.ok()) break;
    replies[reply->request_id] = *reply;
  }
  return replies;
}

TEST(OverloadTest, QueueFullShedsWithTypedOverloaded) {
  Gate gate;
  ServerOptions options;
  options.executors = 1;
  options.max_queue = 2;
  options.session_quota = 100;
  options.statement_hook_for_test = [&gate] { gate.MaybeBlock(); };
  std::unique_ptr<Server> server = StartServer(std::move(options));
  ASSERT_NE(server, nullptr);
  Client client = MustConnect(*server);

  gate.Close();
  // s1 is popped by the lone executor and parks on the gate; s2 and s3
  // fill the queue; s4 and s5 find it full and shed immediately.
  Result<std::uint64_t> s1 = client.Send("HELP");
  ASSERT_TRUE(s1.ok());
  gate.AwaitParked(1);
  Result<std::uint64_t> s2 = client.Send("HELP");
  Result<std::uint64_t> s3 = client.Send("HELP");
  Result<std::uint64_t> s4 = client.Send("HELP");
  Result<std::uint64_t> s5 = client.Send("HELP");
  ASSERT_TRUE(s2.ok() && s3.ok() && s4.ok() && s5.ok());

  // The shed replies arrive while the executor is still parked: overload
  // is a fast rejection, not a wait.
  std::map<std::uint64_t, Client::Reply> shed = RecvAll(client, 2);
  ASSERT_EQ(shed.size(), 2u);
  for (std::uint64_t id : {*s4, *s5}) {
    ASSERT_TRUE(shed.contains(id));
    EXPECT_EQ(shed[id].status.code(), StatusCode::kOverloaded);
    EXPECT_NE(shed[id].status.message().find("admission queue full"),
              std::string::npos);
  }

  gate.Open();
  std::map<std::uint64_t, Client::Reply> done = RecvAll(client, 3);
  ASSERT_EQ(done.size(), 3u);
  for (std::uint64_t id : {*s1, *s2, *s3}) {
    ASSERT_TRUE(done.contains(id));
    EXPECT_TRUE(done[id].status.ok());
  }
  ServerStats stats = server->stats();
  EXPECT_EQ(stats.shed_queue_full, 2u);
  EXPECT_EQ(stats.statements_admitted, 3u);
  EXPECT_EQ(stats.statements_executed, 3u);
}

TEST(OverloadTest, QuotaIsPerSession) {
  Gate gate;
  ServerOptions options;
  options.executors = 1;
  options.max_queue = 100;
  options.session_quota = 1;
  options.statement_hook_for_test = [&gate] { gate.MaybeBlock(); };
  std::unique_ptr<Server> server = StartServer(std::move(options));
  ASSERT_NE(server, nullptr);
  Client a = MustConnect(*server);
  Client b = MustConnect(*server);

  gate.Close();
  Result<std::uint64_t> a1 = a.Send("HELP");
  ASSERT_TRUE(a1.ok());
  gate.AwaitParked(1);
  // a is at its quota; its next statement sheds. b's quota is its own.
  Result<std::uint64_t> a2 = a.Send("HELP");
  Result<std::uint64_t> b1 = b.Send("HELP");
  ASSERT_TRUE(a2.ok() && b1.ok());

  Result<Client::Reply> shed = a.Recv();
  ASSERT_TRUE(shed.ok());
  EXPECT_EQ(shed->request_id, *a2);
  EXPECT_EQ(shed->status.code(), StatusCode::kOverloaded);
  EXPECT_NE(shed->status.message().find("session quota exceeded"),
            std::string::npos);

  gate.Open();
  Result<Client::Reply> a_done = a.Recv();
  Result<Client::Reply> b_done = b.Recv();
  ASSERT_TRUE(a_done.ok() && b_done.ok());
  EXPECT_TRUE(a_done->status.ok());
  EXPECT_TRUE(b_done->status.ok());
  EXPECT_EQ(server->stats().shed_quota, 1u);
}

TEST(OverloadTest, ShutdownDrainsAdmittedWorkAndShedsNewWork) {
  Gate gate;
  MemVfs vfs;
  ServerOptions options;
  options.executors = 1;
  options.session_vfs = &vfs;
  options.statement_hook_for_test = [&gate] { gate.MaybeBlock(); };
  std::unique_ptr<Server> server = StartServer(std::move(options));
  ASSERT_NE(server, nullptr);
  Client worker = MustConnect(*server);
  Client latecomer = MustConnect(*server);

  // A durable session: the admitted GEN below must be WAL-committed
  // before its reply — shutdown must not lose it.
  ASSERT_TRUE(worker.Execute("OPEN cat").ok());

  gate.Close();
  Result<std::uint64_t> admitted =
      worker.Send("GEN BASKETS b n_baskets=20 n_items=6 seed=2");
  ASSERT_TRUE(admitted.ok());
  gate.AwaitParked(1);

  std::thread shutdown_thread([&server] { server->Shutdown(); });
  // Draining: once Shutdown() has flipped the drain flag, new statements
  // shed with a typed OVERLOADED immediately — even though the executor
  // is still parked. Probe until the flag is observably set (a probe
  // racing ahead of the flag is merely admitted and drains normally).
  int probes = 0;
  while (server->stats().shed_draining == 0) {
    ASSERT_TRUE(latecomer.Send("HELP").ok());
    ++probes;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  gate.Open();
  shutdown_thread.join();

  // Every probe was answered: admitted ones executed during the drain,
  // the rest shed with the draining message — none hang.
  bool saw_draining_shed = false;
  for (int i = 0; i < probes; ++i) {
    Result<Client::Reply> reply = latecomer.Recv();
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    if (!reply->status.ok()) {
      EXPECT_EQ(reply->status.code(), StatusCode::kOverloaded);
      if (reply->status.message().find("shutting down") !=
          std::string::npos) {
        saw_draining_shed = true;
      }
    }
  }
  EXPECT_TRUE(saw_draining_shed);

  // The admitted statement was executed and answered before the drain
  // completed: no acknowledged work was lost.
  Result<Client::Reply> done = worker.Recv();
  ASSERT_TRUE(done.ok()) << done.status().ToString();
  EXPECT_EQ(done->request_id, *admitted);
  EXPECT_TRUE(done->status.ok()) << done->status.ToString();
  ServerStats stats = server->stats();
  EXPECT_GE(stats.statements_executed, 2u);  // OPEN + GEN (+ probes)
  EXPECT_GE(stats.shed_draining, 1u);

  // And it is durable: a fresh shell recovers the relation from the WAL.
  Shell shell;
  shell.set_vfs(&vfs);
  Result<std::string> reopened = shell.Execute("OPEN cat");
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_NE(reopened->find("opened cat: 1 relations"), std::string::npos);
}

TEST(OverloadTest, TwoTimesQueuePressureShedsDoesNotHang) {
  Gate gate;
  ServerOptions options;
  options.executors = 1;
  options.max_queue = 4;
  options.session_quota = 100;
  options.statement_hook_for_test = [&gate] { gate.MaybeBlock(); };
  std::unique_ptr<Server> server = StartServer(std::move(options));
  ASSERT_NE(server, nullptr);
  Client client = MustConnect(*server);

  gate.Close();
  ASSERT_TRUE(client.Send("HELP").ok());  // parks the executor
  gate.AwaitParked(1);
  // 2x the queue limit behind the parked executor: exactly max_queue
  // admit, the rest shed; every single one is answered.
  const int kBurst = 8;
  for (int i = 0; i < kBurst; ++i) ASSERT_TRUE(client.Send("HELP").ok());
  std::map<std::uint64_t, Client::Reply> shed =
      RecvAll(client, kBurst - static_cast<int>(4));
  for (const auto& [id, reply] : shed) {
    EXPECT_EQ(reply.status.code(), StatusCode::kOverloaded) << id;
  }
  gate.Open();
  std::map<std::uint64_t, Client::Reply> done = RecvAll(client, 4 + 1);
  for (const auto& [id, reply] : done) {
    EXPECT_TRUE(reply.status.ok()) << id;
  }
  ServerStats stats = server->stats();
  EXPECT_EQ(stats.statements_received, 1u + kBurst);
  EXPECT_EQ(stats.statements_admitted, 5u);
  EXPECT_EQ(stats.shed_queue_full, 4u);
}

}  // namespace
}  // namespace qf
