// Multi-client differential stress for qfserverd (network/server.h):
// N concurrent clients replay scripted flock workloads and every
// client's byte stream must equal what a serial Shell produces for the
// same script — the server adds concurrency, not nondeterminism. Also
// covers a deadline-limited client timing out mid-flight without
// poisoning its neighbours, and sustained 2x-queue-limit pressure
// degrading into typed sheds rather than hangs.
//
// Labeled "slow": dozens of sessions x full mining runs. The quick
// network/overload suites cover the same code paths for the TSan job.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <regex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/status.h"
#include "network/client.h"
#include "network/server.h"
#include "shell/shell.h"
#include "shell/statement.h"

namespace qf {
namespace {

// RUN output embeds wall-clock timing ("45 assignments in 1.2 ms");
// normalize it so differential comparison sees only the data.
std::string NormalizeTimings(std::string text) {
  static const std::regex kTiming("in [0-9]+(\\.[0-9]+)? ms");
  return std::regex_replace(text, kTiming, "in ? ms");
}

// The scripted workload for client `i`: every client mines its own
// deterministic basket data end to end. Distinct seeds/sizes per client
// make cross-session bleed (one session seeing another's relations or
// knobs) show up as a diff, not a coincidence.
std::vector<std::string> WorkloadStatements(int i) {
  const std::string seed = std::to_string(i + 1);
  const std::string n = std::to_string(60 + (i % 5) * 10);
  return {
      "GEN BASKETS b n_baskets=" + n + " n_items=20 avg_size=5 seed=" + seed,
      "DEFINE bought(B,I) :- b(B,I)",
      "FLOCK pairs QUERY answer(B) :- bought(B,$1) AND bought(B,$2) AND "
      "$1 < $2 FILTER COUNT >= 3",
      "RUN pairs DIRECT LIMIT 5",
      "RUN pairs PLAN LIMIT 5",
      "SHOW RELATIONS",
  };
}

// What a serial, single-session shell says for the same statements.
std::string SerialTranscript(const std::vector<std::string>& statements) {
  Shell shell;
  std::string out;
  for (const std::string& stmt : statements) {
    StatementOutcome outcome = ExecuteStatement(shell, stmt);
    EXPECT_TRUE(outcome.ok()) << stmt << ": " << outcome.status.ToString();
    out += outcome.output;
  }
  return NormalizeTimings(out);
}

std::unique_ptr<Server> StartServer(ServerOptions options = {}) {
  options.port = 0;
  Result<std::unique_ptr<Server>> server = Server::Start(std::move(options));
  EXPECT_TRUE(server.ok()) << server.status().ToString();
  return server.ok() ? std::move(*server) : nullptr;
}

// Runs client `i`'s workload over the wire and returns its normalized
// transcript (empty + ADD_FAILURE on any error).
std::string WireTranscript(std::uint16_t port, int i) {
  Result<Client> client = Client::Connect("127.0.0.1", port);
  if (!client.ok()) {
    ADD_FAILURE() << "connect: " << client.status().ToString();
    return "";
  }
  std::string out;
  for (const std::string& stmt : WorkloadStatements(i)) {
    Result<std::string> reply = client->Execute(stmt);
    if (!reply.ok()) {
      ADD_FAILURE() << "client " << i << ": " << stmt << ": "
                    << reply.status().ToString();
      return "";
    }
    out += *reply;
  }
  return NormalizeTimings(out);
}

void RunDifferentialStress(int n_clients) {
  ServerOptions options;
  options.executors = 4;
  options.max_queue = 256;
  std::unique_ptr<Server> server = StartServer(std::move(options));
  ASSERT_NE(server, nullptr);

  std::vector<std::string> wire(n_clients);
  std::vector<std::thread> threads;
  threads.reserve(n_clients);
  for (int i = 0; i < n_clients; ++i) {
    threads.emplace_back([&server, &wire, i] {
      wire[i] = WireTranscript(server->port(), i);
    });
  }
  for (std::thread& t : threads) t.join();

  // Bit-identical to the serial shell, per client.
  for (int i = 0; i < n_clients; ++i) {
    std::string serial = SerialTranscript(WorkloadStatements(i));
    EXPECT_EQ(wire[i], serial) << "client " << i << " diverged";
  }
  ServerStats stats = server->stats();
  EXPECT_EQ(stats.statements_failed, 0u);
  EXPECT_EQ(stats.protocol_errors, 0u);
  EXPECT_EQ(stats.statements_executed,
            static_cast<std::uint64_t>(n_clients) *
                WorkloadStatements(0).size());
}

TEST(ServerStressTest, SixteenClientsMatchSerialShell) {
  RunDifferentialStress(16);
}

TEST(ServerStressTest, SixtyFourClientsMatchSerialShell) {
  RunDifferentialStress(64);
}

TEST(ServerStressTest, DeadlineClientDoesNotPoisonOthers) {
  std::unique_ptr<Server> server = StartServer();
  ASSERT_NE(server, nullptr);

  // The victim: a tight deadline against a heavy mining statement.
  std::thread victim([&server] {
    Result<Client> client = Client::Connect("127.0.0.1", server->port());
    ASSERT_TRUE(client.ok());
    ASSERT_TRUE(
        client
            ->Execute("GEN BASKETS mb n_baskets=2000 n_items=100 "
                      "avg_size=8 seed=9")
            .ok());
    ASSERT_TRUE(client->Execute("SET TIMEOUT 1").ok());
    Result<std::string> out = client->Execute("MAXIMAL mb SUPPORT 5");
    ASSERT_FALSE(out.ok());
    EXPECT_EQ(out.status().code(), StatusCode::kDeadlineExceeded);
    // The session itself survives its deadline.
    EXPECT_TRUE(client->Execute("SET TIMEOUT 0").ok());
    EXPECT_TRUE(client->Execute("HELP").ok());
  });

  // The neighbours: full workloads, unaffected and still deterministic.
  std::vector<std::string> wire(4);
  std::vector<std::thread> neighbours;
  for (int i = 0; i < 4; ++i) {
    neighbours.emplace_back([&server, &wire, i] {
      wire[i] = WireTranscript(server->port(), i);
    });
  }
  victim.join();
  for (std::thread& t : neighbours) t.join();
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(wire[i], SerialTranscript(WorkloadStatements(i)))
        << "client " << i << " diverged";
  }
}

TEST(ServerStressTest, SustainedOverloadShedsInsteadOfHanging) {
  ServerOptions options;
  options.executors = 2;
  options.max_queue = 8;
  options.session_quota = 64;
  std::unique_ptr<Server> server = StartServer(std::move(options));
  ASSERT_NE(server, nullptr);

  // Each client pipelines 2x the global queue limit without waiting.
  // Contract: every statement is answered — OK or typed OVERLOADED —
  // and the whole burst terminates (a hang would time the test out).
  const int kClients = 4;
  const int kPerClient = 16;  // 4 * 16 = 8x queue capacity overall
  std::vector<int> ok_count(kClients);
  std::vector<int> shed_count(kClients);
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&server, &ok_count, &shed_count, c] {
      Result<Client> client = Client::Connect("127.0.0.1", server->port());
      ASSERT_TRUE(client.ok());
      std::vector<std::uint64_t> ids;
      for (int i = 0; i < kPerClient; ++i) {
        Result<std::uint64_t> id = client->Send("SHOW RELATIONS");
        ASSERT_TRUE(id.ok());
        ids.push_back(*id);
      }
      std::map<std::uint64_t, Status> replies;
      for (int i = 0; i < kPerClient; ++i) {
        Result<Client::Reply> reply = client->Recv();
        ASSERT_TRUE(reply.ok()) << reply.status().ToString();
        replies[reply->request_id] = reply->status;
      }
      for (std::uint64_t id : ids) {
        ASSERT_TRUE(replies.contains(id)) << "request " << id << " unanswered";
        const Status& status = replies[id];
        if (status.ok()) {
          ++ok_count[c];
        } else {
          ASSERT_EQ(status.code(), StatusCode::kOverloaded)
              << status.ToString();
          ++shed_count[c];
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  int total_ok = 0;
  int total_shed = 0;
  for (int c = 0; c < kClients; ++c) {
    total_ok += ok_count[c];
    total_shed += shed_count[c];
  }
  EXPECT_EQ(total_ok + total_shed, kClients * kPerClient);
  // The server did real work and really shed: 8x pressure cannot be
  // absorbed by an 8-slot queue, and an empty queue admits someone.
  EXPECT_GT(total_ok, 0);
  EXPECT_GT(total_shed, 0);
  ServerStats stats = server->stats();
  EXPECT_EQ(stats.statements_executed, static_cast<std::uint64_t>(total_ok));
  EXPECT_EQ(stats.shed_queue_full + stats.shed_quota,
            static_cast<std::uint64_t>(total_shed));
}

}  // namespace
}  // namespace qf
