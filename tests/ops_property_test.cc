// Property tests for the relational operators: on random relations, each
// operator must agree with a brute-force reference implementation, and
// set-semantics invariants (no duplicate rows in any output) must hold.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "common/rng.h"
#include "relational/ops.h"

namespace qf {
namespace {

Relation RandomRelation(Rng& rng, std::vector<std::string> columns,
                        std::size_t rows, int domain) {
  Relation rel{Schema(std::move(columns))};
  for (std::size_t i = 0; i < rows; ++i) {
    Tuple t;
    for (std::size_t c = 0; c < rel.arity(); ++c) {
      t.push_back(Value(static_cast<std::int64_t>(
          rng.NextBelow(static_cast<std::uint32_t>(domain)))));
    }
    rel.Add(std::move(t));
  }
  rel.Dedup();
  return rel;
}

bool IsSet(const Relation& rel) {
  Relation copy = rel;
  copy.Dedup();
  return copy.size() == rel.size();
}

std::vector<Tuple> Sorted(const Relation& rel) {
  std::vector<Tuple> rows = rel.rows();
  std::sort(rows.begin(), rows.end());
  return rows;
}

// Reference natural join: nested loops over all row pairs.
Relation ReferenceNaturalJoin(const Relation& a, const Relation& b) {
  std::vector<std::size_t> a_key, b_key, b_rest;
  for (std::size_t j = 0; j < b.arity(); ++j) {
    auto i = a.schema().IndexOf(b.schema().column(j));
    if (i.has_value()) {
      a_key.push_back(*i);
      b_key.push_back(j);
    } else {
      b_rest.push_back(j);
    }
  }
  std::vector<std::string> columns = a.schema().columns();
  for (std::size_t j : b_rest) columns.push_back(b.schema().column(j));
  Relation out{Schema(columns)};
  for (const Tuple& ta : a.rows()) {
    for (const Tuple& tb : b.rows()) {
      bool match = true;
      for (std::size_t k = 0; k < a_key.size(); ++k) {
        if (!(ta[a_key[k]] == tb[b_key[k]])) {
          match = false;
          break;
        }
      }
      if (!match) continue;
      Tuple combined = ta;
      for (std::size_t j : b_rest) combined.push_back(tb[j]);
      out.Add(std::move(combined));
    }
  }
  return out;
}

class OpsProperty : public ::testing::TestWithParam<int> {
 protected:
  OpsProperty() : rng_(static_cast<std::uint64_t>(GetParam())) {}
  Rng rng_;
};

TEST_P(OpsProperty, NaturalJoinMatchesReference) {
  Relation a = RandomRelation(rng_, {"X", "Y"}, 40, 6);
  Relation b = RandomRelation(rng_, {"Y", "Z"}, 40, 6);
  Relation fast = NaturalJoin(a, b);
  Relation reference = ReferenceNaturalJoin(a, b);
  EXPECT_EQ(Sorted(fast), Sorted(reference));
  EXPECT_TRUE(IsSet(fast));
}

TEST_P(OpsProperty, SortMergeJoinMatchesHashJoin) {
  Relation a = RandomRelation(rng_, {"X", "Y"}, 45, 7);
  Relation b = RandomRelation(rng_, {"Y", "Z"}, 45, 7);
  Relation hash = NaturalJoin(a, b);
  Relation merge = SortMergeJoin(a, b);
  EXPECT_EQ(hash.schema(), merge.schema());
  EXPECT_EQ(Sorted(hash), Sorted(merge));

  // Multi-key overlap as well.
  Relation c = RandomRelation(rng_, {"X", "Y", "W"}, 40, 4);
  Relation d = RandomRelation(rng_, {"X", "Y", "V"}, 40, 4);
  EXPECT_EQ(Sorted(NaturalJoin(c, d)), Sorted(SortMergeJoin(c, d)));

  // Empty sides and cross products delegate correctly.
  Relation empty{Schema({"Y", "Q"})};
  EXPECT_TRUE(SortMergeJoin(a, empty).empty());
  Relation no_shared = RandomRelation(rng_, {"Q"}, 5, 3);
  EXPECT_EQ(SortMergeJoin(a, no_shared).size(),
            NaturalJoin(a, no_shared).size());
}

TEST_P(OpsProperty, ParallelJoinMatchesSerial) {
  // Large enough to cross the parallel threshold with 2 workers.
  Relation a = RandomRelation(rng_, {"X", "Y"}, 10000, 400);
  Relation b = RandomRelation(rng_, {"Y", "Z"}, 3000, 400);
  Relation serial = NaturalJoin(a, b);
  Relation parallel2 = ParallelNaturalJoin(a, b, 2);
  Relation parallel4 = ParallelNaturalJoin(a, b, 4);
  EXPECT_EQ(Sorted(serial), Sorted(parallel2));
  EXPECT_EQ(Sorted(serial), Sorted(parallel4));
  // Small inputs and single-thread fall back to the serial join.
  Relation small = RandomRelation(rng_, {"X", "Y"}, 20, 5);
  EXPECT_EQ(Sorted(NaturalJoin(small, b)),
            Sorted(ParallelNaturalJoin(small, b, 4)));
  EXPECT_EQ(Sorted(serial), Sorted(ParallelNaturalJoin(a, b, 1)));
}

TEST_P(OpsProperty, JoinIsCommutativeUpToColumnOrder) {
  Relation a = RandomRelation(rng_, {"X", "Y"}, 30, 5);
  Relation b = RandomRelation(rng_, {"Y", "Z"}, 30, 5);
  Relation ab = NaturalJoin(a, b);
  Relation ba = NaturalJoin(b, a);
  EXPECT_EQ(ab.size(), ba.size());
  Relation ba_reordered = Project(ba, ab.schema().columns());
  EXPECT_EQ(Sorted(ab), Sorted(ba_reordered));
}

TEST_P(OpsProperty, SemiAntiJoinPartitionInput) {
  Relation a = RandomRelation(rng_, {"X", "Y"}, 50, 6);
  Relation b = RandomRelation(rng_, {"Y", "W"}, 25, 6);
  Relation semi = SemiJoin(a, b);
  Relation anti = AntiJoin(a, b);
  // semi + anti = a, disjointly.
  EXPECT_EQ(semi.size() + anti.size(), a.size());
  EXPECT_EQ(Sorted(Union(semi, anti)), Sorted(a));
  for (const Tuple& t : semi.rows()) EXPECT_FALSE(anti.Contains(t));
}

TEST_P(OpsProperty, SemiJoinEqualsJoinProjection) {
  Relation a = RandomRelation(rng_, {"X", "Y"}, 40, 5);
  Relation b = RandomRelation(rng_, {"Y", "Z"}, 40, 5);
  Relation semi = SemiJoin(a, b);
  Relation via_join = Project(NaturalJoin(a, b), a.schema().columns());
  EXPECT_EQ(Sorted(semi), Sorted(via_join));
}

TEST_P(OpsProperty, UnionDifferenceRoundTrip) {
  Relation a = RandomRelation(rng_, {"X"}, 30, 12);
  Relation b = RandomRelation(rng_, {"X"}, 30, 12);
  // (a ∪ b) - b = a - b; and a ⊆ a ∪ b.
  Relation u = Union(a, b);
  EXPECT_EQ(Sorted(Difference(u, b)), Sorted(Difference(a, b)));
  for (const Tuple& t : a.rows()) EXPECT_TRUE(u.Contains(t));
  EXPECT_TRUE(IsSet(u));
}

TEST_P(OpsProperty, GroupCountMatchesReference) {
  Relation a = RandomRelation(rng_, {"K", "V"}, 60, 6);
  Relation grouped = GroupAggregate(a, {"K"}, AggKind::kCount, "", "n");
  std::map<Value, std::int64_t> reference;
  for (const Tuple& t : a.rows()) ++reference[t[0]];
  EXPECT_EQ(grouped.size(), reference.size());
  for (const Tuple& t : grouped.rows()) {
    EXPECT_EQ(t[1].AsInt(), reference[t[0]]);
  }
}

TEST_P(OpsProperty, GroupSumMatchesReference) {
  Relation a = RandomRelation(rng_, {"K", "V"}, 60, 6);
  Relation grouped = GroupAggregate(a, {"K"}, AggKind::kSum, "V", "s");
  std::map<Value, double> reference;
  for (const Tuple& t : a.rows()) reference[t[0]] += t[1].AsNumber();
  for (const Tuple& t : grouped.rows()) {
    EXPECT_DOUBLE_EQ(t[1].AsNumber(), reference[t[0]]);
  }
}

TEST_P(OpsProperty, ParallelGroupAggregateMatchesSerial) {
  // Big enough to span many morsels. The parallel overload sorts its
  // output and must be bit-identical across thread counts; the serial
  // overload must agree as a set.
  Relation a = RandomRelation(rng_, {"K", "V"}, 6000, 40);
  for (AggKind kind : {AggKind::kCount, AggKind::kSum, AggKind::kMin,
                       AggKind::kMax}) {
    std::string agg_col = kind == AggKind::kCount ? "" : "V";
    Relation serial = GroupAggregate(a, {"K"}, kind, agg_col, "agg");
    Relation t1 = GroupAggregate(a, {"K"}, kind, agg_col, "agg", 1);
    Relation t2 = GroupAggregate(a, {"K"}, kind, agg_col, "agg", 2);
    Relation t8 = GroupAggregate(a, {"K"}, kind, agg_col, "agg", 8);
    EXPECT_EQ(Sorted(serial), Sorted(t1));
    // Exact rows-and-order identity between thread counts.
    EXPECT_EQ(t1.rows(), t2.rows());
    EXPECT_EQ(t1.rows(), t8.rows());
    EXPECT_TRUE(IsSet(t8));
  }
}

TEST_P(OpsProperty, ParallelGroupAggregateEmptyInput) {
  Relation empty{Schema({"K", "V"})};
  for (unsigned threads : {1u, 2u, 8u}) {
    Relation g = GroupAggregate(empty, {"K"}, AggKind::kCount, "", "n",
                                threads);
    EXPECT_TRUE(g.empty());
    EXPECT_EQ(g.schema(), Schema({"K", "n"}));
  }
}

TEST_P(OpsProperty, ParallelGroupAggregateAllOneGroup) {
  // A constant key: every morsel contributes a partial for the same
  // group, exercising the cross-morsel merge on one accumulator.
  Relation a{Schema({"K", "V"})};
  std::int64_t expected_sum = 0;
  for (int i = 0; i < 5000; ++i) {
    std::int64_t v = static_cast<std::int64_t>(rng_.NextBelow(100));
    // Keep V distinct per row so set semantics don't collapse rows.
    a.Add({Value(std::int64_t{1}), Value(v * 8192 + i)});
    expected_sum += v * 8192 + i;
  }
  for (unsigned threads : {1u, 2u, 8u}) {
    Relation count = GroupAggregate(a, {"K"}, AggKind::kCount, "", "n",
                                    threads);
    ASSERT_EQ(count.size(), 1u);
    EXPECT_EQ(count.rows()[0][1].AsInt(), 5000);
    Relation sum = GroupAggregate(a, {"K"}, AggKind::kSum, "V", "s",
                                  threads);
    ASSERT_EQ(sum.size(), 1u);
    EXPECT_DOUBLE_EQ(sum.rows()[0][1].AsNumber(),
                     static_cast<double>(expected_sum));
  }
}

TEST_P(OpsProperty, ParallelGroupSumWithNegativeValuesMatchesSerial) {
  // GroupAggregate itself has no sign restriction (the flock evaluator
  // enforces that); sums over mixed-sign integers are exact and must be
  // identical for every thread count.
  Relation a{Schema({"K", "V"})};
  for (int i = 0; i < 6000; ++i) {
    std::int64_t v = static_cast<std::int64_t>(rng_.NextBelow(50)) - 25;
    a.Add({Value(static_cast<std::int64_t>(rng_.NextBelow(10))),
           Value(v * 8192 + i)});
  }
  Relation t1 = GroupAggregate(a, {"K"}, AggKind::kSum, "V", "s", 1);
  Relation t8 = GroupAggregate(a, {"K"}, AggKind::kSum, "V", "s", 8);
  EXPECT_EQ(t1.rows(), t8.rows());
}

TEST_P(OpsProperty, MetricsRowsOutEqualsCardinality) {
  // Metrics invariant: for every operator, rows_out equals the actual
  // result cardinality and rows_in the actual input sizes — on random
  // relations, for the serial and parallel variants alike.
  Relation a = RandomRelation(rng_, {"X", "Y"}, 60, 6);
  Relation b = RandomRelation(rng_, {"Y", "Z"}, 45, 6);

  OpMetrics join_m;
  Relation joined = NaturalJoin(a, b, &join_m);
  EXPECT_EQ(join_m.rows_in, a.size());
  EXPECT_EQ(join_m.rows_in_right, b.size());
  EXPECT_EQ(join_m.rows_out, joined.size());
  // tuples_probed counts hash-table slot probes across the build and
  // probe phases: every build row and every probe row inspects at least
  // one slot, so the count is bounded below by a.size() + b.size().
  EXPECT_GE(join_m.tuples_probed, a.size() + b.size());

  OpMetrics semi_m, anti_m;
  Relation semi = SemiJoin(a, b, &semi_m);
  Relation anti = AntiJoin(a, b, &anti_m);
  EXPECT_EQ(semi_m.rows_out, semi.size());
  EXPECT_EQ(anti_m.rows_out, anti.size());
  EXPECT_EQ(semi_m.rows_out + anti_m.rows_out, a.size());

  OpMetrics union_m;
  Relation u = Union(semi, anti, &union_m);
  EXPECT_EQ(union_m.rows_in, semi.size());
  EXPECT_EQ(union_m.rows_in_right, anti.size());
  EXPECT_EQ(union_m.rows_out, u.size());

  OpMetrics group_m;
  Relation grouped = GroupAggregate(a, {"X"}, AggKind::kCount, "", "n",
                                    &group_m);
  EXPECT_EQ(group_m.rows_in, a.size());
  EXPECT_EQ(group_m.rows_out, grouped.size());

  OpMetrics project_m, select_m;
  Relation projected = Project(joined, {"X", "Z"}, &project_m);
  EXPECT_EQ(project_m.rows_in, joined.size());
  EXPECT_EQ(project_m.rows_out, projected.size());
  Relation selected = Select(
      joined, [](const Tuple& t) { return t[0].AsInt() % 2 == 0; },
      &select_m);
  EXPECT_EQ(select_m.rows_in, joined.size());
  EXPECT_EQ(select_m.rows_out, selected.size());
}

TEST_P(OpsProperty, MetricsRowCountersThreadInvariant) {
  // The determinism contract extends to metrics: row counters (rows_in,
  // rows_out, tuples_probed) are identical for every thread count.
  // `morsels` reflects the actual decomposition (0 on the serial path,
  // input-size-determined when parallel) and is checked separately.
  Relation a = RandomRelation(rng_, {"X", "Y"}, 10000, 400);
  Relation b = RandomRelation(rng_, {"Y", "Z"}, 3000, 400);
  OpMetrics serial_m;
  Relation serial = NaturalJoin(a, b, &serial_m);
  EXPECT_EQ(serial_m.morsels, 0u);
  std::uint64_t parallel_morsels = 0;
  for (unsigned threads : {2u, 8u}) {
    OpMetrics m;
    Relation parallel = ParallelNaturalJoin(a, b, threads, &m);
    EXPECT_EQ(Sorted(serial), Sorted(parallel));
    EXPECT_EQ(m.rows_in, serial_m.rows_in) << "threads=" << threads;
    EXPECT_EQ(m.rows_in_right, serial_m.rows_in_right);
    EXPECT_EQ(m.rows_out, serial_m.rows_out) << "threads=" << threads;
    EXPECT_EQ(m.tuples_probed, serial_m.tuples_probed);
    EXPECT_GT(m.morsels, 0u) << "threads=" << threads;
    if (parallel_morsels == 0) parallel_morsels = m.morsels;
    // Morsel count depends only on the input size, never on threads.
    EXPECT_EQ(m.morsels, parallel_morsels) << "threads=" << threads;
  }

  OpMetrics g_serial;
  Relation grouped =
      GroupAggregate(a, {"X"}, AggKind::kCount, "", "n", &g_serial);
  for (unsigned threads : {1u, 2u, 8u}) {
    OpMetrics m;
    Relation parallel =
        GroupAggregate(a, {"X"}, AggKind::kCount, "", "n", threads, &m);
    EXPECT_EQ(Sorted(grouped), Sorted(parallel));
    EXPECT_EQ(m.rows_in, g_serial.rows_in) << "threads=" << threads;
    EXPECT_EQ(m.rows_out, g_serial.rows_out) << "threads=" << threads;
  }
}

TEST_P(OpsProperty, MetricsChainLinksRowsAcrossOperators) {
  // Plan-edge invariant: feeding one operator's output into the next, the
  // downstream node's rows_in must equal the upstream node's rows_out.
  Relation a = RandomRelation(rng_, {"X", "Y"}, 50, 5);
  Relation b = RandomRelation(rng_, {"Y", "Z"}, 50, 5);
  OpMetrics root("chain");
  OpMetrics* join_m = root.AddChild("join");
  OpMetrics* group_m = root.AddChild("group_by");
  OpMetrics* project_m = root.AddChild("project");
  Relation joined = NaturalJoin(a, b, join_m);
  Relation grouped =
      GroupAggregate(joined, {"X"}, AggKind::kCount, "", "n", group_m);
  Relation projected = Project(grouped, {"X"}, project_m);
  EXPECT_EQ(group_m->rows_in, join_m->rows_out);
  EXPECT_EQ(project_m->rows_in, group_m->rows_out);
  EXPECT_EQ(project_m->rows_out, projected.size());
  EXPECT_EQ(root.NodeCount(), 4u);
}

TEST_P(OpsProperty, MetricsAccumulateAcrossCalls) {
  // Reusing one node across calls accumulates (+=) — the contract that
  // lets a loop of unions or repeated scans share a node.
  Relation a = RandomRelation(rng_, {"X"}, 30, 10);
  OpMetrics m;
  Relation p1 = Project(a, {"X"}, &m);
  Relation p2 = Project(a, {"X"}, &m);
  EXPECT_EQ(m.rows_in, 2 * a.size());
  EXPECT_EQ(m.rows_out, p1.size() + p2.size());
}

TEST_P(OpsProperty, ProjectIdempotent) {
  Relation a = RandomRelation(rng_, {"X", "Y", "Z"}, 50, 4);
  Relation once = Project(a, {"X", "Z"});
  Relation twice = Project(once, {"X", "Z"});
  EXPECT_EQ(Sorted(once), Sorted(twice));
  EXPECT_TRUE(IsSet(once));
}

INSTANTIATE_TEST_SUITE_P(Seeds, OpsProperty, ::testing::Range(1, 13));

}  // namespace
}  // namespace qf
