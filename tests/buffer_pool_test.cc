// Buffer pool unit + property tests: pin/unpin invariants, clock
// (second-chance) eviction against an oracle replacer model, capacity
// resize, file invalidation, governed-pin accounting, and a concurrent
// pin stress the TSan CI job races.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <random>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/resource.h"
#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/page.h"

namespace qf {
namespace {

std::shared_ptr<const RelationPage> MakePage(std::uint64_t bytes) {
  auto page = std::make_shared<RelationPage>();
  page->bytes = bytes;
  return page;
}

BufferPool::FetchFn CountingFetch(std::uint64_t bytes, int* count) {
  return [bytes, count] {
    ++*count;
    return Result<std::shared_ptr<const RelationPage>>(MakePage(bytes));
  };
}

TEST(BufferPoolTest, SecondPinHits) {
  BufferPool pool(1024);
  int fetches = 0;
  {
    Result<BufferPool::PageRef> a =
        pool.Pin("f", 0, CountingFetch(100, &fetches));
    ASSERT_TRUE(a.ok());
    EXPECT_EQ(a->page()->bytes, 100u);
  }
  Result<BufferPool::PageRef> b =
      pool.Pin("f", 0, CountingFetch(100, &fetches));
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(fetches, 1);
  BufferPoolStats st = pool.stats();
  EXPECT_EQ(st.hits, 1u);
  EXPECT_EQ(st.misses, 1u);
  EXPECT_EQ(st.resident_pages, 1u);
  EXPECT_EQ(st.resident_bytes, 100u);
}

TEST(BufferPoolTest, FetchErrorCachesNothing) {
  BufferPool pool(1024);
  auto failing = [] {
    return Result<std::shared_ptr<const RelationPage>>(
        IoError("disk on fire"));
  };
  Result<BufferPool::PageRef> r = pool.Pin("f", 0, failing);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(pool.stats().resident_pages, 0u);
  // The next pin retries the fetch (nothing poisoned).
  int fetches = 0;
  Result<BufferPool::PageRef> ok = pool.Pin("f", 0, CountingFetch(10, &fetches));
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(fetches, 1);
}

TEST(BufferPoolTest, EvictionKeepsResidencyUnderCapacity) {
  BufferPool pool(100);
  int fetches = 0;
  for (std::uint64_t p = 0; p < 8; ++p) {
    Result<BufferPool::PageRef> r =
        pool.Pin("f", p, CountingFetch(40, &fetches));
    ASSERT_TRUE(r.ok());
  }
  BufferPoolStats st = pool.stats();
  EXPECT_LE(st.resident_bytes, 100u);
  EXPECT_GE(st.evictions, 6u);
  EXPECT_EQ(fetches, 8);
}

TEST(BufferPoolTest, PinnedPagesAreNeverEvictedAndAdmitPastCapacity) {
  BufferPool pool(100);
  int fetches = 0;
  Result<BufferPool::PageRef> held =
      pool.Pin("f", 0, CountingFetch(80, &fetches));
  ASSERT_TRUE(held.ok());
  // Each of these exceeds capacity together with the pinned page, yet
  // every pin succeeds: a pin is a promise.
  for (std::uint64_t p = 1; p < 5; ++p) {
    Result<BufferPool::PageRef> r =
        pool.Pin("f", p, CountingFetch(80, &fetches));
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->page()->bytes, 80u);
  }
  // The held page never refetched.
  Result<BufferPool::PageRef> again =
      pool.Pin("f", 0, CountingFetch(80, &fetches));
  ASSERT_TRUE(again.ok());
  std::uint64_t hits = pool.stats().hits;
  EXPECT_GE(hits, 1u);
}

// Oracle model of the exact clock policy: admission-ordered ring, one
// referenced bit per frame, hand persists across operations, eviction
// runs before admitting the incoming page.
class ClockModel {
 public:
  explicit ClockModel(std::size_t capacity_pages) : cap_(capacity_pages) {}

  // Returns true on hit. Mirrors BufferPool::Pin for unpinned use.
  bool Access(const std::string& key) {
    for (auto& f : ring_) {
      if (f.key == key) {
        f.referenced = true;
        return true;
      }
    }
    // Miss: evict until there is room for one more page.
    std::size_t budget = ring_.size() * 2;
    while (ring_.size() + 1 > cap_ && budget-- > 0 && !ring_.empty()) {
      if (hand_ >= ring_.size()) hand_ = 0;
      if (ring_[hand_].referenced) {
        ring_[hand_].referenced = false;
        ++hand_;
        continue;
      }
      ring_.erase(ring_.begin() + static_cast<std::ptrdiff_t>(hand_));
      if (hand_ >= ring_.size()) hand_ = 0;
    }
    ring_.push_back({key, true});
    return false;
  }

  std::set<std::string> resident() const {
    std::set<std::string> out;
    for (const auto& f : ring_) out.insert(f.key);
    return out;
  }

 private:
  struct Frame {
    std::string key;
    bool referenced;
  };
  std::size_t cap_;
  std::vector<Frame> ring_;
  std::size_t hand_ = 0;
};

TEST(BufferPoolTest, ClockEvictionMatchesOracleModel) {
  // Equal-size pages, capacity = 4 pages, 1000 randomized accesses over
  // 8 distinct pages; the resident set must match the model after every
  // access (same policy, same hand, same bits).
  constexpr std::uint64_t kPageBytes = 10;
  BufferPool pool(4 * kPageBytes);
  ClockModel model(4);
  std::mt19937 rng(20260808);
  std::uniform_int_distribution<int> dist(0, 7);
  int fetches = 0;
  for (int i = 0; i < 1000; ++i) {
    std::uint64_t page = static_cast<std::uint64_t>(dist(rng));
    bool model_hit = model.Access("f#" + std::to_string(page));
    std::uint64_t hits_before = pool.stats().hits;
    Result<BufferPool::PageRef> r =
        pool.Pin("f", page, CountingFetch(kPageBytes, &fetches));
    ASSERT_TRUE(r.ok());
    bool pool_hit = pool.stats().hits > hits_before;
    ASSERT_EQ(pool_hit, model_hit) << "access " << i << " page " << page;
    ASSERT_EQ(pool.stats().resident_pages, model.resident().size());
  }
}

TEST(BufferPoolTest, InvalidateFileRefetchesAndKeepsPinnedDataValid) {
  BufferPool pool(1024);
  int fetches = 0;
  Result<BufferPool::PageRef> held =
      pool.Pin("f", 0, CountingFetch(50, &fetches));
  ASSERT_TRUE(held.ok());
  pool.InvalidateFile("f");
  // The held handle still sees its (stale) page.
  EXPECT_EQ(held->page()->bytes, 50u);
  // A new pin refetches instead of serving the invalidated frame.
  Result<BufferPool::PageRef> fresh =
      pool.Pin("f", 0, CountingFetch(50, &fetches));
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fetches, 2);
  held->Reset();
  fresh->Reset();
  // The lingering unmapped frame is reclaimed by the next sweep.
  pool.set_capacity_bytes(0);
  EXPECT_EQ(pool.stats().resident_pages, 0u);
}

TEST(BufferPoolTest, InvalidateFileOnlyTouchesThatFile) {
  BufferPool pool(1024);
  int fetches = 0;
  { auto r = pool.Pin("a", 0, CountingFetch(10, &fetches)); ASSERT_TRUE(r.ok()); }
  { auto r = pool.Pin("b", 0, CountingFetch(10, &fetches)); ASSERT_TRUE(r.ok()); }
  pool.InvalidateFile("a");
  Result<BufferPool::PageRef> b = pool.Pin("b", 0, CountingFetch(10, &fetches));
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(fetches, 2);  // b still cached
}

TEST(BufferPoolTest, ShrinkEvictsDownToNewCapacity) {
  BufferPool pool(400);
  int fetches = 0;
  for (std::uint64_t p = 0; p < 4; ++p) {
    auto r = pool.Pin("f", p, CountingFetch(100, &fetches));
    ASSERT_TRUE(r.ok());
  }
  EXPECT_EQ(pool.stats().resident_pages, 4u);
  pool.set_capacity_bytes(150);
  EXPECT_LE(pool.stats().resident_bytes, 150u);
}

TEST(BufferPoolTest, GovernedPinChargesWhileHeldAndSurfacesBudgetTrips) {
  BufferPool pool(1024);
  int fetches = 0;
  QueryContext ctx;
  ctx.set_memory_budget(120);
  {
    Result<BufferPool::PageRef> r =
        pool.Pin("f", 0, CountingFetch(100, &fetches), &ctx);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(ctx.used_bytes(), 100u);
    // A second governed pin would exceed the budget: typed error, charge
    // rolled back, page still cached for ungoverned readers.
    Result<BufferPool::PageRef> over =
        pool.Pin("f", 1, CountingFetch(100, &fetches), &ctx);
    EXPECT_FALSE(over.ok());
    EXPECT_EQ(ctx.used_bytes(), 100u);
  }
  EXPECT_EQ(ctx.used_bytes(), 0u);  // released with the handle
  Result<BufferPool::PageRef> free_read =
      pool.Pin("f", 1, CountingFetch(100, &fetches));
  ASSERT_TRUE(free_read.ok());
}

TEST(BufferPoolTest, ConcurrentPinStress) {
  static constexpr std::uint64_t kPageBytes = 64;
  BufferPool pool(4 * kPageBytes);  // forces constant eviction pressure
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&pool, t] {
      std::mt19937 rng(1000 + t);
      std::uniform_int_distribution<int> dist(0, 15);
      for (int i = 0; i < 300; ++i) {
        std::uint64_t page = static_cast<std::uint64_t>(dist(rng));
        Result<BufferPool::PageRef> r = pool.Pin(
            "f", page, [] {
              return Result<std::shared_ptr<const RelationPage>>(
                  MakePage(kPageBytes));
            });
        ASSERT_TRUE(r.ok());
        ASSERT_EQ(r->page()->bytes, kPageBytes);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  BufferPoolStats st = pool.stats();
  EXPECT_EQ(st.hits + st.misses, 4u * 300u);
  // Concurrent pins may legitimately have admitted past capacity (a pin
  // is a promise); once nothing is pinned a sweep restores the bound.
  pool.set_capacity_bytes(4 * kPageBytes);
  EXPECT_LE(pool.stats().resident_bytes, 4 * kPageBytes);
}

}  // namespace
}  // namespace qf
