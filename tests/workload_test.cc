// Tests for the synthetic workload generators: schemas, determinism,
// distributional knobs, and structural invariants.
#include <gtest/gtest.h>

#include <map>

#include "workload/basket_gen.h"
#include "workload/graph_gen.h"
#include "workload/medical_gen.h"
#include "workload/web_gen.h"

namespace qf {
namespace {

TEST(BasketGenTest, SchemaAndSize) {
  Relation r = GenerateBaskets({.n_baskets = 100, .n_items = 20,
                                .avg_basket_size = 5, .zipf_theta = 1.0,
                                .seed = 1});
  EXPECT_EQ(r.name(), "baskets");
  EXPECT_EQ(r.schema(), Schema({"BID", "Item"}));
  EXPECT_GT(r.size(), 100u);  // ~5 items per basket, minus collisions
}

TEST(BasketGenTest, DeterministicForSeed) {
  BasketConfig config{.n_baskets = 50, .n_items = 10, .avg_basket_size = 4,
                      .zipf_theta = 1.0, .seed = 42};
  Relation a = GenerateBaskets(config);
  Relation b = GenerateBaskets(config);
  a.SortRows();
  b.SortRows();
  EXPECT_EQ(a.rows(), b.rows());
}

TEST(BasketGenTest, DifferentSeedsDiffer) {
  BasketConfig a_cfg{.n_baskets = 50, .n_items = 10, .avg_basket_size = 4,
                     .zipf_theta = 1.0, .seed = 1};
  BasketConfig b_cfg = a_cfg;
  b_cfg.seed = 2;
  Relation a = GenerateBaskets(a_cfg);
  Relation b = GenerateBaskets(b_cfg);
  a.SortRows();
  b.SortRows();
  EXPECT_NE(a.rows(), b.rows());
}

TEST(BasketGenTest, ZipfSkewsItemFrequencies) {
  Relation r = GenerateBaskets({.n_baskets = 2000, .n_items = 100,
                                .avg_basket_size = 6, .zipf_theta = 1.2,
                                .seed = 3});
  std::map<Value, int> counts;
  std::size_t item_col = r.schema().IndexOfOrDie("Item");
  for (const Tuple& t : r.rows()) ++counts[t[item_col]];
  // The most popular item should appear far more often than the median.
  std::vector<int> freqs;
  for (auto& [item, c] : counts) freqs.push_back(c);
  std::sort(freqs.rbegin(), freqs.rend());
  EXPECT_GT(freqs.front(), 10 * freqs[freqs.size() / 2]);
}

TEST(BasketGenTest, ItemNamesZeroPadded) {
  Relation r = GenerateBaskets({.n_baskets = 10, .n_items = 5,
                                .avg_basket_size = 3, .zipf_theta = 0,
                                .seed = 4});
  std::size_t item_col = r.schema().IndexOfOrDie("Item");
  for (const Tuple& t : r.rows()) {
    const std::string& name = t[item_col].AsString();
    EXPECT_EQ(name.size(), 9u);  // "item" + 5 digits
    EXPECT_EQ(name.substr(0, 4), "item");
  }
}

TEST(BasketGenTest, ImportanceWeightsPositive) {
  BasketConfig config{.n_baskets = 200, .seed = 5};
  Relation imp = GenerateImportance(config, 10.0);
  EXPECT_EQ(imp.schema(), Schema({"BID", "W"}));
  EXPECT_EQ(imp.size(), 200u);
  std::size_t w = imp.schema().IndexOfOrDie("W");
  double total = 0;
  for (const Tuple& t : imp.rows()) {
    EXPECT_GT(t[w].AsNumber(), 0);
    total += t[w].AsNumber();
  }
  // Heavy-tailed around the requested mean.
  EXPECT_GT(total / imp.size(), 2.0);
}

TEST(MedicalGenTest, AllRelationsPresent) {
  MedicalConfig config;
  config.n_patients = 100;
  Database db = GenerateMedical(config);
  EXPECT_TRUE(db.Has("diagnoses"));
  EXPECT_TRUE(db.Has("exhibits"));
  EXPECT_TRUE(db.Has("treatments"));
  EXPECT_TRUE(db.Has("causes"));
  EXPECT_EQ(db.Get("diagnoses").schema(), Schema({"Patient", "Disease"}));
  EXPECT_EQ(db.Get("causes").schema(), Schema({"Disease", "Symptom"}));
}

TEST(MedicalGenTest, OneDiseasePerPatient) {
  MedicalConfig config;
  config.n_patients = 200;
  config.seed = 6;
  Database db = GenerateMedical(config);
  const Relation& diagnoses = db.Get("diagnoses");
  EXPECT_EQ(diagnoses.size(), 200u);  // exactly one row per patient
  std::set<Value> patients;
  std::size_t p = diagnoses.schema().IndexOfOrDie("Patient");
  for (const Tuple& t : diagnoses.rows()) patients.insert(t[p]);
  EXPECT_EQ(patients.size(), 200u);
}

TEST(MedicalGenTest, EveryPatientHasSymptomAndMedicine) {
  MedicalConfig config;
  config.n_patients = 150;
  config.seed = 7;
  Database db = GenerateMedical(config);
  std::set<Value> with_symptom, with_medicine;
  const Relation& ex = db.Get("exhibits");
  std::size_t pe = ex.schema().IndexOfOrDie("Patient");
  for (const Tuple& t : ex.rows()) with_symptom.insert(t[pe]);
  const Relation& tr = db.Get("treatments");
  std::size_t pt = tr.schema().IndexOfOrDie("Patient");
  for (const Tuple& t : tr.rows()) with_medicine.insert(t[pt]);
  EXPECT_EQ(with_symptom.size(), 150u);
  EXPECT_EQ(with_medicine.size(), 150u);
}

TEST(MedicalGenTest, DeterministicForSeed) {
  MedicalConfig config;
  config.n_patients = 80;
  config.seed = 99;
  Database a = GenerateMedical(config);
  Database b = GenerateMedical(config);
  for (const std::string& name : a.Names()) {
    Relation ra = a.Get(name), rb = b.Get(name);
    ra.SortRows();
    rb.SortRows();
    EXPECT_EQ(ra.rows(), rb.rows()) << name;
  }
}

TEST(WebGenTest, SchemaAndDisjointIds) {
  WebConfig config;
  config.n_docs = 100;
  config.n_anchors = 150;
  config.seed = 8;
  Database db = GenerateWeb(config);
  EXPECT_EQ(db.Get("inTitle").schema(), Schema({"Doc", "Word"}));
  EXPECT_EQ(db.Get("inAnchor").schema(), Schema({"Anchor", "Word"}));
  EXPECT_EQ(db.Get("link").schema(), Schema({"Anchor", "From", "To"}));
  // Anchor ids and doc ids are disjoint (Fig. 4's counting assumption).
  std::set<Value> docs, anchors;
  const Relation& titles = db.Get("inTitle");
  for (const Tuple& t : titles.rows()) docs.insert(t[0]);
  const Relation& anchor_words = db.Get("inAnchor");
  for (const Tuple& t : anchor_words.rows()) anchors.insert(t[0]);
  for (const Value& a : anchors) EXPECT_FALSE(docs.contains(a));
}

TEST(WebGenTest, LinksReferenceGeneratedDocs) {
  WebConfig config;
  config.n_docs = 50;
  config.n_anchors = 80;
  config.seed = 9;
  Database db = GenerateWeb(config);
  const Relation& link = db.Get("link");
  for (const Tuple& t : link.rows()) {
    EXPECT_EQ(t[1].AsString().substr(0, 3), "doc");
    EXPECT_EQ(t[2].AsString().substr(0, 3), "doc");
  }
}

TEST(GraphGenTest, NoSelfLoops) {
  Relation arc = GenerateGraph({.n_nodes = 100, .avg_out_degree = 5,
                                .target_theta = 0.8, .seed = 10});
  EXPECT_EQ(arc.schema(), Schema({"From", "To"}));
  for (const Tuple& t : arc.rows()) EXPECT_NE(t[0], t[1]);
}

TEST(GraphGenTest, SkewProducesHubs) {
  Relation arc = GenerateGraph({.n_nodes = 500, .avg_out_degree = 6,
                                .target_theta = 1.0, .seed = 11});
  std::map<Value, int> in_degree;
  for (const Tuple& t : arc.rows()) ++in_degree[t[1]];
  int max_in = 0;
  for (auto& [node, d] : in_degree) max_in = std::max(max_in, d);
  // A Zipf target distribution concentrates many arcs on a few hubs.
  EXPECT_GT(max_in, 30);
}

TEST(GraphGenTest, DeterministicForSeed) {
  GraphConfig config{.n_nodes = 60, .avg_out_degree = 4, .target_theta = 0.5,
                     .seed = 12};
  Relation a = GenerateGraph(config);
  Relation b = GenerateGraph(config);
  a.SortRows();
  b.SortRows();
  EXPECT_EQ(a.rows(), b.rows());
}

}  // namespace
}  // namespace qf
