// Unit tests for the safety conditions of §3.2-3.3, including the full
// 14-subset truth table of Example 3.2.
#include <gtest/gtest.h>

#include "datalog/parser.h"
#include "datalog/safety.h"

namespace qf {
namespace {

ConjunctiveQuery Parse(const char* text) {
  auto cq = ParseRule(text);
  EXPECT_TRUE(cq.ok()) << cq.status().ToString();
  return *cq;
}

TEST(SafetyTest, SimplePositiveQueryIsSafe) {
  EXPECT_TRUE(IsSafe(Parse("answer(B) :- baskets(B,$1)")));
}

TEST(SafetyTest, HeadVariableMustBeBound) {
  std::string why;
  EXPECT_FALSE(IsSafe(Parse("answer(P) :- NOT causes(D,$s)"), &why));
  EXPECT_NE(why.find("head variable P"), std::string::npos);
}

TEST(SafetyTest, HeadVariableBoundOnlyByNegationIsUnsafe) {
  // Condition (1) demands a *positive* relational subgoal.
  EXPECT_FALSE(IsSafe(Parse("answer(X) :- p(Y) AND NOT q(X)")));
}

TEST(SafetyTest, HeadVariableBoundOnlyByComparisonIsUnsafe) {
  EXPECT_FALSE(IsSafe(Parse("answer(X) :- p(Y) AND X < Y")));
}

TEST(SafetyTest, NegatedVariableMustAppearPositively) {
  std::string why;
  EXPECT_FALSE(
      IsSafe(Parse("answer(P) :- exhibits(P,$s) AND NOT causes(D,$s)"), &why));
  EXPECT_NE(why.find("negated"), std::string::npos);
}

TEST(SafetyTest, NegatedParameterMustAppearPositively) {
  // Parameters are treated as variables by condition (2) — §3.3.
  EXPECT_FALSE(
      IsSafe(Parse("answer(P) :- diagnoses(P,D) AND NOT causes(D,$s)")));
}

TEST(SafetyTest, ArithmeticParameterMustAppearPositively) {
  // Condition (3) applied to parameters.
  EXPECT_FALSE(IsSafe(Parse("answer(B) :- baskets(B,$1) AND $1 < $2")));
  EXPECT_TRUE(IsSafe(
      Parse("answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2")));
}

TEST(SafetyTest, ArithmeticVariableMustAppearPositively) {
  EXPECT_FALSE(IsSafe(Parse("answer(X) :- p(X) AND X < Y")));
}

TEST(SafetyTest, ConstantsAreAlwaysSafe) {
  EXPECT_TRUE(IsSafe(Parse("answer(X) :- p(X) AND X < 5")));
  EXPECT_TRUE(IsSafe(Parse("answer(X) :- p(X) AND NOT q(X,'beer')")));
}

TEST(SafetyTest, NegationOverConstantsOnlyIsSafe) {
  EXPECT_TRUE(IsSafe(Parse("answer(X) :- p(X) AND NOT q('a',1)")));
}

TEST(SafetyTest, ParameterAndVariableWithSameSpellingAreDistinct) {
  // $X (parameter) vs X (variable): binding the variable X positively does
  // not bind the parameter $X.
  ConjunctiveQuery cq;
  cq.head_vars = {"P"};
  cq.subgoals = {
      Subgoal::Positive("p", {Term::Variable("P"), Term::Variable("X")}),
      Subgoal::Comparison(Term::Parameter("X"), CompareOp::kLt,
                          Term::Variable("X")),
  };
  EXPECT_FALSE(IsSafe(cq));
}

TEST(SafetyTest, UnionSafeIffAllDisjunctsSafe) {
  auto safe = ParseQuery("answer(B) :- p(B,$1)\nanswer(B) :- q(B,$1)");
  ASSERT_TRUE(safe.ok());
  EXPECT_TRUE(IsSafe(*safe));

  auto unsafe =
      ParseQuery("answer(B) :- p(B,$1)\nanswer(B) :- q(B,$1) AND $2 < $1");
  ASSERT_TRUE(unsafe.ok());
  std::string why;
  EXPECT_FALSE(IsSafe(*unsafe, &why));
  EXPECT_FALSE(why.empty());
}

// Example 3.2: exactly 8 of the 14 nontrivial proper subgoal subsets of the
// medical flock are safe. Enumerate all subsets and check each against the
// paper's analysis.
class Example32Safety : public ::testing::TestWithParam<int> {
 protected:
  static ConjunctiveQuery Medical() {
    return Parse(
        "answer(P) :- exhibits(P,$s) AND treatments(P,$m) AND "
        "diagnoses(P,D) AND NOT causes(D,$s)");
  }
};

TEST_P(Example32Safety, SubsetSafetyMatchesPaper) {
  int mask = GetParam();
  ConjunctiveQuery full = Medical();
  std::vector<std::size_t> keep;
  for (std::size_t i = 0; i < 4; ++i) {
    if (mask & (1 << i)) keep.push_back(i);
  }
  ConjunctiveQuery sub = full.Subquery(keep);

  // Subgoals: 0=exhibits(P,$s) 1=treatments(P,$m) 2=diagnoses(P,D)
  //           3=NOT causes(D,$s).
  bool has_positive = (mask & 0b0111) != 0;  // binds head variable P
  bool negation_ok =
      (mask & 0b1000) == 0 ||
      (((mask & 0b0100) != 0) && ((mask & 0b0001) != 0));  // D and $s bound
  bool expected = has_positive && negation_ok;
  EXPECT_EQ(IsSafe(sub), expected) << sub.ToString();
}

INSTANTIATE_TEST_SUITE_P(AllSubsets, Example32Safety,
                         ::testing::Range(1, 15));  // nontrivial proper

}  // namespace
}  // namespace qf
