// Unit and property tests for the incremental-evaluation building blocks:
// the FP-Stream tilted-time window (mining/incremental.h), the
// AppendRelation delta-batch contract (relational/relation.h), the
// Database generation counter, and IncrementalFlockState's exactness
// against the direct evaluator over the same rows.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "flocks/eval.h"
#include "flocks/flock.h"
#include "mining/incremental.h"
#include "relational/database.h"
#include "relational/relation.h"

namespace qf {
namespace {

QueryFlock Flock(const char* text, FilterCondition filter) {
  auto f = MakeFlock(text, filter);
  EXPECT_TRUE(f.ok()) << f.status().ToString();
  return *f;
}

// --- TiltedTimeWindow ---

TEST(TiltedTimeWindowTest, EmptyWindow) {
  TiltedTimeWindow w(4);
  EXPECT_EQ(w.batches(), 0u);
  EXPECT_EQ(w.total(), 0u);
  EXPECT_EQ(w.entries(), 0u);
  TiltedTimeWindow::LastN r = w.CountLastN(0);
  EXPECT_EQ(r.count, 0u);
  EXPECT_EQ(r.slack, 0u);
  r = w.CountLastN(5);  // n past the history: exact empty total
  EXPECT_EQ(r.count, 0u);
  EXPECT_EQ(r.slack, 0u);
}

TEST(TiltedTimeWindowTest, SingleBatch) {
  TiltedTimeWindow w(4);
  w.Add(7);
  EXPECT_EQ(w.batches(), 1u);
  EXPECT_EQ(w.total(), 7u);
  EXPECT_EQ(w.entries(), 1u);
  TiltedTimeWindow::LastN r = w.CountLastN(1);
  EXPECT_EQ(r.count, 7u);
  EXPECT_EQ(r.slack, 0u);
  // n >= batches reports the exact total.
  r = w.CountLastN(100);
  EXPECT_EQ(r.count, 7u);
  EXPECT_EQ(r.slack, 0u);
}

TEST(TiltedTimeWindowTest, ZeroCountBatchesAreRealBatches) {
  TiltedTimeWindow w(4);
  w.Add(5);
  w.Add(0);
  w.Add(0);
  w.Add(0);
  EXPECT_EQ(w.batches(), 4u);
  EXPECT_EQ(w.total(), 5u);
  // The last three batches contributed nothing — and that is exact.
  TiltedTimeWindow::LastN r = w.CountLastN(3);
  EXPECT_EQ(r.count, 0u);
  EXPECT_EQ(r.slack, 0u);
}

TEST(TiltedTimeWindowTest, OverflowRolloverPreservesTotals) {
  // Capacity 2 overflows fastest: every level holds at most 2 entries, so
  // the ring is forced through many promotions.
  TiltedTimeWindow w(2);
  std::uint64_t expect_total = 0;
  for (std::uint64_t i = 1; i <= 100; ++i) {
    w.Add(i);
    expect_total += i;
    EXPECT_EQ(w.total(), expect_total);
    EXPECT_EQ(w.batches(), i);
    // Logarithmic compression: entries bounded by capacity+1 per level
    // (the transient overflow slot is resolved before Add returns).
    EXPECT_LE(w.entries(), 2 * w.level_count() + 1);
  }
  // 100 batches at capacity 2 must have promoted several levels deep.
  EXPECT_GE(w.level_count(), 4u);
  EXPECT_LT(w.entries(), 100u);
  EXPECT_NE(w.ToString().find("total=5050 batches=100"), std::string::npos);
}

TEST(TiltedTimeWindowTest, MergedPrefixIsReportedAsSlack) {
  // Capacity 2: after 5 batches the two oldest have merged, so a horizon
  // cutting through the merged entry must surface nonzero slack.
  TiltedTimeWindow w(2);
  for (std::uint64_t c : {10, 20, 30, 40, 50}) w.Add(c);
  bool saw_slack = false;
  for (std::uint64_t n = 1; n < 5; ++n) {
    saw_slack |= w.CountLastN(n).slack > 0;
  }
  EXPECT_TRUE(saw_slack);
}

// The documented approximation bound, checked against an exact suffix-sum
// oracle over every horizon of every prefix of a randomized batch stream:
// true count in [count - slack, count], and count never exceeds total.
TEST(TiltedTimeWindowTest, PropertyCountLastNBracketsTruth) {
  Rng rng(0xbadcafe);
  for (int round = 0; round < 40; ++round) {
    std::size_t capacity = 2 + rng.NextBelow(4);
    TiltedTimeWindow w(capacity);
    std::vector<std::uint64_t> counts;
    int batches = 1 + static_cast<int>(rng.NextBelow(120));
    for (int b = 0; b < batches; ++b) {
      // Zero-heavy distribution: sparse groups are the common case.
      std::uint64_t c =
          rng.NextBernoulli(0.3) ? 0 : rng.NextBelow(50);
      w.Add(c);
      counts.push_back(c);
      std::uint64_t suffix = 0;
      for (std::size_t i = counts.size(); i-- > 0;) {
        suffix += counts[i];
        std::uint64_t n = counts.size() - i;
        TiltedTimeWindow::LastN r = w.CountLastN(n);
        ASSERT_GE(r.count, suffix)
            << "capacity=" << capacity << " batch=" << b << " n=" << n;
        ASSERT_LE(r.count - r.slack, suffix)
            << "capacity=" << capacity << " batch=" << b << " n=" << n;
        ASSERT_LE(r.count, w.total());
      }
      // Full-history horizons are always exact.
      TiltedTimeWindow::LastN all = w.CountLastN(counts.size());
      ASSERT_EQ(all.count, w.total());
      ASSERT_EQ(all.slack, 0u);
    }
  }
}

TEST(TiltedTimeWindowTest, ApproxBytesGrowsLogarithmically) {
  TiltedTimeWindow small(4), big(4);
  small.Add(1);
  for (int i = 0; i < 1000; ++i) big.Add(1);
  EXPECT_GT(big.ApproxBytes(), small.ApproxBytes());
  // 1000 batches compress to O(capacity * log2(1000)) entries.
  EXPECT_LE(big.entries(), 4 * big.level_count() + 1);
  EXPECT_LE(big.level_count(), 12u);
}

// --- AppendRelation ---

Relation Rel(const char* name, std::vector<std::vector<int>> rows) {
  Relation r(name, Schema({"A", "B"}));
  for (const auto& row : rows) r.AddRow({Value(row[0]), Value(row[1])});
  return r;
}

TEST(AppendRelationTest, DedupAndPrefixStability) {
  Relation base = Rel("t", {{1, 1}, {2, 2}});
  // Delta repeats a base row, contains an internal duplicate, and adds
  // two genuinely new rows.
  Relation delta = Rel("ignored", {{2, 2}, {3, 3}, {3, 3}, {4, 4}});
  Result<Relation> out = AppendRelation(base, delta);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->name(), "t");
  EXPECT_EQ(out->size(), 4u);
  // Prefix stability: the leading base.size() rows are bit-identical.
  for (std::size_t i = 0; i < base.size(); ++i) {
    EXPECT_EQ(out->rows()[i], base.rows()[i]) << "row " << i;
  }
  EXPECT_EQ(out->base_rows(), base.size());
  EXPECT_EQ(out->epoch(), base.epoch() + 1);
  // The delta slice holds exactly the new rows, in first-occurrence order.
  EXPECT_EQ(out->rows()[2], (Tuple{Value(3), Value(3)}));
  EXPECT_EQ(out->rows()[3], (Tuple{Value(4), Value(4)}));
}

TEST(AppendRelationTest, EpochChainsAcrossAppends) {
  Relation r0 = Rel("t", {{1, 1}});
  Result<Relation> r1 = AppendRelation(r0, Rel("d", {{2, 2}}));
  ASSERT_TRUE(r1.ok());
  Result<Relation> r2 = AppendRelation(*r1, Rel("d", {{3, 3}}));
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r0.epoch(), 0u);
  EXPECT_EQ(r1->epoch(), 1u);
  EXPECT_EQ(r2->epoch(), 2u);
  EXPECT_EQ(r2->base_rows(), 2u);
  EXPECT_EQ(r2->size(), 3u);
}

TEST(AppendRelationTest, AllDuplicateDeltaIsAnEmptyBatch) {
  Relation base = Rel("t", {{1, 1}, {2, 2}});
  Result<Relation> out = AppendRelation(base, Rel("d", {{1, 1}, {2, 2}}));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), base.size());
  EXPECT_EQ(out->base_rows(), base.size());
  EXPECT_EQ(out->epoch(), 1u);  // an empty batch is still a batch
}

TEST(AppendRelationTest, SchemaMismatchRejected) {
  Relation base = Rel("t", {{1, 1}});
  Relation delta("d", Schema({"A", "C"}));
  delta.AddRow({Value(2), Value(2)});
  Result<Relation> out = AppendRelation(base, delta);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(out.status().message().find("append schema mismatch"),
            std::string::npos);
}

TEST(DatabaseTest, GenerationBumpsOnEveryMutation) {
  Database db;
  std::uint64_t g0 = db.generation();
  db.PutRelation(Rel("t", {{1, 1}}));
  EXPECT_GT(db.generation(), g0);
  std::uint64_t g1 = db.generation();
  std::shared_ptr<const Relation> h1 = db.GetShared("t");
  // Re-reading does not bump; the handle is stable.
  EXPECT_EQ(db.generation(), g1);
  EXPECT_EQ(db.GetShared("t"), h1);
  db.PutRelation(Rel("t", {{2, 2}}));
  EXPECT_GT(db.generation(), g1);
  EXPECT_NE(db.GetShared("t"), h1);
}

// --- IncrementalFlockState ---

Database SmallBaskets() {
  Database db;
  Relation r("baskets", Schema({"BID", "Item"}));
  for (int b = 1; b <= 3; ++b) {
    r.AddRow({Value(b), Value("beer")});
    r.AddRow({Value(b), Value("diapers")});
  }
  r.AddRow({Value(4), Value("beer")});
  r.AddRow({Value(4), Value("wine")});
  r.AddRow({Value(5), Value("wine")});
  db.PutRelation(std::move(r));
  return db;
}

// Answer rows in the state's schema (params then canonical heads) for the
// single-disjunct pairs flock — what incremental_eval feeds AbsorbAnswer.
std::vector<Tuple> PairAnswers(const Database& db) {
  std::vector<Tuple> rows;
  const Relation& b = db.Get("baskets");
  for (const Tuple& x : b.rows()) {
    for (const Tuple& y : b.rows()) {
      if (x[0] == y[0] && x[1] < y[1]) {
        rows.push_back({x[1], y[1], x[0]});  // $1, $2, _h0=B
      }
    }
  }
  return rows;
}

TEST(IncrementalFlockStateTest, ServeMatchesDirectEvaluator) {
  Database db = SmallBaskets();
  QueryFlock f =
      Flock("answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2",
            FilterCondition::MinSupport(2));
  IncrementalFlockState st("pairs", f);
  for (const Tuple& row : PairAnswers(db)) st.AbsorbAnswer(row);
  st.SealBatch();

  Result<Relation> direct = EvaluateFlock(f, db);
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();
  Relation served = st.Serve(f.filter);
  EXPECT_EQ(served.name(), direct->name());
  EXPECT_EQ(served.schema().columns(), direct->schema().columns());
  EXPECT_EQ(served.rows(), direct->rows());
  EXPECT_EQ(served.size(), 1u);  // only (beer, diapers) has support >= 2
}

TEST(IncrementalFlockStateTest, AbsorbDeduplicates) {
  Database db = SmallBaskets();
  QueryFlock f =
      Flock("answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2",
            FilterCondition::MinSupport(2));
  IncrementalFlockState st("pairs", f);
  Tuple row{Value("beer"), Value("diapers"), Value(1)};
  EXPECT_TRUE(st.AbsorbAnswer(row));
  EXPECT_FALSE(st.AbsorbAnswer(row));
  EXPECT_EQ(st.answer_rows(), 1u);
  EXPECT_EQ(st.group_count(), 1u);
}

TEST(IncrementalFlockStateTest, RingsTrackOnlyTheFrontier) {
  Database db = SmallBaskets();
  QueryFlock f =
      Flock("answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2",
            FilterCondition::MinSupport(2));
  IncrementalFlockState st("pairs", f);
  for (const Tuple& row : PairAnswers(db)) st.AbsorbAnswer(row);
  st.SealBatch();
  // (beer, diapers) passes the built filter: tracked, seeded with its
  // cumulative count. (beer, wine) has support 1: untracked.
  const TiltedTimeWindow* frequent =
      st.RingFor({Value("beer"), Value("diapers")});
  ASSERT_NE(frequent, nullptr);
  EXPECT_EQ(frequent->total(), 3u);
  EXPECT_EQ(frequent->batches(), 1u);
  EXPECT_EQ(st.RingFor({Value("beer"), Value("wine")}), nullptr);
  EXPECT_EQ(st.RingFor({Value("nope"), Value("nope")}), nullptr);
  EXPECT_EQ(st.tracked_rings(), 1u);
  EXPECT_GT(st.group_count(), 1u);  // infrequent groups still counted
}

TEST(IncrementalFlockStateTest, RingStartsWhenGroupCrossesThreshold) {
  Database db = SmallBaskets();
  QueryFlock f =
      Flock("answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2",
            FilterCondition::MinSupport(2));
  IncrementalFlockState st("pairs", f);
  for (const Tuple& row : PairAnswers(db)) st.AbsorbAnswer(row);
  st.SealBatch();
  ASSERT_EQ(st.RingFor({Value("beer"), Value("wine")}), nullptr);
  // A second batch pushes (beer, wine) to support 2: its ring starts at
  // this seal, seeded with the cumulative count — and the already-tracked
  // ring absorbs the batch too (zero horizons stay aligned).
  st.AbsorbAnswer({Value("beer"), Value("wine"), Value(9)});
  st.SealBatch();
  const TiltedTimeWindow* wine = st.RingFor({Value("beer"), Value("wine")});
  ASSERT_NE(wine, nullptr);
  EXPECT_EQ(wine->total(), 2u);
  EXPECT_EQ(wine->batches(), 1u);
  const TiltedTimeWindow* beer_diapers =
      st.RingFor({Value("beer"), Value("diapers")});
  ASSERT_NE(beer_diapers, nullptr);
  EXPECT_EQ(beer_diapers->batches(), 2u);
  EXPECT_EQ(beer_diapers->total(), 3u);  // second batch contributed 0
  EXPECT_EQ(beer_diapers->CountLastN(1).count, 0u);
}

TEST(IncrementalFlockStateTest, CompatibilityMatrix) {
  QueryFlock base =
      Flock("answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2",
            FilterCondition::MinSupport(5));
  IncrementalFlockState st("pairs", base);
  using Compat = IncrementalFlockState::Compat;

  EXPECT_EQ(st.CompatibilityWith(base), Compat::kSame);
  // COUNT >= N: raising N tightens (fewer survivors) — reusable.
  EXPECT_EQ(st.CompatibilityWith(Flock(
                "answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2",
                FilterCondition::MinSupport(8))),
            Compat::kTightened);
  // Lowering N loosens: ring history is missing for admitted groups.
  EXPECT_EQ(st.CompatibilityWith(Flock(
                "answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2",
                FilterCondition::MinSupport(3))),
            Compat::kIncompatible);
  // Different aggregate, comparison, or query: incompatible.
  EXPECT_EQ(st.CompatibilityWith(Flock(
                "answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2",
                {FilterAgg::kSum, CompareOp::kGe, 5, 0})),
            Compat::kIncompatible);
  EXPECT_EQ(st.CompatibilityWith(Flock(
                "answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2",
                {FilterAgg::kCount, CompareOp::kLe, 5, 0})),
            Compat::kIncompatible);
  EXPECT_EQ(st.CompatibilityWith(
                Flock("answer(B) :- baskets(B,$1)",
                      FilterCondition::MinSupport(5))),
            Compat::kIncompatible);
}

TEST(IncrementalFlockStateTest, UpperBoundFilterTightensDownward) {
  QueryFlock base =
      Flock("answer(B) :- baskets(B,$1)",
            {FilterAgg::kMin, CompareOp::kLe, 10, 0});
  IncrementalFlockState st("mins", base);
  using Compat = IncrementalFlockState::Compat;
  EXPECT_EQ(st.CompatibilityWith(Flock("answer(B) :- baskets(B,$1)",
                                       {FilterAgg::kMin, CompareOp::kLe, 5, 0})),
            Compat::kTightened);
  EXPECT_EQ(st.CompatibilityWith(
                Flock("answer(B) :- baskets(B,$1)",
                      {FilterAgg::kMin, CompareOp::kLe, 20, 0})),
            Compat::kIncompatible);
}

TEST(IncrementalFlockStateTest, TightenedServeMatchesDirect) {
  Database db = SmallBaskets();
  QueryFlock built =
      Flock("answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2",
            FilterCondition::MinSupport(1));
  IncrementalFlockState st("pairs", built);
  for (const Tuple& row : PairAnswers(db)) st.AbsorbAnswer(row);
  st.SealBatch();
  for (std::int64_t t = 1; t <= 4; ++t) {
    QueryFlock tight =
        Flock("answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2",
              FilterCondition::MinSupport(t));
    ASSERT_NE(st.CompatibilityWith(tight),
              IncrementalFlockState::Compat::kIncompatible);
    Result<Relation> direct = EvaluateFlock(tight, db);
    ASSERT_TRUE(direct.ok());
    EXPECT_EQ(st.Serve(tight.filter).rows(), direct->rows())
        << "threshold " << t;
  }
}

TEST(IncrementalFlockStateTest, SumExactTracksIntegrality) {
  QueryFlock f = Flock("answer(B,W) :- sales(B,$1,W)",
                       {FilterAgg::kSum, CompareOp::kGe, 1, 1});
  IncrementalFlockState st("sums", f);
  EXPECT_TRUE(st.sum_exact());
  // Schema: $1, _h0 (B), _h1 (W); the SUM reads _h1.
  st.AbsorbAnswer({Value("a"), Value(1), Value(3.0)});
  EXPECT_TRUE(st.sum_exact());  // 3.0 is integral: still exact
  st.AbsorbAnswer({Value("a"), Value(2), Value(0.5)});
  EXPECT_FALSE(st.sum_exact());  // non-integral summand: latched off
}

TEST(IncrementalFlockStateTest, DescribeListsCountersAndMarks) {
  Database db = SmallBaskets();
  QueryFlock f =
      Flock("answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2",
            FilterCondition::MinSupport(2));
  IncrementalFlockState st("pairs", f);
  for (const Tuple& row : PairAnswers(db)) st.AbsorbAnswer(row);
  st.SealBatch();
  st.marks().push_back(IncrementalFlockState::RelationMark{
      "baskets", db.GetShared("baskets"), db.Get("baskets").size(), false});
  st.full_builds = 1;
  std::string d = st.Describe();
  EXPECT_NE(d.find("flock pairs:"), std::string::npos);
  EXPECT_NE(d.find("built filter: COUNT"), std::string::npos);
  EXPECT_NE(d.find("decisions: builds=1 deltas=0 cached=0"),
            std::string::npos);
  EXPECT_NE(d.find("base baskets: 9 rows"), std::string::npos);
  EXPECT_GT(st.ApproxBytes(), 0u);
}

}  // namespace
}  // namespace qf
