// Unit tests for src/common: Status/Result, RNG, Zipf, string utilities.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/zipf.h"

namespace qf {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = InvalidArgumentError("bad thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad thing");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad thing");
}

TEST(StatusTest, AllConstructorsSetDistinctCodes) {
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(AlreadyExistsError("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(FailedPreconditionError("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(OutOfRangeError("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(UnimplementedError("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = NotFoundError("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOnlyValueWorks) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint32(), b.NextUint32());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUint32() == b.NextUint32()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, NextBelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(RngTest, NextBelowCoversAllResidues) {
  Rng rng(9);
  std::set<std::uint32_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBelow(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    std::int64_t v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRoughlyFair) {
  Rng rng(19);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += rng.NextBernoulli(0.5);
  EXPECT_NEAR(heads, 5000, 300);
}

TEST(ZipfTest, UniformWhenThetaZero) {
  ZipfSampler zipf(4, 0.0);
  EXPECT_NEAR(zipf.Probability(0), 0.25, 1e-12);
  EXPECT_NEAR(zipf.Probability(3), 0.25, 1e-12);
}

TEST(ZipfTest, ProbabilitiesSumToOne) {
  ZipfSampler zipf(100, 1.1);
  double total = 0;
  for (std::uint32_t k = 0; k < 100; ++k) total += zipf.Probability(k);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfTest, SkewFavorsLowRanks) {
  ZipfSampler zipf(1000, 1.2);
  EXPECT_GT(zipf.Probability(0), 10 * zipf.Probability(99));
}

TEST(ZipfTest, SampleMatchesDistribution) {
  ZipfSampler zipf(50, 1.0);
  Rng rng(23);
  std::vector<int> counts(50, 0);
  const int kTrials = 50000;
  for (int i = 0; i < kTrials; ++i) ++counts[zipf.Sample(rng)];
  // Rank 0 frequency should track its probability within a few percent.
  EXPECT_NEAR(static_cast<double>(counts[0]) / kTrials, zipf.Probability(0),
              0.02);
  // Every rank in a small domain should be hit at least once.
  for (int c : counts) EXPECT_GT(c, 0);
}

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  auto parts = Split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(StringUtilTest, SplitSingleField) {
  auto parts = Split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(StringUtilTest, JoinRoundTrip) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ", "), "");
}

TEST(StringUtilTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  x y\t\n"), "x y");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace(" \t "), "");
}

TEST(StringUtilTest, ParseInt64Valid) {
  auto r = ParseInt64("-12345");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, -12345);
}

TEST(StringUtilTest, ParseInt64RejectsGarbage) {
  EXPECT_FALSE(ParseInt64("12x").ok());
  EXPECT_FALSE(ParseInt64("").ok());
  EXPECT_FALSE(ParseInt64("1.5").ok());
}

TEST(StringUtilTest, ParseInt64RejectsOverflow) {
  EXPECT_FALSE(ParseInt64("99999999999999999999999").ok());
}

TEST(StringUtilTest, ParseDoubleValid) {
  auto r = ParseDouble("2.5e3");
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(*r, 2500.0);
}

TEST(StringUtilTest, ParseDoubleRejectsGarbage) {
  EXPECT_FALSE(ParseDouble("abc").ok());
  EXPECT_FALSE(ParseDouble("1.5z").ok());
}

TEST(StringUtilTest, ParseDoubleAcceptsSignsAndExponents) {
  EXPECT_DOUBLE_EQ(*ParseDouble("-3e2"), -300.0);
  EXPECT_DOUBLE_EQ(*ParseDouble("+4.5"), 4.5);
  EXPECT_DOUBLE_EQ(*ParseDouble("1E-2"), 0.01);
}

// Regression: strtod happily parses "inf", "nan", and C99 hex floats, all
// of which used to leak through as Values and break equality/dedup/join
// invariants downstream.
TEST(StringUtilTest, ParseDoubleRejectsNonFiniteSpellings) {
  for (const char* text : {"inf", "INF", "-inf", "infinity", "nan", "NaN",
                           "-nan", "nan(0x1)"}) {
    Result<double> r = ParseDouble(text);
    EXPECT_FALSE(r.ok()) << text;
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument) << text;
  }
}

TEST(StringUtilTest, ParseDoubleRejectsHexFloats) {
  for (const char* text : {"0x10", "0x1p3", "0X1.8p1"}) {
    Result<double> r = ParseDouble(text);
    EXPECT_FALSE(r.ok()) << text;
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument) << text;
  }
}

// Regression: "1e999" overflows to +-HUGE_VAL with ERANGE; it used to be
// returned as an infinite Value instead of a typed error.
TEST(StringUtilTest, ParseDoubleRejectsOverflowToInfinity) {
  for (const char* text : {"1e999", "-1e999", "1e99999"}) {
    Result<double> r = ParseDouble(text);
    EXPECT_FALSE(r.ok()) << text;
    EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange) << text;
  }
}

TEST(StringUtilTest, ParseDoubleAllowsGradualUnderflow) {
  // Underflow rounds toward zero (possibly through a denormal); that is
  // an acceptable rounding, not an error.
  Result<double> r = ParseDouble("1e-999");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 0.0);
  Result<double> denormal = ParseDouble("4.9e-324");
  ASSERT_TRUE(denormal.ok());
  EXPECT_GE(*denormal, 0.0);
}

TEST(StringUtilTest, ParseDoubleRejectsEmptyAndLoneSigns) {
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("+").ok());
  EXPECT_FALSE(ParseDouble("-").ok());
  EXPECT_FALSE(ParseDouble(".").ok());
  EXPECT_FALSE(ParseDouble("e5").ok());
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("fo", "foo"));
}

}  // namespace
}  // namespace qf
