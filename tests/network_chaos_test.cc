// The served-path chaos harness (DESIGN.md §16): a mutation-heavy
// workload is driven through a real server over real sockets while
// FaultSocketOps (network/fault_socket.h) kills the conversation at
// EVERY protocol op in turn — and the run must be indistinguishable
// from a fault-free one. Three invariants, checked per fault point:
//
//   1. Transcript: the reconnecting client observes bit-identical
//      per-statement replies (outputs and typed statuses).
//   2. Exactly-once: the server executed exactly as many statements as
//      the fault-free oracle — a replayed mutation never ran twice, a
//      lost one never ran zero times.
//   3. Recovered catalog: the MemVfs the session's WAL-before-ack
//      catalog lives in is byte-identical to the oracle's, file by
//      file, and a fresh Shell reopening it sees the same relations.
//
// The sweep runs at executor counts {0, 1, 4} (0 exercises the
// clamp-to-serial path) with matching RUN thread counts, then repeats
// with byte corruption instead of disconnects: a flipped bit anywhere
// must degrade into a CRC-rejected frame, a reconnect, and a replay —
// never a divergent answer. Also here: the retry loop under concurrent
// cancellation arriving from the network path.
#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/resource.h"
#include "common/retry.h"
#include "common/status.h"
#include "common/vfs.h"
#include "network/client.h"
#include "network/fault_socket.h"
#include "network/server.h"
#include "shell/shell.h"

namespace qf {
namespace {

// Wall-clock timings ("... in 0.5 ms") are the one legitimately
// non-deterministic token in statement output; blank the digits so the
// rest of the transcript can be compared byte for byte.
std::string NormalizeTimings(std::string text) {
  std::size_t pos = 0;
  while ((pos = text.find(" ms", pos)) != std::string::npos) {
    std::size_t digits = pos;
    while (digits > 0 && (std::isdigit(static_cast<unsigned char>(
                              text[digits - 1])) != 0 ||
                          text[digits - 1] == '.')) {
      --digits;
    }
    if (digits < pos) {
      text.replace(digits, pos - digits, "?");
      pos = digits + 1;
    }
    pos += 3;
  }
  return text;
}

// One statement's observed reply: ok + output, or the typed status.
struct Observed {
  bool ok = false;
  StatusCode code = StatusCode::kOk;
  std::string text;

  bool operator==(const Observed& other) const {
    return ok == other.ok && code == other.code && text == other.text;
  }
};

// Everything a run leaves behind; two runs are equivalent iff all of it
// matches.
struct RunOutcome {
  std::vector<Observed> transcript;
  std::uint64_t executed = 0;
  // Raw catalog bytes (path -> contents) after shutdown.
  std::map<std::string, std::string> catalog;
  // What a fresh Shell recovering from that catalog reports.
  std::string recovered;
  std::uint64_t reconnects = 0;
};

// Mutation-heavy: catalog open, two generated relations, a flock
// definition, a materializing RUN, and a CHECKPOINT — every WAL path
// the served catalog has. `threads` parameterizes intra-RUN
// parallelism (the sweep's {0,1,4} axis; the shell knob needs >= 1).
std::vector<std::string> Workload(unsigned threads) {
  unsigned run_threads = threads == 0 ? 1 : threads;
  return {
      "OPEN cat",
      "GEN BASKETS b n_baskets=30 n_items=8 seed=7",
      "FLOCK pairs QUERY answer(B) :- b(B,$1) AND b(B,$2) AND $1 < $2 "
      "FILTER COUNT >= 2",
      "THREADS " + std::to_string(run_threads),
      "RUN pairs LIMIT 100000",
      "GEN BASKETS c n_baskets=12 n_items=5 seed=11",
      "CHECKPOINT",
      "GEN BASKETS d n_baskets=8 n_items=4 seed=13",
      "SHOW RELATIONS",
  };
}

// Recursively dumps every file under `dir` (the catalog's directory) in
// the MemVfs. Names that do not read as files are recursed into.
void DumpDir(Vfs& vfs, const std::string& dir,
             std::map<std::string, std::string>* out) {
  Result<std::vector<std::string>> names = vfs.ListDir(dir);
  if (!names.ok()) return;
  for (const std::string& name : *names) {
    std::string path = dir + "/" + name;
    Result<std::string> bytes = vfs.ReadFile(path);
    if (bytes.ok()) {
      (*out)[path] = *std::move(bytes);
    } else {
      DumpDir(vfs, path, out);
    }
  }
}

// Connects, tolerating faults that land inside the dial/handshake
// itself (a one-shot fault fires, the next attempt is clean). The
// library's own reconnect machinery only engages once a session exists.
Result<Client> ConnectWithRetry(std::uint16_t port,
                                const ClientOptions& options) {
  Result<Client> client = InternalError("never dialed");
  for (int attempt = 0; attempt < 5; ++attempt) {
    client = Client::Connect("127.0.0.1", port, options);
    if (client.ok()) return client;
  }
  return client;
}

// One full run: fresh vfs, fresh server, the workload driven through a
// client whose socket ops misbehave per `fault`. Returns everything
// observable; `ops_out` (optional) reports how many socket ops the
// client side used — the fault-free run measures the sweep length.
RunOutcome RunWorkload(unsigned executors, const FaultSocketConfig& fault,
                       std::uint64_t* ops_out = nullptr,
                       int idle_timeout_ms = 0) {
  RunOutcome outcome;
  MemVfs vfs;
  ServerOptions options;
  options.port = 0;
  options.executors = executors;
  options.session_vfs = &vfs;
  options.idle_timeout_ms = idle_timeout_ms;
  Result<std::unique_ptr<Server>> server = Server::Start(std::move(options));
  if (!server.ok()) {
    ADD_FAILURE() << "server: " << server.status().ToString();
    return outcome;
  }

  FaultSocketOps fault_ops(fault);
  ClientOptions client_options;
  client_options.socket_ops = &fault_ops;
  client_options.max_reconnects = 32;
  client_options.reconnect_backoff =
      RetryPolicy{32, /*base_delay_us=*/200, /*max_delay_us=*/5'000};
  {
    Result<Client> client =
        ConnectWithRetry((*server)->port(), client_options);
    if (!client.ok()) {
      ADD_FAILURE() << "connect: " << client.status().ToString();
      return outcome;
    }
    for (const std::string& statement : Workload(executors)) {
      Result<std::string> reply = client->Execute(statement);
      Observed seen;
      seen.ok = reply.ok();
      if (reply.ok()) {
        seen.text = NormalizeTimings(*reply);
      } else {
        seen.code = reply.status().code();
        seen.text = reply.status().message();
      }
      outcome.transcript.push_back(std::move(seen));
    }
    outcome.reconnects = client->reconnects();
    client->Close();
  }

  outcome.executed = (*server)->stats().statements_executed;
  (*server)->Shutdown();
  DumpDir(vfs, "cat", &outcome.catalog);

  // Recover the catalog the way a restarted server would: a fresh shell
  // over the same vfs replays the WAL and reports what survived.
  Shell reopened;
  reopened.set_vfs(&vfs);
  Result<std::string> open = reopened.Execute("OPEN cat");
  Result<std::string> relations = reopened.Execute("SHOW RELATIONS");
  outcome.recovered = NormalizeTimings(
      (open.ok() ? *open : open.status().ToString()) +
      (relations.ok() ? *relations : relations.status().ToString()));
  if (ops_out != nullptr) *ops_out = fault_ops.ops();
  return outcome;
}

// Pinpoints what diverged; gtest's default struct diff is unreadable
// for transcripts.
void ExpectSameOutcome(const RunOutcome& oracle, const RunOutcome& chaotic,
                       const std::string& label) {
  ASSERT_EQ(oracle.transcript.size(), chaotic.transcript.size()) << label;
  for (std::size_t i = 0; i < oracle.transcript.size(); ++i) {
    EXPECT_TRUE(oracle.transcript[i] == chaotic.transcript[i])
        << label << ": statement " << i << " diverged: ok="
        << chaotic.transcript[i].ok << " code="
        << static_cast<int>(chaotic.transcript[i].code) << "\n--- oracle\n"
        << oracle.transcript[i].text << "\n--- chaotic\n"
        << chaotic.transcript[i].text;
  }
  EXPECT_EQ(oracle.executed, chaotic.executed)
      << label << ": a mutation executed not-exactly-once";
  EXPECT_EQ(oracle.catalog, chaotic.catalog)
      << label << ": recovered catalog bytes diverged";
  EXPECT_EQ(oracle.recovered, chaotic.recovered)
      << label << ": recovered relations diverged";
}

class NetworkChaosTest : public ::testing::TestWithParam<unsigned> {};

// The tentpole sweep: kill the connection (peer-reset semantics) at
// every client socket op the fault-free run performs, one run per op.
TEST_P(NetworkChaosTest, DisconnectAtEveryOpIsInvisible) {
  unsigned executors = GetParam();
  std::uint64_t total_ops = 0;
  RunOutcome oracle =
      RunWorkload(executors, FaultSocketConfig{}, &total_ops);
  ASSERT_FALSE(oracle.transcript.empty());
  for (const Observed& seen : oracle.transcript) {
    ASSERT_TRUE(seen.ok) << "oracle must be fault-free: " << seen.text;
  }
  ASSERT_GT(total_ops, 10u);
  EXPECT_EQ(oracle.reconnects, 0u);

  std::uint64_t chaotic_runs_with_reconnects = 0;
  for (std::uint64_t op = 1; op <= total_ops; ++op) {
    FaultSocketConfig config;
    config.fault_at_op = op;
    config.fault = SocketFault::kDisconnect;
    RunOutcome chaotic = RunWorkload(executors, config);
    ExpectSameOutcome(oracle, chaotic,
                      "disconnect at op " + std::to_string(op));
    chaotic_runs_with_reconnects += chaotic.reconnects > 0 ? 1 : 0;
  }
  // The sweep must actually have exercised the resume path (ops landing
  // after the last reply cannot, but most land mid-conversation).
  EXPECT_GT(chaotic_runs_with_reconnects, total_ops / 2);
}

// Same sweep, corrupting one byte instead of killing the socket: the
// CRC rejects the frame, the poisoned stream forces a redial, and the
// replay cache answers bit-identically.
TEST_P(NetworkChaosTest, CorruptByteAtEveryOpIsInvisible) {
  unsigned executors = GetParam();
  std::uint64_t total_ops = 0;
  // Idle probing doubles as the anti-wedge mechanism: a corrupted
  // length prefix can leave one side waiting for bytes that never come,
  // and it is the server's kernel read timeout (armed with
  // idle_timeout_ms) plus its heartbeats that break such deadlocks.
  constexpr int kIdleMs = 25;
  RunOutcome oracle =
      RunWorkload(executors, FaultSocketConfig{}, &total_ops, kIdleMs);
  ASSERT_GT(total_ops, 10u);
  for (std::uint64_t op = 1; op <= total_ops; ++op) {
    FaultSocketConfig config;
    config.fault_at_op = op;
    config.fault = SocketFault::kCorruptByte;
    RunOutcome chaotic = RunWorkload(executors, config, nullptr, kIdleMs);
    ExpectSameOutcome(oracle, chaotic,
                      "corruption at op " + std::to_string(op));
  }
}

// Repeating faults: the connection dies every N ops, forever — several
// resumes per run, still invisible.
TEST_P(NetworkChaosTest, RepeatedDisconnectsStillConverge) {
  unsigned executors = GetParam();
  RunOutcome oracle = RunWorkload(executors, FaultSocketConfig{});
  // The period must exceed the ~7 socket ops a full resume cycle
  // (dial + handshake + RESUME + replay) costs, or progress is
  // impossible by construction — no protocol can outrun a network that
  // dies faster than a connection can be re-established.
  for (std::uint64_t every : {11u, 17u, 29u}) {
    FaultSocketConfig config;
    config.fault_at_op = every;
    config.repeat_every = every;
    config.fault = SocketFault::kDisconnect;
    RunOutcome chaotic = RunWorkload(executors, config);
    ExpectSameOutcome(oracle, chaotic,
                      "disconnect every " + std::to_string(every) + " ops");
    EXPECT_GT(chaotic.reconnects, 0u)
        << "every=" << every << " never hit the resume path";
  }
}

// Short I/O: every op moves at most 3 bytes, so every frame spans many
// ops and both reassembly loops run constantly. No faults — the run
// must simply be correct and identical.
TEST_P(NetworkChaosTest, ShortReadsAndWritesAreInvisible) {
  unsigned executors = GetParam();
  RunOutcome oracle = RunWorkload(executors, FaultSocketConfig{});
  FaultSocketConfig config;
  config.max_chunk = 3;
  RunOutcome chaotic = RunWorkload(executors, config);
  ExpectSameOutcome(oracle, chaotic, "max_chunk=3");
  EXPECT_EQ(chaotic.reconnects, 0u);
}

INSTANTIATE_TEST_SUITE_P(Executors, NetworkChaosTest,
                         ::testing::Values(0u, 1u, 4u));

// Satellite: common/retry.h under concurrent cancellation arriving from
// the network path — a client stuck in its redial/backoff loop against
// a dead server must abort promptly (kCancelled), not grind through its
// full backoff schedule.
TEST(RetryCancelTest, CancelAbortsReconnectLoopFromTheNetworkPath) {
  std::uint16_t port = 0;
  QueryContext ctx;
  ClientOptions options;
  options.ctx = &ctx;
  options.max_reconnects = 1'000;
  options.reconnect_backoff =
      RetryPolicy{1'000, /*base_delay_us=*/20'000, /*max_delay_us=*/200'000};
  Client client;
  {
    ServerOptions server_options;
    server_options.port = 0;
    Result<std::unique_ptr<Server>> server =
        Server::Start(std::move(server_options));
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    port = (*server)->port();
    Result<Client> connected = Client::Connect("127.0.0.1", port, options);
    ASSERT_TRUE(connected.ok()) << connected.status().ToString();
    client = std::move(*connected);
    ASSERT_TRUE(client.Execute("HELP").ok());
    (*server)->Shutdown();
  }  // server gone; the port now refuses connections

  std::atomic<bool> started{false};
  Result<std::string> reply = InternalError("never ran");
  auto begin = std::chrono::steady_clock::now();
  std::thread driver([&] {
    started.store(true);
    reply = client.Execute("SHOW RELATIONS");
  });
  while (!started.load()) std::this_thread::yield();
  // Let the reconnect loop take at least one backoff sleep, then cancel
  // from this (the "network supervisor") thread.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ctx.RequestCancel();
  driver.join();
  auto elapsed_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                        std::chrono::steady_clock::now() - begin)
                        .count();

  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kCancelled)
      << reply.status().ToString();
  // 1000 attempts x 20ms+ of backoff would run for tens of seconds; the
  // cancel must cut that to roughly the sleep above.
  EXPECT_LT(elapsed_ms, 5'000);
}

// Cancellation racing many concurrent retry loops: each worker client
// spins against the dead port with its own governor; all must abort
// with kCancelled and none may deadlock or double-resume.
TEST(RetryCancelTest, ConcurrentCancellationAcrossManyClients) {
  std::uint16_t port = 0;
  {
    ServerOptions server_options;
    server_options.port = 0;
    Result<std::unique_ptr<Server>> server =
        Server::Start(std::move(server_options));
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    port = (*server)->port();
    (*server)->Shutdown();
  }

  constexpr int kWorkers = 4;
  std::vector<QueryContext> contexts(kWorkers);
  std::vector<Status> results(kWorkers, Status::Ok());
  std::vector<std::thread> workers;
  std::atomic<int> running{0};
  workers.reserve(kWorkers);
  for (int i = 0; i < kWorkers; ++i) {
    workers.emplace_back([&, i] {
      ClientOptions options;
      options.ctx = &contexts[i];
      options.max_reconnects = 1'000;
      options.reconnect_backoff = RetryPolicy{1'000, 5'000, 50'000};
      options.backoff_seed = 0x9E3779B97F4A7C15ull + i;
      running.fetch_add(1);
      // Connect straight at the refusing port: the first dial fails, so
      // Connect itself surfaces the error — drive the retry machinery
      // through RetryWithBackoff directly, as Reconnect() does.
      Rng rng(options.backoff_seed);
      results[i] = RetryWithBackoff(
          options.reconnect_backoff, rng,
          [&] {
            Result<Client> attempt =
                Client::Connect("127.0.0.1", port, options);
            return attempt.ok() ? Status::Ok() : attempt.status();
          },
          [](const Status&) { return true; }, &contexts[i]);
    });
  }
  while (running.load() < kWorkers) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  for (QueryContext& ctx : contexts) ctx.RequestCancel();
  for (std::thread& worker : workers) worker.join();
  for (int i = 0; i < kWorkers; ++i) {
    EXPECT_EQ(results[i].code(), StatusCode::kCancelled)
        << "worker " << i << ": " << results[i].ToString();
  }
}

}  // namespace
}  // namespace qf
