// Unit tests for safe-subquery enumeration (§3.1-3.3), cross-checked with
// containment: every enumerated subquery must contain the original.
#include <gtest/gtest.h>

#include "datalog/containment.h"
#include "datalog/parser.h"
#include "datalog/subquery.h"

namespace qf {
namespace {

ConjunctiveQuery Parse(const char* text) {
  auto cq = ParseRule(text);
  EXPECT_TRUE(cq.ok()) << cq.status().ToString();
  return *cq;
}

ConjunctiveQuery Medical() {
  return Parse(
      "answer(P) :- exhibits(P,$s) AND treatments(P,$m) AND diagnoses(P,D) "
      "AND NOT causes(D,$s)");
}

TEST(SubqueryTest, Example32CountsEightSafeSubsets) {
  EXPECT_EQ(CountSafeNontrivialSubsets(Medical()), 8u);
}

TEST(SubqueryTest, RequireParametersDropsParameterFreeSubqueries) {
  // Of the 8 safe subsets, {diagnoses(P,D)} mentions no parameter.
  std::vector<SubqueryCandidate> with_params =
      EnumerateSafeSubqueries(Medical());
  EXPECT_EQ(with_params.size(), 7u);
  for (const SubqueryCandidate& c : with_params) {
    EXPECT_FALSE(c.parameters.empty());
  }
}

TEST(SubqueryTest, EveryCandidateContainsOriginal) {
  ConjunctiveQuery full = Medical();
  for (const SubqueryCandidate& c : EnumerateSafeSubqueries(full)) {
    EXPECT_TRUE(SubsetContains(c.query, full)) << c.query.ToString();
    EXPECT_TRUE(Contains(c.query, full)) << c.query.ToString();
  }
}

TEST(SubqueryTest, MarketBasketSubqueries) {
  // Example 3.1: exactly two nontrivial subqueries, one per parameter.
  ConjunctiveQuery pair =
      Parse("answer(B) :- baskets(B,$1) AND baskets(B,$2)");
  std::vector<SubqueryCandidate> subs = EnumerateSafeSubqueries(pair);
  ASSERT_EQ(subs.size(), 2u);
  EXPECT_EQ(subs[0].query.ToString(), "answer(B) :- baskets(B,$1)");
  EXPECT_EQ(subs[1].query.ToString(), "answer(B) :- baskets(B,$2)");
}

TEST(SubqueryTest, ParameterSetsRecorded) {
  for (const SubqueryCandidate& c : EnumerateSafeSubqueries(Medical())) {
    EXPECT_EQ(c.parameters, c.query.Parameters());
  }
}

TEST(SubqueryTest, ForParametersExactMatchOnly) {
  // Example 3.2's candidates for $s alone: subqueries (1) exhibits and
  // (3) diagnoses+exhibits+NOT causes, plus exhibits+diagnoses.
  std::vector<SubqueryCandidate> s_only =
      EnumerateSafeSubqueriesForParameters(Medical(), {"s"});
  ASSERT_EQ(s_only.size(), 3u);
  for (const SubqueryCandidate& c : s_only) {
    EXPECT_EQ(c.parameters, (std::set<std::string>{"s"}));
  }

  std::vector<SubqueryCandidate> m_only =
      EnumerateSafeSubqueriesForParameters(Medical(), {"m"});
  // $m appears only in treatments(P,$m): {t}, {t,d} — {t,e} has both params.
  ASSERT_EQ(m_only.size(), 2u);

  std::vector<SubqueryCandidate> both =
      EnumerateSafeSubqueriesForParameters(Medical(), {"s", "m"});
  // {e,t}, {e,t,d} (the full set is excluded as improper).
  ASSERT_EQ(both.size(), 2u);
}

TEST(SubqueryTest, ArithmeticSubgoalForcesBindingSubgoals) {
  ConjunctiveQuery q =
      Parse("answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2");
  // Any subquery keeping the comparison must keep both baskets subgoals.
  for (const SubqueryCandidate& c : EnumerateSafeSubqueries(q)) {
    bool has_cmp = false;
    std::size_t relational = 0;
    for (const Subgoal& s : c.query.subgoals) {
      has_cmp |= s.is_comparison();
      relational += s.is_relational();
    }
    if (has_cmp) {
      EXPECT_EQ(relational, 2u);
    }
  }
}

TEST(SubqueryTest, KeptIndicesReconstructQuery) {
  ConjunctiveQuery full = Medical();
  for (const SubqueryCandidate& c : EnumerateSafeSubqueries(full)) {
    EXPECT_EQ(full.Subquery(c.kept), c.query);
  }
}

TEST(SubqueryTest, ProperOnlyFalseIncludesFullQuery) {
  ConjunctiveQuery pair =
      Parse("answer(B) :- baskets(B,$1) AND baskets(B,$2)");
  std::vector<SubqueryCandidate> subs = EnumerateSafeSubqueries(
      pair, {.require_parameters = true, .proper_only = false});
  bool has_full = false;
  for (const SubqueryCandidate& c : subs) {
    has_full |= c.query == pair;
  }
  EXPECT_TRUE(has_full);
  EXPECT_EQ(subs.size(), 3u);
}

}  // namespace
}  // namespace qf
