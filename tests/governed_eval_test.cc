// Differential tests for governed evaluation: with a sufficient budget a
// governed run is bit-identical to the ungoverned run at every thread
// count; with a tripped limit it fails with the typed Status and the
// engine unwinds cleanly (no leaks, no corruption — the sanitizer CI jobs
// run these suites). Fault injection sweeps the abort point across every
// Charge() call to prove each unwind path is sound.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "apriori/apriori.h"
#include "common/resource.h"
#include "flocks/eval.h"
#include "flocks/flock.h"
#include "optimizer/dynamic.h"
#include "optimizer/plan_search.h"
#include "plan/executor.h"
#include "plan/plan.h"
#include "workload/basket_gen.h"

namespace qf {
namespace {

constexpr unsigned kThreadCounts[] = {0, 1, 4};

QueryFlock Flock(const char* text, FilterCondition filter) {
  auto f = MakeFlock(text, filter);
  EXPECT_TRUE(f.ok()) << f.status().ToString();
  return *f;
}

// Exact comparison — schema, rows, AND row order. Governance only decides
// abort-or-not, never reorders work, so a governed run that completes must
// be byte-identical to the ungoverned run.
void ExpectIdentical(const Relation& ungoverned, const Relation& governed,
                     unsigned threads) {
  ASSERT_EQ(ungoverned.schema(), governed.schema()) << "threads=" << threads;
  ASSERT_EQ(ungoverned.rows(), governed.rows()) << "threads=" << threads;
}

Database RandomBaskets(std::uint64_t seed, std::uint32_t n_baskets = 400,
                       std::uint32_t n_items = 50) {
  BasketConfig config;
  config.n_baskets = n_baskets;
  config.n_items = n_items;
  config.avg_basket_size = 6;
  config.zipf_theta = 0.9;
  config.seed = seed;
  Database db;
  db.PutRelation(GenerateBaskets(config));
  return db;
}

QueryFlock PairFlock() {
  return Flock("answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2",
               FilterCondition::MinSupport(6));
}

// No underflow: a Release() larger than outstanding charges would wrap the
// unsigned accountant to ~2^64 and spuriously trip every later budget
// check. Anything above 2^62 after a run means exactly that bug.
void ExpectNoUnderflow(const QueryContext& ctx) {
  EXPECT_LT(ctx.used_bytes(), 1ull << 62);
  EXPECT_GE(ctx.peak_bytes(), ctx.used_bytes());
}

void ExpectSameItemsets(const std::vector<Itemset>& a,
                        const std::vector<Itemset>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].items, b[i].items);
    EXPECT_EQ(a[i].support, b[i].support);
  }
}

TEST(GovernedEvalTest, FlockWithSufficientBudgetIsIdentical) {
  Database db = RandomBaskets(11);
  QueryFlock flock = PairFlock();
  Result<Relation> baseline = EvaluateFlock(flock, db);
  ASSERT_TRUE(baseline.ok());
  for (unsigned threads : kThreadCounts) {
    QueryContext ctx;
    ctx.set_memory_budget(1ull << 30);
    ctx.set_timeout_ms(60'000);
    FlockEvalOptions options;
    options.threads = threads;
    options.ctx = &ctx;
    Result<Relation> governed = EvaluateFlock(flock, db, options);
    ASSERT_TRUE(governed.ok()) << governed.status().ToString();
    ExpectIdentical(*baseline, *governed, threads);
    EXPECT_TRUE(ctx.Check().ok());
    EXPECT_GT(ctx.peak_bytes(), 0u);
    ExpectNoUnderflow(ctx);
  }
}

TEST(GovernedEvalTest, ExpiredDeadlineFailsTyped) {
  Database db = RandomBaskets(12);
  QueryFlock flock = PairFlock();
  for (unsigned threads : kThreadCounts) {
    QueryContext ctx;
    ctx.set_deadline(std::chrono::steady_clock::now() -
                     std::chrono::milliseconds(1));
    FlockEvalOptions options;
    options.threads = threads;
    options.ctx = &ctx;
    Result<Relation> governed = EvaluateFlock(flock, db, options);
    ASSERT_FALSE(governed.ok()) << "threads=" << threads;
    EXPECT_EQ(governed.status().code(), StatusCode::kDeadlineExceeded);
    ExpectNoUnderflow(ctx);
  }
}

TEST(GovernedEvalTest, TinyBudgetFailsTyped) {
  Database db = RandomBaskets(13);
  QueryFlock flock = PairFlock();
  for (unsigned threads : kThreadCounts) {
    QueryContext ctx;
    ctx.set_memory_budget(4096);  // far below any real intermediate
    FlockEvalOptions options;
    options.threads = threads;
    options.ctx = &ctx;
    Result<Relation> governed = EvaluateFlock(flock, db, options);
    ASSERT_FALSE(governed.ok()) << "threads=" << threads;
    EXPECT_EQ(governed.status().code(), StatusCode::kResourceExhausted);
    ExpectNoUnderflow(ctx);
  }
}

TEST(GovernedEvalTest, PreSetCancelFlagFailsCancelled) {
  Database db = RandomBaskets(14);
  QueryFlock flock = PairFlock();
  std::atomic<bool> flag{true};
  QueryContext ctx;
  ctx.set_cancel_flag(&flag);
  FlockEvalOptions options;
  options.ctx = &ctx;
  Result<Relation> governed = EvaluateFlock(flock, db, options);
  ASSERT_FALSE(governed.ok());
  EXPECT_EQ(governed.status().code(), StatusCode::kCancelled);
}

// The central differential property: for every fault-injection point n and
// every thread count, the run either fails with the typed governor error
// or completes bit-identical to the ungoverned baseline. (Charge counts
// differ across thread counts — serial fallbacks batch differently — so
// "trips at n" is not required to agree between configurations.)
TEST(GovernedEvalTest, FaultInjectionSweepFlock) {
  Database db = RandomBaskets(15, 200, 30);
  QueryFlock flock = PairFlock();
  Result<Relation> baseline = EvaluateFlock(flock, db);
  ASSERT_TRUE(baseline.ok());
  for (unsigned threads : kThreadCounts) {
    bool saw_trip = false;
    for (std::uint64_t n = 1; n <= 24; ++n) {
      QueryContext ctx;
      ctx.set_fail_after_charges(n);
      FlockEvalOptions options;
      options.threads = threads;
      options.ctx = &ctx;
      Result<Relation> governed = EvaluateFlock(flock, db, options);
      if (governed.ok()) {
        ExpectIdentical(*baseline, *governed, threads);
      } else {
        saw_trip = true;
        EXPECT_EQ(governed.status().code(), StatusCode::kResourceExhausted)
            << "threads=" << threads << " n=" << n;
      }
      ExpectNoUnderflow(ctx);
    }
    EXPECT_TRUE(saw_trip) << "threads=" << threads
                          << ": no injection point tripped — the sweep "
                             "exercised nothing";
  }
}

TEST(GovernedEvalTest, PlanExecutorGovernedMatchesAndTrips) {
  Database db = RandomBaskets(16);
  QueryFlock flock = PairFlock();
  DatabaseStats stats = DatabaseStats::Compute(db);
  CostModel model(std::move(stats));
  Result<QueryPlan> plan = SearchPlanParameterSets(flock, model);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  Result<Relation> baseline = ExecutePlan(*plan, flock, db);
  ASSERT_TRUE(baseline.ok());
  for (unsigned threads : kThreadCounts) {
    {
      QueryContext ctx;
      ctx.set_memory_budget(1ull << 30);
      PlanExecOptions options;
      options.threads = threads;
      options.ctx = &ctx;
      Result<Relation> governed = ExecutePlan(*plan, flock, db, options);
      ASSERT_TRUE(governed.ok()) << governed.status().ToString();
      ExpectIdentical(*baseline, *governed, threads);
      ExpectNoUnderflow(ctx);
    }
    {
      QueryContext ctx;
      ctx.set_memory_budget(2048);
      PlanExecOptions options;
      options.threads = threads;
      options.ctx = &ctx;
      Result<Relation> governed = ExecutePlan(*plan, flock, db, options);
      ASSERT_FALSE(governed.ok()) << "threads=" << threads;
      EXPECT_EQ(governed.status().code(), StatusCode::kResourceExhausted);
      ExpectNoUnderflow(ctx);
    }
  }
}

TEST(GovernedEvalTest, FaultInjectionSweepPlanExecutor) {
  Database db = RandomBaskets(17, 200, 30);
  QueryFlock flock = PairFlock();
  Result<QueryPlan> plan =
      SearchPlanParameterSets(flock, CostModel(DatabaseStats::Compute(db)));
  ASSERT_TRUE(plan.ok());
  Result<Relation> baseline = ExecutePlan(*plan, flock, db);
  ASSERT_TRUE(baseline.ok());
  for (unsigned threads : kThreadCounts) {
    for (std::uint64_t n = 1; n <= 16; ++n) {
      QueryContext ctx;
      ctx.set_fail_after_charges(n);
      PlanExecOptions options;
      options.threads = threads;
      options.ctx = &ctx;
      Result<Relation> governed = ExecutePlan(*plan, flock, db, options);
      if (governed.ok()) {
        ExpectIdentical(*baseline, *governed, threads);
      } else {
        EXPECT_EQ(governed.status().code(), StatusCode::kResourceExhausted);
      }
      ExpectNoUnderflow(ctx);
    }
  }
}

TEST(GovernedEvalTest, DynamicEvaluateGovernedMatchesAndTrips) {
  Database db = RandomBaskets(18);
  QueryFlock flock = PairFlock();
  Result<Relation> baseline = DynamicEvaluate(flock, db);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  {
    QueryContext ctx;
    ctx.set_memory_budget(1ull << 30);
    DynamicOptions options;
    options.ctx = &ctx;
    Result<Relation> governed = DynamicEvaluate(flock, db, options);
    ASSERT_TRUE(governed.ok()) << governed.status().ToString();
    ExpectIdentical(*baseline, *governed, 1);
    ExpectNoUnderflow(ctx);
  }
  {
    QueryContext ctx;
    ctx.set_memory_budget(2048);
    DynamicOptions options;
    options.ctx = &ctx;
    Result<Relation> governed = DynamicEvaluate(flock, db, options);
    ASSERT_FALSE(governed.ok());
    EXPECT_EQ(governed.status().code(), StatusCode::kResourceExhausted);
    ExpectNoUnderflow(ctx);
  }
  for (std::uint64_t n = 1; n <= 16; ++n) {
    QueryContext ctx;
    ctx.set_fail_after_charges(n);
    DynamicOptions options;
    options.ctx = &ctx;
    Result<Relation> governed = DynamicEvaluate(flock, db, options);
    if (governed.ok()) {
      ExpectIdentical(*baseline, *governed, 1);
    } else {
      EXPECT_EQ(governed.status().code(), StatusCode::kResourceExhausted);
    }
    ExpectNoUnderflow(ctx);
  }
}

// The a-priori miners return plain vectors; the governed contract is that
// a tripped context stops the level-wise loop early and the caller
// detects it via ctx->Check().
TEST(GovernedEvalTest, AprioriHonoursContext) {
  BasketConfig config;
  config.n_baskets = 2000;
  config.n_items = 60;
  config.avg_basket_size = 8;
  config.seed = 21;
  Result<BasketData> parsed =
      BasketsFromRelation(GenerateBaskets(config), "BID", "Item");
  ASSERT_TRUE(parsed.ok());
  BasketData data = std::move(*parsed);

  AprioriOptions ungoverned;
  ungoverned.min_support = 10;
  std::vector<Itemset> baseline = AprioriFrequentItemsets(data, ungoverned);
  ASSERT_FALSE(baseline.empty());

  for (unsigned threads : kThreadCounts) {
    AprioriOptions options;
    options.min_support = 10;
    options.threads = threads == 0 ? 1 : threads;
    QueryContext ctx;
    ctx.set_memory_budget(1ull << 30);
    options.ctx = &ctx;
    std::vector<Itemset> governed = AprioriFrequentItemsets(data, options);
    ASSERT_TRUE(ctx.Check().ok());
    ExpectSameItemsets(baseline, governed);

    QueryContext expired;
    expired.set_deadline(std::chrono::steady_clock::now() -
                         std::chrono::milliseconds(1));
    options.ctx = &expired;
    AprioriFrequentItemsets(data, options);
    EXPECT_EQ(expired.Check().code(), StatusCode::kDeadlineExceeded)
        << "threads=" << threads;
  }
}

TEST(GovernedEvalTest, AprioriPairsHonoursContext) {
  BasketConfig config;
  config.n_baskets = 400;
  config.n_items = 50;
  config.avg_basket_size = 7;
  config.seed = 22;
  Result<BasketData> parsed =
      BasketsFromRelation(GenerateBaskets(config), "BID", "Item");
  ASSERT_TRUE(parsed.ok());
  BasketData data = std::move(*parsed);
  std::vector<Itemset> baseline = AprioriFrequentPairs(data, 8, 1);

  for (unsigned threads : {1u, 4u}) {
    QueryContext ctx;
    ctx.set_memory_budget(1ull << 30);
    std::vector<Itemset> governed =
        AprioriFrequentPairs(data, 8, threads, nullptr, &ctx);
    ASSERT_TRUE(ctx.Check().ok());
    ExpectSameItemsets(baseline, governed);

    QueryContext tripped;
    tripped.set_fail_after_charges(1);
    AprioriFrequentPairs(data, 8, threads, nullptr, &tripped);
    EXPECT_EQ(tripped.Check().code(), StatusCode::kResourceExhausted)
        << "threads=" << threads;
  }
}

// Mid-flight cancellation from another thread: the run must return
// CANCELLED (or complete identically if it won the race) and leave the
// context without accounting corruption at every thread count.
TEST(GovernedEvalTest, ConcurrentCancelUnwindsCleanly) {
  Database db = RandomBaskets(23, 800, 60);
  QueryFlock flock = PairFlock();
  Result<Relation> baseline = EvaluateFlock(flock, db);
  ASSERT_TRUE(baseline.ok());
  for (unsigned threads : kThreadCounts) {
    QueryContext ctx;
    std::atomic<bool> flag{false};
    ctx.set_cancel_flag(&flag);
    std::thread canceller([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      flag.store(true);
    });
    FlockEvalOptions options;
    options.threads = threads;
    options.ctx = &ctx;
    Result<Relation> governed = EvaluateFlock(flock, db, options);
    canceller.join();
    if (governed.ok()) {
      ExpectIdentical(*baseline, *governed, threads);
    } else {
      EXPECT_EQ(governed.status().code(), StatusCode::kCancelled);
    }
    ExpectNoUnderflow(ctx);
  }
}

}  // namespace
}  // namespace qf
