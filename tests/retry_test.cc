// Unit tests for the retry helper (common/retry.h): bounded attempts,
// deterministic capped-exponential backoff with seeded jitter, and
// governor-driven aborts of the retry loop.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/resource.h"
#include "common/retry.h"
#include "common/rng.h"
#include "common/status.h"

namespace qf {
namespace {

TEST(BackoffDelayTest, GrowsExponentiallyAndCaps) {
  RetryPolicy policy;
  policy.base_delay_us = 100;
  policy.max_delay_us = 1000;
  Rng rng(42);
  // Jitter is in [0, base); the deterministic part doubles then caps.
  std::int64_t expected_floor[] = {100, 200, 400, 800, 1000, 1000};
  for (int attempt = 0; attempt < 6; ++attempt) {
    std::int64_t delay = BackoffDelayUs(policy, attempt, rng);
    EXPECT_GE(delay, expected_floor[attempt]) << "attempt " << attempt;
    EXPECT_LT(delay, expected_floor[attempt] + policy.base_delay_us)
        << "attempt " << attempt;
  }
}

TEST(BackoffDelayTest, SameSeedSameSchedule) {
  RetryPolicy policy;
  Rng a(7);
  Rng b(7);
  for (int attempt = 0; attempt < 10; ++attempt) {
    EXPECT_EQ(BackoffDelayUs(policy, attempt, a),
              BackoffDelayUs(policy, attempt, b));
  }
}

TEST(BackoffDelayTest, ZeroBaseMeansNoJitter) {
  RetryPolicy policy;
  policy.base_delay_us = 0;
  policy.max_delay_us = 500;
  Rng rng(1);
  EXPECT_EQ(BackoffDelayUs(policy, 0, rng), 0);
  EXPECT_EQ(BackoffDelayUs(policy, 3, rng), 0);
}

RetryPolicy FastPolicy(int attempts) {
  RetryPolicy policy;
  policy.max_attempts = attempts;
  policy.base_delay_us = 1;  // keep test wall time negligible
  policy.max_delay_us = 2;
  return policy;
}

TEST(RetryTest, StopsAfterMaxAttempts) {
  int calls = 0;
  Rng rng(1);
  Status s = RetryWithBackoff(
      FastPolicy(4), rng,
      [&] {
        ++calls;
        return IoError("still broken");
      },
      [](const Status&) { return true; });
  EXPECT_EQ(calls, 4);
  EXPECT_EQ(s.code(), StatusCode::kIoError);
}

TEST(RetryTest, NonRetryableReturnsImmediately) {
  int calls = 0;
  Rng rng(1);
  Status s = RetryWithBackoff(
      FastPolicy(5), rng,
      [&] {
        ++calls;
        return InvalidArgumentError("permanent");
      },
      [](const Status& st) { return st.code() == StatusCode::kIoError; });
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(RetryTest, SucceedsMidway) {
  int calls = 0;
  Rng rng(1);
  Status s = RetryWithBackoff(
      FastPolicy(5), rng,
      [&] {
        ++calls;
        return calls < 3 ? IoError("transient") : Status::Ok();
      },
      [](const Status&) { return true; });
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(calls, 3);
}

TEST(RetryTest, TrippedGovernorPreemptsFirstAttempt) {
  QueryContext ctx;
  ctx.RequestCancel();
  int calls = 0;
  Rng rng(1);
  Status s = RetryWithBackoff(
      FastPolicy(5), rng,
      [&] {
        ++calls;
        return IoError("transient");
      },
      [](const Status&) { return true; }, &ctx);
  EXPECT_EQ(calls, 0);
  EXPECT_EQ(s.code(), StatusCode::kCancelled);
}

TEST(RetryTest, CancelDuringBackoffAbortsTheLoop) {
  QueryContext ctx;
  RetryPolicy policy;
  policy.max_attempts = 1000;
  policy.base_delay_us = 5000;  // long sleeps the cancel must cut short
  policy.max_delay_us = 50'000;
  std::atomic<int> calls{0};
  Rng rng(1);
  std::thread canceller([&] {
    while (calls.load() == 0) std::this_thread::yield();
    ctx.RequestCancel();
  });
  Status s = RetryWithBackoff(
      policy, rng,
      [&] {
        calls.fetch_add(1);
        return IoError("transient");
      },
      [](const Status&) { return true; }, &ctx);
  canceller.join();
  EXPECT_EQ(s.code(), StatusCode::kCancelled);
  // Far fewer than max_attempts: the governor aborted the retry storm.
  EXPECT_LT(calls.load(), 10);
}

TEST(RetryTest, DeadlineCutsSleepShort) {
  QueryContext ctx;
  ctx.set_timeout_ms(10);
  auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(InterruptibleSleepUs(500'000, &ctx));
  auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::steady_clock::now() - start)
                .count();
  EXPECT_LT(ms, 400);  // nowhere near the full 500 ms sleep
}

}  // namespace
}  // namespace qf
