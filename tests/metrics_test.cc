// Tests for the observability layer (common/metrics.h): the OpMetrics
// tree, the trace sinks, ScopedOp, and the shell statements that surface
// them (EXPLAIN ANALYZE, TRACE ON|OFF|TO, SHOW TRACE).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "shell/shell.h"

namespace qf {
namespace {

// ---------------------------------------------------------------- OpMetrics

TEST(OpMetricsTest, AddChildReturnsStablePointers) {
  OpMetrics root("plan");
  OpMetrics* first = root.AddChild("step", "s0");
  // Force reallocation of the children vector: pointers must survive.
  std::vector<OpMetrics*> more;
  for (int i = 0; i < 100; ++i) {
    more.push_back(root.AddChild("step", "s" + std::to_string(i + 1)));
  }
  first->rows_out = 7;
  EXPECT_EQ(root.children[0]->rows_out, 7u);
  EXPECT_EQ(root.children.size(), 101u);
  EXPECT_EQ(more[99]->detail, "s100");
  EXPECT_EQ(root.NodeCount(), 102u);
}

TEST(OpMetricsTest, AddChildrenPreallocatesNamedSlots) {
  OpMetrics root("flock");
  std::vector<OpMetrics*> nodes = root.AddChildren(3, "disjunct");
  ASSERT_EQ(nodes.size(), 3u);
  EXPECT_EQ(nodes[0]->detail, "0");
  EXPECT_EQ(nodes[2]->detail, "2");
  std::vector<OpMetrics*> steps = root.AddChildren(2, "step", "wave ");
  EXPECT_EQ(steps[1]->detail, "wave 1");
  EXPECT_EQ(root.children.size(), 5u);
}

TEST(OpMetricsTest, FindIsPreOrder) {
  OpMetrics root("plan");
  OpMetrics* step = root.AddChild("step", "ok1");
  step->AddChild("join", "baskets")->rows_out = 3;
  root.AddChild("join", "late")->rows_out = 9;
  const OpMetrics* found = root.Find("join");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->detail, "baskets");  // depth-first beats sibling order
  EXPECT_EQ(root.Find("scan"), nullptr);
}

TEST(OpMetricsTest, MergeFromAddsCountersAndMergesPositionally) {
  OpMetrics a("flock");
  a.rows_in = 10;
  a.rows_out = 4;
  a.wall_ns = 100;
  a.est_rows = 8.0;
  a.AddChild("scan")->tuples_probed = 5;

  OpMetrics b("flock");
  b.rows_in = 1;
  b.rows_out = 2;
  b.wall_ns = 50;
  b.est_rows = 99.0;  // must NOT overwrite a's estimate
  b.AddChild("scan")->tuples_probed = 7;
  b.AddChild("join", "extra")->rows_out = 11;  // deep-copied in

  a.MergeFrom(b);
  EXPECT_EQ(a.rows_in, 11u);
  EXPECT_EQ(a.rows_out, 6u);
  EXPECT_EQ(a.wall_ns, 150u);
  EXPECT_DOUBLE_EQ(a.est_rows, 8.0);
  ASSERT_EQ(a.children.size(), 2u);
  EXPECT_EQ(a.children[0]->tuples_probed, 12u);
  EXPECT_EQ(a.children[1]->op, "join");
  EXPECT_EQ(a.children[1]->rows_out, 11u);
  // The deep copy is independent of b's subtree.
  b.children[1]->rows_out = 0;
  EXPECT_EQ(a.children[1]->rows_out, 11u);
}

TEST(OpMetricsTest, MergeFromFillsMissingEstimate) {
  OpMetrics a("step");
  OpMetrics b("step");
  b.est_rows = 42.0;
  a.MergeFrom(b);
  EXPECT_DOUBLE_EQ(a.est_rows, 42.0);
}

TEST(OpMetricsTest, ToStringRendersCountersAndSkew) {
  OpMetrics node("join", "baskets");
  node.rows_in = 812;
  node.rows_in_right = 140;
  node.rows_out = 1220;
  node.tuples_probed = 812;
  std::string text = node.ToString();
  EXPECT_NE(text.find("join baskets"), std::string::npos);
  EXPECT_NE(text.find("in=812x140"), std::string::npos);
  EXPECT_NE(text.find("out=1220"), std::string::npos);
  EXPECT_NE(text.find("probed=812"), std::string::npos);
  // morsels=0 is omitted; est is absent without an estimate.
  EXPECT_EQ(text.find("morsels"), std::string::npos);
  EXPECT_EQ(text.find("est="), std::string::npos);

  node.est_rows = 610.0;
  text = node.ToString();
  EXPECT_NE(text.find("est=610 (x2.00)"), std::string::npos);

  node.est_rows = 0.0;  // zero estimate, nonzero actual: infinite skew
  EXPECT_NE(node.ToString().find("est=0 (xinf)"), std::string::npos);
  node.rows_out = 0;
  EXPECT_NE(node.ToString().find("est=0 (exact)"), std::string::npos);
}

TEST(OpMetricsTest, ToStringIndentsChildren) {
  OpMetrics root("plan");
  root.AddChild("step", "ok1")->AddChild("scan", "baskets");
  std::string text = root.ToString();
  EXPECT_NE(text.find("\n  step ok1"), std::string::npos);
  EXPECT_NE(text.find("\n    scan baskets"), std::string::npos);
}

TEST(OpMetricsTest, ToJsonIsNestedAndEscaped) {
  OpMetrics root("plan", "he said \"hi\"\n");
  root.rows_out = 3;
  root.est_rows = 2.0;
  root.AddChild("scan", "baskets")->rows_in = 9;
  std::string json = root.ToJson();
  EXPECT_NE(json.find("\"op\":\"plan\""), std::string::npos);
  EXPECT_NE(json.find("he said \\\"hi\\\"\\n"), std::string::npos);
  EXPECT_NE(json.find("\"rows_out\":3"), std::string::npos);
  EXPECT_NE(json.find("\"est_rows\":2"), std::string::npos);
  EXPECT_NE(json.find("\"children\":[{\"op\":\"scan\""), std::string::npos);
  // A leaf without an estimate omits est_rows and children entirely.
  std::string leaf = root.children[0]->ToJson();
  EXPECT_EQ(leaf.find("est_rows"), std::string::npos);
  EXPECT_EQ(leaf.find("children"), std::string::npos);
}

// -------------------------------------------------------------- trace sinks

TEST(TraceTest, FormatTraceEventShapes) {
  std::string begin = FormatTraceEvent('B', "join", "baskets", 123, 0);
  EXPECT_EQ(begin.find("{\"ev\":\"B\",\"op\":\"join\",\"detail\":\"baskets\""),
            0u);
  EXPECT_NE(begin.find("\"t_ns\":123"), std::string::npos);
  EXPECT_NE(begin.find("\"tid\":\""), std::string::npos);
  EXPECT_EQ(begin.find("rows_out"), std::string::npos);  // B has no rows

  std::string end = FormatTraceEvent('E', "join", "baskets", 456, 7);
  EXPECT_NE(end.find("\"ev\":\"E\""), std::string::npos);
  EXPECT_NE(end.find(",\"rows_out\":7}"), std::string::npos);
}

TEST(TraceTest, MemoryTraceSinkBuffersAndClears) {
  MemoryTraceSink sink;
  sink.BeginSpan("scan", "baskets", 10);
  sink.EndSpan("scan", "baskets", 20, 5);
  EXPECT_EQ(sink.event_count(), 2u);
  std::vector<std::string> lines = sink.Lines();
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"ev\":\"B\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"rows_out\":5"), std::string::npos);
  sink.Clear();
  EXPECT_EQ(sink.event_count(), 0u);
}

TEST(TraceTest, MemoryTraceSinkIsThreadSafe) {
  MemoryTraceSink sink;
  constexpr int kThreads = 8;
  constexpr int kSpans = 200;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&sink, t] {
      for (int i = 0; i < kSpans; ++i) {
        sink.BeginSpan("w", std::to_string(t), static_cast<std::uint64_t>(i));
        sink.EndSpan("w", std::to_string(t), static_cast<std::uint64_t>(i),
                     1);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(sink.event_count(),
            static_cast<std::size_t>(kThreads) * kSpans * 2);
  // Every buffered line is a whole event, never an interleaved fragment.
  for (const std::string& line : sink.Lines()) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
  }
}

TEST(TraceTest, JsonLinesTraceSinkWritesFile) {
  std::string path =
      (std::filesystem::temp_directory_path() / "qf_trace_test.jsonl")
          .string();
  {
    JsonLinesTraceSink sink(path);
    ASSERT_TRUE(sink.ok());
    sink.BeginSpan("flock", "pairs", 1);
    sink.EndSpan("flock", "pairs", 2, 9);
    EXPECT_EQ(sink.event_count(), 2u);
  }  // destructor flushes + closes
  std::ifstream in(path);
  std::string line;
  std::size_t n = 0;
  while (std::getline(in, line)) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    ++n;
  }
  EXPECT_EQ(n, 2u);
  std::remove(path.c_str());
}

TEST(TraceTest, JsonLinesTraceSinkReportsOpenFailure) {
  JsonLinesTraceSink sink("/nonexistent-dir-qf/trace.jsonl");
  EXPECT_FALSE(sink.ok());
  sink.BeginSpan("x", "", 0);  // must not crash
  EXPECT_EQ(sink.event_count(), 0u);
}

// ----------------------------------------------------------------- ScopedOp

TEST(ScopedOpTest, AccumulatesWallTimeAndEmitsSpans) {
  OpMetrics node("join", "baskets");
  MemoryTraceSink sink;
  {
    ScopedOp span(&node, &sink);
    node.rows_out = 42;
  }
  EXPECT_GT(node.wall_ns, 0u);
  ASSERT_EQ(sink.event_count(), 2u);
  std::vector<std::string> lines = sink.Lines();
  EXPECT_NE(lines[0].find("\"ev\":\"B\",\"op\":\"join\""), std::string::npos);
  // The end span carries the rows_out the region body filled in.
  EXPECT_NE(lines[1].find("\"rows_out\":42"), std::string::npos);

  // Re-entering the same node accumulates rather than overwrites.
  std::uint64_t first = node.wall_ns;
  { ScopedOp span(&node); }
  EXPECT_GE(node.wall_ns, first);
}

TEST(ScopedOpTest, NullMetricsIsInert) {
  // The disabled path: no metrics node means no clock reads and no trace
  // events even when a sink is supplied.
  MemoryTraceSink sink;
  { ScopedOp span(nullptr, &sink); }
  EXPECT_EQ(sink.event_count(), 0u);
}

// ------------------------------------------------------------------- shell

std::string MustRun(Shell& shell, std::string_view statement) {
  Result<std::string> out = shell.Execute(statement);
  EXPECT_TRUE(out.ok()) << out.status().ToString() << " for: " << statement;
  return out.ok() ? *out : std::string();
}

void DeclarePairs(Shell& shell) {
  MustRun(shell,
          "GEN BASKETS baskets n_baskets=200 n_items=30 avg_size=6 "
          "theta=0.8 seed=5");
  MustRun(shell,
          "FLOCK pairs QUERY answer(B) :- baskets(B,$1) AND baskets(B,$2) "
          "AND $1 < $2 FILTER COUNT >= 8");
}

TEST(ShellMetricsTest, ExplainAnalyzeRendersMetricsTree) {
  Shell shell;
  DeclarePairs(shell);
  std::string out = MustRun(shell, "EXPLAIN ANALYZE pairs");
  EXPECT_NE(out.find("metrics:"), std::string::npos);
  EXPECT_NE(out.find("plan"), std::string::npos);
  EXPECT_NE(out.find("scan baskets"), std::string::npos);
  EXPECT_NE(out.find("join baskets"), std::string::npos);
  EXPECT_NE(out.find("group_by"), std::string::npos);
  EXPECT_NE(out.find("result:"), std::string::npos);
  // The support-style filter gets an optimizer estimate: skew renders.
  EXPECT_NE(out.find("est="), std::string::npos);
}

TEST(ShellMetricsTest, ExplainAnalyzeMatchesRunResult) {
  Shell shell;
  DeclarePairs(shell);
  for (const char* mode : {"DIRECT", "PLAN", "REDUCED"}) {
    std::string run =
        MustRun(shell, std::string("RUN pairs ") + mode + " LIMIT 5");
    std::string analyzed =
        MustRun(shell, std::string("EXPLAIN ANALYZE pairs ") + mode +
                           " LIMIT 5");
    // RUN's preview is everything after its header line; EXPLAIN
    // ANALYZE's is everything after "result:\n". They must be identical —
    // instrumentation cannot change results.
    std::string run_preview = run.substr(run.find('\n') + 1);
    std::size_t marker = analyzed.find("result:\n");
    ASSERT_NE(marker, std::string::npos) << mode;
    EXPECT_EQ(run_preview, analyzed.substr(marker + 8)) << mode;
  }
}

TEST(ShellMetricsTest, ExplainAnalyzeDynamicShowsDecisions) {
  Shell shell;
  DeclarePairs(shell);
  std::string out = MustRun(shell, "EXPLAIN ANALYZE pairs DYNAMIC");
  EXPECT_NE(out.find("dynamic decisions:"), std::string::npos);
  EXPECT_NE(out.find("dyn_filter"), std::string::npos);
  EXPECT_NE(out.find("metrics:"), std::string::npos);
}

TEST(ShellMetricsTest, ExplainAnalyzeThreadsOption) {
  Shell shell;
  DeclarePairs(shell);
  std::string out = MustRun(shell, "EXPLAIN ANALYZE pairs PLAN THREADS 4");
  EXPECT_NE(out.find("threads 4"), std::string::npos);
}

TEST(ShellMetricsTest, ExplainAnalyzeErrors) {
  Shell shell;
  DeclarePairs(shell);
  EXPECT_FALSE(shell.Execute("EXPLAIN ANALYZE no_such_flock").ok());
  EXPECT_FALSE(shell.Execute("EXPLAIN ANALYZE pairs SIDEWAYS").ok());
  EXPECT_FALSE(shell.Execute("EXPLAIN ANALYZE pairs LIMIT x").ok());
  EXPECT_FALSE(shell.Execute("EXPLAIN ANALYZE pairs THREADS -2").ok());
}

TEST(ShellMetricsTest, TraceOnBuffersSpans) {
  Shell shell;
  DeclarePairs(shell);
  EXPECT_FALSE(shell.tracing());
  std::string on = MustRun(shell, "TRACE ON");
  EXPECT_NE(on.find("trace on"), std::string::npos);
  EXPECT_TRUE(shell.tracing());

  MustRun(shell, "RUN pairs PLAN LIMIT 2");
  std::string trace = MustRun(shell, "SHOW TRACE");
  EXPECT_NE(trace.find("\"ev\":\"B\""), std::string::npos);
  EXPECT_NE(trace.find("\"ev\":\"E\""), std::string::npos);
  EXPECT_NE(trace.find("events"), std::string::npos);

  std::string off = MustRun(shell, "TRACE OFF");
  EXPECT_NE(off.find("trace off"), std::string::npos);
  EXPECT_FALSE(shell.tracing());
  EXPECT_NE(MustRun(shell, "SHOW TRACE").find("(trace is off)"),
            std::string::npos);
  // OFF is idempotent.
  EXPECT_NE(MustRun(shell, "TRACE OFF").find("already off"),
            std::string::npos);
}

TEST(ShellMetricsTest, TraceToWritesJsonLinesFile) {
  Shell shell;
  DeclarePairs(shell);
  std::string path =
      (std::filesystem::temp_directory_path() / "qf_shell_trace.jsonl")
          .string();
  std::string to = MustRun(shell, "TRACE TO " + path);
  EXPECT_NE(to.find("tracing to"), std::string::npos);
  MustRun(shell, "EXPLAIN ANALYZE pairs PLAN");
  EXPECT_NE(MustRun(shell, "SHOW TRACE").find(path), std::string::npos);
  MustRun(shell, "TRACE OFF");  // closes the file

  std::ifstream in(path);
  std::string line;
  std::size_t events = 0;
  bool saw_join = false;
  while (std::getline(in, line)) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    if (line.find("\"op\":\"join\"") != std::string::npos) saw_join = true;
    ++events;
  }
  EXPECT_GT(events, 0u);
  EXPECT_TRUE(saw_join);
  std::remove(path.c_str());
}

TEST(ShellMetricsTest, TraceErrors) {
  Shell shell;
  EXPECT_FALSE(shell.Execute("TRACE").ok());
  EXPECT_FALSE(shell.Execute("TRACE TO").ok());
  EXPECT_FALSE(shell.Execute("TRACE SIDEWAYS").ok());
  Result<std::string> bad =
      shell.Execute("TRACE TO /nonexistent-dir-qf/t.jsonl");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("cannot open"), std::string::npos);
  EXPECT_FALSE(shell.tracing());  // failed install leaves tracing off
}

TEST(ShellMetricsTest, RunUnderTraceMatchesUntraced) {
  // Tracing a RUN must not change its result text (the header's timing
  // varies; compare the preview part).
  Shell shell;
  DeclarePairs(shell);
  std::string plain = MustRun(shell, "RUN pairs PLAN LIMIT 4");
  MustRun(shell, "TRACE ON");
  std::string traced = MustRun(shell, "RUN pairs PLAN LIMIT 4");
  EXPECT_EQ(plain.substr(plain.find('\n')), traced.substr(traced.find('\n')));
  EXPECT_GT(MustRun(shell, "SHOW TRACE").size(), 0u);
}

}  // namespace
}  // namespace qf
