// Tests for association-rule derivation and the §1.1 measures.
#include <gtest/gtest.h>

#include "apriori/rules.h"

namespace qf {
namespace {

BasketData MakeData(std::vector<std::vector<std::string>> baskets) {
  Relation rel("baskets", Schema({"BID", "Item"}));
  for (std::size_t b = 0; b < baskets.size(); ++b) {
    for (const std::string& item : baskets[b]) {
      rel.AddRow({Value(static_cast<std::int64_t>(b)), Value(item)});
    }
  }
  rel.Dedup();
  auto data = BasketsFromRelation(rel, "BID", "Item");
  EXPECT_TRUE(data.ok());
  return *data;
}

// 10 baskets: beer in 4, diapers in 5, both in 4 — beer -> diapers has
// confidence 1.0 and interest 1/(0.5) = 2.0.
BasketData BeerDiapers() {
  std::vector<std::vector<std::string>> baskets;
  for (int i = 0; i < 4; ++i) baskets.push_back({"beer", "diapers"});
  baskets.push_back({"diapers"});
  for (int i = 0; i < 5; ++i) baskets.push_back({"milk"});
  return MakeData(baskets);
}

TEST(RulesTest, ConfidenceAndInterestComputed) {
  BasketData data = BeerDiapers();
  std::vector<Itemset> frequent =
      AprioriFrequentItemsets(data, {.min_support = 4});
  std::vector<AssociationRule> rules =
      DeriveRules(data, frequent, {.min_confidence = 0.0});
  // From {beer, diapers}: beer -> diapers and diapers -> beer.
  ASSERT_EQ(rules.size(), 2u);
  const AssociationRule* beer_to_diapers = nullptr;
  const AssociationRule* diapers_to_beer = nullptr;
  for (const AssociationRule& r : rules) {
    if (data.item_names[r.rhs] == "diapers") beer_to_diapers = &r;
    if (data.item_names[r.rhs] == "beer") diapers_to_beer = &r;
  }
  ASSERT_NE(beer_to_diapers, nullptr);
  ASSERT_NE(diapers_to_beer, nullptr);
  EXPECT_DOUBLE_EQ(beer_to_diapers->confidence, 1.0);    // 4/4
  EXPECT_DOUBLE_EQ(beer_to_diapers->interest, 2.0);      // 1.0 / (5/10)
  EXPECT_DOUBLE_EQ(diapers_to_beer->confidence, 0.8);    // 4/5
  EXPECT_DOUBLE_EQ(diapers_to_beer->interest, 2.0);      // 0.8 / (4/10)
  EXPECT_EQ(beer_to_diapers->support, 4u);
}

TEST(RulesTest, MinConfidenceFilters) {
  BasketData data = BeerDiapers();
  std::vector<Itemset> frequent =
      AprioriFrequentItemsets(data, {.min_support = 4});
  std::vector<AssociationRule> rules =
      DeriveRules(data, frequent, {.min_confidence = 0.9});
  ASSERT_EQ(rules.size(), 1u);  // only beer -> diapers (conf 1.0)
  EXPECT_EQ(data.item_names[rules[0].rhs], "diapers");
}

TEST(RulesTest, InterestDeviationFilters) {
  // milk and bread are independent: interest ~= 1, filtered out by a
  // deviation threshold.
  std::vector<std::vector<std::string>> baskets;
  for (int i = 0; i < 4; ++i) baskets.push_back({"milk", "bread"});
  for (int i = 0; i < 4; ++i) baskets.push_back({"milk"});
  for (int i = 0; i < 4; ++i) baskets.push_back({"bread"});
  // P(bread) = 8/12; conf(milk -> bread) = 4/8 = 0.5; interest = 0.75.
  BasketData data = MakeData(baskets);
  std::vector<Itemset> frequent =
      AprioriFrequentItemsets(data, {.min_support = 4});
  std::vector<AssociationRule> loose =
      DeriveRules(data, frequent, {.min_confidence = 0.0});
  EXPECT_EQ(loose.size(), 2u);
  std::vector<AssociationRule> strict = DeriveRules(
      data, frequent,
      {.min_confidence = 0.0, .min_interest_deviation = 0.3});
  EXPECT_TRUE(strict.empty());
}

TEST(RulesTest, TriplesYieldThreeRulesEach) {
  std::vector<std::vector<std::string>> baskets;
  for (int i = 0; i < 5; ++i) baskets.push_back({"a", "b", "c"});
  BasketData data = MakeData(baskets);
  std::vector<Itemset> frequent =
      AprioriFrequentItemsets(data, {.min_support = 5});
  std::vector<AssociationRule> rules =
      DeriveRules(data, frequent, {.min_confidence = 0.0});
  // {a,b}, {a,c}, {b,c} give 2 rules each; {a,b,c} gives 3 more.
  EXPECT_EQ(rules.size(), 9u);
  std::size_t two_item_lhs = 0;
  for (const AssociationRule& r : rules) two_item_lhs += r.lhs.size() == 2;
  EXPECT_EQ(two_item_lhs, 3u);
}

TEST(RulesTest, RuleToStringFormat) {
  BasketData data = BeerDiapers();
  std::vector<Itemset> frequent =
      AprioriFrequentItemsets(data, {.min_support = 4});
  std::vector<AssociationRule> rules =
      DeriveRules(data, frequent, {.min_confidence = 0.9});
  ASSERT_EQ(rules.size(), 1u);
  std::string text = RuleToString(rules[0], data);
  EXPECT_NE(text.find("beer -> diapers"), std::string::npos);
  EXPECT_NE(text.find("support 4"), std::string::npos);
  EXPECT_NE(text.find("confidence 1.00"), std::string::npos);
  EXPECT_NE(text.find("interest 2.00"), std::string::npos);
}

}  // namespace
}  // namespace qf
