// Tests for the k-itemset flock builder and the levelwise a-priori plans
// of §4.3 (restriction 2): shape, legality, and agreement with both the
// direct evaluator and the hand-coded a-priori miner.
#include <gtest/gtest.h>

#include "apriori/apriori.h"
#include "flocks/eval.h"
#include "optimizer/executor_support.h"
#include "optimizer/itemset_plans.h"
#include "plan/legality.h"
#include "workload/basket_gen.h"

namespace qf {
namespace {

Database SmallDb(std::uint64_t seed = 3) {
  BasketConfig config;
  config.n_baskets = 400;
  config.n_items = 60;
  config.avg_basket_size = 6;
  config.zipf_theta = 0.8;
  config.topic_locality = 0.5;
  config.n_topics = 10;
  config.seed = seed;
  Database db;
  db.PutRelation(GenerateBaskets(config));
  return db;
}

TEST(ItemsetFlockTest, PairFlockShape) {
  auto flock = MakeItemsetFlock("baskets", 2, 10);
  ASSERT_TRUE(flock.ok());
  EXPECT_EQ(flock->query.disjuncts[0].ToString(),
            "answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2");
}

TEST(ItemsetFlockTest, TripleFlockShape) {
  auto flock = MakeItemsetFlock("baskets", 3, 10);
  ASSERT_TRUE(flock.ok());
  const ConjunctiveQuery& cq = flock->query.disjuncts[0];
  EXPECT_EQ(cq.subgoals.size(), 5u);
  EXPECT_EQ(cq.Parameters(), (std::set<std::string>{"1", "2", "3"}));
}

TEST(ItemsetFlockTest, RejectsKBelow2) {
  EXPECT_FALSE(MakeItemsetFlock("baskets", 1, 10).ok());
}

TEST(ItemsetPlanTest, PairPlanLegal) {
  auto flock = MakeItemsetFlock("baskets", 2, 10);
  ASSERT_TRUE(flock.ok());
  auto plan = ItemsetAprioriPlan(*flock, 2, 1);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan->steps.size(), 3u);  // ok_1, ok_2, final
  EXPECT_TRUE(CheckLegal(*plan, *flock).ok());
}

TEST(ItemsetPlanTest, TriplePlanWithPairPrefiltersLegal) {
  auto flock = MakeItemsetFlock("baskets", 3, 10);
  ASSERT_TRUE(flock.ok());
  auto plan = ItemsetAprioriPlan(*flock, 3, 2);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_EQ(plan->steps.size(), 4u);  // ok_1_2, ok_1_3, ok_2_3, final
  EXPECT_EQ(plan->steps[0].result_name, "ok_1_2");
  EXPECT_EQ(plan->steps[1].result_name, "ok_1_3");
  EXPECT_EQ(plan->steps[2].result_name, "ok_2_3");
  EXPECT_TRUE(CheckLegal(*plan, *flock).ok());
}

TEST(ItemsetPlanTest, NonAdjacentSubsetDropsComparison) {
  auto flock = MakeItemsetFlock("baskets", 3, 10);
  ASSERT_TRUE(flock.ok());
  auto plan = ItemsetAprioriPlan(*flock, 3, 2);
  ASSERT_TRUE(plan.ok());
  // ok_1_3 keeps no comparison ($1 < $3 is not an original subgoal).
  const ConjunctiveQuery& cq13 = plan->steps[1].query.disjuncts[0];
  for (const Subgoal& s : cq13.subgoals) {
    EXPECT_FALSE(s.is_comparison()) << s.ToString();
  }
}

TEST(ItemsetPlanTest, RejectsBadSubsetSize) {
  auto flock = MakeItemsetFlock("baskets", 3, 10);
  ASSERT_TRUE(flock.ok());
  EXPECT_FALSE(ItemsetAprioriPlan(*flock, 3, 0).ok());
  EXPECT_FALSE(ItemsetAprioriPlan(*flock, 3, 3).ok());
}

TEST(ItemsetPlanTest, RejectsForeignFlockShape) {
  auto other = MakeFlock("answer(B) :- baskets(B,$1)",
                         FilterCondition::MinSupport(5));
  ASSERT_TRUE(other.ok());
  EXPECT_FALSE(ItemsetAprioriPlan(*other, 2, 1).ok());
}

TEST(ItemsetPlanTest, TriplesMatchDirectAndApriori) {
  Database db = SmallDb();
  auto flock = MakeItemsetFlock("baskets", 3, 6);
  ASSERT_TRUE(flock.ok());
  auto plan = ItemsetAprioriPlan(*flock, 3, 2);
  ASSERT_TRUE(plan.ok());

  auto direct = EvaluateFlock(*flock, db);
  auto planned = ExecutePlanOptimized(*plan, *flock, db);
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();
  ASSERT_TRUE(planned.ok()) << planned.status().ToString();
  direct->SortRows();
  planned->SortRows();
  EXPECT_EQ(direct->rows(), planned->rows());

  auto data = BasketsFromRelation(db.Get("baskets"), "BID", "Item");
  ASSERT_TRUE(data.ok());
  std::vector<Itemset> frequent =
      AprioriFrequentItemsets(*data, {.min_support = 6, .max_size = 3});
  std::size_t triples = 0;
  for (const Itemset& s : frequent) {
    if (s.items.size() != 3) continue;
    ++triples;
    EXPECT_TRUE(direct->Contains({Value(data->item_names[s.items[0]]),
                                  Value(data->item_names[s.items[1]]),
                                  Value(data->item_names[s.items[2]])}));
  }
  EXPECT_EQ(direct->size(), triples);
}

TEST(ItemsetPlanTest, SingletonPrefiltersAlsoWork) {
  Database db = SmallDb(9);
  auto flock = MakeItemsetFlock("baskets", 3, 5);
  ASSERT_TRUE(flock.ok());
  auto plan = ItemsetAprioriPlan(*flock, 3, 1);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->steps.size(), 4u);  // ok_1, ok_2, ok_3, final
  auto direct = EvaluateFlock(*flock, db);
  auto planned = ExecutePlanOptimized(*plan, *flock, db);
  ASSERT_TRUE(direct.ok());
  ASSERT_TRUE(planned.ok()) << planned.status().ToString();
  direct->SortRows();
  planned->SortRows();
  EXPECT_EQ(direct->rows(), planned->rows());
}

}  // namespace
}  // namespace qf
