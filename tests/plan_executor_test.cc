// Tests for plan execution: every legal plan must produce exactly the
// flock's answer (the §4.2 equivalence), on fixtures and random data.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "flocks/eval.h"
#include "plan/executor.h"
#include "workload/basket_gen.h"
#include "workload/medical_gen.h"
#include "workload/web_gen.h"

namespace qf {
namespace {

QueryFlock Flock(const char* text, FilterCondition filter) {
  auto f = MakeFlock(text, filter);
  EXPECT_TRUE(f.ok()) << f.status().ToString();
  return *f;
}

void ExpectSameResult(const Relation& a, const Relation& b) {
  Relation sa = a, sb = b;
  sa.SortRows();
  sb.SortRows();
  EXPECT_EQ(sa.schema(), sb.schema());
  EXPECT_EQ(sa.rows(), sb.rows());
}

TEST(ExecutorTest, TrivialPlanMatchesDirectEval) {
  BasketConfig config{.n_baskets = 200, .n_items = 40, .avg_basket_size = 6,
                      .zipf_theta = 0.9, .seed = 7};
  Database db;
  db.PutRelation(GenerateBaskets(config));
  QueryFlock flock =
      Flock("answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2",
            FilterCondition::MinSupport(10));
  auto direct = EvaluateFlock(flock, db);
  auto planned = ExecutePlan(TrivialPlan(flock), flock, db);
  ASSERT_TRUE(direct.ok());
  ASSERT_TRUE(planned.ok()) << planned.status().ToString();
  ExpectSameResult(*direct, *planned);
}

TEST(ExecutorTest, MarketBasketPrefilterPlanMatches) {
  BasketConfig config{.n_baskets = 300, .n_items = 60, .avg_basket_size = 5,
                      .zipf_theta = 1.1, .seed = 3};
  Database db;
  db.PutRelation(GenerateBaskets(config));
  QueryFlock flock =
      Flock("answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2",
            FilterCondition::MinSupport(8));

  // Prefilter both parameters with their single-subgoal subqueries
  // (Example 3.1's optimization).
  auto ok1 =
      MakeFilterStep(flock, "ok1", {"1"}, std::vector<std::size_t>{0});
  ASSERT_TRUE(ok1.ok()) << ok1.status().ToString();
  auto ok2 =
      MakeFilterStep(flock, "ok2", {"2"}, std::vector<std::size_t>{1});
  ASSERT_TRUE(ok2.ok());
  auto plan = PlanWithPrefilters(flock, {*ok1, *ok2});
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  auto direct = EvaluateFlock(flock, db);
  PlanExecInfo info;
  auto planned = ExecutePlan(*plan, flock, db, {}, &info);
  ASSERT_TRUE(direct.ok());
  ASSERT_TRUE(planned.ok()) << planned.status().ToString();
  ExpectSameResult(*direct, *planned);

  ASSERT_EQ(info.steps.size(), 3u);
  EXPECT_EQ(info.steps[0].step_name, "ok1");
  EXPECT_GT(info.steps[0].result_rows, 0u);
  // The prefilter must actually prune items.
  EXPECT_LT(info.steps[0].result_rows, 60u);
}

TEST(ExecutorTest, Figure5MedicalPlanMatches) {
  MedicalConfig config;
  config.n_patients = 400;
  config.n_symptoms = 60;
  config.n_medicines = 40;
  config.seed = 11;
  Database db = GenerateMedical(config);
  QueryFlock flock = Flock(
      "answer(P) :- exhibits(P,$s) AND treatments(P,$m) AND "
      "diagnoses(P,D) AND NOT causes(D,$s)",
      FilterCondition::MinSupport(5));

  auto okS = MakeFilterStep(flock, "okS", {"s"}, std::vector<std::size_t>{0});
  ASSERT_TRUE(okS.ok());
  auto okM = MakeFilterStep(flock, "okM", {"m"}, std::vector<std::size_t>{1});
  ASSERT_TRUE(okM.ok());
  auto plan = PlanWithPrefilters(flock, {*okS, *okM});
  ASSERT_TRUE(plan.ok());

  auto direct = EvaluateFlock(flock, db);
  auto planned = ExecutePlan(*plan, flock, db);
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();
  ASSERT_TRUE(planned.ok()) << planned.status().ToString();
  ExpectSameResult(*direct, *planned);
}

TEST(ExecutorTest, PairSubqueryPrefilterMatches) {
  // Subquery (4) of Ex. 3.2: filter ($s,$m) pairs via exhibits+treatments.
  MedicalConfig config;
  config.n_patients = 300;
  config.n_symptoms = 40;
  config.n_medicines = 30;
  config.seed = 13;
  Database db = GenerateMedical(config);
  QueryFlock flock = Flock(
      "answer(P) :- exhibits(P,$s) AND treatments(P,$m) AND "
      "diagnoses(P,D) AND NOT causes(D,$s)",
      FilterCondition::MinSupport(4));
  auto pair = MakeFilterStep(flock, "okPair", {"s", "m"},
                             std::vector<std::size_t>{0, 1});
  ASSERT_TRUE(pair.ok()) << pair.status().ToString();
  auto plan = PlanWithPrefilters(flock, {*pair});
  ASSERT_TRUE(plan.ok());
  auto direct = EvaluateFlock(flock, db);
  auto planned = ExecutePlan(*plan, flock, db);
  ASSERT_TRUE(direct.ok());
  ASSERT_TRUE(planned.ok()) << planned.status().ToString();
  ExpectSameResult(*direct, *planned);
}

TEST(ExecutorTest, UnionPlanMatches) {
  WebConfig config;
  config.n_docs = 200;
  config.n_words = 50;
  config.n_anchors = 300;
  config.seed = 5;
  Database db = GenerateWeb(config);
  QueryFlock flock = Flock(R"(
      answer(D) :- inTitle(D,$1) AND inTitle(D,$2) AND $1 < $2
      answer(A) :- link(A,D1,D2) AND inAnchor(A,$1) AND inTitle(D2,$2)
                   AND $1 < $2
      answer(A) :- link(A,D1,D2) AND inAnchor(A,$2) AND inTitle(D2,$1)
                   AND $1 < $2
  )",
                           FilterCondition::MinSupport(6));

  // Union prefilter on $1 (Example 3.3): per-disjunct subqueries.
  auto ok1 = MakeFilterStep(flock, "ok1", {"1"},
                            {std::vector<std::size_t>{0},    // inTitle(D,$1)
                             std::vector<std::size_t>{1},    // inAnchor(A,$1)
                             std::vector<std::size_t>{0, 2}});  // link+inTitle
  ASSERT_TRUE(ok1.ok()) << ok1.status().ToString();
  auto plan = PlanWithPrefilters(flock, {*ok1});
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  auto direct = EvaluateFlock(flock, db);
  auto planned = ExecutePlan(*plan, flock, db);
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();
  ASSERT_TRUE(planned.ok()) << planned.status().ToString();
  ExpectSameResult(*direct, *planned);
}

TEST(ExecutorTest, IllegalPlanRejectedByDefault) {
  Database db;
  db.PutRelation(GenerateBaskets({.n_baskets = 10, .n_items = 5,
                                  .avg_basket_size = 3, .zipf_theta = 0,
                                  .seed = 1}));
  QueryFlock flock =
      Flock("answer(B) :- baskets(B,$1) AND baskets(B,$2)",
            FilterCondition::MinSupport(2));
  QueryPlan plan = TrivialPlan(flock);
  plan.steps[0].query.disjuncts[0].subgoals.pop_back();
  EXPECT_FALSE(ExecutePlan(plan, flock, db).ok());
}

// Property: random legal prefilter subsets all agree with direct
// evaluation on random basket data.
class PlanEquivalenceProperty : public ::testing::TestWithParam<int> {};

TEST_P(PlanEquivalenceProperty, RandomPrefilterSubsetsAgree) {
  int seed = GetParam();
  Rng rng(seed);
  BasketConfig config{
      .n_baskets = 150,
      .n_items = 30,
      .avg_basket_size = 4,
      .zipf_theta = 0.8,
      .seed = static_cast<std::uint64_t>(seed) * 1000 + 17};
  Database db;
  db.PutRelation(GenerateBaskets(config));
  QueryFlock flock =
      Flock("answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2",
            FilterCondition::MinSupport(2 + seed % 5));

  std::vector<FilterStep> prefilters;
  if (rng.NextBernoulli(0.5)) {
    auto ok1 =
        MakeFilterStep(flock, "ok1", {"1"}, std::vector<std::size_t>{0});
    ASSERT_TRUE(ok1.ok());
    prefilters.push_back(*ok1);
  }
  if (rng.NextBernoulli(0.5)) {
    auto ok2 =
        MakeFilterStep(flock, "ok2", {"2"}, std::vector<std::size_t>{1});
    ASSERT_TRUE(ok2.ok());
    prefilters.push_back(*ok2);
  }
  auto plan = PlanWithPrefilters(flock, std::move(prefilters));
  ASSERT_TRUE(plan.ok());

  auto direct = EvaluateFlock(flock, db);
  auto planned = ExecutePlan(*plan, flock, db);
  ASSERT_TRUE(direct.ok());
  ASSERT_TRUE(planned.ok()) << planned.status().ToString();
  ExpectSameResult(*direct, *planned);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlanEquivalenceProperty,
                         ::testing::Range(1, 16));

}  // namespace
}  // namespace qf
