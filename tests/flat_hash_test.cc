// Differential and adversarial coverage for the flat-hash kernel family
// (common/flat_hash.h) and the relational operators rewired on top of it.
// Every kernel is pitted against the old std::unordered_* implementation
// it replaced: identical rows, identical order, on random relations and
// on the edge cases open addressing gets wrong first (empty input, one
// row, duplicate-heavy keys, and all-colliding hashes).
#include "common/flat_hash.h"

#include <algorithm>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "relational/ops.h"
#include "relational/relation.h"
#include "relational/tuple.h"

namespace qf {
namespace {

std::uint64_t IdentityHash(std::uint64_t v) { return v; }

TEST(FlatIdTable, AssignsDenseIdsInInsertionOrder) {
  FlatIdTable table;
  std::vector<std::uint64_t> keys = {17, 3, 99, 3, 17, 42};
  std::vector<std::uint64_t> stored;
  std::uint64_t probes = 0;
  auto eq_key = [&](std::uint64_t key) {
    return [&stored, key](std::uint32_t id) { return stored[id] == key; };
  };
  std::vector<std::uint32_t> ids;
  for (std::uint64_t key : keys) {
    auto [id, inserted] = table.Upsert(IdentityHash(key), eq_key(key), probes);
    if (inserted) stored.push_back(key);
    ids.push_back(id);
  }
  EXPECT_EQ(table.size(), 4u);
  EXPECT_EQ(stored, (std::vector<std::uint64_t>{17, 3, 99, 42}));
  EXPECT_EQ(ids, (std::vector<std::uint32_t>{0, 1, 2, 1, 0, 3}));
  EXPECT_GE(probes, keys.size());  // every upsert inspects >= 1 slot

  std::uint64_t find_probes = 0;
  EXPECT_EQ(table.Find(IdentityHash(99), eq_key(99), find_probes), 2u);
  EXPECT_EQ(table.Find(IdentityHash(7), eq_key(7), find_probes),
            FlatIdTable::kNone);
}

TEST(FlatIdTable, FindOnEmptyTableIsNone) {
  FlatIdTable table;
  std::uint64_t probes = 0;
  EXPECT_EQ(table.Find(123, [](std::uint32_t) { return true; }, probes),
            FlatIdTable::kNone);
  EXPECT_EQ(probes, 0u);
  EXPECT_EQ(table.size(), 0u);
}

TEST(FlatIdTable, GrowthPreservesIdsAndStoredHashes) {
  FlatIdTable table;
  std::vector<std::uint64_t> stored;
  std::uint64_t probes = 0;
  constexpr std::uint64_t kN = 100000;
  for (std::uint64_t v = 0; v < kN; ++v) {
    std::uint64_t h = v * 0x9e3779b97f4a7c15ull;  // scramble, no collisions
    auto [id, inserted] = table.Upsert(
        h, [&](std::uint32_t i) { return stored[i] == v; }, probes);
    ASSERT_TRUE(inserted);
    ASSERT_EQ(id, v);
    stored.push_back(v);
  }
  EXPECT_EQ(table.size(), kN);
  // Power-of-two capacity below 3/4 load.
  EXPECT_EQ(table.capacity() & (table.capacity() - 1), 0u);
  EXPECT_GE(table.capacity() * 3, table.size() * 4);
  // Every element survives the doublings with its id and stored hash.
  for (std::uint64_t v = 0; v < kN; ++v) {
    std::uint64_t h = v * 0x9e3779b97f4a7c15ull;
    ASSERT_EQ(table.Find(
                  h, [&](std::uint32_t i) { return stored[i] == v; }, probes),
              v);
    ASSERT_EQ(table.hash_at(static_cast<std::uint32_t>(v)), h);
  }
}

TEST(FlatIdTable, AllCollidingHashesStayCorrectAcrossGrowth) {
  // Adversarial input: every element hashes to the same value, so probing
  // degenerates to a linear scan and growth must redistribute a single
  // giant run without losing anyone.
  FlatIdTable table;
  std::vector<int> stored;
  std::uint64_t probes = 0;
  constexpr int kN = 3000;
  for (int v = 0; v < kN; ++v) {
    auto [id, inserted] = table.Upsert(
        42, [&](std::uint32_t i) { return stored[i] == v; }, probes);
    ASSERT_TRUE(inserted);
    ASSERT_EQ(id, static_cast<std::uint32_t>(v));
    stored.push_back(v);
  }
  // Re-upserting every element must find it, never insert.
  for (int v = 0; v < kN; ++v) {
    auto [id, inserted] = table.Upsert(
        42, [&](std::uint32_t i) { return stored[i] == v; }, probes);
    ASSERT_FALSE(inserted);
    ASSERT_EQ(id, static_cast<std::uint32_t>(v));
  }
  std::uint64_t miss_probes = 0;
  EXPECT_EQ(table.Find(42, [&](std::uint32_t i) { return stored[i] == -1; },
                       miss_probes),
            FlatIdTable::kNone);
  // The miss walked the entire collision run before the empty slot.
  EXPECT_GE(miss_probes, static_cast<std::uint64_t>(kN));
}

TEST(FlatTupleSet, MatchesUnorderedSetOnRandomInput) {
  Rng rng(7);
  std::vector<std::uint64_t> values;
  for (int i = 0; i < 20000; ++i) {
    values.push_back(rng.NextBelow(500));  // duplicate-heavy
  }
  FlatTupleSet set;
  std::uint64_t probes = 0;
  std::unordered_set<std::uint64_t> oracle;
  std::vector<std::uint32_t> expected_refs;
  for (std::size_t r = 0; r < values.size(); ++r) {
    std::uint64_t v = values[r];
    bool fresh = set.Insert(
        static_cast<std::uint32_t>(r), IdentityHash(v),
        [&](std::uint32_t prev) { return values[prev] == v; }, probes);
    ASSERT_EQ(fresh, oracle.insert(v).second);
    if (fresh) expected_refs.push_back(static_cast<std::uint32_t>(r));
  }
  EXPECT_EQ(set.size(), oracle.size());
  // Refs come back in first-occurrence order.
  EXPECT_EQ(set.refs(), expected_refs);
  for (std::uint64_t v = 0; v < 600; ++v) {
    ASSERT_EQ(set.Contains(IdentityHash(v),
                           [&](std::uint32_t prev) { return values[prev] == v; },
                           probes),
              oracle.contains(v));
  }
}

TEST(FlatGroupTable, MatchesUnorderedMapGroupCounts) {
  Rng rng(11);
  std::vector<std::uint64_t> values;
  for (int i = 0; i < 10000; ++i) values.push_back(rng.NextBelow(97));
  FlatGroupTable groups;
  std::vector<std::size_t> counts;
  std::uint64_t probes = 0;
  std::unordered_map<std::uint64_t, std::size_t> oracle;
  for (std::size_t r = 0; r < values.size(); ++r) {
    std::uint64_t v = values[r];
    auto [g, inserted] = groups.Upsert(
        static_cast<std::uint32_t>(r), IdentityHash(v),
        [&](std::uint32_t prev) { return values[prev] == v; }, probes);
    if (inserted) counts.push_back(0);
    ++counts[g];
    ++oracle[v];
  }
  ASSERT_EQ(groups.size(), oracle.size());
  for (std::size_t g = 0; g < groups.size(); ++g) {
    std::uint64_t v = values[groups.ref_at(static_cast<std::uint32_t>(g))];
    ASSERT_EQ(counts[g], oracle.at(v));
    ASSERT_EQ(groups.hash_at(static_cast<std::uint32_t>(g)), IdentityHash(v));
  }
}

TEST(FlatKeyIndex, SpansMatchUnorderedMapChainsInBuildOrder) {
  Rng rng(13);
  std::vector<std::uint64_t> keys;
  for (int i = 0; i < 8000; ++i) keys.push_back(rng.NextBelow(300));
  FlatKeyIndex index;
  index.Reserve(keys.size());
  std::uint64_t probes = 0;
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> oracle;
  for (std::size_t r = 0; r < keys.size(); ++r) {
    std::uint64_t k = keys[r];
    index.AddRow(static_cast<std::uint32_t>(r), IdentityHash(k),
                 [&](std::uint32_t prev) { return keys[prev] == k; }, probes);
    oracle[k].push_back(static_cast<std::uint32_t>(r));
  }
  index.Finalize();
  ASSERT_EQ(index.group_count(), oracle.size());
  ASSERT_EQ(index.row_count(), keys.size());
  for (std::uint64_t k = 0; k < 350; ++k) {
    FlatKeyIndex::Span span = index.Probe(
        IdentityHash(k), [&](std::uint32_t prev) { return keys[prev] == k; },
        probes);
    auto it = oracle.find(k);
    if (it == oracle.end()) {
      ASSERT_TRUE(span.empty());
      continue;
    }
    // Same rows, in build-insertion order — the join determinism contract.
    ASSERT_EQ(std::vector<std::uint32_t>(span.begin, span.end), it->second);
  }
}

TEST(FlatKeyIndex, EmptyAndSingleRowEdges) {
  {
    FlatKeyIndex empty;
    empty.Finalize();
    EXPECT_EQ(empty.group_count(), 0u);
    EXPECT_EQ(empty.row_count(), 0u);
  }
  FlatKeyIndex one;
  std::uint64_t probes = 0;
  one.AddRow(0, 99, [](std::uint32_t) { return true; }, probes);
  one.Finalize();
  EXPECT_EQ(one.group_count(), 1u);
  FlatKeyIndex::Span hit =
      one.Probe(99, [](std::uint32_t) { return true; }, probes);
  ASSERT_EQ(hit.size(), 1u);
  EXPECT_EQ(*hit.begin, 0u);
  EXPECT_TRUE(
      one.Probe(100, [](std::uint32_t) { return true; }, probes).empty());
}

TEST(FlatKeyIndex, AllCollidingHashesKeepGroupsApart) {
  // Same stored hash everywhere; groups must still separate through eq.
  FlatKeyIndex index;
  std::vector<int> keys;
  std::uint64_t probes = 0;
  for (int r = 0; r < 900; ++r) {
    int k = r % 3;
    keys.push_back(k);
    index.AddRow(static_cast<std::uint32_t>(r), 7,
                 [&](std::uint32_t prev) { return keys[prev] == k; }, probes);
  }
  index.Finalize();
  ASSERT_EQ(index.group_count(), 3u);
  for (int k = 0; k < 3; ++k) {
    FlatKeyIndex::Span span = index.Probe(
        7, [&](std::uint32_t prev) { return keys[prev] == k; }, probes);
    ASSERT_EQ(span.size(), 300u);
    for (const std::uint32_t* p = span.begin; p != span.end; ++p) {
      ASSERT_EQ(static_cast<int>(*p % 3), k);
    }
    // Build order within the group.
    ASSERT_TRUE(std::is_sorted(span.begin, span.end));
  }
}

// ---------------------------------------------------------------------------
// Old-kernel oracles: the exact std::unordered_* implementations the
// operators used before the flat-hash rewiring, kept here as differential
// references. Output row ORDER matters as much as content.

using RowIndex = std::unordered_map<Tuple, std::vector<std::size_t>, TupleHash>;

Relation RandomRelation(Rng& rng, const std::vector<std::string>& cols,
                        std::size_t rows, std::uint32_t domain) {
  Relation rel{Schema(cols)};
  for (std::size_t r = 0; r < rows; ++r) {
    Tuple t;
    for (std::size_t c = 0; c < cols.size(); ++c) {
      if (rng.NextBelow(4) == 0) {
        std::string name("s");
        name += std::to_string(rng.NextBelow(domain));
        t.push_back(Value(name));
      } else {
        t.push_back(Value(static_cast<std::int64_t>(rng.NextBelow(domain))));
      }
    }
    rel.Add(std::move(t));
  }
  return rel;
}

Relation OldNaturalJoin(const Relation& a, const Relation& b) {
  // Recompute the join layout by shared column names, as ops.cc does.
  std::vector<std::size_t> a_key, b_key, b_rest;
  for (std::size_t j = 0; j < b.arity(); ++j) {
    std::optional<std::size_t> i = a.schema().IndexOf(b.schema().column(j));
    if (i.has_value()) {
      a_key.push_back(*i);
      b_key.push_back(j);
    } else {
      b_rest.push_back(j);
    }
  }
  std::vector<std::string> columns = a.schema().columns();
  for (std::size_t j : b_rest) columns.push_back(b.schema().column(j));
  Relation out{Schema(std::move(columns))};
  if (a.empty() || b.empty()) return out;
  RowIndex index;
  for (std::size_t r = 0; r < b.size(); ++r) {
    index[ProjectTuple(b.rows()[r], b_key)].push_back(r);
  }
  for (const Tuple& ta : a.rows()) {
    auto it = index.find(ProjectTuple(ta, a_key));
    if (it == index.end()) continue;
    for (std::size_t rb : it->second) {
      Tuple combined = ta;
      for (std::size_t j : b_rest) combined.push_back(b.rows()[rb][j]);
      out.Add(std::move(combined));
    }
  }
  return out;
}

Relation OldProject(const Relation& rel,
                    const std::vector<std::string>& columns) {
  std::vector<std::size_t> indices;
  for (const std::string& c : columns) {
    indices.push_back(rel.schema().IndexOfOrDie(c));
  }
  Relation out{Schema(columns)};
  std::unordered_set<Tuple, TupleHash> seen;
  for (const Tuple& t : rel.rows()) {
    Tuple projected = ProjectTuple(t, indices);
    if (seen.insert(projected).second) out.Add(std::move(projected));
  }
  return out;
}

Relation OldUnion(const Relation& a, const Relation& b) {
  Relation out(a.schema());
  std::unordered_set<Tuple, TupleHash> seen;
  for (const Tuple& t : a.rows()) {
    if (seen.insert(t).second) out.Add(t);
  }
  for (const Tuple& t : b.rows()) {
    if (seen.insert(t).second) out.Add(t);
  }
  return out;
}

Relation OldDifference(const Relation& a, const Relation& b) {
  std::unordered_set<Tuple, TupleHash> exclude(b.rows().begin(),
                                               b.rows().end());
  Relation out(a.schema());
  for (const Tuple& t : a.rows()) {
    if (!exclude.contains(t)) out.Add(t);
  }
  return out;
}

Relation OldDedup(const Relation& rel) {
  Relation out = rel;
  std::unordered_set<Tuple, TupleHash> seen;
  std::vector<Tuple> unique;
  for (const Tuple& t : out.rows()) {
    if (seen.insert(t).second) unique.push_back(t);
  }
  out.mutable_rows() = std::move(unique);
  return out;
}

std::pair<Relation, Relation> OldSemiAnti(const Relation& a,
                                          const Relation& b) {
  std::vector<std::size_t> a_key, b_key;
  for (std::size_t j = 0; j < b.arity(); ++j) {
    std::optional<std::size_t> i = a.schema().IndexOf(b.schema().column(j));
    if (i.has_value()) {
      a_key.push_back(*i);
      b_key.push_back(j);
    }
  }
  Relation semi(a.schema()), anti(a.schema());
  std::unordered_set<Tuple, TupleHash> keys;
  for (const Tuple& tb : b.rows()) keys.insert(ProjectTuple(tb, b_key));
  for (const Tuple& ta : a.rows()) {
    if (keys.contains(ProjectTuple(ta, a_key))) {
      semi.Add(ta);
    } else {
      anti.Add(ta);
    }
  }
  return {std::move(semi), std::move(anti)};
}

class FlatVsOldKernels : public ::testing::TestWithParam<int> {
 protected:
  Rng rng_{static_cast<std::uint64_t>(GetParam()) * 7919 + 1};
};

TEST_P(FlatVsOldKernels, NaturalJoinRowsAndOrderMatchOldImplementation) {
  // Vary shapes: empty, single-row, duplicate-heavy, and plain random.
  const std::vector<std::pair<std::size_t, std::size_t>> shapes = {
      {0, 40}, {40, 0}, {1, 1}, {200, 1}, {300, 300}, {500, 120}};
  for (auto [na, nb] : shapes) {
    Relation a = RandomRelation(rng_, {"X", "Y"}, na, 12);  // heavy dup keys
    Relation b = RandomRelation(rng_, {"Y", "Z"}, nb, 12);
    Relation oracle = OldNaturalJoin(a, b);
    Relation flat = NaturalJoin(a, b);
    ASSERT_EQ(flat.rows(), oracle.rows()) << "na=" << na << " nb=" << nb;
    // Cross-thread row identity: the shared-index parallel kernel agrees
    // with the old serial implementation at every thread count.
    for (unsigned threads : {0u, 1u, 2u, 3u, 8u}) {
      Relation par = ParallelNaturalJoin(a, b, threads);
      ASSERT_EQ(par.rows(), oracle.rows()) << "threads=" << threads;
    }
  }
}

TEST_P(FlatVsOldKernels, ParallelJoinAboveMorselThresholdMatchesOld) {
  // Big enough that ParallelNaturalJoin takes the morsel path (>= 2*4096
  // probe rows) instead of falling back to the serial kernel.
  Relation a = RandomRelation(rng_, {"K", "V"}, 10000, 64);
  Relation b = RandomRelation(rng_, {"K", "W"}, 3000, 64);
  Relation oracle = OldNaturalJoin(a, b);
  for (unsigned threads : {2u, 8u}) {
    Relation par = ParallelNaturalJoin(a, b, threads);
    ASSERT_EQ(par.rows(), oracle.rows());
  }
  // Re-run: the kernel is deterministic run-to-run, not just row-equal.
  Relation again = ParallelNaturalJoin(a, b, 8);
  ASSERT_EQ(again.rows(), oracle.rows());
}

TEST_P(FlatVsOldKernels, SemiAndAntiJoinMatchOldImplementation) {
  const std::vector<std::pair<std::size_t, std::size_t>> shapes = {
      {0, 30}, {30, 0}, {1, 1}, {400, 90}};
  for (auto [na, nb] : shapes) {
    Relation a = RandomRelation(rng_, {"X", "Y"}, na, 9);
    Relation b = RandomRelation(rng_, {"Y", "Z"}, nb, 9);
    auto [semi_oracle, anti_oracle] = OldSemiAnti(a, b);
    ASSERT_EQ(SemiJoin(a, b).rows(), semi_oracle.rows());
    ASSERT_EQ(AntiJoin(a, b).rows(), anti_oracle.rows());
  }
}

TEST_P(FlatVsOldKernels, ProjectUnionDifferenceDedupMatchOldImplementation) {
  for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{700}}) {
    Relation a = RandomRelation(rng_, {"X", "Y", "Z"}, n, 6);  // dup-heavy
    Relation b = RandomRelation(rng_, {"X", "Y", "Z"}, n / 2, 6);
    ASSERT_EQ(Project(a, {"Z", "X"}).rows(),
              OldProject(a, {"Z", "X"}).rows());
    // Identity projection exercises the whole-row fast path.
    ASSERT_EQ(Project(a, {"X", "Y", "Z"}).rows(),
              OldProject(a, {"X", "Y", "Z"}).rows());
    ASSERT_EQ(Union(a, b).rows(), OldUnion(a, b).rows());
    ASSERT_EQ(Difference(a, b).rows(), OldDifference(a, b).rows());
    ASSERT_EQ(Distinct(a).rows(), OldDedup(a).rows());
  }
}

TEST_P(FlatVsOldKernels, GroupAggregateMatchesOldForEveryAggKind) {
  Relation rel = RandomRelation(rng_, {"G", "H", "V"}, 900, 7);
  // Numeric aggregate column required for SUM/MIN/MAX.
  for (Tuple& t : rel.mutable_rows()) {
    t[2] = Value(static_cast<std::int64_t>(rng_.NextBelow(1000)));
  }
  for (AggKind kind :
       {AggKind::kCount, AggKind::kSum, AggKind::kMin, AggKind::kMax}) {
    // Old-implementation oracle: accumulate through an unordered_map,
    // then sort rows (the contract both overloads share).
    std::unordered_map<Tuple, std::vector<std::int64_t>, TupleHash> groups;
    for (const Tuple& t : rel.rows()) {
      groups[ProjectTuple(t, {0, 1})].push_back(t[2].AsInt());
    }
    Relation expect{Schema({"G", "H", "out"})};
    for (auto& [key, vals] : groups) {
      Tuple row = key;
      switch (kind) {
        case AggKind::kCount:
          row.push_back(Value(static_cast<std::int64_t>(vals.size())));
          break;
        case AggKind::kSum: {
          double sum = 0;
          for (std::int64_t v : vals) sum += static_cast<double>(v);
          row.push_back(Value(sum));
          break;
        }
        case AggKind::kMin:
          row.push_back(Value(*std::min_element(vals.begin(), vals.end())));
          break;
        case AggKind::kMax:
          row.push_back(Value(*std::max_element(vals.begin(), vals.end())));
          break;
      }
      expect.Add(std::move(row));
    }
    expect.SortRows();
    Relation serial = GroupAggregate(rel, {"G", "H"}, kind, "V", "out");
    ASSERT_EQ(serial.rows(), expect.rows());
    for (unsigned threads : {1u, 2u, 8u}) {
      Relation par = GroupAggregate(rel, {"G", "H"}, kind, "V", "out",
                                    threads);
      ASSERT_EQ(par.rows(), expect.rows()) << "threads=" << threads;
    }
  }
}

TEST_P(FlatVsOldKernels, WholeRowGroupingUsesIdentityPathCorrectly) {
  // Group columns == the whole row, in order: the shared identity fast
  // path must not change results.
  Relation rel = RandomRelation(rng_, {"A", "B"}, 500, 5);
  std::unordered_map<Tuple, std::int64_t, TupleHash> counts;
  for (const Tuple& t : rel.rows()) ++counts[t];
  Relation expect{Schema({"A", "B", "n"})};
  for (auto& [key, n] : counts) {
    Tuple row = key;
    row.push_back(Value(n));
    expect.Add(std::move(row));
  }
  expect.SortRows();
  ASSERT_EQ(GroupAggregate(rel, {"A", "B"}, AggKind::kCount, "", "n").rows(),
            expect.rows());
  ASSERT_EQ(
      GroupAggregate(rel, {"A", "B"}, AggKind::kCount, "", "n", 4).rows(),
      expect.rows());
  // Dedup shares the identity path.
  ASSERT_EQ(Distinct(rel).rows(), OldDedup(rel).rows());
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlatVsOldKernels, ::testing::Range(0, 8));

}  // namespace
}  // namespace qf
