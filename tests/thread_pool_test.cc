// Unit and stress tests for the shared morsel-driven thread pool: range
// coverage, morsel-boundary determinism, inline fallbacks, nesting,
// exception and Status propagation, and pool reuse.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "common/thread_pool.h"

namespace qf {
namespace {

TEST(MorselCountTest, RoundsUp) {
  EXPECT_EQ(MorselCount(0, 16), 0u);
  EXPECT_EQ(MorselCount(1, 16), 1u);
  EXPECT_EQ(MorselCount(16, 16), 1u);
  EXPECT_EQ(MorselCount(17, 16), 2u);
  EXPECT_EQ(MorselCount(100, 7), 15u);
}

TEST(ThreadPoolTest, CoversRangeExactlyOnce) {
  constexpr std::size_t kN = 10'000;
  std::vector<std::atomic<int>> touched(kN);
  ParallelFor(8, kN, 97, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      touched[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(touched[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, MorselBoundariesIndependentOfThreadCount) {
  constexpr std::size_t kN = 1000;
  constexpr std::size_t kMorsel = 64;
  auto boundaries = [&](unsigned threads) {
    std::vector<std::pair<std::size_t, std::size_t>> spans(
        MorselCount(kN, kMorsel));
    ParallelFor(threads, kN, kMorsel,
                [&](std::size_t begin, std::size_t end) {
                  spans[begin / kMorsel] = {begin, end};
                });
    return spans;
  };
  auto serial = boundaries(1);
  EXPECT_EQ(serial, boundaries(2));
  EXPECT_EQ(serial, boundaries(8));
  // And the spans tile [0, kN) in order.
  std::size_t expect_begin = 0;
  for (const auto& [begin, end] : serial) {
    EXPECT_EQ(begin, expect_begin);
    EXPECT_GT(end, begin);
    expect_begin = end;
  }
  EXPECT_EQ(expect_begin, kN);
}

TEST(ThreadPoolTest, ZeroItemsNeverCallsFn) {
  bool called = false;
  ParallelFor(8, 0, 16, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
  Status s = ParallelForStatus(8, 0, 16, [&](std::size_t, std::size_t) {
    called = true;
    return Status::Ok();
  });
  EXPECT_TRUE(s.ok());
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, SingleMorselRunsInlineOnCaller) {
  // n <= morsel: one call with the full range, on the calling thread.
  std::vector<std::pair<std::size_t, std::size_t>> calls;
  bool in_worker = true;
  ParallelFor(8, 10, 16, [&](std::size_t begin, std::size_t end) {
    calls.emplace_back(begin, end);
    in_worker = ThreadPool::Global().InWorker();
  });
  ASSERT_EQ(calls.size(), 1u);
  std::pair<std::size_t, std::size_t> full_range{0, 10};
  EXPECT_EQ(calls[0], full_range);
  EXPECT_FALSE(in_worker);
}

TEST(ThreadPoolTest, NestedParallelForRunsInlineWithoutDeadlock) {
  constexpr std::size_t kOuter = 8;
  constexpr std::size_t kInner = 1000;
  std::atomic<std::size_t> total{0};
  ParallelFor(8, kOuter, 1, [&](std::size_t, std::size_t) {
    ParallelFor(8, kInner, 10, [&](std::size_t begin, std::size_t end) {
      total.fetch_add(end - begin, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(total.load(), kOuter * kInner);
}

TEST(ThreadPoolTest, ExceptionPropagatesLowestMorselFirst) {
  // Every morsel throws its index; the lowest one must win (morsel 0 is
  // always handed out, and RecordError keeps the minimum).
  try {
    ParallelFor(8, 64 * 16, 16, [&](std::size_t begin, std::size_t) {
      throw std::runtime_error("m" + std::to_string(begin / 16));
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "m0");
  }
}

TEST(ThreadPoolTest, ExceptionFromMiddleMorselPropagates) {
  EXPECT_THROW(
      ParallelFor(8, 1000, 16,
                  [&](std::size_t begin, std::size_t) {
                    if (begin == 3 * 16) throw std::logic_error("boom");
                  }),
      std::logic_error);
}

TEST(ThreadPoolTest, StatusFailureIsDeterministic) {
  for (unsigned threads : {1u, 2u, 8u}) {
    Status s = ParallelForStatus(
        threads, 64 * 16, 16, [&](std::size_t begin, std::size_t) -> Status {
          return InvalidArgumentError("m" + std::to_string(begin / 16));
        });
    ASSERT_FALSE(s.ok());
    EXPECT_EQ(s.message(), "m0") << "threads=" << threads;
  }
}

TEST(ThreadPoolTest, StatusSingleFailureSurvivesConcurrency) {
  for (unsigned threads : {1u, 2u, 8u}) {
    Status s = ParallelForStatus(
        threads, 1000, 16, [&](std::size_t begin, std::size_t) -> Status {
          if (begin == 5 * 16) return NotFoundError("needle");
          return Status::Ok();
        });
    ASSERT_FALSE(s.ok());
    EXPECT_EQ(s.message(), "needle") << "threads=" << threads;
  }
}

TEST(ThreadPoolTest, StatusOkWhenAllMorselsSucceed) {
  std::atomic<std::size_t> total{0};
  Status s = ParallelForStatus(
      8, 1000, 7, [&](std::size_t begin, std::size_t end) -> Status {
        total.fetch_add(end - begin, std::memory_order_relaxed);
        return Status::Ok();
      });
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(total.load(), 1000u);
}

TEST(ThreadPoolTest, PoolReuseAcrossManyLoops) {
  // The global pool must stay healthy across many submissions (stress for
  // the job registration/retirement protocol).
  for (int iter = 0; iter < 200; ++iter) {
    std::atomic<std::size_t> total{0};
    ParallelFor(4, 257, 16, [&](std::size_t begin, std::size_t end) {
      total.fetch_add(end - begin, std::memory_order_relaxed);
    });
    ASSERT_EQ(total.load(), 257u) << "iteration " << iter;
  }
}

TEST(ThreadPoolTest, PrivatePoolForcesConcurrencyBeyondHardware) {
  // A private 8-worker pool exercises real concurrency even on a 1-core
  // host. Hammer it with interleaved loops and verify exact coverage.
  ThreadPool pool(8);
  EXPECT_EQ(pool.worker_count(), 8u);
  for (int iter = 0; iter < 50; ++iter) {
    std::vector<std::atomic<int>> touched(4096);
    pool.ParallelFor(touched.size(), 64, 8,
                     [&](std::size_t begin, std::size_t end) {
                       for (std::size_t i = begin; i < end; ++i) {
                         touched[i].fetch_add(1, std::memory_order_relaxed);
                       }
                     });
    for (std::size_t i = 0; i < touched.size(); ++i) {
      ASSERT_EQ(touched[i].load(), 1) << "iter " << iter << " index " << i;
    }
  }
}

TEST(ThreadPoolTest, ZeroWorkerPoolRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.worker_count(), 0u);
  std::size_t total = 0;  // no atomics needed: everything runs inline
  pool.ParallelFor(100, 8, 8, [&](std::size_t begin, std::size_t end) {
    total += end - begin;
  });
  EXPECT_EQ(total, 100u);
}

TEST(ThreadPoolTest, WorkerSeesInWorkerTrue) {
  ThreadPool pool(4);
  std::atomic<int> worker_calls{0};
  std::atomic<int> caller_calls{0};
  pool.ParallelFor(64, 1, 4, [&](std::size_t, std::size_t) {
    if (pool.InWorker()) {
      worker_calls.fetch_add(1, std::memory_order_relaxed);
    } else {
      caller_calls.fetch_add(1, std::memory_order_relaxed);
    }
  });
  EXPECT_EQ(worker_calls.load() + caller_calls.load(), 64);
  // The calling thread is never a worker of the private pool.
  EXPECT_FALSE(pool.InWorker());
}

}  // namespace
}  // namespace qf
