// Unit tests for containment mappings (§3.1): positives, negatives, and the
// paper's motivating cases (subqueries contain the original query).
#include <gtest/gtest.h>

#include "datalog/containment.h"
#include "datalog/parser.h"

namespace qf {
namespace {

ConjunctiveQuery Parse(const char* text) {
  auto cq = ParseRule(text);
  EXPECT_TRUE(cq.ok()) << cq.status().ToString();
  return *cq;
}

TEST(ContainmentTest, QueryContainsItself) {
  ConjunctiveQuery q = Parse("answer(B) :- baskets(B,$1) AND baskets(B,$2)");
  EXPECT_TRUE(Contains(q, q));
}

TEST(ContainmentTest, SubqueryContainsOriginal) {
  // Example 3.1: answer(B) :- baskets(B,$1) contains the pair query.
  ConjunctiveQuery full =
      Parse("answer(B) :- baskets(B,$1) AND baskets(B,$2)");
  ConjunctiveQuery sub = Parse("answer(B) :- baskets(B,$1)");
  EXPECT_TRUE(Contains(sub, full));   // full ⊆ sub
  EXPECT_FALSE(Contains(full, sub));  // sub ⊄ full: no image for $2's subgoal
}

TEST(ContainmentTest, VariableSplittingDetected) {
  // q1: p(X,Y) — contains q2: p(X,X) via h(Y)=X.
  ConjunctiveQuery general = Parse("answer(X) :- p(X,Y)");
  ConjunctiveQuery diagonal = Parse("answer(X) :- p(X,X)");
  EXPECT_TRUE(Contains(general, diagonal));
  EXPECT_FALSE(Contains(diagonal, general));
}

TEST(ContainmentTest, ParametersAreRigid) {
  // A parameter must map to the same parameter: a subquery about $1 says
  // nothing about $2 even though the queries are isomorphic.
  ConjunctiveQuery q1 = Parse("answer(B) :- baskets(B,$1)");
  ConjunctiveQuery q2 = Parse("answer(B) :- baskets(B,$2)");
  EXPECT_FALSE(Contains(q1, q2));
  EXPECT_FALSE(Contains(q2, q1));
}

TEST(ContainmentTest, ConstantsMustMatch) {
  ConjunctiveQuery beer = Parse("answer(B) :- baskets(B,'beer')");
  ConjunctiveQuery wine = Parse("answer(B) :- baskets(B,'wine')");
  ConjunctiveQuery var = Parse("answer(B) :- baskets(B,X)");
  EXPECT_FALSE(Contains(beer, wine));
  EXPECT_TRUE(Contains(var, beer));   // beer ⊆ var
  EXPECT_FALSE(Contains(beer, var));  // var ⊄ beer
}

TEST(ContainmentTest, HeadMustMapPositionally) {
  ConjunctiveQuery q1 = Parse("answer(X,Y) :- p(X,Y)");
  ConjunctiveQuery q2 = Parse("answer(Y,X) :- p(X,Y)");
  // q1 -> q2 would need h(X)=Y,h(Y)=X and p(h(X),h(Y))=p(Y,X), which is not
  // a subgoal of q2; so no containment certificate either way.
  EXPECT_FALSE(Contains(q1, q2));
  EXPECT_FALSE(Contains(q2, q1));
}

TEST(ContainmentTest, DifferentPredicatesNeverMap) {
  EXPECT_FALSE(
      Contains(Parse("answer(X) :- p(X)"), Parse("answer(X) :- q(X)")));
}

TEST(ContainmentTest, ClassicRedundantSubgoal) {
  // p(X,Y) AND p(X,Z) is equivalent to p(X,Y): containment both ways.
  ConjunctiveQuery two = Parse("answer(X) :- p(X,Y) AND p(X,Z)");
  ConjunctiveQuery one = Parse("answer(X) :- p(X,Y)");
  EXPECT_TRUE(Contains(one, two));
  EXPECT_TRUE(Contains(two, one));
}

TEST(ContainmentTest, PathQueryContainment) {
  // A shorter path query contains a longer one when heads allow folding.
  ConjunctiveQuery long_path =
      Parse("answer(X) :- arc(X,Y) AND arc(Y,Z) AND arc(Z,W)");
  ConjunctiveQuery short_path = Parse("answer(X) :- arc(X,Y)");
  EXPECT_TRUE(Contains(short_path, long_path));
  EXPECT_FALSE(Contains(long_path, short_path));
}

TEST(ContainmentTest, MappingWitnessIsReturned) {
  ConjunctiveQuery sub = Parse("answer(B) :- baskets(B,$1)");
  ConjunctiveQuery full =
      Parse("answer(B) :- baskets(B,$1) AND baskets(B,$2)");
  auto mapping = FindContainmentMapping(sub, full);
  ASSERT_TRUE(mapping.has_value());
  ASSERT_TRUE(mapping->contains("B"));
  EXPECT_EQ(mapping->at("B"), Term::Variable("B"));
}

TEST(ContainmentTest, ArityMismatchFails) {
  EXPECT_FALSE(
      Contains(Parse("answer(X,Y) :- p(X,Y)"), Parse("answer(X) :- p(X,X)")));
}

TEST(ContainmentTest, NegatedSubgoalsMatchExactly) {
  // Sound direction: identical shape including the negation maps.
  ConjunctiveQuery q =
      Parse("answer(P) :- diagnoses(P,D) AND NOT causes(D,$s) AND "
            "exhibits(P,$s)");
  EXPECT_TRUE(Contains(q, q));
  // A negated subgoal cannot map onto a positive one.
  ConjunctiveQuery pos =
      Parse("answer(P) :- diagnoses(P,D) AND causes(D,$s) AND "
            "exhibits(P,$s)");
  EXPECT_FALSE(Contains(q, pos));
}

TEST(ContainmentTest, ComparisonMatchesFlippedForm) {
  ConjunctiveQuery lt = Parse("answer(X) :- p(X,Y) AND X < Y");
  ConjunctiveQuery gt = Parse("answer(X) :- p(X,Y) AND Y > X");
  EXPECT_TRUE(Contains(lt, gt));
  EXPECT_TRUE(Contains(gt, lt));
}

TEST(ContainmentTest, SubsetContains) {
  ConjunctiveQuery full =
      Parse("answer(P) :- exhibits(P,$s) AND treatments(P,$m)");
  ConjunctiveQuery sub = Parse("answer(P) :- exhibits(P,$s)");
  EXPECT_TRUE(SubsetContains(sub, full));
  EXPECT_FALSE(SubsetContains(full, sub));
  // Different head kills subset containment.
  ConjunctiveQuery other_head = Parse("answer(Q) :- exhibits(Q,$s)");
  EXPECT_FALSE(SubsetContains(other_head, full));
}

}  // namespace
}  // namespace qf
