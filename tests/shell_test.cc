// Tests for the query-flocks shell: statement parsing, the full command
// set, error handling, and end-to-end scripts.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>

#include "common/vfs.h"
#include "shell/shell.h"

namespace qf {
namespace {

std::string MustRun(Shell& shell, std::string_view statement) {
  Result<std::string> out = shell.Execute(statement);
  EXPECT_TRUE(out.ok()) << out.status().ToString() << " for: " << statement;
  return out.ok() ? *out : std::string();
}

TEST(ShellTest, HelpAndUnknownCommand) {
  Shell shell;
  EXPECT_NE(MustRun(shell, "HELP").find("FLOCK"), std::string::npos);
  Result<std::string> bad = shell.Execute("FROBNICATE x");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("unknown command"),
            std::string::npos);
}

TEST(ShellTest, EmptyStatementIsNoop) {
  Shell shell;
  EXPECT_EQ(MustRun(shell, "   "), "");
}

TEST(ShellTest, GenShowAndSave) {
  Shell shell;
  std::string out = MustRun(
      shell, "GEN BASKETS baskets n_baskets=50 n_items=10 seed=3");
  EXPECT_NE(out.find("generated baskets"), std::string::npos);
  EXPECT_TRUE(shell.database().Has("baskets"));

  std::string relations = MustRun(shell, "SHOW RELATIONS");
  EXPECT_NE(relations.find("baskets(BID, Item)"), std::string::npos);

  std::string preview = MustRun(shell, "SHOW baskets");
  EXPECT_NE(preview.find("rows]"), std::string::npos);

  std::string path =
      (std::filesystem::temp_directory_path() / "qf_shell_save.tsv")
          .string();
  MustRun(shell, "SAVE baskets TO " + path);

  Shell other;
  std::string loaded = MustRun(other, "LOAD baskets FROM " + path);
  EXPECT_NE(loaded.find("loaded baskets"), std::string::npos);
  EXPECT_EQ(other.database().Get("baskets").size(),
            shell.database().Get("baskets").size());
  std::remove(path.c_str());
}

TEST(ShellTest, GenRejectsBadKey) {
  Shell shell;
  EXPECT_FALSE(shell.Execute("GEN BASKETS b wibble=3").ok());
  EXPECT_FALSE(shell.Execute("GEN WIDGETS b").ok());
}

TEST(ShellTest, FlockDeclareRunDirectAndPlan) {
  Shell shell;
  MustRun(shell,
          "GEN BASKETS baskets n_baskets=300 n_items=40 avg_size=6 "
          "theta=0.8 locality=0.5 topics=8 seed=5");
  std::string declared = MustRun(
      shell,
      "FLOCK pairs QUERY answer(B) :- baskets(B,$1) AND baskets(B,$2) AND "
      "$1 < $2 FILTER COUNT >= 8");
  EXPECT_NE(declared.find("flock pairs declared"), std::string::npos);
  EXPECT_TRUE(shell.HasFlock("pairs"));

  std::string direct = MustRun(shell, "RUN pairs DIRECT LIMIT 3");
  std::string plan = MustRun(shell, "RUN pairs PLAN LIMIT 3");
  std::string dynamic = MustRun(shell, "RUN pairs DYNAMIC LIMIT 3");
  std::string reduced = MustRun(shell, "RUN pairs REDUCED LIMIT 3");
  // All strategies report the same assignment count.
  auto count_of = [](const std::string& s) {
    return s.substr(0, s.find(" assignments"));
  };
  EXPECT_EQ(count_of(direct), count_of(plan));
  EXPECT_EQ(count_of(direct), count_of(dynamic));
  EXPECT_EQ(count_of(direct), count_of(reduced));
}

TEST(ShellTest, ExplainShowsPlanAndEstimates) {
  Shell shell;
  MustRun(shell, "GEN BASKETS baskets n_baskets=200 n_items=30 seed=7");
  MustRun(shell,
          "FLOCK pairs QUERY answer(B) :- baskets(B,$1) AND baskets(B,$2) "
          "AND $1 < $2 FILTER COUNT >= 10");
  std::string out = MustRun(shell, "EXPLAIN pairs");
  EXPECT_NE(out.find("result($1,$2) := FILTER"), std::string::npos);
  EXPECT_NE(out.find("estimated cost"), std::string::npos);
}

TEST(ShellTest, SqlEmitsQuery) {
  Shell shell;
  MustRun(shell, "GEN BASKETS baskets n_baskets=50 n_items=10 seed=9");
  MustRun(shell,
          "FLOCK pairs QUERY answer(B) :- baskets(B,$1) AND baskets(B,$2) "
          "AND $1 < $2 FILTER COUNT >= 5");
  std::string sql = MustRun(shell, "SQL pairs");
  EXPECT_NE(sql.find("GROUP BY"), std::string::npos);
  EXPECT_NE(sql.find("HAVING COUNT(*) >= 5"), std::string::npos);
}

TEST(ShellTest, FilterSpecVariants) {
  Shell shell;
  MustRun(shell, "GEN BASKETS baskets n_baskets=50 n_items=10 seed=11");
  // SUM over a named head variable needs the weight relation; declare the
  // flock only (RUN would need importance data).
  std::string declared = MustRun(
      shell,
      "FLOCK heavy QUERY answer(B,W) :- baskets(B,$1) AND importance(B,W) "
      "FILTER SUM(W) >= 12.5");
  EXPECT_NE(declared.find("SUM(answer.W) >= 12.5"), std::string::npos);

  EXPECT_FALSE(shell
                   .Execute("FLOCK bad QUERY answer(B) :- baskets(B,$1) "
                            "FILTER SUM >= 5")
                   .ok());
  EXPECT_FALSE(shell
                   .Execute("FLOCK bad QUERY answer(B) :- baskets(B,$1) "
                            "FILTER COUNT >= nope")
                   .ok());
  EXPECT_FALSE(shell
                   .Execute("FLOCK bad QUERY answer(B) :- baskets(B,$1) "
                            "FILTER MAX(Z) >= 5")
                   .ok());
}

TEST(ShellTest, DefineAndRunWithView) {
  Shell shell;
  MustRun(shell, "GEN BASKETS baskets n_baskets=200 n_items=25 seed=13");
  MustRun(shell, "DEFINE bought(B,I) :- baskets(B,I)");
  std::string relations = MustRun(shell, "SHOW RELATIONS");
  EXPECT_NE(relations.find("view]"), std::string::npos);

  MustRun(shell,
          "FLOCK pairs QUERY answer(B) :- bought(B,$1) AND bought(B,$2) "
          "AND $1 < $2 FILTER COUNT >= 5");
  std::string via_view = MustRun(shell, "RUN pairs DIRECT LIMIT 2");

  MustRun(shell,
          "FLOCK base_pairs QUERY answer(B) :- baskets(B,$1) AND "
          "baskets(B,$2) AND $1 < $2 FILTER COUNT >= 5");
  std::string via_base = MustRun(shell, "RUN base_pairs DIRECT LIMIT 2");
  // Same counts through the view and the base relation (ignore timings).
  auto count_of = [](const std::string& s) {
    std::size_t colon = s.find(':');
    std::size_t word = s.find(" assignments");
    return s.substr(colon, word - colon);
  };
  EXPECT_EQ(count_of(via_view), count_of(via_base));
}

TEST(ShellTest, DefineRejectsRecursion) {
  Shell shell;
  EXPECT_FALSE(shell.Execute("DEFINE tc(X,Y) :- tc(X,Z) AND arc(Z,Y)").ok());
}

TEST(ShellTest, RunErrors) {
  Shell shell;
  EXPECT_EQ(shell.Execute("RUN nothing").status().code(),
            StatusCode::kNotFound);
  MustRun(shell, "GEN BASKETS baskets n_baskets=20 n_items=5 seed=1");
  MustRun(shell,
          "FLOCK p QUERY answer(B) :- baskets(B,$1) FILTER COUNT >= 2");
  EXPECT_FALSE(shell.Execute("RUN p SIDEWAYS").ok());
  EXPECT_FALSE(shell.Execute("RUN p LIMIT x").ok());
}

TEST(ShellTest, GenMedicalWebGraph) {
  Shell shell;
  std::string medical =
      MustRun(shell, "GEN MEDICAL med n_patients=60 theta=0.8 seed=3");
  EXPECT_NE(medical.find("generated diagnoses"), std::string::npos);
  EXPECT_TRUE(shell.database().Has("exhibits"));
  EXPECT_TRUE(shell.database().Has("causes"));

  std::string web = MustRun(
      shell, "GEN WEB corpus n_docs=40 n_words=30 n_anchors=50 seed=4");
  EXPECT_TRUE(shell.database().Has("inTitle"));
  EXPECT_TRUE(shell.database().Has("link"));

  std::string graph =
      MustRun(shell, "GEN GRAPH arc n_nodes=30 degree=3 seed=5");
  EXPECT_TRUE(shell.database().Has("arc"));

  EXPECT_FALSE(shell.Execute("GEN MEDICAL med wibble=1").ok());
}

TEST(ShellTest, SaveAndLoadDatabase) {
  Shell shell;
  MustRun(shell, "GEN BASKETS baskets n_baskets=40 n_items=8 seed=6");
  MustRun(shell, "GEN GRAPH arc n_nodes=20 degree=2 seed=7");
  std::string dir =
      (std::filesystem::temp_directory_path() / "qf_shell_db").string();
  std::string saved = MustRun(shell, "SAVEDB " + dir);
  EXPECT_NE(saved.find("saved 2 relations"), std::string::npos);

  Shell other;
  std::string loaded = MustRun(other, "LOADDB " + dir);
  EXPECT_NE(loaded.find("loaded arc"), std::string::npos);
  EXPECT_EQ(other.database().Get("baskets").size(),
            shell.database().Get("baskets").size());
  EXPECT_EQ(other.database().Get("arc").size(),
            shell.database().Get("arc").size());
  std::filesystem::remove_all(dir);

  EXPECT_FALSE(other.Execute("LOADDB /nonexistent/qf_nowhere").ok());
}

TEST(ShellTest, MaximalCommand) {
  Shell shell;
  MustRun(shell,
          "GEN BASKETS baskets n_baskets=200 n_items=20 avg_size=5 "
          "theta=0.7 locality=0.6 topics=4 seed=17");
  std::string out = MustRun(shell, "MAXIMAL baskets SUPPORT 8 MAXSIZE 4");
  EXPECT_NE(out.find("maximal frequent itemsets"), std::string::npos);
  EXPECT_NE(out.find("frequent per level:"), std::string::npos);

  EXPECT_FALSE(shell.Execute("MAXIMAL baskets").ok());          // no SUPPORT
  EXPECT_FALSE(shell.Execute("MAXIMAL nowhere SUPPORT 5").ok());
  EXPECT_FALSE(shell.Execute("MAXIMAL baskets SUPPORT x").ok());
}

TEST(ShellTest, ScriptExecutesStatementsInOrder) {
  Shell shell;
  Result<std::string> out = shell.ExecuteScript(R"(
      # build data, declare, run
      GEN BASKETS baskets n_baskets=100 n_items=12 seed=21;
      FLOCK pairs
        QUERY answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2
        FILTER COUNT >= 4;
      RUN pairs DIRECT LIMIT 2;
  )");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_NE(out->find("generated baskets"), std::string::npos);
  EXPECT_NE(out->find("assignments"), std::string::npos);
}

TEST(ShellTest, ScriptStopsAtFirstError) {
  Shell shell;
  Result<std::string> out = shell.ExecuteScript(
      "GEN BASKETS b n_baskets=10 n_items=3 seed=1; BOGUS; SHOW RELATIONS;");
  EXPECT_FALSE(out.ok());
  // The first statement still took effect.
  EXPECT_TRUE(shell.database().Has("b"));
}

TEST(ShellTest, ScriptHandlesQuotedSemicolons) {
  Shell shell;
  MustRun(shell, "GEN BASKETS baskets n_baskets=10 n_items=3 seed=2");
  Result<std::string> out = shell.ExecuteScript(
      "FLOCK q QUERY answer(B) :- baskets(B,$1) AND baskets(B,'a;b') "
      "FILTER COUNT >= 1;");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_TRUE(shell.HasFlock("q"));
}

// --- Resource governor statements ---

// A workload slow enough (tens of ms) that a 1 ms deadline always lands
// mid-flight, but small enough to keep the suite quick.
void LoadGovernorWorkload(Shell& shell) {
  MustRun(shell,
          "GEN BASKETS gb n_baskets=4000 n_items=300 avg_size=8 seed=5");
  MustRun(shell,
          "FLOCK gf QUERY answer(B) :- gb(B,$1) AND gb(B,$2) AND $1 < $2 "
          "FILTER COUNT >= 8");
}

TEST(ShellGovernorTest, SetTimeoutFailsFastAndSessionStaysUsable) {
  Shell shell;
  LoadGovernorWorkload(shell);
  MustRun(shell, "SET TIMEOUT 1");

  auto start = std::chrono::steady_clock::now();
  Result<std::string> out = shell.Execute("RUN gf");
  double ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - start)
                  .count();
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kDeadlineExceeded);
  // The acceptance bound is ~50 ms of overshoot past the 1 ms deadline;
  // leave headroom for loaded CI machines.
  EXPECT_LT(ms, 250.0);

  // The statement died, not the session.
  MustRun(shell, "SET TIMEOUT 0");
  std::string rerun = MustRun(shell, "RUN gf LIMIT 2");
  EXPECT_NE(rerun.find("assignments"), std::string::npos);
}

TEST(ShellGovernorTest, SetMemoryTripsTyped) {
  Shell shell;
  LoadGovernorWorkload(shell);
  MustRun(shell, "SET MEMORY 1");
  Result<std::string> out = shell.Execute("RUN gf");
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kResourceExhausted);
  MustRun(shell, "SET MEMORY 0");
  MustRun(shell, "RUN gf LIMIT 2");
}

TEST(ShellGovernorTest, GovernedRunMatchesUngovernedAtEveryThreadCount) {
  for (const char* threads : {"1", "4"}) {
    Shell shell;
    LoadGovernorWorkload(shell);
    std::string baseline =
        MustRun(shell, std::string("RUN gf THREADS ") + threads);
    MustRun(shell, "SET TIMEOUT 60000");
    MustRun(shell, "SET MEMORY 1024");
    std::string governed =
        MustRun(shell, std::string("RUN gf THREADS ") + threads);
    // Strip the timing prefix line; row previews must match exactly.
    EXPECT_EQ(baseline.substr(baseline.find('\n')),
              governed.substr(governed.find('\n')))
        << "threads=" << threads;
  }
}

TEST(ShellGovernorTest, ExplainAnalyzeReportsAccountedBytes) {
  Shell shell;
  MustRun(shell, "GEN BASKETS b n_baskets=500 n_items=60 seed=3");
  MustRun(shell, "FLOCK f QUERY answer(B) :- b(B,$1) FILTER COUNT >= 4");
  std::string out = MustRun(shell, "EXPLAIN ANALYZE f PLAN LIMIT 2");
  EXPECT_NE(out.find("governor: peak "), std::string::npos) << out;
  EXPECT_NE(out.find(" mem="), std::string::npos) << out;
}

TEST(ShellGovernorTest, CancelFlagAbortsStatement) {
  Shell shell;
  std::atomic<bool> flag{true};  // pre-set: cancel at the first poll
  shell.set_cancel_flag(&flag);
  LoadGovernorWorkload(shell);
  Result<std::string> out = shell.Execute("RUN gf");
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kCancelled);
  // REPL clears the flag between statements; the session recovers.
  flag.store(false);
  MustRun(shell, "RUN gf LIMIT 2");
}

TEST(ShellGovernorTest, SetRejectsBadArguments) {
  Shell shell;
  EXPECT_FALSE(shell.Execute("SET TIMEOUT").ok());
  EXPECT_FALSE(shell.Execute("SET TIMEOUT -5").ok());
  EXPECT_FALSE(shell.Execute("SET TIMEOUT abc").ok());
  EXPECT_FALSE(shell.Execute("SET MEMORY -1").ok());
  EXPECT_FALSE(shell.Execute("SET GIZMO 5").ok());
  EXPECT_NE(MustRun(shell, "SET TIMEOUT 0").find("off"), std::string::npos);
  EXPECT_NE(MustRun(shell, "SET MEMORY 64").find("64 MB"),
            std::string::npos);
  EXPECT_NE(MustRun(shell, "HELP").find("SET TIMEOUT"), std::string::npos);
}

TEST(ShellGovernorTest, MaximalIsGoverned) {
  Shell shell;
  MustRun(shell, "GEN BASKETS mb n_baskets=2000 n_items=100 avg_size=8 seed=9");
  MustRun(shell, "SET TIMEOUT 1");
  Result<std::string> out = shell.Execute("MAXIMAL mb SUPPORT 5");
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kDeadlineExceeded);
  MustRun(shell, "SET TIMEOUT 0");
}

// ---------------------------------------------------- durable catalog

TEST(ShellCatalogTest, OpenPersistsAcrossSessions) {
  MemVfs vfs;
  {
    Shell shell;
    shell.set_vfs(&vfs);
    std::string out = MustRun(shell, "OPEN cat");
    EXPECT_NE(out.find("opened cat"), std::string::npos);
    MustRun(shell, "GEN BASKETS b n_baskets=40 n_items=8 seed=5");
    MustRun(shell, "DEFINE big(B) :- b(B, I)");
    MustRun(shell,
            "FLOCK f QUERY answer(B) :- b(B,$1) FILTER COUNT >= 2");
    MustRun(shell, "THREADS 2");
    ASSERT_NE(shell.catalog(), nullptr);
  }
  Shell shell;
  shell.set_vfs(&vfs);
  std::string out = MustRun(shell, "OPEN cat");
  EXPECT_NE(out.find("opened cat: 1 relations, 1 rules, 1 flocks"),
            std::string::npos)
      << out;
  EXPECT_NE(MustRun(shell, "SHOW RELATIONS").find("b("), std::string::npos);
  EXPECT_NE(MustRun(shell, "SHOW FLOCKS").find("f"), std::string::npos);
  // The recovered flock and rule are live, not just listed.
  EXPECT_NE(MustRun(shell, "RUN f").find("rows"), std::string::npos);
}

TEST(ShellCatalogTest, CheckpointResetsWalAndSurvivesReopen) {
  MemVfs vfs;
  Shell shell;
  shell.set_vfs(&vfs);
  MustRun(shell, "OPEN cat");
  MustRun(shell, "GEN BASKETS b n_baskets=30 n_items=8 seed=5");
  std::string out = MustRun(shell, "CHECKPOINT");
  EXPECT_NE(out.find("bytes snapshotted"), std::string::npos);
  Result<std::string> wal = vfs.ReadFile("cat/catalog.wal");
  ASSERT_TRUE(wal.ok());
  EXPECT_TRUE(wal->empty());
  Shell second;
  second.set_vfs(&vfs);
  std::string reopened = MustRun(second, "OPEN cat");
  EXPECT_NE(reopened.find("opened cat: 1 relations"), std::string::npos);
}

TEST(ShellCatalogTest, TornWalTailIsReportedOnOpen) {
  MemVfs vfs;
  {
    Shell shell;
    shell.set_vfs(&vfs);
    MustRun(shell, "OPEN cat");
    MustRun(shell, "GEN BASKETS b n_baskets=30 n_items=8 seed=5");
    MustRun(shell, "DEFINE big(B) :- b(B, I)");
  }
  // Tear the last commit mid-frame, as a crash during the append would.
  Result<std::string> wal = vfs.ReadFile("cat/catalog.wal");
  ASSERT_TRUE(wal.ok());
  {
    Result<std::unique_ptr<WritableFile>> f = vfs.OpenTrunc("cat/catalog.wal");
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE((*f)->Append(wal->substr(0, wal->size() - 4)).ok());
    ASSERT_TRUE((*f)->Sync().ok());
  }
  Shell shell;
  shell.set_vfs(&vfs);
  std::string out = MustRun(shell, "OPEN cat");
  EXPECT_NE(out.find("opened cat: 1 relations, 0 rules"), std::string::npos)
      << out;
  EXPECT_NE(out.find("bytes truncated"), std::string::npos);
}

TEST(ShellCatalogTest, CheckpointWithoutOpenCatalogFails) {
  Shell shell;
  Result<std::string> out = shell.Execute("CHECKPOINT");
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ShellCatalogTest, OpenFailureLeavesSessionUntouched) {
  MemVfs vfs;
  // Plant a corrupt snapshot.
  ASSERT_TRUE(vfs.CreateDirs("cat").ok());
  ASSERT_TRUE(AtomicWriteFile(vfs, "cat/catalog.snap", "not a snapshot").ok());
  Shell shell;
  shell.set_vfs(&vfs);
  MustRun(shell, "GEN BASKETS keep n_baskets=10 n_items=5 seed=1");
  Result<std::string> out = shell.Execute("OPEN cat");
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kCorruptWal);
  // The in-memory session (and its relations) survives the failed OPEN.
  EXPECT_EQ(shell.catalog(), nullptr);
  EXPECT_NE(MustRun(shell, "SHOW RELATIONS").find("keep"),
            std::string::npos);
}

TEST(ShellCatalogTest, ExplainAnalyzeShowsStorageSubtree) {
  MemVfs vfs;
  Shell shell;
  shell.set_vfs(&vfs);
  MustRun(shell, "OPEN cat");
  MustRun(shell, "GEN BASKETS b n_baskets=40 n_items=8 seed=5");
  MustRun(shell,
          "FLOCK f QUERY answer(B) :- b(B,$1) FILTER COUNT >= 2");
  std::string out = MustRun(shell, "EXPLAIN ANALYZE f");
  EXPECT_NE(out.find("storage:"), std::string::npos) << out;
  EXPECT_NE(out.find("wal"), std::string::npos);
  EXPECT_NE(out.find("fsyncs="), std::string::npos);
}

}  // namespace
}  // namespace qf
