// Protocol fuzzing against a live in-process server: random garbage,
// truncated and oversized length prefixes, corrupted checksums, bad
// handshakes, and mutated valid traffic are thrown at qfserverd's wire
// layer (network/protocol.h, network/server.h). The contract under fuzz:
// every hostile input draws a typed ERROR frame and/or a disconnect —
// never a crash, a hang, or a poisoned server. The suite runs in the
// ASan and TSan CI jobs, where "no leak, no race" is machine-checked.
#include <sys/socket.h>

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <utility>

#include "common/rng.h"
#include "common/status.h"
#include "network/client.h"
#include "network/protocol.h"
#include "network/server.h"
#include "network/socket.h"

namespace qf {
namespace {

std::string RandomBytes(Rng& rng, std::size_t length) {
  std::string out;
  out.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    out += static_cast<char>(rng.NextBelow(256));
  }
  return out;
}

// Writes raw bytes, ignoring failures (the server may already have hung
// up on earlier garbage — that is a pass, not an error).
void WriteRaw(int fd, std::string_view bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                       MSG_NOSIGNAL);
    if (n <= 0) return;
    sent += static_cast<std::size_t>(n);
  }
}

// Drains the connection: any frames the server sends must decode (they
// do by construction of ReadFrame), and the stream must end — with a
// clean EOF or a reset, never a hang (the test would time out). Returns
// the number of ERROR frames seen.
int DrainToDisconnect(int fd) {
  int errors = 0;
  for (int i = 0; i < 64; ++i) {
    ReadEvent event = ReadFrame(fd);
    if (event.kind == ReadEvent::Kind::kFrame) {
      if (event.frame.type == FrameType::kError) {
        // Typed: the body must decode to a real status.
        Status status = DecodeErrorBody(event.frame.body);
        EXPECT_FALSE(status.ok());
        ++errors;
      }
      continue;
    }
    // kEof (clean) or kError (reset after we wrote into a closed
    // socket) both mean the server cut the conversation.
    return errors;
  }
  ADD_FAILURE() << "server kept talking instead of disconnecting";
  return errors;
}

class ProtocolFuzzTest : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override {
    ServerOptions options;
    options.port = 0;
    Result<std::unique_ptr<Server>> server = Server::Start(std::move(options));
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    server_ = std::move(*server);
  }

  // The server must still serve honest clients after the abuse.
  void TearDown() override {
    Result<Client> client = Client::Connect("127.0.0.1", server_->port());
    ASSERT_TRUE(client.ok()) << client.status().ToString();
    Result<std::string> out = client->Execute("HELP");
    EXPECT_TRUE(out.ok()) << out.status().ToString();
  }

  int Connect() {
    Result<int> fd = TcpConnect("127.0.0.1", server_->port());
    EXPECT_TRUE(fd.ok()) << fd.status().ToString();
    return fd.ok() ? *fd : -1;
  }

  std::unique_ptr<Server> server_;
};

TEST_P(ProtocolFuzzTest, RandomGarbage) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  for (int i = 0; i < 25; ++i) {
    int fd = Connect();
    ASSERT_GE(fd, 0);
    WriteRaw(fd, RandomBytes(rng, 1 + rng.NextBelow(300)));
    ::shutdown(fd, SHUT_WR);
    DrainToDisconnect(fd);
    CloseFd(fd);
  }
}

TEST_P(ProtocolFuzzTest, HostileLengthPrefixes) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 100);
  for (int i = 0; i < 25; ++i) {
    std::string wire;
    switch (rng.NextBelow(3)) {
      case 0:  // oversized: must be rejected before any allocation
        AppendU32(wire, kMaxPayloadBytes + 1 + rng.NextUint32() / 2);
        AppendU32(wire, rng.NextUint32());
        break;
      case 1:  // undersized: shorter than [type][request id]
        AppendU32(wire, rng.NextBelow(kMinPayloadBytes));
        AppendU32(wire, rng.NextUint32());
        wire += RandomBytes(rng, kMinPayloadBytes);
        break;
      default:  // truncated: a valid frame cut mid-payload
        wire = EncodeFrame({FrameType::kHello, 0, EncodeHelloBody()});
        wire.resize(1 + rng.NextBelow(
                            static_cast<std::uint32_t>(wire.size() - 1)));
        break;
    }
    int fd = Connect();
    ASSERT_GE(fd, 0);
    WriteRaw(fd, wire);
    ::shutdown(fd, SHUT_WR);
    DrainToDisconnect(fd);
    CloseFd(fd);
  }
}

TEST_P(ProtocolFuzzTest, CorruptChecksumsAndBadHandshakes) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 200);
  std::string hello = EncodeFrame({FrameType::kHello, 0, EncodeHelloBody()});
  for (int i = 0; i < 25; ++i) {
    std::string wire = hello;
    // Flip a byte anywhere: header corruption bends the length or CRC
    // fields, payload corruption fails the checksum, and a corrupted
    // HELLO body draws the handshake's typed rejection.
    std::size_t pos = rng.NextBelow(static_cast<std::uint32_t>(wire.size()));
    wire[pos] = static_cast<char>(wire[pos] ^ (1 + rng.NextBelow(255)));
    int fd = Connect();
    ASSERT_GE(fd, 0);
    WriteRaw(fd, wire);
    ::shutdown(fd, SHUT_WR);
    DrainToDisconnect(fd);
    CloseFd(fd);
  }
}

TEST_P(ProtocolFuzzTest, GarbageAfterValidHandshake) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 300);
  for (int i = 0; i < 25; ++i) {
    int fd = Connect();
    ASSERT_GE(fd, 0);
    ASSERT_TRUE(WriteFrame(fd, {FrameType::kHello, 0, EncodeHelloBody()}).ok());
    ReadEvent welcome = ReadFrame(fd);
    ASSERT_EQ(welcome.kind, ReadEvent::Kind::kFrame);
    ASSERT_EQ(welcome.frame.type, FrameType::kWelcome);
    // Sometimes a legitimate statement first, then garbage mid-session.
    if (rng.NextBernoulli(0.5)) {
      WriteRaw(fd, EncodeFrame({FrameType::kStmt, 1, "HELP"}));
    }
    if (rng.NextBernoulli(0.5)) {
      // An unknown-but-well-framed type.
      WriteRaw(fd, EncodeFrame(
                       {static_cast<FrameType>(10 + rng.NextBelow(200)), 2,
                        RandomBytes(rng, rng.NextBelow(40))}));
    } else {
      WriteRaw(fd, RandomBytes(rng, 1 + rng.NextBelow(200)));
    }
    ::shutdown(fd, SHUT_WR);
    DrainToDisconnect(fd);
    CloseFd(fd);
  }
}

TEST_P(ProtocolFuzzTest, MutatedValidTraffic) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 400);
  std::string script =
      EncodeFrame({FrameType::kHello, 0, EncodeHelloBody()}) +
      EncodeFrame({FrameType::kStmt, 1,
                   "GEN BASKETS b n_baskets=10 n_items=5 seed=1"}) +
      EncodeFrame({FrameType::kStmt, 2, "SHOW RELATIONS"}) +
      EncodeFrame({FrameType::kBye, 3, ""});
  for (int i = 0; i < 20; ++i) {
    std::string wire = script;
    int mutations = 1 + static_cast<int>(rng.NextBelow(4));
    for (int m = 0; m < mutations; ++m) {
      std::size_t pos =
          rng.NextBelow(static_cast<std::uint32_t>(wire.size()));
      if (rng.NextBernoulli(0.3)) {
        wire.resize(pos + 1);  // truncate mid-stream
      } else {
        wire[pos] = static_cast<char>(wire[pos] ^ (1 + rng.NextBelow(255)));
      }
    }
    int fd = Connect();
    ASSERT_GE(fd, 0);
    WriteRaw(fd, wire);
    ::shutdown(fd, SHUT_WR);
    DrainToDisconnect(fd);
    CloseFd(fd);
  }
}

// --- protocol v2 surface: RESUME bodies, session tokens, heartbeats ---

TEST_P(ProtocolFuzzTest, ResumeFrameFuzz) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 500);
  for (int i = 0; i < 25; ++i) {
    int fd = Connect();
    ASSERT_GE(fd, 0);
    ASSERT_TRUE(WriteFrame(fd, {FrameType::kHello, 0, EncodeHelloBody()}).ok());
    ReadEvent welcome = ReadFrame(fd);
    ASSERT_EQ(welcome.kind, ReadEvent::Kind::kFrame);
    ASSERT_EQ(welcome.frame.type, FrameType::kWelcome);
    // Hostile RESUME bodies: empty, truncated, oversized, random bytes,
    // well-formed with a random session id and token (a guessing
    // attacker), and well-formed with id 0 / token 0.
    std::string body;
    switch (rng.NextBelow(5)) {
      case 0:
        break;  // empty
      case 1:
        body = RandomBytes(rng, rng.NextBelow(16));  // short / misaligned
        break;
      case 2:
        body = RandomBytes(rng, 16 + rng.NextBelow(64));  // oversized
        break;
      case 3:
        AppendU64(body, rng.NextUint32());  // guessed session id
        AppendU64(body, (static_cast<std::uint64_t>(rng.NextUint32()) << 32) |
                            rng.NextUint32());  // guessed token
        break;
      default:
        AppendU64(body, 0);
        AppendU64(body, 0);
        break;
    }
    WriteRaw(fd, EncodeFrame({FrameType::kResume, 1, body}));
    // The server answers a typed ERROR (NOT_FOUND for a wrong identity,
    // INVALID_ARGUMENT for a malformed body) and keeps the conversation
    // alive on the fresh session — a statement must still work.
    WriteRaw(fd, EncodeFrame({FrameType::kStmt, 2, "HELP"}));
    ::shutdown(fd, SHUT_WR);
    int errors = DrainToDisconnect(fd);
    EXPECT_GE(errors, 1);
    CloseFd(fd);
  }
}

TEST_P(ProtocolFuzzTest, HeartbeatAndServerOnlyFramesFromClients) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 600);
  for (int i = 0; i < 25; ++i) {
    int fd = Connect();
    ASSERT_GE(fd, 0);
    ASSERT_TRUE(WriteFrame(fd, {FrameType::kHello, 0, EncodeHelloBody()}).ok());
    ReadEvent welcome = ReadFrame(fd);
    ASSERT_EQ(welcome.kind, ReadEvent::Kind::kFrame);
    ASSERT_EQ(welcome.frame.type, FrameType::kWelcome);
    // Client heartbeats (empty or with garbage bodies) must be ignored;
    // server-only frames (WELCOME, RESULT, PONG, RESUMED) from a client
    // draw a typed error and/or a disconnect — never a crash or hang.
    for (int burst = 0; burst < 4; ++burst) {
      if (rng.NextBernoulli(0.5)) {
        WriteRaw(fd, EncodeFrame({FrameType::kHeartbeat,
                                  rng.NextBelow(3),
                                  RandomBytes(rng, rng.NextBelow(12))}));
      } else {
        FrameType server_only[] = {FrameType::kWelcome, FrameType::kResult,
                                   FrameType::kPong, FrameType::kResumed};
        WriteRaw(fd, EncodeFrame({server_only[rng.NextBelow(4)], burst,
                                  RandomBytes(rng, rng.NextBelow(20))}));
      }
    }
    WriteRaw(fd, EncodeFrame({FrameType::kStmt, 9, "HELP"}));
    ::shutdown(fd, SHUT_WR);
    DrainToDisconnect(fd);
    CloseFd(fd);
  }
}

TEST_P(ProtocolFuzzTest, VersionMismatchHandshakes) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 700);
  // Unsupported versions draw FAILED_PRECONDITION and a disconnect.
  for (std::uint32_t version :
       {0u, kProtocolVersion + 1, kProtocolVersion + 7,
        rng.NextUint32() | (kProtocolVersion + 1)}) {
    int fd = Connect();
    ASSERT_GE(fd, 0);
    WriteRaw(fd, EncodeFrame({FrameType::kHello, 0, EncodeHelloBody(version)}));
    ReadEvent event = ReadFrame(fd);
    ASSERT_EQ(event.kind, ReadEvent::Kind::kFrame);
    ASSERT_EQ(event.frame.type, FrameType::kError);
    EXPECT_EQ(DecodeErrorBody(event.frame.body).code(),
              StatusCode::kFailedPrecondition);
    ::shutdown(fd, SHUT_WR);
    DrainToDisconnect(fd);
    CloseFd(fd);
  }
  // A v1 client sending v2 frames (RESUME, HEARTBEAT): the server may
  // ignore or reject them, but the conversation must not hang and the
  // v1 session must keep answering statements.
  for (int i = 0; i < 10; ++i) {
    int fd = Connect();
    ASSERT_GE(fd, 0);
    ASSERT_TRUE(
        WriteFrame(fd, {FrameType::kHello, 0, EncodeHelloBody(1)}).ok());
    ReadEvent welcome = ReadFrame(fd);
    ASSERT_EQ(welcome.kind, ReadEvent::Kind::kFrame);
    ASSERT_EQ(welcome.frame.type, FrameType::kWelcome);
    Result<Welcome> decoded = DecodeWelcomeBody(welcome.frame.body);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->version, 1u);
    EXPECT_EQ(decoded->resume_token, 0u);
    std::string body;
    AppendU64(body, decoded->session_id);
    AppendU64(body, rng.NextUint32());
    WriteRaw(fd, EncodeFrame({FrameType::kResume, 1, body}));
    WriteRaw(fd, EncodeFrame({FrameType::kHeartbeat, 0, ""}));
    WriteRaw(fd, EncodeFrame({FrameType::kStmt, 2, "HELP"}));
    ::shutdown(fd, SHUT_WR);
    DrainToDisconnect(fd);
    CloseFd(fd);
  }
}

TEST_P(ProtocolFuzzTest, MutatedV2Traffic) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 800);
  // A realistic v2 conversation — handshake, statement, reconnect-style
  // RESUME attempt, heartbeat, BYE — with random bit flips and
  // truncations anywhere in the byte stream.
  std::string resume_body;
  AppendU64(resume_body, 12345);
  AppendU64(resume_body, 0x5EED5EED5EED5EEDull);
  std::string script =
      EncodeFrame({FrameType::kHello, 0, EncodeHelloBody()}) +
      EncodeFrame({FrameType::kStmt, 1,
                   "GEN BASKETS b n_baskets=10 n_items=5 seed=1"}) +
      EncodeFrame({FrameType::kResume, 2, resume_body}) +
      EncodeFrame({FrameType::kHeartbeat, 0, ""}) +
      EncodeFrame({FrameType::kBye, 3, ""});
  for (int i = 0; i < 20; ++i) {
    std::string wire = script;
    int mutations = 1 + static_cast<int>(rng.NextBelow(4));
    for (int m = 0; m < mutations; ++m) {
      std::size_t pos =
          rng.NextBelow(static_cast<std::uint32_t>(wire.size()));
      if (rng.NextBernoulli(0.3)) {
        wire.resize(pos + 1);  // truncate mid-stream
      } else {
        wire[pos] = static_cast<char>(wire[pos] ^ (1 + rng.NextBelow(255)));
      }
    }
    int fd = Connect();
    ASSERT_GE(fd, 0);
    WriteRaw(fd, wire);
    ::shutdown(fd, SHUT_WR);
    DrainToDisconnect(fd);
    CloseFd(fd);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProtocolFuzzTest, ::testing::Range(1, 4));

}  // namespace
}  // namespace qf
