// Protocol fuzzing against a live in-process server: random garbage,
// truncated and oversized length prefixes, corrupted checksums, bad
// handshakes, and mutated valid traffic are thrown at qfserverd's wire
// layer (network/protocol.h, network/server.h). The contract under fuzz:
// every hostile input draws a typed ERROR frame and/or a disconnect —
// never a crash, a hang, or a poisoned server. The suite runs in the
// ASan and TSan CI jobs, where "no leak, no race" is machine-checked.
#include <sys/socket.h>

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <utility>

#include "common/rng.h"
#include "common/status.h"
#include "network/client.h"
#include "network/protocol.h"
#include "network/server.h"
#include "network/socket.h"

namespace qf {
namespace {

std::string RandomBytes(Rng& rng, std::size_t length) {
  std::string out;
  out.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    out += static_cast<char>(rng.NextBelow(256));
  }
  return out;
}

// Writes raw bytes, ignoring failures (the server may already have hung
// up on earlier garbage — that is a pass, not an error).
void WriteRaw(int fd, std::string_view bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                       MSG_NOSIGNAL);
    if (n <= 0) return;
    sent += static_cast<std::size_t>(n);
  }
}

// Drains the connection: any frames the server sends must decode (they
// do by construction of ReadFrame), and the stream must end — with a
// clean EOF or a reset, never a hang (the test would time out). Returns
// the number of ERROR frames seen.
int DrainToDisconnect(int fd) {
  int errors = 0;
  for (int i = 0; i < 64; ++i) {
    ReadEvent event = ReadFrame(fd);
    if (event.kind == ReadEvent::Kind::kFrame) {
      if (event.frame.type == FrameType::kError) {
        // Typed: the body must decode to a real status.
        Status status = DecodeErrorBody(event.frame.body);
        EXPECT_FALSE(status.ok());
        ++errors;
      }
      continue;
    }
    // kEof (clean) or kError (reset after we wrote into a closed
    // socket) both mean the server cut the conversation.
    return errors;
  }
  ADD_FAILURE() << "server kept talking instead of disconnecting";
  return errors;
}

class ProtocolFuzzTest : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override {
    ServerOptions options;
    options.port = 0;
    Result<std::unique_ptr<Server>> server = Server::Start(std::move(options));
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    server_ = std::move(*server);
  }

  // The server must still serve honest clients after the abuse.
  void TearDown() override {
    Result<Client> client = Client::Connect("127.0.0.1", server_->port());
    ASSERT_TRUE(client.ok()) << client.status().ToString();
    Result<std::string> out = client->Execute("HELP");
    EXPECT_TRUE(out.ok()) << out.status().ToString();
  }

  int Connect() {
    Result<int> fd = TcpConnect("127.0.0.1", server_->port());
    EXPECT_TRUE(fd.ok()) << fd.status().ToString();
    return fd.ok() ? *fd : -1;
  }

  std::unique_ptr<Server> server_;
};

TEST_P(ProtocolFuzzTest, RandomGarbage) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  for (int i = 0; i < 25; ++i) {
    int fd = Connect();
    ASSERT_GE(fd, 0);
    WriteRaw(fd, RandomBytes(rng, 1 + rng.NextBelow(300)));
    ::shutdown(fd, SHUT_WR);
    DrainToDisconnect(fd);
    CloseFd(fd);
  }
}

TEST_P(ProtocolFuzzTest, HostileLengthPrefixes) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 100);
  for (int i = 0; i < 25; ++i) {
    std::string wire;
    switch (rng.NextBelow(3)) {
      case 0:  // oversized: must be rejected before any allocation
        AppendU32(wire, kMaxPayloadBytes + 1 + rng.NextUint32() / 2);
        AppendU32(wire, rng.NextUint32());
        break;
      case 1:  // undersized: shorter than [type][request id]
        AppendU32(wire, rng.NextBelow(kMinPayloadBytes));
        AppendU32(wire, rng.NextUint32());
        wire += RandomBytes(rng, kMinPayloadBytes);
        break;
      default:  // truncated: a valid frame cut mid-payload
        wire = EncodeFrame({FrameType::kHello, 0, EncodeHelloBody()});
        wire.resize(1 + rng.NextBelow(
                            static_cast<std::uint32_t>(wire.size() - 1)));
        break;
    }
    int fd = Connect();
    ASSERT_GE(fd, 0);
    WriteRaw(fd, wire);
    ::shutdown(fd, SHUT_WR);
    DrainToDisconnect(fd);
    CloseFd(fd);
  }
}

TEST_P(ProtocolFuzzTest, CorruptChecksumsAndBadHandshakes) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 200);
  std::string hello = EncodeFrame({FrameType::kHello, 0, EncodeHelloBody()});
  for (int i = 0; i < 25; ++i) {
    std::string wire = hello;
    // Flip a byte anywhere: header corruption bends the length or CRC
    // fields, payload corruption fails the checksum, and a corrupted
    // HELLO body draws the handshake's typed rejection.
    std::size_t pos = rng.NextBelow(static_cast<std::uint32_t>(wire.size()));
    wire[pos] = static_cast<char>(wire[pos] ^ (1 + rng.NextBelow(255)));
    int fd = Connect();
    ASSERT_GE(fd, 0);
    WriteRaw(fd, wire);
    ::shutdown(fd, SHUT_WR);
    DrainToDisconnect(fd);
    CloseFd(fd);
  }
}

TEST_P(ProtocolFuzzTest, GarbageAfterValidHandshake) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 300);
  for (int i = 0; i < 25; ++i) {
    int fd = Connect();
    ASSERT_GE(fd, 0);
    ASSERT_TRUE(WriteFrame(fd, {FrameType::kHello, 0, EncodeHelloBody()}).ok());
    ReadEvent welcome = ReadFrame(fd);
    ASSERT_EQ(welcome.kind, ReadEvent::Kind::kFrame);
    ASSERT_EQ(welcome.frame.type, FrameType::kWelcome);
    // Sometimes a legitimate statement first, then garbage mid-session.
    if (rng.NextBernoulli(0.5)) {
      WriteRaw(fd, EncodeFrame({FrameType::kStmt, 1, "HELP"}));
    }
    if (rng.NextBernoulli(0.5)) {
      // An unknown-but-well-framed type.
      WriteRaw(fd, EncodeFrame(
                       {static_cast<FrameType>(10 + rng.NextBelow(200)), 2,
                        RandomBytes(rng, rng.NextBelow(40))}));
    } else {
      WriteRaw(fd, RandomBytes(rng, 1 + rng.NextBelow(200)));
    }
    ::shutdown(fd, SHUT_WR);
    DrainToDisconnect(fd);
    CloseFd(fd);
  }
}

TEST_P(ProtocolFuzzTest, MutatedValidTraffic) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 400);
  std::string script =
      EncodeFrame({FrameType::kHello, 0, EncodeHelloBody()}) +
      EncodeFrame({FrameType::kStmt, 1,
                   "GEN BASKETS b n_baskets=10 n_items=5 seed=1"}) +
      EncodeFrame({FrameType::kStmt, 2, "SHOW RELATIONS"}) +
      EncodeFrame({FrameType::kBye, 3, ""});
  for (int i = 0; i < 20; ++i) {
    std::string wire = script;
    int mutations = 1 + static_cast<int>(rng.NextBelow(4));
    for (int m = 0; m < mutations; ++m) {
      std::size_t pos =
          rng.NextBelow(static_cast<std::uint32_t>(wire.size()));
      if (rng.NextBernoulli(0.3)) {
        wire.resize(pos + 1);  // truncate mid-stream
      } else {
        wire[pos] = static_cast<char>(wire[pos] ^ (1 + rng.NextBelow(255)));
      }
    }
    int fd = Connect();
    ASSERT_GE(fd, 0);
    WriteRaw(fd, wire);
    ::shutdown(fd, SHUT_WR);
    DrainToDisconnect(fd);
    CloseFd(fd);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProtocolFuzzTest, ::testing::Range(1, 4));

}  // namespace
}  // namespace qf
