// Shared harness for the crash-recovery torture tests: a deterministic
// catalog workload whose relations come from real flock evaluations (so
// thread-count bit-identity carries over to durability), an in-memory
// oracle of every acknowledged state, and the crash-point sweep that
// kills the "process" at each I/O operation and checks recovery.
//
// Used by crash_recovery_test.cc (quick sweeps, default matrix) and
// crash_recovery_stress_test.cc (full grid, `slow` label).
#ifndef QF_TESTS_CRASH_RECOVERY_HARNESS_H_
#define QF_TESTS_CRASH_RECOVERY_HARNESS_H_

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/vfs.h"
#include "flocks/eval.h"
#include "flocks/filter.h"
#include "flocks/flock.h"
#include "optimizer/history.h"
#include "storage/catalog.h"
#include "workload/basket_gen.h"

namespace qf {

inline std::string StateBytes(const Catalog& catalog) {
  Result<std::string> bytes = EncodeCatalogState(catalog.state());
  EXPECT_TRUE(bytes.ok()) << bytes.status().ToString();
  return bytes.ok() ? *bytes : std::string();
}

struct WorkloadStep {
  const char* what;
  std::function<Status(Catalog&)> run;
};

inline Relation CrashTestBaskets() {
  BasketConfig config;
  config.n_baskets = 30;
  config.n_items = 10;
  config.avg_basket_size = 4;
  config.seed = 7;
  Relation rel = GenerateBaskets(config);
  rel.set_name("baskets");
  return rel;
}

// Frequent item pairs mined from the baskets by a real flock evaluation
// at `threads` workers. The engine guarantees the result is bit-identical
// for every thread count; the torture tests lean on that to demand
// bit-identical recovered catalogs across {0, 1, 4}.
inline Relation MinedPairs(const Relation& baskets, unsigned threads) {
  Database db;
  db.PutRelation(baskets);
  Result<QueryFlock> flock = MakeFlock(
      "answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2",
      FilterCondition::MinSupport(2));
  EXPECT_TRUE(flock.ok()) << flock.status().ToString();
  FlockEvalOptions options;
  options.threads = threads;
  Result<Relation> result = EvaluateFlock(*flock, db, options);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  Relation rel = result.ok() ? std::move(*result) : Relation();
  rel.set_name("pairs");
  return rel;
}

// The scripted workload: every catalog mutation type, two checkpoints at
// asymmetric positions, and one multi-relation batch commit. Knob values
// are fixed (never `threads`) so the oracle bytes are thread-invariant.
inline std::vector<WorkloadStep> BuildWorkload(unsigned threads) {
  auto baskets = std::make_shared<Relation>(CrashTestBaskets());
  auto pairs = std::make_shared<Relation>(MinedPairs(*baskets, threads));
  auto r1 = std::make_shared<Relation>("batch_a", Schema({"A"}));
  r1->AddRow({Value(1)});
  r1->AddRow({Value(2)});
  auto r2 = std::make_shared<Relation>("batch_b", Schema({"B", "C"}));
  r2->AddRow({Value("x"), Value(0.5)});
  return {
      {"put baskets",
       [baskets](Catalog& c) { return c.PutRelation(*baskets); }},
      {"set threads knob",
       [](Catalog& c) { return c.SetKnob("THREADS", 2); }},
      {"define rule",
       [](Catalog& c) { return c.DefineRule("big(B) :- baskets(B, I)"); }},
      {"put mined pairs",
       [pairs](Catalog& c) { return c.PutRelation(*pairs); }},
      {"checkpoint",
       [](Catalog& c) { return c.Checkpoint(); }},
      {"declare flock",
       [](Catalog& c) {
         return c.PutFlock("pairs_flock",
                           "QUERY answer(B) :- baskets(B,$1) "
                           "FILTER COUNT >= 2");
       }},
      // A learned-optimizer outcome before the next checkpoint: the
      // kBanditOutcome record must survive both snapshot encoding and
      // WAL replay. Fixed values so the oracle stays thread-invariant.
      {"record bandit outcome",
       [](Catalog& c) {
         BanditOutcome o;
         o.context = 0x123456789abcdef0ull;
         o.arm = "direct:cost";
         o.wall_ms = 1.5;
         o.rows = 9;
         o.skew = 2.0;
         return c.RecordBanditOutcome(o);
       }},
      {"batch relations",
       [r1, r2](Catalog& c) { return c.PutRelations({r1.get(), r2.get()}); }},
      {"set timeout knob",
       [](Catalog& c) { return c.SetKnob("TIMEOUT_MS", 0); }},
      {"checkpoint again",
       [](Catalog& c) { return c.Checkpoint(); }},
      {"final knob",
       [](Catalog& c) { return c.SetKnob("MEMORY_MB", 64); }},
      // A second outcome in the same cell after the last checkpoint, so
      // replay must fold it into aggregates the snapshot already holds.
      {"record bandit outcome again",
       [](Catalog& c) {
         BanditOutcome o;
         o.context = 0x123456789abcdef0ull;
         o.arm = "direct:cost";
         o.wall_ms = 0.5;
         o.rows = 9;
         o.skew = 1.0;
         return c.RecordBanditOutcome(o);
       }},
  };
}

// Runs the workload against `vfs` (catalog dir "cat") until a step fails;
// returns the number of acknowledged (successful) steps.
inline std::size_t RunWorkload(Vfs& vfs, unsigned threads) {
  std::vector<WorkloadStep> steps = BuildWorkload(threads);
  Result<std::unique_ptr<Catalog>> cat = Catalog::Open(vfs, "cat");
  if (!cat.ok()) return 0;
  std::size_t acked = 0;
  for (const WorkloadStep& step : steps) {
    if (!step.run(**cat).ok()) break;
    ++acked;
  }
  return acked;
}

// oracle[k] = the encoded catalog state after k acknowledged steps.
inline std::vector<std::string> WorkloadOracle(unsigned threads) {
  std::vector<WorkloadStep> steps = BuildWorkload(threads);
  std::vector<std::string> oracle;
  MemVfs vfs;
  Result<std::unique_ptr<Catalog>> cat = Catalog::Open(vfs, "cat");
  EXPECT_TRUE(cat.ok()) << cat.status().ToString();
  if (!cat.ok()) return oracle;
  oracle.push_back(StateBytes(**cat));
  for (const WorkloadStep& step : steps) {
    Status s = step.run(**cat);
    EXPECT_TRUE(s.ok()) << step.what << ": " << s.ToString();
    oracle.push_back(StateBytes(**cat));
  }
  return oracle;
}

inline bool IsOracleState(const std::vector<std::string>& oracle,
                          const std::string& bytes) {
  for (const std::string& state : oracle) {
    if (state == bytes) return true;
  }
  return false;
}

// The tentpole property: crash the workload at I/O operation `c` for
// every c, reopen, and require a catalog bit-identical to the state after
// `acked` steps — or `acked + 1`, for a crash in the window where a
// commit is durable but not yet acknowledged. Both crash outcomes are
// exercised per `power_loss`: true discards every unsynced write
// (MemVfs::Crash); false keeps everything that reached the base vfs,
// including the torn tail of the dying Append.
inline void RunCrashSweep(unsigned threads, std::uint32_t torn_write_bytes,
                          bool power_loss) {
  std::vector<WorkloadStep> steps = BuildWorkload(threads);
  std::vector<std::string> oracle = WorkloadOracle(threads);
  ASSERT_EQ(oracle.size(), steps.size() + 1);

  // Learn the sweep's upper bound from a fault-free run.
  std::uint64_t total_ops = 0;
  {
    MemVfs base;
    FaultVfs vfs(base);
    Result<std::unique_ptr<Catalog>> cat = Catalog::Open(vfs, "cat");
    ASSERT_TRUE(cat.ok()) << cat.status().ToString();
    for (const WorkloadStep& step : steps) {
      ASSERT_TRUE(step.run(**cat).ok()) << step.what;
    }
    total_ops = vfs.op_count();
  }
  ASSERT_GT(total_ops, 0u);

  for (std::uint64_t c = 1; c <= total_ops; ++c) {
    MemVfs base;
    std::size_t acked = 0;
    {
      FaultVfs vfs(base);
      FaultPlan plan;
      plan.crash_at_op = c;
      plan.torn_write_bytes = torn_write_bytes;
      vfs.set_plan(plan);
      Result<std::unique_ptr<Catalog>> cat = Catalog::Open(vfs, "cat");
      if (cat.ok()) {
        for (const WorkloadStep& step : steps) {
          if (!step.run(**cat).ok()) break;
          ++acked;
        }
      }
      EXPECT_TRUE(vfs.crashed()) << "crash point " << c << " never fired";
    }
    if (power_loss) base.Crash();

    Result<std::unique_ptr<Catalog>> reopened = Catalog::Open(base, "cat");
    ASSERT_TRUE(reopened.ok())
        << "crash at op " << c << ": " << reopened.status().ToString();
    std::string recovered = StateBytes(**reopened);
    bool prefix_consistent =
        recovered == oracle[acked] ||
        (acked + 1 < oracle.size() && recovered == oracle[acked + 1]);
    EXPECT_TRUE(prefix_consistent)
        << "crash at op " << c << " (acked " << acked << ", threads "
        << threads << ", torn " << torn_write_bytes << ", power_loss "
        << power_loss << "): recovered state matches no acknowledged state";
    // The recovered catalog must accept new commits (a torn tail was
    // physically truncated, so appends land after valid bytes).
    EXPECT_TRUE(
        (*reopened)->SetKnob("POST_CRASH", static_cast<std::int64_t>(c)).ok())
        << "crash at op " << c;
  }
}

}  // namespace qf

#endif  // QF_TESTS_CRASH_RECOVERY_HARNESS_H_
