// Differential tests for the morsel-parallel evaluation engine: the flock
// evaluator, the plan executor, and the a-priori counters must return
// results *identical* to their serial runs for every thread count — same
// rows, same order — and must agree with the naive generate-and-test
// oracle on randomized workloads.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "apriori/apriori.h"
#include "common/rng.h"
#include "flocks/eval.h"
#include "flocks/flock.h"
#include "flocks/naive_eval.h"
#include "plan/executor.h"
#include "plan/plan.h"
#include "workload/basket_gen.h"

namespace qf {
namespace {

constexpr unsigned kThreadCounts[] = {1, 2, 8};

QueryFlock Flock(const char* text, FilterCondition filter) {
  auto f = MakeFlock(text, filter);
  EXPECT_TRUE(f.ok()) << f.status().ToString();
  return *f;
}

// Exact comparison — schema, rows, AND row order. The determinism
// contract promises byte-identical results, not just equal sets.
void ExpectIdentical(const Relation& serial, const Relation& parallel,
                     unsigned threads) {
  ASSERT_EQ(serial.schema(), parallel.schema()) << "threads=" << threads;
  ASSERT_EQ(serial.rows(), parallel.rows()) << "threads=" << threads;
}

void ExpectSameSet(const Relation& a, const Relation& b) {
  Relation sa = a, sb = b;
  sa.SortRows();
  sb.SortRows();
  EXPECT_EQ(sa.schema(), sb.schema());
  EXPECT_EQ(sa.rows(), sb.rows());
}

Database RandomBaskets(std::uint64_t seed, std::uint32_t n_baskets = 300,
                       std::uint32_t n_items = 40) {
  BasketConfig config;
  config.n_baskets = n_baskets;
  config.n_items = n_items;
  config.avg_basket_size = 6;
  config.zipf_theta = 0.9;
  config.seed = seed;
  Database db;
  db.PutRelation(GenerateBaskets(config));
  return db;
}

// A randomized weighted-sales relation for SUM flocks: sales(BID, Item,
// Weight) with small non-negative integer weights.
Database RandomSales(std::uint64_t seed, bool negative_weights = false) {
  Rng rng(seed);
  Relation r("sales", Schema({"BID", "Item", "W"}));
  for (int bid = 0; bid < 120; ++bid) {
    std::size_t size = 2 + rng.NextBelow(5);
    for (std::size_t k = 0; k < size; ++k) {
      std::int64_t w = static_cast<std::int64_t>(rng.NextBelow(10));
      if (negative_weights && rng.NextBernoulli(0.05)) w = -w - 1;
      r.AddRow({Value(bid), Value("i" + std::to_string(rng.NextBelow(25))),
                Value(w)});
    }
  }
  Database db;
  db.PutRelation(std::move(r));
  return db;
}

TEST(ParallelEvalTest, FlockPairSupportMatchesSerialAndNaive) {
  for (std::uint64_t seed : {3u, 17u, 99u}) {
    Database db = RandomBaskets(seed);
    QueryFlock flock =
        Flock("answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2",
              FilterCondition::MinSupport(8));
    FlockEvalOptions serial_options;
    auto serial = EvaluateFlock(flock, db, serial_options);
    ASSERT_TRUE(serial.ok()) << serial.status().ToString();
    for (unsigned threads : kThreadCounts) {
      FlockEvalOptions options;
      options.threads = threads;
      auto parallel = EvaluateFlock(flock, db, options);
      ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
      ExpectIdentical(*serial, *parallel, threads);
    }
    auto naive = NaiveEvaluateFlock(flock, db);
    ASSERT_TRUE(naive.ok()) << naive.status().ToString();
    ExpectSameSet(*serial, *naive);
  }
}

TEST(ParallelEvalTest, UnionFlockDisjunctsEvaluateConcurrently) {
  for (std::uint64_t seed : {5u, 23u}) {
    Database db = RandomBaskets(seed);
    // Two disjuncts with differently named head variables (Fig. 4 shape).
    QueryFlock flock = Flock(
        "answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2\n"
        "answer(C) :- baskets(C,$2) AND baskets(C,$1) AND $1 < $2",
        FilterCondition::MinSupport(6));
    auto serial = EvaluateFlock(flock, db);
    ASSERT_TRUE(serial.ok()) << serial.status().ToString();
    for (unsigned threads : kThreadCounts) {
      FlockEvalOptions options;
      options.threads = threads;
      auto parallel = EvaluateFlock(flock, db, options);
      ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
      ExpectIdentical(*serial, *parallel, threads);
    }
  }
}

TEST(ParallelEvalTest, SumFilterMatchesSerial) {
  for (std::uint64_t seed : {7u, 31u}) {
    Database db = RandomSales(seed);
    QueryFlock flock =
        Flock("answer(B,W) :- sales(B,$i,W)",
              FilterCondition{FilterAgg::kSum, CompareOp::kGe, 25, 1});
    auto serial = EvaluateFlock(flock, db);
    ASSERT_TRUE(serial.ok()) << serial.status().ToString();
    for (unsigned threads : kThreadCounts) {
      FlockEvalOptions options;
      options.threads = threads;
      auto parallel = EvaluateFlock(flock, db, options);
      ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
      ExpectIdentical(*serial, *parallel, threads);
    }
  }
}

TEST(ParallelEvalTest, NegativeWeightSumRejectedAtEveryThreadCount) {
  Database db = RandomSales(/*seed=*/41, /*negative_weights=*/true);
  QueryFlock flock =
      Flock("answer(B,W) :- sales(B,$i,W)",
            FilterCondition{FilterAgg::kSum, CompareOp::kGe, 25, 1});
  for (unsigned threads : kThreadCounts) {
    FlockEvalOptions options;
    options.threads = threads;
    auto result = EvaluateFlock(flock, db, options);
    ASSERT_FALSE(result.ok()) << "threads=" << threads;
    EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition)
        << "threads=" << threads;
  }
}

TEST(ParallelEvalTest, PrefilterPlanMatchesSerialAndDirect) {
  for (std::uint64_t seed : {11u, 43u}) {
    Database db = RandomBaskets(seed);
    QueryFlock flock =
        Flock("answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2",
              FilterCondition::MinSupport(8));
    // Prefilter both parameters — two independent steps that the wave
    // scheduler runs concurrently, then the dependent final step.
    auto ok1 = MakeFilterStep(flock, "ok1", {"1"}, std::vector<std::size_t>{0});
    ASSERT_TRUE(ok1.ok()) << ok1.status().ToString();
    auto ok2 = MakeFilterStep(flock, "ok2", {"2"}, std::vector<std::size_t>{1});
    ASSERT_TRUE(ok2.ok());
    auto plan = PlanWithPrefilters(flock, {*ok1, *ok2});
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();

    auto serial = ExecutePlan(*plan, flock, db);
    ASSERT_TRUE(serial.ok()) << serial.status().ToString();
    for (unsigned threads : kThreadCounts) {
      PlanExecOptions options;
      options.threads = threads;
      PlanExecInfo info;
      auto parallel = ExecutePlan(*plan, flock, db, options, &info);
      ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
      ExpectIdentical(*serial, *parallel, threads);
      // Per-step info must arrive in step order regardless of scheduling.
      ASSERT_EQ(info.steps.size(), plan->steps.size());
      for (std::size_t k = 0; k < plan->steps.size(); ++k) {
        EXPECT_EQ(info.steps[k].step_name, plan->steps[k].result_name);
      }
    }
    auto direct = EvaluateFlock(flock, db);
    ASSERT_TRUE(direct.ok());
    ExpectIdentical(*direct, *serial, /*threads=*/1);
  }
}

TEST(ParallelEvalTest, ExecutePlanErrorIsDeterministic) {
  // A flock over a predicate missing from the database fails identically
  // at every thread count.
  Database db = RandomBaskets(59);
  QueryFlock flock =
      Flock("answer(B) :- missing(B,$1)", FilterCondition::MinSupport(2));
  QueryPlan plan = TrivialPlan(flock);
  for (unsigned threads : kThreadCounts) {
    PlanExecOptions options;
    options.threads = threads;
    auto result = ExecutePlan(plan, flock, db, options);
    ASSERT_FALSE(result.ok()) << "threads=" << threads;
    EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  }
}

TEST(ParallelEvalTest, AprioriItemsetsMatchSerial) {
  for (std::uint64_t seed : {13u, 77u}) {
    Database db = RandomBaskets(seed, /*n_baskets=*/1200, /*n_items=*/30);
    auto data = BasketsFromRelation(db.Get("baskets"), "BID", "Item");
    ASSERT_TRUE(data.ok()) << data.status().ToString();

    AprioriOptions serial_options;
    serial_options.min_support = 20;
    AprioriStats serial_stats;
    std::vector<Itemset> serial =
        AprioriFrequentItemsets(*data, serial_options, &serial_stats);
    ASSERT_FALSE(serial.empty());

    for (unsigned threads : kThreadCounts) {
      AprioriOptions options = serial_options;
      options.threads = threads;
      AprioriStats stats;
      std::vector<Itemset> parallel =
          AprioriFrequentItemsets(*data, options, &stats);
      ASSERT_EQ(serial.size(), parallel.size()) << "threads=" << threads;
      for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].items, parallel[i].items);
        EXPECT_EQ(serial[i].support, parallel[i].support);
      }
      EXPECT_EQ(serial_stats.candidates_per_level, stats.candidates_per_level);
      EXPECT_EQ(serial_stats.frequent_per_level, stats.frequent_per_level);
    }
  }
}

TEST(ParallelEvalTest, AprioriAndNaivePairCountersMatchSerial) {
  Database db = RandomBaskets(29, /*n_baskets=*/1500, /*n_items=*/25);
  auto data = BasketsFromRelation(db.Get("baskets"), "BID", "Item");
  ASSERT_TRUE(data.ok());
  std::vector<Itemset> apriori_serial = AprioriFrequentPairs(*data, 15);
  std::vector<Itemset> naive_serial = NaiveFrequentPairs(*data, 15);
  ASSERT_FALSE(apriori_serial.empty());
  for (unsigned threads : kThreadCounts) {
    std::vector<Itemset> apriori = AprioriFrequentPairs(*data, 15, threads);
    std::vector<Itemset> naive = NaiveFrequentPairs(*data, 15, threads);
    ASSERT_EQ(apriori.size(), apriori_serial.size()) << "threads=" << threads;
    ASSERT_EQ(naive.size(), naive_serial.size()) << "threads=" << threads;
    for (std::size_t i = 0; i < apriori.size(); ++i) {
      EXPECT_EQ(apriori[i].items, apriori_serial[i].items);
      EXPECT_EQ(apriori[i].support, apriori_serial[i].support);
    }
    for (std::size_t i = 0; i < naive.size(); ++i) {
      EXPECT_EQ(naive[i].items, naive_serial[i].items);
      EXPECT_EQ(naive[i].support, naive_serial[i].support);
    }
  }
}

}  // namespace
}  // namespace qf
