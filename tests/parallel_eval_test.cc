// Differential tests for the morsel-parallel evaluation engine: the flock
// evaluator, the plan executor, and the a-priori counters must return
// results *identical* to their serial runs for every thread count — same
// rows, same order — and must agree with the naive generate-and-test
// oracle on randomized workloads.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "apriori/apriori.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "flocks/eval.h"
#include "flocks/flock.h"
#include "flocks/naive_eval.h"
#include "plan/executor.h"
#include "plan/plan.h"
#include "workload/basket_gen.h"

namespace qf {
namespace {

constexpr unsigned kThreadCounts[] = {1, 2, 8};

QueryFlock Flock(const char* text, FilterCondition filter) {
  auto f = MakeFlock(text, filter);
  EXPECT_TRUE(f.ok()) << f.status().ToString();
  return *f;
}

// Exact comparison — schema, rows, AND row order. The determinism
// contract promises byte-identical results, not just equal sets.
void ExpectIdentical(const Relation& serial, const Relation& parallel,
                     unsigned threads) {
  ASSERT_EQ(serial.schema(), parallel.schema()) << "threads=" << threads;
  ASSERT_EQ(serial.rows(), parallel.rows()) << "threads=" << threads;
}

void ExpectSameSet(const Relation& a, const Relation& b) {
  Relation sa = a, sb = b;
  sa.SortRows();
  sb.SortRows();
  EXPECT_EQ(sa.schema(), sb.schema());
  EXPECT_EQ(sa.rows(), sb.rows());
}

Database RandomBaskets(std::uint64_t seed, std::uint32_t n_baskets = 300,
                       std::uint32_t n_items = 40) {
  BasketConfig config;
  config.n_baskets = n_baskets;
  config.n_items = n_items;
  config.avg_basket_size = 6;
  config.zipf_theta = 0.9;
  config.seed = seed;
  Database db;
  db.PutRelation(GenerateBaskets(config));
  return db;
}

// A randomized weighted-sales relation for SUM flocks: sales(BID, Item,
// Weight) with small non-negative integer weights.
Database RandomSales(std::uint64_t seed, bool negative_weights = false) {
  Rng rng(seed);
  Relation r("sales", Schema({"BID", "Item", "W"}));
  for (int bid = 0; bid < 120; ++bid) {
    std::size_t size = 2 + rng.NextBelow(5);
    for (std::size_t k = 0; k < size; ++k) {
      std::int64_t w = static_cast<std::int64_t>(rng.NextBelow(10));
      if (negative_weights && rng.NextBernoulli(0.05)) w = -w - 1;
      r.AddRow({Value(bid), Value("i" + std::to_string(rng.NextBelow(25))),
                Value(w)});
    }
  }
  Database db;
  db.PutRelation(std::move(r));
  return db;
}

TEST(ParallelEvalTest, FlockPairSupportMatchesSerialAndNaive) {
  for (std::uint64_t seed : {3u, 17u, 99u}) {
    Database db = RandomBaskets(seed);
    QueryFlock flock =
        Flock("answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2",
              FilterCondition::MinSupport(8));
    FlockEvalOptions serial_options;
    auto serial = EvaluateFlock(flock, db, serial_options);
    ASSERT_TRUE(serial.ok()) << serial.status().ToString();
    for (unsigned threads : kThreadCounts) {
      FlockEvalOptions options;
      options.threads = threads;
      auto parallel = EvaluateFlock(flock, db, options);
      ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
      ExpectIdentical(*serial, *parallel, threads);
    }
    auto naive = NaiveEvaluateFlock(flock, db);
    ASSERT_TRUE(naive.ok()) << naive.status().ToString();
    ExpectSameSet(*serial, *naive);
  }
}

TEST(ParallelEvalTest, UnionFlockDisjunctsEvaluateConcurrently) {
  for (std::uint64_t seed : {5u, 23u}) {
    Database db = RandomBaskets(seed);
    // Two disjuncts with differently named head variables (Fig. 4 shape).
    QueryFlock flock = Flock(
        "answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2\n"
        "answer(C) :- baskets(C,$2) AND baskets(C,$1) AND $1 < $2",
        FilterCondition::MinSupport(6));
    auto serial = EvaluateFlock(flock, db);
    ASSERT_TRUE(serial.ok()) << serial.status().ToString();
    for (unsigned threads : kThreadCounts) {
      FlockEvalOptions options;
      options.threads = threads;
      auto parallel = EvaluateFlock(flock, db, options);
      ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
      ExpectIdentical(*serial, *parallel, threads);
    }
  }
}

TEST(ParallelEvalTest, SumFilterMatchesSerial) {
  for (std::uint64_t seed : {7u, 31u}) {
    Database db = RandomSales(seed);
    QueryFlock flock =
        Flock("answer(B,W) :- sales(B,$i,W)",
              FilterCondition{FilterAgg::kSum, CompareOp::kGe, 25, 1});
    auto serial = EvaluateFlock(flock, db);
    ASSERT_TRUE(serial.ok()) << serial.status().ToString();
    for (unsigned threads : kThreadCounts) {
      FlockEvalOptions options;
      options.threads = threads;
      auto parallel = EvaluateFlock(flock, db, options);
      ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
      ExpectIdentical(*serial, *parallel, threads);
    }
  }
}

TEST(ParallelEvalTest, NegativeWeightSumRejectedAtEveryThreadCount) {
  Database db = RandomSales(/*seed=*/41, /*negative_weights=*/true);
  QueryFlock flock =
      Flock("answer(B,W) :- sales(B,$i,W)",
            FilterCondition{FilterAgg::kSum, CompareOp::kGe, 25, 1});
  for (unsigned threads : kThreadCounts) {
    FlockEvalOptions options;
    options.threads = threads;
    auto result = EvaluateFlock(flock, db, options);
    ASSERT_FALSE(result.ok()) << "threads=" << threads;
    EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition)
        << "threads=" << threads;
  }
}

TEST(ParallelEvalTest, PrefilterPlanMatchesSerialAndDirect) {
  for (std::uint64_t seed : {11u, 43u}) {
    Database db = RandomBaskets(seed);
    QueryFlock flock =
        Flock("answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2",
              FilterCondition::MinSupport(8));
    // Prefilter both parameters — two independent steps that the wave
    // scheduler runs concurrently, then the dependent final step.
    auto ok1 = MakeFilterStep(flock, "ok1", {"1"}, std::vector<std::size_t>{0});
    ASSERT_TRUE(ok1.ok()) << ok1.status().ToString();
    auto ok2 = MakeFilterStep(flock, "ok2", {"2"}, std::vector<std::size_t>{1});
    ASSERT_TRUE(ok2.ok());
    auto plan = PlanWithPrefilters(flock, {*ok1, *ok2});
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();

    auto serial = ExecutePlan(*plan, flock, db);
    ASSERT_TRUE(serial.ok()) << serial.status().ToString();
    for (unsigned threads : kThreadCounts) {
      PlanExecOptions options;
      options.threads = threads;
      PlanExecInfo info;
      auto parallel = ExecutePlan(*plan, flock, db, options, &info);
      ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
      ExpectIdentical(*serial, *parallel, threads);
      // Per-step info must arrive in step order regardless of scheduling.
      ASSERT_EQ(info.steps.size(), plan->steps.size());
      for (std::size_t k = 0; k < plan->steps.size(); ++k) {
        EXPECT_EQ(info.steps[k].step_name, plan->steps[k].result_name);
      }
    }
    auto direct = EvaluateFlock(flock, db);
    ASSERT_TRUE(direct.ok());
    ExpectIdentical(*direct, *serial, /*threads=*/1);
  }
}

TEST(ParallelEvalTest, ExecutePlanErrorIsDeterministic) {
  // A flock over a predicate missing from the database fails identically
  // at every thread count.
  Database db = RandomBaskets(59);
  QueryFlock flock =
      Flock("answer(B) :- missing(B,$1)", FilterCondition::MinSupport(2));
  QueryPlan plan = TrivialPlan(flock);
  for (unsigned threads : kThreadCounts) {
    PlanExecOptions options;
    options.threads = threads;
    auto result = ExecutePlan(plan, flock, db, options);
    ASSERT_FALSE(result.ok()) << "threads=" << threads;
    EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  }
}

TEST(ParallelEvalTest, AprioriItemsetsMatchSerial) {
  for (std::uint64_t seed : {13u, 77u}) {
    Database db = RandomBaskets(seed, /*n_baskets=*/1200, /*n_items=*/30);
    auto data = BasketsFromRelation(db.Get("baskets"), "BID", "Item");
    ASSERT_TRUE(data.ok()) << data.status().ToString();

    AprioriOptions serial_options;
    serial_options.min_support = 20;
    AprioriStats serial_stats;
    std::vector<Itemset> serial =
        AprioriFrequentItemsets(*data, serial_options, &serial_stats);
    ASSERT_FALSE(serial.empty());

    for (unsigned threads : kThreadCounts) {
      AprioriOptions options = serial_options;
      options.threads = threads;
      AprioriStats stats;
      std::vector<Itemset> parallel =
          AprioriFrequentItemsets(*data, options, &stats);
      ASSERT_EQ(serial.size(), parallel.size()) << "threads=" << threads;
      for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].items, parallel[i].items);
        EXPECT_EQ(serial[i].support, parallel[i].support);
      }
      EXPECT_EQ(serial_stats.candidates_per_level, stats.candidates_per_level);
      EXPECT_EQ(serial_stats.frequent_per_level, stats.frequent_per_level);
    }
  }
}

TEST(ParallelEvalTest, AprioriAndNaivePairCountersMatchSerial) {
  Database db = RandomBaskets(29, /*n_baskets=*/1500, /*n_items=*/25);
  auto data = BasketsFromRelation(db.Get("baskets"), "BID", "Item");
  ASSERT_TRUE(data.ok());
  std::vector<Itemset> apriori_serial = AprioriFrequentPairs(*data, 15);
  std::vector<Itemset> naive_serial = NaiveFrequentPairs(*data, 15);
  ASSERT_FALSE(apriori_serial.empty());
  for (unsigned threads : kThreadCounts) {
    std::vector<Itemset> apriori = AprioriFrequentPairs(*data, 15, threads);
    std::vector<Itemset> naive = NaiveFrequentPairs(*data, 15, threads);
    ASSERT_EQ(apriori.size(), apriori_serial.size()) << "threads=" << threads;
    ASSERT_EQ(naive.size(), naive_serial.size()) << "threads=" << threads;
    for (std::size_t i = 0; i < apriori.size(); ++i) {
      EXPECT_EQ(apriori[i].items, apriori_serial[i].items);
      EXPECT_EQ(apriori[i].support, apriori_serial[i].support);
    }
    for (std::size_t i = 0; i < naive.size(); ++i) {
      EXPECT_EQ(naive[i].items, naive_serial[i].items);
      EXPECT_EQ(naive[i].support, naive_serial[i].support);
    }
  }
}

// Strips the fields that legitimately vary with execution (wall time) or
// with the serial/parallel path choice (morsel decomposition) so trees
// from different thread counts can be compared exactly.
void ZeroTimingAndMorsels(OpMetrics& node) {
  node.wall_ns = 0;
  node.morsels = 0;
  for (auto& child : node.children) ZeroTimingAndMorsels(*child);
}

TEST(ParallelEvalTest, FlockMetricsIdenticalAcrossThreadCounts) {
  // The determinism contract extends to observability: the metrics tree —
  // shape, node names, and every row counter — is identical for every
  // thread count once timing and morsel counts are zeroed out.
  Database db = RandomBaskets(21);
  QueryFlock flock =
      Flock("answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2",
            FilterCondition::MinSupport(8));

  FlockEvalOptions plain_options;
  auto plain = EvaluateFlock(flock, db, plain_options);
  ASSERT_TRUE(plain.ok());

  std::string reference_tree;
  for (unsigned threads : kThreadCounts) {
    OpMetrics metrics;
    FlockEvalOptions options;
    options.threads = threads;
    options.metrics = &metrics;
    auto result = EvaluateFlock(flock, db, options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    // Collecting metrics must not change the result.
    ExpectIdentical(*plain, *result, threads);
    // The root totals the answer cardinality.
    EXPECT_EQ(metrics.op, "flock");
    EXPECT_EQ(metrics.rows_out, result->size());
    // Interior nodes report exact cardinalities too.
    const OpMetrics* group = metrics.Find("group_by");
    ASSERT_NE(group, nullptr);
    const OpMetrics* filter = metrics.Find("filter");
    ASSERT_NE(filter, nullptr);
    EXPECT_EQ(filter->rows_in, group->rows_out);
    ZeroTimingAndMorsels(metrics);
    std::string tree = metrics.ToJson();
    if (reference_tree.empty()) {
      reference_tree = tree;
    } else {
      EXPECT_EQ(tree, reference_tree) << "threads=" << threads;
    }
  }
}

TEST(ParallelEvalTest, UnionFlockMetricsCoverEveryDisjunct) {
  Database db = RandomBaskets(33);
  QueryFlock flock = Flock(
      "answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2\n"
      "answer(C) :- baskets(C,$2) AND baskets(C,$1) AND $1 < $2",
      FilterCondition::MinSupport(6));
  for (unsigned threads : kThreadCounts) {
    OpMetrics metrics;
    FlockEvalOptions options;
    options.threads = threads;
    options.metrics = &metrics;
    auto result = EvaluateFlock(flock, db, options);
    ASSERT_TRUE(result.ok());
    // One pre-allocated child per disjunct (written concurrently when
    // threads > 1), plus the union/group/filter/project tail.
    std::size_t disjuncts = 0;
    std::uint64_t union_in = 0;
    for (const auto& child : metrics.children) {
      if (child->op == "disjunct") ++disjuncts;
    }
    EXPECT_EQ(disjuncts, 2u) << "threads=" << threads;
    const OpMetrics* u = metrics.Find("union");
    ASSERT_NE(u, nullptr) << "threads=" << threads;
    union_in = u->rows_in + u->rows_in_right;
    // The union consumed exactly what the disjuncts produced.
    std::uint64_t produced = 0;
    for (const auto& child : metrics.children) {
      if (child->op == "disjunct") produced += child->rows_out;
    }
    EXPECT_EQ(union_in, produced) << "threads=" << threads;
  }
}

TEST(ParallelEvalTest, PlanMetricsStepsArriveInPlanOrder) {
  Database db = RandomBaskets(47);
  QueryFlock flock =
      Flock("answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2",
            FilterCondition::MinSupport(8));
  auto ok1 = MakeFilterStep(flock, "ok1", {"1"}, std::vector<std::size_t>{0});
  ASSERT_TRUE(ok1.ok());
  auto ok2 = MakeFilterStep(flock, "ok2", {"2"}, std::vector<std::size_t>{1});
  ASSERT_TRUE(ok2.ok());
  auto plan = PlanWithPrefilters(flock, {*ok1, *ok2});
  ASSERT_TRUE(plan.ok());

  auto plain = ExecutePlan(*plan, flock, db);
  ASSERT_TRUE(plain.ok());

  std::string reference_tree;
  for (unsigned threads : kThreadCounts) {
    OpMetrics metrics;
    PlanExecOptions options;
    options.threads = threads;
    options.metrics = &metrics;
    auto result = ExecutePlan(*plan, flock, db, options);
    ASSERT_TRUE(result.ok());
    ExpectIdentical(*plain, *result, threads);
    EXPECT_EQ(metrics.op, "plan");
    EXPECT_EQ(metrics.rows_out, result->size());
    // Step nodes are pre-allocated in plan order, so even though the
    // wave scheduler may run ok1/ok2 concurrently, children[k] is step k.
    ASSERT_GE(metrics.children.size(), plan->steps.size());
    for (std::size_t k = 0; k < plan->steps.size(); ++k) {
      EXPECT_EQ(metrics.children[k]->op, "step");
      EXPECT_EQ(metrics.children[k]->detail.substr(
                    0, plan->steps[k].result_name.size()),
                plan->steps[k].result_name);
    }
    ZeroTimingAndMorsels(metrics);
    std::string tree = metrics.ToJson();
    if (reference_tree.empty()) {
      reference_tree = tree;
    } else {
      EXPECT_EQ(tree, reference_tree) << "threads=" << threads;
    }
  }
}

TEST(ParallelEvalTest, AprioriMetricsLevelsThreadInvariant) {
  Database db = RandomBaskets(61, /*n_baskets=*/1200, /*n_items=*/30);
  auto data = BasketsFromRelation(db.Get("baskets"), "BID", "Item");
  ASSERT_TRUE(data.ok());
  std::string reference_tree;
  for (unsigned threads : kThreadCounts) {
    OpMetrics metrics;
    AprioriOptions options;
    options.min_support = 20;
    options.threads = threads;
    options.metrics = &metrics;
    std::vector<Itemset> frequent = AprioriFrequentItemsets(*data, options);
    ASSERT_FALSE(frequent.empty());
    EXPECT_EQ(metrics.op, "apriori");
    // One count_level node per level, each scanning every basket.
    ASSERT_FALSE(metrics.children.empty());
    for (const auto& level : metrics.children) {
      EXPECT_EQ(level->op, "count_level");
      EXPECT_EQ(level->rows_in, data->baskets.size());
    }
    ZeroTimingAndMorsels(metrics);
    std::string tree = metrics.ToJson();
    if (reference_tree.empty()) {
      reference_tree = tree;
    } else {
      EXPECT_EQ(tree, reference_tree) << "threads=" << threads;
    }
  }
}

TEST(ParallelEvalTest, TraceSinkSeesBalancedSpansUnderParallelism) {
  // Span events from concurrently evaluated disjuncts interleave in the
  // sink; every begin must still pair with an end (TSan runs this too).
  Database db = RandomBaskets(71);
  QueryFlock flock = Flock(
      "answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2\n"
      "answer(C) :- baskets(C,$2) AND baskets(C,$1) AND $1 < $2",
      FilterCondition::MinSupport(6));
  MemoryTraceSink sink;
  OpMetrics metrics;
  FlockEvalOptions options;
  options.threads = 8;
  options.metrics = &metrics;
  options.trace = &sink;
  auto result = EvaluateFlock(flock, db, options);
  ASSERT_TRUE(result.ok());
  std::size_t begins = 0, ends = 0;
  for (const std::string& line : sink.Lines()) {
    if (line.find("\"ev\":\"B\"") != std::string::npos) ++begins;
    if (line.find("\"ev\":\"E\"") != std::string::npos) ++ends;
  }
  EXPECT_GT(begins, 0u);
  EXPECT_EQ(begins, ends);
}

}  // namespace
}  // namespace qf
