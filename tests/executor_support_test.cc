// Tests for the cost-based order chooser, the string pool, and the
// look-then-decide refinements of the dynamic evaluator.
#include <gtest/gtest.h>

#include <thread>

#include "flocks/eval.h"
#include "optimizer/dynamic.h"
#include "optimizer/executor_support.h"
#include "plan/plan.h"
#include "relational/string_pool.h"
#include "workload/basket_gen.h"

namespace qf {
namespace {

QueryFlock Flock(const char* text, FilterCondition filter) {
  auto f = MakeFlock(text, filter);
  EXPECT_TRUE(f.ok()) << f.status().ToString();
  return *f;
}

Database SkewedBaskets(std::uint64_t seed = 61) {
  BasketConfig config;
  config.n_baskets = 600;
  config.n_items = 400;
  config.avg_basket_size = 6;
  config.zipf_theta = 0.6;
  config.seed = seed;
  Database db;
  db.PutRelation(GenerateBaskets(config));
  return db;
}

TEST(StringPoolTest, InterningCanonicalizes) {
  StringPool& pool = StringPool::Instance();
  const std::string* a = pool.Intern("qf_pool_test_alpha");
  const std::string* b = pool.Intern("qf_pool_test_alpha");
  const std::string* c = pool.Intern("qf_pool_test_beta");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(*a, "qf_pool_test_alpha");
}

TEST(StringPoolTest, ValueEqualityUsesInterning) {
  Value a("qf_pool_test_value");
  Value b(std::string("qf_pool_test_value"));
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Hash(), b.Hash());
  EXPECT_EQ(&a.AsString(), &b.AsString());
}

TEST(StringPoolTest, ConcurrentInterningIsSafe) {
  // Many threads interning overlapping string sets must agree on the
  // canonical pointers (exercises the pool's locking).
  constexpr int kThreads = 8;
  constexpr int kStrings = 200;
  std::vector<std::vector<const std::string*>> seen(kThreads);
  std::vector<std::thread> workers;
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([w, &seen] {
      seen[w].reserve(kStrings);
      for (int i = 0; i < kStrings; ++i) {
        seen[w].push_back(StringPool::Instance().Intern(
            "qf_concurrent_" + std::to_string(i)));
      }
    });
  }
  for (std::thread& t : workers) t.join();
  for (int w = 1; w < kThreads; ++w) {
    EXPECT_EQ(seen[w], seen[0]);
  }
}

TEST(ExecutorSupportTest, OptimizedPlanAvoidsCrossProducts) {
  Database db = SkewedBaskets();
  QueryFlock flock =
      Flock("answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2",
            FilterCondition::MinSupport(4));
  auto ok1 = MakeFilterStep(flock, "ok1", {"1"}, std::vector<std::size_t>{0});
  auto ok2 = MakeFilterStep(flock, "ok2", {"2"}, std::vector<std::size_t>{1});
  ASSERT_TRUE(ok1.ok());
  ASSERT_TRUE(ok2.ok());
  auto plan = PlanWithPrefilters(flock, {*ok1, *ok2});
  ASSERT_TRUE(plan.ok());

  // Text order joins ok1 with ok2 first — a cross product of the two
  // survivor sets; cost-based ordering must do much better.
  PlanExecInfo text_info;
  auto text_result = ExecutePlan(*plan, flock, db, {}, &text_info);
  ASSERT_TRUE(text_result.ok());
  PlanExecInfo opt_info;
  auto opt_result = ExecutePlanOptimized(*plan, flock, db, &opt_info);
  ASSERT_TRUE(opt_result.ok());

  text_result->SortRows();
  opt_result->SortRows();
  EXPECT_EQ(text_result->rows(), opt_result->rows());
  EXPECT_LT(opt_info.total_peak_rows, text_info.total_peak_rows);
}

TEST(ExecutorSupportTest, ChooserSeesMaterializedStepSizes) {
  // The chooser is fed the actual prefilter outputs; it must produce valid
  // per-disjunct options (exercised end to end by the agreement check).
  Database db = SkewedBaskets(62);
  QueryFlock flock =
      Flock("answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2",
            FilterCondition::MinSupport(3));
  auto ok1 = MakeFilterStep(flock, "ok1", {"1"}, std::vector<std::size_t>{0});
  ASSERT_TRUE(ok1.ok());
  auto plan = PlanWithPrefilters(flock, {*ok1});
  ASSERT_TRUE(plan.ok());
  auto direct = EvaluateFlock(flock, db);
  auto optimized = ExecutePlanOptimized(*plan, flock, db);
  ASSERT_TRUE(direct.ok());
  ASSERT_TRUE(optimized.ok());
  direct->SortRows();
  optimized->SortRows();
  EXPECT_EQ(direct->rows(), optimized->rows());
}

TEST(DynamicOptionsTest, MinRemovedFractionOneBlocksFilters) {
  Database db = SkewedBaskets(63);
  QueryFlock flock =
      Flock("answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2",
            FilterCondition::MinSupport(4));
  DynamicOptions options;
  options.aggressiveness = 100;
  options.min_removed_fraction = 1.01;  // impossible
  DynamicLog log;
  auto result = DynamicEvaluate(flock, db, options, &log);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(log.filters_applied, 0u);

  auto direct = EvaluateFlock(flock, db);
  ASSERT_TRUE(direct.ok());
  result->SortRows();
  direct->SortRows();
  EXPECT_EQ(result->rows(), direct->rows());
}

TEST(DynamicOptionsTest, RemovedFractionGateSkipsUselessFilters) {
  // All items in every basket: every group passes support, nothing can be
  // removed, so even an aggressive dynamic run applies no filter.
  Database db;
  Relation baskets("baskets", Schema({"BID", "Item"}));
  for (int b = 0; b < 30; ++b) {
    for (const char* item : {"a", "b", "c"}) {
      baskets.AddRow({Value(b), Value(item)});
    }
  }
  db.PutRelation(std::move(baskets));
  QueryFlock flock =
      Flock("answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2",
            FilterCondition::MinSupport(5));
  DynamicOptions options;
  options.aggressiveness = 100;
  DynamicLog log;
  auto result = DynamicEvaluate(flock, db, options, &log);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(log.filters_applied, 0u);
  EXPECT_EQ(result->size(), 3u);  // (a,b), (a,c), (b,c)
}

}  // namespace
}  // namespace qf
