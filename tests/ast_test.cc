// Unit tests for the Datalog AST: terms, subgoals, queries, substitution.
#include <gtest/gtest.h>

#include "datalog/ast.h"

namespace qf {
namespace {

TEST(TermTest, Kinds) {
  EXPECT_TRUE(Term::Variable("X").is_variable());
  EXPECT_TRUE(Term::Parameter("s").is_parameter());
  EXPECT_TRUE(Term::Constant(Value(3)).is_constant());
}

TEST(TermTest, ToString) {
  EXPECT_EQ(Term::Variable("X").ToString(), "X");
  EXPECT_EQ(Term::Parameter("s").ToString(), "$s");
  EXPECT_EQ(Term::Constant(Value(3)).ToString(), "3");
  EXPECT_EQ(Term::Constant(Value("beer")).ToString(), "'beer'");
}

TEST(TermTest, EqualityDistinguishesKinds) {
  EXPECT_FALSE(Term::Variable("x") == Term::Parameter("x"));
  EXPECT_TRUE(Term::Parameter("s") == Term::Parameter("s"));
  EXPECT_FALSE(Term::Constant(Value(1)) == Term::Constant(Value(2)));
}

TEST(CompareOpTest, EvalCompareAllOps) {
  Value a(1), b(2);
  EXPECT_TRUE(EvalCompare(CompareOp::kLt, a, b));
  EXPECT_TRUE(EvalCompare(CompareOp::kLe, a, a));
  EXPECT_TRUE(EvalCompare(CompareOp::kEq, a, a));
  EXPECT_TRUE(EvalCompare(CompareOp::kNe, a, b));
  EXPECT_TRUE(EvalCompare(CompareOp::kGe, b, b));
  EXPECT_TRUE(EvalCompare(CompareOp::kGt, b, a));
  EXPECT_FALSE(EvalCompare(CompareOp::kLt, b, a));
  EXPECT_FALSE(EvalCompare(CompareOp::kGt, a, b));
}

TEST(CompareOpTest, FlipIsInvolutionOnOrderOps) {
  EXPECT_EQ(FlipCompareOp(CompareOp::kLt), CompareOp::kGt);
  EXPECT_EQ(FlipCompareOp(FlipCompareOp(CompareOp::kLe)), CompareOp::kLe);
  EXPECT_EQ(FlipCompareOp(CompareOp::kEq), CompareOp::kEq);
  EXPECT_EQ(FlipCompareOp(CompareOp::kNe), CompareOp::kNe);
}

TEST(SubgoalTest, PositiveToString) {
  Subgoal s = Subgoal::Positive(
      "baskets", {Term::Variable("B"), Term::Parameter("1")});
  EXPECT_EQ(s.ToString(), "baskets(B,$1)");
  EXPECT_TRUE(s.is_positive());
  EXPECT_TRUE(s.is_relational());
}

TEST(SubgoalTest, NegatedToString) {
  Subgoal s = Subgoal::Negated(
      "causes", {Term::Variable("D"), Term::Parameter("s")});
  EXPECT_EQ(s.ToString(), "NOT causes(D,$s)");
  EXPECT_TRUE(s.is_negated());
}

TEST(SubgoalTest, ComparisonToString) {
  Subgoal s = Subgoal::Comparison(Term::Parameter("1"), CompareOp::kLt,
                                  Term::Parameter("2"));
  EXPECT_EQ(s.ToString(), "$1 < $2");
  EXPECT_TRUE(s.is_comparison());
}

ConjunctiveQuery MarketBasket() {
  ConjunctiveQuery cq;
  cq.head_vars = {"B"};
  cq.subgoals = {
      Subgoal::Positive("baskets", {Term::Variable("B"), Term::Parameter("1")}),
      Subgoal::Positive("baskets", {Term::Variable("B"), Term::Parameter("2")}),
      Subgoal::Comparison(Term::Parameter("1"), CompareOp::kLt,
                          Term::Parameter("2")),
  };
  return cq;
}

TEST(ConjunctiveQueryTest, ParametersAndVariables) {
  ConjunctiveQuery cq = MarketBasket();
  EXPECT_EQ(cq.Parameters(), (std::set<std::string>{"1", "2"}));
  EXPECT_EQ(cq.Variables(), (std::set<std::string>{"B"}));
}

TEST(ConjunctiveQueryTest, ToString) {
  EXPECT_EQ(MarketBasket().ToString(),
            "answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2");
}

TEST(ConjunctiveQueryTest, Subquery) {
  ConjunctiveQuery sub = MarketBasket().Subquery({0});
  EXPECT_EQ(sub.ToString(), "answer(B) :- baskets(B,$1)");
  EXPECT_EQ(sub.head_vars, MarketBasket().head_vars);
}

TEST(UnionQueryTest, HeadArityAndParameters) {
  ConjunctiveQuery a = MarketBasket();
  ConjunctiveQuery b = MarketBasket();
  b.head_vars = {"C"};
  b.subgoals[0] = Subgoal::Positive(
      "other", {Term::Variable("C"), Term::Parameter("1")});
  UnionQuery u({a, b});
  EXPECT_EQ(u.head_arity(), 1u);
  EXPECT_EQ(u.head_name(), "answer");
  EXPECT_EQ(u.Parameters(), (std::set<std::string>{"1", "2"}));
}

TEST(SubstituteTest, ReplacesOnlyBoundParameters) {
  ConjunctiveQuery cq = MarketBasket();
  ConjunctiveQuery ground =
      SubstituteParameters(cq, {{"1", Value("beer")}});
  EXPECT_EQ(ground.ToString(),
            "answer(B) :- baskets(B,'beer') AND baskets(B,$2) AND 'beer' < "
            "$2");
}

TEST(SubstituteTest, FullGrounding) {
  ConjunctiveQuery cq = MarketBasket();
  ConjunctiveQuery ground = SubstituteParameters(
      cq, {{"1", Value("beer")}, {"2", Value("diapers")}});
  EXPECT_TRUE(ground.Parameters().empty());
}

TEST(SubstituteTest, NegatedSubgoalsSubstituted) {
  ConjunctiveQuery cq;
  cq.head_vars = {"P"};
  cq.subgoals = {
      Subgoal::Positive("exhibits", {Term::Variable("P"), Term::Parameter("s")}),
      Subgoal::Negated("causes", {Term::Variable("D"), Term::Parameter("s")}),
  };
  ConjunctiveQuery ground = SubstituteParameters(cq, {{"s", Value("rash")}});
  EXPECT_EQ(ground.subgoals[1].ToString(), "NOT causes(D,'rash')");
}

}  // namespace
}  // namespace qf
