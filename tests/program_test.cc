// Tests for intermediate-predicate programs (the Ex. 2.2 extension):
// parsing, validation, stratified materialization, and flock evaluation
// over views — including the paper's motivating case of patients with
// several diseases.
#include <gtest/gtest.h>

#include "datalog/program.h"
#include "flocks/naive_eval.h"
#include "flocks/program_eval.h"

namespace qf {
namespace {

TEST(ProgramTest, ParseAndValidate) {
  auto program = ParseProgram(R"(
      explained(P,S) :- diagnoses(P,D) AND causes(D,S)
  )");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  EXPECT_EQ(program->DefinedPredicates(),
            (std::vector<std::string>{"explained"}));
}

TEST(ProgramTest, MultipleRulesPerHeadAreAUnion) {
  auto program = ParseProgram(R"(
      reachable(X,Y) :- arc(X,Y)
      reachable(X,Z) :- arc(X,Y) AND hop(Y,Z)
  )");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  EXPECT_EQ(program->DefinedPredicates().size(), 1u);
}

TEST(ProgramTest, RejectsParameters) {
  auto program = ParseProgram("view(P) :- exhibits(P,$s)");
  EXPECT_FALSE(program.ok());
}

TEST(ProgramTest, RejectsUnsafeRule) {
  auto program = ParseProgram("view(P,Q) :- exhibits(P,S)");
  EXPECT_FALSE(program.ok());
}

TEST(ProgramTest, RejectsDirectRecursion) {
  auto program = ParseProgram("tc(X,Y) :- tc(X,Z) AND arc(Z,Y)");
  EXPECT_FALSE(program.ok());
}

TEST(ProgramTest, RejectsMutualRecursion) {
  auto program = ParseProgram(R"(
      a(X) :- b(X)
      b(X) :- a(X)
  )");
  EXPECT_FALSE(program.ok());
}

TEST(ProgramTest, RejectsRepeatedHeadVariable) {
  auto program = ParseProgram("diag(X,X) :- p(X)");
  EXPECT_FALSE(program.ok());
}

TEST(ProgramTest, RejectsArityDisagreement) {
  auto program = ParseProgram(R"(
      v(X) :- p(X)
      v(X,Y) :- q(X,Y)
  )");
  EXPECT_FALSE(program.ok());
}

TEST(ProgramTest, TopologicalOrderRespectsDependencies) {
  auto program = ParseProgram(R"(
      c(X) :- b(X) AND base(X)
      b(X) :- a(X)
      a(X) :- base(X)
  )");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  auto order = program->TopologicalOrder();
  ASSERT_TRUE(order.ok());
  auto pos = [&](const std::string& name) {
    return std::find(order->begin(), order->end(), name) - order->begin();
  };
  EXPECT_LT(pos("a"), pos("b"));
  EXPECT_LT(pos("b"), pos("c"));
}

class MaterializeTest : public ::testing::Test {
 protected:
  MaterializeTest() {
    Relation diagnoses("diagnoses", Schema({"Patient", "Disease"}));
    // p1 has TWO diseases — the case Ex. 2.2 excludes without views.
    diagnoses.AddRow({Value("p1"), Value("flu")});
    diagnoses.AddRow({Value("p1"), Value("mono")});
    diagnoses.AddRow({Value("p2"), Value("flu")});
    db_.PutRelation(diagnoses);
    Relation causes("causes", Schema({"Disease", "Symptom"}));
    causes.AddRow({Value("flu"), Value("fever")});
    causes.AddRow({Value("mono"), Value("fatigue")});
    db_.PutRelation(causes);
    Relation exhibits("exhibits", Schema({"Patient", "Symptom"}));
    exhibits.AddRow({Value("p1"), Value("fatigue")});
    exhibits.AddRow({Value("p1"), Value("rash")});
    exhibits.AddRow({Value("p2"), Value("fatigue")});
    db_.PutRelation(exhibits);
    Relation treatments("treatments", Schema({"Patient", "Medicine"}));
    treatments.AddRow({Value("p1"), Value("drugX")});
    treatments.AddRow({Value("p2"), Value("drugX")});
    db_.PutRelation(treatments);
  }
  Database db_;
};

TEST_F(MaterializeTest, ViewJoinsAllDiseases) {
  auto program = ParseProgram(
      "explained(P,S) :- diagnoses(P,D) AND causes(D,S)");
  ASSERT_TRUE(program.ok());
  auto views = MaterializeProgram(*program, db_);
  ASSERT_TRUE(views.ok()) << views.status().ToString();
  const Relation& explained = views->at("explained");
  // p1's two diseases explain fever AND fatigue; p2's only flu -> fever.
  EXPECT_EQ(explained.size(), 3u);
  EXPECT_TRUE(explained.Contains({Value("p1"), Value("fever")}));
  EXPECT_TRUE(explained.Contains({Value("p1"), Value("fatigue")}));
  EXPECT_TRUE(explained.Contains({Value("p2"), Value("fever")}));
}

TEST_F(MaterializeTest, ShadowingBasePredicateFails) {
  auto program = ParseProgram("causes(D,S) :- diagnoses(P,D) AND exhibits(P,S)");
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(MaterializeProgram(*program, db_).status().code(),
            StatusCode::kAlreadyExists);
}

TEST_F(MaterializeTest, ChainedViews) {
  auto program = ParseProgram(R"(
      explained(P,S) :- diagnoses(P,D) AND causes(D,S)
      unexplained(P,S) :- exhibits(P,S) AND NOT explained(P,S)
  )");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  auto views = MaterializeProgram(*program, db_);
  ASSERT_TRUE(views.ok()) << views.status().ToString();
  const Relation& unexplained = views->at("unexplained");
  // p1: fatigue IS explained (mono), rash is not; p2: fatigue unexplained.
  EXPECT_EQ(unexplained.size(), 2u);
  EXPECT_TRUE(unexplained.Contains({Value("p1"), Value("rash")}));
  EXPECT_TRUE(unexplained.Contains({Value("p2"), Value("fatigue")}));
}

TEST_F(MaterializeTest, MultiDiseaseSideEffectsFlock) {
  // The Ex. 2.2 flock generalized to patients with several diseases: use
  // the view for "some disease of P explains S" instead of the single
  // diagnoses join, per the paper's note.
  auto program = ParseProgram(
      "explained(P,S) :- diagnoses(P,D) AND causes(D,S)");
  ASSERT_TRUE(program.ok());
  auto flock = MakeFlock(
      "answer(P) :- exhibits(P,$s) AND treatments(P,$m) AND "
      "NOT explained(P,$s)",
      FilterCondition::MinSupport(2));
  ASSERT_TRUE(flock.ok()) << flock.status().ToString();
  auto result = EvaluateFlockWithProgram(*flock, *program, db_);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // p1's fatigue is explained by mono; under the single-disease model
  // (flu only) it would have looked like a side effect. Only p1's rash
  // (support 1) and p2's fatigue (support 1) remain — below support 2.
  EXPECT_TRUE(result->empty());

  // At support 1, (drugX, fatigue) appears only via p2.
  auto flock1 = MakeFlock(
      "answer(P) :- exhibits(P,$s) AND treatments(P,$m) AND "
      "NOT explained(P,$s)",
      FilterCondition::MinSupport(1));
  ASSERT_TRUE(flock1.ok());
  auto result1 = EvaluateFlockWithProgram(*flock1, *program, db_);
  ASSERT_TRUE(result1.ok());
  EXPECT_EQ(result1->size(), 2u);  // (drugX,rash), (drugX,fatigue)
  EXPECT_TRUE(result1->Contains({Value("drugX"), Value("fatigue")}));
  EXPECT_TRUE(result1->Contains({Value("drugX"), Value("rash")}));
}

TEST_F(MaterializeTest, EmptyProgramIsFine) {
  Program program;
  auto views = MaterializeProgram(program, db_);
  ASSERT_TRUE(views.ok());
  EXPECT_TRUE(views->empty());
}

}  // namespace
}  // namespace qf
