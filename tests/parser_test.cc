// Unit tests for the Datalog parser, including the paper's Figures 2-4 and
// error paths.
#include <gtest/gtest.h>

#include "datalog/parser.h"

namespace qf {
namespace {

TEST(ParserTest, Figure2MarketBasket) {
  auto q = ParseQuery("answer(B) :- baskets(B,$1) AND baskets(B,$2)");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->disjuncts.size(), 1u);
  const ConjunctiveQuery& cq = q->disjuncts[0];
  EXPECT_EQ(cq.head_name, "answer");
  EXPECT_EQ(cq.head_vars, std::vector<std::string>{"B"});
  ASSERT_EQ(cq.subgoals.size(), 2u);
  EXPECT_EQ(cq.subgoals[0].ToString(), "baskets(B,$1)");
  EXPECT_EQ(cq.subgoals[1].ToString(), "baskets(B,$2)");
}

TEST(ParserTest, ArithmeticSubgoal) {
  auto cq = ParseRule(
      "answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2");
  ASSERT_TRUE(cq.ok());
  ASSERT_EQ(cq->subgoals.size(), 3u);
  EXPECT_TRUE(cq->subgoals[2].is_comparison());
  EXPECT_EQ(cq->subgoals[2].op(), CompareOp::kLt);
}

TEST(ParserTest, Figure3MedicalWithNegation) {
  auto cq = ParseRule(R"(
      answer(P) :-
          exhibits(P,$s) AND
          treatments(P,$m) AND
          diagnoses(P,D) AND
          NOT causes(D,$s)
  )");
  ASSERT_TRUE(cq.ok()) << cq.status().ToString();
  ASSERT_EQ(cq->subgoals.size(), 4u);
  EXPECT_TRUE(cq->subgoals[3].is_negated());
  EXPECT_EQ(cq->subgoals[3].predicate(), "causes");
  EXPECT_EQ(cq->Parameters(), (std::set<std::string>{"s", "m"}));
}

TEST(ParserTest, Figure4UnionOfThreeRules) {
  auto q = ParseQuery(R"(
      answer(D) :- inTitle(D,$1) AND inTitle(D,$2) AND $1 < $2
      answer(A) :- link(A,D1,D2) AND inAnchor(A,$1) AND inTitle(D2,$2)
                   AND $1 < $2
      answer(A) :- link(A,D1,D2) AND inAnchor(A,$2) AND inTitle(D2,$1)
                   AND $1 < $2
  )");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->disjuncts.size(), 3u);
  EXPECT_EQ(q->head_arity(), 1u);
  EXPECT_EQ(q->disjuncts[0].head_vars, std::vector<std::string>{"D"});
  EXPECT_EQ(q->disjuncts[1].head_vars, std::vector<std::string>{"A"});
}

TEST(ParserTest, CommaSeparatedBody) {
  auto cq = ParseRule("answer(X) :- p(X,$a), q(X), $a < 5");
  ASSERT_TRUE(cq.ok());
  EXPECT_EQ(cq->subgoals.size(), 3u);
}

TEST(ParserTest, CommentsAndTerminators) {
  auto q = ParseQuery(R"(
      # finds pairs
      answer(B) :- baskets(B,$1).  // rule one
      answer(B) :- extra(B,$1);
  )");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->disjuncts.size(), 2u);
}

TEST(ParserTest, ConstantsInArguments) {
  auto cq = ParseRule(
      "answer(B) :- baskets(B,beer) AND baskets(B,'ice cream') AND "
      "weights(B,3,2.5)");
  ASSERT_TRUE(cq.ok()) << cq.status().ToString();
  EXPECT_EQ(cq->subgoals[0].args()[1], Term::Constant(Value("beer")));
  EXPECT_EQ(cq->subgoals[1].args()[1], Term::Constant(Value("ice cream")));
  EXPECT_EQ(cq->subgoals[2].args()[1], Term::Constant(Value(3)));
  EXPECT_EQ(cq->subgoals[2].args()[2], Term::Constant(Value(2.5)));
}

TEST(ParserTest, NegativeNumbersAndFloats) {
  auto cq = ParseRule("answer(X) :- p(X) AND X > -5 AND X <= 2.75");
  ASSERT_TRUE(cq.ok()) << cq.status().ToString();
  EXPECT_EQ(cq->subgoals[1].rhs(), Term::Constant(Value(-5)));
  EXPECT_EQ(cq->subgoals[2].rhs(), Term::Constant(Value(2.75)));
}

TEST(ParserTest, AllComparisonOperators) {
  auto cq = ParseRule(
      "answer(X) :- p(X,Y) AND X < Y AND X <= Y AND X = Y AND X != Y AND "
      "X >= Y AND X > Y");
  ASSERT_TRUE(cq.ok());
  EXPECT_EQ(cq->subgoals[1].op(), CompareOp::kLt);
  EXPECT_EQ(cq->subgoals[2].op(), CompareOp::kLe);
  EXPECT_EQ(cq->subgoals[3].op(), CompareOp::kEq);
  EXPECT_EQ(cq->subgoals[4].op(), CompareOp::kNe);
  EXPECT_EQ(cq->subgoals[5].op(), CompareOp::kGe);
  EXPECT_EQ(cq->subgoals[6].op(), CompareOp::kGt);
}

TEST(ParserTest, DoubleEqualsAccepted) {
  auto cq = ParseRule("answer(X) :- p(X,Y) AND X == Y");
  ASSERT_TRUE(cq.ok());
  EXPECT_EQ(cq->subgoals[1].op(), CompareOp::kEq);
}

TEST(ParserTest, ZeroArityAtom) {
  auto cq = ParseRule("answer(X) :- p(X) AND flag()");
  ASSERT_TRUE(cq.ok());
  EXPECT_TRUE(cq->subgoals[1].args().empty());
}

TEST(ParserTest, RoundTripThroughToString) {
  const char* text =
      "answer(P) :- exhibits(P,$s) AND treatments(P,$m) AND diagnoses(P,D) "
      "AND NOT causes(D,$s)";
  auto cq = ParseRule(text);
  ASSERT_TRUE(cq.ok());
  auto again = ParseRule(cq->ToString());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*cq, *again);
}

// ----------------------------------------------------------- Errors ----

TEST(ParserErrorTest, EmptyInput) { EXPECT_FALSE(ParseQuery("").ok()); }

TEST(ParserErrorTest, MissingTurnstile) {
  EXPECT_FALSE(ParseQuery("answer(B) baskets(B,$1)").ok());
}

TEST(ParserErrorTest, UnbalancedParens) {
  EXPECT_FALSE(ParseQuery("answer(B :- baskets(B,$1)").ok());
  EXPECT_FALSE(ParseQuery("answer(B) :- baskets(B,$1").ok());
}

TEST(ParserErrorTest, HeadArgumentMustBeVariable) {
  EXPECT_FALSE(ParseQuery("answer(b) :- baskets(b,$1)").ok());
}

TEST(ParserErrorTest, MixedHeadNames) {
  EXPECT_FALSE(
      ParseQuery("answer(B) :- p(B,$1)\nother(B) :- q(B,$1)").ok());
}

TEST(ParserErrorTest, MixedHeadArity) {
  EXPECT_FALSE(
      ParseQuery("answer(B) :- p(B,$1)\nanswer(B,C) :- q(B,C,$1)").ok());
}

TEST(ParserErrorTest, UnterminatedString) {
  EXPECT_FALSE(ParseQuery("answer(B) :- p(B,'oops)").ok());
}

TEST(ParserErrorTest, DollarWithoutName) {
  EXPECT_FALSE(ParseQuery("answer(B) :- p(B,$)").ok());
}

TEST(ParserErrorTest, LowercaseIdentInComparison) {
  EXPECT_FALSE(ParseQuery("answer(B) :- p(B,$1) AND $1 < beer").ok());
}

TEST(ParserErrorTest, ErrorMessageCarriesOffset) {
  auto q = ParseQuery("answer(B) :- p(B,$1) AND");
  ASSERT_FALSE(q.ok());
  EXPECT_NE(q.status().message().find("offset"), std::string::npos);
}

TEST(ParserErrorTest, ParseRuleRejectsUnion) {
  EXPECT_FALSE(ParseRule("answer(B) :- p(B,$1)\nanswer(B) :- q(B,$1)").ok());
}

}  // namespace
}  // namespace qf
