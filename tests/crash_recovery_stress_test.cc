// Full crash-recovery torture grid (the `slow` label): every crash point
// x thread counts {0, 1, 4} x torn-write sizes x both crash outcomes,
// plus an exhaustive per-bit WAL corruption sweep. The quick subset that
// runs in every test matrix lives in crash_recovery_test.cc.
#include "crash_recovery_harness.h"

#include <gtest/gtest.h>

#include <string>

#include "common/vfs.h"
#include "storage/catalog.h"

namespace qf {
namespace {

TEST(CrashRecoveryStressTest, FullCrashPointMatrix) {
  for (unsigned threads : {0u, 1u, 4u}) {
    for (std::uint32_t torn : {0u, 3u, 4096u}) {
      for (bool power_loss : {true, false}) {
        RunCrashSweep(threads, torn, power_loss);
        if (HasFatalFailure()) return;
      }
    }
  }
}

TEST(CrashRecoveryStressTest, EveryWalBitFlipRecoversAPrefix) {
  MemVfs vfs;
  ASSERT_GT(RunWorkload(vfs, 1), 0u);
  Result<std::string> wal = vfs.ReadFile("cat/catalog.wal");
  ASSERT_TRUE(wal.ok());
  ASSERT_FALSE(wal->empty());
  std::vector<std::string> oracle = WorkloadOracle(1);
  for (std::size_t bit = 0; bit < wal->size() * 8; ++bit) {
    std::string mutated = *wal;
    mutated[bit / 8] =
        static_cast<char>(mutated[bit / 8] ^ (1u << (bit % 8)));
    MemVfs scratch;
    ASSERT_TRUE(scratch.CreateDirs("cat").ok());
    ASSERT_TRUE(AtomicWriteFile(scratch, "cat/catalog.wal", mutated).ok());
    Result<std::unique_ptr<Catalog>> reopened = Catalog::Open(scratch, "cat");
    if (!reopened.ok()) {
      EXPECT_EQ(reopened.status().code(), StatusCode::kCorruptWal)
          << "bit " << bit;
      continue;
    }
    EXPECT_TRUE(IsOracleState(oracle, StateBytes(**reopened)))
        << "bit " << bit;
  }
}

TEST(CrashRecoveryStressTest, EverySnapshotBitFlipIsContained) {
  MemVfs vfs;
  {
    Result<std::unique_ptr<Catalog>> cat = Catalog::Open(vfs, "cat");
    ASSERT_TRUE(cat.ok());
    ASSERT_TRUE((*cat)->SetKnob("A", 1).ok());
    ASSERT_TRUE((*cat)->Checkpoint().ok());
  }
  Result<std::string> snap = vfs.ReadFile("cat/catalog.snap");
  ASSERT_TRUE(snap.ok());
  for (std::size_t bit = 0; bit < snap->size() * 8; ++bit) {
    std::string mutated = *snap;
    mutated[bit / 8] =
        static_cast<char>(mutated[bit / 8] ^ (1u << (bit % 8)));
    MemVfs scratch;
    ASSERT_TRUE(scratch.CreateDirs("cat").ok());
    ASSERT_TRUE(AtomicWriteFile(scratch, "cat/catalog.snap", mutated).ok());
    Result<std::unique_ptr<Catalog>> reopened = Catalog::Open(scratch, "cat");
    // A corrupt snapshot is never silently "repaired": the typed error
    // tells the operator to restore from a good copy.
    ASSERT_FALSE(reopened.ok()) << "bit " << bit;
    EXPECT_EQ(reopened.status().code(), StatusCode::kCorruptWal)
        << "bit " << bit;
  }
}

}  // namespace
}  // namespace qf
