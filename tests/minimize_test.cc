// Tests for conjunctive-query minimization: hand cases and the semantic
// property that minimization preserves results on random databases.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "datalog/minimize.h"
#include "datalog/parser.h"
#include "flocks/cq_eval.h"

namespace qf {
namespace {

ConjunctiveQuery Parse(const char* text) {
  auto cq = ParseRule(text);
  EXPECT_TRUE(cq.ok()) << cq.status().ToString();
  return *cq;
}

TEST(MinimizeTest, ClassicRedundantSubgoal) {
  // p(X,Y) AND p(X,Z): Z folds onto Y.
  ConjunctiveQuery minimized =
      MinimizeQuery(Parse("answer(X) :- p(X,Y) AND p(X,Z)"));
  EXPECT_EQ(minimized.subgoals.size(), 1u);
}

TEST(MinimizeTest, AlreadyMinimalUntouched) {
  ConjunctiveQuery cq = Parse("answer(X) :- p(X,Y) AND q(Y,Z)");
  EXPECT_EQ(MinimizeQuery(cq), cq);
}

TEST(MinimizeTest, SelfJoinOnDistinctColumnsKept) {
  // arc(X,Y) AND arc(Y,X) is a genuine 2-cycle; neither subgoal folds.
  ConjunctiveQuery cq = Parse("answer(X) :- arc(X,Y) AND arc(Y,X)");
  EXPECT_EQ(MinimizeQuery(cq).subgoals.size(), 2u);
}

TEST(MinimizeTest, ChainWithRedundantTail) {
  // arc(X,Y) AND arc(X,Z) AND arc(Z,W): Z,W fold onto Y-chain? arc(X,Z)
  // folds onto arc(X,Y) only if arc(Z,W) also maps (Z->Y), needing
  // arc(Y,?) — absent. The full fold exists: Z->Y requires arc(Y,W') in
  // the image... not present, so only the middle subgoal is redundant
  // relative to itself; verify by checking equivalence semantically below
  // and structurally that minimization is idempotent.
  ConjunctiveQuery cq =
      Parse("answer(X) :- arc(X,Y) AND arc(X,Z) AND arc(Z,W)");
  ConjunctiveQuery minimized = MinimizeQuery(cq);
  EXPECT_EQ(MinimizeQuery(minimized), minimized);
  EXPECT_LE(minimized.subgoals.size(), cq.subgoals.size());
}

TEST(MinimizeTest, ParametersAreRigid) {
  // baskets(B,$1) AND baskets(B,$2): different parameters, nothing folds.
  ConjunctiveQuery cq =
      Parse("answer(B) :- baskets(B,$1) AND baskets(B,$2)");
  EXPECT_EQ(MinimizeQuery(cq).subgoals.size(), 2u);
  // Same parameter twice IS redundant.
  ConjunctiveQuery dup =
      Parse("answer(B) :- baskets(B,$1) AND baskets(B,$1)");
  EXPECT_EQ(MinimizeQuery(dup).subgoals.size(), 1u);
}

TEST(MinimizeTest, ConstantsAreRigid) {
  ConjunctiveQuery cq =
      Parse("answer(B) :- baskets(B,'beer') AND baskets(B,'wine')");
  EXPECT_EQ(MinimizeQuery(cq).subgoals.size(), 2u);
  ConjunctiveQuery fold =
      Parse("answer(B) :- baskets(B,'beer') AND baskets(B,X)");
  EXPECT_EQ(MinimizeQuery(fold).subgoals.size(), 1u);
}

TEST(MinimizeTest, ArithmeticBindersSurvive) {
  // The comparison pins Y; dropping p(X,Y) would be unsafe, so it stays.
  ConjunctiveQuery cq = Parse("answer(X) :- p(X,Y) AND p(X,Z) AND Y < 5");
  ConjunctiveQuery minimized = MinimizeQuery(cq);
  EXPECT_TRUE(minimized.Variables().contains("Y"));
  // p(X,Z) is still redundant.
  EXPECT_EQ(minimized.subgoals.size(), 2u);
}

TEST(MinimizeTest, UnionMinimizesEachDisjunct) {
  auto q = ParseQuery(
      "answer(X) :- p(X,Y) AND p(X,Z)\nanswer(X) :- q(X,Y)");
  ASSERT_TRUE(q.ok());
  UnionQuery minimized = MinimizeQuery(*q);
  EXPECT_EQ(minimized.disjuncts[0].subgoals.size(), 1u);
  EXPECT_EQ(minimized.disjuncts[1].subgoals.size(), 1u);
}

// Property: minimization preserves evaluation results.
class MinimizeProperty : public ::testing::TestWithParam<int> {};

TEST_P(MinimizeProperty, PreservesSemantics) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  Database db;
  Relation arc("arc", Schema({"S", "T"}));
  for (int i = 0; i < 25; ++i) {
    arc.AddRow({Value(static_cast<std::int64_t>(rng.NextBelow(7))),
                Value(static_cast<std::int64_t>(rng.NextBelow(7)))});
  }
  arc.Dedup();
  db.PutRelation(std::move(arc));
  Relation p("p", Schema({"A", "B"}));
  for (int i = 0; i < 20; ++i) {
    p.AddRow({Value(static_cast<std::int64_t>(rng.NextBelow(6))),
              Value(static_cast<std::int64_t>(rng.NextBelow(6)))});
  }
  p.Dedup();
  db.PutRelation(std::move(p));

  const char* queries[] = {
      "answer(X) :- p(X,Y) AND p(X,Z)",
      "answer(X) :- arc(X,Y) AND arc(X,Z) AND arc(Z,W)",
      "answer(X,Y) :- arc(X,Y) AND arc(X,Z)",
      "answer(X) :- arc(X,Y) AND arc(Y,Z) AND arc(X,W)",
      "answer(X) :- p(X,X) AND p(X,Y)",
  };
  PredicateResolver resolver(db);
  for (const char* text : queries) {
    ConjunctiveQuery original = *ParseRule(text);
    ConjunctiveQuery minimized = MinimizeQuery(original);
    auto a = EvaluateConjunctiveBindings(original, resolver,
                                         original.head_vars);
    auto b = EvaluateConjunctiveBindings(minimized, resolver,
                                         minimized.head_vars);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    a->SortRows();
    b->SortRows();
    EXPECT_EQ(a->rows(), b->rows()) << text;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MinimizeProperty, ::testing::Range(1, 9));

}  // namespace
}  // namespace qf
