// Coverage for small public-API surfaces: printers, rendering corner
// cases, Value extremes, and Program::ToString.
#include <gtest/gtest.h>

#include <limits>

#include "datalog/parser.h"
#include "datalog/program.h"
#include "flocks/flock.h"
#include "plan/plan.h"
#include "relational/relation.h"

namespace qf {
namespace {

TEST(PrintersTest, ProgramToString) {
  auto program = ParseProgram(R"(
      explained(P,S) :- diagnoses(P,D) AND causes(D,S)
      loud(P) :- exhibits(P,'scream')
  )");
  ASSERT_TRUE(program.ok());
  std::string text = program->ToString();
  EXPECT_NE(text.find("explained(P,S) :- diagnoses(P,D) AND causes(D,S)"),
            std::string::npos);
  EXPECT_NE(text.find("loud(P) :- exhibits(P,'scream')"),
            std::string::npos);
  // Round-trips.
  auto again = ParseProgram(text);
  EXPECT_TRUE(again.ok()) << again.status().ToString();
}

TEST(PrintersTest, UnionQueryToStringOneRulePerLine) {
  auto q = ParseQuery("answer(B) :- p(B,$1)\nanswer(B) :- q(B,$1)");
  ASSERT_TRUE(q.ok());
  std::string text = q->ToString();
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 1);
}

TEST(PrintersTest, UnionFilterStepToString) {
  auto flock = MakeFlock("answer(B) :- p(B,$1)\nanswer(B) :- q(B,$1)",
                         FilterCondition::MinSupport(3));
  ASSERT_TRUE(flock.ok());
  auto step = MakeFilterStep(
      *flock, "ok1", {"1"},
      {std::vector<std::size_t>{0}, std::vector<std::size_t>{0}});
  ASSERT_TRUE(step.ok());
  std::string text = step->ToString(flock->filter);
  // Both disjunct subqueries appear in the step rendering.
  EXPECT_NE(text.find("p(B,$1)"), std::string::npos);
  EXPECT_NE(text.find("q(B,$1)"), std::string::npos);
  EXPECT_NE(text.find(":= FILTER"), std::string::npos);
}

TEST(PrintersTest, ZeroArityRelationToString) {
  Relation guard("flag", Schema(std::vector<std::string>{}));
  guard.Add(Tuple{});
  std::string text = guard.ToString();
  EXPECT_NE(text.find("flag()"), std::string::npos);
  EXPECT_NE(text.find("[1 rows]"), std::string::npos);
}

TEST(ValueExtremesTest, InfinityOrdering) {
  Value inf(std::numeric_limits<double>::infinity());
  Value ninf(-std::numeric_limits<double>::infinity());
  Value zero(0.0);
  EXPECT_LT(ninf, zero);
  EXPECT_LT(zero, inf);
  EXPECT_LT(ninf, inf);
}

TEST(ValueExtremesTest, Int64Bounds) {
  Value lo(std::numeric_limits<std::int64_t>::min());
  Value hi(std::numeric_limits<std::int64_t>::max());
  EXPECT_LT(lo, hi);
  EXPECT_EQ(lo.ToString(), "-9223372036854775808");
  EXPECT_EQ(hi.ToString(), "9223372036854775807");
}

TEST(ValueExtremesTest, EmptyStringInterns) {
  Value empty("");
  Value also_empty{std::string()};
  EXPECT_EQ(empty, also_empty);
  EXPECT_EQ(empty.ToString(), "");
  EXPECT_LT(empty, Value("a"));
}

TEST(FilterPrintTest, StrictAndFloatThresholds) {
  FilterCondition gt{FilterAgg::kCount, CompareOp::kGt, 5, 0};
  EXPECT_EQ(gt.ToString("answer", {"B"}), "COUNT(answer.B) > 5");
  FilterCondition frac{FilterAgg::kSum, CompareOp::kGe, 2.5, 0};
  EXPECT_EQ(frac.ToString("answer", {"W"}), "SUM(answer.W) >= 2.5");
}

TEST(FlockPrintTest, MultiHeadCountUsesStar) {
  auto flock = MakeFlock("answer(B,W) :- p(B,W,$1)",
                         FilterCondition::MinSupport(3));
  ASSERT_TRUE(flock.ok());
  EXPECT_NE(flock->ToString().find("COUNT(answer.*) >= 3"),
            std::string::npos);
}

}  // namespace
}  // namespace qf
