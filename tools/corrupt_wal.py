#!/usr/bin/env python3
"""Inspect and corrupt a query-flocks catalog WAL for recovery drills.

The WAL (src/storage/wal.h) is a sequence of frames:

    [u32 payload length][u32 masked CRC32C of payload][payload bytes]

little-endian, CRC masked LevelDB-style (rotate right 15, + 0xa282ead8).
Each payload is one catalog commit. Recovery truncates the log at the
first frame whose header is short, whose payload is short, or whose CRC
does not match — so flipping one bit in frame k must make `OPEN` recover
exactly frames [0, k) and report the rest as truncated bytes.

Commands:

    corrupt_wal.py list <wal>                 # frame table + CRC verdicts
    corrupt_wal.py flip <wal> --frame K [--offset N] [--out PATH]
    corrupt_wal.py flip <wal> --byte N [--bit B] [--out PATH]
    corrupt_wal.py truncate <wal> --frame K [--out PATH]
    corrupt_wal.py tear <wal> --frame K --keep N [--out PATH]

`flip --frame` flips one payload bit of frame K (CRC then fails);
`truncate --frame` cuts the file at the start of frame K; `tear` keeps
frame K's first N bytes only, simulating a torn append. Without --out the
file is modified in place. Exit status 0 on success.

Used by the crash-recovery CI job to corrupt a real shell session's WAL
and assert `OPEN` reports the truncation instead of crashing or silently
resurrecting the damaged commit.
"""

import argparse
import struct
import sys

CRC_MASK_DELTA = 0xA282EAD8
HEADER = struct.Struct("<II")

_TABLE = []
for _i in range(256):
    _c = _i
    for _ in range(8):
        _c = (_c >> 1) ^ 0x82F63B78 if _c & 1 else _c >> 1
    _TABLE.append(_c)


def crc32c(data: bytes) -> int:
    crc = 0xFFFFFFFF
    for b in data:
        crc = _TABLE[(crc ^ b) & 0xFF] ^ (crc >> 8)
    return crc ^ 0xFFFFFFFF


def mask(crc: int) -> int:
    return (((crc >> 15) | (crc << 17)) + CRC_MASK_DELTA) & 0xFFFFFFFF


def parse_frames(data: bytes):
    """Yields (offset, length, stored_masked_crc, ok) per complete frame;
    stops exactly where recovery would truncate."""
    frames = []
    pos = 0
    while pos + HEADER.size <= len(data):
        length, stored = HEADER.unpack_from(data, pos)
        start = pos + HEADER.size
        if start + length > len(data):
            break  # torn tail
        payload = data[start : start + length]
        ok = mask(crc32c(payload)) == stored
        frames.append((pos, length, stored, ok))
        if not ok:
            break  # recovery stops here too
        pos = start + length
    return frames


def load(path: str) -> bytes:
    with open(path, "rb") as f:
        return f.read()


def store(path: str, data: bytes) -> None:
    with open(path, "wb") as f:
        f.write(data)


def frame_or_die(frames, k: int):
    if not 0 <= k < len(frames):
        sys.exit(f"error: frame {k} out of range (log has {len(frames)} "
                 "parseable frames)")
    return frames[k]


def cmd_list(args) -> int:
    data = load(args.wal)
    frames = parse_frames(data)
    consumed = 0
    for i, (off, length, stored, ok) in enumerate(frames):
        verdict = "ok" if ok else "CRC MISMATCH"
        print(f"frame {i}: offset {off} payload {length} bytes "
              f"crc 0x{stored:08x} {verdict}")
        if ok:
            consumed = off + HEADER.size + length
    tail = len(data) - consumed
    print(f"{len(data)} bytes total, {tail} would be truncated on recovery")
    return 0


def cmd_flip(args) -> int:
    data = bytearray(load(args.wal))
    if args.frame is not None:
        off, length, _, _ = frame_or_die(parse_frames(data), args.frame)
        if length == 0:
            sys.exit(f"error: frame {args.frame} has an empty payload")
        byte = off + HEADER.size + (args.offset % length)
    else:
        if args.byte is None:
            sys.exit("error: flip needs --frame or --byte")
        byte = args.byte
    if not 0 <= byte < len(data):
        sys.exit(f"error: byte {byte} out of range ({len(data)} bytes)")
    data[byte] ^= 1 << (args.bit % 8)
    store(args.out or args.wal, bytes(data))
    print(f"flipped bit {args.bit % 8} of byte {byte}")
    return 0


def cmd_truncate(args) -> int:
    data = load(args.wal)
    off, _, _, _ = frame_or_die(parse_frames(data), args.frame)
    store(args.out or args.wal, data[:off])
    print(f"truncated to {off} bytes (start of frame {args.frame})")
    return 0


def cmd_tear(args) -> int:
    data = load(args.wal)
    off, length, _, _ = frame_or_die(parse_frames(data), args.frame)
    whole = HEADER.size + length
    keep = min(args.keep, whole)
    store(args.out or args.wal, data[: off + keep])
    print(f"tore frame {args.frame}: kept {keep} of {whole} bytes")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("list", help="print the frame table")
    p.add_argument("wal")
    p.set_defaults(run=cmd_list)

    p = sub.add_parser("flip", help="flip one bit")
    p.add_argument("wal")
    p.add_argument("--frame", type=int, help="target frame's payload")
    p.add_argument("--offset", type=int, default=0,
                   help="payload byte within --frame (default 0)")
    p.add_argument("--byte", type=int, help="absolute byte offset instead")
    p.add_argument("--bit", type=int, default=0)
    p.add_argument("--out", help="write here instead of in place")
    p.set_defaults(run=cmd_flip)

    p = sub.add_parser("truncate", help="cut the log at a frame boundary")
    p.add_argument("wal")
    p.add_argument("--frame", type=int, required=True)
    p.add_argument("--out")
    p.set_defaults(run=cmd_truncate)

    p = sub.add_parser("tear", help="keep only a prefix of one frame")
    p.add_argument("wal")
    p.add_argument("--frame", type=int, required=True)
    p.add_argument("--keep", type=int, required=True,
                   help="bytes of the frame (header included) to keep")
    p.add_argument("--out")
    p.set_defaults(run=cmd_tear)

    args = parser.parse_args()
    return args.run(args)


if __name__ == "__main__":
    sys.exit(main())
