#!/usr/bin/env python3
"""Load-test qfserverd: N concurrent clients, throughput and latency.

A pure-Python implementation of the wire protocol (network/protocol.h) —
the same frame layout and LevelDB-style masked CRC32C as the catalog WAL
(see tools/corrupt_wal.py) — drives a real qfserverd over TCP:

    [u32 payload length][u32 masked CRC32C of payload][payload bytes]
    payload = [u8 frame type][u64 request id][body]   (little-endian)

Each client runs the scripted flock workload end to end (GEN, DEFINE,
FLOCK, RUN, SHOW) in its own session and records per-statement latency.
With --qfshell the same scripts are replayed through the serial shell
binary and the transcripts compared (timings normalized), so the load
test doubles as a result-divergence check: concurrency must not change a
single output byte.

    tools/load_test.py --serverd build/tools/qfserverd \
        --qfshell build/tools/qfshell --clients 64 --out BENCH_PR6.json

Without --serverd an already-running server is used (--host/--port).
The report is google-benchmark-shaped JSON ({"context", "suites"}), the
same layout BENCH_PR3.json uses, so tools/compare_bench.py can diff
load-test runs across commits. Exit status: 0 on success, 1 on any
protocol error, failed statement, or transcript divergence.

--chaos runs the live fault drill instead (DESIGN.md §16): every client
talks to the server through an in-process TCP proxy that kills the
connection after a byte budget, over and over. The client (protocol v2)
reconnects, RESUMEs its session with the token from WELCOME, and
replays unanswered statements under their original request ids. The
drill fails unless every proxy-killed client's transcript is
byte-identical (timings normalized) to a fault-free oracle run of the
same session workload — which, because the workload's mutations report
row counts, also proves no mutation was applied twice or dropped.

    tools/load_test.py --serverd build/tools/qfserverd --chaos \
        --clients 8 --out CHAOS_PR10.json
"""

import argparse
import datetime
import json
import os
import re
import socket
import struct
import subprocess
import sys
import tempfile
import threading
import time

PROTOCOL_VERSION = 2
MAGIC = 0x4B4C4651  # "QFLK" little-endian
HEADER = struct.Struct("<II")

T_HELLO, T_WELCOME, T_STMT, T_RESULT, T_ERROR = 1, 2, 3, 4, 5
T_PING, T_PONG, T_STATS, T_BYE = 6, 7, 8, 9
T_RESUME, T_RESUMED, T_HEARTBEAT = 10, 11, 12

CRC_MASK_DELTA = 0xA282EAD8

_TABLE = []
for _i in range(256):
    _c = _i
    for _ in range(8):
        _c = (_c >> 1) ^ 0x82F63B78 if _c & 1 else _c >> 1
    _TABLE.append(_c)


def crc32c(data: bytes) -> int:
    crc = 0xFFFFFFFF
    for b in data:
        crc = _TABLE[(crc ^ b) & 0xFF] ^ (crc >> 8)
    return crc ^ 0xFFFFFFFF


def mask(crc: int) -> int:
    return (((crc >> 15) | (crc << 17)) + CRC_MASK_DELTA) & 0xFFFFFFFF


def encode_frame(ftype: int, request_id: int, body: bytes) -> bytes:
    payload = struct.pack("<BQ", ftype, request_id) + body
    return HEADER.pack(len(payload), mask(crc32c(payload))) + payload


class ConnectionLost(Exception):
    """The connection is unusable: reset, EOF, or a poisoned stream."""


class Client:
    """One session: blocking connect/handshake/execute, like qf::Client.

    Speaks protocol v2: the WELCOME carries a resume token, and with
    retries > 0 a lost connection is redialed (capped-exponential
    backoff), the session re-attached via RESUME, and the in-flight
    statement replayed under its original request id — the server
    answers already-executed ids from its replay cache, so a mutation
    never runs twice no matter where the connection died.
    """

    def __init__(self, host: str, port: int, retries: int = 0):
        self.host, self.port, self.retries = host, port, retries
        self.next_id = 1
        self.reconnects = 0
        self._connect()

    def _connect(self):
        self.sock = socket.create_connection((self.host, self.port))
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._buffer = b""
        hello = struct.pack("<II", MAGIC, PROTOCOL_VERSION)
        self.sock.sendall(encode_frame(T_HELLO, 0, hello))
        ftype, _, body = self.read_frame()
        if ftype == T_ERROR:
            raise RuntimeError(f"handshake rejected: {body[1:].decode()}")
        if ftype != T_WELCOME:
            raise RuntimeError(f"unexpected handshake frame type {ftype}")
        (self.session_id,) = struct.unpack_from("<Q", body, 4)
        self.token = (struct.unpack_from("<Q", body, 12)[0]
                      if len(body) >= 20 else 0)

    def read_frame(self):
        """One frame, heartbeats skipped. Raises ConnectionLost when the
        stream dies (reset/EOF/bad checksum)."""
        while True:
            if len(self._buffer) >= HEADER.size:
                length, stored = HEADER.unpack_from(self._buffer)
                if len(self._buffer) >= HEADER.size + length:
                    payload = self._buffer[HEADER.size:HEADER.size + length]
                    self._buffer = self._buffer[HEADER.size + length:]
                    if mask(crc32c(payload)) != stored:
                        raise ConnectionLost("frame checksum mismatch")
                    ftype, request_id = struct.unpack_from("<BQ", payload)
                    if ftype == T_HEARTBEAT:
                        continue
                    return ftype, request_id, payload[9:]
            try:
                chunk = self.sock.recv(65536)
            except OSError as exc:
                raise ConnectionLost(str(exc)) from exc
            if not chunk:
                raise ConnectionLost("server closed the connection")
            self._buffer += chunk

    def _resume(self, request_id, statement):
        """Redial + RESUME + replay, with capped-exponential backoff."""
        if self.token == 0 or self.retries <= 0:
            raise ConnectionLost("connection lost and resumption disabled")
        delay = 0.005
        for attempt in range(self.retries):
            try:
                self.sock.close()
                old_sid, old_token = self.session_id, self.token
                self._connect()  # fresh session, discarded on RESUME
                resume = struct.pack("<QQ", old_sid, old_token)
                self.sock.sendall(encode_frame(T_RESUME, 0, resume))
                ftype, _, body = self.read_frame()
                if ftype == T_ERROR:
                    raise RuntimeError(
                        f"RESUME rejected: {body[1:].decode()}")
                if ftype != T_RESUMED:
                    raise ConnectionLost(f"expected RESUMED, got {ftype}")
                self.session_id, self.token = old_sid, old_token
                self.sock.sendall(
                    encode_frame(T_STMT, request_id, statement.encode()))
                self.reconnects += 1
                return
            except (ConnectionLost, OSError):
                if attempt + 1 == self.retries:
                    raise
                time.sleep(delay)
                delay = min(delay * 2, 0.2)

    def execute(self, statement: str) -> str:
        request_id = self.next_id
        self.next_id += 1
        try:
            self.sock.sendall(
                encode_frame(T_STMT, request_id, statement.encode()))
        except OSError:
            self._resume(request_id, statement)
        while True:
            try:
                ftype, reply_id, body = self.read_frame()
            except ConnectionLost:
                self._resume(request_id, statement)
                continue
            if ftype == T_ERROR and reply_id == 0:
                # Connection-level report (poisoned stream); the server
                # is about to hang up. Not this statement's reply.
                self._resume(request_id, statement)
                continue
            if reply_id != request_id:
                continue  # stale duplicate from before a reconnect
            if ftype == T_RESULT:
                return body.decode()
            if ftype == T_ERROR:
                raise RuntimeError(
                    f"statement failed (code {body[0]}): "
                    f"{body[1:].decode()}")
            raise RuntimeError(f"unexpected frame type {ftype}")

    def close(self):
        try:
            self.sock.sendall(encode_frame(T_BYE, 0, b""))
        except OSError:
            pass
        self.sock.close()


class ChaosProxy:
    """A TCP forwarder that murders connections on a byte budget.

    Each accepted connection is forwarded to the upstream server until
    `budget` total bytes (both directions) have moved, then both sides
    are shut down mid-whatever-was-happening. The budget grows by `grow`
    per kill so a resuming client always makes forward progress — the
    same schedule FaultSocketOps uses in tests/network_chaos_test.cc.
    """

    def __init__(self, upstream_host, upstream_port, budget, grow):
        self.upstream = (upstream_host, upstream_port)
        self.budget, self.grow = budget, grow
        self.kills = 0
        self.listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self.listener.bind(("127.0.0.1", 0))
        self.listener.listen(16)
        self.port = self.listener.getsockname()[1]
        self._stop = False
        self._thread = threading.Thread(target=self._accept_loop,
                                        daemon=True)
        self._thread.start()

    def _accept_loop(self):
        while not self._stop:
            try:
                downstream, _ = self.listener.accept()
            except OSError:
                return
            threading.Thread(target=self._pump_pair,
                             args=(downstream,), daemon=True).start()

    def _pump_pair(self, downstream):
        try:
            upstream = socket.create_connection(self.upstream)
        except OSError:
            downstream.close()
            return
        budget = self.budget
        self.budget += self.grow  # the next connection lives longer
        moved = [0]
        lock = threading.Lock()

        def pump(src, dst):
            try:
                while True:
                    chunk = src.recv(4096)
                    if not chunk:
                        break
                    with lock:
                        moved[0] += len(chunk)
                        overdrawn = moved[0] >= budget
                    dst.sendall(chunk)
                    if overdrawn:
                        self.kills += 1
                        break
            except OSError:
                pass
            for sock in (downstream, upstream):
                try:
                    sock.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass

        a = threading.Thread(target=pump, args=(downstream, upstream),
                             daemon=True)
        b = threading.Thread(target=pump, args=(upstream, downstream),
                             daemon=True)
        a.start()
        b.start()
        a.join()
        b.join()
        downstream.close()
        upstream.close()

    def close(self):
        self._stop = True
        self.listener.close()


def workload(i: int, delta_path=None):
    """Mirror of the scripted workload in tests/server_stress_test.cc,
    plus an append-heavy incremental phase when delta_path is set:
    SET INCREMENTAL ON, then interleaved LOAD ... APPEND / RUN so every
    session exercises the build -> delta(+N) -> delta(+0 rows, the second
    append is all duplicates) decision chain under concurrency."""
    n = 60 + (i % 5) * 10
    stmts = [
        f"GEN BASKETS b n_baskets={n} n_items=20 avg_size=5 seed={i + 1}",
        "DEFINE bought(B,I) :- b(B,I)",
        "FLOCK pairs QUERY answer(B) :- bought(B,$1) AND bought(B,$2) AND "
        "$1 < $2 FILTER COUNT >= 3",
        "RUN pairs DIRECT LIMIT 5",
        "RUN pairs PLAN LIMIT 5",
        "SHOW RELATIONS",
    ]
    if delta_path:
        stmts += [
            "SET INCREMENTAL ON",
            "FLOCK ipairs QUERY answer(B) :- b(B,$1) AND b(B,$2) AND "
            "$1 < $2 FILTER COUNT >= 3",
            "RUN ipairs LIMIT 5",
            f"LOAD b APPEND FROM {delta_path}",
            "RUN ipairs LIMIT 5",
            f"LOAD b APPEND FROM {delta_path}",
            "RUN ipairs LIMIT 5",
            "SHOW FLOCK STATE ipairs",
        ]
    return stmts


# Delta batch for the append phase: two fresh baskets, disjoint from any
# generated BID, shared read-only by every session (appends are COW
# session-local, so concurrent clients never see each other's rows).
DELTA_TSV = ("BID\tItem\n"
             "9001\t1\n9001\t2\n9001\t3\n"
             "9002\t1\n9002\t2\n")


TIMING_RE = re.compile(r"in [0-9]+(\.[0-9]+)? ms")
# The RUN mode tag's incremental decision depends on history ("build" on
# a first run, "rebuild(lineage)" after a GEN replaced the relation in a
# later round), so only incremental-vs-not survives normalization.
MODE_RE = re.compile(r"\(INCREMENTAL:.*\)")


def normalize(text: str) -> str:
    return MODE_RE.sub("(INCREMENTAL)", TIMING_RE.sub("in ? ms", text))


def run_client(host, port, i, rounds, delta_path, latencies_ns, outputs,
               errors):
    try:
        client = Client(host, port)
        transcript = []
        for _ in range(rounds):
            out = []
            for stmt in workload(i, delta_path):
                start = time.perf_counter_ns()
                out.append(client.execute(stmt))
                latencies_ns.append(time.perf_counter_ns() - start)
            transcript = out  # every round produces identical output
        outputs[i] = normalize("".join(transcript))
        client.close()
    except Exception as exc:  # noqa: BLE001 — reported, fails the run
        errors.append(f"client {i}: {exc}")


def serial_transcript(qfshell: str, i: int, delta_path) -> str:
    with tempfile.NamedTemporaryFile(
            "w", suffix=".qf", delete=False) as script:
        script.write(";\n".join(workload(i, delta_path)) + ";\n")
        path = script.name
    try:
        proc = subprocess.run([qfshell, path], capture_output=True,
                              text=True, timeout=120, check=True)
        return normalize(proc.stdout)
    finally:
        os.unlink(path)


ROWCOUNT_RE = re.compile(r"\b\d+ rows\b")


def run_chaos_client(host, port, i, delta_path, kill_budget, results,
                     errors):
    """One drill lane: the session workload through a killing proxy."""
    proxy = ChaosProxy(host, port, budget=kill_budget, grow=kill_budget)
    try:
        client = Client("127.0.0.1", proxy.port, retries=64)
        out = [client.execute(stmt) for stmt in workload(i, delta_path)]
        client.close()
        results[i] = {
            "transcript": normalize("".join(out)),
            "reconnects": client.reconnects,
            "kills": proxy.kills,
        }
    except Exception as exc:  # noqa: BLE001 — reported, fails the drill
        errors.append(f"chaos client {i}: {exc}")
    finally:
        proxy.close()


def chaos_drill(args, port, delta_path) -> int:
    """The --chaos mode: proxy-killed connections must be invisible.

    Per client: a fault-free oracle run straight at the server, then the
    same workload through a ChaosProxy whose byte budget guarantees
    repeated mid-conversation kills. Transcripts must match byte for
    byte (timings normalized); the row counts every mutation reports
    make a double-applied or dropped mutation a divergence.
    """
    clients = args.clients
    oracle = {}
    for i in range(clients):
        client = Client(args.host, port, retries=0)
        oracle[i] = normalize(
            "".join(client.execute(s) for s in workload(i, delta_path)))
        client.close()

    results = {}
    errors = []
    threads = [
        threading.Thread(target=run_chaos_client,
                         args=(args.host, port, i, delta_path,
                               args.kill_budget + 97 * i, results, errors))
        for i in range(clients)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    for message in errors:
        print(f"FAIL: {message}", file=sys.stderr)
    if errors:
        return 1

    divergences = 0
    duplicate_mutations = 0
    total_kills = sum(results[i]["kills"] for i in results)
    total_reconnects = sum(results[i]["reconnects"] for i in results)
    for i in range(clients):
        if results[i]["transcript"] != oracle[i]:
            divergences += 1
            got = ROWCOUNT_RE.findall(results[i]["transcript"])
            want = ROWCOUNT_RE.findall(oracle[i])
            if got != want:
                duplicate_mutations += 1
            print(f"FAIL: chaos client {i} diverged from its oracle "
                  f"(row counts {'differ' if got != want else 'match'})",
                  file=sys.stderr)
    print(f"chaos drill: {clients} clients, {total_kills} proxy kills, "
          f"{total_reconnects} resumes, {divergences} divergences, "
          f"{duplicate_mutations} duplicate mutations")
    if total_kills == 0:
        print("FAIL: the proxy never killed a connection — lower "
              "--kill-budget", file=sys.stderr)
        return 1

    report = {
        "context": {
            "date": datetime.datetime.now(
                datetime.timezone.utc).isoformat(),
            "executable": args.serverd or f"{args.host}:{port}",
            "num_cpus": os.cpu_count(),
            "load_test": vars(args),
        },
        "suites": {"chaos_drill": [{
            "name": f"LT_Chaos/clients:{clients}",
            "run_name": f"LT_Chaos/clients:{clients}",
            "run_type": "iteration",
            "repetitions": 1,
            "threads": clients,
            "iterations": total_kills,
            "real_time": 0.0,
            "cpu_time": 0.0,
            "time_unit": "ns",
            "proxy_kills": total_kills,
            "resumes": total_reconnects,
            "divergences": divergences,
            "duplicate_mutations": duplicate_mutations,
        }]},
    }
    with open(args.out, "w") as f:
        json.dump(report, f, indent=1)
        f.write("\n")
    print(f"wrote {args.out}")
    return 1 if divergences else 0


def percentile(sorted_values, p):
    if not sorted_values:
        return 0.0
    k = min(len(sorted_values) - 1,
            int(round(p / 100.0 * (len(sorted_values) - 1))))
    return float(sorted_values[k])


def main() -> int:
    parser = argparse.ArgumentParser(
        description="concurrent load test for qfserverd")
    parser.add_argument("--serverd", help="qfserverd binary to spawn "
                        "(omit to use a running server)")
    parser.add_argument("--qfshell", help="qfshell binary for the serial "
                        "divergence check")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7464)
    parser.add_argument("--clients", type=int, default=64)
    parser.add_argument("--rounds", type=int, default=1,
                        help="workload repetitions per client")
    parser.add_argument("--executors", type=int, default=4)
    parser.add_argument("--out", default="BENCH_PR6.json")
    parser.add_argument("--no-append", action="store_true",
                        help="skip the append-heavy incremental phase")
    parser.add_argument("--chaos", action="store_true",
                        help="run the fault drill: clients talk through "
                        "a connection-killing proxy and must still match "
                        "a fault-free oracle byte for byte")
    parser.add_argument("--kill-budget", type=int, default=400,
                        help="chaos proxy: bytes forwarded before the "
                        "first kill (grows per reconnect)")
    args = parser.parse_args()

    delta_path = None
    if not args.no_append:
        with tempfile.NamedTemporaryFile(
                "w", suffix=".tsv", delete=False) as delta:
            delta.write(DELTA_TSV)
            delta_path = delta.name

    server = None
    port = args.port
    if args.serverd:
        port = 7473  # fixed test port, distinct from the default
        server = subprocess.Popen(
            [args.serverd, "--port", str(port),
             "--executors", str(args.executors),
             "--max-queue", "1024", "--quota", "64",
             "--max-sessions", str(args.clients + 8)],
            stdout=subprocess.PIPE, text=True)
        line = server.stdout.readline()
        if "listening" not in line:
            print(f"server failed to start: {line!r}", file=sys.stderr)
            return 1

    try:
        if args.chaos:
            return chaos_drill(args, port, delta_path)

        latencies_ns = []  # list.append is atomic under the GIL
        outputs = {}
        errors = []
        threads = [
            threading.Thread(target=run_client,
                             args=(args.host, port, i, args.rounds,
                                   delta_path, latencies_ns, outputs,
                                   errors))
            for i in range(args.clients)
        ]
        wall_start = time.perf_counter_ns()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        wall_ns = time.perf_counter_ns() - wall_start

        for message in errors:
            print(f"FAIL: {message}", file=sys.stderr)
        if errors:
            return 1

        divergences = 0
        if args.qfshell:
            for i in range(args.clients):
                expected = serial_transcript(args.qfshell, i, delta_path)
                if outputs[i] != expected:
                    divergences += 1
                    print(f"FAIL: client {i} diverged from serial shell",
                          file=sys.stderr)
            print(f"divergence check: {args.clients} clients, "
                  f"{divergences} divergences")
            if divergences:
                return 1

        statements = len(latencies_ns)
        lat = sorted(latencies_ns)
        throughput = statements / (wall_ns / 1e9) if wall_ns else 0.0
        summary = {
            "clients": args.clients,
            "rounds": args.rounds,
            "statements": statements,
            "wall_s": wall_ns / 1e9,
            "throughput_stmt_per_s": throughput,
            "latency_ms": {
                "p50": percentile(lat, 50) / 1e6,
                "p90": percentile(lat, 90) / 1e6,
                "p99": percentile(lat, 99) / 1e6,
                "max": (lat[-1] / 1e6) if lat else 0.0,
            },
        }
        print(json.dumps(summary, indent=1))

        # google-benchmark-shaped report, mergeable with BENCH_PR3.json
        # tooling (tools/compare_bench.py keys on suites/<name>/<bench>).
        benchmarks = [{
            "name": f"LT_Serve/clients:{args.clients}",
            "run_name": f"LT_Serve/clients:{args.clients}",
            "run_type": "iteration",
            "repetitions": 1,
            "threads": args.clients,
            "iterations": statements,
            "real_time": wall_ns / statements if statements else 0.0,
            "cpu_time": wall_ns / statements if statements else 0.0,
            "time_unit": "ns",
            "items_per_second": throughput,
            "p50_ms": summary["latency_ms"]["p50"],
            "p90_ms": summary["latency_ms"]["p90"],
            "p99_ms": summary["latency_ms"]["p99"],
        }]
        report = {
            "context": {
                "date": datetime.datetime.now(
                    datetime.timezone.utc).isoformat(),
                "executable": args.serverd or f"{args.host}:{port}",
                "num_cpus": os.cpu_count(),
                "load_test": vars(args),
            },
            "suites": {"load_test": benchmarks},
        }
        with open(args.out, "w") as f:
            json.dump(report, f, indent=1)
            f.write("\n")
        print(f"wrote {args.out}")
        return 0
    finally:
        if server is not None:
            server.terminate()
            server.wait(timeout=30)
        if delta_path is not None:
            os.unlink(delta_path)


if __name__ == "__main__":
    sys.exit(main())
