#!/usr/bin/env python3
"""Compare fresh google-benchmark JSON runs against the committed baseline.

Usage:
    compare_bench.py BASELINE.json FRESH.json [FRESH2.json ...]

BASELINE is the merged BENCH_PR3.json written by tools/run_bench.sh
(``{"context": ..., "suites": {name: [benchmarks...]}}``); each FRESH file
is a raw google-benchmark document. Benchmarks are matched by name across
all suites. A fresh run more than REGRESSION_THRESHOLD slower than the
baseline prints a warning (GitHub Actions ``::warning::`` annotation when
running under CI). The exit code is always 0: CI machines are noisy, so
regressions warn rather than gate — the flat-hash kernel benches
(join/dedup/aggregate) are listed first so they are the easiest to spot.
"""

import json
import os
import sys

REGRESSION_THRESHOLD = 0.10  # warn when fresh is >10% slower

# The kernel benches this repo's perf acceptance tracks; reported first.
KERNEL_PREFIXES = (
    "BM_Micro_JoinBuildProbe",
    "BM_Micro_NaturalJoin",
    "BM_Micro_SemiJoin",
    "BM_Micro_AntiJoin",
    "BM_Micro_Dedup",
    "BM_Micro_ProjectDedup",
    "BM_Micro_GroupCount",
    "BM_Micro_GroupSum",
)


def times_by_name(benchmarks):
    """name -> real_time, preferring median aggregates over raw iterations."""
    out = {}
    for b in benchmarks:
        name = b.get("name", "")
        if b.get("run_type") == "aggregate":
            if b.get("aggregate_name") != "median":
                continue
            name = b.get("run_name", name.removesuffix("_median"))
        elif name in out:
            continue  # keep the first repetition only
        out[name] = (b["real_time"], b.get("time_unit", "ns"))
    return out


def load_baseline(path):
    with open(path) as f:
        doc = json.load(f)
    merged = {}
    for benchmarks in doc.get("suites", {}).values():
        merged.update(times_by_name(benchmarks))
    return merged


def load_fresh(paths):
    merged = {}
    for path in paths:
        with open(path) as f:
            merged.update(times_by_name(json.load(f).get("benchmarks", [])))
    return merged


def main(argv):
    if len(argv) < 3:
        print(__doc__, file=sys.stderr)
        return 2
    baseline = load_baseline(argv[1])
    fresh = load_fresh(argv[2:])
    in_ci = os.environ.get("GITHUB_ACTIONS") == "true"

    common = [n for n in fresh if n in baseline]
    common.sort(key=lambda n: (not n.startswith(KERNEL_PREFIXES), n))
    if not common:
        print("compare_bench: no common benchmark names; nothing to compare")
        return 0

    regressions = 0
    for name in common:
        base_t, unit = baseline[name]
        new_t, _ = fresh[name]
        delta = (new_t - base_t) / base_t if base_t else 0.0
        marker = " "
        if delta > REGRESSION_THRESHOLD:
            regressions += 1
            marker = "!"
            msg = (f"bench regression: {name} {base_t:.1f}{unit} -> "
                   f"{new_t:.1f}{unit} (+{delta * 100:.1f}%)")
            if in_ci:
                print(f"::warning::{msg}")
        print(f"{marker} {name:50s} base={base_t:12.1f}{unit} "
              f"fresh={new_t:12.1f}{unit} {delta * 100:+7.1f}%")

    print(f"compare_bench: {len(common)} compared, {regressions} slower "
          f"than baseline by >{REGRESSION_THRESHOLD * 100:.0f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
