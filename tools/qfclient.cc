// qfclient — command-line client for qfserverd.
//
//   ./qfclient [--host A] [--port N] script.qf     # run a .qf script
//   ./qfclient [--host A] [--port N] -e "RUN f;"   # run statements
//   ./qfclient [--host A] [--port N] --stats       # server metrics tree
//   ./qfclient [--host A] [--port N] --ping        # liveness probe
//   ./qfclient [--host A] [--port N]               # statements on stdin
//
// Extra knobs:
//   --timeout-ms N    socket send/receive timeouts; a statement the
//                     server cannot answer within N ms fails with a typed
//                     DEADLINE_EXCEEDED instead of hanging (default 0 =
//                     wait forever)
//   --retries N       redial budget after a connection loss; the client
//                     RESUMEs its session and replays unanswered
//                     statements exactly-once (default 8; 0 disables)
//
// Statements execute in the server session this process holds; output is
// printed as the serial qfshell would print it. The first error stops the
// run and is reported with its typed status (exit 1).
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "common/string_util.h"
#include "network/client.h"
#include "shell/statement.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--host A] [--port N] [--timeout-ms N] "
               "[--retries N] [script.qf | -e \"stmts\" | --stats | --ping]\n",
               argv0);
  return 2;
}

int RunScript(qf::Client& client, const std::string& script) {
  for (const std::string& statement : qf::SplitStatements(script)) {
    qf::Result<std::string> output = client.Execute(statement);
    if (!output.ok()) {
      std::fprintf(stderr, "error: %s\n", output.status().ToString().c_str());
      return 1;
    }
    std::fputs(output->c_str(), stdout);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  std::uint16_t port = 7464;
  qf::ClientOptions client_options;
  std::string script;
  bool have_script = false;
  bool stats = false;
  bool ping = false;

  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    if (flag == "--stats") {
      stats = true;
    } else if (flag == "--ping") {
      ping = true;
    } else if (flag == "--host" && i + 1 < argc) {
      host = argv[++i];
    } else if (flag == "--port" && i + 1 < argc) {
      qf::Result<std::int64_t> n = qf::ParseInt64(argv[++i]);
      if (!n.ok() || *n < 1 || *n > 65535) return Usage(argv[0]);
      port = static_cast<std::uint16_t>(*n);
    } else if (flag == "--timeout-ms" && i + 1 < argc) {
      qf::Result<std::int64_t> n = qf::ParseInt64(argv[++i]);
      if (!n.ok() || *n < 0) return Usage(argv[0]);
      client_options.timeout_ms = static_cast<int>(*n);
    } else if (flag == "--retries" && i + 1 < argc) {
      qf::Result<std::int64_t> n = qf::ParseInt64(argv[++i]);
      if (!n.ok() || *n < 0) return Usage(argv[0]);
      client_options.max_reconnects = static_cast<int>(*n);
    } else if (flag == "-e" && i + 1 < argc) {
      script = argv[++i];
      have_script = true;
    } else if (!flag.empty() && flag[0] != '-' && !have_script) {
      std::ifstream in(flag);
      if (!in) {
        std::fprintf(stderr, "cannot open %s\n", flag.c_str());
        return 1;
      }
      std::ostringstream buffer;
      buffer << in.rdbuf();
      script = buffer.str();
      have_script = true;
    } else {
      return Usage(argv[0]);
    }
  }

  qf::Result<qf::Client> client =
      qf::Client::Connect(host, port, client_options);
  if (!client.ok()) {
    std::fprintf(stderr, "cannot connect to %s:%u: %s\n", host.c_str(), port,
                 client.status().ToString().c_str());
    return 1;
  }

  if (ping) {
    qf::Status s = client->Ping();
    if (!s.ok()) {
      std::fprintf(stderr, "ping failed: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("pong (session %llu)\n",
                static_cast<unsigned long long>(client->session_id()));
    return 0;
  }
  if (stats) {
    qf::Result<std::string> text = client->Stats();
    if (!text.ok()) {
      std::fprintf(stderr, "stats failed: %s\n",
                   text.status().ToString().c_str());
      return 1;
    }
    std::fputs(text->c_str(), stdout);
    return 0;
  }
  if (!have_script) {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    script = buffer.str();
  }
  return RunScript(*client, script);
}
