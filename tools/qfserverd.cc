// qfserverd — the query-flocks network server.
//
//   ./qfserverd [--port N] [--host A] [--executors N] [--max-queue N]
//               [--quota N] [--max-sessions N] [--preload <dir>]
//               [--init <script.qf>] [--trace <path>]
//               [--idle-timeout-ms N] [--resume-timeout-ms N]
//               [--fault SPEC]
//
//   --port N          TCP port (default 7464, "QF" on a phone pad; 0 =
//                     kernel-assigned, printed on stdout)
//   --host A          bind address (default 127.0.0.1)
//   --executors N     concurrent statement workers (default: hardware)
//   --max-queue N     global admitted-statement queue limit (default 64)
//   --quota N         per-session in-flight statement quota (default 8)
//   --max-sessions N  connection cap (default 256)
//   --preload DIR     LOADDB-style TSV directory loaded once into the
//                     shared read-mostly base database every session sees
//   --init FILE       .qf script executed once at startup; the resulting
//                     relations become the shared base database
//   --trace PATH      JSON-lines per-statement spans (TRACE TO format)
//   --idle-timeout-ms N    probe idle connections with HEARTBEAT frames
//                          every N ms (default 0 = never)
//   --resume-timeout-ms N  how long a dropped v2 session stays resumable
//                          (default 30000; 0 disables resumption)
//   --fault SPEC      chaos-test this server's own socket I/O through the
//                     FaultSocketOps seam. SPEC is comma-separated k=v:
//                       kill-at=N      disconnect at socket op N
//                       kill-every=N   disconnect at op N, 2N, 3N, ...
//                       errno-at=N     fail op N with ECONNRESET
//                       corrupt-at=N   flip one byte at op N
//                       chunk=N        cap every op at N bytes
//                     e.g. --fault kill-every=500,chunk=7
//
// Prints "listening on <host>:<port>" once ready. SIGINT/SIGTERM drain
// gracefully: admitted statements finish and are answered, new ones are
// shed with OVERLOADED, then the process exits 0.
#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>

#include "common/metrics.h"
#include "common/string_util.h"
#include "network/fault_socket.h"
#include "network/server.h"
#include "relational/tsv.h"
#include "shell/shell.h"

namespace {

std::atomic<bool> g_stop{false};

void HandleStop(int) { g_stop.store(true, std::memory_order_relaxed); }

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--port N] [--host A] [--executors N] "
               "[--max-queue N] [--quota N] [--max-sessions N] "
               "[--preload <dir>] [--init <script.qf>] [--trace <path>] "
               "[--idle-timeout-ms N] [--resume-timeout-ms N] "
               "[--fault SPEC]\n",
               argv0);
  return 2;
}

// Parses a --fault SPEC (comma-separated k=v; see the header comment)
// into a FaultSocketConfig. Returns false on an unknown key or a bad
// number.
bool ParseFaultSpec(const std::string& spec, qf::FaultSocketConfig* config) {
  std::istringstream in(spec);
  std::string item;
  while (std::getline(in, item, ',')) {
    std::size_t eq = item.find('=');
    if (eq == std::string::npos) return false;
    std::string key = item.substr(0, eq);
    qf::Result<std::int64_t> n = qf::ParseInt64(item.substr(eq + 1));
    if (!n.ok() || *n < 0) return false;
    if (key == "kill-at") {
      config->fault_at_op = static_cast<std::uint64_t>(*n);
      config->fault = qf::SocketFault::kDisconnect;
    } else if (key == "kill-every") {
      config->fault_at_op = static_cast<std::uint64_t>(*n);
      config->repeat_every = static_cast<std::uint64_t>(*n);
      config->fault = qf::SocketFault::kDisconnect;
    } else if (key == "errno-at") {
      config->fault_at_op = static_cast<std::uint64_t>(*n);
      config->fault = qf::SocketFault::kError;
    } else if (key == "corrupt-at") {
      config->fault_at_op = static_cast<std::uint64_t>(*n);
      config->fault = qf::SocketFault::kCorruptByte;
    } else if (key == "chunk") {
      config->max_chunk = static_cast<std::size_t>(*n);
    } else {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  qf::ServerOptions options;
  options.port = 7464;
  options.executors = std::thread::hardware_concurrency();
  std::string preload_dir;
  std::string init_script;
  std::string trace_path;
  std::string fault_spec;

  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    if (i + 1 >= argc) return Usage(argv[0]);
    std::string value = argv[++i];
    qf::Result<std::int64_t> n = qf::ParseInt64(value);
    if (flag == "--port" && n.ok() && *n >= 0 && *n <= 65535) {
      options.port = static_cast<std::uint16_t>(*n);
    } else if (flag == "--host") {
      options.host = value;
    } else if (flag == "--executors" && n.ok() && *n >= 1) {
      options.executors = static_cast<unsigned>(*n);
    } else if (flag == "--max-queue" && n.ok() && *n >= 1) {
      options.max_queue = static_cast<std::size_t>(*n);
    } else if (flag == "--quota" && n.ok() && *n >= 1) {
      options.session_quota = static_cast<std::size_t>(*n);
    } else if (flag == "--max-sessions" && n.ok() && *n >= 1) {
      options.max_sessions = static_cast<std::size_t>(*n);
    } else if (flag == "--preload") {
      preload_dir = value;
    } else if (flag == "--init") {
      init_script = value;
    } else if (flag == "--trace") {
      trace_path = value;
    } else if (flag == "--idle-timeout-ms" && n.ok() && *n >= 0) {
      options.idle_timeout_ms = static_cast<int>(*n);
    } else if (flag == "--resume-timeout-ms" && n.ok() && *n >= 0) {
      options.resume_timeout_ms = static_cast<int>(*n);
    } else if (flag == "--fault") {
      fault_spec = value;
    } else {
      return Usage(argv[0]);
    }
  }

  std::unique_ptr<qf::FaultSocketOps> fault_ops;
  if (!fault_spec.empty()) {
    qf::FaultSocketConfig fault_config;
    if (!ParseFaultSpec(fault_spec, &fault_config)) {
      std::fprintf(stderr, "bad --fault spec: %s\n", fault_spec.c_str());
      return Usage(argv[0]);
    }
    fault_ops = std::make_unique<qf::FaultSocketOps>(fault_config);
    options.socket_ops = fault_ops.get();
    std::printf("fault injection armed: %s\n", fault_spec.c_str());
  }

  if (!preload_dir.empty()) {
    qf::Result<qf::Database> loaded = qf::LoadDatabase(preload_dir);
    if (!loaded.ok()) {
      std::fprintf(stderr, "preload failed: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
    options.base_db = *std::move(loaded);
    std::printf("preloaded %zu relations from %s\n", options.base_db.size(),
                preload_dir.c_str());
  }
  if (!init_script.empty()) {
    std::ifstream in(init_script);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", init_script.c_str());
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    qf::Shell seed_shell;
    seed_shell.SeedDatabase(options.base_db);
    qf::Result<std::string> out = seed_shell.ExecuteScript(buffer.str());
    if (!out.ok()) {
      std::fprintf(stderr, "init script failed: %s\n",
                   out.status().ToString().c_str());
      return 1;
    }
    std::fputs(out->c_str(), stdout);
    options.base_db = seed_shell.database();
  }

  std::unique_ptr<qf::JsonLinesTraceSink> trace;
  if (!trace_path.empty()) {
    trace = std::make_unique<qf::JsonLinesTraceSink>(trace_path);
    if (!trace->ok()) {
      std::fprintf(stderr, "cannot open trace file: %s\n", trace_path.c_str());
      return 1;
    }
    options.trace = trace.get();
  }

  std::string host = options.host;
  qf::Result<std::unique_ptr<qf::Server>> server =
      qf::Server::Start(std::move(options));
  if (!server.ok()) {
    std::fprintf(stderr, "cannot start server: %s\n",
                 server.status().ToString().c_str());
    return 1;
  }
  std::printf("listening on %s:%u\n", host.c_str(), (*server)->port());
  std::fflush(stdout);

  std::signal(SIGINT, HandleStop);
  std::signal(SIGTERM, HandleStop);
  while (!g_stop.load(std::memory_order_relaxed)) {
    ::usleep(50 * 1000);
  }
  std::printf("draining...\n");
  (*server)->Shutdown();
  qf::ServerStats stats = (*server)->stats();
  std::printf("served %llu statements (%llu shed) across %llu sessions\n",
              static_cast<unsigned long long>(stats.statements_executed),
              static_cast<unsigned long long>(stats.shed_queue_full +
                                              stats.shed_quota +
                                              stats.shed_draining),
              static_cast<unsigned long long>(stats.sessions_opened));
  if (stats.sessions_resumed + stats.replayed_replies > 0) {
    std::printf("resumed %llu sessions, replayed %llu replies\n",
                static_cast<unsigned long long>(stats.sessions_resumed),
                static_cast<unsigned long long>(stats.replayed_replies));
  }
  return 0;
}
