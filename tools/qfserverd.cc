// qfserverd — the query-flocks network server.
//
//   ./qfserverd [--port N] [--host A] [--executors N] [--max-queue N]
//               [--quota N] [--max-sessions N] [--preload <dir>]
//               [--init <script.qf>] [--trace <path>]
//
//   --port N          TCP port (default 7464, "QF" on a phone pad; 0 =
//                     kernel-assigned, printed on stdout)
//   --host A          bind address (default 127.0.0.1)
//   --executors N     concurrent statement workers (default: hardware)
//   --max-queue N     global admitted-statement queue limit (default 64)
//   --quota N         per-session in-flight statement quota (default 8)
//   --max-sessions N  connection cap (default 256)
//   --preload DIR     LOADDB-style TSV directory loaded once into the
//                     shared read-mostly base database every session sees
//   --init FILE       .qf script executed once at startup; the resulting
//                     relations become the shared base database
//   --trace PATH      JSON-lines per-statement spans (TRACE TO format)
//
// Prints "listening on <host>:<port>" once ready. SIGINT/SIGTERM drain
// gracefully: admitted statements finish and are answered, new ones are
// shed with OVERLOADED, then the process exits 0.
#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>

#include "common/metrics.h"
#include "common/string_util.h"
#include "network/server.h"
#include "relational/tsv.h"
#include "shell/shell.h"

namespace {

std::atomic<bool> g_stop{false};

void HandleStop(int) { g_stop.store(true, std::memory_order_relaxed); }

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--port N] [--host A] [--executors N] "
               "[--max-queue N] [--quota N] [--max-sessions N] "
               "[--preload <dir>] [--init <script.qf>] [--trace <path>]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  qf::ServerOptions options;
  options.port = 7464;
  options.executors = std::thread::hardware_concurrency();
  std::string preload_dir;
  std::string init_script;
  std::string trace_path;

  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    if (i + 1 >= argc) return Usage(argv[0]);
    std::string value = argv[++i];
    qf::Result<std::int64_t> n = qf::ParseInt64(value);
    if (flag == "--port" && n.ok() && *n >= 0 && *n <= 65535) {
      options.port = static_cast<std::uint16_t>(*n);
    } else if (flag == "--host") {
      options.host = value;
    } else if (flag == "--executors" && n.ok() && *n >= 1) {
      options.executors = static_cast<unsigned>(*n);
    } else if (flag == "--max-queue" && n.ok() && *n >= 1) {
      options.max_queue = static_cast<std::size_t>(*n);
    } else if (flag == "--quota" && n.ok() && *n >= 1) {
      options.session_quota = static_cast<std::size_t>(*n);
    } else if (flag == "--max-sessions" && n.ok() && *n >= 1) {
      options.max_sessions = static_cast<std::size_t>(*n);
    } else if (flag == "--preload") {
      preload_dir = value;
    } else if (flag == "--init") {
      init_script = value;
    } else if (flag == "--trace") {
      trace_path = value;
    } else {
      return Usage(argv[0]);
    }
  }

  if (!preload_dir.empty()) {
    qf::Result<qf::Database> loaded = qf::LoadDatabase(preload_dir);
    if (!loaded.ok()) {
      std::fprintf(stderr, "preload failed: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
    options.base_db = *std::move(loaded);
    std::printf("preloaded %zu relations from %s\n", options.base_db.size(),
                preload_dir.c_str());
  }
  if (!init_script.empty()) {
    std::ifstream in(init_script);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", init_script.c_str());
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    qf::Shell seed_shell;
    seed_shell.SeedDatabase(options.base_db);
    qf::Result<std::string> out = seed_shell.ExecuteScript(buffer.str());
    if (!out.ok()) {
      std::fprintf(stderr, "init script failed: %s\n",
                   out.status().ToString().c_str());
      return 1;
    }
    std::fputs(out->c_str(), stdout);
    options.base_db = seed_shell.database();
  }

  std::unique_ptr<qf::JsonLinesTraceSink> trace;
  if (!trace_path.empty()) {
    trace = std::make_unique<qf::JsonLinesTraceSink>(trace_path);
    if (!trace->ok()) {
      std::fprintf(stderr, "cannot open trace file: %s\n", trace_path.c_str());
      return 1;
    }
    options.trace = trace.get();
  }

  std::string host = options.host;
  qf::Result<std::unique_ptr<qf::Server>> server =
      qf::Server::Start(std::move(options));
  if (!server.ok()) {
    std::fprintf(stderr, "cannot start server: %s\n",
                 server.status().ToString().c_str());
    return 1;
  }
  std::printf("listening on %s:%u\n", host.c_str(), (*server)->port());
  std::fflush(stdout);

  std::signal(SIGINT, HandleStop);
  std::signal(SIGTERM, HandleStop);
  while (!g_stop.load(std::memory_order_relaxed)) {
    ::usleep(50 * 1000);
  }
  std::printf("draining...\n");
  (*server)->Shutdown();
  qf::ServerStats stats = (*server)->stats();
  std::printf("served %llu statements (%llu shed) across %llu sessions\n",
              static_cast<unsigned long long>(stats.statements_executed),
              static_cast<unsigned long long>(stats.shed_queue_full +
                                              stats.shed_quota +
                                              stats.shed_draining),
              static_cast<unsigned long long>(stats.sessions_opened));
  return 0;
}
