#!/usr/bin/env bash
# Runs the two acceptance benchmark binaries (bench_micro and
# bench_fig2_market_basket) in Release mode with google-benchmark JSON
# output and merges the two documents into BENCH_PR3.json at the repo
# root — the committed baseline that CI compares fresh runs against
# (tools/compare_bench.py, >10% regression warning).
#
# Environment knobs:
#   BUILD_DIR       build tree to use (default: <repo>/build)
#   BENCH_FILTER    --benchmark_filter regex forwarded to both binaries
#   BENCH_MIN_TIME  --benchmark_min_time value (seconds, plain double)
#   OUT             output path (default: <repo>/BENCH_PR3.json)
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${BUILD_DIR:-$ROOT/build}"
OUT="${OUT:-$ROOT/BENCH_PR3.json}"

cmake -B "$BUILD" -S "$ROOT" -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$BUILD" -j "$(nproc)" \
  --target bench_micro bench_fig2_market_basket

args=()
[[ -n "${BENCH_FILTER:-}" ]] && args+=("--benchmark_filter=${BENCH_FILTER}")
[[ -n "${BENCH_MIN_TIME:-}" ]] && args+=("--benchmark_min_time=${BENCH_MIN_TIME}")

"$BUILD/bench/bench_micro" \
  --benchmark_out="$BUILD/BENCH_micro.json" \
  --benchmark_out_format=json "${args[@]+"${args[@]}"}"
"$BUILD/bench/bench_fig2_market_basket" \
  --benchmark_out="$BUILD/BENCH_fig2_market_basket.json" \
  --benchmark_out_format=json "${args[@]+"${args[@]}"}"

python3 - "$BUILD/BENCH_micro.json" "$BUILD/BENCH_fig2_market_basket.json" \
  "$OUT" <<'EOF'
import json, sys
micro, fig2, out = sys.argv[1:4]
with open(micro) as f:
    m = json.load(f)
with open(fig2) as f:
    g = json.load(f)
merged = {
    "context": m["context"],
    "suites": {
        "bench_micro": m["benchmarks"],
        "bench_fig2_market_basket": g["benchmarks"],
    },
}
with open(out, "w") as f:
    json.dump(merged, f, indent=1)
    f.write("\n")
EOF

echo "wrote $OUT"
