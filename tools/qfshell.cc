// qfshell — the interactive query-flocks processor.
//
//   ./qfshell                 # REPL on stdin
//   ./qfshell script.qf       # execute a script file
//
// See `HELP;` or src/shell/shell.h for the statement language.
#include <atomic>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "shell/shell.h"

namespace {

// Set by SIGINT; every governed statement polls it and aborts with
// CANCELLED. The REPL clears it after each statement, so one ctrl-C kills
// the running query, not the session.
std::atomic<bool> g_interrupted{false};

void HandleSigint(int) { g_interrupted.store(true, std::memory_order_relaxed); }

int RunScript(qf::Shell& shell, const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  qf::Result<std::string> output = shell.ExecuteScript(buffer.str());
  g_interrupted.store(false, std::memory_order_relaxed);
  if (!output.ok()) {
    std::fprintf(stderr, "error: %s\n", output.status().ToString().c_str());
    return 1;
  }
  std::fputs(output->c_str(), stdout);
  return 0;
}

int RunRepl(qf::Shell& shell) {
  std::printf("query-flocks shell — statements end with ';', HELP; for "
              "help, ctrl-D to exit\n");
  std::string pending;
  std::string line;
  std::printf("qf> ");
  std::fflush(stdout);
  while (std::getline(std::cin, line)) {
    pending += line + "\n";
    // Execute once the buffer holds at least one full statement.
    if (line.find(';') != std::string::npos) {
      qf::Result<std::string> output = shell.ExecuteScript(pending);
      g_interrupted.store(false, std::memory_order_relaxed);
      if (output.ok()) {
        std::fputs(output->c_str(), stdout);
      } else {
        std::printf("error: %s\n", output.status().ToString().c_str());
      }
      pending.clear();
    }
    std::printf(pending.empty() ? "qf> " : "  > ");
    std::fflush(stdout);
  }
  std::printf("\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  qf::Shell shell;
  shell.set_cancel_flag(&g_interrupted);
  std::signal(SIGINT, HandleSigint);
  if (argc > 1) return RunScript(shell, argv[1]);
  return RunRepl(shell);
}
