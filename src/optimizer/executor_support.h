// Glue between the plan executor and the cost-based optimizer: a
// StepOrderChooser that orders each step's joins with the Selinger DP of
// join_order.h, using exact statistics for the relations earlier steps
// materialized (the executor hands them over at run time, so the ordering
// of later steps benefits from the true prefilter selectivities — the
// cheap half of the paper's §4.4 observation that sizes are best known
// once seen).
#ifndef QF_OPTIMIZER_EXECUTOR_SUPPORT_H_
#define QF_OPTIMIZER_EXECUTOR_SUPPORT_H_

#include "optimizer/cost_model.h"
#include "plan/executor.h"

namespace qf {

// Returns a chooser for ExecutePlan's options.order_chooser. Base-relation
// statistics are computed once, lazily, on first use; statistics for
// materialized step relations are computed per call (they are small).
StepOrderChooser CostBasedOrderChooser(CostModelConfig config = {});

// Convenience wrapper: ExecutePlan with cost-based join ordering.
// `threads` is PlanExecOptions::threads (1 = serial; any value yields the
// same result).
Result<Relation> ExecutePlanOptimized(const QueryPlan& plan,
                                      const QueryFlock& flock,
                                      const Database& db,
                                      PlanExecInfo* info = nullptr,
                                      unsigned threads = 1);

}  // namespace qf

#endif  // QF_OPTIMIZER_EXECUTOR_SUPPORT_H_
