#include "optimizer/join_order.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace qf {
namespace {

constexpr std::size_t kDpLimit = 16;

std::size_t CountPositives(const ConjunctiveQuery& cq) {
  std::size_t n = 0;
  for (const Subgoal& s : cq.subgoals) n += s.is_positive();
  return n;
}

// Exact left-deep DP: state = subset of positive subgoals joined so far.
// We re-estimate each candidate order's cost with the cost model's
// sequential estimator, memoizing per subset the best (cost, order).
std::vector<std::size_t> DpOrder(const ConjunctiveQuery& cq,
                                 const CostModel& model, std::size_t n) {
  struct State {
    double cost = std::numeric_limits<double>::infinity();
    std::vector<std::size_t> order;
  };
  std::vector<State> best(std::size_t{1} << n);
  best[0].cost = 0;
  for (std::size_t mask = 0; mask + 1 < best.size(); ++mask) {
    if (!std::isfinite(best[mask].cost)) continue;
    for (std::size_t next = 0; next < n; ++next) {
      if (mask & (std::size_t{1} << next)) continue;
      std::size_t new_mask = mask | (std::size_t{1} << next);
      std::vector<std::size_t> order = best[mask].order;
      order.push_back(next);
      double cost = model.EstimateCq(cq, order).cost;
      if (cost < best[new_mask].cost) {
        best[new_mask].cost = cost;
        best[new_mask].order = std::move(order);
      }
    }
  }
  return best.back().order;
}

// Greedy fallback: start from the smallest estimated subgoal, repeatedly
// append the subgoal minimizing the next intermediate size.
std::vector<std::size_t> GreedyOrder(const ConjunctiveQuery& cq,
                                     const CostModel& model, std::size_t n) {
  std::vector<std::size_t> order;
  std::vector<bool> used(n, false);
  for (std::size_t step = 0; step < n; ++step) {
    double best_cost = std::numeric_limits<double>::infinity();
    std::size_t best_next = 0;
    for (std::size_t next = 0; next < n; ++next) {
      if (used[next]) continue;
      std::vector<std::size_t> candidate = order;
      candidate.push_back(next);
      double cost = model.EstimateCq(cq, candidate).cost;
      if (cost < best_cost) {
        best_cost = cost;
        best_next = next;
      }
    }
    used[best_next] = true;
    order.push_back(best_next);
  }
  return order;
}

}  // namespace

std::vector<std::size_t> ChooseJoinOrder(const ConjunctiveQuery& cq,
                                         const CostModel& model) {
  std::size_t n = CountPositives(cq);
  if (n <= 1) return n == 1 ? std::vector<std::size_t>{0}
                            : std::vector<std::size_t>{};
  return n <= kDpLimit ? DpOrder(cq, model, n) : GreedyOrder(cq, model, n);
}

FlockEvalOptions ChooseJoinOrders(const QueryFlock& flock,
                                  const CostModel& model) {
  FlockEvalOptions options;
  for (const ConjunctiveQuery& cq : flock.query.disjuncts) {
    CqEvalOptions cq_options;
    cq_options.join_order = ChooseJoinOrder(cq, model);
    options.per_disjunct.push_back(std::move(cq_options));
  }
  return options;
}

}  // namespace qf
