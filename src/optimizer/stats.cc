#include "optimizer/stats.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "relational/value.h"

namespace qf {

std::size_t FrequencyProfile::ValuesWithCountAtLeast(double threshold) const {
  // counts is descending: binary-search the first element below threshold.
  auto it = std::partition_point(
      counts.begin(), counts.end(),
      [threshold](std::size_t c) { return static_cast<double>(c) >= threshold; });
  return static_cast<std::size_t>(it - counts.begin());
}

double FrequencyProfile::MassWithCountAtLeast(double threshold) const {
  std::size_t total = 0;
  std::size_t kept = 0;
  for (std::size_t c : counts) {
    total += c;
    if (static_cast<double>(c) >= threshold) kept += c;
  }
  return total == 0 ? 0.0 : static_cast<double>(kept) / total;
}

RelationStats ComputeStats(const Relation& rel, bool detailed) {
  RelationStats stats;
  stats.rows = rel.size();
  stats.column_distinct.resize(rel.arity(), 0);
  if (detailed) stats.column_profiles.resize(rel.arity());
  for (std::size_t c = 0; c < rel.arity(); ++c) {
    if (detailed) {
      std::unordered_map<Value, std::size_t, ValueHash> counts;
      counts.reserve(rel.size());
      for (const Tuple& t : rel.rows()) ++counts[t[c]];
      stats.column_distinct[c] = counts.size();
      FrequencyProfile& profile = stats.column_profiles[c];
      profile.counts.reserve(counts.size());
      for (const auto& [value, n] : counts) profile.counts.push_back(n);
      std::sort(profile.counts.rbegin(), profile.counts.rend());
    } else {
      std::unordered_set<Value, ValueHash> distinct;
      distinct.reserve(rel.size());
      for (const Tuple& t : rel.rows()) distinct.insert(t[c]);
      stats.column_distinct[c] = distinct.size();
    }
  }
  return stats;
}

DatabaseStats DatabaseStats::Compute(const Database& db, bool detailed) {
  DatabaseStats stats;
  stats.set_generation(db.generation());
  for (const std::string& name : db.Names()) {
    stats.Put(name, ComputeStats(db.Get(name), detailed));
  }
  return stats;
}

const RelationStats* DatabaseStats::Find(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : &it->second;
}

}  // namespace qf
