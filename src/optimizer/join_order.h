// Cost-based join ordering for the positive subgoals of a conjunctive
// query: Selinger-style dynamic programming over subsets (left-deep),
// minimizing the estimated sum of intermediate sizes. Queries with more
// than 16 positive subgoals fall back to a greedy smallest-next order.
#ifndef QF_OPTIMIZER_JOIN_ORDER_H_
#define QF_OPTIMIZER_JOIN_ORDER_H_

#include <cstddef>
#include <vector>

#include "flocks/eval.h"
#include "flocks/flock.h"
#include "optimizer/cost_model.h"

namespace qf {

// Join order (positions into the positive-subgoal list) minimizing the
// model's cost for `cq`.
std::vector<std::size_t> ChooseJoinOrder(const ConjunctiveQuery& cq,
                                         const CostModel& model);

// Per-disjunct orders for a whole flock, packaged as evaluator options.
FlockEvalOptions ChooseJoinOrders(const QueryFlock& flock,
                                  const CostModel& model);

}  // namespace qf

#endif  // QF_OPTIMIZER_JOIN_ORDER_H_
