#include "optimizer/plan_search.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "common/check.h"
#include "datalog/subquery.h"
#include "plan/legality.h"

namespace qf {
namespace {

// One prefilter candidate: a parameter set with, per disjunct, the
// cheapest safe subquery mentioning exactly those parameters.
struct PrefilterCandidate {
  std::set<std::string> parameters;
  std::vector<std::vector<std::size_t>> kept_per_disjunct;
  double survival_fraction = 1.0;  // worst (max) across disjuncts
  double subquery_cost = 0;        // summed across disjuncts
};

std::string StepNameFor(const std::set<std::string>& params) {
  std::string name = "ok";
  for (const std::string& p : params) name += "_" + p;
  return name;
}

// Builds the candidate for `params`, or nullopt if some disjunct has no
// safe subquery with exactly those parameters.
std::optional<PrefilterCandidate> BuildCandidate(
    const QueryFlock& flock, const CostModel& model,
    const std::set<std::string>& params) {
  PrefilterCandidate cand;
  cand.parameters = params;
  cand.survival_fraction = 0;  // max over disjuncts, built up below
  double threshold = flock.filter.threshold;
  for (const ConjunctiveQuery& cq : flock.query.disjuncts) {
    std::vector<SubqueryCandidate> subs =
        EnumerateSafeSubqueriesForParameters(cq, params);
    if (subs.empty()) return std::nullopt;
    double best_cost = std::numeric_limits<double>::infinity();
    const SubqueryCandidate* best = nullptr;
    for (const SubqueryCandidate& s : subs) {
      double cost = model.EstimateCq(s.query).cost;
      if (cost < best_cost) {
        best_cost = cost;
        best = &s;
      }
    }
    cand.kept_per_disjunct.push_back(best->kept);
    cand.subquery_cost += best_cost;
    cand.survival_fraction = std::max(
        cand.survival_fraction,
        model.EstimateFilter(best->query, threshold).survival_fraction);
  }
  return cand;
}

std::vector<std::set<std::string>> CandidateParameterSets(
    const QueryFlock& flock, bool include_multi) {
  std::vector<std::set<std::string>> sets;
  std::vector<std::string> params = flock.ParameterNames();
  for (const std::string& p : params) sets.push_back({p});
  if (include_multi && params.size() > 1) {
    // All 2-subsets, then the full set.
    for (std::size_t i = 0; i < params.size(); ++i) {
      for (std::size_t j = i + 1; j < params.size(); ++j) {
        sets.push_back({params[i], params[j]});
      }
    }
    if (params.size() > 2) {
      sets.emplace_back(params.begin(), params.end());
    }
  }
  return sets;
}

Result<QueryPlan> BuildPlanFromCandidates(
    const QueryFlock& flock,
    const std::vector<const PrefilterCandidate*>& chosen) {
  std::vector<FilterStep> prefilters;
  for (const PrefilterCandidate* cand : chosen) {
    std::vector<std::string> params(cand->parameters.begin(),
                                    cand->parameters.end());
    Result<FilterStep> step =
        MakeFilterStep(flock, StepNameFor(cand->parameters), params,
                       cand->kept_per_disjunct);
    if (!step.ok()) return step.status();
    prefilters.push_back(std::move(*step));
  }
  return PlanWithPrefilters(flock, std::move(prefilters));
}

}  // namespace

Result<QueryPlan> SearchPlanParameterSets(const QueryFlock& flock,
                                          const CostModel& model,
                                          const PlanSearchOptions& options) {
  if (Status s = flock.Validate(); !s.ok()) return s;
  if (!flock.filter.IsSupportStyle()) {
    // The survivor model is COUNT-specific; other monotone filters run the
    // trivial plan.
    return TrivialPlan(flock);
  }
  std::vector<PrefilterCandidate> candidates;
  for (const std::set<std::string>& params : CandidateParameterSets(
           flock, options.include_multi_parameter_sets)) {
    std::optional<PrefilterCandidate> cand =
        BuildCandidate(flock, model, params);
    if (!cand.has_value()) continue;
    if (cand->survival_fraction <= options.max_survival_fraction) {
      candidates.push_back(std::move(*cand));
    }
  }

  // Greedy selection on whole-plan estimated cost: a prefilter earns its
  // place only when the model says its own evaluation costs less than it
  // saves downstream (Ex. 3.2's "whether it is worth basing a preliminary
  // step on (1) and/or (2) depends on the density ..." made operational).
  std::vector<const PrefilterCandidate*> chosen;
  Result<QueryPlan> best_plan = BuildPlanFromCandidates(flock, chosen);
  if (!best_plan.ok()) return best_plan.status();
  double best_cost = EstimatePlanCost(*best_plan, flock, model);
  while (chosen.size() < options.max_prefilters) {
    const PrefilterCandidate* best_add = nullptr;
    QueryPlan best_add_plan;
    for (const PrefilterCandidate& cand : candidates) {
      if (std::find(chosen.begin(), chosen.end(), &cand) != chosen.end()) {
        continue;
      }
      std::vector<const PrefilterCandidate*> trial = chosen;
      trial.push_back(&cand);
      Result<QueryPlan> plan = BuildPlanFromCandidates(flock, trial);
      if (!plan.ok()) continue;
      double cost = EstimatePlanCost(*plan, flock, model);
      if (cost < best_cost) {
        best_cost = cost;
        best_add = &cand;
        best_add_plan = std::move(*plan);
      }
    }
    if (best_add == nullptr) break;
    chosen.push_back(best_add);
    *best_plan = std::move(best_add_plan);
  }
  return best_plan;
}

Result<QueryPlan> CascadePlan(
    const QueryFlock& flock,
    const std::vector<std::vector<std::size_t>>& prefixes) {
  if (Status s = flock.Validate(); !s.ok()) return s;
  if (flock.query.disjuncts.size() != 1) {
    return UnimplementedError(
        "cascade plans are defined for single-disjunct flocks");
  }
  const ConjunctiveQuery& original = flock.query.disjuncts.front();

  QueryPlan plan;
  for (std::size_t k = 0; k < prefixes.size(); ++k) {
    // Parameters of this step: those of its kept subgoals plus everything
    // carried by the referenced previous step.
    std::set<std::string> params;
    for (std::size_t i : prefixes[k]) {
      if (i >= original.subgoals.size()) {
        return InvalidArgumentError("prefix subgoal index out of range");
      }
      for (const Term& t : original.subgoals[i].terms()) {
        if (t.is_parameter()) params.insert(t.name());
      }
    }
    std::vector<const FilterStep*> use;
    if (k > 0) {
      use.push_back(&plan.steps.back());
      params.insert(plan.steps[k - 1].parameters.begin(),
                    plan.steps[k - 1].parameters.end());
    }
    Result<FilterStep> step = MakeFilterStep(
        flock, "ok" + std::to_string(k),
        std::vector<std::string>(params.begin(), params.end()), prefixes[k],
        use);
    if (!step.ok()) return step.status();
    plan.steps.push_back(std::move(*step));
  }

  // Final step: the whole query plus the last cascade relation.
  std::vector<std::size_t> all(original.subgoals.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  std::vector<const FilterStep*> use;
  if (!plan.steps.empty()) use.push_back(&plan.steps.back());
  Result<FilterStep> final_step =
      MakeFilterStep(flock, "result", flock.ParameterNames(), all, use);
  if (!final_step.ok()) return final_step.status();
  plan.steps.push_back(std::move(*final_step));
  return plan;
}

double EstimatePlanCost(const QueryPlan& plan, const QueryFlock& flock,
                        const CostModel& model) {
  DatabaseStats stats = model.stats();
  double threshold =
      flock.filter.IsSupportStyle() ? flock.filter.threshold : 1.0;
  double total = 0;
  for (const FilterStep& step : plan.steps) {
    CostModel local(stats, model.config());
    double survivors = 0;
    for (const ConjunctiveQuery& cq : step.query.disjuncts) {
      CostModel::CqEstimate est = local.EstimateCq(cq);
      total += est.cost;
      survivors =
          std::max(survivors, local.EstimateFilter(cq, threshold).survivors);
    }
    RelationStats step_stats;
    step_stats.rows = static_cast<std::size_t>(std::ceil(survivors));
    step_stats.column_distinct.assign(step.parameters.size(),
                                      std::max<std::size_t>(
                                          step_stats.rows, 1));
    stats.Put(step.result_name, step_stats);
  }
  return total;
}

Result<SearchResult> ExhaustivePrefilterSearch(const QueryFlock& flock,
                                               const CostModel& model,
                                               std::size_t max_candidates) {
  if (Status s = flock.Validate(); !s.ok()) return s;
  if (!flock.filter.IsSupportStyle()) {
    return FailedPreconditionError(
        "exhaustive search requires a support-style filter");
  }
  std::vector<PrefilterCandidate> candidates;
  for (const std::set<std::string>& params :
       CandidateParameterSets(flock, /*include_multi=*/true)) {
    std::optional<PrefilterCandidate> cand =
        BuildCandidate(flock, model, params);
    if (cand.has_value()) candidates.push_back(std::move(*cand));
  }
  if (candidates.size() > max_candidates) candidates.resize(max_candidates);

  SearchResult best;
  best.estimated_cost = std::numeric_limits<double>::infinity();
  std::size_t n = candidates.size();
  QF_CHECK_MSG(n < 20, "too many prefilter candidates for exhaustion");
  for (std::size_t mask = 0; mask < (std::size_t{1} << n); ++mask) {
    std::vector<const PrefilterCandidate*> chosen;
    for (std::size_t i = 0; i < n; ++i) {
      if (mask & (std::size_t{1} << i)) chosen.push_back(&candidates[i]);
    }
    Result<QueryPlan> plan = BuildPlanFromCandidates(flock, chosen);
    if (!plan.ok()) continue;
    ++best.plans_considered;
    double cost = EstimatePlanCost(*plan, flock, model);
    if (cost < best.estimated_cost) {
      best.estimated_cost = cost;
      best.plan = std::move(*plan);
    }
  }
  if (!std::isfinite(best.estimated_cost)) {
    return InternalError("no legal plan found");
  }
  return best;
}

}  // namespace qf
