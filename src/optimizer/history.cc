#include "optimizer/history.h"

#include <cinttypes>
#include <cstdio>

#include "relational/serialize.h"

namespace qf {

void OutcomeHistory::Record(const BanditOutcome& outcome) {
  ArmStats& cell = cells_[outcome.context][outcome.arm];
  ++cell.plays;
  cell.total_wall_ms += outcome.wall_ms;
  cell.total_rows += outcome.rows;
  cell.total_skew += outcome.skew;
  cell.last_wall_ms = outcome.wall_ms;
}

const ArmStats* OutcomeHistory::Find(std::uint64_t context,
                                     const std::string& arm) const {
  auto ctx = cells_.find(context);
  if (ctx == cells_.end()) return nullptr;
  auto it = ctx->second.find(arm);
  return it == ctx->second.end() ? nullptr : &it->second;
}

const std::map<std::string, ArmStats>* OutcomeHistory::FindContext(
    std::uint64_t context) const {
  auto ctx = cells_.find(context);
  return ctx == cells_.end() ? nullptr : &ctx->second;
}

std::uint64_t OutcomeHistory::total_plays() const {
  std::uint64_t n = 0;
  for (const auto& [context, arms] : cells_) {
    for (const auto& [arm, stats] : arms) n += stats.plays;
  }
  return n;
}

void OutcomeHistory::EncodeTo(std::string& out) const {
  PutU32(out, static_cast<std::uint32_t>(cells_.size()));
  for (const auto& [context, arms] : cells_) {
    PutU64(out, context);
    PutU32(out, static_cast<std::uint32_t>(arms.size()));
    for (const auto& [arm, stats] : arms) {
      PutString(out, arm);
      PutU64(out, stats.plays);
      PutF64(out, stats.total_wall_ms);
      PutF64(out, stats.total_rows);
      PutF64(out, stats.total_skew);
      PutF64(out, stats.last_wall_ms);
    }
  }
}

Status OutcomeHistory::DecodeFrom(ByteReader& in) {
  cells_.clear();
  std::uint32_t n_contexts = 0;
  if (!in.GetU32(&n_contexts)) {
    return CorruptWalError("malformed optimizer history header");
  }
  for (std::uint32_t i = 0; i < n_contexts; ++i) {
    std::uint64_t context = 0;
    std::uint32_t n_arms = 0;
    if (!in.GetU64(&context) || !in.GetU32(&n_arms)) {
      return CorruptWalError("malformed optimizer history context");
    }
    std::map<std::string, ArmStats>& arms = cells_[context];
    for (std::uint32_t j = 0; j < n_arms; ++j) {
      std::string_view arm;
      ArmStats stats;
      if (!in.GetString(&arm) || !in.GetU64(&stats.plays) ||
          !in.GetF64(&stats.total_wall_ms) || !in.GetF64(&stats.total_rows) ||
          !in.GetF64(&stats.total_skew) || !in.GetF64(&stats.last_wall_ms)) {
        return CorruptWalError("malformed optimizer history arm");
      }
      arms[std::string(arm)] = stats;
    }
  }
  return Status::Ok();
}

std::string OutcomeHistory::Describe() const {
  if (cells_.empty()) return "history: empty\n";
  std::string out = "history: " + std::to_string(cells_.size()) +
                    (cells_.size() == 1 ? " context, " : " contexts, ") +
                    std::to_string(total_plays()) + " outcomes\n";
  char line[256];
  for (const auto& [context, arms] : cells_) {
    std::uint64_t plays = 0;
    for (const auto& [arm, stats] : arms) plays += stats.plays;
    std::snprintf(line, sizeof(line),
                  "context %016" PRIx64 " (%zu arms, %" PRIu64 " plays)\n",
                  context, arms.size(), plays);
    out += line;
    for (const auto& [arm, stats] : arms) {
      std::snprintf(line, sizeof(line),
                    "  %-24s plays=%" PRIu64
                    " mean=%.3fms last=%.3fms rows=%.0f skew=%.2f\n",
                    arm.c_str(), stats.plays, stats.MeanWallMs(),
                    stats.last_wall_ms, stats.MeanRows(), stats.MeanSkew());
      out += line;
    }
  }
  return out;
}

void EncodeBanditOutcome(const BanditOutcome& outcome, std::string& out) {
  PutU64(out, outcome.context);
  PutString(out, outcome.arm);
  PutF64(out, outcome.wall_ms);
  PutF64(out, outcome.rows);
  PutF64(out, outcome.skew);
}

Status DecodeBanditOutcome(ByteReader& in, BanditOutcome* outcome) {
  std::string_view arm;
  if (!in.GetU64(&outcome->context) || !in.GetString(&arm) ||
      !in.GetF64(&outcome->wall_ms) || !in.GetF64(&outcome->rows) ||
      !in.GetF64(&outcome->skew)) {
    return CorruptWalError("malformed bandit outcome record");
  }
  outcome->arm = std::string(arm);
  return Status::Ok();
}

}  // namespace qf
