// Static plan search (§4.3). The space of legal plans is more than
// exponential, so the paper proposes two restrictions, both implemented
// here, plus an exhaustive cost-based search over prefilter subsets used
// by the benches to calibrate the heuristics:
//
//   * Heuristic 1 (parameter sets): choose parameter sets S; for each,
//     choose one safe subquery with exactly the parameters of S; the final
//     step runs the original query plus all the R_S subgoals. This
//     generalizes a-priori for two-item sets and is the shape of Fig. 5.
//
//   * Heuristic 2 (cascade): an ordered list of safe subqueries, each
//     FILTER step adding the previous step's result — the (n+1)-step plan
//     of Fig. 7 for path queries.
#ifndef QF_OPTIMIZER_PLAN_SEARCH_H_
#define QF_OPTIMIZER_PLAN_SEARCH_H_

#include <cstddef>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "flocks/flock.h"
#include "optimizer/cost_model.h"
#include "plan/plan.h"

namespace qf {

struct PlanSearchOptions {
  // Include a prefilter for parameter set S only when the model predicts
  // the surviving fraction of S-assignments is below this.
  double max_survival_fraction = 0.75;
  // Also consider multi-parameter sets (e.g. the ($s,$m) pair subquery (4)
  // of Ex. 3.2), not just singletons.
  bool include_multi_parameter_sets = true;
  // Upper bound on the number of prefilter steps.
  std::size_t max_prefilters = 4;
};

// Heuristic 1. Returns a legal plan: zero or more prefilter steps (one per
// selected parameter set) and the mandatory final step. With no beneficial
// prefilter the result is the trivial plan.
Result<QueryPlan> SearchPlanParameterSets(const QueryFlock& flock,
                                          const CostModel& model,
                                          const PlanSearchOptions& options = {});

// Heuristic 2. Builds a cascade: step k keeps the subgoals
// `prefixes[k]` of each disjunct and references step k-1. The final step
// keeps everything and references the last cascade step. Parameters of
// each step are inferred from its kept subgoals. Single-disjunct flocks
// only (the cascade shape of Fig. 7).
Result<QueryPlan> CascadePlan(const QueryFlock& flock,
                              const std::vector<std::vector<std::size_t>>& prefixes);

// Exhaustive cost-based search over subsets of candidate prefilters (each
// candidate = one parameter set with its cheapest safe subquery), scoring
// each plan with the model. Exponential in the candidate count; callers
// cap it. Returns the best plan and bookkeeping for the benches.
struct SearchResult {
  QueryPlan plan;
  double estimated_cost = 0;
  std::size_t plans_considered = 0;
};
Result<SearchResult> ExhaustivePrefilterSearch(const QueryFlock& flock,
                                               const CostModel& model,
                                               std::size_t max_candidates = 10);

// Model-estimated execution cost of a plan: the sum over steps of the
// estimated join cost of each step's query (prefilter results entering a
// step are sized by the model's filter estimate).
double EstimatePlanCost(const QueryPlan& plan, const QueryFlock& flock,
                        const CostModel& model);

}  // namespace qf

#endif  // QF_OPTIMIZER_PLAN_SEARCH_H_
