// Per-arm outcome history for the learned optimizer (ROADMAP item 4).
//
// The bandit (optimizer/bandit.h) chooses an execution *arm* (a plan /
// join order / §4.4 knob preset) for each flock it runs; this file is
// the memory it learns from. Outcomes are keyed by (context, arm id)
// where the context is a discretized feature hash of the flock shape
// and the relation statistics (bandit.h computes it) and the arm id is
// a stable human-readable string ("dyn:cost:eager", "plan:chosen", ...).
//
// Each cell keeps running sums, not raw samples, so the store is O(arms)
// regardless of how many runs it has seen, and the byte encoding is
// deterministic (std::map iteration order) — the crash-recovery torture
// tests compare encoded catalog state bit-for-bit, so two histories that
// saw the same outcomes in the same order must encode identically.
//
// Durability: the catalog (storage/catalog.h) embeds an OutcomeHistory in
// CatalogState, logs every Record() as a kBanditOutcome WAL record, and
// snapshots the whole store in the state header — learning survives
// OPEN, crash replay, and CHECKPOINT.
#ifndef QF_OPTIMIZER_HISTORY_H_
#define QF_OPTIMIZER_HISTORY_H_

#include <cstdint>
#include <map>
#include <string>

#include "common/status.h"

namespace qf {

class ByteReader;

// One observed execution of an arm, as reported by the shell after a
// learned RUN: wall time, result cardinality, and the estimate-vs-actual
// skew harvested from the OpMetrics tree (1.0 = estimates were exact).
struct BanditOutcome {
  std::uint64_t context = 0;
  std::string arm;
  double wall_ms = 0.0;
  double rows = 0.0;
  double skew = 1.0;
};

// Running aggregate for one (context, arm) cell.
struct ArmStats {
  std::uint64_t plays = 0;
  double total_wall_ms = 0.0;
  double total_rows = 0.0;
  double total_skew = 0.0;
  double last_wall_ms = 0.0;

  double MeanWallMs() const {
    return plays == 0 ? 0.0 : total_wall_ms / static_cast<double>(plays);
  }
  double MeanRows() const {
    return plays == 0 ? 0.0 : total_rows / static_cast<double>(plays);
  }
  double MeanSkew() const {
    return plays == 0 ? 1.0 : total_skew / static_cast<double>(plays);
  }

  bool operator==(const ArmStats&) const = default;
};

// The whole store: context -> arm id -> aggregate. Value-semantic (lives
// inside CatalogState, which is copied wholesale by the commit protocol).
class OutcomeHistory {
 public:
  OutcomeHistory() = default;

  // Folds one outcome into its cell. Replay applies the same call, so
  // WAL recovery reconstructs identical aggregates.
  void Record(const BanditOutcome& outcome);

  // The cell for (context, arm), or nullptr if never played.
  const ArmStats* Find(std::uint64_t context, const std::string& arm) const;
  // All arms recorded under `context`, or nullptr if none.
  const std::map<std::string, ArmStats>* FindContext(
      std::uint64_t context) const;

  std::size_t context_count() const { return cells_.size(); }
  // Total outcomes recorded across all cells.
  std::uint64_t total_plays() const;
  bool empty() const { return cells_.empty(); }
  void clear() { cells_.clear(); }

  // Deterministic binary encoding (serialize.h primitives), used by the
  // catalog snapshot header. Decode replaces *this; malformed input
  // yields CORRUPT_WAL and leaves *this unspecified.
  void EncodeTo(std::string& out) const;
  Status DecodeFrom(ByteReader& in);

  // Human-readable rendering for SHOW OPTIMIZER STATE: one line per
  // context, one indented line per arm, deterministic order.
  std::string Describe() const;

  bool operator==(const OutcomeHistory&) const = default;

 private:
  std::map<std::uint64_t, std::map<std::string, ArmStats>> cells_;
};

// Encodes/decodes one outcome (the kBanditOutcome WAL record body minus
// its record-type byte — storage/catalog.cc frames it).
void EncodeBanditOutcome(const BanditOutcome& outcome, std::string& out);
Status DecodeBanditOutcome(ByteReader& in, BanditOutcome* outcome);

}  // namespace qf

#endif  // QF_OPTIMIZER_HISTORY_H_
