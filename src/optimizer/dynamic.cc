#include "optimizer/dynamic.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <optional>

#include "common/check.h"
#include "flocks/cq_eval.h"
#include "flocks/eval.h"
#include "relational/ops.h"

namespace qf {
namespace {

// "$"-tagged parameter columns present in `schema`.
std::set<std::string> ParamColumnsIn(const Schema& schema) {
  std::set<std::string> out;
  for (const std::string& c : schema.columns()) {
    if (!c.empty() && c[0] == '$') out.insert(c);
  }
  return out;
}

// The candidate-answer view of `rel`: when every head variable is bound
// and the relation carries extra columns, project onto params + head vars
// (a tighter bound on distinct answers). Otherwise `rel` itself — already
// duplicate-free under set semantics — is the (sound) view, and no copy is
// made. Returns a pointer to `rel` or to `storage`.
const Relation* AnswerUpperBoundView(const Relation& rel,
                                     const std::set<std::string>& params,
                                     const std::vector<std::string>& head_vars,
                                     Relation& storage) {
  bool heads_bound = true;
  for (const std::string& h : head_vars) {
    if (!rel.schema().Contains(h)) {
      heads_bound = false;
      break;
    }
  }
  if (!heads_bound || params.size() + head_vars.size() >= rel.arity()) {
    return &rel;
  }
  std::vector<std::string> keep(params.begin(), params.end());
  for (const std::string& h : head_vars) {
    if (!params.contains(h)) keep.push_back(h);
  }
  if (keep.size() >= rel.arity()) return &rel;
  storage = Project(rel, keep);
  return &storage;
}

}  // namespace

Result<Relation> DynamicEvaluate(const QueryFlock& flock, const Database& db,
                                 const DynamicOptions& options,
                                 DynamicLog* log) {
  if (Status s = flock.Validate(&db); !s.ok()) return s;
  if (flock.query.disjuncts.size() != 1) {
    return UnimplementedError(
        "dynamic evaluation handles single-disjunct flocks; union flocks "
        "need union prefilters (§3.4)");
  }
  if (!flock.filter.IsSupportStyle()) {
    return FailedPreconditionError(
        "dynamic filter selection is defined for support-type filters");
  }
  const ConjunctiveQuery& cq = flock.query.disjuncts.front();
  const double threshold = flock.filter.threshold;

  // Partition subgoals, mirroring the static evaluator.
  std::vector<const Subgoal*> positives;
  std::vector<const Subgoal*> comparisons;
  std::vector<const Subgoal*> negations;
  for (const Subgoal& s : cq.subgoals) {
    if (s.is_positive()) {
      positives.push_back(&s);
    } else if (s.is_comparison()) {
      comparisons.push_back(&s);
    } else {
      negations.push_back(&s);
    }
  }
  QF_CHECK(!positives.empty());  // Validate guarantees safety

  std::vector<std::size_t> order = options.join_order;
  if (order.empty()) {
    order.resize(positives.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  } else if (order.size() != positives.size()) {
    return InvalidArgumentError(
        "join_order must be a permutation of the positive subgoals");
  }

  OpMetrics* m = options.metrics;
  TraceSink* tr = m != nullptr ? options.trace : nullptr;
  if (m != nullptr && m->op.empty()) m->op = "dynamic";
  QueryContext* ctx = options.ctx;
  auto governed = [ctx]() {
    return ctx != nullptr ? ctx->Check() : Status::Ok();
  };

  // Binding relations per positive subgoal.
  std::vector<Relation> bindings;
  bindings.reserve(positives.size());
  for (const Subgoal* s : positives) {
    OpMetrics* node = m != nullptr ? m->AddChild("scan", s->predicate())
                                   : nullptr;
    ScopedOp span(node, tr);
    bindings.push_back(
        SubgoalBindings(*s, db.Get(s->predicate()), options.threads, node,
                        ctx));
    if (Status s2 = governed(); !s2.ok()) return s2;
  }
  std::vector<Relation> negation_bindings;
  negation_bindings.reserve(negations.size());
  for (const Subgoal* s : negations) {
    OpMetrics* node =
        m != nullptr ? m->AddChild("scan", "NOT " + s->predicate()) : nullptr;
    ScopedOp span(node, tr);
    negation_bindings.push_back(
        SubgoalBindings(*s, db.Get(s->predicate()), options.threads, node,
                        ctx));
    if (Status s2 = governed(); !s2.ok()) return s2;
  }

  // Ratio history per parameter set (the §4.4 "previously encountered"
  // bookkeeping).
  std::map<std::set<std::string>, double> last_ratio;
  DynamicLog local_log;
  DynamicLog& out_log = log != nullptr ? *log : local_log;

  // Decides and possibly applies a FILTER step on `rel` at point `at`.
  // One group-count pass yields the tuples-per-assignment ratio *and* the
  // per-group sizes; the semi-join is paid only when both the ratio gate
  // and the removed-mass check say filtering is worthwhile.
  auto maybe_filter = [&](Relation& rel, const std::string& at) {
    std::set<std::string> params = ParamColumnsIn(rel.schema());
    if (params.empty() || rel.empty()) return;
    const std::uint64_t start_ns = MetricsNowNs();
    OpMetrics* node = m != nullptr ? m->AddChild("dyn_filter", at) : nullptr;
    ScopedOp span(node, tr);
    Relation view_storage;
    const Relation* view =
        AnswerUpperBoundView(rel, params, cq.head_vars, view_storage);
    std::vector<std::string> param_list(params.begin(), params.end());
    Relation counts;
    {
      OpMetrics* gnode =
          node != nullptr ? node->AddChild("group_by", "COUNT") : nullptr;
      ScopedOp gspan(gnode, tr);
      counts = GroupAggregate(*view, param_list, AggKind::kCount, "", "_n",
                              gnode, ctx);
    }
    std::size_t n_col = counts.schema().IndexOfOrDie("_n");
    double ratio = static_cast<double>(view->size()) /
                   static_cast<double>(counts.size());

    auto it = last_ratio.find(params);
    bool consider;
    if (it == last_ratio.end()) {
      consider = ratio < options.aggressiveness * threshold;
    } else {
      consider = ratio < options.improvement_factor * it->second;
    }

    DynamicDecision decision;
    decision.at = at;
    decision.parameters = params;
    decision.ratio = ratio;
    decision.rows_before = rel.size();

    bool should_filter = false;
    double removed_fraction = 0;
    if (consider) {
      // A low *mean* ratio can hide a head-heavy distribution where the
      // surviving groups hold nearly all tuples; check the mass that
      // would actually be removed.
      double kept_mass = 0;
      double total_mass = 0;
      for (const Tuple& t : counts.rows()) {
        double n = static_cast<double>(t[n_col].AsInt());
        total_mass += n;
        if (n >= threshold) kept_mass += n;
      }
      removed_fraction = total_mass > 0 ? 1.0 - kept_mass / total_mass : 0.0;
      should_filter = removed_fraction >= options.min_removed_fraction;
    }

    if (should_filter) {
      Relation ok = Project(
          Select(counts,
                 [&](const Tuple& t) {
                   return static_cast<double>(t[n_col].AsInt()) >= threshold;
                 }),
          param_list);
      OpMetrics* snode =
          node != nullptr ? node->AddChild("semi_join", "reduce by support")
                          : nullptr;
      ScopedOp sspan(snode, tr);
      rel = SemiJoin(rel, ok, snode, ctx);
      ++out_log.filters_applied;
    }
    if (consider) {
      // A filtering opportunity was fully evaluated (the group counts
      // ran), so the set is "seen" whether or not the semi-join was
      // applied — §4.4's "dropped significantly since the last filtering
      // opportunity" measures from here. The baseline is the observed
      // ratio clamped up to the threshold:
      //   * applied: surviving groups each hold >= threshold tuples, so
      //     the true post-filter ratio is at least the threshold;
      //   * declined by the removed-mass check: the raw ratio may sit far
      //     below the threshold, and recording it would demand the next
      //     ratio beat improvement_factor * (tiny), locking filtering out
      //     permanently even after later joins reshape the distribution.
      //     Clamping keeps the re-consideration bar at
      //     improvement_factor * threshold.
      last_ratio[params] = std::max(ratio, threshold);
    } else if (it == last_ratio.end()) {
      last_ratio[params] = ratio;
    } else {
      it->second = std::min(it->second, ratio);
    }

    decision.considered = consider;
    decision.removed_fraction = removed_fraction;
    decision.filtered = should_filter;
    decision.rows_after = rel.size();
    decision.wall_ns = MetricsNowNs() - start_ns;
    if (node != nullptr) {
      node->rows_in = decision.rows_before;
      node->rows_out = decision.rows_after;
    }
    out_log.decisions.push_back(std::move(decision));
  };

  // Apply comparisons and negations as soon as their columns are bound.
  std::vector<bool> cmp_applied(comparisons.size(), false);
  std::vector<bool> neg_applied(negations.size(), false);
  auto apply_ready = [&](Relation& rel) {
    const Schema* schema = &rel.schema();
    auto bound = [&](const Term& t) {
      return t.is_constant() || schema->Contains(TermColumn(t));
    };
    for (std::size_t i = 0; i < comparisons.size(); ++i) {
      if (cmp_applied[i]) continue;
      const Subgoal& s = *comparisons[i];
      if (!bound(s.lhs()) || !bound(s.rhs())) continue;
      cmp_applied[i] = true;
      const Schema& sch = rel.schema();
      auto value = [&sch](const Term& t, const Tuple& row) -> const Value& {
        return t.is_constant() ? t.constant()
                               : row[sch.IndexOfOrDie(TermColumn(t))];
      };
      rel = Select(rel, [&s, &value](const Tuple& row) {
        return EvalCompare(s.op(), value(s.lhs(), row), value(s.rhs(), row));
      });
      schema = &rel.schema();
    }
    for (std::size_t i = 0; i < negations.size(); ++i) {
      if (neg_applied[i]) continue;
      bool ready = true;
      for (const Term& t : negations[i]->terms()) {
        if (!t.is_constant() && !schema->Contains(TermColumn(t))) {
          ready = false;
          break;
        }
      }
      if (!ready) continue;
      neg_applied[i] = true;
      rel = AntiJoin(rel, negation_bindings[i]);
      schema = &rel.schema();
    }
  };

  // The fold: inspect each leaf before joining it, and the running
  // intermediate after every join.
  maybe_filter(bindings[order[0]], "leaf " + positives[order[0]]->ToString());
  Relation current = std::move(bindings[order[0]]);
  apply_ready(current);
  out_log.peak_rows = current.size();
  for (std::size_t k = 1; k < order.size(); ++k) {
    maybe_filter(bindings[order[k]],
                 "leaf " + positives[order[k]]->ToString());
    {
      OpMetrics* node =
          m != nullptr ? m->AddChild("join", positives[order[k]]->predicate())
                       : nullptr;
      ScopedOp span(node, tr);
      std::uint64_t dropped = static_cast<std::uint64_t>(current.size()) *
                              ApproxTupleBytes(current.arity());
      current = NaturalJoin(current, bindings[order[k]], node, ctx);
      if (ctx != nullptr) {
        ctx->Release(dropped);
        ctx->Release(static_cast<std::uint64_t>(bindings[order[k]].size()) *
                     ApproxTupleBytes(bindings[order[k]].arity()));
        bindings[order[k]] = Relation();
      }
    }
    if (Status s2 = governed(); !s2.ok()) return s2;
    out_log.peak_rows = std::max(out_log.peak_rows, current.size());
    apply_ready(current);
    maybe_filter(current, "after join " + std::to_string(k));
    if (Status s2 = governed(); !s2.ok()) return s2;
  }

  // Mandatory filtering at the root (§4.4: "We must filter at the root").
  std::vector<std::string> param_columns = FlockParameterColumns(flock);
  std::vector<std::string> answer_columns = param_columns;
  for (const std::string& h : cq.head_vars) answer_columns.push_back(h);
  Relation answers;
  {
    OpMetrics* node = m != nullptr ? m->AddChild("project", "answers")
                                   : nullptr;
    ScopedOp span(node, tr);
    answers = Project(current, answer_columns, node, ctx);
  }
  if (Status s2 = governed(); !s2.ok()) return s2;
  Relation counts;
  {
    OpMetrics* node = m != nullptr ? m->AddChild("group_by", "COUNT")
                                   : nullptr;
    ScopedOp span(node, tr);
    counts = GroupAggregate(answers, param_columns, AggKind::kCount, "", "_n",
                            node, ctx);
  }
  if (Status s2 = governed(); !s2.ok()) return s2;
  std::size_t n_col = counts.schema().IndexOfOrDie("_n");
  const FilterCondition& filter = flock.filter;
  Relation passing;
  {
    OpMetrics* node = m != nullptr ? m->AddChild("filter") : nullptr;
    ScopedOp span(node, tr);
    passing = Select(
        counts,
        [&](const Tuple& t) { return filter.Accepts(t[n_col]); }, node, ctx);
  }
  OpMetrics* node = m != nullptr ? m->AddChild("project") : nullptr;
  ScopedOp span(node, tr);
  Relation result = Project(passing, param_columns, node, ctx);
  if (Status s2 = governed(); !s2.ok()) return s2;
  if (m != nullptr) m->rows_out += result.size();
  result.set_name("flock_result");
  return result;
}

std::string RenderDynamicTrace(const DynamicLog& log) {
  std::string out;
  int step = 1;
  for (const DynamicDecision& d : log.decisions) {
    std::string params;
    for (const std::string& p : d.parameters) {
      if (!params.empty()) params += ",";
      params += p;
    }
    char timing[40] = "";
    if (d.wall_ns > 0) {
      std::snprintf(timing, sizeof(timing), "; %.3fms",
                    static_cast<double>(d.wall_ns) / 1e6);
    }
    char buf[224];
    if (d.filtered) {
      std::snprintf(buf, sizeof(buf),
                    "temp%d(%s) := FILTER at %s   [ratio %.2f; %zu -> %zu "
                    "rows%s]\n",
                    step++, params.c_str(), d.at.c_str(), d.ratio,
                    d.rows_before, d.rows_after, timing);
    } else if (d.considered) {
      // The ratio gate passed but the removed-mass check declined the
      // semi-join — the §4.4 group-size-distribution caveat in action.
      std::snprintf(buf, sizeof(buf),
                    "         no filter at %s (%s)   [ratio %.2f; would "
                    "remove %.0f%%; %zu rows%s]\n",
                    d.at.c_str(), params.c_str(), d.ratio,
                    d.removed_fraction * 100.0, d.rows_before, timing);
    } else {
      std::snprintf(buf, sizeof(buf),
                    "         no filter at %s (%s)   [ratio %.2f; %zu "
                    "rows%s]\n",
                    d.at.c_str(), params.c_str(), d.ratio, d.rows_before,
                    timing);
    }
    out += buf;
  }
  char tail[96];
  std::snprintf(tail, sizeof(tail),
                "%zu filter(s) applied; peak intermediate %zu rows\n",
                log.filters_applied, log.peak_rows);
  out += tail;
  return out;
}

}  // namespace qf
