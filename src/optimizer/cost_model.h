// Cardinality and cost estimation for extended conjunctive queries, in the
// System-R tradition ([G*79], which the paper cites as the machinery to
// reuse): uniformity and independence assumptions, per-column distinct
// counts as the primitive statistic.
//
// Estimates drive three decisions:
//   * join ordering (optimizer/join_order.h),
//   * which FILTER steps to include in a static plan
//     (optimizer/plan_search.h),
//   * nothing in the dynamic strategy (§4.4), which instead reacts to
//     *observed* intermediate sizes — that contrast is the point of the
//     paper's §4.4 and of bench_fig9_dynamic.
#ifndef QF_OPTIMIZER_COST_MODEL_H_
#define QF_OPTIMIZER_COST_MODEL_H_

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "datalog/ast.h"
#include "optimizer/stats.h"

namespace qf {

// Tunable selectivities for subgoals the distinct-count model cannot see
// through.
struct CostModelConfig {
  double inequality_selectivity = 0.5;   // X < Y, X <= Y, ...
  double not_equal_selectivity = 0.98;   // X != Y
  double negation_selectivity = 0.7;     // NOT p(...)
  // Distinct count assumed for columns of unknown relations.
  double default_distinct = 1000;
  double default_rows = 10000;
};

class CostModel {
 public:
  explicit CostModel(DatabaseStats stats, CostModelConfig config = {})
      : stats_(std::move(stats)), config_(config) {}
  explicit CostModel(const Database& db, CostModelConfig config = {})
      : CostModel(DatabaseStats::Compute(db), config) {}

  const CostModelConfig& config() const { return config_; }
  const DatabaseStats& stats() const { return stats_; }

  // Estimated rows of the binding relation of one relational subgoal
  // (constants and repeated terms reduce the base cardinality).
  double EstimateSubgoalRows(const Subgoal& subgoal) const;

  // Estimated distinct values of `column` (TermColumn naming, "X" or "$p")
  // across the query: the minimum distinct count over the positions where
  // the column occurs in positive subgoals.
  double EstimateColumnDistinct(const ConjunctiveQuery& cq,
                                const std::string& column) const;

  struct CqEstimate {
    double result_rows = 0;   // bindings after all subgoals
    double cost = 0;          // sum of intermediate join sizes (work proxy)
  };

  // Estimates evaluating `cq`'s body with positive subgoals joined in
  // `order` (empty = text order). Comparison/negation selectivities are
  // applied at the first point all their columns are bound.
  CqEstimate EstimateCq(const ConjunctiveQuery& cq,
                        const std::vector<std::size_t>& order = {}) const;

  // Estimated number of parameter assignments of `cq` surviving a support
  // filter COUNT >= threshold, and the estimated survival fraction.
  //
  // Model: distinct assignments D = prod over params of distinct counts;
  // average answers per assignment g = result_rows / D; group sizes are
  // taken as exponential with mean g, so the survival fraction is
  // exp(-(threshold-1)/g). Crude, but smooth and monotone in the right
  // directions, which is all plan *ranking* needs.
  struct FilterEstimate {
    double assignments = 0;
    double survivors = 0;
    double survival_fraction = 1.0;
  };
  FilterEstimate EstimateFilter(const ConjunctiveQuery& cq,
                                double threshold) const;

 private:
  DatabaseStats stats_;
  CostModelConfig config_;
};

}  // namespace qf

#endif  // QF_OPTIMIZER_COST_MODEL_H_
