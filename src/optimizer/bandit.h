// Learned plan selection (ROADMAP item 4): a contextual UCB bandit that
// chooses *how* to run a flock — which safe plan shape, which join
// orders, which §4.4 dynamic-filter knobs — from the outcome history of
// earlier runs (optimizer/history.h).
//
// Scope and safety: every arm is one of the engine's existing
// legality-checked evaluation strategies (EvaluateFlock with explicit
// join orders, the §4.3 static plan search, §4.4 dynamic filtering), so
// an arm can only change *speed*, never results — the differential suite
// in tests/learned_optimizer_test.cc pins learned RUN output bit-equal
// to static mode at every thread count. The bandit ranks arms by
// *cost* (mean wall time), so UCB here is "lower confidence bound wins":
// the exploration bonus is subtracted from each arm's mean.
//
// Context: arms are compared only against history from flocks that look
// alike. The context key discretizes (a) the flock's shape — subgoal
// kinds, predicate names, parameter positions, filter shape — (b) the
// filter threshold's magnitude, and (c) the total base-relation mass,
// each as coarse log2 buckets, hashed together (FNV-1a). Repeated runs
// of a similar flock over similarly-sized data land in the same cell;
// a reload at 10x the data or a support sweep to a different decade
// starts a fresh cell instead of inheriting stale timings.
#ifndef QF_OPTIMIZER_BANDIT_H_
#define QF_OPTIMIZER_BANDIT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "flocks/flock.h"
#include "optimizer/cost_model.h"
#include "optimizer/history.h"

namespace qf {

// The §4.4 knob preset an arm carries (mirrors DynamicOptions; kept as a
// plain struct so bandit.h does not depend on the evaluator headers).
struct DynamicKnobs {
  double aggressiveness = 1.0;
  double improvement_factor = 0.5;
  double min_removed_fraction = 0.2;

  bool operator==(const DynamicKnobs&) const = default;
};

// One way to run a flock. `id` is the stable history key — renaming an
// arm orphans its learned history, so ids are part of the persistence
// contract (DESIGN.md §15).
struct BanditArm {
  enum class Kind {
    kPlan,     // §4.3 static plan search + plan executor
    kDirect,   // EvaluateFlock with explicit per-disjunct join orders
    kDynamic,  // §4.4 DynamicEvaluate with `knobs` and orders[0]
  };

  std::string id;
  Kind kind = Kind::kDirect;
  // Per-disjunct join orders for kDirect (empty inner vector = text
  // order); for kDynamic only orders[0] is used. Ignored for kPlan.
  std::vector<std::vector<std::size_t>> orders;
  DynamicKnobs knobs;  // kDynamic only
};

// The discretized feature vector, hashed. `description` is the
// human-readable rendering SHOW OPTIMIZER STATE and EXPLAIN ANALYZE use.
struct PlanContext {
  std::uint64_t key = 0;
  std::string description;
};

// Data-independent hash of the flock's structure: disjunct count, subgoal
// kinds and predicate names, term kinds (parameter names included —
// which positions are parameters is the core of the flock's shape),
// filter aggregate/comparison. Stable across runs and processes.
std::uint64_t FlockShapeHash(const QueryFlock& flock);

// Shape hash + log2 bucket of the filter threshold + log2 bucket of the
// total rows of the base relations the flock mentions.
PlanContext MakePlanContext(const QueryFlock& flock, const CostModel& model);

// The candidate arms for `flock`, in deterministic order. Always includes
// the static-plan arm and the cost-ordered and text-ordered direct arms
// (deduplicated when the cost order *is* the text order); when
// `dynamic_eligible` (single disjunct, support filter, no view
// predicates — the DynamicEvaluate preconditions, which the caller
// checks), adds §4.4 arms over `session_knobs` and two contrasting
// presets. Arms are re-enumerated per run: "direct:cost" always means
// "the cost model's current order", so plans track statistics while the
// history tracks the strategy.
std::vector<BanditArm> EnumerateArms(const QueryFlock& flock,
                                     const CostModel& model,
                                     bool dynamic_eligible,
                                     const DynamicKnobs& session_knobs);

// The bandit's decision for one run.
struct BanditChoice {
  std::size_t index = 0;     // into the arms vector passed to Choose
  std::string arm_id;
  bool exploring = false;    // chosen because the arm was unplayed
  std::uint64_t plays = 0;   // plays of the chosen arm before this run
  double mean_wall_ms = 0;   // its mean before this run (0 if unplayed)
  // Per-arm "id plays mean score" lines, deterministic order — EXPLAIN
  // ANALYZE prints this as the posterior.
  std::string posterior;
};

// Cost-minimizing UCB over a fixed arm set. Deterministic: unplayed arms
// are explored first in enumeration order; ties break toward the lower
// index. `exploration` scales the confidence bonus in units of the
// observed mean spread, so the policy is invariant to the workload's
// absolute speed.
class PlanBandit {
 public:
  explicit PlanBandit(const OutcomeHistory& history, double exploration = 0.5)
      : history_(history), exploration_(exploration) {}

  BanditChoice Choose(std::uint64_t context,
                      const std::vector<BanditArm>& arms) const;

 private:
  const OutcomeHistory& history_;
  double exploration_;
};

}  // namespace qf

#endif  // QF_OPTIMIZER_BANDIT_H_
