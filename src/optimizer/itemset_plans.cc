#include "optimizer/itemset_plans.h"

#include <vector>

#include "datalog/ast.h"

namespace qf {
namespace {

std::string ParamName(std::size_t i) { return std::to_string(i); }

// Enumerates the size-`r` subsets of {1..k} in lexicographic order.
std::vector<std::vector<std::size_t>> Subsets(std::size_t k, std::size_t r) {
  std::vector<std::vector<std::size_t>> out;
  std::vector<std::size_t> current(r);
  for (std::size_t i = 0; i < r; ++i) current[i] = i + 1;
  while (true) {
    out.push_back(current);
    // Advance the combination.
    std::size_t i = r;
    while (i > 0) {
      --i;
      if (current[i] != i + 1 + k - r) break;
    }
    if (current[i] == i + 1 + k - r) break;
    ++current[i];
    for (std::size_t j = i + 1; j < r; ++j) current[j] = current[j - 1] + 1;
  }
  return out;
}

}  // namespace

Result<QueryFlock> MakeItemsetFlock(const std::string& relation,
                                    std::size_t k, double min_support) {
  if (k < 2) return InvalidArgumentError("itemset flocks need k >= 2");
  ConjunctiveQuery cq;
  cq.head_vars = {"B"};
  for (std::size_t i = 1; i <= k; ++i) {
    cq.subgoals.push_back(Subgoal::Positive(
        relation, {Term::Variable("B"), Term::Parameter(ParamName(i))}));
  }
  for (std::size_t i = 1; i < k; ++i) {
    cq.subgoals.push_back(Subgoal::Comparison(Term::Parameter(ParamName(i)),
                                              CompareOp::kLt,
                                              Term::Parameter(ParamName(i + 1))));
  }
  QueryFlock flock(std::move(cq), FilterCondition::MinSupport(min_support));
  if (Status s = flock.Validate(); !s.ok()) return s;
  return flock;
}

Result<QueryPlan> ItemsetAprioriPlan(const QueryFlock& flock, std::size_t k,
                                     std::size_t subset_size) {
  if (subset_size < 1 || subset_size >= k) {
    return InvalidArgumentError("need 1 <= subset_size < k");
  }
  if (flock.query.disjuncts.size() != 1 ||
      flock.query.disjuncts[0].subgoals.size() != 2 * k - 1) {
    return InvalidArgumentError(
        "flock does not have the MakeItemsetFlock shape");
  }

  std::vector<FilterStep> prefilters;
  for (const std::vector<std::size_t>& subset : Subsets(k, subset_size)) {
    // Subgoal layout from MakeItemsetFlock: baskets subgoal for parameter
    // i at index i-1; comparison $i < $(i+1) at index k + i - 1.
    std::vector<std::size_t> kept;
    std::vector<std::string> params;
    std::string name = "ok";
    for (std::size_t pos = 0; pos < subset.size(); ++pos) {
      std::size_t i = subset[pos];
      kept.push_back(i - 1);
      params.push_back(ParamName(i));
      name += "_" + ParamName(i);
      // Keep the order comparison only when both of its parameters stay
      // (the original only has comparisons between consecutive ones).
      if (pos + 1 < subset.size() && subset[pos + 1] == i + 1) {
        kept.push_back(k + i - 1);
      }
    }
    Result<FilterStep> step =
        MakeFilterStep(flock, std::move(name), std::move(params), kept);
    if (!step.ok()) return step.status();
    prefilters.push_back(std::move(*step));
  }
  return PlanWithPrefilters(flock, std::move(prefilters));
}

}  // namespace qf
