#include "optimizer/executor_support.h"

#include <memory>

#include "optimizer/join_order.h"
#include "optimizer/stats.h"

namespace qf {

StepOrderChooser CostBasedOrderChooser(CostModelConfig config) {
  // Base statistics cached across steps; shared_ptr keeps the chooser
  // copyable as std::function requires.
  auto cache = std::make_shared<std::optional<DatabaseStats>>();
  return [cache, config](const UnionQuery& step_query, const Database& db,
                         const std::map<std::string, const Relation*>& extra)
             -> FlockEvalOptions {
    if (!cache->has_value()) *cache = DatabaseStats::Compute(db);
    DatabaseStats stats = **cache;
    for (const auto& [name, rel] : extra) {
      stats.Put(name, ComputeStats(*rel));
    }
    CostModel model(std::move(stats), config);
    FlockEvalOptions options;
    for (const ConjunctiveQuery& cq : step_query.disjuncts) {
      CqEvalOptions cq_options;
      cq_options.join_order = ChooseJoinOrder(cq, model);
      options.per_disjunct.push_back(std::move(cq_options));
    }
    return options;
  };
}

Result<Relation> ExecutePlanOptimized(const QueryPlan& plan,
                                      const QueryFlock& flock,
                                      const Database& db,
                                      PlanExecInfo* info, unsigned threads) {
  PlanExecOptions options;
  options.order_chooser = CostBasedOrderChooser();
  options.threads = threads;
  return ExecutePlan(plan, flock, db, options, info);
}

}  // namespace qf
