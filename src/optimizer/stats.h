// Relation statistics for cost-based plan selection (§4: "We cannot give a
// definitive answer to such questions without estimates for sizes of join
// results ... the general theory of cost-based optimization applies").
#ifndef QF_OPTIMIZER_STATS_H_
#define QF_OPTIMIZER_STATS_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "relational/database.h"
#include "relational/relation.h"

namespace qf {

// Per-column frequency profile: the multiset of per-value occurrence
// counts, sorted descending. Answers "how many values of this column occur
// at least t times, and how much tuple mass do they hold?" — exactly the
// statistic §4.4 says the filter/don't-filter decision wants, since the
// *distribution* of group sizes (not just the mean) determines how much a
// FILTER step removes.
struct FrequencyProfile {
  std::vector<std::size_t> counts;  // descending

  // Number of values occurring >= `threshold` times.
  std::size_t ValuesWithCountAtLeast(double threshold) const;
  // Fraction of tuples whose value occurs >= `threshold` times.
  double MassWithCountAtLeast(double threshold) const;
};

struct RelationStats {
  std::size_t rows = 0;
  // Distinct value count per column.
  std::vector<std::size_t> column_distinct;
  // Optional (ComputeStats(..., detailed=true)): per-column profiles.
  std::vector<FrequencyProfile> column_profiles;

  bool has_profiles() const { return !column_profiles.empty(); }
};

// Scans `rel`, computing row and per-column distinct counts; with
// `detailed`, also the per-column frequency profiles.
RelationStats ComputeStats(const Relation& rel, bool detailed = false);

// Statistics for every relation of a database, by name.
//
// Staleness contract: Compute stamps the database's mutation generation
// (Database::generation), so a holder can tell whether its statistics
// still describe the database it plans against — `LOAD ... APPEND`
// bumps the generation, and a cost model built before the append would
// otherwise silently keep ordering joins by the old cardinalities.
// Anything that caches a DatabaseStats/CostModel must recompute when
// `generation() != db.generation()` (the shell's cached model does).
class DatabaseStats {
 public:
  DatabaseStats() = default;

  static DatabaseStats Compute(const Database& db, bool detailed = false);

  // Returns stats for `name`, or nullptr if unknown.
  const RelationStats* Find(const std::string& name) const;

  void Put(const std::string& name, RelationStats stats) {
    by_name_[name] = std::move(stats);
  }

  // The Database::generation() these statistics were computed at; 0 for a
  // hand-assembled instance.
  std::uint64_t generation() const { return generation_; }
  void set_generation(std::uint64_t g) { generation_ = g; }

  // All relations with statistics, by name (deterministic order; the
  // bandit's context features aggregate over this).
  const std::map<std::string, RelationStats>& relations() const {
    return by_name_;
  }

 private:
  std::map<std::string, RelationStats> by_name_;
  std::uint64_t generation_ = 0;
};

}  // namespace qf

#endif  // QF_OPTIMIZER_STATS_H_
