// Dynamic selection of filter steps (paper §4.4) — the strategy "that has
// no analog in conventional query optimization": fix a join order in
// advance, but decide whether to apply a FILTER step only after seeing the
// sizes of intermediate relations.
//
// The decision rule, per the paper:
//   * when a relation's parameter set has not been filtered before,
//     compare its tuples-per-parameter-assignment ratio with the support
//     threshold — a low ratio means many assignments are about to fall
//     below support, so filtering pays;
//   * when the set has been seen, filter again only if the ratio dropped
//     significantly since the last filtering opportunity.
//
// The pruning counts are sound upper bounds on the final answer count: the
// prefix of a join order is a subquery containing the original (§3.1), and
// counting distinct rows (or distinct head-variable bindings once bound)
// per assignment over-approximates the eventual COUNT(answer).
#ifndef QF_OPTIMIZER_DYNAMIC_H_
#define QF_OPTIMIZER_DYNAMIC_H_

#include <cstddef>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/resource.h"
#include "common/status.h"
#include "flocks/flock.h"
#include "relational/database.h"

namespace qf {

struct DynamicOptions {
  // Join order over the positive subgoals; empty = text order (callers
  // typically pass ChooseJoinOrder's output).
  std::vector<std::size_t> join_order;
  // Consider filtering a never-before-filtered parameter set when
  //   tuples / assignments < aggressiveness * threshold.
  double aggressiveness = 1.0;
  // Re-consider an already-filtered parameter set when its ratio has
  // dropped below improvement_factor * (previous ratio).
  double improvement_factor = 0.5;
  // Once the ratio test passes, the group counts are computed (the cheap
  // half of the filter); the semi-join is applied only if at least this
  // fraction of tuples would be removed. This is the "actual distribution
  // of the sizes of the groups affects our expected reduction" caveat of
  // §4.4 made operational: a mean ratio below threshold does not help if
  // the mass sits in a few huge groups.
  double min_removed_fraction = 0.2;
  // Worker threads for the scan/bindings phase (1 = serial; results are
  // identical for every value).
  unsigned threads = 1;
  // Observability (common/metrics.h): the evaluation appends "scan",
  // "dyn_filter" (one per decision point, with "group_by"/"semi_join"
  // children when those ran), "join", and the final aggregation nodes.
  // `trace` receives span events; ignored unless `metrics` is set.
  OpMetrics* metrics = nullptr;
  TraceSink* trace = nullptr;
  // Resource governance (common/resource.h): polled by every operator in
  // the fold and checked after each decision point, so a runaway dynamic
  // evaluation aborts with the context's typed Status.
  QueryContext* ctx = nullptr;
};

struct DynamicDecision {
  // What triggered the decision, e.g. "leaf exhibits(P,$s)" or
  // "after join 2".
  std::string at;
  std::set<std::string> parameters;  // "$"-tagged columns
  double ratio = 0;                  // tuples per parameter assignment
  // The §4.4 two-stage outcome: `considered` is the ratio gate (unseen:
  // ratio < aggressiveness * threshold; seen: ratio dropped below
  // improvement_factor * baseline); `filtered` additionally requires the
  // removed-mass check. `removed_fraction` is the tuple mass the filter
  // would remove, computed only when considered.
  bool considered = false;
  bool filtered = false;
  double removed_fraction = 0;
  std::size_t rows_before = 0;
  std::size_t rows_after = 0;
  // Wall time spent at this decision point (the group-count pass plus the
  // semi-join when applied). Rendered by EXPLAIN ANALYZE DYNAMIC.
  std::uint64_t wall_ns = 0;
};

struct DynamicLog {
  std::vector<DynamicDecision> decisions;
  std::size_t peak_rows = 0;
  std::size_t filters_applied = 0;
};

// Evaluates `flock` with dynamic filter selection. Requires a
// single-disjunct query (per-disjunct pruning of a union against the full
// threshold would be unsound — §3.4 demands unions of subqueries) and a
// support-style filter. The result equals EvaluateFlock(flock, db).
Result<Relation> DynamicEvaluate(const QueryFlock& flock, const Database& db,
                                 const DynamicOptions& options = {},
                                 DynamicLog* log = nullptr);

// Renders the decisions of a dynamic run in the spirit of the paper's
// Fig. 9 ("a possible query plan resulting from dynamic evaluation"):
// one line per decision point, showing the parameter set, the observed
// tuples-per-assignment ratio, and whether a FILTER step was applied.
std::string RenderDynamicTrace(const DynamicLog& log);

}  // namespace qf

#endif  // QF_OPTIMIZER_DYNAMIC_H_
