// A-priori for k-itemsets as query-flock plans (§4.3, restriction 2 and
// footnote 3).
//
// The k-itemset flock is
//   answer(B) :- baskets(B,$1) AND ... AND baskets(B,$k)
//                AND $1 < $2 AND ... AND $[k-1] < $k
// with a support filter. The paper notes that the levelwise a-priori
// method corresponds to FILTER steps that restrict each (k-1)-subset of
// the parameters — and that the classic algorithm exploits the symmetry
// among parameters, while the general plan rule (§4.2) requires literal
// copies of step left sides. We therefore materialize one prefilter per
// parameter subset (e.g. for k=3: ok_12($1,$2), ok_13($1,$3),
// ok_23($2,$3)), each a safe subquery of the flock keeping the subset's
// baskets subgoals and order comparison; the final step joins them all in.
#ifndef QF_OPTIMIZER_ITEMSET_PLANS_H_
#define QF_OPTIMIZER_ITEMSET_PLANS_H_

#include <cstddef>
#include <string>

#include "common/status.h"
#include "flocks/flock.h"
#include "plan/plan.h"

namespace qf {

// Builds the k-itemset flock over `relation`(`bid_column`, `item_column`)
// — parameters are named "1".."k" and constrained to strictly ascending
// order, so each itemset is reported once. k must be at least 2.
Result<QueryFlock> MakeItemsetFlock(const std::string& relation,
                                    std::size_t k, double min_support);

// Builds the generalized a-priori plan for an itemset flock produced by
// MakeItemsetFlock: one FILTER step per parameter subset of size
// `subset_size` (default k-1 would be the classic levelwise shape;
// subset_size = 1 gives the frequent-items prefilter), plus the final
// step referencing all of them. Requires 1 <= subset_size < k.
Result<QueryPlan> ItemsetAprioriPlan(const QueryFlock& flock,
                                     std::size_t k, std::size_t subset_size);

}  // namespace qf

#endif  // QF_OPTIMIZER_ITEMSET_PLANS_H_
