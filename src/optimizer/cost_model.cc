#include "optimizer/cost_model.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>

#include "flocks/cq_eval.h"

namespace qf {
namespace {

// Distinct columns of a relational subgoal (TermColumn naming).
std::set<std::string> SubgoalColumns(const Subgoal& s) {
  std::set<std::string> out;
  for (const Term& t : s.terms()) {
    if (!t.is_constant()) out.insert(TermColumn(t));
  }
  return out;
}

}  // namespace

double CostModel::EstimateSubgoalRows(const Subgoal& subgoal) const {
  const RelationStats* stats = stats_.Find(subgoal.predicate());
  double rows =
      stats != nullptr ? static_cast<double>(stats->rows) : config_.default_rows;
  // Each constant argument keeps ~rows/d of the base; each repeated column
  // occurrence likewise imposes an equality with selectivity 1/d.
  std::set<std::string> seen;
  for (std::size_t i = 0; i < subgoal.args().size(); ++i) {
    const Term& t = subgoal.args()[i];
    double d = config_.default_distinct;
    if (stats != nullptr && i < stats->column_distinct.size() &&
        stats->column_distinct[i] > 0) {
      d = static_cast<double>(stats->column_distinct[i]);
    }
    if (t.is_constant()) {
      rows /= d;
    } else if (!seen.insert(TermColumn(t)).second) {
      rows /= d;
    }
  }
  return std::max(rows, 1e-9);
}

double CostModel::EstimateColumnDistinct(const ConjunctiveQuery& cq,
                                         const std::string& column) const {
  double best = config_.default_distinct;
  bool found = false;
  for (const Subgoal& s : cq.subgoals) {
    if (!s.is_positive()) continue;
    const RelationStats* stats = stats_.Find(s.predicate());
    for (std::size_t i = 0; i < s.args().size(); ++i) {
      const Term& t = s.args()[i];
      if (t.is_constant() || TermColumn(t) != column) continue;
      double d = config_.default_distinct;
      if (stats != nullptr && i < stats->column_distinct.size() &&
          stats->column_distinct[i] > 0) {
        d = static_cast<double>(stats->column_distinct[i]);
      }
      best = found ? std::min(best, d) : d;
      found = true;
    }
  }
  return std::max(best, 1.0);
}

CostModel::CqEstimate CostModel::EstimateCq(
    const ConjunctiveQuery& cq, const std::vector<std::size_t>& order) const {
  std::vector<const Subgoal*> positives;
  for (const Subgoal& s : cq.subgoals) {
    if (s.is_positive()) positives.push_back(&s);
  }
  CqEstimate est;
  if (positives.empty()) return est;

  std::vector<std::size_t> sequence = order;
  if (sequence.empty()) {
    sequence.resize(positives.size());
    for (std::size_t i = 0; i < sequence.size(); ++i) sequence[i] = i;
  }

  // Per-column distinct count within one subgoal's binding relation.
  auto subgoal_distinct = [this](const Subgoal& s, const std::string& column,
                                 double sub_rows) {
    const RelationStats* stats = stats_.Find(s.predicate());
    double best = config_.default_distinct;
    bool found = false;
    for (std::size_t i = 0; i < s.args().size(); ++i) {
      const Term& t = s.args()[i];
      if (t.is_constant() || TermColumn(t) != column) continue;
      double d = config_.default_distinct;
      if (stats != nullptr && i < stats->column_distinct.size() &&
          stats->column_distinct[i] > 0) {
        d = static_cast<double>(stats->column_distinct[i]);
      }
      best = found ? std::min(best, d) : d;
      found = true;
    }
    return std::min(std::max(best, 1.0), std::max(sub_rows, 1.0));
  };

  // Pending comparison/negation selectivities, applied once bound.
  struct Pending {
    const Subgoal* subgoal;
    bool applied = false;
  };
  std::vector<Pending> pending;
  for (const Subgoal& s : cq.subgoals) {
    if (!s.is_positive()) pending.push_back({&s});
  }

  // Distinct-count estimates for columns bound in the running
  // intermediate; the System-R containment assumption gives
  //   |R join S on c| = |R||S| / max(dR(c), dS(c)),
  // and the joined relation has min(dR(c), dS(c)) distinct values of c.
  std::map<std::string, double> bound;
  double rows = 0;
  auto apply_ready = [&]() {
    for (Pending& p : pending) {
      if (p.applied) continue;
      bool ready = true;
      for (const Term& t : p.subgoal->terms()) {
        if (!t.is_constant() && !bound.contains(TermColumn(t))) {
          ready = false;
          break;
        }
      }
      if (!ready) continue;
      p.applied = true;
      if (p.subgoal->is_negated()) {
        rows *= config_.negation_selectivity;
      } else if (p.subgoal->op() == CompareOp::kEq) {
        double d = 1;
        for (const Term& t : p.subgoal->terms()) {
          if (!t.is_constant()) d = std::max(d, bound[TermColumn(t)]);
        }
        rows /= d;
      } else if (p.subgoal->op() == CompareOp::kNe) {
        rows *= config_.not_equal_selectivity;
      } else {
        rows *= config_.inequality_selectivity;
      }
    }
  };

  for (std::size_t k = 0; k < sequence.size(); ++k) {
    const Subgoal& s = *positives[sequence[k]];
    double sub_rows = EstimateSubgoalRows(s);
    std::set<std::string> columns = SubgoalColumns(s);
    if (k == 0) {
      rows = sub_rows;
    } else {
      double denom = 1;
      for (const std::string& c : columns) {
        auto it = bound.find(c);
        if (it != bound.end()) {
          denom *= std::max(it->second, subgoal_distinct(s, c, sub_rows));
        }
      }
      rows = rows * sub_rows / denom;
    }
    for (const std::string& c : columns) {
      double d = subgoal_distinct(s, c, sub_rows);
      auto [it, inserted] = bound.emplace(c, d);
      if (!inserted) it->second = std::min(it->second, d);
    }
    apply_ready();
    rows = std::max(rows, 1e-9);
    est.cost += rows;
  }
  est.result_rows = rows;
  return est;
}

CostModel::FilterEstimate CostModel::EstimateFilter(
    const ConjunctiveQuery& cq, double threshold) const {
  // Exact path: a single-subgoal, single-parameter subquery (the common
  // prefilter shape, e.g. okS's exhibits(P,$s)) with a frequency profile
  // available answers the question directly — the per-value counts ARE the
  // group sizes the support filter thresholds.
  if (cq.subgoals.size() == 1 && cq.subgoals[0].is_positive()) {
    const Subgoal& s = cq.subgoals[0];
    const RelationStats* stats = stats_.Find(s.predicate());
    int param_position = -1;
    int param_occurrences = 0;
    for (std::size_t i = 0; i < s.args().size(); ++i) {
      if (s.args()[i].is_parameter()) {
        ++param_occurrences;
        param_position = static_cast<int>(i);
      }
    }
    if (param_occurrences == 1 && stats != nullptr &&
        stats->has_profiles() &&
        static_cast<std::size_t>(param_position) <
            stats->column_profiles.size()) {
      const FrequencyProfile& profile =
          stats->column_profiles[param_position];
      FilterEstimate exact;
      exact.assignments = static_cast<double>(profile.counts.size());
      exact.survivors =
          static_cast<double>(profile.ValuesWithCountAtLeast(threshold));
      exact.survival_fraction =
          exact.assignments > 0 ? exact.survivors / exact.assignments : 1.0;
      return exact;
    }
  }

  FilterEstimate out;
  CqEstimate join = EstimateCq(cq);
  double assignments = 1;
  for (const std::string& p : cq.Parameters()) {
    assignments *= EstimateColumnDistinct(cq, "$" + p);
  }
  // Answers per assignment cannot exceed total rows.
  assignments = std::min(assignments, std::max(join.result_rows, 1.0));
  double mean_group = join.result_rows / std::max(assignments, 1.0);
  double fraction =
      threshold <= 1 ? 1.0
                     : std::exp(-(threshold - 1) / std::max(mean_group, 1e-9));
  out.assignments = assignments;
  out.survival_fraction = std::min(fraction, 1.0);
  out.survivors = assignments * out.survival_fraction;
  return out;
}

}  // namespace qf
