#include "optimizer/bandit.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <set>

#include "optimizer/join_order.h"

namespace qf {
namespace {

// FNV-1a, the same everywhere so context keys are stable across
// processes (they are persisted in the catalog).
constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void HashBytes(std::uint64_t& h, std::string_view s) {
  for (unsigned char c : s) {
    h ^= c;
    h *= kFnvPrime;
  }
}

void HashU64(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xff;
    h *= kFnvPrime;
  }
}

// Coarse log2 bucket for magnitudes (0 for anything below 1).
int Log2Bucket(double v) {
  if (!(v >= 1.0)) return 0;
  return std::ilogb(v);
}

void HashTerm(std::uint64_t& h, const Term& term) {
  HashU64(h, static_cast<std::uint64_t>(term.kind()));
  // Parameter names are part of the shape (which positions share a
  // parameter matters); variable names are alpha-renamable noise.
  if (term.is_parameter()) HashBytes(h, term.name());
  if (term.is_constant()) HashBytes(h, term.ToString());
}

// The identity order (what "text order" resolves to in the evaluator).
bool IsIdentityOrder(const std::vector<std::size_t>& order) {
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (order[i] != i) return false;
  }
  return true;
}

}  // namespace

std::uint64_t FlockShapeHash(const QueryFlock& flock) {
  std::uint64_t h = kFnvOffset;
  HashU64(h, flock.query.disjuncts.size());
  for (const ConjunctiveQuery& cq : flock.query.disjuncts) {
    HashU64(h, cq.head_vars.size());
    HashU64(h, cq.subgoals.size());
    for (const Subgoal& s : cq.subgoals) {
      HashU64(h, static_cast<std::uint64_t>(s.kind()));
      if (s.is_relational()) {
        HashBytes(h, s.predicate());
        HashU64(h, s.args().size());
        for (const Term& t : s.args()) HashTerm(h, t);
      } else {
        HashU64(h, static_cast<std::uint64_t>(s.op()));
        HashTerm(h, s.lhs());
        HashTerm(h, s.rhs());
      }
    }
  }
  HashU64(h, static_cast<std::uint64_t>(flock.filter.agg));
  HashU64(h, static_cast<std::uint64_t>(flock.filter.cmp));
  return h;
}

PlanContext MakePlanContext(const QueryFlock& flock, const CostModel& model) {
  PlanContext ctx;
  std::uint64_t h = FlockShapeHash(flock);

  int threshold_bucket = Log2Bucket(flock.filter.threshold);
  HashU64(h, static_cast<std::uint64_t>(threshold_bucket));

  // Total rows of the distinct base relations the flock mentions, as one
  // coarse magnitude bucket: "same flock, 10x the data" is a different
  // learning cell, "same flock, +3% of appends" is the same cell.
  std::set<std::string> predicates;
  for (const ConjunctiveQuery& cq : flock.query.disjuncts) {
    for (const Subgoal& s : cq.subgoals) {
      if (s.is_relational()) predicates.insert(s.predicate());
    }
  }
  double total_rows = 0;
  for (const std::string& name : predicates) {
    const RelationStats* stats = model.stats().Find(name);
    if (stats != nullptr) total_rows += static_cast<double>(stats->rows);
  }
  int rows_bucket = Log2Bucket(total_rows);
  HashU64(h, static_cast<std::uint64_t>(rows_bucket));
  ctx.key = h;

  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "shape=%016" PRIx64 " preds=%zu support~2^%d rows~2^%d",
                FlockShapeHash(flock), predicates.size(), threshold_bucket,
                rows_bucket);
  ctx.description = buf;
  return ctx;
}

std::vector<BanditArm> EnumerateArms(const QueryFlock& flock,
                                     const CostModel& model,
                                     bool dynamic_eligible,
                                     const DynamicKnobs& session_knobs) {
  std::vector<BanditArm> arms;

  BanditArm plan;
  plan.id = "plan:search";
  plan.kind = BanditArm::Kind::kPlan;
  arms.push_back(std::move(plan));

  std::vector<std::vector<std::size_t>> cost_orders;
  bool cost_is_text = true;
  for (const ConjunctiveQuery& cq : flock.query.disjuncts) {
    cost_orders.push_back(ChooseJoinOrder(cq, model));
    if (!IsIdentityOrder(cost_orders.back())) cost_is_text = false;
  }

  BanditArm direct_cost;
  direct_cost.id = "direct:cost";
  direct_cost.kind = BanditArm::Kind::kDirect;
  direct_cost.orders = cost_orders;
  arms.push_back(std::move(direct_cost));

  if (!cost_is_text) {
    BanditArm direct_text;
    direct_text.id = "direct:text";
    direct_text.kind = BanditArm::Kind::kDirect;
    direct_text.orders.assign(flock.query.disjuncts.size(), {});
    arms.push_back(std::move(direct_text));
  }

  if (dynamic_eligible) {
    auto dyn = [&](const char* id, const DynamicKnobs& knobs) {
      BanditArm arm;
      arm.id = id;
      arm.kind = BanditArm::Kind::kDynamic;
      arm.orders = {cost_orders.empty() ? std::vector<std::size_t>{}
                                        : cost_orders.front()};
      arm.knobs = knobs;
      return arm;
    };
    arms.push_back(dyn("dyn:session", session_knobs));
    // Two contrasting presets bracketing the session's setting: filter
    // eagerly even when the ratio barely clears the threshold, or only
    // when a filter would remove most of the mass. One of them wins on
    // workloads where the hand-tuned default is mis-calibrated.
    DynamicKnobs eager{2.0, 0.9, 0.05};
    DynamicKnobs cautious{0.5, 0.25, 0.4};
    if (!(session_knobs == eager)) arms.push_back(dyn("dyn:eager", eager));
    if (!(session_knobs == cautious)) {
      arms.push_back(dyn("dyn:cautious", cautious));
    }
  }
  return arms;
}

BanditChoice PlanBandit::Choose(std::uint64_t context,
                                const std::vector<BanditArm>& arms) const {
  BanditChoice choice;
  const std::map<std::string, ArmStats>* cell = history_.FindContext(context);

  // Warm-up: every arm gets one play, in enumeration order.
  std::uint64_t total_plays = 0;
  for (std::size_t i = 0; i < arms.size(); ++i) {
    const ArmStats* stats =
        cell == nullptr ? nullptr : [&]() -> const ArmStats* {
          auto it = cell->find(arms[i].id);
          return it == cell->end() ? nullptr : &it->second;
        }();
    if (stats == nullptr || stats->plays == 0) {
      choice.index = i;
      choice.arm_id = arms[i].id;
      choice.exploring = true;
      choice.posterior = "warm-up: arm " + arms[i].id + " unplayed\n";
      return choice;
    }
    total_plays += stats->plays;
  }

  // All arms played: lower-confidence-bound selection on mean wall time.
  // The bonus is scaled by the observed spread of means so `exploration_`
  // is dimensionless (invariant to absolute workload speed).
  double min_mean = 0, max_mean = 0;
  for (std::size_t i = 0; i < arms.size(); ++i) {
    double mean = cell->at(arms[i].id).MeanWallMs();
    if (i == 0 || mean < min_mean) min_mean = mean;
    if (i == 0 || mean > max_mean) max_mean = mean;
  }
  double spread = max_mean - min_mean;
  if (spread <= 0) spread = min_mean * 0.1 + 1e-6;

  double best_score = 0;
  char line[192];
  for (std::size_t i = 0; i < arms.size(); ++i) {
    const ArmStats& stats = cell->at(arms[i].id);
    double mean = stats.MeanWallMs();
    double bonus =
        exploration_ * spread *
        std::sqrt(2.0 * std::log(static_cast<double>(total_plays)) /
                  static_cast<double>(stats.plays));
    double score = mean - bonus;
    std::snprintf(line, sizeof(line),
                  "  %-16s plays=%" PRIu64 " mean=%.3fms score=%.3f\n",
                  arms[i].id.c_str(), stats.plays, mean, score);
    choice.posterior += line;
    if (i == 0 || score < best_score) {
      best_score = score;
      choice.index = i;
      choice.arm_id = arms[i].id;
      choice.plays = stats.plays;
      choice.mean_wall_ms = mean;
    }
  }
  return choice;
}

}  // namespace qf
