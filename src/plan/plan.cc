#include "plan/plan.h"

#include <set>

#include "common/check.h"
#include "datalog/safety.h"

namespace qf {

std::string FilterStep::ToString(const FilterCondition& filter) const {
  std::string params;
  for (std::size_t i = 0; i < parameters.size(); ++i) {
    if (i > 0) params += ",";
    params += "$" + parameters[i];
  }
  std::string out = result_name + "(" + params + ") := FILTER((" + params +
                    "),\n";
  for (const ConjunctiveQuery& cq : query.disjuncts) {
    out += "    " + cq.ToString() + "\n";
  }
  out += "    " +
         filter.ToString(query.head_name(),
                         query.disjuncts.front().head_vars) +
         "\n)";
  return out;
}

std::string QueryPlan::ToString(const FilterCondition& filter) const {
  std::string out;
  for (const FilterStep& step : steps) {
    out += step.ToString(filter) + ";\n";
  }
  return out;
}

QueryPlan TrivialPlan(const QueryFlock& flock) {
  QueryPlan plan;
  FilterStep step;
  step.result_name = "result";
  step.parameters = flock.ParameterNames();
  step.query = flock.query;
  plan.steps.push_back(std::move(step));
  return plan;
}

Subgoal StepReferenceSubgoal(const FilterStep& step) {
  std::vector<Term> args;
  args.reserve(step.parameters.size());
  for (const std::string& p : step.parameters) {
    args.push_back(Term::Parameter(p));
  }
  return Subgoal::Positive(step.result_name, std::move(args));
}

Result<FilterStep> MakeFilterStep(
    const QueryFlock& flock, std::string result_name,
    std::vector<std::string> parameters,
    const std::vector<std::vector<std::size_t>>& kept_per_disjunct,
    const std::vector<const FilterStep*>& use_steps) {
  if (kept_per_disjunct.size() != flock.query.disjuncts.size()) {
    return InvalidArgumentError(
        "need one kept-subgoal list per disjunct (" +
        std::to_string(flock.query.disjuncts.size()) + "), got " +
        std::to_string(kept_per_disjunct.size()));
  }
  FilterStep step;
  step.result_name = std::move(result_name);
  step.parameters = std::move(parameters);

  for (std::size_t d = 0; d < flock.query.disjuncts.size(); ++d) {
    const ConjunctiveQuery& original = flock.query.disjuncts[d];
    ConjunctiveQuery sub;
    sub.head_name = original.head_name;
    sub.head_vars = original.head_vars;
    // Prior-step references first: they are small and prune early.
    for (const FilterStep* prior : use_steps) {
      QF_CHECK(prior != nullptr);
      sub.subgoals.push_back(StepReferenceSubgoal(*prior));
    }
    for (std::size_t i : kept_per_disjunct[d]) {
      if (i >= original.subgoals.size()) {
        return InvalidArgumentError("kept subgoal index out of range");
      }
      sub.subgoals.push_back(original.subgoals[i]);
    }
    std::string why;
    if (!IsSafe(sub, &why)) {
      return InvalidArgumentError("step subquery is unsafe: " + why);
    }
    step.query.disjuncts.push_back(std::move(sub));
  }

  // P must be exactly the parameters the step query mentions, in every
  // disjunct (mirroring QueryFlock::Validate).
  std::set<std::string> want(step.parameters.begin(), step.parameters.end());
  if (want.size() != step.parameters.size()) {
    return InvalidArgumentError("duplicate parameter in step parameter list");
  }
  for (const ConjunctiveQuery& cq : step.query.disjuncts) {
    if (cq.Parameters() != want) {
      return InvalidArgumentError(
          "step parameters must match the parameters of the step query "
          "(every disjunct)");
    }
  }
  return step;
}

Result<FilterStep> MakeFilterStep(
    const QueryFlock& flock, std::string result_name,
    std::vector<std::string> parameters, const std::vector<std::size_t>& kept,
    const std::vector<const FilterStep*>& use_steps) {
  return MakeFilterStep(flock, std::move(result_name), std::move(parameters),
                        std::vector<std::vector<std::size_t>>{kept},
                        use_steps);
}

Result<QueryPlan> PlanWithPrefilters(const QueryFlock& flock,
                                     std::vector<FilterStep> prefilters) {
  QueryPlan plan;
  plan.steps = std::move(prefilters);

  std::vector<const FilterStep*> refs;
  refs.reserve(plan.steps.size());
  for (const FilterStep& s : plan.steps) refs.push_back(&s);

  std::vector<std::vector<std::size_t>> all(flock.query.disjuncts.size());
  for (std::size_t d = 0; d < flock.query.disjuncts.size(); ++d) {
    all[d].resize(flock.query.disjuncts[d].subgoals.size());
    for (std::size_t i = 0; i < all[d].size(); ++i) all[d][i] = i;
  }
  Result<FilterStep> final_step = MakeFilterStep(
      flock, "result", flock.ParameterNames(), all, refs);
  if (!final_step.ok()) return final_step.status();
  plan.steps.push_back(std::move(*final_step));
  return plan;
}

}  // namespace qf
