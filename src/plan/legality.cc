#include "plan/legality.h"

#include <map>
#include <set>
#include <string>
#include <vector>

#include "datalog/safety.h"

namespace qf {
namespace {

// Whether `subgoal` is an exact copy of `step`'s left side: the step name
// as predicate, with the step's parameters, in order, as arguments.
bool IsStepReference(const Subgoal& subgoal, const FilterStep& step) {
  if (!subgoal.is_positive() || subgoal.predicate() != step.result_name) {
    return false;
  }
  if (subgoal.args().size() != step.parameters.size()) return false;
  for (std::size_t i = 0; i < subgoal.args().size(); ++i) {
    const Term& t = subgoal.args()[i];
    if (!t.is_parameter() || t.name() != step.parameters[i]) return false;
  }
  return true;
}

bool IsOriginalSubgoal(const Subgoal& subgoal,
                       const ConjunctiveQuery& original) {
  for (const Subgoal& s : original.subgoals) {
    if (s == subgoal) return true;
  }
  return false;
}

}  // namespace

Status CheckLegal(const QueryPlan& plan, const QueryFlock& flock) {
  if (plan.steps.empty()) {
    return InvalidArgumentError("plan has no steps");
  }
  if (!flock.filter.IsMonotone()) {
    return FailedPreconditionError(
        "plan legality is defined for support-type (monotone) filters");
  }

  // Base predicates of the flock, which step names must not shadow.
  std::set<std::string> base_predicates;
  for (const ConjunctiveQuery& cq : flock.query.disjuncts) {
    for (const Subgoal& s : cq.subgoals) {
      if (s.is_relational()) base_predicates.insert(s.predicate());
    }
  }

  std::set<std::string> step_names;
  for (std::size_t k = 0; k < plan.steps.size(); ++k) {
    const FilterStep& step = plan.steps[k];
    if (step.result_name.empty()) {
      return InvalidArgumentError("step " + std::to_string(k) +
                                  " has no result name");
    }
    if (!step_names.insert(step.result_name).second) {
      return InvalidArgumentError("duplicate step name: " + step.result_name);
    }
    if (base_predicates.contains(step.result_name)) {
      return InvalidArgumentError("step name shadows a base predicate: " +
                                  step.result_name);
    }

    if (step.query.disjuncts.size() != flock.query.disjuncts.size()) {
      return InvalidArgumentError(
          "step " + step.result_name + " must have one disjunct per flock "
          "disjunct (§3.4: unions prune with unions of subqueries)");
    }

    bool is_final = k + 1 == plan.steps.size();
    for (std::size_t d = 0; d < step.query.disjuncts.size(); ++d) {
      const ConjunctiveQuery& sub = step.query.disjuncts[d];
      const ConjunctiveQuery& original = flock.query.disjuncts[d];
      if (sub.head_name != original.head_name ||
          sub.head_vars != original.head_vars) {
        return InvalidArgumentError("step " + step.result_name +
                                    " changes the query head");
      }

      // Every subgoal must be an original subgoal or a prior-step
      // reference (condition 3b/3c).
      std::set<std::size_t> originals_present;
      for (const Subgoal& s : sub.subgoals) {
        bool prior_ref = false;
        for (std::size_t j = 0; j < k; ++j) {
          if (IsStepReference(s, plan.steps[j])) {
            prior_ref = true;
            break;
          }
        }
        if (prior_ref) continue;
        if (!IsOriginalSubgoal(s, original)) {
          return InvalidArgumentError(
              "step " + step.result_name + " contains subgoal " +
              s.ToString() +
              ", which is neither an original subgoal nor the left side of "
              "an earlier step");
        }
        for (std::size_t i = 0; i < original.subgoals.size(); ++i) {
          if (original.subgoals[i] == s) originals_present.insert(i);
        }
      }

      std::string why;
      if (!IsSafe(sub, &why)) {
        return InvalidArgumentError("step " + step.result_name +
                                    " is unsafe: " + why);
      }

      if (is_final &&
          originals_present.size() != original.subgoals.size()) {
        return InvalidArgumentError(
            "the final step must not delete any original subgoal "
            "(condition 4 of the plan-generation rule)");
      }
    }

    // The defined relation's parameters must be exactly those of its query.
    std::set<std::string> declared(step.parameters.begin(),
                                   step.parameters.end());
    if (declared.size() != step.parameters.size()) {
      return InvalidArgumentError("step " + step.result_name +
                                  " has duplicate parameters");
    }
    for (const ConjunctiveQuery& sub : step.query.disjuncts) {
      if (sub.Parameters() != declared) {
        return InvalidArgumentError(
            "step " + step.result_name +
            " declares parameters that do not match its query");
      }
    }
  }

  // The final step must produce the flock's parameters.
  const FilterStep& last = plan.steps.back();
  std::set<std::string> flock_params = flock.query.Parameters();
  std::set<std::string> last_params(last.parameters.begin(),
                                    last.parameters.end());
  if (last_params != flock_params) {
    return InvalidArgumentError(
        "the final step must be over exactly the flock's parameters");
  }
  return Status::Ok();
}

}  // namespace qf
