#include "plan/executor.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/thread_pool.h"
#include "plan/legality.h"
#include "relational/ops.h"

namespace qf {
namespace {

// True when `step` mentions any of `names` as a body predicate (positive
// or negated) in some disjunct — the dependency relation that decides
// which steps may run concurrently.
bool ReferencesAny(const FilterStep& step, const std::set<std::string>& names) {
  for (const ConjunctiveQuery& cq : step.query.disjuncts) {
    for (const Subgoal& s : cq.subgoals) {
      if (s.is_comparison()) continue;
      if (names.contains(s.predicate())) return true;
    }
  }
  return false;
}

}  // namespace

Result<Relation> ExecutePlan(const QueryPlan& plan, const QueryFlock& flock,
                             const Database& db,
                             const PlanExecOptions& options,
                             PlanExecInfo* info) {
  if (options.check_legal) {
    if (Status s = CheckLegal(plan, flock); !s.ok()) return s;
  }
  if (plan.steps.empty()) return InvalidArgumentError("plan has no steps");

  std::size_t n_steps = plan.steps.size();
  // Materialized step results, indexed by step, referenced by later steps.
  std::vector<Relation> materialized(n_steps);
  std::vector<StepExecInfo> step_infos(n_steps);
  std::map<std::string, const Relation*> extra;
  if (options.extra_predicates != nullptr) extra = *options.extra_predicates;

  // Observability: pre-allocate one "step" node per plan step, in plan
  // order, before any wave fans out — concurrent steps then write
  // disjoint, stably addressed subtrees.
  OpMetrics* m = options.metrics;
  TraceSink* tr = m != nullptr ? options.trace : nullptr;
  if (m != nullptr && m->op.empty()) m->op = "plan";
  std::vector<OpMetrics*> step_nodes(n_steps, nullptr);
  if (m != nullptr) {
    for (std::size_t k = 0; k < n_steps; ++k) {
      step_nodes[k] = m->AddChild("step", plan.steps[k].result_name);
    }
  }

  // Execute in dependency waves: a wave is the maximal run of remaining
  // steps in which no step reads a result produced by an *earlier step of
  // the same wave*. That is exactly the dependency that distinguishes
  // concurrent from serial execution — serial execution publishes each
  // result only after its step finishes, so a reference to anything else
  // (a finished step, the base database, or a name no step has produced
  // yet) resolves identically either way. Steps inside a wave evaluate
  // concurrently; waves themselves run in order.
  std::size_t done = 0;
  while (done < n_steps) {
    std::set<std::string> produced = {plan.steps[done].result_name};
    std::size_t wave_end = done + 1;
    while (wave_end < n_steps &&
           !ReferencesAny(plan.steps[wave_end], produced)) {
      produced.insert(plan.steps[wave_end].result_name);
      ++wave_end;
    }

    // Resolve evaluation options serially (the cost-based chooser keeps
    // lazily computed statistics; only Evaluate runs concurrently).
    std::vector<FlockEvalOptions> wave_options(wave_end - done);
    std::vector<bool> precomputed(wave_end - done, false);
    for (std::size_t k = done; k < wave_end; ++k) {
      const FilterStep& step = plan.steps[k];
      if (options.precomputed_steps != nullptr && k + 1 < n_steps) {
        auto it = options.precomputed_steps->find(step.result_name);
        if (it != options.precomputed_steps->end()) {
          precomputed[k - done] = true;
          extra[step.result_name] = it->second;
          step_infos[k] = {step.result_name, it->second->size(), 0, 0};
          if (step_nodes[k] != nullptr) {
            step_nodes[k]->detail += " (precomputed)";
            step_nodes[k]->rows_out = it->second->size();
          }
          continue;
        }
      }
      FlockEvalOptions eval_options;
      if (options.order_chooser) {
        eval_options = options.order_chooser(step.query, db, extra);
      } else if (k < options.per_step.size()) {
        eval_options = options.per_step[k];
      }
      if (eval_options.threads <= 1) eval_options.threads = options.threads;
      eval_options.metrics = step_nodes[k];
      eval_options.trace = tr;
      eval_options.ctx = options.ctx;
      wave_options[k - done] = std::move(eval_options);
    }

    Status wave_status = ParallelForStatus(
        std::min<std::size_t>(options.threads, wave_end - done),
        wave_end - done, 1, [&](std::size_t i, std::size_t) -> Status {
          std::size_t k = done + i;
          const FilterStep& step = plan.steps[k];
          if (precomputed[i]) return Status::Ok();
          QueryFlock step_flock(step.query, flock.filter);
          FlockEvalInfo eval_info;
          ScopedOp span(step_nodes[k], tr);
          Result<Relation> result = EvaluateFlock(
              step_flock, db, wave_options[i], &extra, &eval_info);
          if (!result.ok()) return result.status();

          // EvaluateFlock orders columns by sorted parameter name;
          // reorder to the step's declared parameter order so step
          // references bind positionally.
          std::vector<std::string> declared;
          for (const std::string& p : step.parameters) {
            declared.push_back("$" + p);
          }
          Relation reordered = Project(*result, declared, nullptr,
                                       options.ctx);
          reordered.set_name(step.result_name);
          step_infos[k] = {step.result_name, reordered.size(),
                           eval_info.peak_rows, eval_info.answer_rows};
          materialized[k] = std::move(reordered);
          return Status::Ok();
        });
    if (!wave_status.ok()) return wave_status;
    if (options.ctx != nullptr) {
      if (Status s = options.ctx->Check(); !s.ok()) return s;
    }

    // Publish the wave's results for later waves (single-threaded again).
    for (std::size_t k = done; k < wave_end; ++k) {
      if (!precomputed[k - done]) {
        extra[plan.steps[k].result_name] = &materialized[k];
      }
    }
    done = wave_end;
  }

  if (info != nullptr) {
    for (StepExecInfo& si : step_infos) {
      info->total_peak_rows += si.peak_rows;
      info->steps.push_back(std::move(si));
    }
  }

  // Normalize to the flock evaluator's output shape (sorted parameters,
  // canonically sorted rows).
  OpMetrics* node = m != nullptr ? m->AddChild("project", "normalize")
                                 : nullptr;
  ScopedOp span(node, tr);
  Relation normalized = Project(materialized[n_steps - 1],
                                FlockParameterColumns(flock), node,
                                options.ctx);
  if (options.ctx != nullptr) {
    if (Status s = options.ctx->Check(); !s.ok()) return s;
  }
  normalized.SortRows();
  if (m != nullptr) m->rows_out += normalized.size();
  normalized.set_name("flock_result");
  return normalized;
}

}  // namespace qf
