#include "plan/executor.h"

#include <map>

#include "plan/legality.h"
#include "relational/ops.h"

namespace qf {

Result<Relation> ExecutePlan(const QueryPlan& plan, const QueryFlock& flock,
                             const Database& db,
                             const PlanExecOptions& options,
                             PlanExecInfo* info) {
  if (options.check_legal) {
    if (Status s = CheckLegal(plan, flock); !s.ok()) return s;
  }
  if (plan.steps.empty()) return InvalidArgumentError("plan has no steps");

  // Materialized step results, owned here, referenced by later steps.
  std::vector<Relation> materialized;
  materialized.reserve(plan.steps.size());
  std::map<std::string, const Relation*> extra;
  if (options.extra_predicates != nullptr) extra = *options.extra_predicates;

  Relation final_result;
  for (std::size_t k = 0; k < plan.steps.size(); ++k) {
    const FilterStep& step = plan.steps[k];
    if (options.precomputed_steps != nullptr && k + 1 < plan.steps.size()) {
      auto it = options.precomputed_steps->find(step.result_name);
      if (it != options.precomputed_steps->end()) {
        extra[step.result_name] = it->second;
        if (info != nullptr) {
          info->steps.push_back({step.result_name, it->second->size(), 0, 0});
        }
        continue;
      }
    }
    QueryFlock step_flock(step.query, flock.filter);
    FlockEvalOptions eval_options;
    if (options.order_chooser) {
      eval_options = options.order_chooser(step.query, db, extra);
    } else if (k < options.per_step.size()) {
      eval_options = options.per_step[k];
    }
    FlockEvalInfo eval_info;
    Result<Relation> result =
        EvaluateFlock(step_flock, db, eval_options, &extra, &eval_info);
    if (!result.ok()) return result.status();

    // EvaluateFlock orders columns by sorted parameter name; reorder to the
    // step's declared parameter order so step references bind positionally.
    std::vector<std::string> declared;
    for (const std::string& p : step.parameters) declared.push_back("$" + p);
    Relation reordered = Project(*result, declared);
    reordered.set_name(step.result_name);

    if (info != nullptr) {
      info->steps.push_back({step.result_name, reordered.size(),
                             eval_info.peak_rows, eval_info.answer_rows});
      info->total_peak_rows += eval_info.peak_rows;
    }

    if (k + 1 == plan.steps.size()) {
      final_result = std::move(reordered);
    } else {
      materialized.push_back(std::move(reordered));
      extra[step.result_name] = &materialized.back();
    }
  }

  // Normalize to the flock evaluator's output shape (sorted parameters).
  Relation normalized = Project(final_result, FlockParameterColumns(flock));
  normalized.set_name("flock_result");
  return normalized;
}

}  // namespace qf
