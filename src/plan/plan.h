// Query plans for flocks (paper §4.1): sequences of FILTER steps
//
//   R(P) := FILTER(P, Q, C)
//
// where P is a list of parameters, Q a query over the base predicates plus
// the relations defined by earlier steps, and C the flock's filter
// condition. Each step materializes the parameter assignments of P whose
// Q-answer passes C; the final step evaluates the original query augmented
// with the earlier steps' relations and produces the flock's answer.
#ifndef QF_PLAN_PLAN_H_
#define QF_PLAN_PLAN_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/status.h"
#include "datalog/ast.h"
#include "flocks/flock.h"

namespace qf {

// One FILTER step.
struct FilterStep {
  // Name of the defined relation, e.g. "okS". Doubles as the predicate
  // later steps use to reference it.
  std::string result_name;
  // The parameters P (sigil-free, in the column order of the produced
  // relation).
  std::vector<std::string> parameters;
  // The step's query Q. Prior-step references appear as positive subgoals
  // result_name($p1,...,$pk).
  UnionQuery query;

  // Renders "okS($s) := FILTER($s, <query>, <condition>)".
  std::string ToString(const FilterCondition& filter) const;
};

struct QueryPlan {
  std::vector<FilterStep> steps;

  std::string ToString(const FilterCondition& filter) const;
};

// The one-step plan that evaluates the original query directly — the
// baseline every optimized plan is compared against.
QueryPlan TrivialPlan(const QueryFlock& flock);

// Builds a FILTER step for `flock`:
//   * `kept_per_disjunct[i]` selects the subgoals of disjunct i retained in
//     the step's query (§3.4: one subquery per disjunct);
//   * `use_steps` are earlier steps whose result relations are added as
//     positive subgoals (placed first, so they restrict the join early);
//   * `parameters` is the parameter list P of the defined relation.
// Fails if the resulting query is unsafe or if P does not match the
// parameters the step's query mentions.
Result<FilterStep> MakeFilterStep(
    const QueryFlock& flock, std::string result_name,
    std::vector<std::string> parameters,
    const std::vector<std::vector<std::size_t>>& kept_per_disjunct,
    const std::vector<const FilterStep*>& use_steps = {});

// Convenience for single-disjunct flocks.
Result<FilterStep> MakeFilterStep(
    const QueryFlock& flock, std::string result_name,
    std::vector<std::string> parameters, const std::vector<std::size_t>& kept,
    const std::vector<const FilterStep*>& use_steps = {});

// The subgoal referencing a step's result: result_name($p1,...,$pk).
Subgoal StepReferenceSubgoal(const FilterStep& step);

// Builds the standard two-phase plan: the given pre-filter steps followed
// by a final step that keeps every original subgoal and references all
// pre-filter steps. This realizes heuristic 1 of §4.3 (and Fig. 5).
Result<QueryPlan> PlanWithPrefilters(const QueryFlock& flock,
                                     std::vector<FilterStep> prefilters);

}  // namespace qf

#endif  // QF_PLAN_PLAN_H_
