// Execution of query plans: each FILTER step runs as a flock evaluation
// (same filter as the original flock), materializing a relation over its
// parameters that later steps join in as an extra predicate. The final
// step's result is the flock's answer.
#ifndef QF_PLAN_EXECUTOR_H_
#define QF_PLAN_EXECUTOR_H_

#include <cstddef>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "flocks/eval.h"
#include "plan/plan.h"
#include "relational/database.h"

namespace qf {

struct StepExecInfo {
  std::string step_name;
  // Surviving parameter assignments of this step.
  std::size_t result_rows = 0;
  // Peak intermediate relation size while evaluating the step.
  std::size_t peak_rows = 0;
  // Rows of the step's answer relation before grouping.
  std::size_t answer_rows = 0;
};

struct PlanExecInfo {
  std::vector<StepExecInfo> steps;
  // Sum of peak intermediate sizes — the work proxy the benches report.
  std::size_t total_peak_rows = 0;
};

// Chooses evaluation options (join orders) for one step, given the base
// database and the relations materialized by earlier steps. The optimizer
// provides a cost-based implementation (CostBasedOrderChooser in
// optimizer/executor_support.h); without one, steps run in text order —
// which for a prefilter plan joins the small ok-relations first and can
// degrade into cross products, so passing a chooser is strongly advised.
using StepOrderChooser = std::function<FlockEvalOptions(
    const UnionQuery& step_query, const Database& db,
    const std::map<std::string, const Relation*>& extra)>;

struct PlanExecOptions {
  // Join orders for each step (index-aligned with plan.steps); missing
  // entries mean text order. Each entry holds per-disjunct CQ options.
  std::vector<FlockEvalOptions> per_step;
  // When set, overrides per_step: called once per step with the
  // materialized prior-step relations available.
  StepOrderChooser order_chooser;
  // Additional predicates visible to every step — e.g. the materialized
  // intermediate views of a Datalog program (flocks/program_eval.h).
  const std::map<std::string, const Relation*>* extra_predicates = nullptr;
  // Steps whose results the caller already has (keyed by result name):
  // the executor uses the given relation instead of evaluating the step.
  // This is how a flock *sequence* works — §2.2's footnote on maximal
  // itemsets has "each flock depending on the result of the previous
  // flock", and the previous flock's answer simply stands in for the
  // matching prefilter steps (mining/maximal.h). The caller is trusted:
  // the relation must equal the step's answer (same parameter order).
  const std::map<std::string, const Relation*>* precomputed_steps = nullptr;
  // Verify legality before executing (recommended; turn off only in
  // benches that check it once outside the timed region).
  bool check_legal = true;
  // Workers for plan execution (1 = serial). With more than one, steps
  // that do not reference each other's results evaluate concurrently in
  // dependency waves on the shared pool, and each step's flock evaluation
  // inherits the knob (FlockEvalOptions::threads). The executed plan's
  // result — and every per-step materialization — is identical for every
  // value; see DESIGN.md, "Threading model".
  unsigned threads = 1;
  // Observability (common/metrics.h). When `metrics` is non-null the
  // executor builds one "step" child per plan step (in plan order,
  // pre-allocated before each wave fans out, so concurrent steps write
  // disjoint subtrees) plus a final "project" child; each step child
  // holds that step's flock-evaluation tree. `trace` receives span events
  // and must be thread-safe; ignored unless `metrics` is set.
  OpMetrics* metrics = nullptr;
  TraceSink* trace = nullptr;
  // Resource governance (common/resource.h): propagated into every step's
  // flock evaluation and checked between dependency waves, so a latched
  // deadline/cancel/budget failure stops the plan before the next wave
  // starts and surfaces as the context's typed Status.
  QueryContext* ctx = nullptr;
};

// Executes `plan` for `flock` over `db`. The result matches
// EvaluateFlock(flock, db) for every legal plan (the §4.2 equivalence),
// with the same canonically sorted row order.
Result<Relation> ExecutePlan(const QueryPlan& plan, const QueryFlock& flock,
                             const Database& db,
                             const PlanExecOptions& options = {},
                             PlanExecInfo* info = nullptr);

}  // namespace qf

#endif  // QF_PLAN_EXECUTOR_H_
