// The legality rule for query plans (paper §4.2): a sequence of FILTER
// steps is equivalent to the original flock when
//   (1) each step uses the same filter condition as the flock (checked by
//       construction — plans carry no per-step filters);
//   (2) each step defines a uniquely named relation (and the name does not
//       shadow a base predicate of the query);
//   (3) each step's query derives from the flock's query by adding
//       subgoals that are exact copies of earlier steps' left sides and
//       deleting original subgoals, keeping the result safe;
//   (4) the final step deletes no original subgoal.
// The rule is stated for support-type filters; per the paper's Future Work
// we accept any monotone filter.
#ifndef QF_PLAN_LEGALITY_H_
#define QF_PLAN_LEGALITY_H_

#include "common/status.h"
#include "flocks/flock.h"
#include "plan/plan.h"

namespace qf {

// Verifies `plan` is legal for `flock` per the rule above. Returns OK or an
// INVALID_ARGUMENT/FAILED_PRECONDITION status naming the violated clause.
Status CheckLegal(const QueryPlan& plan, const QueryFlock& flock);

}  // namespace qf

#endif  // QF_PLAN_LEGALITY_H_
