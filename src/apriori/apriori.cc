#include "apriori/apriori.h"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "common/check.h"
#include "common/hash.h"
#include "common/thread_pool.h"

namespace qf {
namespace {

// Baskets per morsel for the parallel counting passes. Counts merge by
// addition, so the decomposition affects nothing but scheduling.
constexpr std::size_t kMorselBaskets = 256;

// Counts item occurrences over all baskets, morsel-parallel: per-morsel
// count vectors summed elementwise (integer adds commute, so the result
// is the serial one for every thread count).
std::vector<std::size_t> CountItems(const BasketData& data, unsigned threads,
                                    OpMetrics* metrics = nullptr) {
  std::vector<std::size_t> item_counts(data.item_count(), 0);
  if (threads <= 1 || data.baskets.size() < 2 * kMorselBaskets) {
    for (const std::vector<ItemId>& basket : data.baskets) {
      for (ItemId item : basket) ++item_counts[item];
    }
    return item_counts;
  }
  if (metrics != nullptr) {
    metrics->morsels += MorselCount(data.baskets.size(), kMorselBaskets);
  }
  std::vector<std::vector<std::size_t>> partials(
      MorselCount(data.baskets.size(), kMorselBaskets));
  ParallelFor(threads, data.baskets.size(), kMorselBaskets,
              [&](std::size_t begin, std::size_t end) {
                std::vector<std::size_t>& local =
                    partials[begin / kMorselBaskets];
                local.assign(data.item_count(), 0);
                for (std::size_t b = begin; b < end; ++b) {
                  for (ItemId item : data.baskets[b]) ++local[item];
                }
              });
  for (const std::vector<std::size_t>& local : partials) {
    for (std::size_t i = 0; i < local.size(); ++i) item_counts[i] += local[i];
  }
  return item_counts;
}

// Counts co-occurring pairs (packed as hi<<32|lo) over all baskets whose
// items pass `keep`, morsel-parallel with per-morsel maps merged by
// addition.
template <typename Keep>
std::unordered_map<std::uint64_t, std::size_t> CountPairs(
    const BasketData& data, unsigned threads, const Keep& keep,
    OpMetrics* metrics = nullptr) {
  using PairCounts = std::unordered_map<std::uint64_t, std::size_t>;
  auto count_range = [&](std::size_t begin, std::size_t end,
                         PairCounts& counts) {
    std::vector<ItemId> filtered;
    for (std::size_t b = begin; b < end; ++b) {
      filtered.clear();
      for (ItemId item : data.baskets[b]) {
        if (keep(item)) filtered.push_back(item);
      }
      for (std::size_t i = 0; i < filtered.size(); ++i) {
        for (std::size_t j = i + 1; j < filtered.size(); ++j) {
          std::uint64_t key =
              (static_cast<std::uint64_t>(filtered[i]) << 32) | filtered[j];
          ++counts[key];
        }
      }
    }
  };
  PairCounts pair_counts;
  if (threads <= 1 || data.baskets.size() < 2 * kMorselBaskets) {
    count_range(0, data.baskets.size(), pair_counts);
    return pair_counts;
  }
  if (metrics != nullptr) {
    metrics->morsels += MorselCount(data.baskets.size(), kMorselBaskets);
  }
  std::vector<PairCounts> partials(
      MorselCount(data.baskets.size(), kMorselBaskets));
  ParallelFor(threads, data.baskets.size(), kMorselBaskets,
              [&](std::size_t begin, std::size_t end) {
                count_range(begin, end, partials[begin / kMorselBaskets]);
              });
  for (PairCounts& local : partials) {
    for (const auto& [key, count] : local) pair_counts[key] += count;
  }
  return pair_counts;
}

struct ItemVecHash {
  std::size_t operator()(const std::vector<ItemId>& v) const {
    std::size_t seed = v.size();
    for (ItemId i : v) seed = HashCombine(seed, i);
    return seed;
  }
};

using CandidateCounts =
    std::unordered_map<std::vector<ItemId>, std::size_t, ItemVecHash>;

// Generates level-(k+1) candidates from the frequent level-k sets: join
// pairs sharing their first k-1 items, then prune candidates having any
// infrequent k-subset (the a-priori trick itself).
std::vector<std::vector<ItemId>> GenerateCandidates(
    const std::vector<std::vector<ItemId>>& frequent) {
  std::vector<std::vector<ItemId>> candidates;
  if (frequent.empty()) return candidates;
  std::unordered_set<std::vector<ItemId>, ItemVecHash> frequent_set(
      frequent.begin(), frequent.end());
  std::size_t k = frequent.front().size();
  // frequent is sorted lexicographically; sets sharing a (k-1)-prefix are
  // adjacent, so a double loop over each prefix group suffices.
  for (std::size_t i = 0; i < frequent.size(); ++i) {
    for (std::size_t j = i + 1; j < frequent.size(); ++j) {
      if (!std::equal(frequent[i].begin(), frequent[i].end() - 1,
                      frequent[j].begin(), frequent[j].end() - 1)) {
        break;  // prefix group ended
      }
      std::vector<ItemId> candidate = frequent[i];
      candidate.push_back(frequent[j].back());
      // Prune: every k-subset must be frequent. Subsets dropping one of
      // the first k-1 positions need checking (the two parents cover the
      // other two).
      bool prune = false;
      for (std::size_t drop = 0; drop + 2 <= k + 1 && !prune; ++drop) {
        std::vector<ItemId> subset;
        subset.reserve(k);
        for (std::size_t p = 0; p < candidate.size(); ++p) {
          if (p != drop) subset.push_back(candidate[p]);
        }
        prune = !frequent_set.contains(subset);
      }
      if (!prune) candidates.push_back(std::move(candidate));
    }
  }
  std::sort(candidates.begin(), candidates.end());
  return candidates;
}

// Counts candidate occurrences by enumerating the size-k subsets of each
// basket (restricted to items that appear in some candidate) and probing
// the candidate set. Morsel-parallel over baskets with per-morsel count
// maps merged by addition — supports are identical for every thread
// count.
void CountCandidates(const BasketData& data,
                     const std::vector<std::vector<ItemId>>& candidates,
                     unsigned threads, CandidateCounts& counts,
                     OpMetrics* metrics = nullptr) {
  if (candidates.empty()) return;
  std::size_t k = candidates.front().size();
  std::unordered_set<std::vector<ItemId>, ItemVecHash> candidate_set(
      candidates.begin(), candidates.end());
  std::unordered_set<ItemId> live_items;
  for (const auto& c : candidates) live_items.insert(c.begin(), c.end());

  auto count_range = [&](std::size_t begin, std::size_t end,
                         CandidateCounts& local) {
    std::vector<ItemId> filtered;
    std::vector<std::size_t> choose;
    for (std::size_t b = begin; b < end; ++b) {
      filtered.clear();
      for (ItemId item : data.baskets[b]) {
        if (live_items.contains(item)) filtered.push_back(item);
      }
      if (filtered.size() < k) continue;
      // Enumerate k-combinations of `filtered` (sorted, so combinations
      // are sorted too).
      choose.assign(k, 0);
      for (std::size_t i = 0; i < k; ++i) choose[i] = i;
      while (true) {
        std::vector<ItemId> subset(k);
        for (std::size_t i = 0; i < k; ++i) subset[i] = filtered[choose[i]];
        auto it = candidate_set.find(subset);
        if (it != candidate_set.end()) ++local[subset];
        // Next combination.
        std::size_t i = k;
        while (i > 0) {
          --i;
          if (choose[i] != i + filtered.size() - k) break;
        }
        if (choose[i] == i + filtered.size() - k) break;
        ++choose[i];
        for (std::size_t j = i + 1; j < k; ++j) choose[j] = choose[j - 1] + 1;
      }
    }
  };

  if (threads <= 1 || data.baskets.size() < 2 * kMorselBaskets) {
    count_range(0, data.baskets.size(), counts);
    return;
  }
  if (metrics != nullptr) {
    metrics->morsels += MorselCount(data.baskets.size(), kMorselBaskets);
  }
  std::vector<CandidateCounts> partials(
      MorselCount(data.baskets.size(), kMorselBaskets));
  ParallelFor(threads, data.baskets.size(), kMorselBaskets,
              [&](std::size_t begin, std::size_t end) {
                count_range(begin, end, partials[begin / kMorselBaskets]);
              });
  for (CandidateCounts& local : partials) {
    for (auto& [subset, count] : local) counts[subset] += count;
  }
}

}  // namespace

Result<BasketData> BasketsFromRelation(const Relation& rel,
                                       const std::string& bid_column,
                                       const std::string& item_column) {
  std::optional<std::size_t> bid_idx = rel.schema().IndexOf(bid_column);
  std::optional<std::size_t> item_idx = rel.schema().IndexOf(item_column);
  if (!bid_idx.has_value() || !item_idx.has_value()) {
    return InvalidArgumentError("basket relation must have columns " +
                                bid_column + " and " + item_column);
  }

  // Assign item ids in sorted-name order so id comparisons equal
  // lexicographic name comparisons.
  std::map<Value, ItemId> item_ids;
  for (const Tuple& t : rel.rows()) item_ids.emplace(t[*item_idx], 0);
  BasketData data;
  data.item_names.reserve(item_ids.size());
  {
    ItemId next = 0;
    for (auto& [value, id] : item_ids) {
      id = next++;
      data.item_names.push_back(value.ToString());
    }
  }

  std::map<Value, std::vector<ItemId>> baskets;
  for (const Tuple& t : rel.rows()) {
    baskets[t[*bid_idx]].push_back(item_ids[t[*item_idx]]);
  }
  data.baskets.reserve(baskets.size());
  for (auto& [bid, items] : baskets) {
    std::sort(items.begin(), items.end());
    items.erase(std::unique(items.begin(), items.end()), items.end());
    data.baskets.push_back(std::move(items));
  }
  return data;
}

std::vector<Itemset> AprioriFrequentItemsets(const BasketData& data,
                                             const AprioriOptions& options,
                                             AprioriStats* stats) {
  std::vector<Itemset> result;
  OpMetrics* m = options.metrics;
  TraceSink* tr = m != nullptr ? options.trace : nullptr;
  if (m != nullptr && m->op.empty()) m->op = "apriori";

  // Level 1: plain counting pass.
  std::vector<std::vector<ItemId>> frequent;
  {
    OpMetrics* node = m != nullptr ? m->AddChild("count_level", "k=1")
                                   : nullptr;
    ScopedOp span(node, tr);
    std::vector<std::size_t> item_counts =
        CountItems(data, options.threads, node);
    for (ItemId item = 0; item < data.item_count(); ++item) {
      if (item_counts[item] >= options.min_support) {
        frequent.push_back({item});
        result.push_back({{item}, item_counts[item]});
      }
    }
    if (node != nullptr) {
      node->rows_in = data.baskets.size();
      node->tuples_probed = data.item_count();
      node->rows_out = frequent.size();
    }
  }
  if (stats != nullptr) {
    stats->candidates_per_level.push_back(data.item_count());
    stats->frequent_per_level.push_back(frequent.size());
  }

  std::size_t k = 1;
  while (!frequent.empty() &&
         (options.max_size == 0 || k < options.max_size)) {
    std::vector<std::vector<ItemId>> candidates =
        GenerateCandidates(frequent);
    if (candidates.empty()) break;
    OpMetrics* node =
        m != nullptr ? m->AddChild("count_level", "k=" + std::to_string(k + 1))
                     : nullptr;
    ScopedOp span(node, tr);
    CandidateCounts counts;
    counts.reserve(candidates.size());
    CountCandidates(data, candidates, options.threads, counts, node);
    frequent.clear();
    for (const std::vector<ItemId>& c : candidates) {
      auto it = counts.find(c);
      std::size_t support = it == counts.end() ? 0 : it->second;
      if (support >= options.min_support) {
        frequent.push_back(c);
        result.push_back({c, support});
      }
    }
    std::sort(frequent.begin(), frequent.end());
    if (node != nullptr) {
      node->rows_in = data.baskets.size();
      node->tuples_probed = candidates.size();
      node->rows_out = frequent.size();
    }
    if (stats != nullptr) {
      stats->candidates_per_level.push_back(candidates.size());
      stats->frequent_per_level.push_back(frequent.size());
    }
    ++k;
  }
  return result;
}

std::vector<Itemset> AprioriFrequentPairs(const BasketData& data,
                                          std::size_t min_support,
                                          unsigned threads,
                                          OpMetrics* metrics) {
  if (metrics != nullptr && metrics->op.empty()) metrics->op = "apriori";
  // Pass 1: singleton counts; the pre-filter of §1.2.
  std::vector<bool> frequent_item(data.item_count(), false);
  std::size_t frequent_items = 0;
  {
    OpMetrics* node =
        metrics != nullptr ? metrics->AddChild("count_level", "k=1") : nullptr;
    ScopedOp span(node);
    std::vector<std::size_t> item_counts = CountItems(data, threads, node);
    for (ItemId i = 0; i < data.item_count(); ++i) {
      frequent_item[i] = item_counts[i] >= min_support;
      if (frequent_item[i]) ++frequent_items;
    }
    if (node != nullptr) {
      node->rows_in = data.baskets.size();
      node->tuples_probed = data.item_count();
      node->rows_out = frequent_items;
    }
  }

  // Pass 2: count pairs of surviving items only.
  OpMetrics* node =
      metrics != nullptr ? metrics->AddChild("count_level", "k=2") : nullptr;
  ScopedOp span(node);
  std::unordered_map<std::uint64_t, std::size_t> pair_counts =
      CountPairs(data, threads,
                 [&](ItemId item) { return bool{frequent_item[item]}; }, node);

  std::vector<Itemset> result;
  for (const auto& [key, count] : pair_counts) {
    if (count >= min_support) {
      result.push_back({{static_cast<ItemId>(key >> 32),
                         static_cast<ItemId>(key & 0xffffffffu)},
                        count});
    }
  }
  std::sort(result.begin(), result.end(),
            [](const Itemset& a, const Itemset& b) { return a.items < b.items; });
  if (node != nullptr) {
    node->rows_in = data.baskets.size();
    node->tuples_probed = pair_counts.size();
    node->rows_out = result.size();
  }
  return result;
}

std::vector<Itemset> NaiveFrequentPairs(const BasketData& data,
                                        std::size_t min_support,
                                        unsigned threads,
                                        OpMetrics* metrics) {
  if (metrics != nullptr && metrics->op.empty()) metrics->op = "naive_pairs";
  OpMetrics* node =
      metrics != nullptr ? metrics->AddChild("count_level", "k=2 (no prefilter)")
                         : nullptr;
  ScopedOp span(node);
  // No pre-filter: every co-occurring pair is counted.
  std::unordered_map<std::uint64_t, std::size_t> pair_counts =
      CountPairs(data, threads, [](ItemId) { return true; }, node);
  std::vector<Itemset> result;
  for (const auto& [key, count] : pair_counts) {
    if (count >= min_support) {
      result.push_back({{static_cast<ItemId>(key >> 32),
                         static_cast<ItemId>(key & 0xffffffffu)},
                        count});
    }
  }
  std::sort(result.begin(), result.end(),
            [](const Itemset& a, const Itemset& b) { return a.items < b.items; });
  if (node != nullptr) {
    node->rows_in = data.baskets.size();
    node->tuples_probed = pair_counts.size();
    node->rows_out = result.size();
  }
  return result;
}

Relation ItemsetsToRelation(const std::vector<Itemset>& itemsets,
                            const BasketData& data, std::size_t k,
                            const std::string& name) {
  std::vector<std::string> columns;
  for (std::size_t i = 1; i <= k; ++i) {
    columns.push_back("I" + std::to_string(i));
  }
  columns.push_back("Support");
  Relation out(name, Schema(std::move(columns)));
  for (const Itemset& set : itemsets) {
    if (set.items.size() != k) continue;
    Tuple row;
    for (ItemId item : set.items) {
      QF_CHECK(item < data.item_names.size());
      row.push_back(Value(data.item_names[item]));
    }
    row.push_back(Value(static_cast<std::int64_t>(set.support)));
    out.Add(std::move(row));
  }
  return out;
}

}  // namespace qf
