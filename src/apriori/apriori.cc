#include "apriori/apriori.h"

#include <algorithm>
#include <cstdint>
#include <map>

#include "common/check.h"
#include "common/flat_hash.h"
#include "common/hash.h"
#include "common/thread_pool.h"

namespace qf {
namespace {

// Baskets per morsel for the parallel counting passes. Counts merge by
// addition, so the decomposition affects nothing but scheduling.
constexpr std::size_t kMorselBaskets = 256;

// Counts item occurrences over all baskets, morsel-parallel: per-morsel
// count vectors summed elementwise (integer adds commute, so the result
// is the serial one for every thread count).
std::vector<std::size_t> CountItems(const BasketData& data, unsigned threads,
                                    OpMetrics* metrics = nullptr,
                                    QueryContext* ctx = nullptr) {
  std::vector<std::size_t> item_counts(data.item_count(), 0);
  if (threads <= 1 || data.baskets.size() < 2 * kMorselBaskets) {
    OpGovernor gov(ctx, /*bytes_per_row=*/0);
    for (const std::vector<ItemId>& basket : data.baskets) {
      if (!gov.TickInput()) break;
      for (ItemId item : basket) ++item_counts[item];
    }
    return item_counts;
  }
  if (metrics != nullptr) {
    metrics->morsels += MorselCount(data.baskets.size(), kMorselBaskets);
  }
  std::vector<std::vector<std::size_t>> partials(
      MorselCount(data.baskets.size(), kMorselBaskets));
  ParallelFor(threads, data.baskets.size(), kMorselBaskets,
              [&](std::size_t begin, std::size_t end) {
                std::vector<std::size_t>& local =
                    partials[begin / kMorselBaskets];
                local.assign(data.item_count(), 0);
                if (ctx != nullptr && !ctx->Poll()) return;
                OpGovernor gov(ctx, /*bytes_per_row=*/0);
                for (std::size_t b = begin; b < end; ++b) {
                  if (!gov.TickInput()) break;
                  for (ItemId item : data.baskets[b]) ++local[item];
                }
              });
  for (const std::vector<std::size_t>& local : partials) {
    for (std::size_t i = 0; i < local.size(); ++i) item_counts[i] += local[i];
  }
  return item_counts;
}

// Distinct co-occurring pairs (packed as hi<<32|lo) with their counts:
// a flat table maps pair key -> dense id, keys/counts live in parallel
// dense vectors indexed by that id.
struct PairCounts {
  FlatIdTable table;
  std::vector<std::uint64_t> keys;
  std::vector<std::size_t> counts;

  std::size_t size() const { return keys.size(); }

  void Bump(std::uint64_t key, std::size_t by, std::uint64_t& probes) {
    auto [id, inserted] = table.Upsert(
        HashCombine(0, key),
        [&](std::uint32_t prev) { return keys[prev] == key; }, probes);
    if (inserted) {
      keys.push_back(key);
      counts.push_back(by);
    } else {
      counts[id] += by;
    }
  }
};

// Counts co-occurring pairs over all baskets whose items pass `keep`,
// morsel-parallel with per-morsel tables merged by addition (the merge
// reuses each key's stored hash — pairs are never re-hashed).
template <typename Keep>
PairCounts CountPairs(const BasketData& data, unsigned threads,
                      const Keep& keep, OpMetrics* metrics = nullptr,
                      QueryContext* ctx = nullptr) {
  auto count_range = [&](std::size_t begin, std::size_t end,
                         PairCounts& counts) {
    std::uint64_t probes = 0;
    std::vector<ItemId> filtered;
    // Pair tables grow with the co-occurrence structure; charge one
    // table entry per distinct pair via the governor's admit path.
    OpGovernor gov(ctx, sizeof(std::uint64_t) + sizeof(std::size_t));
    for (std::size_t b = begin; b < end; ++b) {
      if (!gov.TickInput()) break;
      filtered.clear();
      for (ItemId item : data.baskets[b]) {
        if (keep(item)) filtered.push_back(item);
      }
      bool live = true;
      for (std::size_t i = 0; live && i < filtered.size(); ++i) {
        for (std::size_t j = i + 1; j < filtered.size(); ++j) {
          if (!gov.Admit()) {
            live = false;
            break;
          }
          std::uint64_t key =
              (static_cast<std::uint64_t>(filtered[i]) << 32) | filtered[j];
          counts.Bump(key, 1, probes);
        }
      }
      if (!live) break;
    }
  };
  PairCounts pair_counts;
  if (threads <= 1 || data.baskets.size() < 2 * kMorselBaskets) {
    count_range(0, data.baskets.size(), pair_counts);
    return pair_counts;
  }
  if (metrics != nullptr) {
    metrics->morsels += MorselCount(data.baskets.size(), kMorselBaskets);
  }
  std::vector<PairCounts> partials(
      MorselCount(data.baskets.size(), kMorselBaskets));
  ParallelFor(threads, data.baskets.size(), kMorselBaskets,
              [&](std::size_t begin, std::size_t end) {
                if (ctx != nullptr && !ctx->Poll()) return;
                count_range(begin, end, partials[begin / kMorselBaskets]);
              });
  std::uint64_t merge_probes = 0;
  for (const PairCounts& local : partials) {
    for (std::size_t i = 0; i < local.size(); ++i) {
      std::uint64_t key = local.keys[i];
      auto [id, inserted] = pair_counts.table.Upsert(
          local.table.hash_at(static_cast<std::uint32_t>(i)),
          [&](std::uint32_t prev) { return pair_counts.keys[prev] == key; },
          merge_probes);
      if (inserted) {
        pair_counts.keys.push_back(key);
        pair_counts.counts.push_back(local.counts[i]);
      } else {
        pair_counts.counts[id] += local.counts[i];
      }
    }
  }
  return pair_counts;
}

std::size_t ItemVecHash(const std::vector<ItemId>& v) {
  std::size_t seed = v.size();
  for (ItemId i : v) seed = HashCombine(seed, i);
  return seed;
}

// Flat set over a fixed roster of itemsets (frequent sets or candidates):
// dense ids are roster positions, membership tests hash the probe vector
// once and compare against roster entries in place.
class ItemsetIndex {
 public:
  explicit ItemsetIndex(const std::vector<std::vector<ItemId>>& sets)
      : sets_(sets) {
    table_.Reserve(sets.size());
    std::uint64_t probes = 0;
    for (const std::vector<ItemId>& s : sets_) {
      auto [id, inserted] = table_.Upsert(
          ItemVecHash(s),
          [&](std::uint32_t prev) { return sets_[prev] == s; }, probes);
      QF_CHECK_MSG(inserted, "itemset roster contains duplicates");
      static_cast<void>(id);
    }
  }

  // Roster position of `s`, or FlatIdTable::kNone.
  std::uint32_t Find(const std::vector<ItemId>& s) const {
    std::uint64_t probes = 0;
    return table_.Find(ItemVecHash(s),
                       [&](std::uint32_t prev) { return sets_[prev] == s; },
                       probes);
  }

  bool Contains(const std::vector<ItemId>& s) const {
    return Find(s) != FlatIdTable::kNone;
  }

 private:
  const std::vector<std::vector<ItemId>>& sets_;
  FlatIdTable table_;
};

// Generates level-(k+1) candidates from the frequent level-k sets: join
// pairs sharing their first k-1 items, then prune candidates having any
// infrequent k-subset (the a-priori trick itself).
std::vector<std::vector<ItemId>> GenerateCandidates(
    const std::vector<std::vector<ItemId>>& frequent) {
  std::vector<std::vector<ItemId>> candidates;
  if (frequent.empty()) return candidates;
  ItemsetIndex frequent_set(frequent);
  std::size_t k = frequent.front().size();
  // frequent is sorted lexicographically; sets sharing a (k-1)-prefix are
  // adjacent, so a double loop over each prefix group suffices.
  for (std::size_t i = 0; i < frequent.size(); ++i) {
    for (std::size_t j = i + 1; j < frequent.size(); ++j) {
      if (!std::equal(frequent[i].begin(), frequent[i].end() - 1,
                      frequent[j].begin(), frequent[j].end() - 1)) {
        break;  // prefix group ended
      }
      std::vector<ItemId> candidate = frequent[i];
      candidate.push_back(frequent[j].back());
      // Prune: every k-subset must be frequent. Subsets dropping one of
      // the first k-1 positions need checking (the two parents cover the
      // other two).
      bool prune = false;
      std::vector<ItemId> subset;
      subset.reserve(k);
      for (std::size_t drop = 0; drop + 2 <= k + 1 && !prune; ++drop) {
        subset.clear();
        for (std::size_t p = 0; p < candidate.size(); ++p) {
          if (p != drop) subset.push_back(candidate[p]);
        }
        prune = !frequent_set.Contains(subset);
      }
      if (!prune) candidates.push_back(std::move(candidate));
    }
  }
  std::sort(candidates.begin(), candidates.end());
  return candidates;
}

// Counts candidate occurrences by enumerating the size-k subsets of each
// basket (restricted to items that appear in some candidate) and probing
// a flat candidate index; supports land in `counts`, a dense vector
// indexed by candidate roster position. Morsel-parallel over baskets
// with per-morsel vectors merged by addition — supports are identical
// for every thread count.
void CountCandidates(const BasketData& data,
                     const std::vector<std::vector<ItemId>>& candidates,
                     unsigned threads, std::vector<std::size_t>& counts,
                     OpMetrics* metrics = nullptr,
                     QueryContext* ctx = nullptr) {
  counts.assign(candidates.size(), 0);
  if (candidates.empty()) return;
  std::size_t k = candidates.front().size();
  ItemsetIndex candidate_set(candidates);
  std::vector<char> live_items(data.item_count(), 0);
  for (const auto& c : candidates) {
    for (ItemId item : c) live_items[item] = 1;
  }

  auto count_range = [&](std::size_t begin, std::size_t end,
                         std::vector<std::size_t>& local) {
    std::vector<ItemId> filtered;
    std::vector<std::size_t> choose;
    std::vector<ItemId> subset(k);  // reused across all combinations
    OpGovernor gov(ctx, /*bytes_per_row=*/0);
    for (std::size_t b = begin; b < end; ++b) {
      if (!gov.TickInput()) break;
      filtered.clear();
      for (ItemId item : data.baskets[b]) {
        if (live_items[item]) filtered.push_back(item);
      }
      if (filtered.size() < k) continue;
      // Enumerate k-combinations of `filtered` (sorted, so combinations
      // are sorted too).
      choose.assign(k, 0);
      for (std::size_t i = 0; i < k; ++i) choose[i] = i;
      while (true) {
        // The k-combination space of one basket can itself be huge; poll
        // inside it, too.
        if (!gov.TickInput()) break;
        for (std::size_t i = 0; i < k; ++i) subset[i] = filtered[choose[i]];
        std::uint32_t id = candidate_set.Find(subset);
        if (id != FlatIdTable::kNone) ++local[id];
        // Next combination.
        std::size_t i = k;
        while (i > 0) {
          --i;
          if (choose[i] != i + filtered.size() - k) break;
        }
        if (choose[i] == i + filtered.size() - k) break;
        ++choose[i];
        for (std::size_t j = i + 1; j < k; ++j) choose[j] = choose[j - 1] + 1;
      }
    }
  };

  if (threads <= 1 || data.baskets.size() < 2 * kMorselBaskets) {
    count_range(0, data.baskets.size(), counts);
    return;
  }
  if (metrics != nullptr) {
    metrics->morsels += MorselCount(data.baskets.size(), kMorselBaskets);
  }
  std::vector<std::vector<std::size_t>> partials(
      MorselCount(data.baskets.size(), kMorselBaskets));
  ParallelFor(threads, data.baskets.size(), kMorselBaskets,
              [&](std::size_t begin, std::size_t end) {
                std::vector<std::size_t>& local =
                    partials[begin / kMorselBaskets];
                local.assign(candidates.size(), 0);
                if (ctx != nullptr && !ctx->Poll()) return;
                count_range(begin, end, local);
              });
  for (const std::vector<std::size_t>& local : partials) {
    for (std::size_t i = 0; i < local.size(); ++i) counts[i] += local[i];
  }
}

}  // namespace

Result<BasketData> BasketsFromRelation(const Relation& rel,
                                       const std::string& bid_column,
                                       const std::string& item_column) {
  std::optional<std::size_t> bid_idx = rel.schema().IndexOf(bid_column);
  std::optional<std::size_t> item_idx = rel.schema().IndexOf(item_column);
  if (!bid_idx.has_value() || !item_idx.has_value()) {
    return InvalidArgumentError("basket relation must have columns " +
                                bid_column + " and " + item_column);
  }

  // Assign item ids in sorted-name order so id comparisons equal
  // lexicographic name comparisons.
  std::map<Value, ItemId> item_ids;
  for (const Tuple& t : rel.rows()) item_ids.emplace(t[*item_idx], 0);
  BasketData data;
  data.item_names.reserve(item_ids.size());
  {
    ItemId next = 0;
    for (auto& [value, id] : item_ids) {
      id = next++;
      data.item_names.push_back(value.ToString());
    }
  }

  std::map<Value, std::vector<ItemId>> baskets;
  for (const Tuple& t : rel.rows()) {
    baskets[t[*bid_idx]].push_back(item_ids[t[*item_idx]]);
  }
  data.baskets.reserve(baskets.size());
  for (auto& [bid, items] : baskets) {
    std::sort(items.begin(), items.end());
    items.erase(std::unique(items.begin(), items.end()), items.end());
    data.baskets.push_back(std::move(items));
  }
  return data;
}

std::vector<Itemset> AprioriFrequentItemsets(const BasketData& data,
                                             const AprioriOptions& options,
                                             AprioriStats* stats) {
  std::vector<Itemset> result;
  OpMetrics* m = options.metrics;
  TraceSink* tr = m != nullptr ? options.trace : nullptr;
  if (m != nullptr && m->op.empty()) m->op = "apriori";

  // Level 1: plain counting pass.
  std::vector<std::vector<ItemId>> frequent;
  {
    OpMetrics* node = m != nullptr ? m->AddChild("count_level", "k=1")
                                   : nullptr;
    ScopedOp span(node, tr);
    std::vector<std::size_t> item_counts =
        CountItems(data, options.threads, node, options.ctx);
    for (ItemId item = 0; item < data.item_count(); ++item) {
      if (item_counts[item] >= options.min_support) {
        frequent.push_back({item});
        result.push_back({{item}, item_counts[item]});
      }
    }
    if (node != nullptr) {
      node->rows_in = data.baskets.size();
      node->tuples_probed = data.item_count();
      node->rows_out = frequent.size();
    }
  }
  if (stats != nullptr) {
    stats->candidates_per_level.push_back(data.item_count());
    stats->frequent_per_level.push_back(frequent.size());
  }

  std::size_t k = 1;
  while (!frequent.empty() &&
         (options.max_size == 0 || k < options.max_size)) {
    if (options.ctx != nullptr && !options.ctx->ok()) break;
    std::vector<std::vector<ItemId>> candidates =
        GenerateCandidates(frequent);
    if (candidates.empty()) break;
    OpMetrics* node =
        m != nullptr ? m->AddChild("count_level", "k=" + std::to_string(k + 1))
                     : nullptr;
    ScopedOp span(node, tr);
    std::vector<std::size_t> counts;
    CountCandidates(data, candidates, options.threads, counts, node,
                    options.ctx);
    frequent.clear();
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      if (counts[i] >= options.min_support) {
        frequent.push_back(candidates[i]);
        result.push_back({candidates[i], counts[i]});
      }
    }
    // `candidates` is sorted, so `frequent` already is.
    if (node != nullptr) {
      node->rows_in = data.baskets.size();
      node->tuples_probed = candidates.size();
      node->rows_out = frequent.size();
    }
    if (stats != nullptr) {
      stats->candidates_per_level.push_back(candidates.size());
      stats->frequent_per_level.push_back(frequent.size());
    }
    ++k;
  }
  return result;
}

std::vector<Itemset> AprioriFrequentPairs(const BasketData& data,
                                          std::size_t min_support,
                                          unsigned threads,
                                          OpMetrics* metrics,
                                          QueryContext* ctx) {
  if (metrics != nullptr && metrics->op.empty()) metrics->op = "apriori";
  // Pass 1: singleton counts; the pre-filter of §1.2.
  std::vector<bool> frequent_item(data.item_count(), false);
  std::size_t frequent_items = 0;
  {
    OpMetrics* node =
        metrics != nullptr ? metrics->AddChild("count_level", "k=1") : nullptr;
    ScopedOp span(node);
    std::vector<std::size_t> item_counts =
        CountItems(data, threads, node, ctx);
    for (ItemId i = 0; i < data.item_count(); ++i) {
      frequent_item[i] = item_counts[i] >= min_support;
      if (frequent_item[i]) ++frequent_items;
    }
    if (node != nullptr) {
      node->rows_in = data.baskets.size();
      node->tuples_probed = data.item_count();
      node->rows_out = frequent_items;
    }
  }

  // Pass 2: count pairs of surviving items only.
  OpMetrics* node =
      metrics != nullptr ? metrics->AddChild("count_level", "k=2") : nullptr;
  ScopedOp span(node);
  PairCounts pair_counts = CountPairs(
      data, threads, [&](ItemId item) { return bool{frequent_item[item]}; },
      node, ctx);

  std::vector<Itemset> result;
  for (std::size_t i = 0; i < pair_counts.size(); ++i) {
    std::uint64_t key = pair_counts.keys[i];
    std::size_t count = pair_counts.counts[i];
    if (count >= min_support) {
      result.push_back({{static_cast<ItemId>(key >> 32),
                         static_cast<ItemId>(key & 0xffffffffu)},
                        count});
    }
  }
  std::sort(result.begin(), result.end(),
            [](const Itemset& a, const Itemset& b) { return a.items < b.items; });
  if (node != nullptr) {
    node->rows_in = data.baskets.size();
    node->tuples_probed = pair_counts.size();
    node->rows_out = result.size();
  }
  return result;
}

std::vector<Itemset> NaiveFrequentPairs(const BasketData& data,
                                        std::size_t min_support,
                                        unsigned threads,
                                        OpMetrics* metrics,
                                        QueryContext* ctx) {
  if (metrics != nullptr && metrics->op.empty()) metrics->op = "naive_pairs";
  OpMetrics* node =
      metrics != nullptr ? metrics->AddChild("count_level", "k=2 (no prefilter)")
                         : nullptr;
  ScopedOp span(node);
  // No pre-filter: every co-occurring pair is counted.
  PairCounts pair_counts =
      CountPairs(data, threads, [](ItemId) { return true; }, node, ctx);
  std::vector<Itemset> result;
  for (std::size_t i = 0; i < pair_counts.size(); ++i) {
    std::uint64_t key = pair_counts.keys[i];
    std::size_t count = pair_counts.counts[i];
    if (count >= min_support) {
      result.push_back({{static_cast<ItemId>(key >> 32),
                         static_cast<ItemId>(key & 0xffffffffu)},
                        count});
    }
  }
  std::sort(result.begin(), result.end(),
            [](const Itemset& a, const Itemset& b) { return a.items < b.items; });
  if (node != nullptr) {
    node->rows_in = data.baskets.size();
    node->tuples_probed = pair_counts.size();
    node->rows_out = result.size();
  }
  return result;
}

Relation ItemsetsToRelation(const std::vector<Itemset>& itemsets,
                            const BasketData& data, std::size_t k,
                            const std::string& name) {
  std::vector<std::string> columns;
  for (std::size_t i = 1; i <= k; ++i) {
    columns.push_back("I" + std::to_string(i));
  }
  columns.push_back("Support");
  Relation out(name, Schema(std::move(columns)));
  for (const Itemset& set : itemsets) {
    if (set.items.size() != k) continue;
    Tuple row;
    for (ItemId item : set.items) {
      QF_CHECK(item < data.item_names.size());
      row.push_back(Value(data.item_names[item]));
    }
    row.push_back(Value(static_cast<std::int64_t>(set.support)));
    out.Add(std::move(row));
  }
  return out;
}

}  // namespace qf
