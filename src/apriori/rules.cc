#include "apriori/rules.h"

#include <cmath>
#include <cstdio>
#include <map>

#include "common/check.h"

namespace qf {

std::vector<AssociationRule> DeriveRules(const BasketData& data,
                                         const std::vector<Itemset>& frequent,
                                         const RuleOptions& options) {
  std::map<std::vector<ItemId>, std::size_t> support;
  for (const Itemset& set : frequent) support[set.items] = set.support;
  double n_baskets = static_cast<double>(data.baskets.size());

  std::vector<AssociationRule> rules;
  for (const Itemset& set : frequent) {
    if (set.items.size() < 2) continue;
    for (std::size_t drop = 0; drop < set.items.size(); ++drop) {
      AssociationRule rule;
      rule.rhs = set.items[drop];
      for (std::size_t i = 0; i < set.items.size(); ++i) {
        if (i != drop) rule.lhs.push_back(set.items[i]);
      }
      rule.support = set.support;

      auto lhs_it = support.find(rule.lhs);
      QF_CHECK_MSG(lhs_it != support.end(),
                   "frequent itemsets are not downward-closed");
      auto rhs_it = support.find({rule.rhs});
      QF_CHECK_MSG(rhs_it != support.end(),
                   "frequent itemsets are not downward-closed");

      rule.confidence =
          static_cast<double>(set.support) / lhs_it->second;
      double rhs_probability = rhs_it->second / n_baskets;
      rule.interest =
          rhs_probability > 0 ? rule.confidence / rhs_probability : 0;

      if (rule.confidence < options.min_confidence) continue;
      if (std::abs(rule.interest - 1.0) < options.min_interest_deviation) {
        continue;
      }
      rules.push_back(std::move(rule));
    }
  }
  return rules;
}

std::string RuleToString(const AssociationRule& rule,
                         const BasketData& data) {
  std::string out;
  for (std::size_t i = 0; i < rule.lhs.size(); ++i) {
    if (i > 0) out += ", ";
    out += data.item_names[rule.lhs[i]];
  }
  out += " -> " + data.item_names[rule.rhs];
  char buf[96];
  std::snprintf(buf, sizeof(buf),
                "  (support %zu, confidence %.2f, interest %.2f)",
                rule.support, rule.confidence, rule.interest);
  out += buf;
  return out;
}

}  // namespace qf
