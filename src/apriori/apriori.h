// The classic a-priori algorithm ([AIS93], [AS94]) for frequent itemsets —
// the specialized ancestor that query flocks generalize (§1.1–1.2), kept
// here as the baseline the flock machinery is benchmarked against, and as
// the correctness oracle for market-basket flocks.
//
// Also provides the *naive* pair counter — the "conventional optimizer"
// strategy of §1.3 that counts every co-occurring pair without the
// frequent-singleton pre-filter — used to reproduce the 20x claim.
#ifndef QF_APRIORI_APRIORI_H_
#define QF_APRIORI_APRIORI_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/resource.h"
#include "common/status.h"
#include "relational/relation.h"

namespace qf {

using ItemId = std::uint32_t;

// Market baskets in a columnar, integer-coded form.
struct BasketData {
  // Per basket: sorted, duplicate-free item ids.
  std::vector<std::vector<ItemId>> baskets;
  // Id -> display name; ids are assigned in sorted name order, so id order
  // equals lexicographic name order (matching "$1 < $2" in flocks).
  std::vector<std::string> item_names;

  std::size_t item_count() const { return item_names.size(); }
};

// Converts a baskets(BID, Item) relation. Columns are identified by name.
Result<BasketData> BasketsFromRelation(const Relation& rel,
                                       const std::string& bid_column,
                                       const std::string& item_column);

struct Itemset {
  std::vector<ItemId> items;  // sorted
  std::size_t support = 0;    // number of baskets containing all items
};

struct AprioriOptions {
  std::size_t min_support = 1;
  // Largest itemset size to mine; 0 = keep going until a level is empty.
  std::size_t max_size = 0;
  // Workers for the counting passes (1 = serial). Baskets are counted in
  // morsels with per-morsel tables merged by addition — integer counts,
  // so the supports (and therefore the mined itemsets, which are emitted
  // in candidate order) are identical for every value.
  unsigned threads = 1;
  // Observability (common/metrics.h): one "count_level" child per level
  // ("k=1", "k=2", ...), with rows_in = baskets scanned, tuples_probed =
  // candidates counted, rows_out = frequent sets found. `trace` receives
  // span events; ignored unless `metrics` is set.
  OpMetrics* metrics = nullptr;
  TraceSink* trace = nullptr;
  // Resource governance (common/resource.h): counting passes poll the
  // context at basket granularity (and at morsel starts) and stop early
  // once it latches. Because the miners return plain vectors, a governed
  // caller MUST call ctx->Check() afterwards and discard the (possibly
  // truncated) result on failure.
  QueryContext* ctx = nullptr;
};

struct AprioriStats {
  // Candidates counted per level (level k at index k-1). The a-priori
  // payoff is visible here: candidate counts stay near the frequent-set
  // counts instead of exploding combinatorially.
  std::vector<std::size_t> candidates_per_level;
  std::vector<std::size_t> frequent_per_level;
};

// Levelwise a-priori: L1 from a counting pass; C_{k+1} from joining L_k
// with itself and pruning candidates with an infrequent k-subset; counting
// by enumerating candidate-matching subsets of each basket.
std::vector<Itemset> AprioriFrequentItemsets(const BasketData& data,
                                             const AprioriOptions& options,
                                             AprioriStats* stats = nullptr);

// Frequent pairs only, with the a-priori pre-filter (count singletons,
// drop infrequent items, then count surviving pairs). `threads` works as
// in AprioriOptions: same result for every value.
std::vector<Itemset> AprioriFrequentPairs(const BasketData& data,
                                          std::size_t min_support,
                                          unsigned threads = 1,
                                          OpMetrics* metrics = nullptr,
                                          QueryContext* ctx = nullptr);

// The unoptimized baseline: counts every co-occurring pair (the Fig. 1 SQL
// query as a conventional optimizer executes it) and filters at the end.
std::vector<Itemset> NaiveFrequentPairs(const BasketData& data,
                                        std::size_t min_support,
                                        unsigned threads = 1,
                                        OpMetrics* metrics = nullptr,
                                        QueryContext* ctx = nullptr);

// Renders itemsets as a relation over item-name columns I1..Ik plus
// Support, for comparison against flock results.
Relation ItemsetsToRelation(const std::vector<Itemset>& itemsets,
                            const BasketData& data, std::size_t k,
                            const std::string& name);

}  // namespace qf

#endif  // QF_APRIORI_APRIORI_H_
