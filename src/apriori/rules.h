// Association rules and the three measures of §1.1.
//
//   Support:    the itemset {lhs ∪ rhs} appears in many baskets.
//   Confidence: P(rhs | lhs) — the fraction of lhs-baskets containing rhs.
//   Interest:   confidence / P(rhs) — how much likelier rhs is given lhs
//               than in the general population (1 = independent; the
//               beer -> diapers folklore is "interest well above 1").
//
// Rules are derived from a frequent-itemset collection (the output of
// AprioriFrequentItemsets): every frequent itemset of size >= 2 yields one
// rule per choice of a single-item consequent.
#ifndef QF_APRIORI_RULES_H_
#define QF_APRIORI_RULES_H_

#include <cstddef>
#include <string>
#include <vector>

#include "apriori/apriori.h"

namespace qf {

struct AssociationRule {
  std::vector<ItemId> lhs;  // sorted antecedent
  ItemId rhs = 0;           // single-item consequent
  std::size_t support = 0;  // baskets containing lhs ∪ {rhs}
  double confidence = 0;    // support / support(lhs)
  double interest = 0;      // confidence / (support(rhs) / n_baskets)
};

struct RuleOptions {
  double min_confidence = 0.5;
  // Keep rules whose interest deviates from 1 by at least this much in
  // either direction (the paper: "significantly higher or lower").
  double min_interest_deviation = 0.0;
};

// Derives rules from `frequent` (which must be downward-closed, i.e. the
// complete output of AprioriFrequentItemsets at some support — every
// subset of a listed itemset is listed too; aborts otherwise).
std::vector<AssociationRule> DeriveRules(const BasketData& data,
                                         const std::vector<Itemset>& frequent,
                                         const RuleOptions& options = {});

// Renders "beer -> diapers  (support 120, confidence 0.78, interest 2.4)".
std::string RuleToString(const AssociationRule& rule, const BasketData& data);

}  // namespace qf

#endif  // QF_APRIORI_RULES_H_
