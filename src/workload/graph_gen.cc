#include "workload/graph_gen.h"

#include <algorithm>

#include "common/rng.h"
#include "common/zipf.h"

namespace qf {

Relation GenerateGraph(const GraphConfig& config) {
  Rng rng(config.seed);
  ZipfSampler target_zipf(config.n_nodes, config.target_theta);
  Relation arc("arc", Schema({"From", "To"}));
  arc.mutable_rows().reserve(
      static_cast<std::size_t>(config.n_nodes * config.avg_out_degree));
  for (std::uint32_t v = 0; v < config.n_nodes; ++v) {
    if (rng.NextBernoulli(config.sink_fraction)) continue;  // sink node
    double jitter = 0.5 + rng.NextDouble();
    std::uint32_t degree = std::max<std::uint32_t>(
        1, static_cast<std::uint32_t>(config.avg_out_degree * jitter));
    for (std::uint32_t i = 0; i < degree; ++i) {
      std::uint32_t to = target_zipf.Sample(rng);
      if (to == v) continue;  // no self-loops
      arc.AddRow({Value(static_cast<std::int64_t>(v)),
                  Value(static_cast<std::int64_t>(to))});
    }
  }
  arc.Dedup();
  return arc;
}

}  // namespace qf
