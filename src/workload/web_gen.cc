#include "workload/web_gen.h"

#include <algorithm>
#include <cstdio>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "common/zipf.h"

namespace qf {
namespace {

// Formats into the caller's stack buffer; the returned view is interned
// directly by Value(string_view) with no intermediate std::string.
std::string_view Name(const char* prefix, std::uint32_t n, char (&buf)[24]) {
  int len = std::snprintf(buf, sizeof(buf), "%s%06u", prefix, n);
  return std::string_view(buf, static_cast<std::size_t>(len));
}

}  // namespace

Database GenerateWeb(const WebConfig& config) {
  Rng rng(config.seed);
  ZipfSampler word_zipf(config.n_words, config.word_theta);
  ZipfSampler topic_offset(24, 1.0);

  // Documents share a bounded set of topics; each topic is a cluster of
  // nearby word ranks. Titles of a document, and anchors pointing at it,
  // draw from its topic's cluster.
  std::vector<std::uint32_t> topic_anchor(std::max(1u, config.n_topics));
  for (std::uint32_t t = 0; t < topic_anchor.size(); ++t) {
    topic_anchor[t] = rng.NextBelow(config.n_words);
  }
  std::vector<std::uint32_t> topic_base(config.n_docs);
  for (std::uint32_t d = 0; d < config.n_docs; ++d) {
    topic_base[d] =
        topic_anchor[rng.NextBelow(static_cast<std::uint32_t>(
            topic_anchor.size()))];
  }
  auto pick_word = [&](std::uint32_t doc) {
    if (rng.NextBernoulli(config.topic_locality)) {
      return (topic_base[doc] + topic_offset.Sample(rng)) % config.n_words;
    }
    return word_zipf.Sample(rng);
  };

  Relation in_title("inTitle", Schema({"Doc", "Word"}));
  Relation in_anchor("inAnchor", Schema({"Anchor", "Word"}));
  Relation link("link", Schema({"Anchor", "From", "To"}));
  in_title.mutable_rows().reserve(
      static_cast<std::size_t>(config.n_docs * config.words_per_title));
  in_anchor.mutable_rows().reserve(
      static_cast<std::size_t>(config.n_anchors * config.words_per_anchor));
  link.mutable_rows().reserve(config.n_anchors);

  char buf_a[24], buf_b[24], buf_c[24];
  for (std::uint32_t d = 0; d < config.n_docs; ++d) {
    double jitter = 0.5 + rng.NextDouble();
    std::uint32_t n = std::max<std::uint32_t>(
        1, static_cast<std::uint32_t>(config.words_per_title * jitter));
    for (std::uint32_t i = 0; i < n; ++i) {
      in_title.AddRow({Value(Name("doc", d, buf_a)),
                       Value(Name("w", pick_word(d), buf_b))});
    }
  }

  for (std::uint32_t a = 0; a < config.n_anchors; ++a) {
    Value anchor(Name("anc", a, buf_a));  // interned once per anchor
    std::uint32_t from = rng.NextBelow(config.n_docs);
    std::uint32_t to = rng.NextBelow(config.n_docs);
    link.AddRow({anchor, Value(Name("doc", from, buf_b)),
                 Value(Name("doc", to, buf_c))});
    double jitter = 0.5 + rng.NextDouble();
    std::uint32_t n = std::max<std::uint32_t>(
        1, static_cast<std::uint32_t>(config.words_per_anchor * jitter));
    for (std::uint32_t i = 0; i < n; ++i) {
      // Anchor text describes the link target.
      in_anchor.AddRow({anchor, Value(Name("w", pick_word(to), buf_b))});
    }
  }

  in_title.Dedup();
  in_anchor.Dedup();
  link.Dedup();

  Database db;
  db.PutRelation(std::move(in_title));
  db.PutRelation(std::move(in_anchor));
  db.PutRelation(std::move(link));
  return db;
}

}  // namespace qf
