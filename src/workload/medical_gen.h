// Synthetic medical database for the side-effects flock (Ex. 2.2/3.2 and
// the plans of §4): diagnoses(Patient, Disease), exhibits(Patient,
// Symptom), treatments(Patient, Medicine), causes(Disease, Symptom).
//
// The generator's knobs mirror the statistics the paper says drive the
// filter-step decisions: the density of rare symptoms and rarely used
// medicines (Ex. 3.2's discussion of when subqueries (1)/(2) pay off).
#ifndef QF_WORKLOAD_MEDICAL_GEN_H_
#define QF_WORKLOAD_MEDICAL_GEN_H_

#include <cstdint>

#include "relational/database.h"

namespace qf {

struct MedicalConfig {
  std::uint32_t n_patients = 10000;
  std::uint32_t n_diseases = 50;
  std::uint32_t n_symptoms = 500;
  std::uint32_t n_medicines = 300;
  // Symptoms/medicines recorded per patient.
  double symptoms_per_patient = 4;
  double medicines_per_patient = 2;
  // Zipf exponents: higher = fewer common symptoms/medicines and a longer
  // rare tail, which makes the okS/okM prefilters (Fig. 5) more valuable.
  double symptom_theta = 1.0;
  double medicine_theta = 1.0;
  // Fraction of a disease's symptom list covered by `causes` (how often a
  // symptom is "explained").
  double causes_coverage = 0.3;
  // Probability that a patient's symptom/medicine is drawn from their
  // disease's cluster rather than the global distribution. Real medical
  // data is disease-correlated; without correlation no ($s,$m) pair
  // reaches meaningful support.
  double disease_locality = 0.6;
  std::uint64_t seed = 1;
};

// Generates the four relations into a fresh database. Each patient has
// exactly one disease (the paper's simplifying assumption in Ex. 2.2).
Database GenerateMedical(const MedicalConfig& config);

}  // namespace qf

#endif  // QF_WORKLOAD_MEDICAL_GEN_H_
