// Random directed graphs for the "pathological" path-query flock of
// Ex. 4.3 / Figs. 6-7: arc(From, To). In-degrees are Zipf-skewed so a few
// hub nodes have many successors while the tail has few — the regime where
// each cascade step of the (n+1)-step plan prunes more of the tail.
#ifndef QF_WORKLOAD_GRAPH_GEN_H_
#define QF_WORKLOAD_GRAPH_GEN_H_

#include <cstdint>

#include "relational/relation.h"

namespace qf {

struct GraphConfig {
  std::uint32_t n_nodes = 2000;
  double avg_out_degree = 8;
  // Zipf exponent for target popularity (0 = Erdos-Renyi-like).
  double target_theta = 0.8;
  // Fraction of nodes that are sinks (no outgoing arcs). Sinks make arcs
  // *dangle* for path queries — the tuples a Yannakakis full reducer
  // eliminates and a support cascade prunes.
  double sink_fraction = 0;
  std::uint64_t seed = 1;
};

// Generates arc(From, To) with integer node ids, no self-loops,
// duplicates collapsed.
Relation GenerateGraph(const GraphConfig& config);

}  // namespace qf

#endif  // QF_WORKLOAD_GRAPH_GEN_H_
