// Synthetic HTML-corpus relations for the strongly-connected-words union
// flock (Ex. 2.3 / Fig. 4): inTitle(Doc, Word), inAnchor(Anchor, Word),
// link(Anchor, From, To). Word frequencies are Zipf (real text is), which
// is what makes per-disjunct union prefilters (§3.4) pay off.
#ifndef QF_WORKLOAD_WEB_GEN_H_
#define QF_WORKLOAD_WEB_GEN_H_

#include <cstdint>

#include "relational/database.h"

namespace qf {

struct WebConfig {
  std::uint32_t n_docs = 5000;
  std::uint32_t n_words = 2000;
  std::uint32_t n_anchors = 8000;
  double words_per_title = 5;
  double words_per_anchor = 2;
  double word_theta = 1.0;
  // Probability that a title/anchor word comes from the document's topic
  // cluster rather than the global distribution. Real text is topical;
  // without correlation no word pair reaches meaningful support.
  double topic_locality = 0.5;
  // Number of distinct topics documents are spread over; many documents
  // share a topic, which is what makes topical word pairs frequent.
  std::uint32_t n_topics = 200;
  std::uint64_t seed = 1;
};

// Generates the three relations. Anchor ids are disjoint from document ids
// (the COUNT of Fig. 4 assumes no values are shared between the two).
Database GenerateWeb(const WebConfig& config);

}  // namespace qf

#endif  // QF_WORKLOAD_WEB_GEN_H_
