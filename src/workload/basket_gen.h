// Synthetic market-basket data, standing in for the paper's retail and
// newspaper word-occurrence data sets (DESIGN.md, "Data substitutions").
// Item popularity is Zipf-distributed: the a-priori payoff measured in
// bench_fig1/bench_fig2 exists precisely because a few items are frequent
// and the long tail is not.
#ifndef QF_WORKLOAD_BASKET_GEN_H_
#define QF_WORKLOAD_BASKET_GEN_H_

#include <cstdint>

#include "relational/relation.h"

namespace qf {

struct BasketConfig {
  std::uint32_t n_baskets = 10000;
  std::uint32_t n_items = 1000;
  // Items are drawn per basket until this average size is reached
  // (basket sizes are Poisson-like via per-basket jitter).
  double avg_basket_size = 10;
  // Zipf exponent of item popularity (0 = uniform).
  double zipf_theta = 1.0;
  // Probability an item is drawn from the basket's topic cluster rather
  // than the global distribution, and the number of shared topics.
  // Correlated purchases are what makes item *pairs* frequent (the
  // hamburger-and-ketchup effect the paper's intro is about).
  double topic_locality = 0.3;
  std::uint32_t n_topics = 100;
  std::uint64_t seed = 1;
};

// Generates baskets(BID, Item): BID an integer, Item a zero-padded symbol
// ("item00042") so lexicographic comparisons behave like the paper's
// word/item examples. Duplicate (basket, item) draws are collapsed.
Relation GenerateBaskets(const BasketConfig& config);

// Generates importance(BID, W) weights for the weighted-basket extension
// (Fig. 10): non-negative, heavy-tailed (Pareto-like) weights.
Relation GenerateImportance(const BasketConfig& config, double mean_weight);

}  // namespace qf

#endif  // QF_WORKLOAD_BASKET_GEN_H_
