#include "workload/medical_gen.h"

#include <algorithm>
#include <cstdio>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "common/zipf.h"

namespace qf {
namespace {

// Formats into the caller's stack buffer; the returned view is interned
// directly by Value(string_view) with no intermediate std::string.
std::string_view Name(const char* prefix, std::uint32_t n, char (&buf)[24]) {
  int len = std::snprintf(buf, sizeof(buf), "%s%05u", prefix, n);
  return std::string_view(buf, static_cast<std::size_t>(len));
}

}  // namespace

Database GenerateMedical(const MedicalConfig& config) {
  Rng rng(config.seed);
  ZipfSampler symptom_zipf(config.n_symptoms, config.symptom_theta);
  ZipfSampler medicine_zipf(config.n_medicines, config.medicine_theta);
  // Within a disease's cluster, nearby ranks are likelier: diseases have a
  // few hallmark symptoms and standard treatments.
  ZipfSampler cluster_offset(32, 1.0);

  // Each disease anchors a cluster of symptoms and medicines.
  std::vector<std::uint32_t> symptom_base(config.n_diseases);
  std::vector<std::uint32_t> medicine_base(config.n_diseases);
  for (std::uint32_t d = 0; d < config.n_diseases; ++d) {
    symptom_base[d] = rng.NextBelow(config.n_symptoms);
    medicine_base[d] = rng.NextBelow(config.n_medicines);
  }

  Relation diagnoses("diagnoses", Schema({"Patient", "Disease"}));
  Relation exhibits("exhibits", Schema({"Patient", "Symptom"}));
  Relation treatments("treatments", Schema({"Patient", "Medicine"}));
  Relation causes("causes", Schema({"Disease", "Symptom"}));
  diagnoses.mutable_rows().reserve(config.n_patients);
  exhibits.mutable_rows().reserve(static_cast<std::size_t>(
      config.n_patients * config.symptoms_per_patient));
  treatments.mutable_rows().reserve(static_cast<std::size_t>(
      config.n_patients * config.medicines_per_patient));
  causes.mutable_rows().reserve(static_cast<std::size_t>(config.n_diseases) *
                                36);

  auto pick = [&](const ZipfSampler& global, std::uint32_t base,
                  std::uint32_t n) {
    if (rng.NextBernoulli(config.disease_locality)) {
      return (base + cluster_offset.Sample(rng)) % n;
    }
    return global.Sample(rng);
  };

  char buf_a[24], buf_b[24];
  for (std::uint32_t p = 0; p < config.n_patients; ++p) {
    Value patient(Name("pat", p, buf_a));  // interned once per patient
    std::uint32_t disease = rng.NextBelow(config.n_diseases);
    diagnoses.AddRow({patient, Value(Name("dis", disease, buf_b))});

    double jitter = 0.5 + rng.NextDouble();
    auto count = [&jitter](double avg) {
      return std::max<std::uint32_t>(
          1, static_cast<std::uint32_t>(avg * jitter));
    };
    std::uint32_t n_symptoms = count(config.symptoms_per_patient);
    for (std::uint32_t i = 0; i < n_symptoms; ++i) {
      std::uint32_t s =
          pick(symptom_zipf, symptom_base[disease], config.n_symptoms);
      exhibits.AddRow({patient, Value(Name("sym", s, buf_b))});
    }
    std::uint32_t n_meds = count(config.medicines_per_patient);
    for (std::uint32_t i = 0; i < n_meds; ++i) {
      std::uint32_t m =
          pick(medicine_zipf, medicine_base[disease], config.n_medicines);
      treatments.AddRow({patient, Value(Name("med", m, buf_b))});
    }
  }

  // `causes` covers a fraction of each disease's cluster (the explained
  // symptoms) — what remains unexplained is exactly what the side-effects
  // flock hunts for.
  for (std::uint32_t d = 0; d < config.n_diseases; ++d) {
    for (std::uint32_t off = 0; off < 32; ++off) {
      if (!rng.NextBernoulli(config.causes_coverage)) continue;
      std::uint32_t s = (symptom_base[d] + off) % config.n_symptoms;
      causes.AddRow(
          {Value(Name("dis", d, buf_a)), Value(Name("sym", s, buf_b))});
    }
    // Plus a smattering of globally common symptoms every disease may
    // plausibly explain.
    for (int i = 0; i < 4; ++i) {
      causes.AddRow({Value(Name("dis", d, buf_a)),
                     Value(Name("sym", symptom_zipf.Sample(rng), buf_b))});
    }
  }

  diagnoses.Dedup();
  exhibits.Dedup();
  treatments.Dedup();
  causes.Dedup();

  Database db;
  db.PutRelation(std::move(diagnoses));
  db.PutRelation(std::move(exhibits));
  db.PutRelation(std::move(treatments));
  db.PutRelation(std::move(causes));
  return db;
}

}  // namespace qf
