#include "workload/basket_gen.h"

#include <cmath>
#include <cstdio>
#include <string_view>

#include "common/rng.h"
#include "common/zipf.h"

namespace qf {
namespace {

// Formats into the caller's stack buffer; the returned view is interned
// directly by Value(string_view) with no intermediate std::string.
std::string_view ItemName(std::uint32_t rank, char (&buf)[16]) {
  int len = std::snprintf(buf, sizeof(buf), "item%05u", rank);
  return std::string_view(buf, static_cast<std::size_t>(len));
}

}  // namespace

Relation GenerateBaskets(const BasketConfig& config) {
  Rng rng(config.seed);
  ZipfSampler zipf(config.n_items, config.zipf_theta);
  ZipfSampler topic_offset(24, 1.0);
  std::vector<std::uint32_t> topic_anchor(std::max(1u, config.n_topics));
  for (std::uint32_t t = 0; t < topic_anchor.size(); ++t) {
    topic_anchor[t] = rng.NextBelow(config.n_items);
  }
  Relation rel("baskets", Schema({"BID", "Item"}));
  rel.mutable_rows().reserve(
      static_cast<std::size_t>(config.n_baskets * config.avg_basket_size));

  char buf[16];
  for (std::uint32_t b = 0; b < config.n_baskets; ++b) {
    std::uint32_t base = topic_anchor[rng.NextBelow(
        static_cast<std::uint32_t>(topic_anchor.size()))];
    // Basket size: average +- 50% jitter, at least 1.
    double jitter = 0.5 + rng.NextDouble();
    std::uint32_t size = std::max<std::uint32_t>(
        1, static_cast<std::uint32_t>(config.avg_basket_size * jitter));
    for (std::uint32_t i = 0; i < size; ++i) {
      std::uint32_t item =
          rng.NextBernoulli(config.topic_locality)
              ? (base + topic_offset.Sample(rng)) % config.n_items
              : zipf.Sample(rng);
      rel.AddRow(
          {Value(static_cast<std::int64_t>(b)), Value(ItemName(item, buf))});
    }
  }
  rel.Dedup();
  return rel;
}

Relation GenerateImportance(const BasketConfig& config, double mean_weight) {
  Rng rng(config.seed + 0x9e3779b9);
  Relation rel("importance", Schema({"BID", "W"}));
  rel.mutable_rows().reserve(config.n_baskets);
  for (std::uint32_t b = 0; b < config.n_baskets; ++b) {
    // Pareto(alpha=2) scaled to the requested mean: heavy tail, finite
    // mean, strictly positive.
    double u = 1.0 - rng.NextDouble();
    double pareto = 1.0 / std::sqrt(u);      // mean 2 for alpha=2, xm=1
    double w = mean_weight * pareto / 2.0;
    rel.AddRow({Value(static_cast<std::int64_t>(b)), Value(w)});
  }
  // No Dedup: one row per basket id by construction, so deduplicating
  // was a full hash pass that could never drop a row.
  return rel;
}

}  // namespace qf
