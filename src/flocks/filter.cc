#include "flocks/filter.h"

#include "common/check.h"

namespace qf {

std::string_view FilterAggName(FilterAgg agg) {
  switch (agg) {
    case FilterAgg::kCount:
      return "COUNT";
    case FilterAgg::kSum:
      return "SUM";
    case FilterAgg::kMin:
      return "MIN";
    case FilterAgg::kMax:
      return "MAX";
  }
  return "?";
}

bool FilterCondition::IsMonotone() const {
  switch (agg) {
    case FilterAgg::kCount:
    case FilterAgg::kSum:  // over non-negative values; checked at run time
    case FilterAgg::kMax:
      // Growing the answer set can only raise COUNT/SUM/MAX.
      return cmp == CompareOp::kGe || cmp == CompareOp::kGt;
    case FilterAgg::kMin:
      // Growing the answer set can only lower MIN.
      return cmp == CompareOp::kLe || cmp == CompareOp::kLt;
  }
  return false;
}

bool FilterCondition::Accepts(const Value& aggregate) const {
  QF_CHECK_MSG(aggregate.IsNumeric(), "filter aggregate must be numeric");
  return EvalCompare(cmp, Value(aggregate.AsNumber()), Value(threshold));
}

Value FilterCondition::Aggregate(const Relation& answers,
                                 bool require_nonnegative) const {
  if (agg == FilterAgg::kCount) {
    return Value(static_cast<std::int64_t>(answers.size()));
  }
  QF_CHECK_MSG(agg_head_index < answers.arity(),
               "aggregate column out of range");
  double sum = 0;
  bool has_extreme = false;
  double extreme = 0;
  for (const Tuple& t : answers.rows()) {
    const Value& v = t[agg_head_index];
    QF_CHECK_MSG(v.IsNumeric(), "filter aggregate over non-numeric column");
    double x = v.AsNumber();
    if (agg == FilterAgg::kSum) {
      if (require_nonnegative) {
        QF_CHECK_MSG(x >= 0,
                     "SUM filter requires non-negative weights for "
                     "monotonicity (paper Future Work)");
      }
      sum += x;
    } else if (!has_extreme ||
               (agg == FilterAgg::kMin ? x < extreme : x > extreme)) {
      extreme = x;
      has_extreme = true;
    }
  }
  if (agg == FilterAgg::kSum) return Value(sum);
  // MIN/MAX of an empty answer set: report an identity that fails ">= t"
  // and "<= t" thresholds naturally is impossible with one value, so use
  // the convention that an empty set never passes; callers special-case via
  // Accepts on this sentinel.
  if (!has_extreme) {
    return Value(agg == FilterAgg::kMin ? 1.0 / 0.0 : -1.0 / 0.0);
  }
  return Value(extreme);
}

std::string FilterCondition::ToString(
    const std::string& head_name,
    const std::vector<std::string>& head_vars) const {
  // COUNT over a single-variable head prints as the paper writes it,
  // COUNT(answer.B); multi-variable heads (or missing names) use "*".
  std::string column = "*";
  std::size_t index = agg == FilterAgg::kCount ? 0 : agg_head_index;
  if (index < head_vars.size() &&
      (agg != FilterAgg::kCount || head_vars.size() == 1)) {
    column = head_vars[index];
  }
  std::string out(FilterAggName(agg));
  out += "(" + head_name + "." + column + ") ";
  out += CompareOpName(cmp);
  double t = threshold;
  if (t == static_cast<double>(static_cast<std::int64_t>(t))) {
    out += " " + std::to_string(static_cast<std::int64_t>(t));
  } else {
    out += " " + Value(t).ToString();
  }
  return out;
}

}  // namespace qf
