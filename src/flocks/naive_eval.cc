#include "flocks/naive_eval.h"

#include <map>
#include <set>
#include <string>
#include <vector>

#include "flocks/cq_eval.h"
#include "relational/ops.h"

namespace qf {
namespace {

// Active domain of each parameter: values in base-relation columns at
// positions where the parameter occurs in any relational subgoal.
Result<std::map<std::string, std::set<Value>>> ParameterDomains(
    const QueryFlock& flock, const Database& db) {
  std::map<std::string, std::set<Value>> domains;
  for (const std::string& p : flock.ParameterNames()) domains[p];
  for (const ConjunctiveQuery& cq : flock.query.disjuncts) {
    for (const Subgoal& s : cq.subgoals) {
      if (!s.is_relational()) continue;
      if (!db.Has(s.predicate())) {
        return NotFoundError("unknown predicate: " + s.predicate());
      }
      const Relation& base = db.Get(s.predicate());
      if (base.arity() != s.args().size()) {
        return InvalidArgumentError("arity mismatch for predicate " +
                                    s.predicate());
      }
      for (std::size_t i = 0; i < s.args().size(); ++i) {
        if (!s.args()[i].is_parameter()) continue;
        std::set<Value>& dom = domains[s.args()[i].name()];
        for (const Tuple& row : base.rows()) dom.insert(row[i]);
      }
    }
  }
  return domains;
}

}  // namespace

Result<Relation> NaiveEvaluateFlock(const QueryFlock& flock,
                                    const Database& db,
                                    const NaiveEvalOptions& options) {
  if (Status s = flock.Validate(&db); !s.ok()) return s;

  Result<std::map<std::string, std::set<Value>>> domains =
      ParameterDomains(flock, db);
  if (!domains.ok()) return domains.status();

  std::vector<std::string> params = flock.ParameterNames();
  std::vector<std::vector<Value>> domain_vectors;
  std::size_t total = 1;
  for (const std::string& p : params) {
    const std::set<Value>& dom = (*domains)[p];
    domain_vectors.emplace_back(dom.begin(), dom.end());
    if (dom.empty()) total = 0;
    if (total > 0 && dom.size() > options.max_assignments / total) {
      return FailedPreconditionError(
          "naive evaluation would enumerate too many assignments");
    }
    total *= dom.size();
  }

  std::vector<std::string> param_columns;
  for (const std::string& p : params) param_columns.push_back("$" + p);
  Relation result{Schema(param_columns)};
  result.set_name("flock_result");
  if (total == 0) return result;

  std::size_t head_arity = flock.query.head_arity();
  std::vector<std::string> canonical_heads;
  for (std::size_t i = 0; i < head_arity; ++i) {
    canonical_heads.push_back("_h" + std::to_string(i));
  }
  PredicateResolver resolver(db);

  CqEvalOptions cq_options;
  cq_options.ctx = options.ctx;

  // Odometer over the candidate assignments.
  std::vector<std::size_t> index(params.size(), 0);
  while (true) {
    if (options.ctx != nullptr && !options.ctx->Poll()) {
      return options.ctx->Check();
    }
    std::map<std::string, Value> assignment;
    for (std::size_t i = 0; i < params.size(); ++i) {
      assignment.emplace(params[i], domain_vectors[i][index[i]]);
    }

    // Evaluate the substituted query: union the disjuncts' answer sets.
    Relation answers{Schema(canonical_heads)};
    bool error = false;
    Status error_status;
    for (const ConjunctiveQuery& cq : flock.query.disjuncts) {
      ConjunctiveQuery ground = SubstituteParameters(cq, assignment);
      Result<Relation> bindings = EvaluateConjunctiveBindings(
          ground, resolver, ground.head_vars, cq_options);
      if (!bindings.ok()) {
        error = true;
        error_status = bindings.status();
        break;
      }
      answers = Union(answers, Rename(std::move(*bindings), canonical_heads));
    }
    if (error) return error_status;

    Value aggregate =
        flock.filter.Aggregate(answers, options.require_nonnegative_sum);
    bool passes = answers.empty()
                      ? (flock.filter.agg == FilterAgg::kCount
                             ? flock.filter.Accepts(Value(std::int64_t{0}))
                             : false)
                      : flock.filter.Accepts(aggregate);
    if (passes) {
      Tuple row;
      for (std::size_t i = 0; i < params.size(); ++i) {
        row.push_back(domain_vectors[i][index[i]]);
      }
      result.Add(std::move(row));
    }

    // Advance the odometer.
    std::size_t k = 0;
    while (k < index.size()) {
      if (++index[k] < domain_vectors[k].size()) break;
      index[k] = 0;
      ++k;
    }
    if (k == index.size()) break;
  }
  return result;
}

}  // namespace qf
