// Translation of query flocks to SQL (§1.3–1.4 of the paper: mining in SQL
// is expressible — Fig. 1 — but conventional optimizers miss the a-priori
// rewrite; emitting the SQL makes the correspondence concrete and lets a
// flock run on an external DBMS).
//
// The emitted shape is
//
//   SELECT <params> FROM (
//     SELECT DISTINCT <params>, <head>  FROM <subgoals> WHERE <conditions>
//     UNION ...
//   ) AS answer
//   GROUP BY <params>
//   HAVING COUNT(*) >= s
//
// which preserves the paper's set semantics (DISTINCT inner answers, UNION
// deduplication, COUNT of distinct answer tuples).
#ifndef QF_FLOCKS_SQL_EMIT_H_
#define QF_FLOCKS_SQL_EMIT_H_

#include <string>

#include "common/status.h"
#include "flocks/flock.h"
#include "relational/database.h"

namespace qf {

// Emits SQL for `flock`. `db` supplies the column names of the base
// relations (plan-step relations are named after their "$"-tagged
// parameters). Negated subgoals become NOT EXISTS subqueries.
Result<std::string> EmitSql(const QueryFlock& flock, const Database& db);

}  // namespace qf

#endif  // QF_FLOCKS_SQL_EMIT_H_
