// Filter conditions of query flocks (paper §2, §4.2, Future Work).
//
// A filter is a condition on the *result relation* of the parametrized
// query for one fixed parameter assignment. The paper's central case is a
// support filter COUNT(answer.*) >= s; the Future Work section extends the
// optimization to any *monotone* condition — one that stays true for every
// superset — such as SUM of non-negative weights, MAX >= c, or MIN <= c.
#ifndef QF_FLOCKS_FILTER_H_
#define QF_FLOCKS_FILTER_H_

#include <cstddef>
#include <string>
#include <vector>

#include "datalog/ast.h"
#include "relational/relation.h"

namespace qf {

enum class FilterAgg { kCount, kSum, kMin, kMax };

std::string_view FilterAggName(FilterAgg agg);  // "COUNT", "SUM", ...

struct FilterCondition {
  FilterAgg agg = FilterAgg::kCount;
  CompareOp cmp = CompareOp::kGe;
  double threshold = 1;
  // For kSum/kMin/kMax: the head column (0-based) being aggregated.
  // Ignored for kCount, which counts distinct answer tuples.
  std::size_t agg_head_index = 0;

  // Builds the paper's standard support filter, COUNT(answer.*) >= s.
  static FilterCondition MinSupport(double s) {
    return FilterCondition{FilterAgg::kCount, CompareOp::kGe, s, 0};
  }

  // True for the support shape the plan-generation rule of §4.2 covers:
  // a lower bound on the number of answer tuples.
  bool IsSupportStyle() const {
    return agg == FilterAgg::kCount &&
           (cmp == CompareOp::kGe || cmp == CompareOp::kGt);
  }

  // True when the condition is monotone in the answer set: once true for a
  // relation it is true for every superset. These are the filters for which
  // subquery-based pruning is sound (Future Work). SUM is monotone only
  // over non-negative values; the evaluator verifies that at run time.
  bool IsMonotone() const;

  // Applies the condition to an aggregate value computed from an answer
  // set (count, sum, min, or max as selected by `agg`).
  bool Accepts(const Value& aggregate) const;

  // Computes the aggregate of `answers` per this condition. `answers` must
  // be duplicate-free (set semantics). Aborts if kSum sees a negative
  // value while `require_nonnegative` is set.
  Value Aggregate(const Relation& answers, bool require_nonnegative) const;

  // Renders e.g. "COUNT(answer.P) >= 20" given the head name and head
  // variable names of the (first disjunct of the) flock's query.
  std::string ToString(const std::string& head_name,
                       const std::vector<std::string>& head_vars) const;

  friend bool operator==(const FilterCondition& a, const FilterCondition& b) {
    return a.agg == b.agg && a.cmp == b.cmp && a.threshold == b.threshold &&
           (a.agg == FilterAgg::kCount ||
            a.agg_head_index == b.agg_head_index);
  }
};

}  // namespace qf

#endif  // QF_FLOCKS_FILTER_H_
