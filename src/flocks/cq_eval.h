// Evaluation of extended conjunctive queries over a Database, producing
// *binding relations*: relations whose columns are named after the query's
// variables ("X") and parameters ("$s").
//
// This is the engine under both the flock evaluators (flocks/eval.h,
// flocks/naive_eval.h) and the plan executor (plan/executor.h). Positive
// subgoals become natural joins of per-subgoal binding relations;
// arithmetic subgoals become selections applied as soon as both sides are
// bound; negated subgoals become anti-joins applied once all their
// variables are bound (safety guarantees this point is reached).
#ifndef QF_FLOCKS_CQ_EVAL_H_
#define QF_FLOCKS_CQ_EVAL_H_

#include <map>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/resource.h"
#include "common/status.h"
#include "datalog/ast.h"
#include "relational/database.h"
#include "relational/relation.h"

namespace qf {

class TupleSink;  // relational/spill.h

// Column name a term binds: variables map to their name, parameters to
// "$name". Constants have no column; callers must not ask.
std::string TermColumn(const Term& term);

// Resolves body predicates: first among `extra` relations (results of
// earlier plan steps), then in the database.
class PredicateResolver {
 public:
  explicit PredicateResolver(const Database& db) : db_(&db) {}
  PredicateResolver(const Database& db,
                    const std::map<std::string, const Relation*>& extra)
      : db_(&db), extra_(&extra) {}

  Result<const Relation*> Resolve(const std::string& name) const;

 private:
  const Database* db_;
  const std::map<std::string, const Relation*>* extra_ = nullptr;
};

// The binding relation of one relational subgoal over its base relation:
// one column per distinct variable/parameter of the subgoal, one row per
// base row matching the subgoal's constants and repeated terms. With
// `threads` > 1 the scan runs morsel-parallel on the shared pool; the
// output rows and their order are identical for every thread count.
Relation SubgoalBindings(const Subgoal& subgoal, const Relation& base,
                         unsigned threads = 1, OpMetrics* metrics = nullptr,
                         QueryContext* ctx = nullptr);

struct CqEvalOptions {
  // Join order as positions into the query's list of *positive* subgoals
  // (0 = first positive subgoal in text order). Empty means text order.
  std::vector<std::size_t> join_order;
  // Yannakakis-style evaluation: when the positive part of the query is
  // alpha-acyclic (datalog/acyclic.h), run a full-reducer pass (two
  // semi-join sweeps over the join tree) before joining, and join in tree
  // order — dangling tuples never enter an intermediate. Overrides
  // join_order when a join tree exists; silently falls back to the normal
  // fold on cyclic queries.
  bool full_reducer = false;
  // Workers for the subgoal scans and the join fold (1 = serial). The
  // result is identical — same rows, same order — for every value: the
  // parallel scan and join both preserve the serial row order (see
  // relational/ops.h on ParallelNaturalJoin).
  unsigned threads = 1;
  // Observability (common/metrics.h). When `metrics` is non-null the
  // evaluation appends one child node per operator it runs — "scan" per
  // subgoal, then the fold chain ("join" / "select" / "anti_join", plus
  // "semi_join" nodes for full-reducer sweeps) and a final "project" — each
  // carrying row counters and wall time. `trace` additionally receives
  // span begin/end events; it is ignored unless `metrics` is set. Both
  // pointers must outlive the call. Null (the default) is allocation-free.
  OpMetrics* metrics = nullptr;
  TraceSink* trace = nullptr;
  // Resource governance (common/resource.h). When non-null every operator
  // polls the context and charges its output; the evaluation returns the
  // context's typed error (CANCELLED / DEADLINE_EXCEEDED /
  // RESOURCE_EXHAUSTED) as soon as it latches, discarding intermediates.
  // Null (the default) is cost-free.
  QueryContext* ctx = nullptr;
  // Out-of-core streaming (relational/spill.h). When non-null AND the
  // governor's spill-activation rule fires at the final join, the
  // evaluation streams that join: each joined row has the still-pending
  // comparisons/negations applied, is projected onto output_columns, and
  // is Pushed into the sink instead of ever being materialized — the
  // sink's `engaged` flag is set and an *empty* relation is returned (the
  // caller reads the real result from the sink). When the rule does not
  // fire (or streaming does not apply, e.g. a pending predicate is not
  // bound by the joined schema), evaluation is exactly the conventional
  // materialized path and `engaged` stays false.
  TupleSink* sink = nullptr;
};

// Evaluates the body of `cq` and projects the bindings onto
// `output_columns` (deduplicated). Output columns must be bound by the
// body; unknown predicates, arity mismatches, or an unsafe body yield an
// error. Tracks the peak intermediate size in `peak_rows` when non-null
// (used by cost-model validation and the benches).
Result<Relation> EvaluateConjunctiveBindings(
    const ConjunctiveQuery& cq, const PredicateResolver& resolver,
    const std::vector<std::string>& output_columns,
    const CqEvalOptions& options = {}, std::size_t* peak_rows = nullptr);

}  // namespace qf

#endif  // QF_FLOCKS_CQ_EVAL_H_
