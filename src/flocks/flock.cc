#include "flocks/flock.h"

#include <set>

#include "datalog/parser.h"
#include "datalog/safety.h"

namespace qf {

std::vector<std::string> QueryFlock::ParameterNames() const {
  std::set<std::string> params = query.Parameters();
  return std::vector<std::string>(params.begin(), params.end());
}

Status QueryFlock::Validate(const Database* db) const {
  if (query.disjuncts.empty()) {
    return InvalidArgumentError("flock query has no disjuncts");
  }
  std::string why;
  if (!IsSafe(query, &why)) {
    return InvalidArgumentError("flock query is unsafe: " + why);
  }
  std::set<std::string> params = query.disjuncts.front().Parameters();
  if (params.empty()) {
    return InvalidArgumentError(
        "flock query mentions no parameters; a flock is a query about its "
        "parameters");
  }
  for (std::size_t i = 1; i < query.disjuncts.size(); ++i) {
    if (query.disjuncts[i].Parameters() != params) {
      return InvalidArgumentError(
          "all disjuncts of a flock query must mention the same parameters");
    }
  }
  if (filter.agg != FilterAgg::kCount &&
      filter.agg_head_index >= query.head_arity()) {
    return InvalidArgumentError("filter aggregates head column " +
                                std::to_string(filter.agg_head_index) +
                                " but the head has arity " +
                                std::to_string(query.head_arity()));
  }
  if (db != nullptr) {
    for (const ConjunctiveQuery& cq : query.disjuncts) {
      for (const Subgoal& s : cq.subgoals) {
        if (!s.is_relational()) continue;
        if (!db->Has(s.predicate())) {
          return NotFoundError("unknown predicate: " + s.predicate());
        }
        if (db->Get(s.predicate()).arity() != s.args().size()) {
          return InvalidArgumentError(
              "arity mismatch for predicate " + s.predicate() + ": relation " +
              "has " + std::to_string(db->Get(s.predicate()).arity()) +
              " columns, subgoal has " + std::to_string(s.args().size()));
        }
      }
    }
  }
  return Status::Ok();
}

std::string QueryFlock::ToString() const {
  std::string out = "QUERY:\n";
  for (const ConjunctiveQuery& cq : query.disjuncts) {
    out += "  " + cq.ToString() + "\n";
  }
  out += "FILTER:\n  ";
  out += filter.ToString(query.head_name(),
                         query.disjuncts.front().head_vars);
  out += "\n";
  return out;
}

Result<QueryFlock> MakeFlock(std::string_view query_text,
                             FilterCondition filter) {
  Result<UnionQuery> query = ParseQuery(query_text);
  if (!query.ok()) return query.status();
  QueryFlock flock(std::move(*query), std::move(filter));
  if (Status s = flock.Validate(); !s.ok()) return s;
  return flock;
}

}  // namespace qf
