#include "flocks/program_eval.h"

#include <vector>

#include "flocks/cq_eval.h"
#include "relational/ops.h"

namespace qf {

Result<std::map<std::string, Relation>> MaterializeProgram(
    const Program& program, const Database& db) {
  if (Status s = program.Validate(); !s.ok()) return s;
  Result<std::vector<std::string>> order = program.TopologicalOrder();
  if (!order.ok()) return order.status();

  std::map<std::string, Relation> views;
  std::map<std::string, const Relation*> view_ptrs;
  for (const std::string& name : *order) {
    if (db.Has(name)) {
      return AlreadyExistsError("intermediate predicate " + name +
                                " shadows a base relation");
    }
    PredicateResolver resolver(db, view_ptrs);
    Relation view;
    bool first = true;
    for (const ConjunctiveQuery& rule : program.rules()) {
      if (rule.head_name != name) continue;
      Result<Relation> bindings =
          EvaluateConjunctiveBindings(rule, resolver, rule.head_vars);
      if (!bindings.ok()) return bindings.status();
      if (first) {
        view = std::move(*bindings);
        first = false;
      } else {
        view = Union(view, *bindings);
      }
    }
    view.set_name(name);
    auto [it, inserted] = views.emplace(name, std::move(view));
    view_ptrs[name] = &it->second;
  }
  return views;
}

Result<Relation> EvaluateFlockWithProgram(const QueryFlock& flock,
                                          const Program& program,
                                          const Database& db,
                                          const FlockEvalOptions& options,
                                          FlockEvalInfo* info) {
  Result<std::map<std::string, Relation>> views =
      MaterializeProgram(program, db);
  if (!views.ok()) return views.status();
  std::map<std::string, const Relation*> extra;
  for (const auto& [name, rel] : *views) extra[name] = &rel;
  return EvaluateFlock(flock, db, options, &extra, info);
}

}  // namespace qf
