// The direct (group-by) evaluator for query flocks.
//
// The semantics of a flock (§2) is generate-and-test: for every parameter
// assignment, evaluate the query and test the filter. This evaluator
// computes the same set without enumeration: it evaluates the query with
// both parameter columns and head columns, groups by the parameters, and
// filters groups by the aggregate. For monotone filters the two coincide
// (assignments with empty answers fail monotone lower-bound filters, and
// they are exactly the assignments grouping never sees).
//
// This evaluator applies *no* a-priori optimization; it is the stand-in
// for the "conventional optimizer" baseline of §1.3, and the building
// block the plan executor uses for each FILTER step.
#ifndef QF_FLOCKS_EVAL_H_
#define QF_FLOCKS_EVAL_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "flocks/cq_eval.h"
#include "flocks/flock.h"

namespace qf {

struct FlockEvalOptions {
  // Per-disjunct join orders; empty means text order everywhere.
  std::vector<CqEvalOptions> per_disjunct;
  // Verify SUM filters only see non-negative weights (the monotonicity
  // precondition of the Future Work section).
  bool require_nonnegative_sum = true;
  // Workers for the evaluation (1 = serial). With more than one:
  // independent disjuncts of a union flock evaluate concurrently on the
  // shared pool (common/thread_pool.h), each disjunct's scans and joins
  // run morsel-parallel, and the group-by/aggregate uses thread-local
  // tables merged in morsel order. The answer set is identical for every
  // value, and the result relation is returned in canonically sorted row
  // order regardless (see DESIGN.md, "Threading model").
  unsigned threads = 1;
  // Observability (common/metrics.h). When `metrics` is non-null the
  // evaluator builds its operator tree under it: one "disjunct" child per
  // disjunct (holding that disjunct's scans/joins — pre-allocated before
  // the parallel fan-out, so concurrent disjuncts write disjoint
  // subtrees), then "union" / "group_by" / "filter" / "project" nodes.
  // Row counters are identical for every `threads` value; `morsels` and
  // wall times reflect the actual execution. `trace` receives span events
  // and must be thread-safe; it is ignored unless `metrics` is set.
  OpMetrics* metrics = nullptr;
  TraceSink* trace = nullptr;
  // Resource governance (common/resource.h): propagated into every
  // disjunct's CqEvalOptions and into the union/group/filter/project
  // phases. A latched deadline/cancel/budget failure surfaces as the
  // context's typed Status. Null (the default) is cost-free.
  QueryContext* ctx = nullptr;
};

struct FlockEvalInfo {
  // Peak intermediate relation size over all disjuncts.
  std::size_t peak_rows = 0;
  // Rows of the (unioned, deduplicated) answer relation before grouping.
  std::size_t answer_rows = 0;
};

// Evaluates `flock` over `db` (plus `extra` predicate overlays, used by
// plan steps). The result's columns are the flock's parameters, "$"-tagged,
// in sorted order, and its rows are canonically (lexicographically)
// sorted — deterministic for every options.threads value. Requires a
// monotone filter; non-monotone filters need the naive evaluator
// (flocks/naive_eval.h), which can see empty answers.
Result<Relation> EvaluateFlock(
    const QueryFlock& flock, const Database& db,
    const FlockEvalOptions& options = {},
    const std::map<std::string, const Relation*>* extra = nullptr,
    FlockEvalInfo* info = nullptr);

// Sorted "$"-tagged parameter columns of `flock` — the schema of its
// result.
std::vector<std::string> FlockParameterColumns(const QueryFlock& flock);

}  // namespace qf

#endif  // QF_FLOCKS_EVAL_H_
