// Incremental flock evaluation: the decision layer over
// mining/incremental.h's per-flock cached state (DESIGN.md §13).
//
// The evaluator owns one IncrementalFlockState per flock name plus the
// per-relation *append chains* the shell records after every successful
// `LOAD ... APPEND` (old handle -> new handle). On RUN it decides:
//
//   cached  — every base relation handle is unchanged (probed first by
//             Database::generation()): serve from the group table.
//   delta   — every changed positive relation is reachable from the
//             cached handle through the append chain: evaluate only the
//             delta bindings (per positive-subgoal occurrence, that
//             occurrence bound to the delta slice, the rest to the full
//             new relations — sound for monotone CQs), absorb, serve.
//   build   — no state (or signature/threshold/lineage invalidation):
//             evaluate everything once, materializing the state.
//   (not served) — views, non-monotone filters, non-integral SUMs, or
//             memory-budget pressure: the caller falls back to the
//             ordinary full evaluation, uncached.
//
// Exactness: a served result is bit-identical to the direct evaluator
// over the current database — the differential delta-replay harness
// (tests/incremental_diff_harness.h) pins this across randomized
// append/run/support-change/checkpoint schedules.
#ifndef QF_FLOCKS_INCREMENTAL_EVAL_H_
#define QF_FLOCKS_INCREMENTAL_EVAL_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/resource.h"
#include "common/status.h"
#include "flocks/flock.h"
#include "mining/incremental.h"
#include "relational/database.h"

namespace qf {

struct IncrementalEvalOptions {
  // Workers for build/delta binding evaluation (1 = serial). Served
  // results are identical for every value (the engine contract).
  unsigned threads = 1;
  // Observability: when `metrics` is set the run appends an
  // "incremental" node (decision + state size; one "delta" child per
  // changed relation with its delta row count) plus the usual disjunct
  // subtrees for build/delta evaluations.
  OpMetrics* metrics = nullptr;
  TraceSink* trace = nullptr;
  // Per-statement governor for the evaluation work (transient charges).
  QueryContext* ctx = nullptr;
  // Session memory budget ALL persistent flock states are held against,
  // pooled (the shell passes SET MEMORY's bytes; 0 = unlimited). When a
  // state's projected footprint would overflow the pool, *other* cached
  // states are evicted first — least-recently-served first, smaller
  // (cheaper-to-rebuild) first on ties — so a hot flock survives
  // pressure from cold ones. Only a state that exceeds the whole budget
  // by itself is dropped ("evicted(budget)"), falling back to the
  // ordinary uncached evaluation.
  std::uint64_t state_budget = 0;
  // Tilted-time-window entries per level for newly built states.
  std::size_t window_capacity = 4;
};

struct IncrementalRunInfo {
  // False: the statement was not served; run the full evaluator
  // (decision says why — "unsupported(...)" / "evicted(budget)").
  bool served = false;
  std::string decision;
  // Changed relations and their delta row counts (delta decisions).
  std::vector<std::pair<std::string, std::size_t>> delta_rows;
  std::uint64_t state_bytes = 0;
};

class IncrementalEvaluator {
 public:
  IncrementalEvaluator() = default;

  // Lineage bookkeeping. RecordAppend links `from` -> `to` for `name`
  // (call after a successful LOAD ... APPEND persist, with the handle
  // the database now serves); RecordReplace severs the chain (LOAD /
  // GEN / LOADDB overwrite); Reset drops every state and chain (OPEN /
  // SeedDatabase swap the whole database).
  void RecordAppend(const std::string& name,
                    std::shared_ptr<const Relation> from,
                    std::shared_ptr<const Relation> to);
  void RecordReplace(const std::string& name);
  void Reset();

  // Serves `flock` from cached state when possible (see the file
  // comment). On a served run fills *result and sets info->served; on a
  // fallback returns OK with info->served == false and the caller runs
  // the ordinary evaluation. Errors (typed governor aborts, SUM
  // violations) surface as non-OK statuses exactly as the full
  // evaluator's would.
  Status Run(const std::string& name, const QueryFlock& flock,
             const Database& db, const std::map<std::string, Relation>& views,
             const IncrementalEvalOptions& opts, Relation* result,
             IncrementalRunInfo* info);

  const IncrementalFlockState* state(const std::string& name) const;
  std::size_t state_count() const { return states_.size(); }
  // Cold states evicted to make room for other flocks under the pooled
  // state budget (tests assert retention priority through this).
  std::uint64_t budget_evictions() const { return budget_evictions_; }

  // SHOW FLOCK STATE [<name>] bodies.
  std::string Describe(const std::string& name) const;
  std::string DescribeAll() const;

 private:
  struct Chain {
    // from -> to handle links in append order; bounded (oldest dropped),
    // so very stale states rebuild instead of walking forever.
    std::vector<std::pair<std::shared_ptr<const Relation>,
                          std::shared_ptr<const Relation>>> links;
  };

  // Delta slice rows [mark.rows, cur->size()) when `cur` is reachable
  // from the mark's handle through the chain; false otherwise.
  bool DeltaSlice(const IncrementalFlockState::RelationMark& mark,
                  const std::shared_ptr<const Relation>& cur,
                  Relation* slice) const;

  Status BuildState(const std::string& name, const QueryFlock& flock,
                    const Database& db, const IncrementalEvalOptions& opts,
                    IncrementalFlockState* st);

  // Makes `projected` bytes for `subject` fit within the pooled `budget`
  // by evicting other states (LRU order, smaller state first on ties).
  // Returns false only when `projected` alone exceeds `budget` — the one
  // case the subject itself must go. Never erases `subject`.
  bool MakeRoom(const std::string& subject, std::uint64_t projected,
                std::uint64_t budget);
  // Marks `name` as just served (retention priority for MakeRoom).
  void TouchState(const std::string& name) { last_use_[name] = ++use_tick_; }

  std::map<std::string, std::unique_ptr<IncrementalFlockState>> states_;
  std::map<std::string, Chain> chains_;
  // Retention bookkeeping: logical serve clock per state (not wall time,
  // so replays are deterministic) and the pooled-budget eviction count.
  std::map<std::string, std::uint64_t> last_use_;
  std::uint64_t use_tick_ = 0;
  std::uint64_t budget_evictions_ = 0;
};

}  // namespace qf

#endif  // QF_FLOCKS_INCREMENTAL_EVAL_H_
